"""Tests for the batch-reduction service (``repro.serve``)."""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
import pytest

from repro.errors import EscalationExhausted, FaultConfigError, ShapeError, UncorrectableError
from repro.resilience.ladder import LadderConfig
from repro.serve import (
    AsyncScheduler,
    HessService,
    JobSpec,
    JobSpecError,
    JobTimeout,
    ResultCache,
    RetryPolicy,
    WorkerLost,
    classify_failure,
)
from repro.serve.jobs import execute_job
from repro.serve.retry import (
    ESCALATION,
    FAULT_CONFIG,
    INVALID,
    TIMEOUT,
    TRANSIENT,
    UNEXPECTED,
    WORKER_LOST,
)


# ---------------------------------------------------------------------------
# JobSpec: content-addressed keys + serialization
# ---------------------------------------------------------------------------


class TestJobSpec:
    def test_key_is_deterministic(self):
        a = JobSpec(driver="ft_gehrd", n=96, seed=3, nb=32)
        b = JobSpec(driver="ft_gehrd", n=96, seed=3, nb=32)
        assert a.key == b.key

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 4},
            {"n": 128},
            {"nb": 16},
            {"driver": "gehrd"},
            {"channels": 2},
            {"audit_every": 4},
            {"faults": ({"iteration": 1, "row": 3, "col": 5, "magnitude": 2.0},)},
        ],
    )
    def test_key_tracks_content(self, change):
        base = JobSpec(driver="ft_gehrd", n=96, seed=3)
        assert base.key != JobSpec(**{**base.to_json(), **change,
                                      "faults": change.get("faults", ())}).key

    def test_scheduling_metadata_excluded_from_key(self):
        a = JobSpec(n=96, priority="high", submitter="alice", timeout=5.0)
        b = JobSpec(n=96, priority="low", submitter="bob")
        assert a.key == b.key

    def test_chaos_hooks_excluded_from_key(self):
        assert JobSpec(n=96).key == JobSpec(n=96, crash=True).key

    def test_inline_matrix_fingerprint_is_byte_exact(self):
        m = np.arange(16.0).reshape(4, 4)
        a = JobSpec(driver="gehrd", matrix=m)
        b = JobSpec(driver="gehrd", matrix=m.copy())
        c = JobSpec(driver="gehrd", matrix=m + 1e-16 * np.eye(4))
        assert a.key == b.key
        assert a.key != c.key  # near-duplicates are different jobs

    def test_sytrd_pins_matrix_kind(self):
        spec = JobSpec(driver="ft_sytrd", n=64, kind="uniform")
        assert "symmetric" in spec.matrix_fingerprint()

    def test_json_roundtrip(self):
        spec = JobSpec(
            driver="ft_gehrd", n=96, seed=7, channels=2, priority="high",
            submitter="alice", faults=({"iteration": 1, "row": 2, "col": 3},),
        )
        again = JobSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert again == spec
        assert again.key == spec.key

    def test_json_roundtrip_inline_matrix(self):
        m = np.arange(9.0).reshape(3, 3)
        spec = JobSpec(driver="gehrd", matrix=m)
        again = JobSpec.from_json(spec.to_json())
        assert again.key == spec.key

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(JobSpecError):
            JobSpec.from_json({"driver": "gehrd", "wat": 1})

    @pytest.mark.parametrize(
        "bad",
        [
            {"driver": "qr_but_wrong"},
            {"n": 1},
            {"nb": 0},
            {"channels": 3},
            {"priority": "urgent"},
            {"kind": "nonsense"},
            {"timeout": -1.0},
            {"moments": 0},
        ],
    )
    def test_validate_rejects(self, bad):
        with pytest.raises(JobSpecError):
            JobSpec(**bad).validate()


class TestExecuteJob:
    def test_gehrd_payload(self):
        payload = execute_job(JobSpec(driver="gehrd", n=48, seed=0))
        assert payload["driver"] == "gehrd"
        assert payload["residual"] < 1e-12

    def test_ft_sytrd_default_audit(self):
        # JobSpec's audit_every=0 means "off" for the gehrd family but
        # the tridiagonal driver's audit is mandatory: 0 must map to the
        # driver default instead of being rejected
        payload = execute_job(JobSpec(driver="ft_sytrd", n=48, seed=0))
        assert payload["driver"] == "ft_sytrd"
        assert payload["checks"] >= 1

    def test_ft_gehrd_with_fault_reports_tiers(self):
        spec = JobSpec(
            driver="ft_gehrd", n=48, seed=1,
            faults=({"iteration": 1, "row": 30, "col": 40, "magnitude": 2.0},),
        )
        payload = execute_job(spec)
        assert payload["residual"] < 1e-12
        assert payload["detections"] >= 1
        assert sum(payload["tier_tally"].values()) >= 1


# ---------------------------------------------------------------------------
# ResultCache: LRU order, byte budget, spill
# ---------------------------------------------------------------------------


def _sized_payload(tag: str, nbytes: int) -> dict:
    pad = max(1, nbytes - len(json.dumps({"tag": tag, "pad": ""}).encode()))
    return {"tag": tag, "pad": "x" * pad}


class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache(1 << 20)
        assert cache.get("a") is None
        cache.put("a", {"v": 1})
        assert cache.get("a") == {"v": 1}
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(3 * 200)
        for tag in ("a", "b", "c"):
            cache.put(tag, _sized_payload(tag, 200))
        cache.get("a")  # promote: LRU order is now b, c, a
        cache.put("d", _sized_payload("d", 200))
        assert "b" not in cache  # least recently used went first
        assert "a" in cache and "c" in cache and "d" in cache
        assert cache.stats.evictions == 1

    def test_byte_budget_is_respected(self):
        cache = ResultCache(1000)
        for i in range(20):
            cache.put(f"k{i}", _sized_payload(str(i), 300))
        assert cache.stats.bytes <= 1000
        assert len(cache) <= 3

    def test_oversized_payload_not_held_in_memory(self, tmp_path):
        cache = ResultCache(100, spill_dir=tmp_path)
        cache.put("big", _sized_payload("big", 5000))
        assert "big" not in cache
        assert cache.get("big")["tag"] == "big"  # served from spill
        assert cache.stats.spill_hits == 1

    def test_eviction_spills_and_spill_promotes(self, tmp_path):
        cache = ResultCache(2 * 200, spill_dir=tmp_path)
        for tag in ("a", "b", "c"):
            cache.put(tag, _sized_payload(tag, 200))
        assert "a" not in cache and cache.stats.spill_writes >= 1
        payload = cache.get("a")
        assert payload["tag"] == "a"
        assert cache.stats.spill_hits == 1
        assert "a" in cache  # promoted back into the LRU

    def test_spill_survives_cache_restart(self, tmp_path):
        first = ResultCache(1 << 20, spill_dir=tmp_path)
        first.put("big", _sized_payload("big", 1 << 21))  # straight to disk
        fresh = ResultCache(1 << 20, spill_dir=tmp_path)
        assert fresh.get("big")["tag"] == "big"

    def test_clear_keeps_spill(self, tmp_path):
        cache = ResultCache(1 << 20, spill_dir=tmp_path)
        cache.put("big", _sized_payload("big", 1 << 21))
        cache.clear()
        assert cache.get("big") is not None


# ---------------------------------------------------------------------------
# RetryPolicy: the PR 2 failure taxonomy -> scheduling decisions
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    @pytest.mark.parametrize(
        ("exc", "expected"),
        [
            (EscalationExhausted("ladder out"), ESCALATION),
            (JobTimeout("too slow"), TIMEOUT),
            (WorkerLost("pool broke"), WORKER_LOST),
            (FaultConfigError("bad spec"), FAULT_CONFIG),
            (JobSpecError("bad job"), INVALID),
            (ShapeError("not square"), INVALID),
            (UncorrectableError("rectangle"), TRANSIENT),
            (RuntimeError("who knows"), UNEXPECTED),
        ],
    )
    def test_classification(self, exc, expected):
        assert classify_failure(exc) == expected

    def test_escalation_retries_up_to_budget(self):
        policy = RetryPolicy(escalation_retries=2)
        first = policy.decide(ESCALATION, 0)
        second = policy.decide(ESCALATION, 1)
        third = policy.decide(ESCALATION, 2)
        assert first.retry and first.escalate_ladder
        assert second.retry and second.escalate_ladder
        assert not third.retry

    def test_timeout_retries_once_on_fresh_worker(self):
        policy = RetryPolicy()
        first = policy.decide(TIMEOUT, 0)
        assert first.retry and first.fresh_worker
        assert not policy.decide(TIMEOUT, 1).retry

    def test_worker_lost_retries_once_on_fresh_worker(self):
        decision = RetryPolicy().decide(WORKER_LOST, 0)
        assert decision.retry and decision.fresh_worker

    @pytest.mark.parametrize("fclass", [FAULT_CONFIG, INVALID, UNEXPECTED])
    def test_permanent_classes_never_retry(self, fclass):
        decision = RetryPolicy().decide(fclass, 0)
        assert not decision.retry
        assert "permanent" in decision.reason

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=1.0, jitter=0.5)
        waits = [policy.backoff(k, key="job") for k in (1, 2, 3, 10)]
        assert waits == [policy.backoff(k, key="job") for k in (1, 2, 3, 10)]
        assert waits[0] < waits[1] < waits[2]
        assert all(w <= 1.5 for w in waits)
        assert policy.backoff(1, key="a") != policy.backoff(1, key="b")

    def test_stricter_ladder(self):
        cfg = LadderConfig()
        strict = cfg.stricter()
        assert strict.in_place is False
        assert strict.max_in_place_total == 0
        assert strict.max_deep_steps is None
        assert strict.max_restarts == cfg.max_restarts + 1
        assert strict.stricter().max_restarts == cfg.max_restarts + 2


# ---------------------------------------------------------------------------
# Scheduler admission control / fairness (no runners: fully deterministic)
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_full_queue_rejected_with_structured_reason(self):
        async def run():
            sched = AsyncScheduler(workers=1, max_queue=2, cache=ResultCache(1 << 20))
            return [
                await sched.submit(JobSpec(driver="gehrd", n=24, seed=s))
                for s in range(3)
            ]

        subs = asyncio.run(run())
        assert [s.accepted for s in subs] == [True, True, False]
        rejected = subs[2]
        assert rejected.job_id is None
        assert rejected.reason.startswith("backpressure: queue full (2/2")
        assert rejected.queue_depth == 2

    def test_invalid_spec_rejected_with_reason(self):
        async def run():
            sched = AsyncScheduler(workers=1, max_queue=2)
            return await sched.submit(JobSpec(driver="nope", n=24))

        sub = asyncio.run(run())
        assert not sub.accepted
        assert sub.reason.startswith("invalid:")

    def test_duplicates_coalesce_past_a_full_queue(self):
        async def run():
            sched = AsyncScheduler(workers=1, max_queue=1, cache=ResultCache(1 << 20))
            first = await sched.submit(JobSpec(driver="gehrd", n=24, seed=0))
            dup = await sched.submit(JobSpec(driver="gehrd", n=24, seed=0))
            distinct = await sched.submit(JobSpec(driver="gehrd", n=24, seed=1))
            return first, dup, distinct

        first, dup, distinct = asyncio.run(run())
        assert first.accepted and dup.accepted
        assert not distinct.accepted  # the queue really was full
        assert dup.key == first.key

    def test_priority_lanes_and_round_robin_fairness(self):
        async def run():
            sched = AsyncScheduler(workers=1, max_queue=16)
            order = [
                ("low", "a", 0), ("normal", "a", 1), ("normal", "a", 2),
                ("normal", "a", 3), ("normal", "b", 4), ("high", "b", 5),
                ("normal", "b", 6),
            ]
            for lane, submitter, seed in order:
                await sched.submit(
                    JobSpec(driver="gehrd", n=24, seed=seed,
                            priority=lane, submitter=submitter)
                )
            popped = []
            while True:
                work = sched._pop_work()
                if work is None:
                    return popped
                popped.append((work.lane, work.submitter, work.spec.seed))

        popped = asyncio.run(run())
        # high lane first; then the normal lane alternates submitters
        # a/b round-robin; the low lane drains last
        assert popped[0] == ("high", "b", 5)
        normal = [p for p in popped if p[0] == "normal"]
        assert [s for _, s, _ in normal[:4]] in (["a", "b"] * 2, ["b", "a"] * 2)
        assert popped[-1] == ("low", "a", 0)


# ---------------------------------------------------------------------------
# Service end-to-end (in-thread lane; stubbed drivers where determinism
# matters more than realism)
# ---------------------------------------------------------------------------


def _service(**kw) -> HessService:
    kw.setdefault("workers", 2)
    kw.setdefault("max_queue", 32)
    kw.setdefault("small_n_threshold", 512)  # keep everything in-thread
    return HessService(**kw)


class TestServiceEndToEnd:
    def test_duplicate_heavy_batch_hits_cache(self):
        uniques = [JobSpec(driver="gehrd", n=32, seed=s) for s in range(4)]
        batch = uniques * 4  # 16 jobs, 4 distinct
        with _service() as svc:
            subs = svc.submit_batch(batch)
            assert all(s.accepted for s in subs)
            svc.drain(timeout=120)
            results = [svc.peek(s.job_id) for s in subs]
            stats = svc.stats()
        assert all(r.status == "done" for r in results)
        assert all(r.payload["residual"] < 1e-12 for r in results)
        assert stats["hit_rate"] >= 0.3
        assert stats["counts"]["completed"] == 4  # one execution per key

    def test_result_blocks_until_done_and_events_stream(self):
        with _service() as svc:
            q = svc.subscribe()
            sub = svc.submit(JobSpec(driver="ft_gehrd", n=32, seed=0))
            res = svc.result(sub.job_id, timeout=60)
            assert res.status == "done"
            svc.drain(timeout=10)
        kinds = []
        while not q.empty():
            kinds.append(q.get()["event"])
        assert "submitted" in kinds and "started" in kinds and "done" in kinds

    def test_cancel_while_queued_race(self, monkeypatch):
        def slow_job(spec, *, workspace=None, ladder=None):
            time.sleep(0.15)
            return {"driver": spec.driver, "n": spec.n, "elapsed_s": 0.15}

        monkeypatch.setattr("repro.serve.scheduler.execute_job", slow_job)
        with _service(workers=1) as svc:
            subs = svc.submit_batch(
                [JobSpec(driver="gehrd", n=24, seed=s) for s in range(6)]
            )
            # the first job is running; cancel every other queued job
            cancelled_ids = [s.job_id for s in subs[2::2]]
            outcomes = [svc.cancel(job_id) for job_id in cancelled_ids]
            svc.drain(timeout=60)
            results = {s.job_id: svc.peek(s.job_id) for s in subs}
            stats = svc.stats()
            # cancelling a terminal job is a no-op
            cancel_after_done = svc.cancel(subs[0].job_id)
        assert all(outcomes)
        for job_id in cancelled_ids:
            assert results[job_id].status == "cancelled"
            assert results[job_id].payload is None
        done = [r for r in results.values() if r.status == "done"]
        assert len(done) == len(subs) - len(cancelled_ids)
        assert stats["counts"]["cancelled"] == len(cancelled_ids)
        assert cancel_after_done is False

    def test_escalation_exhausted_retries_with_stricter_ladder(self, monkeypatch):
        seen_ladders = []

        def flaky(spec, *, workspace=None, ladder=None):
            seen_ladders.append(ladder)
            if len(seen_ladders) == 1:
                raise EscalationExhausted("ladder out of budget")
            return {"driver": spec.driver, "n": spec.n, "elapsed_s": 0.0}

        monkeypatch.setattr("repro.serve.scheduler.execute_job", flaky)
        with _service(workers=1, retry=RetryPolicy(backoff_base=0.001)) as svc:
            sub = svc.submit(JobSpec(driver="ft_gehrd", n=32, seed=0))
            res = svc.result(sub.job_id, timeout=30)
        assert res.status == "done"
        assert res.retries == 1
        assert seen_ladders[0] is None
        assert seen_ladders[1].in_place is False
        assert seen_ladders[1].max_restarts == LadderConfig().max_restarts + 1

    def test_fault_config_error_fails_permanently(self, monkeypatch):
        def broken(spec, *, workspace=None, ladder=None):
            raise FaultConfigError("no such channel")

        monkeypatch.setattr("repro.serve.scheduler.execute_job", broken)
        with _service(workers=1) as svc:
            sub = svc.submit(JobSpec(driver="ft_gehrd", n=32, seed=0))
            res = svc.result(sub.job_id, timeout=30)
        assert res.status == "failed"
        assert res.failure_class == "fault_config"
        assert res.retries == 0

    def test_timeout_retries_once_then_fails(self, monkeypatch):
        attempts = []

        def wedged(spec, *, workspace=None, ladder=None):
            attempts.append(time.perf_counter())
            time.sleep(0.3)
            return {"elapsed_s": 0.3}

        monkeypatch.setattr("repro.serve.scheduler.execute_job", wedged)
        with _service(workers=1, default_timeout=0.05,
                      retry=RetryPolicy(backoff_base=0.001)) as svc:
            sub = svc.submit(JobSpec(driver="gehrd", n=24, seed=0))
            res = svc.result(sub.job_id, timeout=30)
        assert res.status == "failed"
        assert res.failure_class == "timeout"
        assert res.retries == 1
        assert len(attempts) == 2

    def test_submit_wait_rides_out_backpressure(self, monkeypatch):
        def slow_job(spec, *, workspace=None, ladder=None):
            time.sleep(0.05)
            return {"elapsed_s": 0.05}

        monkeypatch.setattr("repro.serve.scheduler.execute_job", slow_job)
        with _service(workers=1, max_queue=1) as svc:
            subs = [
                svc.submit_wait(JobSpec(driver="gehrd", n=24, seed=s))
                for s in range(4)
            ]
            svc.drain(timeout=60)
            stats = svc.stats()
        assert all(s.accepted for s in subs)
        assert stats["counts"].get("rejected_backpressure", 0) >= 1

    def test_stats_tier_tally_aggregates_recoveries(self):
        spec = JobSpec(
            driver="ft_gehrd", n=48, seed=1,
            faults=({"iteration": 1, "row": 30, "col": 40, "magnitude": 2.0},),
        )
        with _service() as svc:
            sub = svc.submit(spec)
            res = svc.result(sub.job_id, timeout=120)
            stats = svc.stats()
        assert res.status == "done"
        assert sum(stats["tier_tally"].values()) >= 1


class TestServiceCrashRecovery:
    def test_worker_crash_loses_no_jobs(self, tmp_path):
        sentinel = str(tmp_path / "crash.once")
        specs = [
            JobSpec(driver="ft_gehrd", n=32, seed=s, submitter="c") for s in range(3)
        ]
        specs.insert(
            1,
            JobSpec(driver="ft_gehrd", n=32, seed=9, submitter="c",
                    crash=True, crash_once_path=sentinel),
        )
        # small_n_threshold=0: everything rides the process pool
        with HessService(workers=2, max_queue=16, small_n_threshold=0,
                         retry=RetryPolicy(backoff_base=0.001)) as svc:
            subs = svc.submit_batch(specs)
            assert all(s.accepted for s in subs)
            svc.drain(timeout=300)
            results = [svc.peek(s.job_id) for s in subs]
            stats = svc.stats()
        assert all(r.status == "done" for r in results), [r.error for r in results]
        assert stats["pool_rebuilds"] >= 1
        assert stats["counts"].get("retries", 0) >= 1


# ---------------------------------------------------------------------------
# Eigensolver drivers: ft_eig / ft_schur through the service
# ---------------------------------------------------------------------------


class TestEigDrivers:
    def test_convergence_classified_and_retried_with_doubled_sweeps(self):
        from repro.errors import ConvergenceError
        from repro.serve.retry import CONVERGENCE

        assert classify_failure(ConvergenceError("stalled")) == CONVERGENCE
        # the EscalationExhausted subclass must NOT land in this bucket
        assert classify_failure(EscalationExhausted("out")) == ESCALATION
        policy = RetryPolicy()
        first = policy.decide(CONVERGENCE, 0)
        assert first.retry and first.raise_sweeps and not first.escalate_ladder
        second = policy.decide(CONVERGENCE, 1)
        assert not second.retry
        assert "convergence" in second.reason

    def test_scheduler_doubles_sweep_budget_on_convergence(self, monkeypatch):
        from repro.errors import ConvergenceError

        seen_sweeps = []

        def stalling(spec, *, workspace=None, ladder=None, max_sweeps=None):
            seen_sweeps.append(max_sweeps)
            if len(seen_sweeps) == 1:
                raise ConvergenceError("Francis iteration stalled")
            return {"driver": spec.driver, "n": spec.n, "elapsed_s": 0.0}

        monkeypatch.setattr("repro.serve.scheduler.execute_job", stalling)
        with _service(workers=1, retry=RetryPolicy(backoff_base=0.001)) as svc:
            sub = svc.submit(JobSpec(driver="ft_eig", n=24, seed=0))
            res = svc.result(sub.job_id, timeout=30)
        assert res.status == "done"
        assert res.retries == 1
        assert seen_sweeps == [None, 60]  # 2x the drivers' default of 30

    def test_eigvecs_only_for_eig_drivers(self):
        with pytest.raises(JobSpecError):
            JobSpec(driver="gehrd", n=16, eigvecs=True).validate()
        with pytest.raises(JobSpecError):
            JobSpec(driver="ft_eig", n=16, return_factors=True).validate()
        JobSpec(driver="ft_eig", n=16, eigvecs=True,
                return_factors=True).validate()
        JobSpec(driver="ft_schur", n=16, return_factors=True).validate()

    def test_eigvecs_in_key_only_for_eig_drivers(self):
        # old drivers' keys must be unchanged by the new field
        k1 = JobSpec(driver="gehrd", n=16, seed=0).key
        assert "eigvecs" not in k1
        a = JobSpec(driver="ft_eig", n=16, seed=0, eigvecs=False).key
        b = JobSpec(driver="ft_eig", n=16, seed=0, eigvecs=True,
                    return_factors=True).key
        assert a != b

    def test_ft_eig_payload_faulted(self):
        payload = execute_job(JobSpec(
            driver="ft_eig", n=24, seed=3, nb=8,
            faults=[{"iteration": 3, "row": 5, "col": 9, "magnitude": 1.0,
                     "space": "qr_matrix", "phase": "pre_sweep"}]))
        assert payload["detections"] >= 1
        assert payload["rollbacks"] >= 1
        assert payload["tier_tally"].get("reverse_redo", 0) >= 1
        ref = np.linalg.eigvals(
            __import__("repro.utils.rng", fromlist=["random_matrix"])
            .random_matrix(24, seed=3))
        got = np.array([complex(re, im) for re, im in payload["eigvals"]])
        dist = np.max(np.abs(np.sort_complex(got) - np.sort_complex(ref)))
        assert dist < 1e-10

    def test_ft_eig_batched_matches_scalar(self):
        with HessService(workers=1, small_n_threshold=32, batch_max=4,
                         batch_linger_ms=5.0) as svc:
            specs = [JobSpec(driver="ft_eig", n=16, seed=s, nb=8)
                     for s in range(4)]
            subs = svc.submit_batch(specs)
            assert all(s.accepted for s in subs)
            svc.drain(timeout=300)
            stats = svc.stats()
            for spec, sub in zip(specs, subs):
                res = svc.result(sub.job_id, timeout=60)
                assert res.status == "done", res.error
                got = dict(res.payload)
                ref = execute_job(spec)
                for k in ("elapsed_s", "seconds_simulated"):
                    got.pop(k, None), ref.pop(k, None)
                assert got == ref
        assert stats["batch_lane"]["batches"] >= 1

    def test_mixed_pipeline_faults_split_between_stages(self):
        payload = execute_job(JobSpec(
            driver="ft_eig", n=24, seed=5, nb=8,
            faults=[
                {"iteration": 1, "row": 10, "col": 15, "magnitude": 2.0},
                {"iteration": 2, "row": 4, "col": 8, "magnitude": 1.0,
                 "space": "qr_matrix", "phase": "pre_sweep"},
            ]))
        # one reduction-stage detection plus one QR-stage detection
        assert payload["detections"] >= 2
        assert payload["recoveries"] >= 2


# ---------------------------------------------------------------------------
# Health gauges + startup shm sweep (the cluster tier's inputs)
# ---------------------------------------------------------------------------


class TestHealthGauges:
    def test_alive_uptime_and_queue_depth(self):
        svc = HessService(workers=1, small_n_threshold=64)
        try:
            assert svc.alive
            assert svc.uptime_s() >= 0.0
            assert svc.queue_depth() == 0
            before = svc.uptime_s()
            time.sleep(0.05)
            assert svc.uptime_s() > before
        finally:
            svc.close()
        assert not svc.alive

    def test_queue_depth_tracks_inflight_work(self):
        with HessService(workers=1, small_n_threshold=0) as svc:
            subs = svc.submit_batch(
                JobSpec(driver="ft_gehrd", n=96, seed=s) for s in range(3)
            )
            assert all(s.accepted for s in subs)
            # gauge reads without an event-loop hop, while work is queued
            assert svc.queue_depth() >= 1
            assert svc.stats()["queue_depth"] == svc.queue_depth()
            svc.drain(timeout=120)
            assert svc.queue_depth() == 0

    def test_startup_sweep_reclaims_dead_pid_segments(self, tmp_path):
        import os
        import subprocess

        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        # a segment named for a real-but-dead creator pid: what a
        # SIGKILLed previous run leaves behind
        proc = subprocess.Popen(["true"])
        proc.wait()
        stale = f"/dev/shm/repro-shm-{proc.pid}-feedbeef"
        with open(stale, "wb") as fh:
            fh.write(b"\0" * 64)
        try:
            with HessService(workers=1, small_n_threshold=64) as svc:
                stats = svc.stats()
            assert not os.path.exists(stale)
            assert stats["data_plane"]["swept_at_start"] >= 0
        finally:
            if os.path.exists(stale):
                os.unlink(stale)


# ---------------------------------------------------------------------------
# array-backend routing: cache safety + typed degradation
# ---------------------------------------------------------------------------


class TestBackendRouting:
    def test_backend_is_part_of_content_key(self, monkeypatch):
        import repro.backend as B

        monkeypatch.delenv(B.ENV_VAR, raising=False)
        base = JobSpec(driver="ft_gehrd", n=64, seed=1)
        other = JobSpec(driver="ft_gehrd", n=64, seed=1, backend="numpy_functional")
        # the same matrix under two backends is two cache entries: the
        # functional lanes agree to rounding, not byte-identity
        assert base.key != other.key
        # "" resolves to the host default — the same effective backend
        assert base.key == JobSpec(driver="ft_gehrd", n=64, seed=1, backend="numpy").key

    def test_batch_group_key_separates_backends(self, monkeypatch):
        import repro.backend as B
        from repro.serve.jobs import batch_group_key

        monkeypatch.delenv(B.ENV_VAR, raising=False)
        a = JobSpec(driver="gehrd", n=32, seed=0)
        b = JobSpec(driver="gehrd", n=32, seed=0, backend="numpy_functional")
        assert batch_group_key(a) != batch_group_key(b)

    def test_validate_backend_restrictions(self):
        with pytest.raises(JobSpecError, match="registered"):
            JobSpec(n=32, backend="torch").validate()
        with pytest.raises(JobSpecError, match="functional"):
            JobSpec(n=32, backend="numpy_functional", functional=False).validate()
        with pytest.raises(JobSpecError, match="channels"):
            JobSpec(n=32, backend="numpy_functional", channels=2).validate()
        with pytest.raises(JobSpecError, match="audit"):
            JobSpec(n=32, backend="numpy_functional", audit_every=2).validate()
        with pytest.raises(JobSpecError):
            JobSpec(driver="ft_sytrd", n=32, backend="numpy_functional").validate()
        # the numpy default carries no restrictions
        JobSpec(n=32, backend="numpy", channels=2).validate()

    def test_unavailable_backend_raises_typed_at_submit(self, monkeypatch):
        import repro.backend as B
        from repro.errors import BackendUnavailableError

        monkeypatch.setattr(B, "_DISABLED", {"jax"})
        with HessService(workers=1) as svc:
            # NOT a soft JobSpecError rejection: the typed error must
            # reach the caller before any work is queued
            with pytest.raises(BackendUnavailableError, match="unavailable"):
                svc.submit(JobSpec(driver="ft_gehrd", n=32, backend="jax"))

    def test_same_matrix_two_backends_never_share_cache(self, monkeypatch):
        import repro.backend as B

        monkeypatch.delenv(B.ENV_VAR, raising=False)
        specs = [
            JobSpec(driver="ft_gehrd", n=32, seed=0),
            JobSpec(driver="ft_gehrd", n=32, seed=0, backend="numpy_functional"),
            JobSpec(driver="ft_gehrd", n=32, seed=0),
            JobSpec(driver="ft_gehrd", n=32, seed=0, backend="numpy_functional"),
        ]
        with HessService(workers=1, max_queue=16) as svc:
            subs = svc.submit_batch(specs)
            assert all(s.accepted for s in subs)
            svc.drain(timeout=120)
            results = [svc.result(s.job_id, timeout=5) for s in subs]
            stats = svc.stats()
        assert all(r.status == "done" for r in results)
        # duplicates coalesce within a backend, never across: 2 misses
        # (one per backend), 2 hits
        assert stats["hit_rate"] == 0.5
        # the numpy path's payload is byte-identical to the pre-seam
        # code (no backend stamp); the functional lane stamps its name
        assert results[0].payload.get("backend", "numpy") == "numpy"
        assert results[1].payload["backend"] == "numpy_functional"
        # cached repeats returned each backend's own payload
        assert results[2].payload == results[0].payload
        assert results[3].payload == results[1].payload
        assert results[1].payload["residual"] < 1e-13

    def test_mixed_backend_jobs_never_coalesce_into_one_batch(self, monkeypatch):
        import repro.backend as B

        monkeypatch.delenv(B.ENV_VAR, raising=False)
        n = 32
        specs = [JobSpec(driver="ft_gehrd", n=n, seed=s) for s in range(3)]
        specs += [
            JobSpec(driver="ft_gehrd", n=n, seed=s, backend="numpy_functional")
            for s in range(3)
        ]
        with HessService(
            workers=1,
            max_queue=64,
            small_n_threshold=n,
            batch_max=16,
            batch_linger_ms=40.0,
        ) as svc:
            subs = svc.submit_batch(specs)
            assert all(s.accepted for s in subs)
            svc.drain(timeout=120)
            results = [svc.result(s.job_id, timeout=5) for s in subs]
            stats = svc.stats()
        assert all(r.status == "done" for r in results)
        lane = stats["batch_lane"]
        # 6 jobs, one linger window, batch_max=16 — without the backend
        # in the group key this would be a single batch of 6
        assert lane["batched_jobs"] + lane["singletons"] == len(specs)
        assert all(r.payload.get("backend", "numpy") == "numpy" for r in results[:3])
        assert all(
            r.payload["backend"] == "numpy_functional" for r in results[3:]
        )
