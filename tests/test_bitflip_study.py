"""Tests for the bit-position sensitivity harness."""

import warnings

import pytest

from repro.analysis import bitflip_study


class TestBitflipStudy:
    @pytest.fixture(scope="class")
    def study(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return bitflip_study(n=64, trials=3, bits=(0, 40, 55, 62, 63), seed=1)

    def test_no_silent_harm_anywhere(self, study):
        for o in study.outcomes:
            assert o.safe, f"bit {o.bit} produced silent harm"

    def test_low_bits_harmless(self, study):
        o = {x.bit: x for x in study.outcomes}[0]
        assert o.harmless + o.recovered == o.trials

    def test_mid_bits_recover(self, study):
        o = {x.bit: x for x in study.outcomes}[40]
        assert o.recovered == o.trials

    def test_render(self, study):
        out = study.render()
        assert "mantissa" in out and "exponent" in out and "sign" in out

    def test_outcome_counts_sum(self, study):
        for o in study.outcomes:
            assert o.recovered + o.harmless + o.refused + o.silent_harmful == o.trials
