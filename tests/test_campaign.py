"""Tests for the injection campaign runner — blanket recovery coverage."""

import pytest

from repro.faults import run_campaign
from repro.utils.rng import random_matrix


class TestCampaign:
    def test_full_grid_recovers(self):
        a = random_matrix(128, seed=20)
        res = run_campaign(a, nb=32, moments=3, seed=1)
        assert len(res.trials) == 9
        assert res.recovery_rate == 1.0
        assert res.worst_residual < 1e-13

    def test_all_trials_detected(self):
        a = random_matrix(96, seed=21)
        res = run_campaign(a, nb=32, moments=2, seed=2)
        assert all(t.detected for t in res.trials)

    def test_by_area_grouping(self):
        a = random_matrix(96, seed=22)
        res = run_campaign(a, nb=32, moments=2, seed=3)
        for area in (1, 2, 3):
            assert len(res.by_area(area)) == 2

    def test_area3_trials_use_q_corrections(self):
        a = random_matrix(96, seed=23)
        res = run_campaign(a, nb=32, areas=(3,), moments=2, seed=4)
        assert all(t.q_corrections == 1 for t in res.trials)
        assert all(t.recoveries == 0 for t in res.trials)

    def test_area12_trials_use_rollback(self):
        a = random_matrix(96, seed=24)
        res = run_campaign(a, nb=32, areas=(1, 2), moments=2, seed=5)
        assert all(t.recoveries == 1 for t in res.trials)

    def test_large_magnitude_faults(self):
        """Correction roundoff scales with the fault magnitude (the
        paper's §VI-B discussion of dot-product rounding): a 1e6
        corruption recovers to ~magnitude·eps, so the residual bar
        scales too."""
        a = random_matrix(96, seed=25)
        res = run_campaign(a, nb=32, moments=2, seed=6, magnitude=1e6, residual_tol=1e-9)
        assert res.recovery_rate == 1.0
        assert all(t.detected for t in res.trials)

    def test_small_magnitude_faults(self):
        """Sub-roundoff faults may go undetected, but then they are also
        harmless: the residual bar still passes."""
        a = random_matrix(96, seed=26)
        res = run_campaign(a, nb=32, moments=2, seed=7, magnitude=1e-13)
        assert res.recovery_rate == 1.0
