"""Tests for the discrete-event scheduling engine."""

import pytest

from repro.errors import SimulationError
from repro.hybrid.engine import SimEngine


class TestScheduling:
    def test_serial_on_one_resource(self):
        eng = SimEngine()
        a = eng.submit("a", "gpu", 1.0)
        b = eng.submit("b", "gpu", 2.0)
        assert (a.start, a.end) == (0.0, 1.0)
        assert (b.start, b.end) == (1.0, 3.0)
        assert eng.makespan == 3.0

    def test_parallel_on_different_resources(self):
        eng = SimEngine()
        a = eng.submit("a", "gpu", 2.0)
        b = eng.submit("b", "cpu", 3.0)
        assert a.start == 0.0 and b.start == 0.0
        assert eng.makespan == 3.0

    def test_dependency_forces_wait(self):
        eng = SimEngine()
        a = eng.submit("a", "gpu", 2.0)
        b = eng.submit("b", "cpu", 1.0, deps=[a])
        assert b.start == 2.0 and b.end == 3.0

    def test_copy_overlaps_compute(self):
        """The paper's async-transfer overlap: a d2h copy depending on op A
        runs concurrently with GPU op B."""
        eng = SimEngine()
        a = eng.submit("right_M", "gpu", 2.0)
        send = eng.submit("send", "d2h", 5.0, deps=[a])
        g = eng.submit("right_G", "gpu", 3.0, deps=[a])
        assert send.start == 2.0 and g.start == 2.0  # concurrent
        assert eng.makespan == 7.0  # the copy is the tail

    def test_diamond_dependency(self):
        eng = SimEngine()
        a = eng.submit("a", "gpu", 1.0)
        b = eng.submit("b", "cpu", 5.0, deps=[a])
        c = eng.submit("c", "gpu", 1.0, deps=[a])
        d = eng.submit("d", "gpu", 1.0, deps=[b, c])
        assert d.start == 6.0  # waits for the slow CPU branch

    def test_barrier_synchronizes(self):
        eng = SimEngine()
        eng.submit("a", "cpu", 5.0)
        eng.barrier()
        b = eng.submit("b", "gpu", 1.0)
        assert b.start == 5.0

    def test_busy_time_and_utilization(self):
        eng = SimEngine()
        eng.submit("a", "gpu", 2.0)
        eng.submit("b", "cpu", 1.0)
        eng.submit("c", "gpu", 2.0)
        assert eng.busy_time("gpu") == 4.0
        assert eng.utilization("gpu") == pytest.approx(1.0)
        assert eng.utilization("cpu") == pytest.approx(0.25)

    def test_unknown_resource_rejected(self):
        with pytest.raises(SimulationError):
            SimEngine().submit("x", "tpu", 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            SimEngine().submit("x", "gpu", -1.0)

    def test_empty_makespan(self):
        assert SimEngine().makespan == 0.0
