"""Unit tests for the DLAHR2 panel factorization."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg import FlopCounter
from repro.linalg.lahr2 import lahr2
from repro.linalg.wy import block_reflector
from repro.utils.rng import random_matrix


class TestLahr2Structure:
    def test_v_unit_diagonal(self):
        a = random_matrix(20, seed=0)
        pf = lahr2(a, 0, 4, 20)
        for j in range(4):
            assert pf.v[j, j] == 1.0
            np.testing.assert_array_equal(pf.v[:j, j], 0.0)

    def test_t_upper_triangular_with_taus(self):
        a = random_matrix(20, seed=1)
        pf = lahr2(a, 0, 4, 20)
        np.testing.assert_array_equal(np.tril(pf.t, -1), 0.0)
        np.testing.assert_allclose(np.diag(pf.t), pf.taus)

    def test_block_reflector_orthogonal(self):
        a = random_matrix(24, seed=2)
        pf = lahr2(a, 0, 6, 24)
        u = block_reflector(pf.v, pf.t)
        np.testing.assert_allclose(u @ u.T, np.eye(23), atol=1e-13)

    def test_panel_columns_annihilated(self):
        # After a full iteration's updates the panel columns must be upper
        # Hessenberg; lahr2 itself already annihilates below the subdiag
        # within the panel (modulo the stored reflector data).
        n, ib = 20, 4
        a0 = random_matrix(n, seed=3)
        a = a0.copy(order="F")
        pf = lahr2(a, 0, ib, n)
        # the reflector tails are stored; the implied math entries are zero
        # — verify via the beta chain: subdiagonal entries match reflector
        # betas
        assert a[ib, ib - 1] == pytest.approx(pf.ei)

    def test_invalid_panel_raises(self):
        a = random_matrix(10, seed=4)
        with pytest.raises(ShapeError):
            lahr2(a, 8, 4, 10)  # p + ib >= n
        with pytest.raises(ShapeError):
            lahr2(a, 0, 0, 10)


class TestLahr2Math:
    def test_y_equals_apre_v_t(self):
        """The identity the FT checksum maintenance relies on:
        Y = A_pre[:, p+1:n] @ V @ T."""
        n, ib = 30, 5
        a0 = random_matrix(n, seed=5)
        a = a0.copy(order="F")
        pf = lahr2(a, 0, ib, n)
        y_math = a0[:, 1:n] @ pf.v @ pf.t
        np.testing.assert_allclose(pf.y, y_math, atol=1e-12)

    def test_y_identity_second_panel(self):
        from repro.linalg.gehrd import apply_left_update, apply_right_updates

        n, ib = 30, 5
        a = random_matrix(n, seed=6).copy(order="F")
        pf = lahr2(a, 0, ib, n)
        apply_right_updates(a, pf, n)
        apply_left_update(a, pf, n)
        a_pre = a.copy()
        pf2 = lahr2(a, ib, ib, n)
        y_math = a_pre[:, ib + 1 : n] @ pf2.v @ pf2.t
        np.testing.assert_allclose(pf2.y, y_math, atol=1e-12)

    def test_similarity_preserved_after_full_iteration(self):
        """One full blocked iteration must be an orthogonal similarity:
        eigenvalues unchanged."""
        from repro.linalg.gehrd import apply_left_update, apply_right_updates

        n, ib = 24, 6
        a0 = random_matrix(n, seed=7)
        a = a0.copy(order="F")
        pf = lahr2(a, 0, ib, n)
        apply_right_updates(a, pf, n)
        apply_left_update(a, pf, n)
        # reconstruct the mathematical matrix: zero stored reflectors
        math = a.copy()
        for j in range(ib):
            math[j + 2 :, j] = 0.0
        e0 = np.sort_complex(np.linalg.eigvals(a0))
        e1 = np.sort_complex(np.linalg.eigvals(math))
        np.testing.assert_allclose(e0, e1, atol=1e-10)

    def test_flop_accounting_nonzero(self):
        a = random_matrix(20, seed=8)
        cnt = FlopCounter()
        lahr2(a, 0, 4, 20, counter=cnt)
        assert cnt.category_total("panel") > 0

    def test_offset_panel(self):
        """lahr2 at p>0 must only touch rows/cols within the active range."""
        n, p, ib = 24, 8, 4
        a = random_matrix(n, seed=9).copy(order="F")
        before = a.copy()
        lahr2(a, p, ib, n)
        # columns left of the panel untouched
        np.testing.assert_array_equal(a[:, :p], before[:, :p])

    def test_extended_storage_untouched(self):
        """With an (n+1)x(n+1) extended array, lahr2 must not read or write
        the checksum row/column (active bound n)."""
        n, ib = 20, 4
        ext = np.zeros((n + 1, n + 1), order="F")
        ext[:n, :n] = random_matrix(n, seed=10)
        ext[n, :] = 77.0
        ext[:, n] = 88.0
        lahr2(ext, 0, ib, n)
        np.testing.assert_array_equal(ext[n, :n], 77.0)
        np.testing.assert_array_equal(ext[:n, n], 88.0)
