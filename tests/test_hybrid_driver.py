"""Tests for the Algorithm-2 hybrid driver (MAGMA-style baseline)."""

import numpy as np
import pytest

from repro.core import HybridConfig, hybrid_gehrd, iteration_plan
from repro.errors import ShapeError
from repro.faults import FaultInjector, FaultSpec
from repro.linalg import (
    extract_hessenberg,
    factorization_residual,
    orghr,
    orthogonality_residual,
)
from repro.utils.rng import random_matrix


class TestFunctional:
    @pytest.mark.parametrize("n,nb", [(40, 8), (96, 32), (158, 32)])
    def test_correctness(self, n, nb):
        a0 = random_matrix(n, seed=n)
        res = hybrid_gehrd(a0, HybridConfig(nb=nb))
        q = orghr(res.a, res.taus)
        h = extract_hessenberg(res.a)
        assert factorization_residual(a0, q, h) < 1e-14
        assert orthogonality_residual(q) < 1e-14

    def test_matches_reference_gehrd(self):
        from repro.linalg import gehrd

        a0 = random_matrix(64, seed=1)
        res = hybrid_gehrd(a0, HybridConfig(nb=16))
        ref = a0.copy(order="F")
        gehrd(ref, nb=16, nx=16)
        eh = np.sort_complex(np.linalg.eigvals(extract_hessenberg(res.a)))
        er = np.sort_complex(np.linalg.eigvals(extract_hessenberg(ref)))
        np.testing.assert_allclose(eh, er, atol=1e-10)

    def test_input_not_mutated(self):
        a0 = random_matrix(32, seed=2)
        keep = a0.copy()
        hybrid_gehrd(a0, HybridConfig(nb=8))
        np.testing.assert_array_equal(a0, keep)

    def test_rejects_nonsquare(self):
        with pytest.raises(ShapeError):
            hybrid_gehrd(np.zeros((3, 4)), HybridConfig())

    def test_injected_fault_corrupts_result(self):
        """The baseline is fault-*prone*: an area-2 error must damage the
        factorization (this is Fig. 2's premise)."""
        a0 = random_matrix(96, seed=3)
        inj = FaultInjector().add(FaultSpec(iteration=1, row=60, col=70, magnitude=1.0))
        res = hybrid_gehrd(a0, HybridConfig(nb=32), injector=inj)
        q = orghr(res.a, res.taus)
        h = extract_hessenberg(res.a)
        assert factorization_residual(a0, q, h) > 1e-8


class TestSchedule:
    def test_iteration_plan(self):
        assert iteration_plan(97, 32) == [(0, 32), (32, 32), (64, 32)]
        assert iteration_plan(65, 32) == [(0, 32), (32, 32)]
        assert iteration_plan(10, 32) == [(0, 9)]

    def test_metadata_mode_produces_time_without_data(self):
        res = hybrid_gehrd(1022, HybridConfig(nb=32, functional=False))
        assert res.a is None
        assert res.seconds > 0
        assert res.iterations == len(iteration_plan(1022, 32))

    def test_functional_mode_requires_matrix(self):
        with pytest.raises(ShapeError):
            hybrid_gehrd(100, HybridConfig(functional=True))

    def test_send_overlaps_g_update(self):
        """Algorithm 2's red lines: the async d2h of M's columns and the G
        update must overlap in the schedule."""
        res = hybrid_gehrd(512, HybridConfig(nb=32, functional=False))
        ops = {op.name: op for op in res.timeline.ops}
        send = ops["send_M@1"]
        g = ops["right_G@1"]
        assert send.start < g.end and g.start < send.end  # time overlap

    def test_seconds_scale_with_n(self):
        t1 = hybrid_gehrd(1022, HybridConfig(nb=32, functional=False)).seconds
        t2 = hybrid_gehrd(2046, HybridConfig(nb=32, functional=False)).seconds
        assert 4.0 < t2 / t1 < 9.0  # between O(N²) transfers and O(N³) compute

    def test_functional_and_metadata_same_schedule(self):
        """The simulated time must not depend on whether data is real."""
        a0 = random_matrix(96, seed=4)
        t_func = hybrid_gehrd(a0, HybridConfig(nb=32, functional=True)).seconds
        t_meta = hybrid_gehrd(96, HybridConfig(nb=32, functional=False)).seconds
        assert t_func == pytest.approx(t_meta, rel=1e-12)

    def test_gflops_reported(self):
        res = hybrid_gehrd(2046, HybridConfig(nb=32, functional=False))
        assert res.gflops > 50.0
