"""Tests for the real Schur form (Francis QR with accumulation)."""

import numpy as np
import pytest

from repro.eigen import (
    hessenberg_eigvals,
    hessenberg_schur,
    is_quasi_triangular,
    schur_eigvals,
)
from repro.errors import ShapeError
from repro.linalg import gehrd, extract_hessenberg, orghr, orthogonality_residual
from repro.utils.rng import MatrixKind, random_matrix


def _hess(n, seed):
    return np.triu(random_matrix(n, seed=seed), -1)


class TestSchurForm:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 40, 90])
    def test_similarity_and_orthogonality(self, n):
        h = _hess(n, n + 7)
        t, z = hessenberg_schur(h)
        scale = max(float(np.linalg.norm(h, 1)), 1e-300)
        assert float(np.linalg.norm(h - z @ t @ z.T, 1)) / scale < 1e-12
        assert orthogonality_residual(z) < 1e-13

    def test_t_is_quasi_triangular(self):
        t, _ = hessenberg_schur(_hess(50, 1))
        assert is_quasi_triangular(t, tol=1e-12)

    def test_eigvals_match_hqr(self):
        h = _hess(45, 2)
        t, _ = hessenberg_schur(h)
        e1 = np.sort_complex(schur_eigvals(t))
        e2 = np.sort_complex(hessenberg_eigvals(h))
        np.testing.assert_allclose(e1, e2, atol=1e-8)

    def test_two_by_two_blocks_are_complex_pairs(self):
        t, _ = hessenberg_schur(_hess(40, 3))
        i = 0
        n = t.shape[0]
        while i < n:
            if i + 1 < n and t[i + 1, i] != 0.0:
                # a genuine 2x2 block must carry a complex pair
                blk = t[i : i + 2, i : i + 2]
                disc = (blk[0, 0] + blk[1, 1]) ** 2 / 4 - np.linalg.det(blk)
                assert disc < 0, "2x2 blocks must be unreduced complex pairs"
                i += 2
            else:
                i += 1

    def test_symmetric_input_diagonalizes(self):
        a = random_matrix(30, MatrixKind.SYMMETRIC, seed=4)
        work = a.copy(order="F")
        fac = gehrd(work, nb=8)
        h = extract_hessenberg(work)
        t, z = hessenberg_schur(h, check_input=False)
        # symmetric spectrum is real: T is (numerically) triangular
        assert float(np.max(np.abs(np.diag(t, -1)))) < 1e-8
        np.testing.assert_allclose(
            np.sort(np.diag(t)), np.sort(np.linalg.eigvalsh(a)), atol=1e-10
        )

    def test_full_pipeline_schur_of_general_matrix(self):
        """A = (Q Z) T (Q Z)ᵀ — the complete dense eigensolver."""
        a = random_matrix(60, seed=5)
        work = a.copy(order="F")
        fac = gehrd(work, nb=16)
        q = orghr(work, fac.taus)
        h = extract_hessenberg(work)
        t, z = hessenberg_schur(h, check_input=False)
        qz = q @ z
        scale = float(np.linalg.norm(a, 1))
        assert float(np.linalg.norm(a - qz @ t @ qz.T, 1)) / scale < 1e-12
        assert orthogonality_residual(qz) < 1e-12

    def test_rejects_non_hessenberg(self):
        with pytest.raises(ShapeError):
            hessenberg_schur(random_matrix(8, seed=6))

    def test_empty(self):
        t, z = hessenberg_schur(np.zeros((0, 0), order="F"))
        assert t.shape == (0, 0) and z.shape == (0, 0)


class TestQuasiTriangularCheck:
    def test_accepts_triangular(self):
        assert is_quasi_triangular(np.triu(random_matrix(10, seed=7)))

    def test_rejects_consecutive_subdiagonals(self):
        t = np.triu(random_matrix(10, seed=8))
        t[3, 2] = 1.0
        t[4, 3] = 1.0
        assert not is_quasi_triangular(t)

    def test_accepts_isolated_blocks(self):
        t = np.triu(random_matrix(10, seed=9))
        t[3, 2] = 1.0
        t[7, 6] = 1.0
        assert is_quasi_triangular(t)
