"""Tests for the empirical protection-coverage map."""

import numpy as np
import pytest

from repro.analysis import coverage_map
from repro.faults import finished_cols_at


class TestCoverageMap:
    @pytest.fixture(scope="class")
    def cmap(self):
        return coverage_map(n=96, nb=32, iteration=1, grid=10)

    def test_no_refusals_or_unknowns(self, cmap):
        assert cmap.count("F") == 0
        assert not np.any(cmap.grid == "?")

    def test_silent_cells_confined_to_finished_h_wedge(self, cmap):
        """The only silent-corruption cells are the paper's unprotected
        finished-H region: j < p and i <= j+1."""
        p = finished_cols_at(1, 96, 32)
        for (i, j) in cmap.silent_corruption_cells:
            assert j < p and i <= j + 1, f"unexpected hole at ({i}, {j})"

    def test_everything_outside_the_wedge_recovers(self, cmap):
        p = finished_cols_at(1, 96, 32)
        for a, i in enumerate(cmap.rows):
            for b, j in enumerate(cmap.cols):
                if not (j < p and i <= j + 1):
                    assert cmap.grid[a, b] == "R", f"({i}, {j}) = {cmap.grid[a, b]}"

    def test_render_contains_counts(self, cmap):
        out = cmap.render()
        assert "recovered" in out and "SILENT" in out

    def test_late_iteration_shrinks_coverage_hole_relative_shape(self):
        """Injecting later → more finished columns → a larger wedge (the
        hole grows with p, exactly as the mask predicts)."""
        early = coverage_map(n=96, nb=32, iteration=1, grid=8)
        late = coverage_map(n=96, nb=32, iteration=2, grid=8)
        assert late.count("X") >= early.count("X")


class TestAuditExtension:
    def test_audit_closes_the_hole(self):
        """FTConfig(audit_every=k) eliminates the finished-H silent
        region entirely."""
        cmap = coverage_map(n=96, nb=32, iteration=1, grid=8, audit_every=2)
        assert cmap.count("X") == 0
        assert cmap.count("R") == cmap.grid.size

    def test_audit_no_false_positives(self):
        from repro.core import FTConfig, ft_gehrd
        from repro.utils.rng import random_matrix

        a0 = random_matrix(128, seed=50)
        res = ft_gehrd(a0, FTConfig(nb=32, audit_every=1))
        assert res.detections == 0
        assert not res.recoveries

    def test_audit_cost_quantified(self):
        """Modeled: the audit sweeps are bandwidth-bound GEMVs, so full
        coverage costs mid-single-digit percent at every-2 cadence (vs
        sub-1%% for the paper-faithful mode) — the price of closing the
        finished-H hole, and the reason the paper's Σ-test design keeps
        its O(N) per-iteration check."""
        from repro.core import FTConfig, HybridConfig, ft_gehrd, hybrid_gehrd, overhead_percent

        base = hybrid_gehrd(4030, HybridConfig(nb=32, functional=False))
        plain = ft_gehrd(4030, FTConfig(nb=32, functional=False))
        audited = ft_gehrd(4030, FTConfig(nb=32, functional=False, audit_every=2))
        sparse = ft_gehrd(4030, FTConfig(nb=32, functional=False, audit_every=8))
        o1 = overhead_percent(plain, base)
        o2 = overhead_percent(audited, base)
        o3 = overhead_percent(sparse, base)
        assert o1 < o3 < o2 < o1 + 10.0
