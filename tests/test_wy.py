"""Unit tests for the compact WY representation (larft / larfb)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg.householder import full_vector, larfg, reflector_matrix
from repro.linalg.wy import block_reflector, larfb, larft


def _reflector_set(rng, m, k):
    """Generate k consistent Householder vectors of length m (forward,
    columnwise storage: unit at row i of column i, zeros above)."""
    v = np.zeros((m, k), order="F")
    taus = np.zeros(k)
    for i in range(k):
        refl = larfg(1.0 + rng.standard_normal(), rng.standard_normal(m - i - 1))
        v[i, i] = 1.0
        v[i + 1 :, i] = refl.v
        taus[i] = refl.tau
    return v, taus


def _explicit_product(v, taus):
    m, k = v.shape
    u = np.eye(m)
    for i in range(k):
        u = u @ reflector_matrix(taus[i], v[:, i])
    return u


class TestLarft:
    def test_matches_explicit_product(self, rng):
        v, taus = _reflector_set(rng, 8, 3)
        t = larft(v, taus)
        np.testing.assert_allclose(block_reflector(v, t), _explicit_product(v, taus), atol=1e-13)

    def test_t_is_upper_triangular(self, rng):
        v, taus = _reflector_set(rng, 10, 4)
        t = larft(v, taus)
        np.testing.assert_array_equal(np.tril(t, -1), 0.0)

    def test_diagonal_is_taus(self, rng):
        v, taus = _reflector_set(rng, 10, 4)
        t = larft(v, taus)
        np.testing.assert_allclose(np.diag(t), taus)

    def test_zero_tau_column(self, rng):
        v, taus = _reflector_set(rng, 6, 2)
        taus[1] = 0.0
        t = larft(v, taus)
        assert np.all(t[:, 1] == 0.0)

    def test_shape_mismatch(self, rng):
        v, taus = _reflector_set(rng, 6, 2)
        with pytest.raises(ShapeError):
            larft(v, taus[:1])

    def test_orthogonality_of_block(self, rng):
        v, taus = _reflector_set(rng, 12, 5)
        t = larft(v, taus)
        u = block_reflector(v, t)
        np.testing.assert_allclose(u @ u.T, np.eye(12), atol=1e-13)


class TestLarfb:
    @pytest.mark.parametrize("side", ["left", "right"])
    @pytest.mark.parametrize("trans", [False, True])
    def test_matches_explicit(self, rng, side, trans):
        v, taus = _reflector_set(rng, 9, 3)
        t = larft(v, taus)
        u = block_reflector(v, t)
        op = u.T if trans else u
        if side == "left":
            c = np.asfortranarray(rng.standard_normal((9, 5)))
            ref = op @ c
        else:
            c = np.asfortranarray(rng.standard_normal((5, 9)))
            ref = c @ op
        larfb(v, t, c, side=side, trans=trans)
        np.testing.assert_allclose(c, ref, atol=1e-13)

    def test_left_then_reverse_restores(self, rng):
        # the reverse-computation identity: U (Uᵀ C) = C
        v, taus = _reflector_set(rng, 9, 3)
        t = larft(v, taus)
        c = np.asfortranarray(rng.standard_normal((9, 4)))
        ref = c.copy()
        larfb(v, t, c, side="left", trans=True)
        larfb(v, t, c, side="left", trans=False)
        np.testing.assert_allclose(c, ref, atol=1e-12)

    def test_right_then_reverse_restores(self, rng):
        v, taus = _reflector_set(rng, 9, 3)
        t = larft(v, taus)
        c = np.asfortranarray(rng.standard_normal((4, 9)))
        ref = c.copy()
        larfb(v, t, c, side="right", trans=False)
        larfb(v, t, c, side="right", trans=True)
        np.testing.assert_allclose(c, ref, atol=1e-12)

    def test_shape_checks(self, rng):
        v, taus = _reflector_set(rng, 6, 2)
        t = larft(v, taus)
        with pytest.raises(ShapeError):
            larfb(v, t, np.zeros((5, 3), order="F"), side="left")
        with pytest.raises(ShapeError):
            larfb(v, t, np.zeros((3, 6), order="F"), side="up")

    def test_extended_v_updates_checksum_row(self, rng):
        # The FT trick: appending eᵀV to V makes the RIGHT update carry the
        # row-checksum column along consistently.
        m, k = 8, 3
        v, taus = _reflector_set(rng, m, k)
        t = larft(v, taus)
        a = np.asfortranarray(rng.standard_normal((5, m)))
        chk = a @ np.ones(m)  # row checksums
        ext = np.hstack([a, chk[:, None]])
        vce = np.vstack([v, np.ones(m) @ v])
        # emulate right update on extended columns: ext -= (A V) T Vceᵀ
        w = (a @ v) @ t
        ext -= w @ vce.T
        a2 = ext[:, :m]
        np.testing.assert_allclose(ext[:, m], a2 @ np.ones(m), atol=1e-12)
