"""Tests for the blocked symmetric tridiagonal reduction (latrd/sytrd)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg import factorization_residual, orthogonality_residual
from repro.linalg.sytd2 import orgtr, sytd2, tridiagonal_of
from repro.linalg.sytrd import latrd, sytrd
from repro.utils.rng import MatrixKind, random_matrix


class TestLatrd:
    def test_panel_matches_unblocked(self):
        """After one panel + the deferred SYR2K, the state must equal the
        unblocked algorithm's state after the same columns."""
        from repro.linalg.householder import larfg

        n, nb = 12, 4
        a0 = random_matrix(n, MatrixKind.SYMMETRIC, seed=1)
        ref = a0.copy(order="F")
        for j in range(nb):
            refl = larfg(ref[j + 1, j], ref[j + 2 : n, j])
            tau, beta = refl.tau, refl.beta
            ref[j + 1, j] = 1.0
            vv = ref[j + 1 : n, j].copy()
            if tau != 0:
                trail = ref[j + 1 : n, j + 1 : n]
                u = tau * (trail @ vv)
                ww = u - (0.5 * tau * float(u @ vv)) * vv
                trail -= np.outer(vv, ww) + np.outer(ww, vv)
            ref[j + 1, j] = beta
            ref[j, j + 1] = beta
            ref[j + 2 : n, j] = refl.v
            ref[j, j + 2 : n] = 0.0

        blk = a0.copy(order="F")
        taus = np.zeros(n - 1)
        v, w = latrd(blk, 0, nb, n, taus)
        lo = nb - 1
        blk[nb:n, nb:n] -= v[lo:, :] @ w[lo:, :].T + w[lo:, :] @ v[lo:, :].T
        np.testing.assert_allclose(blk, ref, atol=1e-12)

    def test_invalid_panel(self):
        a = random_matrix(10, MatrixKind.SYMMETRIC, seed=2)
        with pytest.raises(ShapeError):
            latrd(a, 8, 4, 10, np.zeros(9))


class TestSytrdBlocked:
    @pytest.mark.parametrize("n,nb", [(20, 4), (65, 8), (129, 32)])
    def test_correctness(self, n, nb):
        a0 = random_matrix(n, MatrixKind.SYMMETRIC, seed=n + nb)
        a = a0.copy(order="F")
        taus = sytrd(a, nb=nb)
        t = tridiagonal_of(a)
        q = orgtr(a, taus)
        assert factorization_residual(a0, q, t) < 1e-13
        assert orthogonality_residual(q) < 1e-13

    def test_matches_unblocked_band(self):
        a0 = random_matrix(60, MatrixKind.SYMMETRIC, seed=3)
        ab = a0.copy(order="F")
        au = a0.copy(order="F")
        sytrd(ab, nb=8)
        sytd2(au)
        np.testing.assert_allclose(np.diag(ab), np.diag(au), atol=1e-11)
        np.testing.assert_allclose(
            np.abs(np.diag(ab, -1)), np.abs(np.diag(au, -1)), atol=1e-11
        )

    def test_eigenvalues_preserved(self):
        a0 = random_matrix(80, MatrixKind.SYMMETRIC, seed=4)
        a = a0.copy(order="F")
        sytrd(a, nb=16)
        t = tridiagonal_of(a)
        np.testing.assert_allclose(
            np.sort(np.linalg.eigvalsh(a0)), np.sort(np.linalg.eigvalsh(t)), atol=1e-11
        )

    def test_rejects_nonsymmetric(self):
        with pytest.raises(ShapeError):
            sytrd(random_matrix(10, seed=5))

    def test_nb_larger_than_n(self):
        a0 = random_matrix(10, MatrixKind.SYMMETRIC, seed=6)
        a = a0.copy(order="F")
        taus = sytrd(a, nb=64)  # falls through to the unblocked path
        t = tridiagonal_of(a)
        q = orgtr(a, taus)
        assert factorization_residual(a0, q, t) < 1e-13
