"""Tests for the shared utilities (validation, rng, fmt)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.utils.fmt import Table, format_float, format_si
from repro.utils.rng import MatrixKind, make_rng, random_matrix
from repro.utils.validation import as_fortran, check_matrix, check_square, require


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ShapeError, match="broken"):
            require(False, "broken")

    def test_as_fortran_preserves_and_converts(self):
        c = np.ones((3, 3))  # C-ordered
        f = as_fortran(c)
        assert f.flags.f_contiguous
        f2 = as_fortran(f)
        assert f2 is f  # no copy when already Fortran

    def test_as_fortran_vector_passthrough(self):
        v = np.arange(3.0)
        assert as_fortran(v).shape == (3,)

    def test_check_matrix_rules(self):
        check_matrix(np.zeros((2, 2)))
        with pytest.raises(ShapeError):
            check_matrix(np.zeros(3))
        with pytest.raises(ShapeError):
            check_matrix(np.zeros((2, 2), dtype=np.float32))
        with pytest.raises(ShapeError):
            check_matrix([[1.0]])

    def test_check_matrix_writeable(self):
        a = np.zeros((2, 2))
        a.flags.writeable = False
        with pytest.raises(ShapeError):
            check_matrix(a, writeable=True)

    def test_check_square(self):
        assert check_square(np.zeros((4, 4))) == 4
        with pytest.raises(ShapeError):
            check_square(np.zeros((3, 4)))


class TestRng:
    def test_deterministic(self):
        np.testing.assert_array_equal(random_matrix(8, seed=1), random_matrix(8, seed=1))

    def test_different_seeds_differ(self):
        assert not np.array_equal(random_matrix(8, seed=1), random_matrix(8, seed=2))

    def test_all_kinds_produce_fortran_f64(self):
        for kind in MatrixKind:
            a = random_matrix(12, kind, seed=3)
            assert a.dtype == np.float64 and a.flags.f_contiguous

    def test_symmetric_is_symmetric(self):
        a = random_matrix(12, MatrixKind.SYMMETRIC, seed=4)
        np.testing.assert_array_equal(a, a.T)

    def test_hessenberg_kind_structure(self):
        from repro.linalg import is_hessenberg

        assert is_hessenberg(random_matrix(12, MatrixKind.HESSENBERG, seed=5))

    def test_well_conditioned_condition_number(self):
        a = random_matrix(20, MatrixKind.WELL_CONDITIONED, seed=6)
        assert np.linalg.cond(a) < 5.0

    def test_invalid_order(self):
        with pytest.raises(ShapeError):
            random_matrix(0)

    def test_make_rng_passthrough(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g


class TestFmt:
    def test_format_float(self):
        assert format_float(6.2529e-18) == "6.2529e-18"
        assert format_float(0.0) == "0"
        assert format_float(float("nan")) == "nan"

    def test_format_si(self):
        assert format_si(1.43e12, "flop/s") == "1.43 Tflop/s"
        assert format_si(10.4e9, "flop/s") == "10.4 Gflop/s"
        assert format_si(5.0) == "5"

    def test_table_render_alignment(self):
        t = Table(["N", "value"], title="demo")
        t.add_row([1022, 6.25e-18])
        t.add_row([10110, 1.75e-17])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert len({len(l) for l in lines[1:]}) <= 2  # aligned widths

    def test_table_rejects_ragged_rows(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])
