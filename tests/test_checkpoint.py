"""Tests for the diskless panel checkpoint store."""

import numpy as np
import pytest

from repro.abft import DisklessCheckpointStore, EncodedMatrix
from repro.errors import ReproError
from repro.utils.rng import random_matrix


class TestCheckpointStore:
    def test_save_restore_roundtrip(self):
        em = EncodedMatrix(random_matrix(16, seed=1))
        store = DisklessCheckpointStore()
        store.save(em, 4, 4)
        saved = em.data[:, 4:8].copy()
        em.data[:, 4:8] = -1.0
        em.col_checksums[4:8] = 0.0
        store.restore(em)
        np.testing.assert_array_equal(em.data[:, 4:8], saved)

    def test_restore_includes_checksum_segment(self):
        em = EncodedMatrix(random_matrix(16, seed=2))
        store = DisklessCheckpointStore()
        seg = em.col_checksums[0:4].copy()
        store.save(em, 0, 4)
        em.col_checksums[0:4] = 123.0
        store.restore(em)
        np.testing.assert_array_equal(em.col_checksums[0:4], seg)

    def test_only_latest_checkpoint_kept(self):
        em = EncodedMatrix(random_matrix(16, seed=3))
        store = DisklessCheckpointStore()
        store.save(em, 0, 4)
        store.save(em, 4, 4)
        assert store.current.p == 4
        assert store.saves == 2

    def test_restore_without_save_raises(self):
        em = EncodedMatrix(random_matrix(8, seed=4))
        with pytest.raises(ReproError):
            DisklessCheckpointStore().restore(em)

    def test_peak_bytes_matches_panel_size(self):
        """The paper's §V storage claim: the checkpoint is panel-sized."""
        n, nb = 64, 16
        em = EncodedMatrix(random_matrix(n, seed=5))
        store = DisklessCheckpointStore()
        store.save(em, 0, nb)
        assert store.peak_bytes == 8 * (n * nb + nb)

    def test_restore_does_not_touch_other_columns(self):
        em = EncodedMatrix(random_matrix(16, seed=6))
        store = DisklessCheckpointStore()
        store.save(em, 4, 4)
        before = em.data[:, 8:].copy()
        em.data[:, 4:8] = 0.0
        store.restore(em)
        np.testing.assert_array_equal(em.data[:, 8:], before)
