"""Shared fixtures for the test suite."""

import glob
import os

import numpy as np
import pytest

from repro.utils.rng import MatrixKind, random_matrix


@pytest.fixture(autouse=True)
def _shm_leak_guard():
    """Fail any test that leaks a shared-memory data-plane segment.

    Segment hygiene is a hard acceptance criterion for the zero-copy
    transport (see docs/performance.md): no test — crash-chaos,
    cancellation, pool rebuild, none — may leave a ``repro-shm-*``
    entry in /dev/shm behind. Pre-existing segments (a concurrent
    pytest-xdist worker's live pool) are tolerated; only segments that
    *appear* during the test and survive it are a failure.
    """
    if not os.path.isdir("/dev/shm"):
        yield
        return
    before = set(glob.glob("/dev/shm/repro-shm-*"))
    yield
    leaked = [p for p in set(glob.glob("/dev/shm/repro-shm-*")) - before
              if os.path.exists(p)]
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_matrix():
    """A 24x24 uniform test matrix (fast path for kernel tests)."""
    return random_matrix(24, seed=7)


@pytest.fixture
def medium_matrix():
    """A 96x96 uniform test matrix (multi-panel blocked runs)."""
    return random_matrix(96, seed=11)


@pytest.fixture
def paper_small_matrix():
    """The paper's Fig. 2 configuration: N=158, nb=32."""
    return random_matrix(158, seed=42)


@pytest.fixture
def symmetric_matrix():
    return random_matrix(64, MatrixKind.SYMMETRIC, seed=3)
