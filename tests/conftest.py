"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.utils.rng import MatrixKind, random_matrix


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_matrix():
    """A 24x24 uniform test matrix (fast path for kernel tests)."""
    return random_matrix(24, seed=7)


@pytest.fixture
def medium_matrix():
    """A 96x96 uniform test matrix (multi-panel blocked runs)."""
    return random_matrix(96, seed=11)


@pytest.fixture
def paper_small_matrix():
    """The paper's Fig. 2 configuration: N=158, nb=32."""
    return random_matrix(158, seed=42)


@pytest.fixture
def symmetric_matrix():
    return random_matrix(64, MatrixKind.SYMMETRIC, seed=3)
