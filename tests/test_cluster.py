"""Tests for the sharded serve tier (``repro.cluster``).

The chaos scenario here is the subsystem's acceptance gate: kill a
shard while its jobs are in flight and the cluster must (a) lose zero
jobs — every accepted submission reaches a terminal state, the lost
ones replayed through the ``worker_lost`` retry budget; (b) restart
the shard automatically; and (c) serve at least one cache hit for a
key the dead shard owned, out of the replicated/rehydrated cache.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import ClusterService, HashRing
from repro.serve import JobSpec, RetryPolicy
from repro.serve.jobs import DONE, FAILED
from repro.serve.retry import WORKER_LOST


def key_owned_by(svc: ClusterService, shard_id: str, *, n: int = 24) -> JobSpec:
    """A small job whose content key the given shard owns."""
    for seed in range(500):
        spec = JobSpec(driver="ft_gehrd", n=n, seed=seed)
        if svc.ring.owner(spec.key) == shard_id:
            return spec
    raise AssertionError(f"no key owned by {shard_id} in 500 seeds")


class TestRouting:
    def test_batch_places_by_ring_owner_and_completes(self):
        with ClusterService(shards=3, workers=1, small_n_threshold=64,
                            health_interval=5.0) as svc:
            specs = [JobSpec(driver="ft_gehrd", n=24, seed=s) for s in range(12)]
            subs = svc.submit_batch(specs)
            assert all(s.accepted for s in subs)
            for spec, sub in zip(specs, subs):
                assert sub.route == "owner"
                assert sub.shard == svc.ring.owner(spec.key)
            svc.drain(timeout=60)
            results = [svc.result(s.job_id) for s in subs]
            assert all(r.status == DONE for r in results)

    def test_duplicate_key_hits_shard_cache(self):
        with ClusterService(shards=2, workers=1, small_n_threshold=64,
                            health_interval=5.0) as svc:
            spec = JobSpec(driver="ft_gehrd", n=24, seed=7)
            first = svc.submit(spec)
            assert svc.result(first.job_id, timeout=60).status == DONE
            again = svc.submit(JobSpec(driver="ft_gehrd", n=24, seed=7))
            res = svc.result(again.job_id, timeout=60)
            assert res.status == DONE
            assert res.cache_hit  # same shard via the ring => warm cache

    def test_cross_shard_coalescing_while_leader_in_flight(self):
        # in-thread lane keeps the leader busy long enough on 1 CPU for
        # the duplicate to arrive while it is non-terminal
        with ClusterService(shards=2, workers=1, small_n_threshold=256,
                            health_interval=5.0) as svc:
            spec = JobSpec(driver="ft_gehrd", n=160, seed=1)
            leader = svc.submit(spec)
            dup = svc.submit(JobSpec(driver="ft_gehrd", n=160, seed=1))
            svc.drain(timeout=120)
            assert svc.result(leader.job_id).status == DONE
            assert svc.result(dup.job_id).status == DONE
            if dup.route == "coalesced":
                # both ids resolve to the same underlying result
                assert (svc.result(dup.job_id).payload
                        == svc.result(leader.job_id).payload)
            else:
                # leader already finished: duplicate must be a cache hit
                assert svc.result(dup.job_id).cache_hit

    def test_invalid_spec_rejected_with_reason(self):
        with ClusterService(shards=2, workers=1, small_n_threshold=64,
                            health_interval=5.0) as svc:
            sub = svc.submit(JobSpec(driver="ft_gehrd", n=-3, seed=0))
            assert not sub.accepted
            assert sub.reason.startswith("invalid")

    def test_unknown_job_id_raises(self):
        with ClusterService(shards=1, workers=1, small_n_threshold=64,
                            health_interval=5.0) as svc:
            with pytest.raises(KeyError):
                svc.result(999)

    def test_spillover_when_owner_saturated(self):
        # spill_threshold=0 treats every non-last-resort shard as
        # saturated, so the owner is always skipped: pure spillover
        with ClusterService(shards=2, workers=1, small_n_threshold=64,
                            spill_threshold=0, health_interval=5.0) as svc:
            spec = JobSpec(driver="ft_gehrd", n=24, seed=3)
            sub = svc.submit(spec)
            assert sub.accepted
            assert sub.route == "spillover"
            assert sub.shard != svc.ring.owner(spec.key)
            assert svc.result(sub.job_id, timeout=60).status == DONE

    def test_describe_reports_placement(self):
        with ClusterService(shards=2, workers=1, small_n_threshold=64,
                            health_interval=5.0) as svc:
            sub = svc.submit(JobSpec(driver="ft_gehrd", n=24, seed=11))
            svc.drain(timeout=60)
            d = svc.describe(sub.job_id)
            assert d["shard"] == sub.shard
            assert d["route"] == "owner"
            assert d["terminal"] and d["status"] == DONE
            assert d["latency_s"] > 0
            assert svc.describe(12345) is None


class TestReplication:
    def test_push_on_fill_lands_in_successor_cache(self):
        with ClusterService(shards=3, workers=1, small_n_threshold=64,
                            health_interval=5.0) as svc:
            spec = JobSpec(driver="ft_gehrd", n=24, seed=5)
            sub = svc.submit(spec)
            assert svc.result(sub.job_id, timeout=60).status == DONE
            succ = svc.ring.successor(spec.key)
            assert succ != sub.shard
            replica = svc.shards[succ].service.cache.get(spec.key)
            assert replica is not None
            assert replica == svc.result(sub.job_id).payload

    def test_replicate_false_disables_the_hook(self):
        with ClusterService(shards=2, workers=1, small_n_threshold=64,
                            replicate=False, health_interval=5.0) as svc:
            assert svc.replicator is None
            sub = svc.submit(JobSpec(driver="ft_gehrd", n=24, seed=5))
            assert svc.result(sub.job_id, timeout=60).status == DONE
            assert svc.stats()["replication"] is None


class TestFailover:
    def test_dead_shard_keys_route_to_survivors(self):
        with ClusterService(shards=3, workers=1, small_n_threshold=64,
                            auto_restart=False, health_interval=5.0) as svc:
            spec = key_owned_by(svc, "shard-1")
            svc.kill_shard(1)
            sub = svc.submit(spec)
            assert sub.accepted
            assert sub.route == "failover"
            assert sub.shard != "shard-1"
            assert svc.result(sub.job_id, timeout=60).status == DONE

    def test_all_shards_dead_is_a_structured_rejection(self):
        with ClusterService(shards=2, workers=1, small_n_threshold=64,
                            auto_restart=False, health_interval=5.0) as svc:
            svc.kill_shard(0)
            svc.kill_shard(1)
            sub = svc.submit(JobSpec(driver="ft_gehrd", n=24, seed=0))
            assert not sub.accepted
            assert "no live shard" in sub.reason


class TestChaos:
    def test_kill_mid_batch_loses_nothing_and_replica_serves(self):
        with ClusterService(shards=3, workers=1, small_n_threshold=0,
                            health_interval=0.05) as svc:
            # a key shard-0 owns, completed and therefore replicated
            probe = key_owned_by(svc, "shard-0")
            assert svc.result(svc.submit(probe).job_id, timeout=120).status == DONE

            # heavy pool-lane jobs so shard-0 has work in flight to lose
            specs = [JobSpec(driver="ft_gehrd", n=384, seed=1000 + i)
                     for i in range(9)]
            subs = svc.submit_batch(specs)
            assert all(s.accepted for s in subs)
            svc.kill_shard(0)
            svc.drain(timeout=240)

            # (a) zero lost jobs: every submission is terminal and done
            results = [svc.result(s.job_id) for s in subs]
            assert all(r.status == DONE for r in results)

            # (b) the shard came back and its losses were replayed
            health = svc.stats()["health"]
            assert health["restarts"] >= 1
            assert svc.shards["shard-0"].heartbeat()
            replayed = [svc.describe(s.job_id)["replays"] for s in subs]
            assert sum(replayed) >= 1

            # (c) a key the dead shard owned serves from the replicated
            # (rehydrated) cache rather than recomputing
            again = svc.submit(probe)
            res = svc.result(again.job_id, timeout=120)
            assert res.status == DONE
            assert res.cache_hit

            # bounded tail: no completed job waited unreasonably long
            latencies = svc.router.latencies()
            assert latencies and latencies[-1] < 240

    def test_replay_budget_exhaustion_fails_explicitly(self):
        # worker_lost_retries=0 => the first loss is final, but it must
        # surface as a classified failure, never a hang or a lost job
        policy = RetryPolicy(worker_lost_retries=0)
        with ClusterService(shards=2, workers=1, small_n_threshold=0,
                            retry=policy, health_interval=0.05) as svc:
            specs = [JobSpec(driver="ft_gehrd", n=384, seed=2000 + i)
                     for i in range(6)]
            subs = svc.submit_batch(specs)
            pending = {
                sid: len(t) for sid, t in svc.router._pending.items()
            }
            svc.kill_shard(0)
            svc.drain(timeout=240)
            results = [svc.result(s.job_id) for s in subs]
            assert all(r.terminal for r in results)
            if pending.get("shard-0", 0) > 0:
                lost = [r for r in results if r.status == FAILED]
                assert lost, "in-flight jobs on the killed shard must fail"
                assert all(r.failure_class == WORKER_LOST for r in lost)
                assert all("exhausted" in r.error for r in lost)


class TestLifecycle:
    def test_stats_shape(self):
        with ClusterService(shards=2, workers=1, small_n_threshold=64,
                            health_interval=5.0) as svc:
            st = svc.stats()
            assert st["ring"]["shards"] == ["shard-0", "shard-1"]
            assert set(st["shards"]) == {"shard-0", "shard-1"}
            for shard_stats in st["shards"].values():
                assert shard_stats["alive"]
                assert shard_stats["uptime_s"] >= 0
                assert shard_stats["queue_depth"] == 0
            assert st["router"]["counts"]["accepted"] == 0
            assert st["health"]["interval_s"] == 5.0

    def test_submit_after_close_rejected(self):
        svc = ClusterService(shards=1, workers=1, small_n_threshold=64,
                             health_interval=5.0)
        svc.close()
        sub = svc.submit(JobSpec(driver="ft_gehrd", n=24, seed=0))
        assert not sub.accepted
        assert "closed" in sub.reason

    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError):
            ClusterService(shards=0)

    def test_close_is_idempotent_and_quick(self):
        svc = ClusterService(shards=2, workers=1, small_n_threshold=64,
                             health_interval=5.0)
        t0 = time.monotonic()
        svc.close()
        svc.close()
        assert time.monotonic() - t0 < 30


class TestRingIntegration:
    def test_cluster_uses_content_keys_not_job_ids(self):
        # the ring sees JobSpec.key, so logically identical specs from
        # different submitters land on the same shard
        ring = HashRing(["s0", "s1", "s2"])
        a = JobSpec(driver="ft_gehrd", n=96, seed=3, submitter="alice")
        b = JobSpec(driver="ft_gehrd", n=96, seed=3, submitter="bob")
        assert a.key == b.key
        assert ring.owner(a.key) == ring.owner(b.key)
