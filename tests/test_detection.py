"""Tests for the detector and threshold policies (paper §IV-C lines 12-13)."""

import numpy as np
import pytest

from repro.abft import Detector, EncodedMatrix, ThresholdPolicy
from repro.errors import DetectionError
from repro.utils.rng import MatrixKind, random_matrix


class TestThresholdPolicy:
    def test_norm_policy_scales_with_n_and_norm(self):
        p = ThresholdPolicy(kind="norm", eps_factor=1e3)
        t1 = p.threshold(100, 10.0, 0.0, 0.0)
        t2 = p.threshold(200, 10.0, 0.0, 0.0)
        t3 = p.threshold(100, 20.0, 0.0, 0.0)
        assert t2 == pytest.approx(2 * t1)
        assert t3 == pytest.approx(2 * t1)

    def test_running_policy_uses_sums(self):
        p = ThresholdPolicy(kind="running")
        assert p.threshold(10, 0.0, 100.0, 5.0) > p.threshold(10, 0.0, 1.0, 1.0)

    def test_absolute_policy_is_constant(self):
        p = ThresholdPolicy(kind="absolute", eps_factor=1e3)
        eps = float(np.finfo(np.float64).eps)
        assert p.threshold(10, 1e6, 1e9, 1e9) == pytest.approx(1e3 * eps)

    def test_unknown_kind(self):
        with pytest.raises(DetectionError):
            ThresholdPolicy(kind="bogus").threshold(1, 1, 1, 1)

    def test_paper_eps_factor_default(self):
        # "2 to 3 orders of magnitude above machine epsilon"
        assert 1e2 <= ThresholdPolicy().eps_factor <= 1e3


class TestDetector:
    def _em(self, n=32, seed=0):
        a = random_matrix(n, seed=seed)
        return EncodedMatrix(a), float(np.linalg.norm(a, 1))

    def test_clean_matrix_not_detected(self):
        em, norm_a = self._em()
        det = Detector(ThresholdPolicy(), norm_a)
        assert det.check(em) is False
        assert det.checks == 1 and det.detections == 0

    def test_large_corruption_detected(self):
        em, norm_a = self._em(seed=1)
        det = Detector(ThresholdPolicy(), norm_a)
        em.ext[3, em.n] += 1.0  # corrupt a row-checksum element
        assert det.check(em) is True
        assert det.detections == 1

    def test_data_corruption_alone_is_invisible_to_sum_test(self):
        """The Σ test compares the two *maintained* vectors — a data
        corruption only becomes visible through subsequent maintained
        updates (this is the designed mechanism, verified end-to-end in
        the driver tests)."""
        em, norm_a = self._em(seed=2)
        det = Detector(ThresholdPolicy(), norm_a)
        em.data[4, 5] += 10.0
        assert det.check(em) is False

    def test_detection_threshold_magnitude_sweep(self):
        """Corruptions of the checksum column: detectable down to the
        roundoff floor, invisible far below it."""
        em, norm_a = self._em(n=64, seed=3)
        det = Detector(ThresholdPolicy(), norm_a)
        n = em.n
        em.ext[0, n] += 1e-3
        assert det.check(em) is True
        em.ext[0, n] -= 1e-3
        em.ext[0, n] += 1e-18
        assert det.check(em) is False

    def test_graded_matrix_no_false_positive(self):
        a = random_matrix(64, MatrixKind.GRADED, seed=4)
        em = EncodedMatrix(a)
        det = Detector(ThresholdPolicy(), float(np.linalg.norm(a, 1)))
        assert det.check(em) is False

    def test_counter_records_detect_flops(self):
        from repro.linalg import FlopCounter

        em, norm_a = self._em(seed=5)
        det = Detector(ThresholdPolicy(), norm_a)
        cnt = FlopCounter()
        det.check(em, counter=cnt)
        assert cnt.category_total("abft_detect") == 2 * (2 * em.n - 1)
