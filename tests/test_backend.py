"""Tests for the array-namespace backend seam (``repro.backend``).

Registry resolution, the adapter contracts (in-place vs functional),
BLAS routing, the whole-stack kernels' ≤ c·n·eps parity against the
scalar engine, the FT lane's ejection invariant (a fault never silently
rides the fast path), and the compile cache. The ``numpy_functional``
adapter exercises the exact code path the JAX backend jits, so the
functional contract is fully covered without an optional install;
JAX-only parity runs when ``jax`` is importable (the CI backend-smoke
runner) and skips cleanly otherwise.
"""

import numpy as np
import pytest

import repro.backend as B
from repro.backend import (
    BACKEND_NAMES,
    BackendUnavailableError,
    NumpyBackend,
    NumpyFunctionalBackend,
    available_backends,
    backend_available,
    backend_probe,
    canonical_backend_name,
    get_backend,
    is_known_backend,
)
from repro.backend.kernels import (
    checksum_banks,
    clear_compiled_cache,
    compiled_cache_info,
    encode_stack,
    get_chunk_kernel,
    identity_stack,
)
from repro.batch import ft_gehrd_stack, gehrd_stack
from repro.core import FTConfig, ft_gehrd
from repro.faults import FaultInjector, FaultSpec
from repro.linalg import (
    extract_hessenberg,
    factorization_residual,
    gehrd,
    orghr,
)
from repro.linalg.blas import axpy, gemm, gemv, ger
from repro.utils import random_matrix

HAS_JAX = backend_available("jax")


def _stack(b: int, n: int, *, seed0: int = 0, dtype=np.float64) -> np.ndarray:
    return np.stack([random_matrix(n, seed=seed0 + i, dtype=dtype) for i in range(b)])


class TestRegistry:
    def test_default_resolution(self, monkeypatch):
        monkeypatch.delenv(B.ENV_VAR, raising=False)
        assert canonical_backend_name(None) == "numpy"
        assert canonical_backend_name("") == "numpy"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(B.ENV_VAR, "numpy_functional")
        assert canonical_backend_name(None) == "numpy_functional"
        # an explicit name still wins over the env default
        assert canonical_backend_name("numpy") == "numpy"

    def test_canonicalization(self):
        assert canonical_backend_name("  NumPy-Functional ") == "numpy_functional"

    def test_known_names(self):
        assert BACKEND_NAMES == ("numpy", "numpy_functional", "jax", "cupy")
        for name in BACKEND_NAMES:
            assert is_known_backend(name)
        assert not is_known_backend("torch")

    def test_numpy_always_available(self):
        ok, version, reason = backend_probe("numpy")
        assert ok and version == np.__version__ and reason is None
        assert backend_available("numpy_functional")

    def test_get_backend_caches_instance(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_unknown_name_raises_typed(self):
        with pytest.raises(BackendUnavailableError, match="unknown backend"):
            get_backend("torch")

    def test_disabled_backend_raises_with_hint(self, monkeypatch):
        # the CI backend-smoke host has jax installed; the _DISABLED hook
        # makes the degradation path testable everywhere
        monkeypatch.setattr(B, "_DISABLED", {"jax"})
        assert not backend_available("jax")
        with pytest.raises(BackendUnavailableError, match=r"repro\[jax\]"):
            get_backend("jax")

    def test_available_backends_rows(self):
        rows = {r["name"]: r for r in available_backends()}
        assert set(rows) == set(BACKEND_NAMES)
        assert rows["numpy"]["available"] and rows["numpy"]["contract"] == "in-place"
        assert rows["numpy_functional"]["contract"] == "functional"
        assert rows["jax"]["contract"] == "functional"
        for r in rows.values():
            assert r["available"] or r["reason"]

    def test_exactly_one_default(self, monkeypatch):
        monkeypatch.delenv(B.ENV_VAR, raising=False)
        defaults = [r["name"] for r in available_backends() if r["default"]]
        assert defaults == ["numpy"]


class TestAdapterContracts:
    def test_numpy_backend_is_inplace(self):
        bk = NumpyBackend()
        assert bk.inplace_updates and bk.name == "numpy"
        a = np.zeros((3, 3))
        out = bk.at_set(a, (1, 2), 5.0)
        assert out is a and a[1, 2] == 5.0

    def test_functional_at_set_does_not_mutate(self):
        bk = NumpyFunctionalBackend()
        assert not bk.inplace_updates
        a = np.zeros((3, 3))
        out = bk.at_set(a, (1, 2), 5.0)
        assert out is not a and a[1, 2] == 0.0 and out[1, 2] == 5.0

    def test_matmul_into_inplace_honors_out(self):
        bk = NumpyBackend()
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((4, 5)), rng.standard_normal((5, 3))
        c = rng.standard_normal((4, 3))
        want = 2.0 * (a @ b) + 0.5 * c
        got = bk.matmul_into(a, b, c, alpha=2.0, beta=0.5)
        assert got is c
        np.testing.assert_allclose(c, want, rtol=1e-14)

    def test_eps_and_dtype_helpers(self):
        bk = NumpyBackend()
        assert bk.eps(np.float32) == np.finfo(np.float32).eps
        assert bk.canonical_dtype(np.zeros(2, dtype=np.float64)) == np.dtype(np.float64)

    def test_default_jit_and_fori_loop(self):
        bk = NumpyFunctionalBackend()
        f = bk.jit(lambda x, y: x + y)
        assert f(1, 2) == 3
        total = bk.fori_loop(0, 5, lambda i, acc: acc + i, 0)
        assert total == 10


class TestBlasRouting:
    """backend=None must be byte-identical; functional returns fresh."""

    def _ops(self):
        rng = np.random.default_rng(7)
        a = np.asfortranarray(rng.standard_normal((6, 4)))
        b = np.asfortranarray(rng.standard_normal((4, 5)))
        c = np.asfortranarray(rng.standard_normal((6, 5)))
        return a, b, c

    def test_gemm_default_path_in_place(self):
        a, b, c = self._ops()
        want = 1.5 * (a @ b) + c
        got = gemm(1.5, a, b, 1.0, c)
        assert got is c
        np.testing.assert_array_equal(c, want)

    def test_gemm_functional_backend_fresh_array(self):
        bk = NumpyFunctionalBackend()
        a, b, c = self._ops()
        c0 = c.copy()
        got = gemm(1.5, a, b, 1.0, c, backend=bk)
        assert got is not c
        np.testing.assert_array_equal(c, c0)  # input untouched
        np.testing.assert_allclose(got, 1.5 * (a @ b) + c0, rtol=1e-14)

    def test_gemm_numpy_backend_still_in_place(self):
        bk = NumpyBackend()
        a, b, c = self._ops()
        got = gemm(2.0, a, b, 0.0, c, backend=bk)
        assert got is c

    def test_gemv_ger_axpy_functional(self):
        bk = NumpyFunctionalBackend()
        rng = np.random.default_rng(9)
        a = rng.standard_normal((5, 4))
        x, y = rng.standard_normal(4), rng.standard_normal(5)
        y0 = y.copy()
        got = gemv(2.0, a, x, 1.0, y, backend=bk)
        assert got is not y
        np.testing.assert_array_equal(y, y0)
        np.testing.assert_allclose(got, 2.0 * (a @ x) + y0, rtol=1e-14)

        m = rng.standard_normal((5, 4))
        m0 = m.copy()
        got = ger(0.5, y0, x, m, backend=bk)
        assert got is not m
        np.testing.assert_array_equal(m, m0)
        np.testing.assert_allclose(got, m0 + 0.5 * np.outer(y0, x), rtol=1e-14)

        got = axpy(3.0, x, m0[0], backend=bk)
        assert got is not m0[0]
        np.testing.assert_allclose(got, 3.0 * x + m0[0], rtol=1e-14)

    def test_flops_counted_on_functional_path(self):
        from repro.linalg.flops import FlopCounter

        bk = NumpyFunctionalBackend()
        a, b, c = self._ops()
        c1, c2 = FlopCounter(), FlopCounter()
        gemm(1.0, a, b, 1.0, c.copy(), counter=c1)
        gemm(1.0, a, b, 1.0, c, counter=c2, backend=bk)
        assert c1.total == c2.total > 0


def _parity_tol(n: int, dtype=np.float64, c: float = 50.0) -> float:
    return c * n * float(np.finfo(dtype).eps)


class TestGehrdStackParity:
    @pytest.mark.parametrize("backend", ["numpy_functional"] + (["jax"] if HAS_JAX else []))
    def test_parity_vs_scalar(self, backend):
        b, n = 3, 48
        stack = _stack(b, n, seed0=10)
        hs, qs = gehrd_stack(stack, backend=backend, nb=8)
        scale = max(float(np.max(np.abs(stack))), 1.0)
        for i in range(b):
            fac = gehrd(stack[i].copy(order="F"), nb=8)
            h_ref = extract_hessenberg(fac.a)
            q_ref = orghr(fac.a, fac.taus)
            # reflector signs are pinned by the dlarfg convention, so H
            # itself (not just the factorization) must agree to roundoff
            assert np.max(np.abs(hs[i] - h_ref)) / scale <= _parity_tol(n)
            assert np.max(np.abs(np.abs(qs[i]) - np.abs(q_ref))) <= _parity_tol(n)
            assert factorization_residual(stack[i], qs[i], hs[i]) < 1e-14

    @pytest.mark.parametrize("backend", ["numpy_functional"] + (["jax"] if HAS_JAX else []))
    def test_orthogonality_and_structure(self, backend):
        b, n = 2, 32
        stack = _stack(b, n, seed0=3)
        hs, qs = gehrd_stack(stack, backend=backend)
        for i in range(b):
            assert np.max(np.abs(qs[i].T @ qs[i] - np.eye(n))) <= _parity_tol(n)
            assert np.allclose(np.tril(hs[i], -2), 0.0)

    def test_fp32_lane(self):
        b, n = 2, 32
        stack = _stack(b, n, seed0=5, dtype=np.float32)
        hs, qs = gehrd_stack(stack, backend="numpy_functional")
        for i in range(b):
            assert hs[i].dtype == np.float32
            res = factorization_residual(
                stack[i].astype(np.float64),
                qs[i].astype(np.float64),
                hs[i].astype(np.float64),
            )
            assert res <= _parity_tol(n, np.float32)

    def test_degenerate_item_cannot_poison_batch(self):
        # item 0 is already Hessenberg (every reflector degenerates to
        # the tau=0 identity branch); item 1 is dense — the masked
        # kernel must reduce both correctly in one stacked sweep
        n = 24
        dense = random_matrix(n, seed=1)
        already = np.triu(random_matrix(n, seed=2), -1)
        hs, qs = gehrd_stack(np.stack([already, dense]), backend="numpy_functional")
        np.testing.assert_allclose(hs[0], already, atol=1e-13)
        np.testing.assert_allclose(qs[0], np.eye(n), atol=1e-13)
        assert factorization_residual(dense, qs[1], hs[1]) < 1e-14


class TestCompiledCache:
    def test_one_entry_per_shape_key(self):
        clear_compiled_cache()
        bk = get_backend("numpy_functional")
        k1 = get_chunk_kernel(bk, 2, 16, encoded=False, dtype=np.dtype(np.float64))
        k2 = get_chunk_kernel(bk, 2, 16, encoded=False, dtype=np.dtype(np.float64))
        assert k1 is k2 and compiled_cache_info()[0] == 1
        get_chunk_kernel(bk, 2, 16, encoded=True, dtype=np.dtype(np.float64))
        get_chunk_kernel(bk, 3, 16, encoded=False, dtype=np.dtype(np.float64))
        assert compiled_cache_info()[0] == 3

    def test_chunking_reuses_one_kernel(self):
        clear_compiled_cache()
        gehrd_stack(_stack(2, 24), backend="numpy_functional", nb=4)
        gehrd_stack(_stack(2, 24), backend="numpy_functional", nb=8)
        # dynamic (lo, hi) bounds: different chunkings share one compile
        assert compiled_cache_info()[0] == 1


class TestEncodedKernels:
    def test_encode_and_banks_roundtrip(self):
        bk = get_backend("numpy_functional")
        stack = _stack(2, 16, seed0=20)
        ext = encode_stack(bk, stack)
        assert ext.shape == (2, 17, 17)
        rc, cc = checksum_banks(bk, ext)
        np.testing.assert_allclose(rc, stack.sum(axis=2), atol=1e-12)
        np.testing.assert_allclose(cc, stack.sum(axis=1), atol=1e-12)

    def test_fused_sweep_maintains_banks(self):
        bk = get_backend("numpy_functional")
        b, n = 2, 24
        stack = _stack(b, n, seed0=30)
        ext = encode_stack(bk, stack)
        q = identity_stack(bk, b, n, stack.dtype)
        kern = get_chunk_kernel(bk, b, n, encoded=True, dtype=stack.dtype)
        ext, q = kern(ext, q, 0, n - 1)
        ext_h = bk.to_numpy(ext)
        data = ext_h[:, :n, :n]
        # both banks must still equal the true sums of the updated data
        np.testing.assert_allclose(ext_h[:, n, :n], data.sum(axis=1), atol=1e-10)
        np.testing.assert_allclose(ext_h[:, :n, n], data.sum(axis=2), atol=1e-10)


class TestFtGehrdStack:
    def test_clean_batch_fast_path(self):
        b, n = 3, 48
        stack = _stack(b, n, seed0=40)
        res = ft_gehrd_stack(stack, FTConfig(nb=8, functional=True),
                             backend="numpy_functional")
        assert res.backend == "numpy_functional"
        assert res.fast_path == b and not res.ejected and not res.errors
        assert res.lane_detections == 0 and res.checks > 0
        assert res.seconds is not None and res.seconds > 0
        for i in range(b):
            assert res.residuals[i] < 1e-14
            ref = ft_gehrd(stack[i].copy(order="F"), FTConfig(nb=8, functional=True))
            h_ref = extract_hessenberg(ref.a)
            scale = max(float(np.max(np.abs(h_ref))), 1.0)
            assert np.max(np.abs(res.h[i] - h_ref)) / scale <= _parity_tol(n)

    def test_active_region_fault_trips_and_ejects(self):
        b, n = 3, 48
        stack = _stack(b, n, seed0=50)
        inj = FaultInjector().add(
            FaultSpec(space="matrix", iteration=1, phase="boundary",
                      row=20, col=25, magnitude=7.0)
        )
        res = ft_gehrd_stack(stack, FTConfig(nb=8, functional=True),
                             backend="numpy_functional",
                             injectors=[None, inj, None])
        assert res.ejected == [1]
        assert res.lane_detections == 1
        assert 0 <= res.ejected_at[1] < res.iterations
        # the ejected item re-ran on the scalar ladder and recovered
        assert 1 in res.scalar_results
        assert res.scalar_results[1].recoveries
        # zero silent corruptions: every item's residual is at roundoff
        assert all(r < 1e-13 for r in res.residuals)

    def test_untripped_fault_is_escorted_out(self):
        # an injector whose faults never fire in-lane (empty plan after
        # cloning is impossible here, so use a late boundary fault on
        # the finished region — structurally Σ-blind) must still finish
        # on the scalar ladder: no fault plan rides the fast path
        b, n = 2, 48
        stack = _stack(b, n, seed0=60)
        inj = FaultInjector().add(
            FaultSpec(space="matrix", iteration=2, phase="boundary",
                      row=2, col=4, magnitude=1e-300)
        )
        res = ft_gehrd_stack(stack, FTConfig(nb=8, functional=True),
                             backend="numpy_functional", injectors=[inj, None])
        assert 0 in res.ejected
        assert res.ejected_at[0] in (res.iterations, *range(res.iterations))
        assert 0 in res.scalar_results
        assert res.residuals[1] is not None and res.residuals[1] < 1e-14

    def test_bank_fault_trips(self):
        b, n = 2, 48
        stack = _stack(b, n, seed0=70)
        inj = FaultInjector().add(
            FaultSpec(space="row_checksum", iteration=2, phase="boundary",
                      row=0, col=12, magnitude=50.0)
        )
        res = ft_gehrd_stack(stack, FTConfig(nb=8, functional=True),
                             backend="numpy_functional", injectors=[None, inj])
        assert res.ejected == [1] and res.lane_detections == 1
        assert all(r < 1e-13 for r in res.residuals)

    def test_rejects_nonfunctional_and_multichannel(self):
        from repro.errors import ShapeError

        stack = _stack(2, 16)
        with pytest.raises(ShapeError, match="functional"):
            ft_gehrd_stack(stack, FTConfig(nb=8, functional=False),
                           backend="numpy_functional")
        with pytest.raises(ShapeError, match="channels"):
            ft_gehrd_stack(stack, FTConfig(nb=8, functional=True, channels=2),
                           backend="numpy_functional")


@pytest.mark.skipif(not HAS_JAX, reason="jax not installed")
class TestJaxLane:
    """Extra coverage that only runs on the CI backend-smoke host."""

    def test_ft_stack_parity_and_ejection(self):
        b, n = 2, 32
        stack = _stack(b, n, seed0=80)
        inj = FaultInjector().add(
            FaultSpec(space="matrix", iteration=1, phase="boundary",
                      row=12, col=16, magnitude=5.0)
        )
        res = ft_gehrd_stack(stack, FTConfig(nb=8, functional=True),
                             backend="jax", injectors=[None, inj])
        assert res.backend == "jax"
        assert 1 in res.ejected
        assert all(r < 1e-13 for r in res.residuals)

    def test_x64_enabled(self):
        bk = get_backend("jax")
        out = bk.asarray(np.ones(3))
        assert bk.to_numpy(out).dtype == np.float64
