"""Tests for the checksum-extended updates and reverse computation —
Theorem 1 and the rollback identity (paper §IV-C/IV-D)."""

import numpy as np
import pytest

from repro.abft import (
    EncodedMatrix,
    left_update_encoded,
    reverse_left_update_encoded,
    reverse_right_update_encoded,
    right_update_encoded,
    v_col_checksums,
    y_col_checksums,
)
from repro.errors import ShapeError
from repro.linalg.lahr2 import lahr2
from repro.utils.rng import random_matrix


def _one_iteration(em, p, ib, n):
    pf = lahr2(em.ext, p, ib, n)
    vce = v_col_checksums(pf, em)
    ychk = y_col_checksums(em, pf)
    right_update_encoded(em, pf, vce, ychk)
    left_update_encoded(em, pf, vce)
    em.refresh_finished_segment(p, ib)
    return pf, vce, ychk


def _checksum_errors(em, finished):
    fr = em.fresh_row_sums(finished)
    fc = em.fresh_col_sums(finished)
    return (
        float(np.max(np.abs(em.row_checksums - fr))),
        float(np.max(np.abs(em.col_checksums - fc))),
    )


class TestTheorem1:
    """The checksum invariant holds at the end of every iteration."""

    @pytest.mark.parametrize("n,nb", [(32, 8), (48, 16), (65, 8)])
    def test_invariant_through_full_factorization(self, n, nb):
        em = EncodedMatrix(random_matrix(n, seed=n))
        p = 0
        while n - 1 - p > 0:
            ib = min(nb, n - 1 - p)
            _one_iteration(em, p, ib, n)
            p += ib
            er, ec = _checksum_errors(em, p)
            assert er < 1e-11, f"row checksum broken at p={p}"
            assert ec < 1e-11, f"col checksum broken at p={p}"

    def test_vce_is_column_sums_of_v(self):
        n = 24
        em = EncodedMatrix(random_matrix(n, seed=1))
        pf = lahr2(em.ext, 0, 6, n)
        vce = v_col_checksums(pf, em)
        assert vce.shape == (1, 6)
        np.testing.assert_allclose(vce[0], pf.v.sum(axis=0), rtol=1e-13)

    def test_ychk_matches_column_sums_of_y(self):
        """Ychk_c derived from the maintained checksums equals eᵀY."""
        n = 24
        em = EncodedMatrix(random_matrix(n, seed=2))
        pf = lahr2(em.ext, 0, 6, n)
        ychk = y_col_checksums(em, pf)
        assert ychk.shape == (1, 6)
        np.testing.assert_allclose(ychk[0], pf.y[:n].sum(axis=0), atol=1e-10)

    def test_gap_stays_small_no_error(self):
        n, nb = 64, 16
        em = EncodedMatrix(random_matrix(n, seed=3))
        p = 0
        while n - 1 - p > 0:
            ib = min(nb, n - 1 - p)
            _one_iteration(em, p, ib, n)
            p += ib
            assert em.checksum_gap() < 1e-10


class TestReverseComputation:
    """Reversal restores the previous iteration's state to roundoff."""

    def test_reverse_restores_trailing_state(self):
        n, nb = 48, 8
        em = EncodedMatrix(random_matrix(n, seed=4))
        # first iteration forward (clean)
        _one_iteration(em, 0, nb, n)
        snapshot = em.ext.copy()
        # second iteration forward, then reversed
        pf, vce, ychk = _one_iteration(em, nb, nb, n)
        reverse_left_update_encoded(em, pf, vce)
        reverse_right_update_encoded(em, pf, vce, ychk)
        # trailing columns (beyond the panel) and checksums must be restored;
        # the panel columns themselves come back from the checkpoint instead.
        np.testing.assert_allclose(
            em.ext[:, 2 * nb :], snapshot[:, 2 * nb :], atol=1e-10
        )
        np.testing.assert_allclose(em.ext[:n, n], snapshot[:n, n], atol=1e-10)

    def test_reverse_preserves_injected_corruption(self):
        """Reversal is linear: a corruption injected before the iteration
        survives the roundtrip as the same single-element delta."""
        n, nb = 48, 8
        em = EncodedMatrix(random_matrix(n, seed=5))
        _one_iteration(em, 0, nb, n)
        snapshot = em.ext.copy()
        em.data[30, 40] += 2.5  # corrupt, then run + reverse an iteration
        pf, vce, ychk = _one_iteration(em, nb, nb, n)
        reverse_left_update_encoded(em, pf, vce)
        reverse_right_update_encoded(em, pf, vce, ychk)
        diff = em.ext[:, 2 * nb :] - snapshot[:, 2 * nb :]
        # single-element delta in the trailing region
        i, j = np.unravel_index(np.argmax(np.abs(diff)), diff.shape)
        assert (i, j + 2 * nb) == (30, 40)
        assert diff[i, j] == pytest.approx(2.5, rel=1e-9)
        diff[i, j] = 0.0
        assert np.max(np.abs(diff)) < 1e-9

    def test_shape_validation(self):
        n = 16
        em = EncodedMatrix(random_matrix(n, seed=6))
        pf = lahr2(em.ext, 0, 4, n)
        with pytest.raises(ShapeError):
            right_update_encoded(em, pf, np.zeros((1, 3)), np.zeros((1, 4)))
