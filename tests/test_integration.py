"""Cross-module integration tests: the full pipelines a user would run."""

import numpy as np
import pytest

from repro.core import FTConfig, HybridConfig, ft_gehrd, hybrid_gehrd
from repro.eigen import hessenberg_eigvals
from repro.faults import FaultInjector, FaultSpec, SoftErrorModel
from repro.linalg import (
    extract_hessenberg,
    factorization_residual,
    orghr,
)
from repro.utils.rng import MatrixKind, random_matrix


class TestEigenvaluePipeline:
    """The paper's motivating application: eigenvalues via Hessenberg."""

    def test_ft_reduction_feeds_qr_iteration(self):
        a0 = random_matrix(96, seed=30)
        res = ft_gehrd(a0, FTConfig(nb=32))
        h = extract_hessenberg(res.a)
        ours = np.sort_complex(hessenberg_eigvals(h, check_input=False))
        ref = np.sort_complex(np.linalg.eigvals(a0))
        assert np.max(np.abs(ours - ref)) < 1e-9 * np.max(np.abs(ref))

    def test_eigenvalues_survive_a_soft_error(self):
        """End-to-end scientific-trust scenario: a soft error strikes, the
        FT reduction corrects it, and the downstream eigenvalues are
        indistinguishable from a clean run."""
        a0 = random_matrix(96, seed=31)
        inj = FaultInjector().add(FaultSpec(iteration=1, row=60, col=70, magnitude=5.0))
        res = ft_gehrd(a0, FTConfig(nb=32), injector=inj)
        h = extract_hessenberg(res.a)
        ours = np.sort_complex(hessenberg_eigvals(h, check_input=False))
        ref = np.sort_complex(np.linalg.eigvals(a0))
        assert np.max(np.abs(ours - ref)) < 1e-9 * np.max(np.abs(ref))

    def test_baseline_eigenvalues_do_not_survive(self):
        """Contrast: the fault-prone baseline's eigenvalues are polluted
        by the same error (why FT matters)."""
        a0 = random_matrix(96, seed=31)
        inj = FaultInjector().add(FaultSpec(iteration=1, row=60, col=70, magnitude=5.0))
        res = hybrid_gehrd(a0, HybridConfig(nb=32), injector=inj)
        h = extract_hessenberg(res.a)
        ref = np.sort_complex(np.linalg.eigvals(a0))
        ours = np.sort_complex(np.linalg.eigvals(h))
        assert np.max(np.abs(ours - ref)) > 1e-6 * np.max(np.abs(ref))


class TestSERDrivenCampaign:
    def test_poisson_plan_end_to_end(self):
        """Plan faults from a physical FIT rate, run FT, verify recovery."""
        n = 96
        a0 = random_matrix(n, seed=32)
        # absurdly hostile environment so the plan is non-empty
        model = SoftErrorModel(fit=1e12, runtime_seconds=30.0)
        plan = model.sample_plan(n, 32, rng=5)
        if not plan:
            pytest.skip("sampled plan empty at this seed")
        # keep at most one fault per iteration (the paper's failure model)
        seen = set()
        inj = FaultInjector()
        for f in plan:
            if f.iteration not in seen:
                inj.add(f)
                seen.add(f.iteration)
        res = ft_gehrd(a0, FTConfig(nb=32), injector=inj)
        q = orghr(res.a, res.taus)
        h = extract_hessenberg(res.a)
        assert factorization_residual(a0, q, h) < 1e-12


class TestMatrixFamilies:
    @pytest.mark.parametrize(
        "kind",
        [MatrixKind.UNIFORM, MatrixKind.GAUSSIAN, MatrixKind.SYMMETRIC,
         MatrixKind.WELL_CONDITIONED, MatrixKind.GRADED, MatrixKind.HESSENBERG],
    )
    def test_ft_with_error_across_families(self, kind):
        a0 = random_matrix(96, kind, seed=33)
        inj = FaultInjector().add(FaultSpec(iteration=1, row=50, col=60, magnitude=1.0))
        res = ft_gehrd(a0, FTConfig(nb=32), injector=inj)
        q = orghr(res.a, res.taus)
        h = extract_hessenberg(res.a)
        assert factorization_residual(a0, q, h) < 1e-13


class TestOddShapes:
    @pytest.mark.parametrize("n", [2, 3, 33, 34, 65])
    def test_ft_small_and_ragged_sizes(self, n):
        a0 = random_matrix(n, seed=n + 40)
        res = ft_gehrd(a0, FTConfig(nb=32))
        q = orghr(res.a, res.taus)
        h = extract_hessenberg(res.a)
        assert factorization_residual(a0, q, h) < 1e-13

    @pytest.mark.parametrize("nb", [1, 2, 7, 31])
    def test_ft_odd_block_sizes(self, nb):
        a0 = random_matrix(64, seed=50 + nb)
        res = ft_gehrd(a0, FTConfig(nb=nb))
        q = orghr(res.a, res.taus)
        h = extract_hessenberg(res.a)
        assert factorization_residual(a0, q, h) < 1e-13

    def test_ft_with_error_odd_block(self):
        a0 = random_matrix(64, seed=60)
        inj = FaultInjector().add(FaultSpec(iteration=2, row=40, col=50, magnitude=1.0))
        res = ft_gehrd(a0, FTConfig(nb=7), injector=inj)
        q = orghr(res.a, res.taus)
        h = extract_hessenberg(res.a)
        assert factorization_residual(a0, q, h) < 1e-13
