"""Tests for the verification metrics (the paper's residual definitions)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg.verify import (
    eigenvalue_drift,
    extract_hessenberg,
    factorization_residual,
    hessenberg_defect,
    is_hessenberg,
    one_norm,
    orthogonality_residual,
)
from repro.utils.rng import random_matrix


class TestOneNorm:
    def test_known_value(self):
        a = np.array([[1.0, -2.0], [3.0, 4.0]], order="F")
        assert one_norm(a) == 6.0  # max column abs-sum: |−2| + |4| = 6

    def test_matches_numpy(self):
        a = random_matrix(17, seed=1)
        assert one_norm(a) == pytest.approx(np.linalg.norm(a, 1))

    def test_rejects_vector(self):
        with pytest.raises(ShapeError):
            one_norm(np.zeros(3))

    def test_empty(self):
        assert one_norm(np.zeros((0, 0))) == 0.0


class TestResiduals:
    def test_exact_factorization_zero(self):
        a = random_matrix(10, seed=2)
        q = np.eye(10)
        assert factorization_residual(a, q, a.copy()) < 1e-16

    def test_perturbation_scales(self):
        a = random_matrix(10, seed=3)
        h = a.copy()
        h[0, 0] += 1.0
        r = factorization_residual(a, np.eye(10), h)
        assert r == pytest.approx(1.0 / (10 * one_norm(a)), rel=1e-12)

    def test_orthogonality_identity(self):
        assert orthogonality_residual(np.eye(8)) == 0.0

    def test_orthogonality_rotation(self):
        th = 0.3
        q = np.array([[np.cos(th), -np.sin(th)], [np.sin(th), np.cos(th)]], order="F")
        assert orthogonality_residual(q) < 1e-15

    def test_orthogonality_detects_scaling(self):
        q = 2.0 * np.eye(4)
        assert orthogonality_residual(q) == pytest.approx(3.0 / 4.0)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            factorization_residual(np.eye(3), np.eye(3), np.eye(4))


class TestHessenbergStructure:
    def test_defect_zero_for_hessenberg(self):
        h = np.triu(random_matrix(12, seed=4), -1)
        assert hessenberg_defect(h) == 0.0
        assert is_hessenberg(h)

    def test_defect_detects_violation(self):
        h = np.triu(random_matrix(12, seed=5), -1)
        h[5, 2] = 0.25
        assert hessenberg_defect(h) == pytest.approx(0.25)
        assert not is_hessenberg(h)
        assert is_hessenberg(h, tol=0.3)

    def test_small_matrices(self):
        assert hessenberg_defect(np.zeros((1, 1))) == 0.0
        assert hessenberg_defect(np.ones((2, 2))) == 0.0

    def test_extract(self):
        a = random_matrix(6, seed=6)
        h = extract_hessenberg(a)
        assert is_hessenberg(h)
        np.testing.assert_array_equal(np.triu(a, -1), h)


class TestEigenvalueDrift:
    def test_zero_for_similar(self):
        a = random_matrix(8, seed=7)
        assert eigenvalue_drift(a, a.copy()) < 1e-12

    def test_detects_change(self):
        a = random_matrix(8, seed=8)
        b = a.copy()
        b[0, 0] += 5.0
        assert eigenvalue_drift(a, b) > 0.1
