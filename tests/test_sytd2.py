"""Tests for the symmetric tridiagonal reduction substrate."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg import factorization_residual, orthogonality_residual
from repro.linalg.sytd2 import orgtr, sytd2, tridiagonal_of
from repro.utils.rng import MatrixKind, random_matrix


class TestSytd2:
    @pytest.mark.parametrize("n", [3, 8, 31, 64])
    def test_correctness(self, n):
        a0 = random_matrix(n, MatrixKind.SYMMETRIC, seed=n)
        a = a0.copy(order="F")
        taus = sytd2(a)
        t = tridiagonal_of(a)
        q = orgtr(a, taus)
        assert factorization_residual(a0, q, t) < 1e-14
        assert orthogonality_residual(q) < 1e-14

    def test_output_is_tridiagonal(self):
        a0 = random_matrix(20, MatrixKind.SYMMETRIC, seed=1)
        a = a0.copy(order="F")
        sytd2(a)
        t = tridiagonal_of(a)
        mask = np.abs(np.subtract.outer(np.arange(20), np.arange(20))) > 1
        assert np.all(t[mask] == 0.0)

    def test_eigenvalues_preserved(self):
        a0 = random_matrix(25, MatrixKind.SYMMETRIC, seed=2)
        a = a0.copy(order="F")
        sytd2(a)
        t = tridiagonal_of(a)
        np.testing.assert_allclose(
            np.sort(np.linalg.eigvalsh(a0)), np.sort(np.linalg.eigvalsh(t)), atol=1e-12
        )

    def test_matches_scipy_band(self):
        import scipy.linalg as sla

        a0 = random_matrix(30, MatrixKind.SYMMETRIC, seed=3)
        a = a0.copy(order="F")
        sytd2(a)
        # the diagonal of T equals the eigendecomposition-free scipy
        # hessenberg of a symmetric matrix (which is tridiagonal) up to
        # sign conventions on the off-diagonal
        h_ref = sla.hessenberg(a0)
        np.testing.assert_allclose(np.diag(a), np.diag(h_ref), atol=1e-10)
        np.testing.assert_allclose(
            np.abs(np.diag(a, -1)), np.abs(np.diag(h_ref, -1)), atol=1e-10
        )

    def test_rejects_nonsymmetric(self):
        a = random_matrix(10, seed=4)
        with pytest.raises(ShapeError):
            sytd2(a.copy(order="F"))

    def test_rejects_nonsquare(self):
        with pytest.raises(ShapeError):
            sytd2(np.zeros((3, 5), order="F"))

    def test_small_sizes_trivial(self):
        for n in (1, 2):
            a0 = random_matrix(n, MatrixKind.SYMMETRIC, seed=n + 10)
            a = a0.copy(order="F")
            taus = sytd2(a)
            np.testing.assert_array_equal(a, a0)  # nothing to reduce

    def test_tridiagonal_of_symmetry(self):
        a0 = random_matrix(15, MatrixKind.SYMMETRIC, seed=5)
        a = a0.copy(order="F")
        sytd2(a)
        t = tridiagonal_of(a)
        np.testing.assert_array_equal(t, t.T)
