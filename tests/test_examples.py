"""Smoke tests: every example script must run clean against the current
API (the examples are part of the public deliverable)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(name: str, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "residual after recovery" in out
        assert "corrected" in out

    def test_propagation_heatmap(self, capsys):
        out = _run("propagation_heatmap.py", capsys)
        assert "pattern" in out

    def test_ft_svd_pipeline(self, capsys):
        out = _run("ft_svd_pipeline.py", capsys)
        assert "trustworthy" in out

    def test_ft_tridiagonal(self, capsys):
        out = _run("ft_tridiagonal.py", capsys)
        assert "diagonal error" in out

    def test_eigenvalue_pipeline(self, capsys):
        out = _run("eigenvalue_pipeline.py", capsys)
        assert "trustworthy" in out

    def test_fault_campaign(self, capsys):
        out = _run("fault_campaign.py", capsys)
        assert "recovery rate: 100%" in out

    @pytest.mark.slow
    def test_overhead_study(self, capsys):
        out = _run("overhead_study.py", capsys)
        assert "makespan" in out

    @pytest.mark.slow
    def test_adversarial_resilience(self, capsys):
        out = _run("adversarial_resilience.py", capsys)
        assert "escalation exhausted" in out
        assert "outcome table identical: True" in out
        assert "aborted=0" in out
