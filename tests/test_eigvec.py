"""Tests for the Hessenberg solver and eigenvector computation."""

import numpy as np
import pytest

from repro.eigen import (
    eig_via_hessenberg,
    hessenberg_eigvals,
    hessenberg_eigvecs,
    hessenberg_solve,
)
from repro.errors import ShapeError
from repro.utils.rng import MatrixKind, random_matrix


class TestHessenbergSolve:
    @pytest.mark.parametrize("n", [1, 2, 7, 40])
    def test_backward_stable_residual(self, n, rng):
        h = np.triu(rng.standard_normal((n, n)), -1)
        b = rng.standard_normal(n)
        x = hessenberg_solve(h, b)
        # backward-stable: residual small relative to ‖H‖·‖x‖
        denom = max(np.linalg.norm(h, 1) * np.linalg.norm(x), 1e-300)
        assert np.linalg.norm(h @ x - b) / denom < 1e-12

    def test_complex_rhs(self, rng):
        n = 12
        h = np.triu(rng.standard_normal((n, n)), -1)
        b = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        x = hessenberg_solve(h, b)
        np.testing.assert_allclose(h @ x, b, atol=1e-10)

    def test_triangular_case(self, rng):
        n = 10
        h = np.triu(rng.standard_normal((n, n)))
        np.fill_diagonal(h, np.abs(np.diag(h)) + 1.0)
        b = rng.standard_normal(n)
        x = hessenberg_solve(h, b)
        np.testing.assert_allclose(h @ x, b, atol=1e-12)

    def test_pivoting_handles_zero_diagonal(self):
        # leading diagonal zero forces the subdiagonal pivot
        h = np.array([[0.0, 1.0], [2.0, 3.0]], order="F")
        x = hessenberg_solve(h, np.array([1.0, 1.0]))
        np.testing.assert_allclose(h @ x, [1.0, 1.0], atol=1e-14)

    def test_shape_check(self):
        with pytest.raises(ShapeError):
            hessenberg_solve(np.zeros((3, 4)), np.zeros(3))


class TestEigvecs:
    def test_pairs_satisfy_definition(self):
        a = random_matrix(60, seed=1)
        lam, v = eig_via_hessenberg(a)
        for q in range(60):
            resid = np.linalg.norm(a @ v[:, q] - lam[q] * v[:, q])
            assert resid < 1e-9, f"eigenpair {q}: {resid}"

    def test_vectors_unit_norm(self):
        a = random_matrix(30, seed=2)
        _, v = eig_via_hessenberg(a)
        np.testing.assert_allclose(np.linalg.norm(v, axis=0), 1.0, atol=1e-12)

    def test_symmetric_vectors_orthogonal(self):
        a = random_matrix(30, MatrixKind.SYMMETRIC, seed=3)
        lam, v = eig_via_hessenberg(a)
        # symmetric: eigenvectors of distinct eigenvalues orthogonal
        g = np.abs(v.conj().T @ v)
        np.fill_diagonal(g, 0.0)
        assert float(np.max(g)) < 1e-6

    def test_subset_of_eigenvalues(self):
        h = np.triu(random_matrix(24, seed=4), -1)
        lam = hessenberg_eigvals(h)
        v = hessenberg_eigvecs(h, lam[:5])
        assert v.shape == (24, 5)
        for q in range(5):
            assert np.linalg.norm(h @ v[:, q] - lam[q] * v[:, q]) < 1e-9

    def test_rejects_dense_input(self):
        with pytest.raises(ShapeError):
            hessenberg_eigvecs(random_matrix(8, seed=5), np.array([1.0 + 0j]))

    def test_ft_pipeline_eigenpairs_survive_error(self):
        """End-to-end: eigenpairs through the FT reduction with a fault."""
        from repro.core import FTConfig, ft_gehrd
        from repro.faults import FaultInjector, FaultSpec
        from repro.linalg import extract_hessenberg, orghr

        a = random_matrix(96, seed=6)
        inj = FaultInjector().add(FaultSpec(iteration=1, row=60, col=70, magnitude=2.0))
        res = ft_gehrd(a, FTConfig(nb=32), injector=inj)
        h = extract_hessenberg(res.a)
        q = orghr(res.a, res.taus)
        lam = hessenberg_eigvals(h, check_input=False)
        vh = hessenberg_eigvecs(h, lam, check_input=False)
        v = q @ vh
        worst = max(
            np.linalg.norm(a @ v[:, k] - lam[k] * v[:, k]) for k in range(96)
        )
        assert worst < 1e-8
