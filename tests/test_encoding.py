"""Tests for the checksum encoding layer (paper §IV-B, Fig. 3)."""

import numpy as np
import pytest

from repro.abft.encoding import EncodedMatrix
from repro.errors import ShapeError
from repro.linalg import FlopCounter
from repro.utils.rng import random_matrix


class TestEncode:
    def test_layout(self):
        a = random_matrix(10, seed=1)
        em = EncodedMatrix(a)
        assert em.ext.shape == (11, 11)
        np.testing.assert_array_equal(em.data, a)

    def test_row_checksums_are_row_sums(self):
        a = random_matrix(10, seed=2)
        em = EncodedMatrix(a)
        np.testing.assert_allclose(em.row_checksums, a @ np.ones(10), rtol=1e-14)

    def test_col_checksums_are_col_sums(self):
        a = random_matrix(10, seed=3)
        em = EncodedMatrix(a)
        np.testing.assert_allclose(em.col_checksums, np.ones(10) @ a, rtol=1e-14)

    def test_views_are_live(self):
        em = EncodedMatrix(random_matrix(6, seed=4))
        em.data[0, 0] = 99.0
        assert em.ext[0, 0] == 99.0
        em.row_checksums[2] = -1.0
        assert em.ext[2, 6] == -1.0

    def test_gap_zero_after_encode(self):
        em = EncodedMatrix(random_matrix(32, seed=5))
        assert em.checksum_gap() < 1e-12

    def test_counter(self):
        cnt = FlopCounter()
        EncodedMatrix(random_matrix(8, seed=6), counter=cnt)
        assert cnt.category_total("abft_init") > 0

    def test_rejects_nonsquare(self):
        with pytest.raises(ShapeError):
            EncodedMatrix(np.zeros((3, 4)))


class TestFreshSums:
    def test_no_mask_when_nothing_finished(self):
        a = random_matrix(12, seed=7)
        em = EncodedMatrix(a)
        np.testing.assert_allclose(em.fresh_row_sums(0), a @ np.ones(12), rtol=1e-14)
        np.testing.assert_allclose(em.fresh_col_sums(0), np.ones(12) @ a, rtol=1e-14)

    def test_masking_excludes_q_region(self):
        a = random_matrix(12, seed=8)
        em = EncodedMatrix(a)
        finished = 4
        masked = a.copy()
        for j in range(finished):
            masked[j + 2 :, j] = 0.0
        np.testing.assert_allclose(em.fresh_row_sums(finished), masked @ np.ones(12))
        np.testing.assert_allclose(em.fresh_col_sums(finished), np.ones(12) @ masked)

    def test_refresh_finished_segment(self):
        a = random_matrix(12, seed=9)
        em = EncodedMatrix(a)
        em.col_checksums[:] = 0.0
        em.refresh_finished_segment(0, 3)
        for j in range(3):
            expected = float(np.sum(a[: j + 2, j]))
            assert em.col_checksums[j] == pytest.approx(expected, rel=1e-13)
        assert np.all(em.col_checksums[3:] == 0.0)
