"""Tests for fault specs, bit flips, and the injector hook."""

import math

import numpy as np
import pytest

from repro.abft import EncodedMatrix
from repro.errors import FaultConfigError
from repro.faults import FaultInjector, FaultSpec, flip_bit
from repro.utils.rng import random_matrix


class TestFlipBit:
    def test_sign_bit(self):
        assert flip_bit(1.0, 63) == -1.0

    def test_exponent_bit_is_large(self):
        assert flip_bit(1.0, 62) != 1.0
        assert abs(flip_bit(1.0, 62)) > 1e100 or abs(flip_bit(1.0, 62)) < 1e-100

    def test_mantissa_lsb_is_tiny(self):
        x = 1.0
        y = flip_bit(x, 0)
        assert 0 < abs(y - x) < 1e-15

    def test_involution(self):
        for bit in (0, 13, 52, 63):
            assert flip_bit(flip_bit(3.14159, bit), bit) == 3.14159

    def test_bad_bit(self):
        with pytest.raises(FaultConfigError):
            flip_bit(1.0, 64)


class TestFaultSpec:
    def test_corrupt_kinds(self):
        assert FaultSpec(0, 0, 0, kind="add", magnitude=2.0).corrupt(1.0) == 3.0
        assert FaultSpec(0, 0, 0, kind="set", magnitude=9.0).corrupt(1.0) == 9.0
        assert FaultSpec(0, 0, 0, kind="bitflip", bit=63).corrupt(1.0) == -1.0

    def test_validation(self):
        with pytest.raises(FaultConfigError):
            FaultSpec(0, 0, 0, kind="zap")
        with pytest.raises(FaultConfigError):
            FaultSpec(0, 0, 0, space="register")
        with pytest.raises(FaultConfigError):
            FaultSpec(-1, 0, 0)


class TestInjector:
    def test_fires_once_at_its_iteration(self):
        em = EncodedMatrix(random_matrix(10, seed=1))
        inj = FaultInjector().add(FaultSpec(iteration=2, row=3, col=4, magnitude=1.0))
        assert inj.apply_at(em, 0) == []
        assert inj.apply_at(em, 1) == []
        recs = inj.apply_at(em, 2)
        assert len(recs) == 1
        assert recs[0].new_value == recs[0].old_value + 1.0
        assert inj.apply_at(em, 2) == []  # idempotent
        assert inj.count_fired == 1

    def test_checksum_space_targets(self):
        em = EncodedMatrix(random_matrix(10, seed=2))
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=0, row=3, col=-1, space="row_checksum", magnitude=5.0))
        inj.add(FaultSpec(iteration=0, row=-1, col=4, space="col_checksum", magnitude=-2.0))
        before_r = float(em.row_checksums[3])
        before_c = float(em.col_checksums[4])
        inj.apply_at(em, 0)
        assert em.row_checksums[3] == before_r + 5.0
        assert em.col_checksums[4] == before_c - 2.0

    def test_pending_queries(self):
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=1, row=0, col=0))
        inj.add(FaultSpec(iteration=5, row=0, col=0))
        assert len(inj.pending(1)) == 1
        assert len(inj.pending_after(2)) == 1
        assert len(inj.pending_after(0)) == 2

    def test_out_of_range_target(self):
        em = EncodedMatrix(random_matrix(5, seed=3))
        inj = FaultInjector().add(FaultSpec(iteration=0, row=10, col=0))
        with pytest.raises(FaultConfigError):
            inj.apply_at(em, 0)

    def test_apply_to_plain_array(self):
        a = random_matrix(8, seed=4).copy(order="F")
        inj = FaultInjector().add(FaultSpec(iteration=0, row=2, col=3, kind="set", magnitude=7.0))
        recs = inj.apply_to_array(a, 0)
        assert a[2, 3] == 7.0 and len(recs) == 1


class TestSER:
    def test_fit_conversions(self):
        from repro.faults import expected_errors, fit_to_errors_per_second

        # 3600 FIT → 1e-9 errors/second
        assert fit_to_errors_per_second(3600.0) == pytest.approx(1e-9)
        assert expected_errors(3600.0, 1e9, chips=2) == pytest.approx(2.0)

    def test_probability_of_any(self):
        from repro.faults import SoftErrorModel

        m = SoftErrorModel(fit=3600.0, runtime_seconds=1e9)
        assert m.probability_of_any() == pytest.approx(1 - math.exp(-1.0))

    def test_sample_plan_is_deterministic_and_valid(self):
        from repro.faults import SoftErrorModel, classify, finished_cols_at

        m = SoftErrorModel(fit=1e7, runtime_seconds=3600.0 * 24, chips=10)
        plan1 = m.sample_plan(100, 32, rng=7)
        plan2 = m.sample_plan(100, 32, rng=7)
        assert [f.iteration for f in plan1] == [f.iteration for f in plan2]
        for f in plan1:
            p = finished_cols_at(f.iteration, 100, 32)
            classify(f.row, f.col, p, 100)  # must not raise

    def test_invalid_inputs(self):
        from repro.faults import expected_errors, fit_to_errors_per_second

        with pytest.raises(FaultConfigError):
            fit_to_errors_per_second(-1.0)
        with pytest.raises(FaultConfigError):
            expected_errors(1.0, -5.0)
