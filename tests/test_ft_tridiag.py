"""Tests for the fault-tolerant tridiagonal reduction (future-work
extension — DESIGN.md §5)."""

import numpy as np
import pytest

from repro.core import ft_sytrd
from repro.errors import ConvergenceError, ShapeError
from repro.faults import FaultInjector, FaultSpec
from repro.linalg import factorization_residual, orthogonality_residual
from repro.linalg.sytd2 import orgtr, tridiagonal_of
from repro.utils.rng import MatrixKind, random_matrix


def _verify(a0, res):
    t = tridiagonal_of(res.a)
    q = orgtr(res.a, res.taus)
    return factorization_residual(a0, q, t), orthogonality_residual(q)


def _sym(n, seed):
    return random_matrix(n, MatrixKind.SYMMETRIC, seed=seed)


class TestNoError:
    @pytest.mark.parametrize("n", [8, 32, 80])
    def test_correctness(self, n):
        a0 = _sym(n, n)
        res = ft_sytrd(a0)
        resid, orth = _verify(a0, res)
        assert resid < 1e-14 and orth < 1e-14
        assert res.detections == 0

    def test_no_false_positives_small_audit_period(self):
        a0 = _sym(64, 1)
        res = ft_sytrd(a0, audit_every=4)
        assert res.detections == 0

    def test_rejects_nonsymmetric(self):
        with pytest.raises(ShapeError):
            ft_sytrd(random_matrix(10, seed=2))

    def test_rejects_bad_audit_period(self):
        with pytest.raises(ShapeError):
            ft_sytrd(_sym(10, 3), audit_every=0)


class TestRecovery:
    def test_offdiagonal_error_tier1(self):
        a0 = _sym(80, 5)
        inj = FaultInjector().add(FaultSpec(iteration=10, row=40, col=55, magnitude=2.0))
        res = ft_sytrd(a0, injector=inj)
        resid, orth = _verify(a0, res)
        assert resid < 1e-13 and orth < 1e-13
        assert res.detections == 1
        e = res.recoveries[0].errors[0]
        assert (e.row, e.col) == (40, 55)

    def test_diagonal_error_tier2_blind_spot(self):
        """The symmetric case's Σ-test blind spot: a diagonal corruption
        drifts both checksum vectors identically and must be caught by
        the periodic full audit."""
        a0 = _sym(80, 5)
        inj = FaultInjector().add(FaultSpec(iteration=10, row=50, col=50, magnitude=2.0))
        res = ft_sytrd(a0, injector=inj, audit_every=8)
        resid, _ = _verify(a0, res)
        assert resid < 1e-13
        assert res.detections == 1
        e = res.recoveries[0].errors[0]
        assert (e.row, e.col) == (50, 50)
        assert e.magnitude == pytest.approx(2.0, rel=1e-8)

    def test_checksum_element_error(self):
        a0 = _sym(80, 6)
        inj = FaultInjector().add(
            FaultSpec(iteration=20, row=30, col=-1, space="row_checksum", magnitude=3.0)
        )
        res = ft_sytrd(a0, injector=inj)
        resid, _ = _verify(a0, res)
        assert resid < 1e-13
        assert res.recoveries[0].errors[0].kind == "row_checksum"

    def test_error_near_end(self):
        n = 64
        a0 = _sym(n, 7)
        inj = FaultInjector().add(
            FaultSpec(iteration=n - 4, row=n - 2, col=n - 1, magnitude=1.0)
        )
        res = ft_sytrd(a0, injector=inj)
        resid, _ = _verify(a0, res)
        assert resid < 1e-13

    def test_eigenvalues_preserved_after_recovery(self):
        a0 = _sym(60, 8)
        inj = FaultInjector().add(FaultSpec(iteration=5, row=30, col=40, magnitude=1.5))
        res = ft_sytrd(a0, injector=inj)
        t = tridiagonal_of(res.a)
        np.testing.assert_allclose(
            np.sort(np.linalg.eigvalsh(a0)), np.sort(np.linalg.eigvalsh(t)), atol=1e-11
        )

    def test_two_errors_different_columns(self):
        a0 = _sym(80, 9)
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=8, row=30, col=45, magnitude=1.0))
        inj.add(FaultSpec(iteration=24, row=60, col=70, magnitude=2.0))
        res = ft_sytrd(a0, injector=inj)
        resid, _ = _verify(a0, res)
        assert resid < 1e-13
        assert res.detections == 2

    def test_retry_budget_enforced(self):
        a0 = _sym(48, 10)
        inj = FaultInjector().add(FaultSpec(iteration=5, row=20, col=30, magnitude=1.0))
        with pytest.raises(ConvergenceError):
            ft_sytrd(a0, injector=inj, max_retries=0)

    def test_overhead_flops_bounded(self):
        """The two-tier design's cost claim: ABFT flops stay a modest
        fraction of the factorization flops."""
        a0 = _sym(96, 11)
        res = ft_sytrd(a0, audit_every=16)
        extra = res.counter.category_total(
            "abft_init", "abft_maintain", "abft_detect", "abft_locate"
        )
        base = res.counter.category_total("tridiag_update", "sytd2")
        assert extra / base < 0.6  # audits are O(N²) each, N/16 of them
