"""Tests for the experiment CLI (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_parse(self):
        p = build_parser()
        for args in (
            ["table1"],
            ["fig2", "--n", "64", "--heatmap"],
            ["fig6", "--area", "2", "--sizes", "1022,2046"],
            ["table2", "--sizes", "96"],
            ["table3", "--sizes", "96"],
            ["section5"],
            ["campaign", "--n", "96", "--channels", "2"],
            ["demo", "--n", "96"],
            ["submit", "--jobs", "jobs.jsonl", "--workers", "4"],
            ["serve", "--jobs", "-", "--max-queue", "8", "--cache-mb", "16"],
            ["cluster", "--jobs", "jobs.jsonl", "--shards", "3",
             "--chaos-kill-shard", "0", "--chaos-kill-after", "4"],
            ["trace", "--n", "256", "--chrome", "t.json", "--csv", "t.csv"],
        ):
            assert p.parse_args(args).command == args[0]

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_sizes_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--sizes", "1022,abc"])

    @pytest.mark.parametrize("sizes", ["0", "-96", "96,0", "96,-1,128"])
    def test_nonpositive_sizes_rejected(self, sizes, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--sizes", sizes])
        assert "sizes must be positive" in capsys.readouterr().err

    def test_submit_requires_jobs_file(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Tesla K40c" in out

    def test_fig2_small(self, capsys):
        assert main(["fig2", "--n", "96", "--nb", "32", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "pattern" in out

    def test_fig6_small(self, capsys):
        assert main(["fig6", "--area", "3", "--sizes", "1022", "--moments", "2"]) == 0
        out = capsys.readouterr().out
        assert "ovh no-err %" in out and "1022" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--sizes", "96"]) == 0
        out = capsys.readouterr().out
        assert "residual" in out

    def test_section5(self, capsys):
        assert main(["section5", "--sizes", "1022,2046"]) == 0
        out = capsys.readouterr().out
        assert "FLOP_extra" in out

    def test_campaign_small(self, capsys):
        assert main(["campaign", "--n", "96", "--moments", "2"]) == 0
        out = capsys.readouterr().out
        assert "recovery rate: 100%" in out

    def test_campaign_weighted(self, capsys):
        assert main(["campaign", "--n", "96", "--moments", "2", "--channels", "2"]) == 0
        out = capsys.readouterr().out
        assert "channels=2" in out

    def test_demo(self, capsys):
        assert main(["demo", "--n", "96"]) == 0
        out = capsys.readouterr().out
        assert "corrected" in out and "residual after recovery" in out


class TestTraceCommand:
    def test_trace_export(self, capsys, tmp_path):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "--n", "512", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        import json

        doc = json.loads(out_file.read_text())
        assert len(doc["traceEvents"]) > 10

    def test_trace_chrome_and_csv_flags(self, capsys, tmp_path):
        chrome = tmp_path / "chrome.json"
        csv = tmp_path / "trace.csv"
        assert main(
            ["trace", "--n", "512", "--chrome", str(chrome), "--csv", str(csv)]
        ) == 0
        out = capsys.readouterr().out
        assert str(chrome) in out and str(csv) in out
        import json

        doc = json.loads(chrome.read_text())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert spans and meta
        assert doc["otherData"]["ops"] == len(spans)
        assert csv.read_text().startswith("index,name,resource,category")


class TestSubmitCommand:
    def test_submit_runs_jsonl_batch(self, capsys, tmp_path):
        import json

        jobs = tmp_path / "jobs.jsonl"
        lines = ["# duplicate-heavy demo batch"]
        for seed in (0, 1, 0, 1, 0, 1):
            lines.append(json.dumps({"driver": "gehrd", "n": 32, "seed": seed}))
        jobs.write_text("\n".join(lines) + "\n")
        stats_file = tmp_path / "stats.json"
        results_file = tmp_path / "results.jsonl"
        assert main(
            [
                "submit", "--jobs", str(jobs), "--workers", "1",
                "--small-n", "512", "--stats", str(stats_file),
                "--results", str(results_file),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out and "jobs/sec" in out

        stats = json.loads(stats_file.read_text())
        assert stats["jobs"] == 6
        assert stats["stats"]["hit_rate"] >= 0.3

        results = [json.loads(s) for s in results_file.read_text().splitlines()]
        assert len(results) == 6
        assert all(r["status"] == "done" for r in results)

    def test_submit_rejects_malformed_jobs_file(self, tmp_path):
        jobs = tmp_path / "bad.jsonl"
        jobs.write_text('{"driver": "gehrd", "n": 32}\n{not json}\n')
        with pytest.raises(SystemExit):
            main(["submit", "--jobs", str(jobs)])


class TestClusterCommand:
    def test_cluster_runs_jsonl_batch(self, capsys, tmp_path):
        import json

        jobs = tmp_path / "jobs.jsonl"
        lines = []
        for seed in range(8):
            lines.append(json.dumps({"driver": "ft_gehrd", "n": 32,
                                     "seed": seed}))
        jobs.write_text("\n".join(lines) + "\n")
        stats_file = tmp_path / "stats.json"
        assert main(
            [
                "cluster", "--jobs", str(jobs), "--shards", "2",
                "--small-n", "64", "--stats", str(stats_file),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "cluster of 2 shards" in out
        assert "routes: owner=8" in out
        stats = json.loads(stats_file.read_text())
        assert stats["jobs"] == 8
        assert stats["stats"]["router"]["counts"]["done"] == 8
        assert stats["p99_latency_s"] is not None

    def test_cluster_chaos_kill_index_validated(self, tmp_path):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text('{"driver": "ft_gehrd", "n": 32, "seed": 0}\n')
        with pytest.raises(SystemExit, match="not a shard index"):
            main(["cluster", "--jobs", str(jobs), "--shards", "2",
                  "--chaos-kill-shard", "5"])


class TestCoverageCommand:
    def test_coverage_plain(self, capsys):
        assert main(["coverage", "--n", "64", "--grid", "5"]) == 0
        out = capsys.readouterr().out
        assert "coverage map" in out and "recovered" in out

    def test_coverage_audited(self, capsys):
        assert main(["coverage", "--n", "64", "--grid", "5", "--audit-every", "2"]) == 0
        out = capsys.readouterr().out
        assert "SILENT CORRUPTION (undetected, result wrong): 0" in out


class TestBackendsCommand:
    def test_backends_lists_registry(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("numpy", "numpy_functional", "jax", "cupy"):
            assert name in out
        assert "in-place" in out and "functional" in out

    def test_backends_respects_env_default(self, capsys, monkeypatch):
        import repro.backend as B

        monkeypatch.setenv(B.ENV_VAR, "numpy_functional")
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        # exactly one row is marked as the host default
        marked = [ln for ln in out.splitlines() if "*" in ln]
        assert len(marked) == 1 and "numpy_functional" in marked[0]

    def test_submit_unavailable_backend_exits_2(self, capsys, tmp_path, monkeypatch):
        import json

        import repro.backend as B

        # force-unavailable even on hosts where jax IS installed (the
        # CI backend-smoke runner) so the degradation path always runs
        monkeypatch.setattr(B, "_DISABLED", {"jax"})
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(json.dumps({"driver": "ft_gehrd", "n": 32, "seed": 0}) + "\n")
        assert main(["submit", "--jobs", str(jobs), "--backend", "jax"]) == 2
        err = capsys.readouterr().err
        assert "unavailable" in err and "repro[jax]" in err

    def test_submit_runs_on_functional_backend(self, capsys, tmp_path):
        import json

        jobs = tmp_path / "jobs.jsonl"
        for seed in (0, 1):
            with jobs.open("a") as fh:
                fh.write(json.dumps({"driver": "gehrd", "n": 32, "seed": seed}) + "\n")
        stats_file = tmp_path / "stats.json"
        assert main(
            ["submit", "--jobs", str(jobs), "--backend", "numpy_functional",
             "--stats", str(stats_file)]
        ) == 0
        stats = json.loads(stats_file.read_text())
        assert stats["jobs"] == 2
