"""Tests for error correction (the paper's dot-product formula, §IV-F)."""

import numpy as np
import pytest

from repro.abft import EncodedMatrix, LocatedError, apply_correction, correct_all, locate_errors
from repro.errors import UncorrectableError
from repro.utils.rng import random_matrix


def _em(n=20, seed=0):
    a = random_matrix(n, seed=seed)
    return EncodedMatrix(a), float(np.linalg.norm(a, 1)), a


class TestApplyCorrection:
    def test_data_error_row_formula(self):
        em, norm_a, a = _em(seed=1)
        true_val = float(em.data[6, 9])
        em.data[6, 9] += 3.0
        err = LocatedError("data", 6, 9, 3.0)
        got = apply_correction(em, err, 0, use="row")
        assert got == pytest.approx(true_val, abs=1e-12)
        assert em.data[6, 9] == pytest.approx(true_val, abs=1e-12)

    def test_data_error_col_formula(self):
        em, norm_a, a = _em(seed=2)
        true_val = float(em.data[6, 9])
        em.data[6, 9] -= 1.7
        err = LocatedError("data", 6, 9, -1.7)
        got = apply_correction(em, err, 0, use="col")
        assert got == pytest.approx(true_val, abs=1e-12)

    def test_row_checksum_recompute(self):
        em, norm_a, a = _em(seed=3)
        em.ext[4, em.n] += 9.0
        err = LocatedError("row_checksum", 4, -1, 9.0)
        apply_correction(em, err, 0)
        assert em.row_checksums[4] == pytest.approx(float(a[4].sum()), rel=1e-12)

    def test_col_checksum_recompute(self):
        em, norm_a, a = _em(seed=4)
        em.ext[em.n, 7] -= 2.0
        err = LocatedError("col_checksum", -1, 7, -2.0)
        apply_correction(em, err, 0)
        assert em.col_checksums[7] == pytest.approx(float(a[:, 7].sum()), rel=1e-12)

    def test_masked_correction_with_finished_columns(self):
        """Correction in a mid-factorization state must sum over the
        mathematical row (Q storage masked)."""
        em, norm_a, a = _em(seed=5)
        finished = 5
        # build a consistent masked state
        em.ext[: em.n, em.n] = em.fresh_row_sums(finished)
        em.refresh_finished_segment(0, finished)
        true_val = float(em.data[8, 10])
        em.data[8, 10] += 2.0
        apply_correction(em, LocatedError("data", 8, 10, 2.0), finished, use="row")
        assert em.data[8, 10] == pytest.approx(true_val, abs=1e-11)

    def test_out_of_range_rejected(self):
        em, norm_a, _ = _em(seed=6)
        with pytest.raises(UncorrectableError):
            apply_correction(em, LocatedError("data", 50, 2, 1.0), 0)

    def test_unknown_kind_rejected(self):
        em, norm_a, _ = _em(seed=7)
        with pytest.raises(UncorrectableError):
            apply_correction(em, LocatedError("weird", 1, 1, 1.0), 0)


class TestCorrectAll:
    def test_locate_then_correct_roundtrip(self):
        em, norm_a, a = _em(seed=8)
        em.data[3, 4] += 1.0
        em.data[15, 11] -= 2.0
        rep = locate_errors(em, 0, norm_a)
        correct_all(em, rep.errors, 0)
        np.testing.assert_allclose(em.data, a, atol=1e-11)
        # residuals clean after correction
        assert locate_errors(em, 0, norm_a).count == 0

    def test_shared_row_uses_column_checksums(self):
        em, norm_a, a = _em(seed=9)
        em.data[5, 2] += 1.0
        em.data[5, 9] += 2.0
        rep = locate_errors(em, 0, norm_a)
        correct_all(em, rep.errors, 0)
        np.testing.assert_allclose(em.data, a, atol=1e-11)

    def test_shared_line_both_ways_rejected(self):
        em, norm_a, _ = _em(seed=10)
        errors = [
            LocatedError("data", 1, 1, 1.0),
            LocatedError("data", 1, 2, 1.0),
            LocatedError("data", 2, 1, 1.0),
            LocatedError("data", 2, 2, 1.0),
        ]
        with pytest.raises(UncorrectableError):
            correct_all(em, errors, 0)
