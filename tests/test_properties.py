"""Property-based tests (hypothesis) on the core invariants.

Strategies generate random shapes, seeds, fault positions and magnitudes;
the properties are the load-bearing identities of the reproduction:
reflector algebra, Theorem 1's checksum invariant, reversal exactness,
locate/correct roundtrips, and scheduler sanity.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.abft import (
    EncodedMatrix,
    left_update_encoded,
    locate_errors,
    correct_all,
    reverse_left_update_encoded,
    reverse_right_update_encoded,
    right_update_encoded,
    v_col_checksums,
    y_col_checksums,
)
from repro.faults.injector import flip_bit
from repro.linalg.householder import full_vector, larfg, reflector_matrix
from repro.linalg.lahr2 import lahr2
from repro.utils.rng import random_matrix

SLOWISH = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
QUICK = settings(max_examples=60, deadline=None)


class TestReflectorProperties:
    @QUICK
    @given(
        alpha=st.floats(-1e3, 1e3, allow_nan=False),
        seed=st.integers(0, 2**20),
        n=st.integers(1, 30),
    )
    def test_larfg_annihilates_and_preserves_norm(self, alpha, seed, n):
        x = np.random.default_rng(seed).standard_normal(n)
        assume(np.linalg.norm(x) > 1e-12)
        orig = np.concatenate(([alpha], x))
        refl = larfg(alpha, x.copy())
        h = reflector_matrix(refl.tau, np.concatenate(([1.0], refl.v)))
        out = h @ orig
        assert abs(out[0] - refl.beta) <= 1e-10 * max(1.0, abs(refl.beta))
        assert np.max(np.abs(out[1:])) <= 1e-10 * max(1.0, np.linalg.norm(orig))
        # orthogonal: norm preserved
        assert np.linalg.norm(out) == pytest.approx(np.linalg.norm(orig), rel=1e-10)

    @QUICK
    @given(seed=st.integers(0, 2**20), n=st.integers(2, 20))
    def test_reflector_involution(self, seed, n):
        rng = np.random.default_rng(seed)
        refl = larfg(rng.standard_normal(), rng.standard_normal(n))
        h = reflector_matrix(refl.tau, full_vector(refl))
        np.testing.assert_allclose(h @ h, np.eye(n + 1), atol=1e-12)


class TestChecksumInvariant:
    @SLOWISH
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(12, 56),
        nb=st.sampled_from([4, 8, 16]),
    )
    def test_theorem1_holds_for_random_problems(self, seed, n, nb):
        em = EncodedMatrix(random_matrix(n, seed=seed))
        p = 0
        while n - 1 - p > 0:
            ib = min(nb, n - 1 - p)
            pf = lahr2(em.ext, p, ib, n)
            vce = v_col_checksums(pf, em)
            ychk = y_col_checksums(em, pf)
            right_update_encoded(em, pf, vce, ychk)
            left_update_encoded(em, pf, vce)
            em.refresh_finished_segment(p, ib)
            p += ib
        fr = em.fresh_row_sums(p)
        fc = em.fresh_col_sums(p)
        scale = max(1.0, float(np.max(np.abs(em.data)))) * n
        assert np.max(np.abs(em.row_checksums - fr)) < 1e-12 * scale
        assert np.max(np.abs(em.col_checksums - fc)) < 1e-12 * scale

    @SLOWISH
    @given(seed=st.integers(0, 2**16), nb=st.sampled_from([4, 8]))
    def test_reverse_is_exact_inverse(self, seed, nb):
        n = 32
        em = EncodedMatrix(random_matrix(n, seed=seed))
        snapshot = em.ext.copy()
        pf = lahr2(em.ext, 0, nb, n)
        vce = v_col_checksums(pf, em)
        ychk = y_col_checksums(em, pf)
        right_update_encoded(em, pf, vce, ychk)
        left_update_encoded(em, pf, vce)
        reverse_left_update_encoded(em, pf, vce)
        reverse_right_update_encoded(em, pf, vce, ychk)
        # everything outside the panel (which the checkpoint restores)
        # must round-trip to near machine precision
        scale = max(1.0, float(np.max(np.abs(snapshot))))
        assert np.max(np.abs(em.ext[:, nb:] - snapshot[:, nb:])) < 1e-11 * scale


class TestLocateCorrectRoundtrip:
    @SLOWISH
    @given(
        seed=st.integers(0, 2**16),
        i=st.integers(0, 31),
        j=st.integers(0, 31),
        magnitude=st.floats(1e-6, 1e6, allow_nan=False),
        sign=st.sampled_from([-1.0, 1.0]),
    )
    def test_single_error_always_recovered(self, seed, i, j, magnitude, sign):
        n = 32
        a = random_matrix(n, seed=seed)
        em = EncodedMatrix(a)
        norm_a = float(np.linalg.norm(a, 1))
        em.data[i, j] += sign * magnitude
        rep = locate_errors(em, 0, norm_a)
        tol_detect = 1e-10 * max(1.0, norm_a) * n
        if magnitude < tol_detect:
            return  # sub-roundoff faults legitimately invisible
        assert rep.count == 1
        e = rep.errors[0]
        assert (e.row, e.col) == (i, j)
        correct_all(em, rep.errors, 0)
        assert abs(em.data[i, j] - a[i, j]) <= 1e-11 * max(1.0, magnitude, norm_a)

    @SLOWISH
    @given(
        seed=st.integers(0, 2**16),
        i1=st.integers(0, 15),
        j1=st.integers(0, 15),
        i2=st.integers(16, 31),
        j2=st.integers(16, 31),
        m1=st.floats(0.5, 100.0),
        m2=st.floats(0.5, 100.0),
    )
    def test_two_disjoint_errors_recovered(self, seed, i1, j1, i2, j2, m1, m2):
        assume(abs(m1 - m2) > 1e-3)  # distinguishable magnitudes
        n = 32
        a = random_matrix(n, seed=seed)
        em = EncodedMatrix(a)
        em.data[i1, j1] += m1
        em.data[i2, j2] += m2
        rep = locate_errors(em, 0, float(np.linalg.norm(a, 1)))
        assert {(e.row, e.col) for e in rep.errors} == {(i1, j1), (i2, j2)}
        correct_all(em, rep.errors, 0)
        np.testing.assert_allclose(em.data, a, atol=1e-9)


class TestBitFlipProperties:
    @QUICK
    @given(
        x=st.floats(-1e10, 1e10, allow_nan=False, allow_infinity=False),
        bit=st.integers(0, 63),
    )
    def test_flip_is_involution_and_changes_value(self, x, bit):
        y = flip_bit(x, bit)
        assert flip_bit(y, bit) == x or (np.isnan(y) and flip_bit(y, bit) == x)
        if x != 0.0 or bit != 63:
            # flipping any bit of a nonzero value changes the bits
            assert np.float64(x).tobytes() != np.float64(y).tobytes()


class TestSchedulerProperties:
    @QUICK
    @given(
        durations=st.lists(st.floats(0.001, 10.0), min_size=1, max_size=30),
        resources=st.lists(st.sampled_from(["cpu", "gpu", "h2d", "d2h"]),
                           min_size=1, max_size=30),
    )
    def test_makespan_bounds(self, durations, resources):
        """makespan >= max per-resource busy time, and <= total duration
        (list scheduling with chain deps cannot beat serial)."""
        from repro.hybrid.engine import SimEngine

        k = min(len(durations), len(resources))
        eng = SimEngine()
        prev = None
        for d, r in zip(durations[:k], resources[:k]):
            # alternate: every other op depends on the previous one
            deps = [prev] if (prev is not None and d > 5.0) else []
            prev = eng.submit("op", r, d, deps=deps)
        for r in {"cpu", "gpu", "h2d", "d2h"}:
            assert eng.makespan >= eng.busy_time(r) - 1e-12
        assert eng.makespan <= sum(durations[:k]) + 1e-12
