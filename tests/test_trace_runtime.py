"""Tests for timeline analysis and the hybrid runtime."""

import numpy as np
import pytest

from repro.hybrid import HybridRuntime, SimEngine, Timeline, laptop_sim


class TestTimeline:
    def _engine(self):
        eng = SimEngine()
        a = eng.submit("a", "gpu", 2.0, category="right_update")
        eng.submit("s", "d2h", 1.0, deps=[a], category="transfer")
        eng.submit("b", "gpu", 3.0, deps=[a], category="left_update")
        eng.submit("c", "cpu", 1.5, category="panel")
        return eng

    def test_by_resource(self):
        tl = Timeline(self._engine())
        res = {r.resource: r for r in tl.by_resource()}
        assert res["gpu"].busy == 5.0 and res["gpu"].ops == 2
        assert res["cpu"].busy == 1.5
        assert res["gpu"].utilization == pytest.approx(1.0)

    def test_by_category(self):
        tl = Timeline(self._engine())
        cats = tl.by_category()
        assert cats["right_update"] == 2.0
        assert cats["left_update"] == 3.0
        assert tl.category_time("right_update", "left_update") == 5.0

    def test_overlap_saved(self):
        tl = Timeline(self._engine())
        # total busy = 7.5, makespan = 5 → 2.5 s saved by overlap
        assert tl.overlap_saved() == pytest.approx(2.5)

    def test_csv_export(self):
        tl = Timeline(self._engine())
        csv = tl.to_csv()
        lines = csv.strip().split("\n")
        assert lines[0].startswith("index,name,resource")
        assert len(lines) == 5

    def test_gantt_renders(self):
        tl = Timeline(self._engine())
        g = tl.gantt(width=40)
        assert "makespan" in g
        assert " gpu |" in g and " cpu |" in g

    def test_empty_gantt(self):
        assert "(empty timeline)" in Timeline(SimEngine()).gantt()


class TestHybridRuntime:
    def test_functional_thunks_execute(self):
        rt = HybridRuntime(laptop_sim(), functional=True)
        box = []
        rt.submit("x", "cpu", 1.0, fn=lambda: box.append(1))
        assert box == [1]

    def test_metadata_mode_skips_thunks(self):
        rt = HybridRuntime(laptop_sim(), functional=False)
        box = []
        rt.submit("x", "cpu", 1.0, fn=lambda: box.append(1))
        assert box == []
        assert rt.elapsed == 1.0

    def test_kernel_wrappers_price_by_cost_model(self):
        rt = HybridRuntime(laptop_sim())
        op = rt.gemm("gpu", 100, 100, 100)
        assert op.duration == pytest.approx(rt.cost.gemm("gpu", 100, 100, 100))
        op = rt.copy_h2d(1e6)
        assert op.resource == "h2d"
        assert op.duration == pytest.approx(rt.cost.copy(1e6))

    def test_panel_occupies_both_devices(self):
        rt = HybridRuntime(laptop_sim())
        rt.panel(512, 32)
        tl = rt.timeline()
        res = {r.resource for r in tl.by_resource()}
        assert {"cpu", "gpu"} <= res

    def test_elapsed_tracks_makespan(self):
        rt = HybridRuntime(laptop_sim())
        rt.submit("a", "gpu", 2.0)
        rt.submit("b", "cpu", 5.0)
        assert rt.elapsed == 5.0


class TestExports:
    def test_chrome_trace_json(self):
        import json

        eng = SimEngine()
        a = eng.submit("a", "gpu", 2.0, category="right_update")
        eng.submit("b", "cpu", 1.0, deps=[a], category="panel")
        doc = json.loads(Timeline(eng).to_chrome_trace())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 2
        assert spans[0]["dur"] == pytest.approx(2e6)

    def test_fig6_csv(self):
        from repro.analysis import fig6_series

        s = fig6_series(3, sizes=(1022,), moments=2)
        csv = s.to_csv()
        lines = csv.strip().split("\n")
        assert lines[0].startswith("n,base_gflops")
        assert lines[1].startswith("1022,")
