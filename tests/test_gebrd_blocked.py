"""Tests for the blocked bidiagonal reduction (labrd/gebrd)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg.gebd2 import bidiagonal_of, gebd2, orgbr_p, orgbr_q
from repro.linalg.gebrd import gebrd, labrd
from repro.utils.rng import MatrixKind, random_matrix


def _verify(a0, packed, tq, tp):
    b = bidiagonal_of(packed)
    q = orgbr_q(packed, tq)
    p = orgbr_p(packed, tp)
    return float(
        np.linalg.norm(a0 - q @ b @ p.T, 1) / max(np.linalg.norm(a0, 1), 1e-300)
    )


class TestLabrd:
    def test_panel_matches_unblocked(self):
        """One panel + the deferred trailing GEMMs must equal the
        unblocked algorithm's state after the same columns."""
        n, nb = 12, 4
        a0 = random_matrix(n, seed=1)

        ref = a0.copy(order="F")
        gebd2(ref)  # full unblocked reference

        blk = a0.copy(order="F")
        tq = np.zeros(n)
        tp = np.zeros(n - 1)
        x, y, d, e = labrd(blk, 0, nb, n, tq, tp)
        blk[nb:n, nb:n] -= blk[nb:n, 0:nb] @ y[nb:, :].T
        blk[nb:n, nb:n] -= x[nb:, :] @ blk[0:nb, nb:n]
        for j in range(nb):
            blk[j, j] = d[j]
            blk[j, j + 1] = e[j]
        # the processed rows/columns (packed storage + band) must agree
        np.testing.assert_allclose(blk[:nb, :], ref[:nb, :], atol=1e-12)
        np.testing.assert_allclose(blk[:, :nb], ref[:, :nb], atol=1e-12)

    def test_invalid_panel(self):
        a = random_matrix(8, seed=2)
        with pytest.raises(ShapeError):
            labrd(a, 6, 4, 8, np.zeros(8), np.zeros(7))


class TestGebrdBlocked:
    @pytest.mark.parametrize("n,nb", [(12, 4), (33, 8), (64, 16), (130, 32)])
    def test_correctness(self, n, nb):
        a0 = random_matrix(n, seed=n + nb)
        a = a0.copy(order="F")
        tq, tp = gebrd(a, nb=nb)
        assert _verify(a0, a, tq, tp) < 1e-13

    def test_singular_values_preserved(self):
        a0 = random_matrix(80, seed=3)
        a = a0.copy(order="F")
        gebrd(a, nb=16)
        b = bidiagonal_of(a)
        np.testing.assert_allclose(
            np.sort(np.linalg.svd(b, compute_uv=False)),
            np.sort(np.linalg.svd(a0, compute_uv=False)),
            atol=1e-12,
        )

    def test_matches_unblocked_band(self):
        a0 = random_matrix(50, seed=4)
        ab = a0.copy(order="F")
        au = a0.copy(order="F")
        gebrd(ab, nb=8)
        gebd2(au)
        np.testing.assert_allclose(np.abs(np.diag(ab)), np.abs(np.diag(au)), atol=1e-11)
        np.testing.assert_allclose(
            np.abs(np.diag(ab, 1)), np.abs(np.diag(au, 1)), atol=1e-11
        )

    def test_full_svd_pipeline_blocked(self):
        from repro.linalg.bdsqr import bidiagonal_svdvals

        a0 = random_matrix(96, MatrixKind.GRADED, seed=5)
        a = a0.copy(order="F")
        gebrd(a, nb=32)
        sv = bidiagonal_svdvals(np.diag(a).copy(), np.diag(a, 1).copy())
        ref = np.sort(np.linalg.svd(a0, compute_uv=False))[::-1]
        np.testing.assert_allclose(sv, ref, atol=1e-11 * max(1.0, ref[0]))

    def test_rejects_nonsquare(self):
        with pytest.raises(ShapeError):
            gebrd(np.zeros((3, 4), order="F"))

    def test_nb_larger_than_n(self):
        a0 = random_matrix(10, seed=6)
        a = a0.copy(order="F")
        tq, tp = gebrd(a, nb=64)
        assert _verify(a0, a, tq, tp) < 1e-13
