"""Tests for the Algorithm-3 fault-tolerant driver — the paper's core."""

import numpy as np
import pytest

from repro.core import FTConfig, HybridConfig, ft_gehrd, hybrid_gehrd, overhead_percent
from repro.errors import ConvergenceError
from repro.faults import FaultInjector, FaultSpec, finished_cols_at, iteration_count
from repro.linalg import (
    extract_hessenberg,
    factorization_residual,
    orghr,
    orthogonality_residual,
)
from repro.utils.rng import random_matrix


def _verify(a0, res, tol=1e-14):
    q = orghr(res.a, res.taus)
    h = extract_hessenberg(res.a)
    return factorization_residual(a0, q, h), orthogonality_residual(q)


class TestNoError:
    @pytest.mark.parametrize("n,nb", [(40, 8), (96, 32), (158, 32)])
    def test_correctness_matches_baseline(self, n, nb):
        a0 = random_matrix(n, seed=n + 1)
        res = ft_gehrd(a0, FTConfig(nb=nb))
        resid, orth = _verify(a0, res)
        assert resid < 1e-14 and orth < 1e-14
        assert res.detections == 0
        assert res.checks == res.iterations

    def test_no_false_positives_across_sizes_and_kinds(self):
        from repro.utils.rng import MatrixKind

        for kind in (MatrixKind.UNIFORM, MatrixKind.GAUSSIAN, MatrixKind.GRADED):
            a0 = random_matrix(128, kind, seed=9)
            res = ft_gehrd(a0, FTConfig(nb=32))
            assert res.detections == 0, f"false positive on {kind}"

    def test_checkpoint_stats(self):
        a0 = random_matrix(96, seed=2)
        res = ft_gehrd(a0, FTConfig(nb=32))
        assert res.checkpoint_saves == res.iterations
        assert res.checkpoint_restores == 0
        assert res.checkpoint_peak_bytes > 0


class TestSingleErrorRecovery:
    def test_area2_error_recovered(self):
        a0 = random_matrix(96, seed=3)
        inj = FaultInjector().add(FaultSpec(iteration=1, row=60, col=70, magnitude=2.0))
        res = ft_gehrd(a0, FTConfig(nb=32), injector=inj)
        resid, orth = _verify(a0, res)
        assert resid < 1e-14 and orth < 1e-14
        assert res.detections == 1
        assert len(res.recoveries) == 1
        e = res.recoveries[0].errors[0]
        assert (e.row, e.col) == (60, 70)
        assert e.magnitude == pytest.approx(2.0, rel=1e-8)

    def test_area1_error_recovered(self):
        a0 = random_matrix(96, seed=4)
        inj = FaultInjector().add(FaultSpec(iteration=1, row=10, col=70, magnitude=-1.5))
        res = ft_gehrd(a0, FTConfig(nb=32), injector=inj)
        resid, _ = _verify(a0, res)
        assert resid < 1e-14
        assert res.checkpoint_restores == 1

    def test_area3_error_corrected_at_end(self):
        a0 = random_matrix(96, seed=5)
        # column 5 finishes after iteration 0; hit its reflector storage
        inj = FaultInjector().add(FaultSpec(iteration=1, row=40, col=5, magnitude=1.0))
        res = ft_gehrd(a0, FTConfig(nb=32), injector=inj)
        resid, orth = _verify(a0, res)
        assert resid < 1e-13 and orth < 1e-13
        assert res.detections == 0          # invisible to the Σ test
        assert res.q_report.count == 1      # caught by the final Q check
        e = res.q_report.errors[0]
        assert (e.row, e.col) == (40, 5)

    def test_bitflip_fault_model(self):
        """A mid-exponent bit flip (value scaled by 2^±8) detects and
        recovers exactly."""
        a0 = random_matrix(96, seed=6)
        inj = FaultInjector().add(
            FaultSpec(iteration=2, row=80, col=90, kind="bitflip", bit=55)
        )
        res = ft_gehrd(a0, FTConfig(nb=32), injector=inj)
        resid, _ = _verify(a0, res)
        assert resid < 1e-13
        assert res.detections >= 1

    def test_catastrophic_bitflip_is_at_least_detected(self):
        """Flipping the exponent MSB creates a non-finite value that
        poisons the panel's V/T/Y — reverse computation cannot undo NaN
        arithmetic, so the guarantee degrades to detect-and-refuse: the
        run either recovers or raises, it must never return a silently
        corrupted factorization."""
        import warnings

        from repro.errors import ReproError

        a0 = random_matrix(96, seed=14)
        inj = FaultInjector().add(
            FaultSpec(iteration=2, row=80, col=90, kind="bitflip", bit=62)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            try:
                res = ft_gehrd(a0, FTConfig(nb=32), injector=inj)
            except ReproError:
                return  # detected and refused: acceptable
        resid, _ = _verify(a0, res)
        assert resid < 1e-12  # if it claims success it must be correct

    def test_checksum_element_error_recovered(self):
        a0 = random_matrix(96, seed=7)
        inj = FaultInjector().add(
            FaultSpec(iteration=1, row=50, col=-1, space="row_checksum", magnitude=4.0)
        )
        res = ft_gehrd(a0, FTConfig(nb=32), injector=inj)
        resid, _ = _verify(a0, res)
        assert resid < 1e-14
        assert res.recoveries[0].errors[0].kind == "row_checksum"

    def test_error_at_every_moment(self):
        """Sweep the injection moment across the whole factorization."""
        n, nb = 128, 32
        a0 = random_matrix(n, seed=8)
        total = iteration_count(n, nb)
        for it in range(total):
            p = finished_cols_at(it, n, nb)
            inj = FaultInjector().add(
                FaultSpec(iteration=it, row=min(p + 5, n - 1), col=min(p + 10, n - 1),
                          magnitude=1.0)
            )
            res = ft_gehrd(a0, FTConfig(nb=nb), injector=inj)
            resid, _ = _verify(a0, res)
            assert resid < 1e-13, f"moment {it} failed: {resid}"


class TestMultiErrorRecovery:
    def test_two_simultaneous_errors(self):
        """The paper's stronger-than-LU/QR claim: simultaneous errors not
        forming a rectangle are corrected in one recovery."""
        a0 = random_matrix(96, seed=10)
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=1, row=50, col=60, magnitude=1.0))
        inj.add(FaultSpec(iteration=1, row=70, col=80, magnitude=2.0))
        res = ft_gehrd(a0, FTConfig(nb=32), injector=inj)
        resid, _ = _verify(a0, res)
        assert resid < 1e-14
        assert len(res.recoveries) == 1
        assert len(res.recoveries[0].errors) == 2

    def test_errors_in_different_iterations(self):
        """Sequential errors: corrected per iteration, ready for the next
        (the paper's 'continues as normal' property)."""
        a0 = random_matrix(128, seed=11)
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=0, row=40, col=50, magnitude=1.0))
        inj.add(FaultSpec(iteration=2, row=90, col=100, magnitude=2.0))
        res = ft_gehrd(a0, FTConfig(nb=32), injector=inj)
        resid, _ = _verify(a0, res)
        assert resid < 1e-14
        assert res.detections == 2
        assert len(res.recoveries) == 2

    def test_same_row_pair(self):
        a0 = random_matrix(96, seed=12)
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=1, row=50, col=60, magnitude=1.0))
        inj.add(FaultSpec(iteration=1, row=50, col=80, magnitude=3.0))
        res = ft_gehrd(a0, FTConfig(nb=32), injector=inj)
        resid, _ = _verify(a0, res)
        assert resid < 1e-14


class TestScheduleAndOverhead:
    def test_metadata_overhead_small_and_decreasing(self):
        base1 = hybrid_gehrd(1022, HybridConfig(nb=32, functional=False))
        ft1 = ft_gehrd(1022, FTConfig(nb=32, functional=False))
        base2 = hybrid_gehrd(4030, HybridConfig(nb=32, functional=False))
        ft2 = ft_gehrd(4030, FTConfig(nb=32, functional=False))
        o1, o2 = overhead_percent(ft1, base1), overhead_percent(ft2, base2)
        assert 0 < o2 < o1 < 5.0

    def test_error_overhead_depends_on_moment(self):
        """Early errors redo a bigger iteration (Fig. 6's band)."""
        n = 4030
        base = hybrid_gehrd(n, HybridConfig(nb=32, functional=False))
        total = iteration_count(n, 32)

        def ovh(it):
            p = finished_cols_at(it, n, 32)
            inj = FaultInjector().add(
                FaultSpec(iteration=it, row=p + 2, col=p + 3, magnitude=1.0)
            )
            ft = ft_gehrd(n, FTConfig(nb=32, functional=False), injector=inj)
            return overhead_percent(ft, base)

        assert ovh(1) > ovh(total - 2)

    def test_q_checksum_overlap_hides_cost(self):
        """The paper's §IV-E trick: overlapped Q checksums must be
        no slower than the serialized ablation."""
        n = 2046
        t_overlap = ft_gehrd(n, FTConfig(nb=32, functional=False,
                                         overlap_q_checksums=True)).seconds
        t_serial = ft_gehrd(n, FTConfig(nb=32, functional=False,
                                        overlap_q_checksums=False)).seconds
        assert t_overlap <= t_serial

    def test_persistent_error_storm_raises(self):
        """An adversarial injector that re-corrupts on every retry must
        exhaust the budget, not loop forever."""

        class StormInjector(FaultInjector):
            def apply_at(self, em, iteration):
                if iteration == 1:
                    em.data[50, 60] += 1.0
                    return []
                return []

        a0 = random_matrix(96, seed=13)

        # a storm that strikes inside every attempt: corrupt via a hook on
        # the detector path instead — emulate by injecting at iteration 1
        # and patching max_retries to 0 so one detection overflows
        inj = FaultInjector().add(FaultSpec(iteration=1, row=50, col=60, magnitude=1.0))
        with pytest.raises(ConvergenceError):
            ft_gehrd(a0, FTConfig(nb=32, max_retries=0), injector=inj)
