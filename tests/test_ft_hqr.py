"""Tests for the protected Francis QR driver (checkpoint/rollback)."""

import warnings

import numpy as np
import pytest

from repro.eigen import (
    QRProtectConfig,
    ft_hqr,
    hessenberg_schur,
    is_quasi_triangular,
    standardized_blocks_ok,
)
from repro.errors import EscalationExhausted, ShapeError
from repro.faults import FaultInjector, FaultSpec
from repro.linalg import orthogonality_residual
from repro.utils.rng import random_matrix


def _hess(n, seed, dtype=np.float64):
    return np.triu(random_matrix(n, seed=seed, dtype=dtype), -1)


def _spectrum(res):
    return np.sort_complex(res.eigvals)


class TestFaultFreeParity:
    @pytest.mark.parametrize("n", [1, 2, 8, 24, 48])
    def test_byte_identical_to_unprotected(self, n):
        h = _hess(n, n + 3)
        t_ref, z_ref = hessenberg_schur(h)
        res = ft_hqr(h)
        # same sweeps, same rotations, same memory walk: exact equality
        assert np.array_equal(res.t, t_ref)
        assert np.array_equal(res.z, z_ref)
        assert res.detections == 0
        assert res.recoveries == []
        assert res.sweeps == res.wall_steps

    def test_without_z(self):
        h = _hess(20, 5)
        res = ft_hqr(h, QRProtectConfig(want_z=False))
        assert res.z is None
        np.testing.assert_array_equal(
            _spectrum(res), _spectrum(ft_hqr(h)))

    def test_checkpoint_cadence(self):
        h = _hess(32, 1)
        res = ft_hqr(h, QRProtectConfig(verify_every=4))
        assert res.checkpoint_saves >= res.sweeps // 4
        assert res.verifications >= res.checkpoint_saves
        assert res.checkpoint_peak_bytes > 0
        assert res.verify_every_final == 4

    def test_rejects_nonsquare(self):
        with pytest.raises(ShapeError):
            ft_hqr(np.zeros((3, 4)))

    def test_rejects_non_hessenberg(self):
        a = random_matrix(8, seed=0)
        with pytest.raises(ShapeError):
            ft_hqr(a)


class TestDetectionAndRecovery:
    def test_matrix_fault_corrected_byte_exact(self):
        h = _hess(24, 7)
        clean = ft_hqr(h)
        inj = FaultInjector().add(FaultSpec(
            iteration=3, row=5, col=9, magnitude=1.0,
            space="qr_matrix", phase="pre_sweep"))
        res = ft_hqr(h, injector=inj)
        assert res.detections >= 1
        assert res.rollbacks >= 1
        assert "reverse_redo" in res.tier_tally
        # rollback replays the identical sweep sequence: exact recovery
        assert np.array_equal(res.t, clean.t)
        assert np.array_equal(res.z, clean.z)
        assert res.wall_steps > res.sweeps

    def test_z_fault_detected_by_orthogonality(self):
        h = _hess(24, 11)
        clean = ft_hqr(h)
        inj = FaultInjector().add(FaultSpec(
            iteration=4, row=3, col=8, magnitude=1.0,
            space="qr_z", phase="post_sweep"))
        res = ft_hqr(h, QRProtectConfig(z_spot_checks=24), injector=inj)
        assert res.detections >= 1
        assert np.array_equal(res.t, clean.t)
        assert orthogonality_residual(res.z) < 1e-13

    def test_shift_fault_is_masked(self):
        # perturbing the (trace, det) shift pair steers the iteration but
        # preserves the similarity class: spectrum right, nothing to detect
        h = _hess(24, 13)
        ref = _spectrum(ft_hqr(h))
        inj = FaultInjector().add(FaultSpec(
            iteration=2, row=0, col=0, magnitude=0.5,
            space="qr_shift", phase="shift"))
        res = ft_hqr(h, injector=inj)
        got = _spectrum(res)
        scale = max(float(np.max(np.abs(ref))), 1.0)
        assert float(np.max(np.abs(got - ref))) / scale < 1e-8

    def test_deflation_fault_corrected(self):
        h = _hess(24, 17)
        clean = ft_hqr(h)
        inj = FaultInjector().add(FaultSpec(
            iteration=3, row=10, col=0, magnitude=1.0,
            space="qr_deflation", phase="pre_sweep"))
        res = ft_hqr(h, injector=inj)
        assert res.detections >= 1
        assert np.array_equal(res.t, clean.t)

    def test_checkpoint_corruption_deep_rollback(self):
        # corrupt the saved checkpoint, then hit T so the rollback is
        # forced to use it: restore self-verification must reject it and
        # escalate to the pristine-H deep rollback, halving verify_every
        h = _hess(24, 19)
        clean = ft_hqr(h)
        inj = (FaultInjector()
               .add(FaultSpec(iteration=6, row=4, col=7, magnitude=1.0,
                              space="qr_checkpoint", phase="pre_sweep"))
               .add(FaultSpec(iteration=6, row=5, col=9, magnitude=1.0,
                              space="qr_matrix", phase="pre_sweep")))
        cfg = QRProtectConfig(verify_every=6, max_replays=2)
        res = ft_hqr(h, cfg, injector=inj)
        assert res.checkpoint_corruptions >= 1
        assert res.deep_rollbacks == 1
        assert res.verify_every_final == 3
        assert "deep_rollback" in res.tier_tally
        np.testing.assert_array_equal(_spectrum(res), _spectrum(clean))

    def test_exhaustion_raises_with_report(self):
        # a fault storm on every sweep with zero deep-rollback budget
        h = _hess(24, 23)
        inj = FaultInjector()
        for it in range(1, 40):
            inj.add(FaultSpec(iteration=it, row=5, col=9, magnitude=1.0,
                              space="qr_matrix", phase="pre_sweep"))
        cfg = QRProtectConfig(max_retries=1, max_replays=1,
                              max_deep_rollbacks=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(EscalationExhausted) as exc_info:
                ft_hqr(h, cfg, injector=inj)
        report = exc_info.value.report
        assert report.attempts

    def test_late_fault_fires_and_is_corrected(self):
        # planned far past convergence: strikes the finished T, and the
        # final verification catches it (no silent skip)
        h = _hess(24, 29)
        clean = ft_hqr(h)
        inj = FaultInjector().add(FaultSpec(
            iteration=10_000, row=2, col=6, magnitude=1.0,
            space="qr_matrix", phase="pre_sweep"))
        res = ft_hqr(h, injector=inj)
        assert res.detections >= 1
        assert np.array_equal(res.t, clean.t)

    def test_unfired_spec_warns(self):
        h = _hess(8, 31)
        # during_recovery never happens on a fault-free run
        inj = FaultInjector().add(FaultSpec(
            iteration=1, row=1, col=1, magnitude=1.0,
            space="qr_matrix", phase="during_recovery"))
        with pytest.warns(RuntimeWarning, match="never fired"):
            ft_hqr(h, injector=inj)

    def test_float32_fault_corrected(self):
        h = _hess(24, 37, dtype=np.float32)
        clean = ft_hqr(h)
        assert clean.dtype == "float32"
        inj = FaultInjector().add(FaultSpec(
            iteration=3, row=5, col=9, magnitude=1.0,
            space="qr_matrix", phase="pre_sweep"))
        res = ft_hqr(h, injector=inj)
        assert res.detections >= 1
        assert res.t.dtype == np.float32
        assert np.array_equal(res.t, clean.t)

    def test_result_structure_after_recovery(self):
        h = _hess(24, 41)
        inj = FaultInjector().add(FaultSpec(
            iteration=3, row=5, col=9, magnitude=1.0,
            space="qr_matrix", phase="pre_sweep"))
        res = ft_hqr(h, injector=inj)
        assert is_quasi_triangular(res.t, tol=1e-12)
        assert standardized_blocks_ok(res.t)
        assert res.errors_corrected == len(res.recoveries)
        assert res.checkpoint_restores == res.rollbacks


@pytest.mark.slow
class TestEigCampaignAcceptance:
    def test_zero_silent_corruption(self):
        from repro.faults import run_eig_campaign

        a = random_matrix(24, seed=0)
        res = run_eig_campaign(a, nb=8, moments=3, seed=0)
        counts = res.outcome_counts
        assert counts["detected"] == 0, counts  # silent wrong spectrum
        assert counts["aborted"] == 0, counts
        assert counts["corrected"] > 0
        assert res.baseline_residual < 1e-12
