"""Golden fault-free parity of the eigensolver pipelines vs numpy.

Every driver path that produces a spectrum — unprotected Francis QR,
the protected ``ft_hqr``, and the end-to-end ``ft_eig``/``ft_schur``
serve drivers — must agree with ``numpy.linalg.eigvals`` on clean
inputs, across sizes, seeds and precision lanes, and must leave the
Schur factor in standardized real Schur form.
"""

import numpy as np
import pytest

from repro.core import FTConfig, ft_gehrd
from repro.eigen import (
    ft_hqr,
    hessenberg_eigvals,
    is_quasi_triangular,
    standardized_blocks_ok,
)
from repro.linalg import extract_hessenberg
from repro.utils.precision import lane_scale
from repro.utils.rng import random_matrix


def _tol(dtype, n):
    # numpy's LAPACK path and our pure-python QR accumulate roundoff
    # differently; the agreement bar scales with lane eps and size
    return 5e-11 * float(lane_scale(np.dtype(dtype))) * max(n / 24.0, 1.0)


def _spectrum_dist(got, ref):
    got, ref = np.sort_complex(got), np.sort_complex(ref)
    return float(np.max(np.abs(got - ref))) / max(float(np.max(np.abs(ref))), 1.0)


GRID = [(n, seed) for n in (8, 24, 48) for seed in (0, 1, 2)]


class TestNumpyParity:
    @pytest.mark.parametrize("n,seed", GRID)
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_ft_pipeline_matches_numpy(self, n, seed, dtype):
        a = random_matrix(n, seed=seed, dtype=dtype)
        ref = np.linalg.eigvals(a.astype(np.float64))
        res = ft_gehrd(a, FTConfig(nb=8, functional=True))
        fr = ft_hqr(extract_hessenberg(res.a), check_input=False)
        assert fr.detections == 0
        assert _spectrum_dist(fr.eigvals, ref) < _tol(dtype, n)

    @pytest.mark.parametrize("n,seed", GRID)
    def test_protected_matches_unprotected(self, n, seed):
        from repro.eigen import hessenberg_schur, schur_eigvals

        h = np.triu(random_matrix(n, seed=seed), -1)
        eig = np.sort_complex(ft_hqr(h).eigvals)
        # byte-identical to the accumulating Schur driver it wraps...
        np.testing.assert_array_equal(
            eig, np.sort_complex(schur_eigvals(hessenberg_schur(h)[0])))
        # ...and within roundoff of the accumulation-free HQR driver
        np.testing.assert_allclose(
            eig, np.sort_complex(hessenberg_eigvals(h)), atol=1e-10)

    @pytest.mark.parametrize("n,seed", GRID)
    def test_complex_eigvals_come_in_conjugate_pairs(self, n, seed):
        h = np.triu(random_matrix(n, seed=seed), -1)
        eig = ft_hqr(h).eigvals
        complex_part = np.sort_complex(eig[eig.imag != 0])
        np.testing.assert_allclose(
            complex_part, np.sort_complex(np.conj(complex_part)))

    @pytest.mark.parametrize("n,seed", GRID)
    def test_schur_form_invariants(self, n, seed):
        h = np.triu(random_matrix(n, seed=seed), -1)
        fr = ft_hqr(h)
        assert is_quasi_triangular(fr.t, tol=1e-12)
        assert standardized_blocks_ok(fr.t)
        # Z reproduces H: the similarity the invariants certify
        err = np.linalg.norm(fr.z @ fr.t @ fr.z.T - h, 1)
        assert err / max(np.linalg.norm(h, 1), 1.0) < 1e-12


class TestServeDriverParity:
    @pytest.mark.parametrize("n,seed", [(16, 0), (24, 3), (48, 5)])
    @pytest.mark.parametrize("driver", ["ft_eig", "ft_schur"])
    def test_payload_spectrum_matches_numpy(self, n, seed, driver):
        from repro.serve import JobSpec, execute_job

        payload = execute_job(JobSpec(driver=driver, n=n, seed=seed, nb=8))
        a = random_matrix(n, seed=seed)
        ref = np.linalg.eigvals(a)
        got = np.array([complex(re, im) for re, im in payload["eigvals"]])
        assert _spectrum_dist(got, ref) < _tol("float64", n)
        assert payload["detections"] == 0

    def test_schur_payload_residual(self):
        from repro.serve import JobSpec, execute_job

        payload = execute_job(JobSpec(driver="ft_schur", n=32, seed=9, nb=8))
        assert payload["schur_residual"] < 1e-12

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_lanes_through_serve(self, dtype):
        from repro.serve import JobSpec, execute_job

        payload = execute_job(
            JobSpec(driver="ft_eig", n=24, seed=1, nb=8, dtype=dtype))
        assert payload["dtype"] == dtype
        a = random_matrix(24, seed=1, dtype=dtype)
        ref = np.linalg.eigvals(a.astype(np.float64))
        got = np.array([complex(re, im) for re, im in payload["eigvals"]])
        assert _spectrum_dist(got, ref) < _tol(dtype, 24)
