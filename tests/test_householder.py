"""Unit tests for Householder reflector generation and application."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg.householder import (
    Reflector,
    full_vector,
    larf_left,
    larf_right,
    larfg,
    reflector_matrix,
)


class TestLarfg:
    def test_annihilates_tail(self, rng):
        alpha = 1.7
        x = rng.standard_normal(6)
        orig = np.concatenate(([alpha], x))
        refl = larfg(alpha, x)
        h = reflector_matrix(refl.tau, full_vector(refl))
        out = h @ orig
        assert out[0] == pytest.approx(refl.beta, rel=1e-14)
        np.testing.assert_allclose(out[1:], 0.0, atol=1e-14)

    def test_norm_preserved(self, rng):
        alpha = -0.3
        x = rng.standard_normal(5)
        nrm = np.hypot(alpha, np.linalg.norm(x))
        refl = larfg(alpha, x.copy())
        assert abs(refl.beta) == pytest.approx(nrm, rel=1e-14)

    def test_beta_opposite_sign_of_alpha(self, rng):
        # LAPACK convention: beta = -sign(alpha) * norm
        for alpha in (2.0, -2.0):
            refl = larfg(alpha, rng.standard_normal(4))
            assert np.sign(refl.beta) == -np.sign(alpha)

    def test_zero_tail_is_identity(self):
        refl = larfg(3.0, np.zeros(4))
        assert refl.tau == 0.0
        assert refl.beta == 3.0

    def test_empty_tail(self):
        refl = larfg(1.5, np.zeros(0))
        assert refl.tau == 0.0 and refl.beta == 1.5

    def test_tau_range(self, rng):
        # standard Householder: 1 <= tau <= 2
        refl = larfg(0.9, rng.standard_normal(8))
        assert 1.0 <= refl.tau <= 2.0

    def test_rejects_matrix_input(self):
        with pytest.raises(ShapeError):
            larfg(1.0, np.zeros((2, 2)))

    def test_modifies_x_in_place(self, rng):
        x = rng.standard_normal(4)
        xc = x.copy()
        refl = larfg(1.0, x)
        assert refl.v is x
        assert not np.array_equal(x, xc)


class TestLarfApply:
    def test_left_matches_explicit(self, rng):
        c = np.asfortranarray(rng.standard_normal((6, 4)))
        refl = larfg(1.0, rng.standard_normal(5))
        u = full_vector(refl)
        ref = reflector_matrix(refl.tau, u) @ c
        larf_left(refl.tau, u, c)
        np.testing.assert_allclose(c, ref, rtol=1e-13)

    def test_right_matches_explicit(self, rng):
        c = np.asfortranarray(rng.standard_normal((4, 6)))
        refl = larfg(1.0, rng.standard_normal(5))
        u = full_vector(refl)
        ref = c @ reflector_matrix(refl.tau, u)
        larf_right(refl.tau, u, c)
        np.testing.assert_allclose(c, ref, rtol=1e-13)

    def test_tau_zero_noop(self, rng):
        c = np.asfortranarray(rng.standard_normal((3, 3)))
        ref = c.copy()
        larf_left(0.0, np.ones(3), c)
        np.testing.assert_array_equal(c, ref)

    def test_involution(self, rng):
        # applying H twice returns the original (H orthogonal symmetric)
        c = np.asfortranarray(rng.standard_normal((6, 3)))
        ref = c.copy()
        refl = larfg(1.0, rng.standard_normal(5))
        u = full_vector(refl)
        larf_left(refl.tau, u, c)
        larf_left(refl.tau, u, c)
        np.testing.assert_allclose(c, ref, rtol=1e-13)

    def test_shape_check(self, rng):
        c = np.zeros((4, 2), order="F")
        with pytest.raises(ShapeError):
            larf_left(1.0, np.ones(3), c)

    def test_reflector_matrix_orthogonal(self, rng):
        refl = larfg(0.5, rng.standard_normal(6))
        h = reflector_matrix(refl.tau, full_vector(refl))
        np.testing.assert_allclose(h @ h.T, np.eye(7), atol=1e-14)
