"""Tests for the Section-V analytic overhead model."""

import pytest

from repro.analysis import (
    breakdown,
    flop_correct,
    flop_extra_no_error,
    flop_extra_one_error,
    flop_init,
    flop_locate,
    flop_orig,
    flop_redo,
    overhead_ratio,
    storage_extra,
)


class TestClosedForms:
    def test_flop_init_formula(self):
        # 2N(N + N - 1) = 4N² − 2N
        assert flop_init(100) == 4 * 100**2 - 2 * 100

    def test_flop_locate_formula(self):
        assert flop_locate(100) == 4 * 100**2 - 2 * 100

    def test_flop_correct_formula(self):
        assert flop_correct(100) == 99

    def test_extra_is_order_n_squared(self):
        """FLOP_extra = O(N²): quadrupling under doubling N."""
        e1 = flop_extra_no_error(1000, 32)
        e2 = flop_extra_no_error(2000, 32)
        assert 3.5 < e2 / e1 < 4.5

    def test_overhead_ratio_tends_to_zero(self):
        """The paper's §V headline: overhead = O(1/N) → 0."""
        r = [overhead_ratio(n, 32) for n in (1000, 2000, 4000, 8000)]
        assert r[0] > r[1] > r[2] > r[3]
        assert r[1] == pytest.approx(r[0] / 2, rel=0.2)

    def test_overhead_below_one_percent_at_paper_sizes(self):
        assert overhead_ratio(10110, 32) < 0.01

    def test_storage_formula(self):
        # S = nb·N + 4N
        assert storage_extra(1000, 32) == 32 * 1000 + 4 * 1000

    def test_redo_decreases_with_later_iteration(self):
        n, nb = 4000, 32
        assert flop_redo(n, nb, 1) > flop_redo(n, nb, 60) > flop_redo(n, nb, 120)

    def test_redo_is_order_n_squared(self):
        assert flop_redo(4000, 32, 1) / flop_orig(4000) < 0.05

    def test_one_error_total_still_vanishing(self):
        n = 10110
        assert flop_extra_one_error(n, 32, 1) / flop_orig(n) < 0.02

    def test_breakdown_consistency(self):
        b = breakdown(2048, 32)
        assert b.total == pytest.approx(flop_extra_no_error(2048, 32))
        assert b.ratio == pytest.approx(overhead_ratio(2048, 32))


class TestModelVsMeasured:
    def test_measured_abft_flops_same_order_as_model(self):
        """The instrumented functional driver's ABFT flop counts must sit
        within a small factor of the §V closed forms (the model tracks
        the paper's op set; our implementation adds the segment
        refreshes, same O(N²) class)."""
        from repro.core import FTConfig, ft_gehrd
        from repro.utils.rng import random_matrix

        n, nb = 128, 32
        res = ft_gehrd(random_matrix(n, seed=1), FTConfig(nb=nb))
        measured = res.counter.category_total(
            "abft_init", "abft_maintain", "abft_detect"
        )
        model = flop_extra_no_error(n, nb)
        assert measured / model < 6.0
        assert model / measured < 6.0

    def test_measured_total_matches_flop_orig(self):
        from repro.core import FTConfig, ft_gehrd
        from repro.utils.rng import random_matrix

        n = 160
        res = ft_gehrd(random_matrix(n, seed=2), FTConfig(nb=32))
        base = res.counter.category_total("panel", "right_update", "left_update")
        assert base == pytest.approx(flop_orig(n), rel=0.3)


class TestExactMaintainModel:
    """``flop_abft_maintain`` is not an order-of-magnitude §V form: it
    must equal the instrumented functional driver's ``abft_maintain``
    counter EXACTLY, under the fused FT-GEMM accounting (checksum rows
    charged as operand extensions of the apply GEMMs)."""

    @pytest.mark.parametrize("n,nb,channels", [(64, 16, 1), (96, 32, 2), (128, 32, 3)])
    def test_model_matches_measured_counter_exactly(self, n, nb, channels):
        from repro.analysis import flop_abft_maintain
        from repro.core import FTConfig, ft_gehrd
        from repro.utils.rng import random_matrix

        res = ft_gehrd(
            random_matrix(n, seed=7), FTConfig(nb=nb, channels=channels, functional=True)
        )
        assert res.detections == 0
        measured = res.counter.by_category["abft_maintain"]
        assert flop_abft_maintain(n, nb, channels) == measured

    def test_model_matches_fp32_lane_too(self):
        import numpy as np

        from repro.analysis import flop_abft_maintain
        from repro.core import FTConfig, ft_gehrd
        from repro.utils.rng import random_matrix

        n, nb = 96, 16
        res = ft_gehrd(
            random_matrix(n, seed=9, dtype=np.float32), FTConfig(nb=nb, functional=True)
        )
        # flop accounting is dtype-independent: same counts on both lanes
        assert flop_abft_maintain(n, nb, 1) == res.counter.by_category["abft_maintain"]
