"""Tests for deep rollback: unwinding completed iterations from packed
storage, and recovery under detection latency (detect_every > 1)."""

import numpy as np
import pytest

from repro.abft import (
    EncodedMatrix,
    left_update_encoded,
    right_update_encoded,
    v_col_checksums,
    y_col_checksums,
)
from repro.abft.unwind import (
    extract_panel_reflectors,
    locate_errors_rowonly,
    rebuild_col_checksums,
    unwind_iteration,
)
from repro.core import FTConfig, ft_gehrd
from repro.errors import ShapeError, UncorrectableError
from repro.faults import FaultInjector, FaultSpec
from repro.linalg import one_norm, orghr, extract_hessenberg, factorization_residual
from repro.linalg.lahr2 import lahr2
from repro.utils.rng import random_matrix


def _run_iterations(em, taus, plan, upto):
    """Run the encoded factorization through iteration `upto` (exclusive),
    returning start-of-iteration snapshots."""
    n = em.n
    snaps = {}
    for it in range(upto):
        p, ib = plan[it]
        snaps[it] = em.ext.copy()
        pf = lahr2(em.ext, p, ib, n)
        taus[p : p + ib] = pf.taus
        vce = v_col_checksums(pf, em)
        ychk = y_col_checksums(em, pf)
        right_update_encoded(em, pf, vce, ychk)
        left_update_encoded(em, pf, vce)
        em.refresh_finished_segment(p, ib)
    snaps[upto] = em.ext.copy()
    return snaps


PLAN48 = [(0, 8), (8, 8), (16, 8), (24, 8), (32, 8), (40, 7)]


class TestUnwindIteration:
    def test_data_and_row_checksums_roundtrip(self):
        n = 48
        em = EncodedMatrix(random_matrix(n, seed=1))
        taus = np.zeros(n - 1)
        snaps = _run_iterations(em, taus, PLAN48, 3)
        unwind_iteration(em, *PLAN48[2], taus)
        # data + row-checksum column restored; the column-checksum row is
        # deliberately NOT unwound
        np.testing.assert_allclose(em.ext[:n, :], snaps[2][:n, :], atol=1e-10)

    def test_full_unwinding_restores_input(self):
        n = 48
        a0 = random_matrix(n, seed=2)
        em = EncodedMatrix(a0)
        taus = np.zeros(n - 1)
        _run_iterations(em, taus, PLAN48, len(PLAN48))
        for it in range(len(PLAN48) - 1, -1, -1):
            unwind_iteration(em, *PLAN48[it], taus)
        np.testing.assert_allclose(em.data, a0, atol=1e-10)

    def test_reflector_extraction_consistency(self):
        n = 48
        em = EncodedMatrix(random_matrix(n, seed=3))
        taus = np.zeros(n - 1)
        # run one iteration, capture its factors directly
        pf = lahr2(em.ext, 0, 8, n)
        taus[0:8] = pf.taus
        vce = v_col_checksums(pf, em)
        ychk = y_col_checksums(em, pf)
        right_update_encoded(em, pf, vce, ychk)
        left_update_encoded(em, pf, vce)
        v, t = extract_panel_reflectors(em, 0, 8, taus)
        np.testing.assert_allclose(v, pf.v, atol=1e-13)
        np.testing.assert_allclose(t, pf.t, atol=1e-12)

    def test_invalid_panel_rejected(self):
        em = EncodedMatrix(random_matrix(8, seed=4))
        with pytest.raises(ShapeError):
            extract_panel_reflectors(em, 6, 4, np.zeros(7))

    def test_corruption_survives_unwinding_as_single_delta(self):
        """Reversal linearity across MULTIPLE iterations: unwinding past
        the injection point restores a clean single-element delta."""
        n = 48
        em = EncodedMatrix(random_matrix(n, seed=5), channels=2)
        taus = np.zeros(n - 1)
        snaps = _run_iterations(em, taus, PLAN48, 2)  # through iterations 0,1
        clean = snaps[2][:n, :n].copy()               # pre-injection state
        em.data[30, 40] += 2.5                        # inject at start of it 2
        # run iterations 2 and 3 on the corrupted data
        for it in (2, 3):
            p, ib = PLAN48[it]
            pf = lahr2(em.ext, p, ib, n)
            taus[p : p + ib] = pf.taus
            vce = v_col_checksums(pf, em)
            ychk = y_col_checksums(em, pf)
            right_update_encoded(em, pf, vce, ychk)
            left_update_encoded(em, pf, vce)
            em.refresh_finished_segment(p, ib)
        unwind_iteration(em, *PLAN48[3], taus)
        unwind_iteration(em, *PLAN48[2], taus)
        diff = em.ext[:n, :n] - clean
        i, j = np.unravel_index(np.argmax(np.abs(diff)), diff.shape)
        assert (i, j) == (30, 40)
        assert diff[i, j] == pytest.approx(2.5, rel=1e-8)
        diff[i, j] = 0.0
        assert np.max(np.abs(diff)) < 1e-9


class TestRowOnlyLocation:
    def test_two_channel_ratio_locate(self):
        a = random_matrix(32, seed=6)
        em = EncodedMatrix(a, channels=2)
        em.data[7, 19] += 3.0
        errs = locate_errors_rowonly(em, 0, one_norm(a))
        assert len(errs) == 1
        assert (errs[0].row, errs[0].col) == (7, 19)

    def test_single_channel_refuses(self):
        a = random_matrix(32, seed=7)
        em = EncodedMatrix(a, channels=1)
        em.data[7, 19] += 3.0
        with pytest.raises(UncorrectableError):
            locate_errors_rowonly(em, 0, one_norm(a))

    def test_clean_state_locates_nothing(self):
        a = random_matrix(32, seed=8)
        em = EncodedMatrix(a, channels=2)
        assert locate_errors_rowonly(em, 0, one_norm(a)) == []

    def test_rebuild_col_checksums(self):
        a = random_matrix(32, seed=9)
        em = EncodedMatrix(a, channels=2)
        em.col_checksum_block[:] = 0.0
        rebuild_col_checksums(em, 0)
        np.testing.assert_allclose(
            em.col_checksum_block, em.fresh_col_block(0), atol=1e-12
        )


class TestDelayedDetectionRecovery:
    def _check(self, a0, res):
        q = orghr(res.a, res.taus)
        h = extract_hessenberg(res.a)
        return factorization_residual(a0, q, h)

    def test_one_iteration_latency(self):
        a0 = random_matrix(128, seed=10)
        inj = FaultInjector().add(FaultSpec(iteration=1, row=90, col=100, magnitude=2.0))
        res = ft_gehrd(a0, FTConfig(nb=32, detect_every=3, channels=2), injector=inj)
        assert self._check(a0, res) < 1e-12
        assert res.detections == 1
        e = res.recoveries[0].errors[0]
        assert (e.row, e.col) == (90, 100)

    def test_two_iteration_latency(self):
        a0 = random_matrix(128, seed=11)
        inj = FaultInjector().add(FaultSpec(iteration=1, row=100, col=110, magnitude=1.5))
        res = ft_gehrd(a0, FTConfig(nb=32, detect_every=4, channels=2), injector=inj)
        assert self._check(a0, res) < 1e-12

    def test_single_channel_latency_restarts(self):
        """One channel cannot decode a stale smear — the deep rollback
        exhausts, and the ladder's restart tier turns what used to be a
        refusal into a (slow) clean success."""
        a0 = random_matrix(128, seed=12)
        inj = FaultInjector().add(FaultSpec(iteration=1, row=90, col=100, magnitude=2.0))
        res = ft_gehrd(a0, FTConfig(nb=32, detect_every=3, channels=1), injector=inj)
        assert self._check(a0, res) < 1e-12
        assert res.restarts == 1
        assert [r.tier for r in res.recoveries] == ["restart"]

    def test_single_channel_latency_refused_without_restart_budget(self):
        """With the backstop disabled the old fail-stop contract holds:
        detected, not decodable, structured refusal (never silent)."""
        from repro.resilience import EscalationExhausted, LadderConfig

        a0 = random_matrix(128, seed=12)
        inj = FaultInjector().add(FaultSpec(iteration=1, row=90, col=100, magnitude=2.0))
        cfg = FTConfig(
            nb=32, detect_every=3, channels=1, ladder=LadderConfig(max_restarts=0)
        )
        with pytest.raises(EscalationExhausted) as ei:
            ft_gehrd(a0, cfg, injector=inj)
        report = ei.value.report
        assert report is not None
        assert report.attempts.get("reverse_redo", 0) >= 1
        assert report.attempts.get("deep_rollback", 0) >= 1
        assert report.attempts.get("restart", 0) == 0

    def test_latency_zero_unaffected(self):
        """detect_every=1 (the paper's mode) never needs the deep path."""
        a0 = random_matrix(96, seed=13)
        inj = FaultInjector().add(FaultSpec(iteration=2, row=70, col=80, magnitude=1.0))
        res = ft_gehrd(a0, FTConfig(nb=32, detect_every=1, channels=1), injector=inj)
        assert self._check(a0, res) < 1e-13

    def test_metadata_mode_prices_unwinds(self):
        """Delayed detection costs more simulated time (redo of the
        intervening iterations plus the unwind kernels)."""
        from repro.core import HybridConfig, hybrid_gehrd, overhead_percent

        base = hybrid_gehrd(2046, HybridConfig(nb=32, functional=False))

        def ovh(de):
            inj = FaultInjector().add(
                FaultSpec(iteration=9, row=1000, col=1100, magnitude=1.0)
            )
            ft = ft_gehrd(
                2046, FTConfig(nb=32, functional=False, detect_every=de, channels=2),
                injector=inj,
            )
            return overhead_percent(ft, base)

        assert ovh(8) > ovh(1)
