"""Medium-scale integration runs — closer to realistic problem sizes,
checking that nothing about the ABFT machinery degrades with more
panels, longer recovery distances, and mixed fault plans."""

import numpy as np
import pytest

from repro.core import FTConfig, ft_gehrd
from repro.faults import FaultInjector, FaultSpec, iteration_count, finished_cols_at
from repro.linalg import (
    extract_hessenberg,
    factorization_residual,
    orghr,
    orthogonality_residual,
)
from repro.utils.rng import random_matrix

N = 384
NB = 32


@pytest.fixture(scope="module")
def matrix():
    return random_matrix(N, seed=99)


class TestMediumScale:
    def test_multi_fault_run(self, matrix):
        """One fault in each area, spread across the run, plus a checksum
        element hit — everything recovered in a single factorization."""
        total = iteration_count(N, NB)
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=1, row=10, col=200, magnitude=2.0))       # area 1
        inj.add(FaultSpec(iteration=total // 2, row=300, col=320, magnitude=-1.5))  # area 2
        inj.add(FaultSpec(iteration=3, row=200, col=5, magnitude=0.75))       # area 3 (Q)
        inj.add(FaultSpec(iteration=total - 2, row=100, col=-1,
                          space="row_checksum", magnitude=3.0))
        res = ft_gehrd(matrix, FTConfig(nb=NB), injector=inj)
        q = orghr(res.a, res.taus)
        h = extract_hessenberg(res.a)
        assert factorization_residual(matrix, q, h) < 1e-13
        assert orthogonality_residual(q) < 1e-13
        assert res.detections == 3          # areas 1/2 + the checksum element
        assert res.q_report.count == 1      # the area-3 hit

    def test_deep_rollback_at_scale(self, matrix):
        """Three iterations of detection latency at N=384."""
        inj = FaultInjector().add(
            FaultSpec(iteration=2, row=300, col=310, magnitude=1.0)
        )
        res = ft_gehrd(
            matrix, FTConfig(nb=NB, detect_every=4, channels=2), injector=inj
        )
        q = orghr(res.a, res.taus)
        h = extract_hessenberg(res.a)
        assert factorization_residual(matrix, q, h) < 1e-13

    def test_simulated_overhead_at_scale_is_small(self, matrix):
        """The functional run's simulated overhead matches the O(1/N)
        expectation at this size."""
        from repro.core import HybridConfig, hybrid_gehrd, overhead_percent

        base = hybrid_gehrd(matrix, HybridConfig(nb=NB))
        ft = ft_gehrd(matrix, FTConfig(nb=NB))
        assert 0 < overhead_percent(ft, base) < 4.0

    def test_eigenvalues_through_everything(self, matrix):
        """Spectrum preserved end-to-end through an FT run with a fault."""
        from repro.eigen import hessenberg_eigvals

        inj = FaultInjector().add(
            FaultSpec(iteration=5, row=250, col=260, magnitude=2.0)
        )
        res = ft_gehrd(matrix, FTConfig(nb=NB), injector=inj)
        h = extract_hessenberg(res.a)
        ours = np.sort_complex(hessenberg_eigvals(h, check_input=False))
        ref = np.sort_complex(np.linalg.eigvals(matrix))
        assert np.max(np.abs(ours - ref)) < 1e-8 * np.max(np.abs(ref))
