"""Tests for the consistent-hash ring (``repro.cluster.ring``).

The two properties the cluster tier leans on are tested directly:
*uniformity* — with virtual nodes, each shard owns about K/N of a key
population, so no shard becomes a hot spot; and *minimal movement* —
a membership change remaps only the keys whose arcs it touched (about
K/N of them), so scaling or restarting the fleet doesn't cold-start
every shard's cache at once.
"""

from __future__ import annotations

import pytest

from repro.cluster import HashRing

KEYS = [f"job-key-{i:05d}" for i in range(4000)]


class TestMembership:
    def test_add_remove_roundtrip(self):
        ring = HashRing(["a", "b"])
        assert ring.shards == ["a", "b"]
        assert len(ring) == 2 and "a" in ring
        ring.add("c")
        assert ring.shards == ["a", "b", "c"]
        ring.remove("b")
        assert ring.shards == ["a", "c"]

    def test_double_add_is_an_error(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError, match="already on the ring"):
            ring.add("a")

    def test_remove_unknown_is_an_error(self):
        with pytest.raises(ValueError, match="not on the ring"):
            HashRing(["a"]).remove("b")

    def test_empty_ring_has_no_owner(self):
        with pytest.raises(LookupError):
            HashRing().owner("k")

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


class TestPlacement:
    def test_owner_is_deterministic(self):
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s2", "s0", "s1"])  # insertion order is irrelevant
        for key in KEYS[:200]:
            assert a.owner(key) == b.owner(key)

    def test_preference_starts_at_owner_and_covers_fleet(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        for key in KEYS[:100]:
            order = ring.preference(key)
            assert order[0] == ring.owner(key)
            assert sorted(order) == ring.shards  # every shard, no dupes

    def test_successor_differs_from_owner_on_multi_shard_ring(self):
        ring = HashRing(["s0", "s1", "s2"])
        for key in KEYS[:100]:
            assert ring.successor(key) != ring.owner(key)

    def test_successor_on_single_shard_ring_is_the_owner(self):
        ring = HashRing(["only"])
        assert ring.successor("k") == "only"

    def test_uniform_distribution(self):
        """Every shard's share stays within 2x of the ideal K/N."""
        shards = [f"s{i}" for i in range(4)]
        ring = HashRing(shards)
        counts = {sid: 0 for sid in shards}
        for key in KEYS:
            counts[ring.owner(key)] += 1
        ideal = len(KEYS) / len(shards)
        for sid, got in counts.items():
            assert 0.5 * ideal <= got <= 1.5 * ideal, (sid, counts)


class TestMinimalMovement:
    def test_add_moves_at_most_its_fair_share_and_only_to_itself(self):
        ring = HashRing(["s0", "s1", "s2"])
        before = {key: ring.owner(key) for key in KEYS}
        ring.add("s3")
        moved = [key for key in KEYS if ring.owner(key) != before[key]]
        # the strong form of the consistent-hashing contract: a key
        # either stays put or moves to the new shard, never between
        # survivors
        assert all(ring.owner(key) == "s3" for key in moved)
        # and the new shard takes about K/N, not the whole population
        assert len(moved) <= 1.5 * len(KEYS) / 4
        assert len(moved) >= 0.5 * len(KEYS) / 4  # it does take real load

    def test_remove_moves_only_the_dead_shards_keys(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        before = {key: ring.owner(key) for key in KEYS}
        ring.remove("s3")
        for key in KEYS:
            if before[key] != "s3":
                # survivors keep every key they had
                assert ring.owner(key) == before[key]
            else:
                assert ring.owner(key) != "s3"

    def test_add_then_remove_is_identity(self):
        ring = HashRing(["s0", "s1", "s2"])
        before = {key: ring.owner(key) for key in KEYS[:500]}
        ring.add("s3")
        ring.remove("s3")
        assert {key: ring.owner(key) for key in KEYS[:500]} == before

    def test_stats_shape(self):
        ring = HashRing(["a", "b"], vnodes=16)
        assert ring.stats() == {"shards": ["a", "b"], "vnodes": 16,
                                "points": 32}
