"""Tests for Q-matrix protection (paper §IV-E, Fig. 5)."""

import numpy as np
import pytest

from repro.abft import QProtector
from repro.errors import UncorrectableError
from repro.linalg import gehrd
from repro.utils.rng import random_matrix


def _factorized(n=48, nb=8, seed=0):
    a = random_matrix(n, seed=seed).copy(order="F")
    gehrd(a, nb=nb, nx=nb)
    return a


class TestMaintenance:
    def test_incremental_matches_fresh(self):
        n, nb = 48, 8
        a = _factorized(n, nb, seed=1)
        qp = QProtector(n, norm_a=float(np.linalg.norm(a, 1)))
        for p in range(0, n - 1 - nb, nb):
            qp.update_for_panel(a, p, nb)
        fr, fc = qp.fresh_sums(a)
        np.testing.assert_allclose(qp.qr_chk, fr, atol=1e-12)
        np.testing.assert_allclose(qp.qc_chk, fc, atol=1e-12)

    def test_panels_must_arrive_in_order(self):
        a = _factorized(seed=2)
        qp = QProtector(48)
        qp.update_for_panel(a, 0, 8)
        with pytest.raises(UncorrectableError):
            qp.update_for_panel(a, 16, 8)  # skipped panel at p=8

    def test_column_segment_frozen_value(self):
        n, nb = 32, 8
        a = _factorized(n, nb, seed=3)
        qp = QProtector(n)
        qp.update_for_panel(a, 0, nb)
        for j in range(nb):
            assert qp.qc_chk[j] == pytest.approx(float(np.sum(a[j + 2 :, j])), abs=1e-13)


class TestVerifyAndCorrect:
    def test_clean_q_verifies(self):
        n, nb = 48, 8
        a = _factorized(n, nb, seed=4)
        qp = QProtector(n, norm_a=float(np.linalg.norm(a, 1)))
        for p in range(0, n - 1 - nb, nb):
            qp.update_for_panel(a, p, nb)
        assert qp.verify(a).count == 0

    def test_corrupted_reflector_located_and_corrected(self):
        n, nb = 48, 8
        a = _factorized(n, nb, seed=5)
        qp = QProtector(n, norm_a=float(np.linalg.norm(a, 1)))
        for p in range(0, n - 1 - nb, nb):
            qp.update_for_panel(a, p, nb)
        true_val = float(a[20, 3])  # Q region: row 20 >= 3+2, col 3 finished
        a[20, 3] += 0.75
        report = qp.verify_and_correct(a)
        assert report.count == 1
        assert report.errors[0].row == 20 and report.errors[0].col == 3
        assert a[20, 3] == pytest.approx(true_val, abs=1e-12)

    def test_two_corruptions_different_columns(self):
        n, nb = 48, 8
        a = _factorized(n, nb, seed=6)
        qp = QProtector(n, norm_a=float(np.linalg.norm(a, 1)))
        for p in range(0, n - 1 - nb, nb):
            qp.update_for_panel(a, p, nb)
        t1, t2 = float(a[10, 2]), float(a[30, 17])
        a[10, 2] += 1.0
        a[30, 17] -= 2.0
        qp.verify_and_correct(a)
        assert a[10, 2] == pytest.approx(t1, abs=1e-12)
        assert a[30, 17] == pytest.approx(t2, abs=1e-12)

    def test_corrupted_checksum_element_rebuilt(self):
        n, nb = 48, 8
        a = _factorized(n, nb, seed=7)
        qp = QProtector(n, norm_a=float(np.linalg.norm(a, 1)))
        for p in range(0, n - 1 - nb, nb):
            qp.update_for_panel(a, p, nb)
        qp.qr_chk[25] += 5.0  # the checksum itself gets hit
        report = qp.verify_and_correct(a)
        assert report.errors[0].kind == "row_checksum"
        assert qp.verify(a).count == 0

    def test_unfinished_region_not_covered(self):
        """Errors beyond the finished columns are outside Q protection
        (they are the H checksums' job)."""
        n, nb = 48, 8
        a = _factorized(n, nb, seed=8)
        qp = QProtector(n, norm_a=float(np.linalg.norm(a, 1)))
        qp.update_for_panel(a, 0, nb)  # only the first panel is protected
        a[40, 30] += 9.0               # column 30 not yet protected
        assert qp.verify(a).count == 0
