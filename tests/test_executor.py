"""The multiprocess trial runner must be a pure speed knob: identical
trial lists, serial or pooled."""

import numpy as np
import pytest

from repro.core.config import FTConfig
from repro.faults.campaign import build_fault_grid, run_campaign
from repro.faults.executor import run_ft_trials
from repro.utils.rng import random_matrix

N, NB = 64, 16
TOL = 1e-13


def _outcome_key(t):
    return (
        t.spec.iteration,
        t.spec.row,
        t.spec.col,
        t.area,
        t.detected,
        t.corrected,
        t.residual,
        t.recoveries,
        t.q_corrections,
        t.failure,
    )


def test_grid_is_deterministic():
    g1 = build_fault_grid(N, NB, moments=3, seed=5)
    g2 = build_fault_grid(N, NB, moments=3, seed=5)
    assert g1 == g2
    assert len(g1) == 9  # 3 areas x 3 moments
    # a different seed moves the sampled positions
    g3 = build_fault_grid(N, NB, moments=3, seed=6)
    assert g3 != g1


def test_parallel_matches_serial():
    a = random_matrix(N, seed=1)
    cfg = FTConfig(nb=NB)
    tasks = build_fault_grid(N, NB, moments=2, seed=2)
    serial = run_ft_trials(a, tasks, cfg, residual_tol=TOL, workers=1)
    pooled = run_ft_trials(a, tasks, cfg, residual_tol=TOL, workers=2, chunksize=2)
    assert len(serial) == len(pooled) == len(tasks)
    assert [_outcome_key(t) for t in serial] == [_outcome_key(t) for t in pooled]


def test_run_campaign_workers_parity():
    a = random_matrix(N, seed=4)
    r1 = run_campaign(a, nb=NB, moments=2, seed=0)
    r2 = run_campaign(a, nb=NB, moments=2, seed=0, workers=2)
    assert [_outcome_key(t) for t in r1.trials] == [_outcome_key(t) for t in r2.trials]
    assert r1.recovery_rate == r2.recovery_rate == 1.0
    assert r1.baseline_residual == r2.baseline_residual > 0.0


def test_empty_task_list():
    a = random_matrix(N, seed=1)
    assert run_ft_trials(a, [], FTConfig(nb=NB), residual_tol=TOL, workers=4) == []


def test_coverage_map_workers_parity():
    from repro.analysis.coverage import coverage_map

    m1 = coverage_map(n=48, nb=16, grid=4, workers=1)
    m2 = coverage_map(n=48, nb=16, grid=4, workers=2)
    assert (m1.grid == m2.grid).all()
    np.testing.assert_array_equal(m1.residuals, m2.residuals)
