"""Adversarial fault surface + escalation ladder + crash-proof campaigns.

Covers the widened fault model (checkpoint/tau/V/Q-checksum spaces,
intra-iteration phases, faults during recovery), the tiered recovery
ladder and its structured FailureReport, strike-time validation of fault
plans, the never-fired warning, the campaign journal, and the
worker-crash recovery of the pooled trial runner.
"""

import json

import pytest

from repro.abft.encoding import EncodedMatrix
from repro.core import FTConfig, ft_gehrd
from repro.errors import FaultConfigError, JournalError
from repro.faults import (
    OUTCOMES,
    FaultInjector,
    FaultSpec,
    InjectionTargets,
    run_campaign,
)
from repro.faults.campaign import build_adversarial_grid
from repro.faults.executor import classify_outcome, run_ft_trials
from repro.faults.journal import CampaignJournal, grid_fingerprint, outcome_from_dict, outcome_to_dict
from repro.linalg import extract_hessenberg, factorization_residual, orghr
from repro.resilience import (
    EscalationExhausted,
    FailureReport,
    LadderConfig,
    ResilienceSupervisor,
    TIER_DEEP_ROLLBACK,
    TIER_IN_PLACE,
    TIER_RESTART,
    TIER_REVERSE_REDO,
    max_tier,
    tier_rank,
)
from repro.utils.rng import random_matrix


def _residual(a0, res):
    q = orghr(res.a, res.taus)
    h = extract_hessenberg(res.a)
    return factorization_residual(a0, q, h)


class TestLadderUnits:
    def test_tier_order_ranks(self):
        ranks = [tier_rank(t) for t in
                 (TIER_IN_PLACE, TIER_REVERSE_REDO, TIER_DEEP_ROLLBACK, TIER_RESTART)]
        assert ranks == sorted(ranks) == [0, 1, 2, 3]
        assert tier_rank("audit") == -1

    def test_max_tier(self):
        assert max_tier([]) == ""
        assert max_tier(["in_place", "reverse_redo"]) == "reverse_redo"
        assert max_tier(["audit"]) == ""
        assert max_tier(["deep_rollback", "restart", "in_place"]) == "restart"

    def test_supervisor_budgets(self):
        sup = ResilienceSupervisor(
            LadderConfig(max_in_place_total=2, max_restarts=1), max_retries=3
        )
        assert sup.allow(TIER_IN_PLACE)
        sup.record(TIER_IN_PLACE, 0, False)
        sup.record(TIER_IN_PLACE, 1, False)
        assert not sup.allow(TIER_IN_PLACE)
        assert sup.allow(TIER_RESTART)
        sup.record(TIER_RESTART, 1, True)
        assert not sup.allow(TIER_RESTART)
        assert sup.restarts == 1

    def test_restart_disabled_in_strict_failstop_mode(self):
        sup = ResilienceSupervisor(LadderConfig(max_restarts=5), max_retries=0)
        assert not sup.allow(TIER_RESTART)

    def test_report_aggregates(self):
        sup = ResilienceSupervisor(LadderConfig(), max_retries=3)
        sup.record(TIER_REVERSE_REDO, 2, False, "smeared")
        sup.record(TIER_DEEP_ROLLBACK, 2, False)
        rep = sup.report(2, "nothing left")
        assert isinstance(rep, FailureReport)
        assert rep.attempts == {TIER_REVERSE_REDO: 1, TIER_DEEP_ROLLBACK: 1}
        assert rep.successes == {}
        assert "escalation exhausted at iteration 2" in rep.summary()


class TestSpecValidation:
    """Satellite: misaddressed plans fail as FaultConfigError at strike
    time (or construction), never as a bare IndexError mid-run."""

    def test_unknown_space_phase_combo(self):
        with pytest.raises(FaultConfigError):
            FaultSpec(iteration=1, row=0, col=0, space="checkpoint", phase="boundary")

    def test_q_checksum_needs_exactly_one_sentinel(self):
        with pytest.raises(FaultConfigError):
            FaultSpec(iteration=1, row=3, col=3, space="q_checksum")
        with pytest.raises(FaultConfigError):
            FaultSpec(iteration=1, row=-1, col=-1, space="q_checksum")

    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec(iteration=0, row=99, col=0, space="row_checksum"),
            FaultSpec(iteration=0, row=0, col=99, space="col_checksum"),
            FaultSpec(iteration=0, row=5, col=0, space="row_checksum", channel=3),
            FaultSpec(iteration=0, row=0, col=5, space="col_checksum", channel=3),
            FaultSpec(iteration=0, row=99, col=5, space="matrix"),
        ],
    )
    def test_out_of_bounds_checksum_targets(self, spec):
        em = EncodedMatrix(random_matrix(16, seed=1), channels=2)
        inj = FaultInjector().add(spec)
        with pytest.raises(FaultConfigError):
            inj.apply_phase(0, "boundary", InjectionTargets(em=em))

    def test_absent_target_space(self):
        em = EncodedMatrix(random_matrix(16, seed=1))
        inj = FaultInjector().add(
            FaultSpec(iteration=0, row=0, col=0, space="tau")
        )
        with pytest.raises(FaultConfigError):
            inj.apply_phase(0, "boundary", InjectionTargets(em=em))  # no taus

    def test_weighted_channel_fault_round_trips(self):
        """The channel field addresses the weighted checksum bank."""
        em = EncodedMatrix(random_matrix(16, seed=2), channels=2)
        before_ch1 = float(em.ext[5, em.n + 1])
        before_ch0 = float(em.ext[5, em.n])
        inj = FaultInjector().add(
            FaultSpec(iteration=0, row=5, col=0, space="row_checksum",
                      channel=1, magnitude=2.5)
        )
        recs = inj.apply_phase(0, "boundary", InjectionTargets(em=em))
        assert len(recs) == 1
        assert em.ext[5, em.n + 1] == pytest.approx(before_ch1 + 2.5)
        assert em.ext[5, em.n] == before_ch0  # channel 0 untouched


class TestLateAndUnfired:
    """Satellite: end-of-run injection fires every late fault; specs
    whose phase never occurs produce a warning, not silence."""

    def test_fault_far_past_the_end_still_fires(self):
        a0 = random_matrix(64, seed=5)
        # Q-region element of an early finished column, scheduled long
        # after the final iteration: strikes the finished state and is
        # caught by the end-of-run Q verification
        inj = FaultInjector().add(
            FaultSpec(iteration=10_000, row=40, col=3, magnitude=1.0)
        )
        res = ft_gehrd(a0, FTConfig(nb=16), injector=inj)
        assert inj.count_fired == 1
        assert res.q_report is not None and res.q_report.count == 1
        assert _residual(a0, res) < 1e-12

    def test_during_recovery_spec_without_a_detection_warns(self):
        a0 = random_matrix(64, seed=6)
        inj = FaultInjector().add(
            FaultSpec(iteration=1, row=40, col=40, magnitude=1.0,
                      phase="during_recovery")
        )
        with pytest.warns(RuntimeWarning, match="never fired"):
            res = ft_gehrd(a0, FTConfig(nb=16), injector=inj)
        assert inj.count_fired == 0
        assert _residual(a0, res) < 1e-12

    def test_late_panel_v_spec_warns_instead_of_crashing(self):
        a0 = random_matrix(64, seed=7)
        inj = FaultInjector().add(
            FaultSpec(iteration=10_000, row=0, col=0, magnitude=1.0,
                      space="panel_v", phase="post_panel")
        )
        with pytest.warns(RuntimeWarning, match="never fired"):
            res = ft_gehrd(a0, FTConfig(nb=16), injector=inj)
        assert _residual(a0, res) < 1e-12


class TestAdversarialSpaces:
    """Satellite: faults against the FT machinery itself recover."""

    def test_checkpoint_buffer_fault(self):
        """Corrupting the diskless checkpoint is detected by its guard
        sums when a (triggered) recovery restores it, and the run still
        ends clean."""
        a0 = random_matrix(64, seed=8)
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=2, row=40, col=2, magnitude=3.0,
                          space="checkpoint", phase="post_panel"))
        inj.add(FaultSpec(iteration=2, row=45, col=50, magnitude=1.0))  # trigger
        res = ft_gehrd(a0, FTConfig(nb=16, channels=2), injector=inj)
        assert _residual(a0, res) < 1e-12
        assert res.detections >= 1
        assert res.checkpoint_corruptions >= 1 or res.restarts >= 1

    def test_fault_during_recovery(self):
        """A second fault striking while recovery is running escalates
        (up to a full restart) instead of corrupting the redo."""
        a0 = random_matrix(64, seed=9)
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=2, row=50, col=55, magnitude=2.0,
                          phase="during_recovery"))
        inj.add(FaultSpec(iteration=2, row=45, col=50, magnitude=1.0))  # trigger
        res = ft_gehrd(a0, FTConfig(nb=16, channels=2), injector=inj)
        assert _residual(a0, res) < 1e-12
        assert res.detections >= 1

    def test_double_fault_matrix_plus_checksum_same_iteration(self):
        """Matrix data and a checksum element corrupted in the same
        iteration: the weighted decode separates the two."""
        a0 = random_matrix(64, seed=10)
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=1, row=45, col=50, magnitude=1.0))
        inj.add(FaultSpec(iteration=1, row=30, col=0, magnitude=2.0,
                          space="row_checksum", channel=1))
        res = ft_gehrd(a0, FTConfig(nb=16, channels=2), injector=inj)
        assert _residual(a0, res) < 1e-12
        assert res.detections >= 1

    def test_tau_fault_repaired_from_shadow(self):
        a0 = random_matrix(64, seed=11)
        inj = FaultInjector().add(
            FaultSpec(iteration=2, row=5, col=0, magnitude=1.0, space="tau")
        )
        res = ft_gehrd(a0, FTConfig(nb=16), injector=inj)
        assert _residual(a0, res) < 1e-12
        assert res.tau_repairs >= 1

    def test_panel_v_fault_recovers(self):
        a0 = random_matrix(64, seed=12)
        inj = FaultInjector().add(
            FaultSpec(iteration=1, row=10, col=3, magnitude=1.0,
                      space="panel_v", phase="post_panel")
        )
        res = ft_gehrd(a0, FTConfig(nb=16, channels=2), injector=inj)
        assert _residual(a0, res) < 1e-12

    def test_q_checksum_fault_detected_at_end(self):
        a0 = random_matrix(64, seed=13)
        inj = FaultInjector().add(
            FaultSpec(iteration=2, row=40, col=-1, magnitude=1.0,
                      space="q_checksum")
        )
        res = ft_gehrd(a0, FTConfig(nb=16), injector=inj)
        assert _residual(a0, res) < 1e-12
        assert res.q_report is not None and res.q_report.count >= 1


class TestEscalationOrder:
    def test_ladder_escalates_in_order_and_reports(self):
        """An undecodable stale smear walks the tiers in order; with the
        restart backstop disabled the run ends in a structured
        FailureReport, not a bare traceback."""
        a0 = random_matrix(128, seed=12)
        inj = FaultInjector().add(
            FaultSpec(iteration=1, row=90, col=100, magnitude=2.0)
        )
        cfg = FTConfig(nb=32, detect_every=3, channels=1,
                       ladder=LadderConfig(max_restarts=0))
        with pytest.raises(EscalationExhausted) as ei:
            ft_gehrd(a0, cfg, injector=inj)
        rep = ei.value.report
        assert isinstance(rep, FailureReport)
        # the attempt log walks the ladder monotonically
        ranks = [tier_rank(e.tier) for e in rep.events]
        assert ranks == sorted(ranks)
        assert rep.attempts.get(TIER_IN_PLACE, 0) >= 1
        assert rep.attempts.get(TIER_REVERSE_REDO, 0) >= 1
        assert rep.attempts.get(TIER_DEEP_ROLLBACK, 0) >= 1
        assert rep.attempts.get(TIER_RESTART, 0) == 0

    def test_restart_closes_the_same_case(self):
        a0 = random_matrix(128, seed=12)
        inj = FaultInjector().add(
            FaultSpec(iteration=1, row=90, col=100, magnitude=2.0)
        )
        res = ft_gehrd(a0, FTConfig(nb=32, detect_every=3, channels=1),
                       injector=inj)
        assert _residual(a0, res) < 1e-12
        assert res.restarts == 1


class TestOutcomeTaxonomy:
    def test_classify_outcome_total(self):
        assert classify_outcome(detected=True, corrected=False, restarts=0,
                                max_tier="", failure="boom") == "aborted"
        assert classify_outcome(detected=True, corrected=True, restarts=1,
                                max_tier="restart", failure="") == "restarted"
        assert classify_outcome(detected=True, corrected=True, restarts=0,
                                max_tier="deep_rollback", failure="") == "escalated"
        assert classify_outcome(detected=True, corrected=True, restarts=0,
                                max_tier="reverse_redo", failure="") == "corrected"
        assert classify_outcome(detected=False, corrected=True, restarts=0,
                                max_tier="", failure="") == "masked"
        assert classify_outcome(detected=True, corrected=False, restarts=0,
                                max_tier="", failure="") == "detected"
        assert classify_outcome(detected=False, corrected=False, restarts=0,
                                max_tier="", failure="") == "detected"


class TestJournal:
    def _campaign(self, **kw):
        a = random_matrix(48, seed=3)
        base = dict(nb=16, adversarial=True, moments=2, seed=0,
                    residual_tol=1e-12)
        base.update(kw)
        return a, base

    def test_round_trip_and_inf_residual(self):
        spec = FaultSpec(iteration=3, row=1, col=2, space="tau")
        from repro.faults.executor import TrialOutcome

        out = TrialOutcome(spec=spec, area=0, detected=True, corrected=False,
                           residual=float("inf"), recoveries=2, q_corrections=0,
                           failure="EscalationExhausted: x", max_tier="deep_rollback")
        back = outcome_from_dict(outcome_to_dict(out))
        assert back == out

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        jr = CampaignJournal(path)
        jr.ensure_header("aaaa")
        with pytest.raises(JournalError):
            jr.load("bbbb")
        with pytest.raises(JournalError):
            jr.ensure_header("bbbb")

    def test_resume_skips_completed_trials(self, tmp_path):
        a, kw = self._campaign()
        serial = run_campaign(a, workers=1, **kw)
        jpath = tmp_path / "journal.jsonl"
        run_campaign(a, workers=1, journal=str(jpath), **kw)
        # keep header + first 10 trials, simulate a torn trailing write
        lines = jpath.read_text().splitlines(keepends=True)
        jpath.write_text("".join(lines[:11]) + '{"kind": "trial", "ind')
        resumed = run_campaign(a, workers=1, journal=str(jpath), resume=True, **kw)
        assert resumed.resumed == 10
        assert [(t.outcome, t.residual) for t in resumed.trials] == [
            (t.outcome, t.residual) for t in serial.trials
        ]

    def test_complete_journal_means_zero_new_work(self, tmp_path):
        a, kw = self._campaign()
        jpath = tmp_path / "journal.jsonl"
        first = run_campaign(a, workers=1, journal=str(jpath), **kw)
        # resume=<path> implies the journal path; nothing reruns
        again = run_campaign(a, workers=1, resume=str(jpath), **kw)
        assert again.resumed == len(again.trials) == len(first.trials)
        assert [(t.outcome, t.residual) for t in again.trials] == [
            (t.outcome, t.residual) for t in first.trials
        ]

    def test_journal_is_plain_jsonl(self, tmp_path):
        a, kw = self._campaign(moments=2, spaces=("tau",))
        jpath = tmp_path / "journal.jsonl"
        run_campaign(a, workers=1, journal=str(jpath), **kw)
        lines = [json.loads(x) for x in jpath.read_text().splitlines()]
        assert lines[0]["kind"] == "header"
        trials = [x for x in lines[1:] if x["kind"] == "trial"]
        assert sorted(x["index"] for x in trials) == list(range(len(trials)))
        assert all(x["outcome"]["outcome"] in OUTCOMES for x in trials)


class TestWorkerCrashRecovery:
    def test_pool_rebuild_and_retry_after_worker_loss(self, tmp_path):
        """A worker hard-killed mid-campaign (os._exit, as a segfault or
        OOM kill would) loses its chunk; the pool is rebuilt, the chunk
        retried once, and the outcome table matches the serial run."""
        a = random_matrix(48, seed=3)
        kw = dict(nb=16, adversarial=True, moments=2, seed=0,
                  residual_tol=1e-12, spaces=("matrix", "tau", "q_checksum"))
        serial = run_campaign(a, workers=1, **kw)
        once = tmp_path / "crash.once"
        pooled = run_campaign(a, workers=2, crash_index=3,
                              crash_once_path=str(once), **kw)
        assert once.exists()
        assert [(t.outcome, t.residual, t.recoveries) for t in pooled.trials] == [
            (t.outcome, t.residual, t.recoveries) for t in serial.trials
        ]

    def test_repeated_crash_on_same_trial_aborts_only_that_chunk(self):
        """A crash that follows its chunk to the rebuilt pool is graded
        aborted after one retry; the rest of the campaign completes."""
        a = random_matrix(48, seed=3)
        kw = dict(nb=16, adversarial=True, moments=2, seed=0,
                  residual_tol=1e-12, spaces=("matrix", "tau"))
        res = run_campaign(a, workers=2, crash_index=1, **kw)  # no once-file
        assert all(t.outcome in OUTCOMES for t in res.trials)
        aborted = [t for t in res.trials if t.outcome == "aborted"]
        assert aborted, "the poisoned chunk must be graded, not lost"
        assert all("WorkerLost" in t.failure for t in aborted)
        # trials outside the poisoned chunk still succeeded
        assert any(t.outcome in ("corrected", "restarted") for t in res.trials)


@pytest.mark.slow
class TestAdversarialAcceptance:
    """The PR's acceptance bar: the full widened surface at n=128."""

    def test_full_surface_campaign(self):
        a = random_matrix(128, seed=0)
        res = run_campaign(a, nb=32, adversarial=True, moments=3, seed=0,
                           residual_tol=1e-12, workers=2)
        # zero uncaught exceptions == run_campaign returned; every trial
        # carries a taxonomy outcome
        assert all(t.outcome in OUTCOMES for t in res.trials)
        assert not [t for t in res.trials if t.outcome == "aborted"]
        single = [t for t in res.trials if len(t.specs) == 1]
        good = [t for t in single if t.outcome in ("corrected", "restarted")]
        assert len(good) >= 0.95 * len(single)
        # recovered trials reach the fault-free residual bar
        for t in res.trials:
            if t.outcome in ("corrected", "restarted", "escalated", "masked"):
                assert t.residual < 1e-12

    def test_grid_covers_every_space_and_phase(self):
        from repro.faults.campaign import build_eig_adversarial_grid
        from repro.faults.injector import SPACE_PHASES

        # the reduction grid and the QR-stage grid split the surface
        grid = build_adversarial_grid(128, 32, moments=3, seed=0)
        grid += build_eig_adversarial_grid(128, moments=3, seed=0)
        seen = {(plan[0].space, plan[0].phase) for plan, _ in grid}
        for space, phases in SPACE_PHASES.items():
            for phase in phases:
                if space == "panel_v" and phase == "during_recovery":
                    continue  # driver does not expose V at the recovery hook
                assert (space, phase) in seen
