"""Tests for the Francis double-shift QR eigenvalue substrate."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.eigen import eigvals_via_hessenberg, hessenberg_eigvals
from repro.linalg import extract_hessenberg, gehrd
from repro.utils.rng import MatrixKind, random_matrix


def _sorted(x):
    return np.sort_complex(np.asarray(x, dtype=complex))


def _assert_spectra_match(ours, ref, tol=1e-8):
    ours, ref = _sorted(ours), _sorted(ref)
    scale = max(float(np.max(np.abs(ref))), 1e-300)
    assert float(np.max(np.abs(ours - ref))) / scale < tol


class TestHessenbergEigvals:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 20, 63])
    def test_random_hessenberg(self, n):
        h = np.triu(random_matrix(n, seed=n + 50), -1)
        _assert_spectra_match(hessenberg_eigvals(h), np.linalg.eigvals(h))

    def test_complex_pairs_are_conjugate(self):
        h = np.triu(random_matrix(30, seed=60), -1)
        e = hessenberg_eigvals(h)
        complex_eigs = e[np.abs(e.imag) > 1e-12]
        # real input: complex eigenvalues come in conjugate pairs
        assert len(complex_eigs) % 2 == 0
        _assert_spectra_match(complex_eigs, np.conj(complex_eigs))

    def test_known_rotation_block(self):
        # [[0, -1], [1, 0]] has eigenvalues ±i
        h = np.array([[0.0, -1.0], [1.0, 0.0]], order="F")
        e = _sorted(hessenberg_eigvals(h))
        np.testing.assert_allclose(e, [-1j, 1j], atol=1e-14)

    def test_triangular_input_diagonal(self):
        h = np.triu(random_matrix(12, seed=61))
        _assert_spectra_match(hessenberg_eigvals(h), np.diag(h))

    def test_repeated_eigenvalues(self):
        h = np.asfortranarray(np.diag([2.0] * 5 + [3.0] * 5))
        _assert_spectra_match(hessenberg_eigvals(h), [2.0] * 5 + [3.0] * 5, tol=1e-6)

    def test_rejects_non_hessenberg(self):
        a = random_matrix(8, seed=62)  # dense, not Hessenberg
        with pytest.raises(ShapeError):
            hessenberg_eigvals(a)

    def test_rejects_nonsquare(self):
        with pytest.raises(ShapeError):
            hessenberg_eigvals(np.zeros((3, 4), order="F"))

    def test_empty(self):
        assert hessenberg_eigvals(np.zeros((0, 0), order="F")).size == 0


class TestFullPipeline:
    @pytest.mark.parametrize("kind", [MatrixKind.UNIFORM, MatrixKind.GAUSSIAN,
                                      MatrixKind.SYMMETRIC, MatrixKind.GRADED])
    def test_matrix_families(self, kind):
        a = random_matrix(40, kind, seed=63)
        _assert_spectra_match(eigvals_via_hessenberg(a), np.linalg.eigvals(a))

    def test_pipeline_consistency_with_reduction(self):
        a = random_matrix(50, seed=64)
        work = a.copy(order="F")
        gehrd(work, nb=16)
        h = extract_hessenberg(work)
        _assert_spectra_match(hessenberg_eigvals(h), np.linalg.eigvals(a))

    def test_well_conditioned_real_spectrum(self):
        a = random_matrix(30, MatrixKind.WELL_CONDITIONED, seed=65)
        e = eigvals_via_hessenberg(a)
        assert float(np.max(np.abs(e.imag))) < 1e-8  # SPD-like: real spectrum
        ref = np.linalg.eigvalsh(0.5 * (a + a.T))
        np.testing.assert_allclose(np.sort(e.real), np.sort(ref), atol=1e-6)
