"""Unit tests for the BLAS-like kernel layer."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg import FlopCounter
from repro.linalg import blas


def _mats(rng, m, n, k):
    a = np.asfortranarray(rng.standard_normal((m, k)))
    b = np.asfortranarray(rng.standard_normal((k, n)))
    c = np.asfortranarray(rng.standard_normal((m, n)))
    return a, b, c


class TestGemm:
    def test_plain_product(self, rng):
        a, b, c = _mats(rng, 5, 4, 3)
        ref = 2.0 * a @ b + 0.5 * c
        blas.gemm(2.0, a, b, 0.5, c)
        np.testing.assert_allclose(c, ref, rtol=1e-14)

    def test_beta_zero_overwrites_garbage(self, rng):
        a, b, c = _mats(rng, 4, 4, 4)
        c[:] = np.nan  # beta=0 must not propagate NaNs from C
        blas.gemm(1.0, a, b, 0.0, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-14)

    def test_transposes(self, rng):
        at = np.asfortranarray(rng.standard_normal((3, 5)))
        bt = np.asfortranarray(rng.standard_normal((4, 3)))
        c2 = np.zeros((5, 4), order="F")
        blas.gemm(1.0, at, bt, 0.0, c2, trans_a=True, trans_b=True)
        np.testing.assert_allclose(c2, at.T @ bt.T, rtol=1e-14)

    def test_accumulate_minus_one(self, rng):
        a, b, c = _mats(rng, 4, 4, 4)
        ref = c - a @ b
        blas.gemm(-1.0, a, b, 1.0, c)
        np.testing.assert_allclose(c, ref, rtol=1e-14)

    def test_shape_mismatch_raises(self, rng):
        a, b, c = _mats(rng, 5, 4, 3)
        with pytest.raises(ShapeError):
            blas.gemm(1.0, a, b[:2], 1.0, c)

    def test_flop_count(self, rng):
        a, b, c = _mats(rng, 5, 4, 3)
        cnt = FlopCounter()
        blas.gemm(1.0, a, b, 1.0, c, counter=cnt)
        assert cnt.total == 2 * 5 * 4 * 3

    def test_updates_view_in_place(self, rng):
        big = np.zeros((8, 8), order="F")
        a, b, _ = _mats(rng, 3, 3, 3)
        blas.gemm(1.0, a, b, 0.0, big[2:5, 2:5])
        np.testing.assert_allclose(big[2:5, 2:5], a @ b, rtol=1e-14)
        assert np.all(big[:2] == 0)


class TestGemv:
    def test_plain(self, rng):
        a = np.asfortranarray(rng.standard_normal((5, 3)))
        x = rng.standard_normal(3)
        y = rng.standard_normal(5)
        ref = 2.0 * a @ x + y
        blas.gemv(2.0, a, x, 1.0, y)
        np.testing.assert_allclose(y, ref, rtol=1e-14)

    def test_trans(self, rng):
        a = np.asfortranarray(rng.standard_normal((5, 3)))
        x = rng.standard_normal(5)
        y = np.zeros(3)
        blas.gemv(1.0, a, x, 0.0, y, trans=True)
        np.testing.assert_allclose(y, a.T @ x, rtol=1e-14)

    def test_shape_mismatch(self, rng):
        a = np.asfortranarray(rng.standard_normal((5, 3)))
        with pytest.raises(ShapeError):
            blas.gemv(1.0, a, np.zeros(4), 0.0, np.zeros(5))

    def test_flops(self, rng):
        a = np.asfortranarray(rng.standard_normal((5, 3)))
        cnt = FlopCounter()
        blas.gemv(1.0, a, np.zeros(3), 0.0, np.zeros(5), counter=cnt)
        assert cnt.total == 2 * 5 * 3


class TestTrmm:
    def test_left_upper(self, rng):
        t = np.asfortranarray(rng.standard_normal((4, 4)))
        b = np.asfortranarray(rng.standard_normal((4, 3)))
        ref = np.triu(t) @ b
        blas.trmm(1.0, t, b)
        np.testing.assert_allclose(b, ref, rtol=1e-14)

    def test_right_lower_unit_transpose(self, rng):
        t = np.asfortranarray(rng.standard_normal((3, 3)))
        b = np.asfortranarray(rng.standard_normal((5, 3)))
        tri = np.tril(t)
        np.fill_diagonal(tri, 1.0)
        ref = b @ tri.T
        blas.trmm(1.0, t, b, side="right", lower=True, trans=True, unit=True)
        np.testing.assert_allclose(b, ref, rtol=1e-14)

    def test_ignores_garbage_in_other_triangle(self, rng):
        t = np.full((3, 3), np.nan, order="F")
        t[np.triu_indices(3)] = 1.0
        b = np.ones((3, 2), order="F")
        blas.trmm(1.0, t, b)  # NaNs in the strict lower part must not leak
        assert np.all(np.isfinite(b))

    def test_bad_side(self, rng):
        t = np.eye(3, order="F")
        with pytest.raises(ShapeError):
            blas.trmm(1.0, t, np.ones((3, 2), order="F"), side="middle")


class TestVectorOps:
    def test_ger(self, rng):
        a = np.zeros((3, 4), order="F")
        x, y = rng.standard_normal(3), rng.standard_normal(4)
        blas.ger(2.0, x, y, a)
        np.testing.assert_allclose(a, 2.0 * np.outer(x, y), rtol=1e-14)

    def test_axpy(self, rng):
        x, y = rng.standard_normal(6), rng.standard_normal(6)
        ref = 3.0 * x + y
        blas.axpy(3.0, x, y)
        np.testing.assert_allclose(y, ref, rtol=1e-14)

    def test_scal(self):
        x = np.arange(4.0)
        blas.scal(-2.0, x)
        np.testing.assert_allclose(x, [-0.0, -2.0, -4.0, -6.0])

    def test_dot_and_flops(self, rng):
        x, y = rng.standard_normal(7), rng.standard_normal(7)
        cnt = FlopCounter()
        d = blas.dot(x, y, counter=cnt)
        assert d == pytest.approx(float(x @ y))
        assert cnt.total == 13  # 2*7 - 1

    def test_nrm2(self, rng):
        x = rng.standard_normal(9)
        assert blas.nrm2(x) == pytest.approx(float(np.linalg.norm(x)))

    def test_trmv_unit_lower(self, rng):
        t = np.asfortranarray(rng.standard_normal((4, 4)))
        x = rng.standard_normal(4)
        tri = np.tril(t, -1) + np.eye(4)
        ref = tri @ x
        blas.trmv(t, x.copy(), lower=True, unit=True)
        got = x.copy()
        blas.trmv(t, got, lower=True, unit=True)
        np.testing.assert_allclose(got, ref, rtol=1e-14)
