"""Property-based tests over the fault-tolerant drivers: every driver,
random single faults anywhere in its valid domain, exact recovery."""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import FTConfig, ft_gebd2, ft_gehrd, ft_geqrf, ft_sytrd
from repro.faults import FaultInjector, FaultSpec, iteration_count
from repro.linalg import (
    bidiagonal_of,
    extract_hessenberg,
    factorization_residual,
    orgbr_p,
    orgbr_q,
    orghr,
    orgqr,
    qr_residual,
    r_of,
)
from repro.linalg.sytd2 import orgtr, tridiagonal_of
from repro.utils.rng import MatrixKind, random_matrix

SLOW = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

N = 64
NB = 16


class TestFTHessProperty:
    @SLOW
    @given(
        seed=st.integers(0, 2**12),
        it=st.integers(0, 2),
        drow=st.integers(0, N - 1),
        dcol=st.integers(0, N - 2),
        mag=st.floats(0.01, 1e4),
    )
    def test_random_single_fault_recovers(self, seed, it, drow, dcol, mag):
        from repro.faults import finished_cols_at

        a0 = random_matrix(N, seed=seed)
        total = iteration_count(N, NB)
        it = min(it, total - 1)
        p = finished_cols_at(it, N, NB)
        # the one deliberately unprotected region (paper-faithful): the
        # already-finished H entries — never re-read, never re-checked
        assume(not (dcol < p and drow <= dcol + 1))
        inj = FaultInjector().add(
            FaultSpec(iteration=it, row=drow, col=dcol, magnitude=mag)
        )
        res = ft_gehrd(a0, FTConfig(nb=NB), injector=inj)
        q = orghr(res.a, res.taus)
        h = extract_hessenberg(res.a)
        # recovery roundoff scales with the fault magnitude
        assert factorization_residual(a0, q, h) < 1e-13 * max(1.0, mag)


class TestFTTridiagProperty:
    @SLOW
    @given(
        seed=st.integers(0, 2**12),
        col=st.integers(0, N - 3),
        drow=st.integers(0, N - 1),
        dcol=st.integers(0, N - 1),
        mag=st.floats(0.01, 1e3),
    )
    def test_random_single_fault_recovers(self, seed, col, drow, dcol, mag):
        a0 = random_matrix(N, MatrixKind.SYMMETRIC, seed=seed)
        inj = FaultInjector().add(
            FaultSpec(iteration=col, row=drow, col=dcol, magnitude=mag)
        )
        res = ft_sytrd(a0, injector=inj, audit_every=8)
        t = tridiagonal_of(res.a)
        q = orgtr(res.a, res.taus)
        assert factorization_residual(a0, q, t) < 1e-12 * max(1.0, mag)


class TestFTBidiagProperty:
    @SLOW
    @given(
        seed=st.integers(0, 2**12),
        step=st.integers(0, N - 2),
        drow=st.integers(0, N - 1),
        dcol=st.integers(0, N - 1),
        mag=st.floats(0.01, 1e3),
    )
    def test_random_single_fault_recovers(self, seed, step, drow, dcol, mag):
        # known absorption window (documented limitation): the superdiagonal
        # entry (i-1, i) struck exactly at step i is folded into that
        # column's checksum freeze before any check can see it
        assume(not (drow == dcol - 1 and step == dcol))
        a0 = random_matrix(N, seed=seed)
        inj = FaultInjector().add(
            FaultSpec(iteration=step, row=drow, col=dcol, magnitude=mag)
        )
        res = ft_gebd2(a0, injector=inj, audit_every=8)
        b = bidiagonal_of(res.a)
        q = orgbr_q(res.a, res.tau_q)
        p = orgbr_p(res.a, res.tau_p)
        resid = np.linalg.norm(a0 - q @ b @ p.T, 1) / np.linalg.norm(a0, 1)
        assert resid < 1e-12 * max(1.0, mag)


class TestFTQRProperty:
    @SLOW
    @given(
        seed=st.integers(0, 2**12),
        panel=st.integers(0, 3),
        drow=st.integers(0, N - 1),
        dcol=st.integers(0, N - 1),
        mag=st.floats(0.01, 1e3),
    )
    def test_random_single_fault_recovers(self, seed, panel, drow, dcol, mag):
        a0 = random_matrix(N, seed=seed)
        inj = FaultInjector().add(
            FaultSpec(iteration=panel, row=drow, col=dcol, magnitude=mag)
        )
        res = ft_geqrf(a0, nb=NB, injector=inj)
        q = orgqr(res.a, res.taus)
        assert qr_residual(a0, q, r_of(res.a)) < 1e-12 * max(1.0, mag)
