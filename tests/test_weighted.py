"""Tests for the multi-channel (Huang-Abraham weighted) checksum
extension — the generalization of the paper's unit encoding that decodes
error patterns the unit scheme provably cannot."""

import numpy as np
import pytest

from repro.abft import (
    EncodedMatrix,
    Detector,
    ThresholdPolicy,
    correct_all,
    linear_weights,
    locate_errors,
    make_weight_block,
)
from repro.core import FTConfig, ft_gehrd
from repro.errors import ShapeError, UncorrectableError
from repro.faults import FaultInjector, FaultSpec
from repro.linalg import (
    extract_hessenberg,
    factorization_residual,
    one_norm,
    orghr,
)
from repro.utils.rng import random_matrix


class TestWeightBlocks:
    def test_linear_weights_strictly_increasing_bounded(self):
        w = linear_weights(100)
        assert np.all(np.diff(w) > 0)
        assert w[0] == pytest.approx(0.01) and w[-1] == 1.0

    def test_make_weight_block_unit_first(self):
        w = make_weight_block(10, 3)
        assert w.shape == (3, 10)
        np.testing.assert_array_equal(w[0], 1.0)
        np.testing.assert_allclose(w[2], linear_weights(10) ** 2)

    def test_invalid_channels(self):
        with pytest.raises(ShapeError):
            make_weight_block(10, 0)

    def test_custom_weights_validated(self):
        a = random_matrix(8, seed=1)
        with pytest.raises(ShapeError):
            EncodedMatrix(a, weights=np.ones((2, 5)))
        with pytest.raises(ShapeError):
            # channel 0 must be unit
            EncodedMatrix(a, weights=np.vstack([2 * np.ones(8), np.ones(8)]))


class TestEncodingInvariants:
    def test_layout_and_views(self):
        a = random_matrix(10, seed=2)
        em = EncodedMatrix(a, channels=2)
        assert em.ext.shape == (12, 12)
        assert em.row_checksum_block.shape == (10, 2)
        assert em.col_checksum_block.shape == (2, 10)
        np.testing.assert_allclose(em.row_checksum_block[:, 0], a @ np.ones(10))
        np.testing.assert_allclose(em.row_checksum_block[:, 1], a @ linear_weights(10))

    def test_cross_gaps_zero_on_consistent_state(self):
        em = EncodedMatrix(random_matrix(24, seed=3), channels=2)
        assert float(np.max(em.cross_gaps())) < 1e-12

    def test_theorem1_with_two_channels(self):
        """The maintained weighted checksums survive the factorization."""
        from repro.abft import (
            left_update_encoded,
            right_update_encoded,
            v_col_checksums,
            y_col_checksums,
        )
        from repro.linalg.lahr2 import lahr2

        n, nb = 48, 8
        em = EncodedMatrix(random_matrix(n, seed=4), channels=2)
        p = 0
        while n - 1 - p > 0:
            ib = min(nb, n - 1 - p)
            pf = lahr2(em.ext, p, ib, n)
            vce = v_col_checksums(pf, em)
            assert vce.shape == (2, ib)
            ychk = y_col_checksums(em, pf)
            right_update_encoded(em, pf, vce, ychk)
            left_update_encoded(em, pf, vce)
            em.refresh_finished_segment(p, ib)
            p += ib
            frb = em.fresh_row_block(p)
            fcb = em.fresh_col_block(p)
            assert np.max(np.abs(em.row_checksum_block - frb)) < 1e-11
            assert np.max(np.abs(em.col_checksum_block - fcb)) < 1e-11


class TestWeightedDetection:
    def test_detector_uses_cross_statistics(self):
        a = random_matrix(32, seed=5)
        em = EncodedMatrix(a, channels=2)
        det = Detector(ThresholdPolicy(), one_norm(a))
        assert det.check(em) is False
        em.ext[3, em.n + 1] += 1.0  # corrupt a WEIGHTED checksum element
        assert det.check(em) is True


class TestWeightedLocation:
    def _em(self, n=32, seed=0):
        a = random_matrix(n, seed=seed)
        return EncodedMatrix(a, channels=2), one_norm(a), a

    def test_single_error_ratio_decode(self):
        em, norm_a, a = self._em(seed=6)
        em.data[7, 19] += 2.5
        rep = locate_errors(em, 0, norm_a)
        assert rep.count == 1
        e = rep.errors[0]
        assert (e.row, e.col) == (7, 19)
        assert e.magnitude == pytest.approx(2.5, rel=1e-9)

    def test_l_shape_now_decodes(self):
        """The pattern the unit encoding provably cannot resolve
        (test_location.py::test_three_errors_l_shape_is_ambiguous)."""
        em, norm_a, a = self._em(seed=7)
        em.data[1, 1] += 1.0
        em.data[1, 8] += 2.0
        em.data[12, 8] += 4.0
        rep = locate_errors(em, 0, norm_a)
        got = {(e.row, e.col, round(e.magnitude, 6)) for e in rep.errors}
        assert got == {(1, 1, 1.0), (1, 8, 2.0), (12, 8, 4.0)}
        correct_all(em, rep.errors, 0)
        np.testing.assert_allclose(em.data, a, atol=1e-10)

    def test_equal_magnitudes_decode(self):
        """Magnitude-matching (the unit decoder's tool) is useless when
        magnitudes coincide; the ratio test does not care."""
        em, norm_a, a = self._em(seed=8)
        em.data[3, 10] += 1.0
        em.data[14, 20] += 1.0
        rep = locate_errors(em, 0, norm_a)
        assert {(e.row, e.col) for e in rep.errors} == {(3, 10), (14, 20)}

    def test_rectangle_still_refused(self):
        """Even two channels cannot disambiguate a *consistent* rectangle
        whose magnitudes conspire; refusal beats guessing."""
        em, norm_a, _ = self._em(seed=9)
        # construct residuals consistent with a rank-1 (outer-product)
        # corruption: delta = u vᵀ on a 2x2 support
        em.data[2, 3] += 2.0
        em.data[2, 7] += 4.0
        em.data[11, 3] += 3.0
        em.data[11, 7] += 6.0
        with pytest.raises(UncorrectableError):
            locate_errors(em, 0, norm_a)

    def test_weighted_checksum_element_corruption(self):
        em, norm_a, a = self._em(seed=10)
        em.ext[5, em.n + 1] += 3.0  # weighted row-checksum element
        rep = locate_errors(em, 0, norm_a)
        assert rep.count == 1
        e = rep.errors[0]
        assert e.kind == "row_checksum" and e.channel == 1 and e.row == 5
        correct_all(em, rep.errors, 0)
        assert locate_errors(em, 0, norm_a).count == 0


class TestWeightedDriver:
    def test_no_error_run_clean(self):
        a = random_matrix(96, seed=11)
        res = ft_gehrd(a, FTConfig(nb=32, channels=2))
        q = orghr(res.a, res.taus)
        h = extract_hessenberg(res.a)
        assert factorization_residual(a, q, h) < 1e-14
        assert res.detections == 0

    def test_l_shape_triple_error_recovered(self):
        a = random_matrix(96, seed=12)
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=1, row=40, col=50, magnitude=1.0))
        inj.add(FaultSpec(iteration=1, row=40, col=70, magnitude=2.0))
        inj.add(FaultSpec(iteration=1, row=80, col=70, magnitude=4.0))
        res = ft_gehrd(a, FTConfig(nb=32, channels=2), injector=inj)
        q = orghr(res.a, res.taus)
        h = extract_hessenberg(res.a)
        assert factorization_residual(a, q, h) < 1e-13
        assert len(res.recoveries[0].errors) == 3

    def test_same_pattern_restarts_with_one_channel(self):
        """One channel cannot decode the L-shaped pattern (the ambiguity
        the weighted channel exists to break); the ladder's restart tier
        still turns it into a clean — if slow — success."""
        a = random_matrix(96, seed=12)
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=1, row=40, col=50, magnitude=1.0))
        inj.add(FaultSpec(iteration=1, row=40, col=70, magnitude=2.0))
        inj.add(FaultSpec(iteration=1, row=80, col=70, magnitude=4.0))
        res = ft_gehrd(a, FTConfig(nb=32, channels=1), injector=inj)
        q = orghr(res.a, res.taus)
        h = extract_hessenberg(res.a)
        assert factorization_residual(a, q, h) < 1e-13
        assert res.restarts == 1

    def test_same_pattern_refused_with_one_channel_no_restart(self):
        """With the restart backstop disabled the decode failure is a
        structured fail-stop, exactly as before the ladder existed."""
        from repro.resilience import EscalationExhausted, LadderConfig

        a = random_matrix(96, seed=12)
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=1, row=40, col=50, magnitude=1.0))
        inj.add(FaultSpec(iteration=1, row=40, col=70, magnitude=2.0))
        inj.add(FaultSpec(iteration=1, row=80, col=70, magnitude=4.0))
        cfg = FTConfig(nb=32, channels=1, ladder=LadderConfig(max_restarts=0))
        with pytest.raises(EscalationExhausted):
            ft_gehrd(a, cfg, injector=inj)

    def test_overhead_cost_of_second_channel_is_small(self):
        from repro.core import HybridConfig, hybrid_gehrd, overhead_percent

        base = hybrid_gehrd(4030, HybridConfig(nb=32, functional=False))
        f1 = ft_gehrd(4030, FTConfig(nb=32, functional=False, channels=1))
        f2 = ft_gehrd(4030, FTConfig(nb=32, functional=False, channels=2))
        o1, o2 = overhead_percent(f1, base), overhead_percent(f2, base)
        assert o1 < o2 < o1 + 0.5  # the second channel costs a fraction of a percent
