"""Tests for the machine models and the kernel cost model."""

import pytest

from repro.errors import SimulationError
from repro.hybrid.machine import DeviceSpec, LinkSpec, MachineSpec, laptop_sim, paper_testbed
from repro.hybrid.perfmodel import CostModel


class TestMachine:
    def test_paper_testbed_matches_table1(self):
        m = paper_testbed()
        assert m.cpu.name == "Intel Xeon E5-2670"
        assert m.gpu.name == "NVIDIA Tesla K40c"
        assert m.cpu.peak_gflops == pytest.approx(10.4)
        assert m.gpu.peak_gflops == pytest.approx(1430.0)
        assert m.cpu.mem_gb == 62.0 and m.gpu.mem_gb == 11.5
        assert m.cpu.clock_mhz == 2600.0 and m.gpu.clock_mhz == 745.0

    def test_fits_matrix(self):
        m = paper_testbed()
        assert m.fits_matrix(10110)       # the paper's largest run fits
        assert not m.fits_matrix(50000)   # 20 GB matrix does not

    def test_device_lookup(self):
        m = laptop_sim()
        assert m.device("cpu").kind == "cpu"
        assert m.device("gpu").kind == "gpu"
        with pytest.raises(SimulationError):
            m.device("fpga")

    def test_invalid_device_spec(self):
        with pytest.raises(SimulationError):
            DeviceSpec("x", "asic", 1, 1, 1, 1)
        with pytest.raises(SimulationError):
            DeviceSpec("x", "cpu", -1, 1, 1, 1)

    def test_link_transfer_model(self):
        link = LinkSpec("pcie", bandwidth_gbs=10.0, latency_us=5.0)
        assert link.transfer_seconds(0) == pytest.approx(5e-6)
        assert link.transfer_seconds(10e9) == pytest.approx(1.0, rel=1e-4)
        with pytest.raises(SimulationError):
            link.transfer_seconds(-1)


class TestCostModel:
    def setup_method(self):
        self.cm = CostModel(paper_testbed())

    def test_gemm_scales_with_flops(self):
        t1 = self.cm.gemm("gpu", 1000, 1000, 1000)
        t2 = self.cm.gemm("gpu", 2000, 2000, 1000)
        assert t2 == pytest.approx(4 * t1, rel=0.05)

    def test_small_inner_dimension_less_efficient(self):
        """A skinny k=32 gemm must run at a much lower rate than a cubic
        one — the ramp that makes the trailing updates realistic."""
        flops = lambda m, n, k: 2.0 * m * n * k
        big = flops(2000, 2000, 2000) / self.cm.gemm("gpu", 2000, 2000, 2000)
        skinny = flops(2000, 2000, 32) / self.cm.gemm("gpu", 2000, 2000, 32)
        assert skinny < 0.55 * big

    def test_gemv_is_bandwidth_bound(self):
        m = paper_testbed()
        t = self.cm.gemv("gpu", 4000, 4000)
        bytes_touched = 8 * (4000 * 4000 + 8000)
        assert t == pytest.approx(bytes_touched / (m.gpu.mem_bandwidth_gbs * 1e9), rel=1e-6)

    def test_cpu_slower_than_gpu_on_gemm(self):
        assert self.cm.gemm("cpu", 1000, 1000, 1000) > self.cm.gemm("gpu", 1000, 1000, 1000)

    def test_panel_gpu_dominates_cpu_part(self):
        """Hessenberg's character: the panel's trailing GEMVs dwarf the
        host-side reflector work at large m."""
        m, ib = 8000, 32
        assert self.cm.panel_gpu_part(m, ib) > 5 * self.cm.panel_cpu_part(m, ib)

    def test_negative_work_rejected(self):
        with pytest.raises(SimulationError):
            self.cm._roofline(paper_testbed().gpu, -1.0, 0.0, 0)

    def test_hessenberg_rate_calibration(self):
        """DESIGN.md calibration target: the modeled baseline tops out in
        the 140-190 GFLOPS range at the paper's largest size."""
        from repro.core import HybridConfig, hybrid_gehrd

        res = hybrid_gehrd(10110, HybridConfig(nb=32, functional=False))
        assert 140.0 < res.gflops < 190.0

    def test_rate_increases_with_n(self):
        from repro.core import HybridConfig, hybrid_gehrd

        rates = [
            hybrid_gehrd(n, HybridConfig(nb=32, functional=False)).gflops
            for n in (1022, 4030, 10110)
        ]
        assert rates[0] < rates[1] < rates[2]
