"""Golden tests: the stacked engine vs the scalar drivers, byte for byte.

The batched fast path's whole contract is *bit-identical* agreement
with the scalar kernels on clean inputs (``np.array_equal``, not
``allclose``) plus the ejection contract for anything faulty. These
tests pin both, over an (n, nb, B) grid, and pin the serve-side
batched execution and coalescing lane on top.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FTConfig, ft_gehrd
from repro.core.hybrid_hessenberg import iteration_plan_cached
from repro.batch import (
    BatchResult,
    as_item_f_stack,
    ft_gehrd_batched,
    gehrd_batched,
)
from repro.errors import ShapeError
from repro.faults import FaultInjector, FaultSpec
from repro.linalg import flops as F
from repro.linalg.gehrd import gehrd
from repro.perf.workspace import Workspace
from repro.serve import HessService, JobSpec
from repro.serve.jobs import (
    batch_compatible,
    batch_group_key,
    execute_job,
    execute_jobs_batched,
)

GRID = [(32, 32, 4), (48, 16, 3), (64, 32, 5), (33, 8, 3), (8, 4, 6)]


def _mats(n: int, b: int, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed + 13 * n + b)
    return [np.asfortranarray(rng.standard_normal((n, n))) for _ in range(b)]


# ---------------------------------------------------------------------------
# gehrd_batched
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n,nb,b", GRID)
def test_gehrd_batched_matches_scalar_bytewise(n, nb, b):
    mats = _mats(n, b)
    facts = gehrd_batched(as_item_f_stack(mats), nb=nb)
    assert len(facts) == b
    for i, m in enumerate(mats):
        ref = gehrd(m.copy(order="F"), nb=nb)
        assert np.array_equal(facts[i].a, ref.a)
        assert np.array_equal(facts[i].taus, ref.taus)


def test_gehrd_batched_workspace_reuse_stays_identical():
    n, nb, b = 32, 32, 3
    ws = Workspace()
    for trial in range(3):
        mats = _mats(n, b, seed=trial)
        facts = gehrd_batched(as_item_f_stack(mats), nb=nb, workspace=ws)
        for i, m in enumerate(mats):
            ref = gehrd(m.copy(order="F"), nb=nb)
            assert np.array_equal(facts[i].a, ref.a)
            assert np.array_equal(facts[i].taus, ref.taus)


# ---------------------------------------------------------------------------
# ft_gehrd_batched: clean fast path
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n,nb,b", GRID)
def test_ft_batched_matches_scalar_bytewise(n, nb, b):
    mats = _mats(n, b)
    cfg = FTConfig(nb=nb, functional=True)
    br = ft_gehrd_batched(as_item_f_stack(mats), cfg)
    assert isinstance(br, BatchResult)
    assert br.ejected == [] and br.errors == {}
    assert br.iterations == len(iteration_plan_cached(n, nb))
    for i, m in enumerate(mats):
        ref = ft_gehrd(m.copy(order="F"), cfg)
        res = br.results[i]
        assert np.array_equal(res.a, ref.a)
        assert np.array_equal(res.taus, ref.taus)
        # the shared metadata pricing run prices every clean item exactly
        assert res.seconds == ref.seconds
        assert res.checks == ref.checks


def test_ft_batched_two_channels_matches_scalar():
    n, nb, b = 48, 16, 3
    mats = _mats(n, b, seed=5)
    cfg = FTConfig(nb=nb, channels=2, functional=True)
    br = ft_gehrd_batched(as_item_f_stack(mats), cfg)
    assert br.ejected == []
    for i, m in enumerate(mats):
        ref = ft_gehrd(m.copy(order="F"), cfg)
        assert np.array_equal(br.results[i].a, ref.a)
        assert np.array_equal(br.results[i].taus, ref.taus)


def test_ft_batched_rejects_metadata_mode():
    cfg = FTConfig(nb=16, functional=False)
    with pytest.raises(ShapeError):
        ft_gehrd_batched(as_item_f_stack(_mats(32, 2)), cfg)


# ---------------------------------------------------------------------------
# ejection contract
# ---------------------------------------------------------------------------


def _fault_injector(n: int) -> FaultInjector:
    return FaultInjector().add(
        FaultSpec(iteration=1, row=n // 2, col=n - 2, magnitude=2.0)
    )


def test_faulty_item_ejects_and_siblings_complete_untouched():
    n, nb, b, faulty = 48, 16, 4, 2
    mats = _mats(n, b, seed=9)
    cfg = FTConfig(nb=nb, functional=True)
    br = ft_gehrd_batched(
        as_item_f_stack(mats),
        cfg,
        injectors=[_fault_injector(n) if i == faulty else None for i in range(b)],
    )
    # the faulty item ejected at the detecting iteration, nothing else
    assert br.ejected == [faulty]
    assert 0 <= br.ejected_at[faulty] < br.iterations
    assert br.errors == {}
    for i, m in enumerate(mats):
        inj = _fault_injector(n) if i == faulty else None
        ref = ft_gehrd(m.copy(order="F"), cfg, injector=inj)
        res = br.results[i]
        assert np.array_equal(res.a, ref.a)
        assert np.array_equal(res.taus, ref.taus)
        if i == faulty:
            # the ejected item really ran the scalar resilience ladder
            assert res.detections >= 1 and len(res.recoveries) >= 1
        else:
            assert res.detections == 0 and res.recoveries == []


def test_caller_injectors_are_never_mutated():
    n, b = 32, 3
    inj = _fault_injector(n)
    ft_gehrd_batched(
        as_item_f_stack(_mats(n, b)),
        FTConfig(nb=32, functional=True),
        injectors=[None, inj, None],
    )
    # the plan replays on clones; the caller's injector still has every
    # fault unfired
    assert inj.unfired() == list(inj.faults)


def test_unbatchable_fault_plan_preejects():
    n, b = 32, 2
    inj = FaultInjector().add(
        FaultSpec(iteration=1, row=3, col=3, space="tau", phase="post_panel")
    )
    br = ft_gehrd_batched(
        as_item_f_stack(_mats(n, b)),
        FTConfig(nb=32, functional=True),
        injectors=[inj, None],
    )
    assert br.ejected == [0]
    assert br.ejected_at[0] == -1  # never entered the stack
    assert br.results[0] is not None and br.results[1] is not None


# ---------------------------------------------------------------------------
# batched Q formation / residual tail
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n,nb,b", [(32, 32, 4), (48, 16, 3), (8, 4, 6)])
def test_qform_batched_matches_scalar_bytewise(n, nb, b):
    from repro.batch import (
        extract_hessenberg_batched,
        factorization_residuals_batched,
        orghr_batched,
    )
    from repro.linalg import extract_hessenberg, factorization_residual, orghr

    mats = _mats(n, b)
    stack = as_item_f_stack(mats)
    facts = gehrd_batched(stack, nb=nb)
    a_pack = as_item_f_stack([f.a for f in facts])
    taus = np.stack([f.taus for f in facts])
    qs = orghr_batched(a_pack, taus)
    hs = extract_hessenberg_batched(a_pack)
    res = factorization_residuals_batched(stack, qs, hs)
    for i in range(b):
        q_ref = orghr(facts[i].a, facts[i].taus)
        h_ref = extract_hessenberg(facts[i].a)
        assert np.array_equal(qs[i], q_ref)
        assert np.array_equal(hs[i], h_ref)
        assert res[i] == factorization_residual(mats[i], q_ref, h_ref)


# ---------------------------------------------------------------------------
# flop accounting (satellite: linalg.flops batched helpers)
# ---------------------------------------------------------------------------


def test_batched_flops_scale_per_item():
    assert F.batched_flops(4, 10) == 40
    assert F.gemm_batched_flops(3, 4, 5, 6) == 3 * F.gemm_flops(4, 5, 6)
    assert F.gemv_batched_flops(2, 7, 8) == 2 * F.gemv_flops(7, 8)
    with pytest.raises(ValueError):
        F.batched_flops(-1, 10)


def test_batched_driver_counts_b_times_scalar_flops():
    n, nb, b = 32, 32, 3
    mats = _mats(n, b, seed=2)
    cfg = FTConfig(nb=nb, functional=True)
    br = ft_gehrd_batched(as_item_f_stack(mats), cfg)
    scalar = ft_gehrd(mats[0].copy(order="F"), cfg)
    # exact B x per-item accounting, category by category; the one
    # legitimate difference is Q-protection upkeep, which the batched
    # fast path skips entirely (audits are off by eligibility, so the
    # scalar driver's qprotect flops buy nothing a batched run needs)
    assert "abft_qprotect" not in br.counter.by_category
    for cat, scalar_flops in scalar.counter.by_category.items():
        if cat == "abft_qprotect":
            continue
        assert br.counter.by_category[cat] == b * scalar_flops


# ---------------------------------------------------------------------------
# serve: execute_jobs_batched payload parity
# ---------------------------------------------------------------------------


def test_batch_compatible_surface():
    assert batch_compatible(JobSpec(driver="ft_gehrd", n=32))
    assert batch_compatible(JobSpec(driver="gehrd", n=32))
    assert not batch_compatible(JobSpec(driver="ft_sytrd", n=32))
    assert not batch_compatible(JobSpec(driver="ft_gehrd", n=32, functional=False))
    assert not batch_compatible(JobSpec(driver="ft_gehrd", n=32, audit_every=2))
    assert not batch_compatible(
        JobSpec(driver="ft_gehrd", n=32, return_factors=True)
    )
    assert not batch_compatible(JobSpec(driver="gehrd", n=32, crash=True))
    # fault plans stay compatible: the engine ejects them item-by-item
    assert batch_compatible(
        JobSpec(driver="ft_gehrd", n=32,
                faults=({"iteration": 1, "row": 3, "col": 3},))
    )


def test_execute_jobs_batched_payloads_match_execute_job():
    n = 32
    specs = [JobSpec(driver="ft_gehrd", n=n, seed=s) for s in range(4)]
    specs += [
        JobSpec(
            driver="ft_gehrd",
            n=n,
            seed=9,
            faults=({"iteration": 1, "row": n // 2, "col": n - 2, "magnitude": 2.0},),
        )
    ]
    assert len({batch_group_key(s) for s in specs}) == 1
    out = execute_jobs_batched(specs)
    assert out["batch_size"] == len(specs)
    assert out["ejections"] == 1  # the fault job finished on the scalar ladder
    for spec, oc in zip(specs, out["outcomes"]):
        assert oc["ok"]
        ref = execute_job(spec)
        got = dict(oc["payload"])
        # wall-clock differs by construction; every result key is exact
        got.pop("elapsed_s"), ref.pop("elapsed_s")
        assert got == ref


def test_execute_jobs_batched_gehrd_group():
    specs = [JobSpec(driver="gehrd", n=24, nb=8, seed=s) for s in range(3)]
    out = execute_jobs_batched(specs)
    for spec, oc in zip(specs, out["outcomes"]):
        ref = execute_job(spec)
        got = dict(oc["payload"])
        got.pop("elapsed_s"), ref.pop("elapsed_s")
        assert got == ref


def test_execute_jobs_batched_rejects_mixed_groups():
    from repro.serve import JobSpecError

    with pytest.raises(JobSpecError):
        execute_jobs_batched(
            [JobSpec(driver="gehrd", n=32), JobSpec(driver="ft_gehrd", n=32)]
        )


# ---------------------------------------------------------------------------
# serve: the batch-coalescing lane end to end
# ---------------------------------------------------------------------------


def test_service_batch_lane_forms_batches_and_matches_scalar():
    n = 32
    specs = [JobSpec(driver="ft_gehrd", n=n, seed=s) for s in range(6)]
    specs += [JobSpec(driver="gehrd", n=n, seed=s) for s in range(6)]
    with HessService(
        workers=1,
        max_queue=64,
        small_n_threshold=n,
        batch_max=6,
        batch_linger_ms=20.0,
    ) as svc:
        subs = [svc.submit(s) for s in specs]
        assert all(s.accepted for s in subs)
        svc.drain(timeout=120)
        stats = svc.stats()
        results = [svc.result(s.job_id, timeout=5) for s in subs]

    lane = stats["batch_lane"]
    assert lane["enabled"] and lane["batches"] >= 2
    assert lane["batched_jobs"] == len(specs)
    assert lane["mean_occupancy"] > 1.0
    for spec, res in zip(specs, results):
        assert res.status == "done"
        ref = execute_job(spec)
        got = dict(res.payload)
        got.pop("elapsed_s"), ref.pop("elapsed_s")
        assert got == ref


def test_service_batch_lane_singleton_reroutes_to_scalar_path():
    n = 32
    with HessService(
        workers=1,
        small_n_threshold=n,
        batch_max=8,
        batch_linger_ms=1.0,
    ) as svc:
        sub = svc.submit(JobSpec(driver="ft_gehrd", n=n, seed=0))
        assert sub.accepted
        res = svc.result(sub.job_id, timeout=60)
        stats = svc.stats()
    assert res.status == "done"
    assert stats["batch_lane"]["singletons"] == 1
    assert stats["batch_lane"]["batches"] == 0


def test_service_batch_lane_disabled_by_default():
    n = 32
    with HessService(workers=1, small_n_threshold=n) as svc:
        sub = svc.submit(JobSpec(driver="ft_gehrd", n=n, seed=0))
        res = svc.result(sub.job_id, timeout=60)
        stats = svc.stats()
    assert res.status == "done"
    assert not stats["batch_lane"]["enabled"]
    assert stats["batch_lane"]["batches"] == 0


def test_service_batch_lane_fault_job_ejects_in_lane():
    n = 32
    fault_spec = JobSpec(
        driver="ft_gehrd",
        n=n,
        seed=7,
        # iteration 0: n=32/nb=32 runs a single blocked iteration, so
        # this fires mid-run and trips detection (ejection by detection,
        # not by end-of-run escort)
        faults=({"iteration": 0, "row": n // 2, "col": n - 2, "magnitude": 2.0},),
    )
    specs = [JobSpec(driver="ft_gehrd", n=n, seed=s) for s in range(3)]
    specs.append(fault_spec)
    with HessService(
        workers=1,
        small_n_threshold=n,
        batch_max=4,
        batch_linger_ms=50.0,
    ) as svc:
        subs = [svc.submit(s) for s in specs]
        svc.drain(timeout=120)
        stats = svc.stats()
        fault_res = svc.result(subs[-1].job_id, timeout=5)
    assert stats["batch_lane"]["batches"] == 1
    assert stats["batch_lane"]["ejections"] == 1
    assert fault_res.status == "done"
    assert fault_res.payload["recoveries"] >= 1
    assert stats["tier_tally"]  # the ejected item's recovery was tallied
    # the lane's answer is the scalar driver's answer, fault and all
    ref = execute_job(fault_spec)
    got = dict(fault_res.payload)
    got.pop("elapsed_s"), ref.pop("elapsed_s")
    assert got == ref


# ---------------------------------------------------------------------------
# larfg_batched hypot parity + fused batched left update invocations
# ---------------------------------------------------------------------------


class TestLarfgHypotParity:
    """The vectorized ``larfg_batched`` tail is gated by a byte-parity
    probe of ``np.hypot`` against correctly-rounded ``math.hypot``; the
    kernel must stay bitwise equal to the scalar ``larfg`` no matter
    which branch the probe picks — including adversarial magnitudes."""

    # denormals, eps-scale mixes, huge/tiny pairings, overflow-adjacent
    MAGS = [
        0.0, 5e-324, 1e-310, 2.2250738585072014e-308, 1e-300, 1e-155,
        1e-30, 1e-16, 0.5, 1.0, 1.5, 3.0, 1e3, 1e16, 1e30, 1e155,
        1e300, 8.988465674311579e307,
    ]

    def _sweep(self, dtype):
        from repro.linalg.householder import larfg
        from repro.batch.panel import larfg_batched

        rng = np.random.default_rng(99)
        cols = []
        for m in self.MAGS:
            for mx in (self.MAGS[0], 1e-300, 1.0, 1e300):
                v = rng.standard_normal(6)
                v[0] = m
                v[1] = mx
                cols.append(v)
        # dense ordinary-mantissa columns — the regime where a SIMD
        # hypot actually diverges from the correctly-rounded one
        for _ in range(256):
            cols.append(rng.standard_normal(6) * np.exp(rng.uniform(-20, 20)))
        arr = np.array(cols, dtype=dtype)  # (B, 6) item rows
        alphas = arr[:, 0].copy()
        xs = arr[:, 1:].copy()
        beta_b, tau_b = larfg_batched(alphas.copy(), xs.copy())
        for i in range(arr.shape[0]):
            x = arr[i, 1:].copy()
            ref = larfg(alphas[i], x)
            assert beta_b[i] == ref.beta or (
                np.isnan(beta_b[i]) and np.isnan(ref.beta)
            ), f"beta mismatch at col {i}: {beta_b[i]!r} vs {ref.beta!r}"
            assert tau_b[i] == ref.tau or (
                np.isnan(tau_b[i]) and np.isnan(ref.tau)
            ), f"tau mismatch at col {i}: {tau_b[i]!r} vs {ref.tau!r}"

    def test_fp64_sweep(self):
        self._sweep(np.float64)

    def test_fp32_sweep(self):
        self._sweep(np.float32)

    def test_probe_is_cached_and_consistent(self):
        from repro.batch import panel

        first = panel.hypot_vectorizes_exactly()
        assert panel.hypot_vectorizes_exactly() is first  # cached bool
        # the probe's verdict must match a direct dense-pair comparison
        import math

        rng = np.random.default_rng(0xBEEF)
        a = rng.standard_normal(4096) * np.exp(rng.uniform(-20, 20, 4096))
        c = np.abs(rng.standard_normal(4096)) * np.exp(rng.uniform(-20, 20, 4096))
        got = np.hypot(a, c)
        want = np.array([math.hypot(x, y) for x, y in zip(a.tolist(), c.tolist())])
        if first:
            assert np.array_equal(got, want)
        # if the probe said False we cannot assert mismatch here (the
        # probe grid is wider), but the kernels must still be bitwise —
        # covered by the sweeps above either way.


def test_batched_fused_left_update_invocation_count(monkeypatch):
    """Batched mirror of the scalar invocation-count pin: the stacked
    fused left update issues exactly two stacked projection matmuls plus
    one in-place apply GEMM per item — and nothing that produces a
    standalone k-row checksum product."""
    import repro.batch.updates as U
    from repro.batch.panel import lahr2_batched
    from repro.batch.stack import EncodedMatrixBatch

    n, nb, b, k = 48, 16, 3, 2
    mats = _mats(n, b, seed=5)
    emb = EncodedMatrixBatch(as_item_f_stack(mats), channels=k)
    ws = Workspace()
    p, ib = nb, nb
    pf = lahr2_batched(emb.ext, p, ib, n, workspace=ws)
    vce = U.v_col_checksums_batched(pf, emb)

    calls = []
    real_matmul = np.matmul

    def counting_matmul(x, y, out=None, **kw):
        r = real_matmul(x, y, out=out, **kw)
        calls.append(("matmul", r.shape))
        return r

    class _NP:
        def __getattr__(self, name):
            return getattr(np, name)

    shim = _NP()
    shim.matmul = counting_matmul
    real_gemm = U.gemm_inplace

    def counting_gemm(alpha, x, y, c, **kw):
        calls.append(("gemm_inplace", c.shape))
        return real_gemm(alpha, x, y, c, **kw)

    monkeypatch.setattr(U, "np", shim)
    monkeypatch.setattr(U, "gemm_inplace", counting_gemm)
    U.left_update_encoded_batched(emb, pf, vce, workspace=ws)
    mm = [s for kind, s in calls if kind == "matmul"]
    gm = [s for kind, s in calls if kind == "gemm_inplace"]
    assert len(mm) == 2 and len(gm) == b
    # no standalone checksum-row product: nothing with k rows in the
    # trailing matrix dims
    assert all(s[-2] != k for s in mm + gm)


# ---------------------------------------------------------------------------
# serve: backend-lane batched groups
# ---------------------------------------------------------------------------


def test_execute_jobs_batched_backend_group_matches_scalar_route():
    n = 32
    specs = [
        JobSpec(driver="ft_gehrd", n=n, seed=s, backend="numpy_functional")
        for s in range(3)
    ]
    assert len({batch_group_key(s) for s in specs}) == 1
    out = execute_jobs_batched(specs)
    assert out["batch_size"] == len(specs)
    assert out["ejections"] == 0
    for spec, oc in zip(specs, out["outcomes"]):
        assert oc["ok"]
        ref = execute_job(spec)  # the single-job backend route
        got = dict(oc["payload"])
        got.pop("elapsed_s"), ref.pop("elapsed_s")
        assert got == ref
        assert got["backend"] == "numpy_functional"
        assert got["residual"] < 1e-13


def test_execute_jobs_batched_backend_group_fault_ejects_to_scalar():
    n = 32
    specs = [
        JobSpec(driver="ft_gehrd", n=n, seed=s, backend="numpy_functional")
        for s in range(2)
    ]
    specs.append(
        JobSpec(
            driver="ft_gehrd", n=n, seed=9, backend="numpy_functional",
            # iteration 0: n=32/nb=32 is a single blocked iteration, so
            # this fires mid-run and the scalar ladder must recover it
            faults=({"iteration": 0, "row": n // 2, "col": n - 2,
                     "magnitude": 2.0},),
        )
    )
    out = execute_jobs_batched(specs)
    assert out["ejections"] == 1  # the fault finished on the scalar ladder
    for oc in out["outcomes"]:
        assert oc["ok"]
        assert oc["payload"]["residual"] < 1e-13
    # the ejected item's scalar re-run reports its own recovery traffic
    assert out["outcomes"][-1]["payload"]["recoveries"] >= 1
