"""Tests for the bidiagonal substrate: gebd2, the implicit-QR singular
value solver, and the fault-tolerant ft_gebd2 driver."""

import numpy as np
import pytest

from repro.core import ft_gebd2
from repro.errors import ConvergenceError, ShapeError
from repro.faults import FaultInjector, FaultSpec
from repro.linalg import (
    bidiagonal_of,
    bidiagonal_svdvals,
    gebd2,
    orgbr_p,
    orgbr_q,
    svdvals_via_bidiagonal,
)
from repro.utils.rng import MatrixKind, random_matrix


def _verify(a0, packed, tau_q, tau_p):
    b = bidiagonal_of(packed)
    q = orgbr_q(packed, tau_q)
    p = orgbr_p(packed, tau_p)
    n = a0.shape[0]
    resid = np.linalg.norm(a0 - q @ b @ p.T, 1) / max(np.linalg.norm(a0, 1), 1e-300)
    orth = max(
        np.linalg.norm(q @ q.T - np.eye(n), 1),
        np.linalg.norm(p @ p.T - np.eye(n), 1),
    )
    return resid, orth, b


class TestGebd2:
    @pytest.mark.parametrize("n", [2, 3, 8, 31, 64])
    def test_correctness(self, n):
        a0 = random_matrix(n, seed=n)
        a = a0.copy(order="F")
        tq, tp = gebd2(a)
        resid, orth, b = _verify(a0, a, tq, tp)
        assert resid < 1e-13 and orth < 1e-13

    def test_output_is_upper_bidiagonal(self):
        a0 = random_matrix(20, seed=1)
        a = a0.copy(order="F")
        gebd2(a)
        b = bidiagonal_of(a)
        mask = ~(np.eye(20, dtype=bool) | np.eye(20, k=1, dtype=bool))
        assert np.all(b[mask] == 0.0)

    def test_singular_values_preserved(self):
        a0 = random_matrix(30, seed=2)
        a = a0.copy(order="F")
        gebd2(a)
        b = bidiagonal_of(a)
        ref = np.sort(np.linalg.svd(a0, compute_uv=False))
        got = np.sort(np.linalg.svd(b, compute_uv=False))
        np.testing.assert_allclose(got, ref, atol=1e-12)

    def test_rejects_nonsquare(self):
        with pytest.raises(ShapeError):
            gebd2(np.zeros((3, 4), order="F"))


class TestBdsqr:
    @pytest.mark.parametrize("n", [1, 2, 7, 33, 100])
    def test_random_bidiagonal(self, n, rng):
        d = rng.standard_normal(n)
        e = rng.standard_normal(max(n - 1, 0))
        b = np.diag(d) + (np.diag(e, 1) if n > 1 else 0.0)
        got = bidiagonal_svdvals(d, e)
        ref = np.sort(np.linalg.svd(b, compute_uv=False))[::-1]
        np.testing.assert_allclose(got, ref, atol=1e-12 * max(1.0, abs(ref[0])))

    def test_values_descending_nonnegative(self, rng):
        got = bidiagonal_svdvals(rng.standard_normal(20), rng.standard_normal(19))
        assert np.all(got >= 0)
        assert np.all(np.diff(got) <= 0)

    def test_zero_diagonal_chase(self):
        d = np.array([1.0, 0.0, 2.0, 3.0])
        e = np.array([0.5, 0.7, 0.9])
        b = np.diag(d) + np.diag(e, 1)
        got = bidiagonal_svdvals(d, e)
        ref = np.sort(np.linalg.svd(b, compute_uv=False))[::-1]
        np.testing.assert_allclose(got, ref, atol=1e-13)

    def test_diagonal_matrix(self):
        got = bidiagonal_svdvals(np.array([3.0, -1.0, 2.0]), np.zeros(2))
        np.testing.assert_allclose(got, [3.0, 2.0, 1.0])

    def test_mismatched_superdiagonal(self):
        with pytest.raises(ShapeError):
            bidiagonal_svdvals(np.ones(4), np.ones(4))

    @pytest.mark.parametrize("kind", [MatrixKind.UNIFORM, MatrixKind.GRADED,
                                      MatrixKind.WELL_CONDITIONED])
    def test_full_pipeline_families(self, kind):
        a = random_matrix(48, kind, seed=3)
        got = svdvals_via_bidiagonal(a)
        ref = np.sort(np.linalg.svd(a, compute_uv=False))[::-1]
        np.testing.assert_allclose(got, ref, atol=1e-11 * max(1.0, ref[0]))


class TestFTBidiag:
    @pytest.mark.parametrize("n", [8, 32, 80])
    def test_no_error(self, n):
        a0 = random_matrix(n, seed=n + 5)
        res = ft_gebd2(a0)
        resid, orth, _ = _verify(a0, res.a, res.tau_q, res.tau_p)
        assert resid < 1e-13 and orth < 1e-13
        assert res.detections == 0

    def test_trailing_error_recovered(self):
        a0 = random_matrix(80, seed=6)
        inj = FaultInjector().add(FaultSpec(iteration=10, row=40, col=55, magnitude=2.0))
        res = ft_gebd2(a0, injector=inj)
        resid, _, _ = _verify(a0, res.a, res.tau_q, res.tau_p)
        assert resid < 1e-13
        e = res.recoveries[0].errors[0]
        assert (e.row, e.col) == (40, 55)
        assert e.magnitude == pytest.approx(2.0, rel=1e-8)

    def test_diagonal_error_caught_by_audit(self):
        a0 = random_matrix(80, seed=7)
        inj = FaultInjector().add(FaultSpec(iteration=10, row=50, col=50, magnitude=2.0))
        res = ft_gebd2(a0, injector=inj, audit_every=8)
        resid, _, _ = _verify(a0, res.a, res.tau_q, res.tau_p)
        assert resid < 1e-13
        assert res.detections == 1

    def test_checksum_element_error(self):
        a0 = random_matrix(64, seed=8)
        inj = FaultInjector().add(
            FaultSpec(iteration=20, row=30, col=-1, space="row_checksum", magnitude=3.0)
        )
        res = ft_gebd2(a0, injector=inj)
        resid, _, _ = _verify(a0, res.a, res.tau_q, res.tau_p)
        assert resid < 1e-13
        assert res.recoveries[0].errors[0].kind == "row_checksum"

    def test_singular_values_survive_error(self):
        """The SVD analogue of the paper's trust argument."""
        a0 = random_matrix(80, seed=9)
        inj = FaultInjector().add(FaultSpec(iteration=5, row=30, col=60, magnitude=1.5))
        res = ft_gebd2(a0, injector=inj)
        sv = bidiagonal_svdvals(np.diag(res.a).copy(), np.diag(res.a, 1).copy())
        ref = np.sort(np.linalg.svd(a0, compute_uv=False))[::-1]
        assert np.max(np.abs(sv - ref)) < 1e-11 * ref[0]

    def test_two_errors_different_steps(self):
        a0 = random_matrix(80, seed=10)
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=8, row=30, col=45, magnitude=1.0))
        inj.add(FaultSpec(iteration=30, row=60, col=70, magnitude=2.0))
        res = ft_gebd2(a0, injector=inj)
        resid, _, _ = _verify(a0, res.a, res.tau_q, res.tau_p)
        assert resid < 1e-13
        assert res.detections == 2

    def test_retry_budget(self):
        a0 = random_matrix(48, seed=11)
        inj = FaultInjector().add(FaultSpec(iteration=5, row=20, col=30, magnitude=1.0))
        with pytest.raises(ConvergenceError):
            ft_gebd2(a0, injector=inj, max_retries=0)

    def test_rejects_bad_input(self):
        with pytest.raises(ShapeError):
            ft_gebd2(np.zeros((3, 4)))
        with pytest.raises(ShapeError):
            ft_gebd2(random_matrix(8, seed=0), audit_every=0)

    def test_error_near_end(self):
        n = 64
        a0 = random_matrix(n, seed=12)
        inj = FaultInjector().add(
            FaultSpec(iteration=n - 3, row=n - 2, col=n - 1, magnitude=1.0)
        )
        res = ft_gebd2(a0, injector=inj)
        resid, _, _ = _verify(a0, res.a, res.tau_q, res.tau_p)
        assert resid < 1e-13
