"""Golden equivalence: the workspace-pooled kernels against the frozen
pre-pooling references in :mod:`repro.perf.reference`.

The pooled kernels are allowed to regroup BLAS calls (merged GEMVs,
padded in-place GEMMs), so agreement is to tight roundoff, not bitwise.
The (k x k) corner of the extended storage is scratch by contract and
excluded from every comparison.
"""

import numpy as np
import pytest

from repro.abft.checksums import (
    left_update_encoded,
    reverse_left_update_encoded,
    reverse_right_update_encoded,
    right_update_encoded,
    v_col_checksums,
    y_col_checksums,
)
from repro.abft.encoding import EncodedMatrix
from repro.linalg.lahr2 import lahr2
from repro.perf.reference import (
    lahr2_reference,
    left_update_encoded_reference,
    reverse_left_update_encoded_reference,
    reverse_right_update_encoded_reference,
    right_update_encoded_reference,
)
from repro.perf.workspace import Workspace
from repro.utils.rng import random_matrix

RTOL = 5e-14
ATOL = 1e-13


def _panel_pair(n, p, ib, seed=0):
    """Factorize the same panel with the reference and the pooled kernel."""
    a0 = np.asfortranarray(random_matrix(n, seed=seed))
    a_ref = a0.copy(order="F")
    a_new = a0.copy(order="F")
    ws = Workspace()
    pf_ref = lahr2_reference(a_ref, p, ib, n)
    pf_new = lahr2(a_new, p, ib, n, workspace=ws)
    return a_ref, a_new, pf_ref, pf_new, ws


def _scaled_close(x, y):
    np.testing.assert_allclose(x, y, rtol=RTOL, atol=ATOL * max(1.0, np.max(np.abs(y)) if np.size(y) else 1.0))


@pytest.mark.parametrize("ib", [1, 4, 8, 32])
def test_lahr2_matches_reference(ib):
    n, p = 96, 16
    a_ref, a_new, pf_ref, pf_new, _ = _panel_pair(n, p, ib, seed=3)
    _scaled_close(pf_new.v, pf_ref.v)
    _scaled_close(pf_new.t, pf_ref.t)
    _scaled_close(pf_new.y, pf_ref.y)
    np.testing.assert_allclose(pf_new.taus, pf_ref.taus, rtol=RTOL)
    assert pf_new.ei == pytest.approx(pf_ref.ei, rel=RTOL)
    _scaled_close(a_new, a_ref)


def test_lahr2_pooled_invariants():
    n, p, ib = 64, 8, 8
    _, _, _, pf, _ = _panel_pair(n, p, ib, seed=5)
    # unit diagonal and explicit zeros above it — exact, by construction
    for j in range(ib):
        assert pf.v[j, j] == 1.0
        assert not pf.v[:j, j].any()
    # zero-padded full-height V: rows outside p+1..n-1 exactly zero
    assert pf.v_full is not None
    assert not pf.v_full[: p + 1].any()
    np.testing.assert_array_equal(pf.v_full[p + 1 : n], pf.v)


def test_workspace_reuse_across_panels():
    """Sequential panels reuse the same arena without cross-talk."""
    n, nb = 96, 16
    a_ref = np.asfortranarray(random_matrix(n, seed=11))
    a_new = a_ref.copy(order="F")
    ws = Workspace()
    ws.presize(n, nb)
    nbytes_presized = ws.nbytes
    for p in (0, nb):
        pf_ref = lahr2_reference(a_ref, p, nb, n)
        pf_new = lahr2(a_new, p, nb, n, workspace=ws)
        _scaled_close(pf_new.y, pf_ref.y)
        _scaled_close(a_new, a_ref)
        # keep the two matrices in lockstep so panel 2 sees identical input
        a_new[...] = a_ref
    lahr2(a_new, 2 * nb, nb, n, workspace=ws)
    assert ws.nbytes == nbytes_presized  # presized once, then only reused


def _encoded_pair(n, p, ib, channels, seed=0):
    """Factorize the panel in-place in the extended storage on both
    sides — the FT driver's calling pattern, which is what arms the
    fused in-place BLAS path (v_full spans all n+k rows)."""
    from repro.abft.checksums import _can_fuse

    a0 = random_matrix(n, seed=seed)
    em_ref = EncodedMatrix(a0.copy(), channels=channels)
    em_new = EncodedMatrix(a0.copy(), channels=channels)
    pf_ref = lahr2_reference(em_ref.ext, p, ib, n)
    ws = Workspace()
    pf_new = lahr2(em_new.ext, p, ib, n, workspace=ws)
    assert _can_fuse(em_new, pf_new, ws), "fused kernel path must be active"
    return em_ref, em_new, pf_ref, pf_new, ws


def _compare_encoded(em_ref, em_new):
    """Data + both checksum blocks; the k x k corner is scratch."""
    n = em_ref.n
    _scaled_close(em_new.data, em_ref.data)
    _scaled_close(em_new.ext[:n, n:], em_ref.ext[:n, n:])
    _scaled_close(em_new.ext[n:, :n], em_ref.ext[n:, :n])


@pytest.mark.parametrize("channels", [1, 2])
@pytest.mark.parametrize("ib", [1, 4, 8, 32])
def test_encoded_updates_match_reference(ib, channels):
    n, p = 96, 16
    em_ref, em_new, pf_ref, pf_new, ws = _encoded_pair(n, p, ib, channels, seed=7)

    vce_ref = v_col_checksums(pf_ref, em_ref)
    ychk_ref = y_col_checksums(em_ref, pf_ref)
    right_update_encoded_reference(em_ref, pf_ref, vce_ref, ychk_ref)
    left_update_encoded_reference(em_ref, pf_ref, vce_ref)

    vce_new = v_col_checksums(pf_new, em_new)
    ychk_new = y_col_checksums(em_new, pf_new)
    right_update_encoded(em_new, pf_new, vce_new, ychk_new, workspace=ws)
    left_update_encoded(em_new, pf_new, vce_new, workspace=ws)

    _compare_encoded(em_ref, em_new)


@pytest.mark.parametrize("channels", [1, 2])
@pytest.mark.parametrize("ib", [4, 16])
def test_reverse_updates_match_reference(ib, channels):
    """Forward-then-reverse with the fused kernels tracks the reference."""
    n, p = 80, 8
    em_ref, em_new, pf_ref, pf_new, ws = _encoded_pair(n, p, ib, channels, seed=13)

    vce_ref = v_col_checksums(pf_ref, em_ref)
    ychk_ref = y_col_checksums(em_ref, pf_ref)
    right_update_encoded_reference(em_ref, pf_ref, vce_ref, ychk_ref)
    left_update_encoded_reference(em_ref, pf_ref, vce_ref)
    reverse_left_update_encoded_reference(em_ref, pf_ref, vce_ref)
    reverse_right_update_encoded_reference(em_ref, pf_ref, vce_ref, ychk_ref)

    vce_new = v_col_checksums(pf_new, em_new)
    ychk_new = y_col_checksums(em_new, pf_new)
    right_update_encoded(em_new, pf_new, vce_new, ychk_new, workspace=ws)
    left_update_encoded(em_new, pf_new, vce_new, workspace=ws)
    reverse_left_update_encoded(em_new, pf_new, vce_new, workspace=ws)
    reverse_right_update_encoded(em_new, pf_new, vce_new, ychk_new, workspace=ws)

    _compare_encoded(em_ref, em_new)


def test_fused_flop_accounting_matches_reference():
    """Pooled kernels must price identically on the simulated machine."""
    from repro.linalg.flops import FlopCounter

    n, p, ib, channels = 96, 16, 16, 2
    em_ref, em_new, pf_ref, pf_new, ws = _encoded_pair(n, p, ib, channels, seed=2)

    c_ref, c_new = FlopCounter(), FlopCounter()
    vce_ref = v_col_checksums(pf_ref, em_ref, counter=c_ref)
    ychk_ref = y_col_checksums(em_ref, pf_ref, counter=c_ref)
    right_update_encoded_reference(em_ref, pf_ref, vce_ref, ychk_ref, counter=c_ref)
    left_update_encoded_reference(em_ref, pf_ref, vce_ref, counter=c_ref)

    vce_new = v_col_checksums(pf_new, em_new, counter=c_new)
    ychk_new = y_col_checksums(em_new, pf_new, counter=c_new)
    right_update_encoded(em_new, pf_new, vce_new, ychk_new, counter=c_new, workspace=ws)
    left_update_encoded(em_new, pf_new, vce_new, counter=c_new, workspace=ws)

    assert c_new.total == c_ref.total


# ---------------------------------------------------------------------------
# v2 fused left update: byte-for-byte pinning against the frozen reference
# ---------------------------------------------------------------------------

def _fused_left_setup(n, p, ib, channels, dtype=np.float64, seed=21):
    """One pooled panel factorization; two byte-identical encoded copies
    sharing the same PanelFactors — the setup that makes a bitwise
    reference comparison meaningful."""
    from repro.abft.checksums import _can_fuse

    a0 = random_matrix(n, seed=seed, dtype=dtype)
    em_new = EncodedMatrix(a0.copy(), channels=channels)
    ws = Workspace()
    pf = lahr2(em_new.ext, p, ib, n, workspace=ws)
    assert _can_fuse(em_new, pf, ws)
    em_ref = EncodedMatrix(a0.copy(), channels=channels)
    em_ref.ext[...] = em_new.ext  # identical post-panel bytes
    vce = v_col_checksums(pf, em_new)
    return em_ref, em_new, pf, vce, ws


def _assert_encoded_bitwise(em_ref, em_new):
    """Data rows and row-checksum columns bit-for-bit — the blocks the
    driver's outputs are computed from.  The column-checksum rows are an
    independent redundancy channel: BLAS dispatches a standalone k-row
    product through a different kernel than the same rows riding inside
    the fused apply GEMM, so they agree to a few ulps, not bytes (the
    fused right update has always had this property; the thresholded
    detector and the per-segment refresh absorb it)."""
    n = em_ref.n
    assert np.array_equal(em_new.data, em_ref.data)
    assert np.array_equal(em_new.ext[:n, n:], em_ref.ext[:n, n:])
    eps = np.finfo(em_ref.ext.dtype).eps
    scale = max(1.0, float(np.max(np.abs(em_ref.ext[n:, :n]))))
    np.testing.assert_allclose(
        em_new.ext[n:, :n], em_ref.ext[n:, :n], rtol=0, atol=256 * eps * scale
    )


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize(
    "n,ib,channels", [(96, 16, 1), (96, 32, 2), (64, 8, 3), (97, 13, 2)]
)
def test_fused_left_update_bitwise_vs_reference(n, ib, channels, dtype):
    """The fully-fused FT-GEMM left update ([V; Vce] operand stacking +
    active-row-window projection) must reproduce the frozen reference's
    data rows and row-checksum columns BYTE-for-byte — roundoff-free
    equivalence on everything that feeds the driver output, not just
    tight tolerance."""
    em_ref, em_new, pf, vce, ws = _fused_left_setup(n, ib, ib, channels, dtype=dtype)
    left_update_encoded_reference(em_ref, pf, vce)
    left_update_encoded(em_new, pf, vce, workspace=ws)
    _assert_encoded_bitwise(em_ref, em_new)


def test_fused_left_update_restores_v_full_contract():
    """The fused apply writes Vce into v_full's checksum rows for the
    duration of one GEMM; the zero-row contract (reverse kernels project
    against v_full) must be restored on every exit."""
    n, p, ib, channels = 96, 16, 16, 2
    em_ref, em_new, pf, vce, ws = _fused_left_setup(n, p, ib, channels)
    left_update_encoded(em_new, pf, vce, workspace=ws)
    assert not pf.v_full[n:].any()
    assert not pf.v_full[: p + 1].any()
    np.testing.assert_array_equal(pf.v_full[p + 1 : n], pf.v)


@pytest.mark.parametrize("channels", [1, 2])
def test_left_update_no_workspace_fallback_bitwise(channels):
    """Without a workspace the kernel must take the unfused fallback and
    still match the reference bit-for-bit."""
    n, p, ib = 96, 16, 16
    em_ref, em_new, pf, vce, _ = _fused_left_setup(n, p, ib, channels, seed=33)
    left_update_encoded_reference(em_ref, pf, vce)
    left_update_encoded(em_new, pf, vce)  # workspace=None -> fallback
    # the fallback IS the reference computation: every block bitwise,
    # column-checksum rows included
    nn = em_ref.n
    assert np.array_equal(em_new.data, em_ref.data)
    assert np.array_equal(em_new.ext[:nn, nn:], em_ref.ext[:nn, nn:])
    assert np.array_equal(em_new.ext[nn:, :nn], em_ref.ext[nn:, :nn])


def test_fused_left_update_invocation_count(monkeypatch):
    """The fused left update is exactly three BLAS invocations — the
    two projection matmuls and ONE in-place apply GEMM — with NO
    separate checksum-row product (no call writes a k-row output)."""
    import repro.abft.checksums as C

    n, p, ib, channels = 96, 16, 16, 2
    _, em_new, pf, vce, ws = _fused_left_setup(n, p, ib, channels, seed=9)

    calls = []
    real_matmul = np.matmul

    def counting_matmul(a, b, out=None, **kw):
        r = real_matmul(a, b, out=out, **kw)
        calls.append(("matmul", r.shape))
        return r

    class _NP:
        def __getattr__(self, name):
            return getattr(np, name)

    shim = _NP()
    shim.matmul = counting_matmul
    real_gemm = C.gemm_inplace

    def counting_gemm(alpha, a, b, c, **kw):
        calls.append(("gemm_inplace", c.shape))
        return real_gemm(alpha, a, b, c, **kw)

    monkeypatch.setattr(C, "np", shim)
    monkeypatch.setattr(C, "gemm_inplace", counting_gemm)
    C.left_update_encoded(em_new, pf, vce, workspace=ws)
    assert len(calls) == 3
    assert sum(1 for kind, _ in calls if kind == "gemm_inplace") == 1
    # the k checksum rows ride inside the fused apply — nothing produces
    # a standalone (k, ...) block
    assert all(shape[0] != channels for _, shape in calls)
