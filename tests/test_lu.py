"""Tests for the LU substrate and the post-processing FT solve
(the HPL-style related work, refs [6]-[7])."""

import numpy as np
import pytest

from repro.core.ft_lu import FTLUResult, ft_lu_solve
from repro.errors import ShapeError, UncorrectableError
from repro.faults import FaultInjector, FaultSpec
from repro.linalg.getrf import getrf, getrs, lu_residual
from repro.utils.rng import random_matrix


class TestGetrf:
    @pytest.mark.parametrize("n", [2, 9, 40, 100])
    def test_factorization_residual(self, n):
        a0 = random_matrix(n, seed=n)
        a = a0.copy(order="F")
        piv = getrf(a)
        assert lu_residual(a0, a, piv) < 1e-14

    def test_solve(self, rng):
        n = 50
        a0 = random_matrix(n, seed=1)
        b = rng.standard_normal(n)
        a = a0.copy(order="F")
        piv = getrf(a)
        x = getrs(a, piv, b)
        assert np.linalg.norm(a0 @ x - b) / np.linalg.norm(b) < 1e-11

    def test_matches_numpy_solution(self, rng):
        n = 30
        a0 = random_matrix(n, seed=2)
        b = rng.standard_normal(n)
        a = a0.copy(order="F")
        piv = getrf(a)
        np.testing.assert_allclose(getrs(a, piv, b), np.linalg.solve(a0, b), atol=1e-9)

    def test_pivoting_engages(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]], order="F")
        piv = getrf(a.copy(order="F"))
        assert piv[0] == 1  # must swap away from the zero pivot

    def test_checksum_columns_ride(self):
        n = 24
        a0 = random_matrix(n, seed=3)
        ext = np.zeros((n, n + 1), order="F")
        ext[:, :n] = a0
        ext[:, n] = a0 @ np.ones(n)
        getrf(ext)
        u = np.triu(ext[:, :n])
        np.testing.assert_allclose(ext[:, n], u @ np.ones(n), atol=1e-10)

    def test_rejects_thin(self):
        with pytest.raises(ShapeError):
            getrf(np.zeros((4, 3), order="F"))


class TestFTLUSolve:
    def _setup(self, n=64, seed=0):
        rng = np.random.default_rng(seed)
        a = random_matrix(n, seed=seed)
        b = rng.standard_normal(n)
        x_ref = np.linalg.solve(a, b)
        return a, b, x_ref

    def test_clean_solve(self):
        a, b, x_ref = self._setup()
        res = ft_lu_solve(a, b)
        assert not res.detected
        np.testing.assert_allclose(res.x, x_ref, atol=1e-9)

    @pytest.mark.parametrize("step,row,col", [(0, 10, 20), (10, 30, 40), (30, 50, 60)])
    def test_single_error_corrected(self, step, row, col):
        a, b, x_ref = self._setup(seed=step + 1)
        inj = FaultInjector().add(
            FaultSpec(iteration=step, row=row, col=col, magnitude=2.0)
        )
        res = ft_lu_solve(a, b, injector=inj)
        assert res.detected and res.corrected
        np.testing.assert_allclose(res.x, x_ref, atol=1e-7)

    def test_uncorrected_solution_would_be_wrong(self):
        """Without the Sherman-Morrison step the solve is silently wrong —
        the scenario refs [6]-[7] exist to prevent."""
        a, b, x_ref = self._setup(seed=5)
        work = a.copy(order="F")
        work[30, 40] += 2.0
        piv = getrf(work)
        x_bad = getrs(work, piv, b)
        assert np.linalg.norm(x_bad - x_ref) > 1e-4

    def test_error_magnitude_recovered(self):
        a, b, _ = self._setup(seed=6)
        inj = FaultInjector().add(
            FaultSpec(iteration=5, row=20, col=30, magnitude=1.25)
        )
        res = ft_lu_solve(a, b, injector=inj)
        assert (res.error_row, res.error_col) == (20, 30) or res.corrected
        # the located magnitude matches the injection
        assert res.error_magnitude == pytest.approx(1.25, rel=1e-6)

    def test_two_errors_refused(self):
        """The post-processing design point: one correctable error per
        run (the paper's on-line scheme handles one per iteration)."""
        a, b, _ = self._setup(seed=7)
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=5, row=20, col=30, magnitude=1.0))
        inj.add(FaultSpec(iteration=20, row=40, col=50, magnitude=2.0))
        with pytest.raises(UncorrectableError):
            ft_lu_solve(a, b, injector=inj)

    def test_shape_checks(self):
        with pytest.raises(ShapeError):
            ft_lu_solve(np.zeros((3, 4)), np.zeros(3))
        with pytest.raises(ShapeError):
            ft_lu_solve(np.eye(3), np.zeros(4))

    def test_result_counter_populated(self):
        a, b, _ = self._setup(seed=8)
        res = ft_lu_solve(a, b)
        assert res.counter.category_total("abft_init") > 0
        assert res.counter.category_total("abft_detect") > 0
