"""Tests for the zero-copy shared-memory data plane (repro.utils.shm).

Covers the transport primitives (handle roundtrip, attach caching,
transport selection), the owner-side SegmentRegistry (refcounts,
adoption, teardown, sweeps), and the two consumers: the campaign
executor and the batch service — including the hygiene guarantees
(no leaked /dev/shm segments after crashes, rebuilds, drains and
cancels; no resource_tracker noise at interpreter exit). The autouse
``_shm_leak_guard`` fixture in conftest.py backs every test here with
a before/after /dev/shm diff.
"""

import hashlib
import json
import os
import pickle
import subprocess
import sys
from dataclasses import replace

import numpy as np
import pytest

import repro.utils.shm as shm_mod
from repro.core.config import FTConfig
from repro.faults.campaign import build_fault_grid
from repro.faults.executor import run_ft_trials
from repro.serve import HessService, JobSpec
from repro.serve.cache import ResultCache, _Entry
from repro.utils.rng import random_matrix
from repro.utils.shm import (
    DEFAULT_MIN_BYTES,
    SegmentRegistry,
    SharedMatrix,
    TransportError,
    hash_update_array,
    shm_available,
    sweep_stale_segments,
    use_shm_for,
)

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="no shared-memory support on this host"
)

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ---------------------------------------------------------------------------
# transport selection
# ---------------------------------------------------------------------------


class TestUseShmFor:
    def test_pickle_always_declines(self):
        assert use_shm_for(10**9, "pickle") is False

    def test_auto_threshold(self):
        if not shm_available():
            pytest.skip("no shm")
        assert use_shm_for(DEFAULT_MIN_BYTES, "auto") is True
        assert use_shm_for(DEFAULT_MIN_BYTES - 1, "auto") is False
        assert use_shm_for(10, "auto", min_bytes=0) is True
        assert use_shm_for(10**9, "auto", min_bytes=2 * 10**9) is False

    @needs_shm
    def test_forced_shm_accepts_any_size(self):
        assert use_shm_for(1, "shm") is True

    def test_forced_shm_raises_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(shm_mod, "_AVAILABLE", False)
        with pytest.raises(TransportError):
            use_shm_for(10**6, "shm")
        # auto quietly falls back instead
        assert use_shm_for(10**6, "auto") is False

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            use_shm_for(100, "carrier-pigeon")


# ---------------------------------------------------------------------------
# SharedMatrix handles
# ---------------------------------------------------------------------------


@needs_shm
class TestSharedMatrix:
    @pytest.mark.parametrize("order", ["C", "F"])
    def test_roundtrip_preserves_values_and_order(self, order):
        a = np.asarray(random_matrix(17, seed=1), order=order)
        with SegmentRegistry(sweep=False) as reg:
            handle = SharedMatrix.create(a, registry=reg)
            assert handle.order == order
            view = handle.attach()
            np.testing.assert_array_equal(view, a)
            assert view.flags.f_contiguous == a.flags.f_contiguous
            del view

    def test_views_are_read_only_by_default(self):
        a = random_matrix(8, seed=2)
        with SegmentRegistry(sweep=False) as reg:
            handle = SharedMatrix.create(a, registry=reg)
            view = handle.attach()
            with pytest.raises(ValueError):
                view[0, 0] = 99.0
            writable = handle.attach(writable=True)
            writable[0, 0] = 99.0
            assert handle.attach()[0, 0] == 99.0
            del view, writable

    def test_handle_is_tiny_and_json_roundtrips(self):
        a = random_matrix(64, seed=3)
        with SegmentRegistry(sweep=False) as reg:
            handle = SharedMatrix.create(a, registry=reg)
            assert len(pickle.dumps(handle)) < 256 < a.nbytes
            back = SharedMatrix.from_json(json.loads(json.dumps(handle.to_json())))
            assert back == handle
            assert back.nbytes == a.nbytes

    def test_registryless_create_and_unlink(self):
        a = random_matrix(6, seed=4)
        handle = SharedMatrix.create(a)
        try:
            np.testing.assert_array_equal(np.array(handle.attach()), a)
        finally:
            shm_mod.detach_all()
            assert handle.unlink() is True
        assert handle.unlink() is False  # idempotent: already gone

    def test_attach_gone_segment_raises(self):
        handle = SharedMatrix(name="repro-shm-1-deadbeef", shape=(4, 4), dtype="float64")
        with pytest.raises(TransportError):
            handle.attach()


# ---------------------------------------------------------------------------
# SegmentRegistry
# ---------------------------------------------------------------------------


@needs_shm
class TestSegmentRegistry:
    def test_refcount_unlinks_at_zero(self):
        a = random_matrix(8, seed=5)
        reg = SegmentRegistry(sweep=False)
        handle = SharedMatrix.create(a, registry=reg)  # refs=1
        reg.acquire(handle.name)  # refs=2
        reg.release(handle.name)  # refs=1, still live
        assert handle.name in reg
        reg.release(handle.name)  # refs=0 -> unlink
        assert handle.name not in reg
        assert reg.unlinked == 1
        assert not os.path.exists(f"/dev/shm/{handle.name}")

    def test_unlink_all_and_idempotency(self):
        reg = SegmentRegistry(sweep=False)
        handles = [
            SharedMatrix.create(random_matrix(8, seed=s), registry=reg)
            for s in range(3)
        ]
        assert len(reg) == 3
        assert reg.unlink_all() == 3
        assert len(reg) == 0
        assert reg.unlink_all() == 0
        for h in handles:
            assert not os.path.exists(f"/dev/shm/{h.name}")
        reg.unlink(handles[0].name)  # unlinking the gone is a no-op

    def test_adopt_foreign_and_materialize(self):
        a = random_matrix(12, seed=6)
        handle = SharedMatrix.create(a)  # unowned, as a worker would
        reg = SegmentRegistry(sweep=False)
        assert reg.adopt_foreign(handle, refs=0) is True
        assert reg.adopt_foreign(handle, refs=0) is True  # idempotent
        assert reg.adopted == 1
        reg.acquire(handle.name)
        out = reg.materialize(handle)  # copies, drops the last ref
        np.testing.assert_array_equal(out, a)
        assert handle.name not in reg
        assert not os.path.exists(f"/dev/shm/{handle.name}")
        out[0, 0] = 7.0  # the copy is private

    def test_adopt_foreign_gone_segment(self):
        reg = SegmentRegistry(sweep=False)
        handle = SharedMatrix(name="repro-shm-1-feedf00d", shape=(4, 4), dtype="float64")
        assert reg.adopt_foreign(handle) is False

    def test_stats_shape(self):
        reg = SegmentRegistry(sweep=False)
        SharedMatrix.create(random_matrix(8, seed=7), registry=reg)
        stats = reg.stats()
        assert stats["live_segments"] == 1
        assert stats["created"] == 1
        assert stats["bytes_shared"] == 8 * 8 * 8
        json.dumps(stats)
        reg.unlink_all()

    @pytest.mark.skipif(not sys.platform.startswith("linux"), reason="/dev/shm only")
    def test_sweep_reclaims_dead_owner_segments(self):
        # forge a segment whose embedded creator pid is certainly dead
        dead = 2**22 + 12345
        name = f"repro-shm-{dead}-cafef00d"
        path = f"/dev/shm/{name}"
        with open(path, "wb") as fh:
            fh.write(b"\0" * 64)
        try:
            assert name in sweep_stale_segments()
            assert not os.path.exists(path)
        finally:
            if os.path.exists(path):
                os.unlink(path)

    @pytest.mark.skipif(not sys.platform.startswith("linux"), reason="/dev/shm only")
    def test_sweep_spares_live_owner_and_excluded(self):
        reg = SegmentRegistry(sweep=False)
        handle = SharedMatrix.create(random_matrix(8, seed=8), registry=reg)
        assert sweep_stale_segments() == []  # our pid is alive
        assert reg.sweep() == 0
        assert os.path.exists(f"/dev/shm/{handle.name}")
        reg.unlink_all()


@needs_shm
def test_interpreter_exit_is_clean():
    """A process that creates segments and just exits must leave no
    segments behind and print no resource_tracker noise on stderr."""
    script = """
import numpy as np
from repro.utils.shm import SegmentRegistry, SharedMatrix

reg = SegmentRegistry(sweep=False)
h1 = SharedMatrix.create(np.random.default_rng(0).random((64, 64)), registry=reg)
h2 = SharedMatrix.create(np.random.default_rng(1).random((32, 32)))  # unowned
reg.adopt_foreign(h2)
view = h1.attach()
print(h1.name, h2.name)
# no cleanup on purpose: the registry finalizer must do it at exit
"""
    env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True,
        env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "Traceback" not in proc.stderr, proc.stderr
    assert "resource_tracker" not in proc.stderr, proc.stderr
    for name in proc.stdout.split():
        assert not os.path.exists(f"/dev/shm/{name}"), f"{name} leaked"


# ---------------------------------------------------------------------------
# zero-copy hashing
# ---------------------------------------------------------------------------


class TestHashUpdateArray:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(12.0).reshape(3, 4),               # C-contiguous
            np.asfortranarray(np.arange(12.0).reshape(3, 4)),  # F-contiguous
            np.arange(24.0).reshape(4, 6)[::2, ::2],     # non-contiguous
        ],
    )
    def test_digest_matches_tobytes_idiom(self, arr):
        h1, h2 = hashlib.sha256(), hashlib.sha256()
        hash_update_array(h1, arr)
        h2.update(np.ascontiguousarray(arr).tobytes())
        assert h1.hexdigest() == h2.hexdigest()

    def test_fingerprint_digest_is_stable(self):
        # the serve cache keys on this digest; it must not change when
        # the hashing path does
        a = random_matrix(16, seed=9)
        spec = JobSpec(driver="gehrd", n=16, matrix=a)
        m = np.asarray(a, dtype=np.float64)
        h = hashlib.sha256()
        h.update(repr((m.shape, str(m.dtype))).encode())
        h.update(np.ascontiguousarray(m).tobytes())
        assert spec.matrix_fingerprint() == f"sha256:{h.hexdigest()[:16]}"


# ---------------------------------------------------------------------------
# JobSpec handle-awareness
# ---------------------------------------------------------------------------


@needs_shm
class TestJobSpecHandles:
    def test_spec_with_handle_validates_and_serializes(self):
        a = random_matrix(24, seed=10)
        with SegmentRegistry(sweep=False) as reg:
            handle = SharedMatrix.create(a, registry=reg)
            spec = JobSpec(driver="gehrd", n=24, matrix=handle)
            spec.validate()
            assert spec.order == 24
            # handles are transport artifacts, not portable descriptions
            assert spec.to_json()["matrix"] is None
            shm_mod.detach_all()

    def test_return_factors_validation(self):
        JobSpec(driver="gehrd", n=8, return_factors=True).validate()
        with pytest.raises(Exception):
            JobSpec(driver="campaign", n=8, return_factors=True).validate()
        with pytest.raises(Exception):
            JobSpec(driver="ft_gehrd", n=8, functional=False,
                    return_factors=True).validate()
        # return_factors is part of the content key
        k1 = JobSpec(driver="gehrd", n=8).key
        k2 = JobSpec(driver="gehrd", n=8, return_factors=True).key
        assert k1 != k2


# ---------------------------------------------------------------------------
# campaign executor over the data plane
# ---------------------------------------------------------------------------


@pytest.mark.slow
@needs_shm
class TestCampaignTransport:
    def test_shm_pickle_serial_parity(self):
        n, nb = 64, 16
        a = random_matrix(n, seed=0)
        cfg = FTConfig(nb=nb)
        tasks = build_fault_grid(n, nb, moments=2, seed=0)
        serial = run_ft_trials(a, tasks, cfg, residual_tol=1e-13, workers=1)
        shm = run_ft_trials(a, tasks, cfg, residual_tol=1e-13, workers=2,
                            transport="shm")
        pkl = run_ft_trials(a, tasks, cfg, residual_tol=1e-13, workers=2,
                            transport="pickle")
        for x, y, z in zip(serial, shm, pkl):
            assert x.outcome == y.outcome == z.outcome
            assert x.residual == pytest.approx(y.residual)
            assert x.residual == pytest.approx(z.residual)

    def test_crash_rebuild_leaves_no_segments(self, tmp_path):
        n, nb = 64, 16
        a = random_matrix(n, seed=0)
        tasks = build_fault_grid(n, nb, moments=2, seed=0)
        out = run_ft_trials(
            a, tasks, FTConfig(nb=nb), residual_tol=1e-13, workers=2,
            transport="shm", crash_index=1,
            crash_once_path=str(tmp_path / "crashed"),
        )
        assert len(out) == len(tasks)
        # the chunk lost to the crash was retried on the rebuilt pool
        assert all(t.outcome != "aborted" for t in out)
        # leak check is the autouse fixture's job; also assert eagerly:
        assert not [f for f in os.listdir("/dev/shm")
                    if f.startswith("repro-shm")]


# ---------------------------------------------------------------------------
# the batch service over the data plane
# ---------------------------------------------------------------------------


@pytest.mark.slow
@needs_shm
class TestServeDataPlane:
    def test_inline_matrices_cross_via_shm(self):
        n = 48
        mats = [random_matrix(n, seed=s) for s in range(2)]
        with HessService(workers=2, transport="shm", shm_min_bytes=0,
                         small_n_threshold=0, cache_bytes=0) as svc:
            specs = [JobSpec(driver="gehrd", n=n, matrix=mats[i % 2])
                     for i in range(4)]
            subs = svc.submit_batch(specs)
            assert all(s.accepted for s in subs)
            svc.drain(timeout=300)
            results = [svc.peek(s.job_id) for s in subs]
            assert all(r.status == "done" for r in results)
            # duplicates coalesced onto the in-flight work item => at
            # most one segment per distinct matrix was ever created
            stats = svc.stats()
            assert stats["data_plane"]["transport"] == "shm"
            assert stats["counts"].get("shm_matrices", 0) >= 1
            assert stats["data_plane"]["live_segments"] == 0  # all drained

    def test_results_match_pickle_transport(self):
        n = 48
        a = random_matrix(n, seed=1)
        payloads = {}
        for transport in ("pickle", "shm"):
            with HessService(workers=1, transport=transport, shm_min_bytes=0,
                             small_n_threshold=0, cache_bytes=0) as svc:
                sub = svc.submit(JobSpec(driver="ft_gehrd", n=n, matrix=a))
                res = svc.result(sub.job_id, timeout=300)
                assert res.status == "done", res.error
                payloads[transport] = res.payload
        assert payloads["pickle"]["residual"] == pytest.approx(
            payloads["shm"]["residual"]
        )

    def test_return_factors_shm_lazy_materialization(self):
        n = 48
        a = random_matrix(n, seed=2)
        with HessService(workers=1, transport="shm", shm_min_bytes=0,
                         small_n_threshold=0) as svc:
            sub = svc.submit(JobSpec(driver="gehrd", n=n, matrix=a,
                                     return_factors=True))
            res = svc.result(sub.job_id, timeout=300)
            assert res.status == "done", res.error
            assert res.has_factors
            # payload carries references, and to_json stays JSON-safe
            json.dumps(res.to_json())
            h, q = res.factor("h"), res.factor("q")
            assert np.linalg.norm(q @ h @ q.T - a) <= 1e-12 * np.linalg.norm(a)
            assert res.factor("h") is h  # cached
            with pytest.raises(KeyError):
                res.factor("nope")
        # materialized copies survive the service shutdown
        assert np.isfinite(h).all()

    def test_return_factors_inline_path(self):
        # in-thread lane: no process line to cross, factors ship inline
        n = 16
        with HessService(workers=1, small_n_threshold=64) as svc:
            sub = svc.submit(JobSpec(driver="gehrd", n=n, seed=3,
                                     return_factors=True))
            res = svc.result(sub.job_id, timeout=300)
            assert res.status == "done", res.error
            refs = res.payload["factors"]
            assert "data" in refs["h"] and "data" in refs["q"]
            h, q = res.factors["h"], res.factors["q"]
            a = random_matrix(n, seed=3)
            assert np.linalg.norm(q @ h @ q.T - a) <= 1e-12 * np.linalg.norm(a)

    def test_cancel_midflight_keeps_hygiene(self):
        n = 48
        mats = [random_matrix(n, seed=s) for s in range(4)]
        with HessService(workers=1, transport="shm", shm_min_bytes=0,
                         small_n_threshold=0, cache_bytes=0) as svc:
            subs = [svc.submit(JobSpec(driver="gehrd", n=n, matrix=m))
                    for m in mats]
            # cancel whatever is still queued behind the running job
            for sub in subs[1:]:
                svc.cancel(sub.job_id)
            svc.drain(timeout=300)
            assert svc.stats()["data_plane"]["live_segments"] == 0
        # the autouse leak guard asserts /dev/shm is clean afterwards

    def test_forced_shm_unavailable_raises(self, monkeypatch):
        monkeypatch.setattr("repro.serve.scheduler.shm_available", lambda: False)
        with pytest.raises(TransportError):
            HessService(transport="shm")


# ---------------------------------------------------------------------------
# cache blob reuse (satellite: encode once)
# ---------------------------------------------------------------------------


class TestCacheBlob:
    def test_entry_encodes_once_and_nbytes_uses_blob(self):
        payload = {"x": list(range(50))}
        entry = _Entry(payload)
        assert entry.nbytes == len(entry.blob)
        assert json.loads(entry.blob) == payload

    def test_spill_reuses_the_blob(self, tmp_path, monkeypatch):
        import repro.serve.cache as cache_mod

        payload = {"big": "y" * 4096, "n": 1}
        calls = []
        real_dumps = cache_mod.json.dumps

        def counting(obj, *args, **kwargs):
            calls.append(obj)
            return real_dumps(obj, *args, **kwargs)

        monkeypatch.setattr(cache_mod.json, "dumps", counting)
        cache = ResultCache(max_bytes=64, spill_dir=tmp_path)  # oversized -> spill
        cache.put("k1", payload)
        # the payload dict was serialized exactly once (the _Entry blob);
        # the spill wrapper only re-encodes the key string
        payload_dumps = [c for c in calls if isinstance(c, dict) and "big" in c]
        assert len(payload_dumps) == 1
        assert cache.stats.spill_writes == 1
        monkeypatch.undo()
        # and the spill file is valid JSON that round-trips the payload
        assert cache.get("k1") == payload
        assert cache.stats.spill_hits == 1


# ---------------------------------------------------------------------------
# executor/service still honest without shm (pickle fallback)
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_pickle_fallback_campaign_parity():
    n, nb = 48, 16
    a = random_matrix(n, seed=0)
    tasks = build_fault_grid(n, nb, moments=2, seed=0)
    serial = run_ft_trials(a, tasks, FTConfig(nb=nb), residual_tol=1e-13, workers=1)
    pooled = run_ft_trials(a, tasks, FTConfig(nb=nb), residual_tol=1e-13, workers=2,
                           transport="pickle")
    assert [t.outcome for t in serial] == [t.outcome for t in pooled]
