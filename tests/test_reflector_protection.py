"""Tests for reflector-storage protection in the extension drivers —
errors striking the packed Householder vectors (never re-read by the
factorization, silently corrupting the orthogonal factor) are caught by
the end-of-run checks, the analogue of the paper's Q protection."""

import numpy as np
import pytest

from repro.core import ft_gebd2, ft_geqrf, ft_sytrd
from repro.faults import FaultInjector, FaultSpec
from repro.linalg import (
    bidiagonal_of,
    factorization_residual,
    orgbr_p,
    orgbr_q,
    orgqr,
    qr_residual,
    r_of,
)
from repro.linalg.sytd2 import orgtr, tridiagonal_of
from repro.utils.rng import MatrixKind, random_matrix


class TestTridiagReflectorProtection:
    def test_v_storage_corruption_corrected(self):
        """Hit the packed reflector of an already-finished column."""
        a0 = random_matrix(64, MatrixKind.SYMMETRIC, seed=1)
        # column 5 finishes at step 5; strike its stored vector at step 20
        inj = FaultInjector().add(FaultSpec(iteration=20, row=40, col=5, magnitude=0.5))
        res = ft_sytrd(a0, injector=inj)
        t = tridiagonal_of(res.a)
        q = orgtr(res.a, res.taus)
        assert factorization_residual(a0, q, t) < 1e-12

    def test_finished_band_corruption_detected(self):
        """The finished tridiagonal band IS in the audit's mathematical
        matrix — corrupting it trips tier-2 (unlike Hessenberg's
        unprotected finished-H region)."""
        a0 = random_matrix(64, MatrixKind.SYMMETRIC, seed=2)
        inj = FaultInjector().add(FaultSpec(iteration=20, row=5, col=5, magnitude=1.0))
        res = ft_sytrd(a0, injector=inj, audit_every=8)
        t = tridiagonal_of(res.a)
        q = orgtr(res.a, res.taus)
        assert factorization_residual(a0, q, t) < 1e-12


class TestBidiagReflectorProtection:
    def test_column_reflector_corruption(self):
        a0 = random_matrix(64, seed=3)
        inj = FaultInjector().add(FaultSpec(iteration=30, row=20, col=4, magnitude=0.5))
        res = ft_gebd2(a0, injector=inj)
        b = bidiagonal_of(res.a)
        q = orgbr_q(res.a, res.tau_q)
        p = orgbr_p(res.a, res.tau_p)
        resid = np.linalg.norm(a0 - q @ b @ p.T, 1) / np.linalg.norm(a0, 1)
        assert resid < 1e-12

    def test_row_reflector_corruption(self):
        """Strike the stored ROW reflector (right of the superdiagonal of
        a finished row) — covered by the transposed protector."""
        a0 = random_matrix(64, seed=4)
        inj = FaultInjector().add(FaultSpec(iteration=30, row=4, col=20, magnitude=0.5))
        res = ft_gebd2(a0, injector=inj)
        b = bidiagonal_of(res.a)
        q = orgbr_q(res.a, res.tau_q)
        p = orgbr_p(res.a, res.tau_p)
        resid = np.linalg.norm(a0 - q @ b @ p.T, 1) / np.linalg.norm(a0, 1)
        assert resid < 1e-12


class TestQRReflectorProtection:
    def test_v_storage_corruption_corrected(self):
        a0 = random_matrix(96, seed=5)
        # panel 0's reflectors finish first; strike one during panel 2
        inj = FaultInjector().add(FaultSpec(iteration=2, row=50, col=3, magnitude=0.5))
        res = ft_geqrf(a0, nb=32, injector=inj)
        q = orgqr(res.a, res.taus)
        assert qr_residual(a0, q, r_of(res.a)) < 1e-12

    def test_no_false_positive_from_protection(self):
        a0 = random_matrix(96, seed=6)
        res = ft_geqrf(a0, nb=32)
        assert res.detections == 0
