"""Tests for error location: single errors, checksum-element errors, and
the multi-error peeling decoder (paper §IV-F + the non-rectangle claim)."""

import numpy as np
import pytest

from repro.abft import EncodedMatrix, decode_residuals, locate_errors
from repro.errors import UncorrectableError
from repro.utils.rng import random_matrix


def _em(n=24, seed=0):
    a = random_matrix(n, seed=seed)
    return EncodedMatrix(a), float(np.linalg.norm(a, 1))


class TestSingleError:
    def test_locates_data_error(self):
        em, norm_a = _em(seed=1)
        em.data[7, 11] += 3.25
        rep = locate_errors(em, 0, norm_a)
        assert rep.count == 1
        e = rep.errors[0]
        assert (e.kind, e.row, e.col) == ("data", 7, 11)
        assert e.magnitude == pytest.approx(3.25, rel=1e-10)

    def test_locates_row_checksum_error(self):
        em, norm_a = _em(seed=2)
        em.ext[5, em.n] += 2.0
        rep = locate_errors(em, 0, norm_a)
        assert rep.count == 1
        e = rep.errors[0]
        assert (e.kind, e.row) == ("row_checksum", 5)
        assert e.magnitude == pytest.approx(2.0, rel=1e-10)

    def test_locates_col_checksum_error(self):
        em, norm_a = _em(seed=3)
        em.ext[em.n, 9] -= 1.5
        rep = locate_errors(em, 0, norm_a)
        e = rep.errors[0]
        assert (e.kind, e.col) == ("col_checksum", 9)
        assert e.magnitude == pytest.approx(-1.5, rel=1e-10)

    def test_clean_matrix_locates_nothing(self):
        em, norm_a = _em(seed=4)
        assert locate_errors(em, 0, norm_a).count == 0

    def test_respects_q_region_mask(self):
        """An error in the Q region of finished columns must NOT register
        (those sums exclude the reflector storage)."""
        em, norm_a = _em(seed=5)
        finished = 6
        em.refresh_finished_segment(0, finished)
        # recompute row checksums against the masked matrix to emulate a
        # consistent mid-factorization state
        em.ext[: em.n, em.n] = em.fresh_row_sums(finished)
        em.data[10, 2] += 4.0  # (10, 2): i >= j+2, j < finished → Q region
        assert locate_errors(em, finished, norm_a).count == 0


class TestMultiError:
    def test_two_errors_different_rows_and_cols(self):
        em, norm_a = _em(seed=6)
        em.data[3, 4] += 1.0
        em.data[10, 15] += 2.0
        rep = locate_errors(em, 0, norm_a)
        got = {(e.row, e.col, round(e.magnitude, 6)) for e in rep.errors}
        assert got == {(3, 4, 1.0), (10, 15, 2.0)}

    def test_two_errors_same_row(self):
        em, norm_a = _em(seed=7)
        em.data[5, 2] += 1.0
        em.data[5, 9] += 2.0
        rep = locate_errors(em, 0, norm_a)
        got = {(e.row, e.col, round(e.magnitude, 6)) for e in rep.errors}
        assert got == {(5, 2, 1.0), (5, 9, 2.0)}

    def test_two_errors_same_col(self):
        em, norm_a = _em(seed=8)
        em.data[2, 6] += 1.0
        em.data[9, 6] += 2.5
        rep = locate_errors(em, 0, norm_a)
        got = {(e.row, e.col, round(e.magnitude, 6)) for e in rep.errors}
        assert got == {(2, 6, 1.0), (9, 6, 2.5)}

    def test_three_errors_l_shape_is_ambiguous(self):
        """An L-shaped triple spanning 2 rows x 2 cols is *provably*
        ambiguous from line sums alone: with residuals dr=[3,4],
        dc=[1,6], every a gives a consistent support
        {(1,1)=a, (1,8)=3-a, (12,1)=1-a, (12,8)=3+a} — including two
        distinct non-rectangular 3-cell solutions (a=0 and a=1). The
        paper's "not a rectangle" condition is therefore necessary but
        not sufficient; the decoder must refuse rather than guess.
        (Documented in EXPERIMENTS.md as a refinement of §I's claim.)"""
        em, norm_a = _em(seed=9)
        em.data[1, 1] += 1.0
        em.data[1, 8] += 2.0
        em.data[12, 8] += 4.0
        with pytest.raises(UncorrectableError):
            locate_errors(em, 0, norm_a)

    def test_three_errors_distinct_lines_decode(self):
        """Three errors on pairwise-distinct rows and columns peel by
        unique magnitude matching."""
        em, norm_a = _em(seed=12)
        em.data[1, 2] += 1.0
        em.data[6, 9] += 2.0
        em.data[14, 17] += 4.0
        rep = locate_errors(em, 0, norm_a)
        got = {(e.row, e.col, round(e.magnitude, 6)) for e in rep.errors}
        assert got == {(1, 2, 1.0), (6, 9, 2.0), (14, 17, 4.0)}

    def test_rectangle_pattern_raises(self):
        """The paper's stated uncorrectable configuration."""
        em, norm_a = _em(seed=10)
        em.data[2, 3] += 1.0
        em.data[2, 7] += 2.0
        em.data[11, 3] += 2.0
        em.data[11, 7] += 1.0
        with pytest.raises(UncorrectableError):
            locate_errors(em, 0, norm_a)

    def test_mixed_data_and_checksum_error_consistency_guard(self):
        """A data error plus a checksum-element hit in the same column
        triggers the consistency check rather than silent miscorrection."""
        em, norm_a = _em(seed=11)
        em.data[4, 6] += 1.0
        em.ext[9, em.n] += 5.0  # row-checksum element
        with pytest.raises(UncorrectableError):
            locate_errors(em, 0, norm_a)


class TestDecodeResiduals:
    def test_empty_residuals(self):
        errs = decode_residuals(np.zeros(5), np.zeros(5), 1e-12)
        assert errs == []

    def test_tolerance_respected(self):
        dr = np.array([0.0, 1e-14, 0.0])
        dc = np.array([1e-14, 0.0, 0.0])
        assert decode_residuals(dr, dc, 1e-12) == []
