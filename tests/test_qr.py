"""Tests for the QR substrate and the one-sided FT-QR comparator."""

import numpy as np
import pytest

from repro.core import ft_geqrf
from repro.errors import ConvergenceError, ShapeError, UncorrectableError
from repro.faults import FaultInjector, FaultSpec
from repro.linalg import geqr2, geqrf, orgqr, qr_residual, r_of
from repro.utils.rng import MatrixKind, random_matrix


def _verify(a0, res):
    q = orgqr(res.a, res.taus)
    r = r_of(res.a)
    n = a0.shape[0]
    return qr_residual(a0, q, r), float(np.linalg.norm(q @ q.T - np.eye(n), 1)) / n


class TestGeqrf:
    @pytest.mark.parametrize("n,nb", [(8, 4), (31, 8), (64, 16), (100, 32)])
    def test_correctness(self, n, nb):
        a0 = random_matrix(n, seed=n + nb)
        a = a0.copy(order="F")
        taus = geqrf(a, nb=nb)
        q = orgqr(a, taus)
        r = r_of(a)
        assert qr_residual(a0, q, r) < 1e-14
        assert np.linalg.norm(q @ q.T - np.eye(n), 1) < 1e-12

    def test_r_is_upper_triangular(self):
        a = random_matrix(20, seed=1).copy(order="F")
        geqrf(a, nb=8)
        r = r_of(a)
        np.testing.assert_array_equal(np.tril(r, -1), 0.0)

    def test_blocked_matches_unblocked(self):
        a0 = random_matrix(40, seed=2)
        ab = a0.copy(order="F")
        au = a0.copy(order="F")
        geqrf(ab, nb=8)
        geqr2(au)
        np.testing.assert_allclose(np.abs(np.diag(ab)), np.abs(np.diag(au)), atol=1e-12)

    def test_matches_numpy_r_magnitudes(self):
        a0 = random_matrix(30, seed=3)
        a = a0.copy(order="F")
        geqrf(a, nb=8)
        ref = np.abs(np.diag(np.linalg.qr(a0, mode="r")))
        np.testing.assert_allclose(np.abs(np.diag(a)), ref, atol=1e-12)

    def test_checksum_columns_ride_along(self):
        """The one-sided ABFT invariant: left transforms preserve
        [A | Ae] exactly."""
        n = 24
        a0 = random_matrix(n, seed=4)
        ext = np.zeros((n, n + 1), order="F")
        ext[:, :n] = a0
        ext[:, n] = a0 @ np.ones(n)
        geqrf(ext, nb=8, ncols_apply=n + 1)
        # rows of the MATHEMATICAL matrix (packed reflector storage below
        # the diagonal counts as zero): checksum col == row sums
        math = np.triu(ext[:, :n])
        np.testing.assert_allclose(ext[:, n], math @ np.ones(n), atol=1e-11)


class TestFTQR:
    @pytest.mark.parametrize("n,nb", [(48, 16), (96, 32)])
    def test_no_error(self, n, nb):
        a0 = random_matrix(n, seed=n)
        res = ft_geqrf(a0, nb=nb)
        resid, orth = _verify(a0, res)
        assert resid < 1e-14 and orth < 1e-13
        assert res.detections == 0
        assert res.checks == -(-n // nb)  # one audit per panel

    def test_trailing_error_recovered(self):
        a0 = random_matrix(96, seed=5)
        inj = FaultInjector().add(FaultSpec(iteration=1, row=60, col=70, magnitude=2.0))
        res = ft_geqrf(a0, nb=32, injector=inj)
        resid, _ = _verify(a0, res)
        assert resid < 1e-13
        e = res.recoveries[0].errors[0]
        assert (e.row, e.col) == (60, 70)

    def test_error_in_current_panel(self):
        a0 = random_matrix(96, seed=6)
        inj = FaultInjector().add(FaultSpec(iteration=0, row=50, col=20, magnitude=1.5))
        res = ft_geqrf(a0, nb=32, injector=inj)
        resid, _ = _verify(a0, res)
        assert resid < 1e-13

    def test_finished_r_region_error(self):
        """An error in the already-finished upper part of R is never
        touched again by the factorization but IS covered by the audits
        (the masked row sums include it)."""
        a0 = random_matrix(96, seed=7)
        inj = FaultInjector().add(FaultSpec(iteration=2, row=5, col=40, magnitude=1.0))
        res = ft_geqrf(a0, nb=32, injector=inj)
        resid, _ = _verify(a0, res)
        assert resid < 1e-13
        assert res.detections == 1

    def test_checksum_column_error(self):
        a0 = random_matrix(96, seed=8)
        inj = FaultInjector().add(
            FaultSpec(iteration=1, row=30, col=-1, space="row_checksum", magnitude=4.0)
        )
        res = ft_geqrf(a0, nb=32, injector=inj)
        resid, _ = _verify(a0, res)
        assert resid < 1e-13
        assert res.recoveries[0].errors[0].kind == "row_checksum"

    def test_single_channel_detects_but_refuses(self):
        """The comparison point with the paper's two-sided design: a
        single-channel one-sided encoding cannot localize the column."""
        a0 = random_matrix(96, seed=9)
        inj = FaultInjector().add(FaultSpec(iteration=1, row=60, col=70, magnitude=2.0))
        with pytest.raises(UncorrectableError):
            ft_geqrf(a0, nb=32, channels=1, injector=inj)

    def test_two_errors_different_panels(self):
        a0 = random_matrix(96, seed=10)
        inj = FaultInjector()
        inj.add(FaultSpec(iteration=0, row=40, col=50, magnitude=1.0))
        inj.add(FaultSpec(iteration=2, row=80, col=90, magnitude=2.0))
        res = ft_geqrf(a0, nb=32, injector=inj)
        resid, _ = _verify(a0, res)
        assert resid < 1e-13
        assert res.detections == 2

    def test_retry_budget(self):
        a0 = random_matrix(64, seed=11)
        inj = FaultInjector().add(FaultSpec(iteration=0, row=30, col=40, magnitude=1.0))
        with pytest.raises(ConvergenceError):
            ft_geqrf(a0, nb=32, injector=inj, max_retries=0)

    def test_rejects_nonsquare(self):
        with pytest.raises(ShapeError):
            ft_geqrf(np.zeros((3, 4)))

    def test_matrix_families(self):
        for kind in (MatrixKind.GRADED, MatrixKind.WELL_CONDITIONED):
            a0 = random_matrix(64, kind, seed=12)
            inj = FaultInjector().add(
                FaultSpec(iteration=1, row=50, col=55, magnitude=1.0)
            )
            res = ft_geqrf(a0, nb=32, injector=inj)
            resid, _ = _verify(a0, res)
            assert resid < 1e-13
