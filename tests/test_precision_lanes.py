"""The float32 precision lane: V-ABFT false-positive immunity, lane
plumbing, scalar/batched parity, and the serve tier's dtype handling.

The float64 byte-parity guarantees live in ``test_kernel_golden.py`` and
``test_batch_golden.py`` (unchanged); this module covers everything the
fp32 lane adds on top.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.abft.detection import (
    DEFAULT_SIGMA_FACTOR,
    Detector,
    ThresholdPolicy,
    checksum_second_moment,
)
from repro.abft.encoding import EncodedMatrix
from repro.batch import ft_gehrd_batched, gehrd_batched
from repro.core import FTConfig, ft_gehrd
from repro.errors import DetectionError, ShapeError
from repro.faults import FaultInjector, FaultSpec, run_campaign
from repro.linalg import extract_hessenberg, factorization_residual, gehrd, orghr
from repro.perf.workspace import Workspace
from repro.serve.jobs import (
    JobSpec,
    JobSpecError,
    batch_group_key,
    execute_job,
)
from repro.utils.precision import as_lane_matrix, lane_dtype, lane_eps, lane_scale
from repro.utils.rng import MatrixKind, random_matrix

SLOW = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ---------------------------------------------------------------------------
# lane helpers
# ---------------------------------------------------------------------------


class TestLaneHelpers:
    def test_lane_dtype_canonicalizes(self):
        assert lane_dtype("float32") == np.float32
        assert lane_dtype(np.float64) == np.float64
        assert lane_dtype(None) == np.float64

    def test_non_lane_dtype_rejected(self):
        with pytest.raises(ShapeError):
            lane_dtype(np.int32)
        with pytest.raises(ShapeError):
            lane_dtype("float16")

    def test_lane_eps_and_scale(self):
        assert lane_eps(np.float64) == 2.0**-52
        assert lane_eps("float32") == 2.0**-23
        assert lane_scale(np.float64) == 1.0
        assert lane_scale(np.float32) == 2.0**29
        # non-lane dtypes scale like float64 (the coercion target)
        assert lane_scale(np.int64) == 1.0

    def test_as_lane_matrix_preserves_fp32(self):
        a32 = random_matrix(8, seed=0, dtype=np.float32)
        out = as_lane_matrix(a32)
        assert out.dtype == np.float32 and out.flags.f_contiguous
        assert as_lane_matrix(np.ones((3, 3), dtype=np.int64)).dtype == np.float64

    def test_random_matrix_fp32_is_rounded_fp64(self):
        # recipes draw in float64 and cast: same mathematical matrix
        for kind in MatrixKind:
            a64 = random_matrix(16, kind, seed=5)
            a32 = random_matrix(16, kind, seed=5, dtype=np.float32)
            assert a32.dtype == np.float32
            assert np.array_equal(a32, a64.astype(np.float32))


# ---------------------------------------------------------------------------
# threshold policy: auto dispatch and the variance kind
# ---------------------------------------------------------------------------


class TestVarianceThreshold:
    def test_auto_resolves_per_dtype(self):
        pol = ThresholdPolicy()
        assert pol.resolve(np.float64) == "norm"
        assert pol.resolve(np.float32) == "variance"
        assert not pol.needs_m2(np.float64)
        assert pol.needs_m2(np.float32)

    def test_auto_is_byte_identical_to_norm_at_fp64(self):
        pol = ThresholdPolicy()
        norm = ThresholdPolicy(kind="norm")
        assert pol.threshold(64, 10.0, 1.0, 1.0) == norm.threshold(64, 10.0, 1.0, 1.0)

    def test_variance_threshold_formula(self):
        pol = ThresholdPolicy(kind="variance")
        n, m2 = 64, 123.5
        want = DEFAULT_SIGMA_FACTOR * lane_eps(np.float32) * np.sqrt(n * m2)
        got = pol.threshold(n, 1.0, 0.0, 0.0, dtype=np.float32, m2=m2)
        assert got == pytest.approx(want, rel=1e-12)

    def test_variance_without_m2_degrades_to_norm(self):
        pol = ThresholdPolicy(kind="variance")
        norm = ThresholdPolicy(kind="norm")
        got = pol.threshold(64, 10.0, 0.0, 0.0, dtype=np.float32)
        assert got == norm.threshold(64, 10.0, 0.0, 0.0, dtype=np.float32)

    def test_unknown_kind_still_raises(self):
        with pytest.raises(DetectionError):
            ThresholdPolicy(kind="bogus").threshold(8, 1.0, 0.0, 0.0)

    def test_second_moment_matches_banks(self):
        a = random_matrix(24, seed=1, dtype=np.float32)
        em = EncodedMatrix(a.copy())
        rc = np.asarray(em.row_checksums, dtype=np.float64)
        cc = np.asarray(em.col_checksums, dtype=np.float64)
        assert checksum_second_moment(em) == pytest.approx(
            float(rc @ rc + cc @ cc), rel=1e-12
        )

    def test_fp32_threshold_far_below_norm_bound(self):
        # the whole point of V-ABFT: the adaptive bar sits well under the
        # fp32 norm bound, keeping detection useful at single precision
        a = random_matrix(64, seed=2, dtype=np.float32)
        em = EncodedMatrix(a.copy())
        pol = ThresholdPolicy()
        adaptive = pol.threshold(
            em.n, 40.0, 0.0, 0.0, dtype=np.float32, m2=checksum_second_moment(em)
        )
        norm_bound = ThresholdPolicy(kind="norm").threshold(
            em.n, 40.0, 0.0, 0.0, dtype=np.float32
        )
        assert adaptive < norm_bound / 10


# ---------------------------------------------------------------------------
# zero false positives on fault-free fp32 reductions (Hypothesis grid)
# ---------------------------------------------------------------------------


class TestFaultFreeFp32NoFalsePositives:
    @SLOW
    @given(
        seed=st.integers(0, 2**10),
        shape=st.sampled_from([(32, 8), (48, 16), (64, 16), (96, 32)]),
        kind=st.sampled_from(list(MatrixKind)),
        channels=st.sampled_from([1, 2]),
    )
    def test_clean_run_never_detects(self, seed, shape, kind, channels):
        n, nb = shape
        a = random_matrix(n, kind, seed=seed, dtype=np.float32)
        res = ft_gehrd(a, FTConfig(nb=nb, channels=channels))
        assert res.detections == 0
        assert res.restarts == 0
        assert not res.recoveries

    def test_clean_detector_gap_under_threshold_midrun(self):
        # the detector's own statistic stays under the adaptive bar on
        # every clean check, not just the final one
        a = random_matrix(96, seed=7, dtype=np.float32)
        res = ft_gehrd(a, FTConfig(nb=32, audit_every=1))
        assert res.detections == 0


# ---------------------------------------------------------------------------
# fp32 fault recovery parity with fp64
# ---------------------------------------------------------------------------


class TestFp32Recovery:
    @SLOW
    @given(
        seed=st.integers(0, 2**10),
        it=st.integers(0, 2),
        mag=st.floats(0.05, 1e3),
    )
    def test_random_single_fault_recovers(self, seed, it, mag):
        n, nb = 48, 16
        a = random_matrix(n, seed=seed, dtype=np.float32)
        inj = FaultInjector().add(
            FaultSpec(iteration=it, row=n // 2, col=n - 2, magnitude=mag)
        )
        res = ft_gehrd(a, FTConfig(nb=nb), injector=inj)
        q = orghr(res.a, res.taus)
        h = extract_hessenberg(res.a)
        tol = 1e-13 * lane_scale(np.float32) * max(1.0, mag)
        assert factorization_residual(a, q, h) < tol

    def test_campaign_outcomes_match_fp64(self):
        outcomes = {}
        for dt in (np.float64, np.float32):
            a = random_matrix(48, seed=1, dtype=dt)
            res = run_campaign(a, nb=16, moments=2, seed=0)
            outcomes[dt] = (res.recovery_rate, dict(res.outcome_counts))
        assert outcomes[np.float64][0] == outcomes[np.float32][0] == 1.0
        assert outcomes[np.float64][1] == outcomes[np.float32][1]

    def test_campaign_residual_tol_scales_with_lane(self):
        # an explicit fp64-calibrated bar would misgrade every fp32
        # trial as uncorrected; the default bar follows the lane eps
        a = random_matrix(32, seed=0, dtype=np.float32)
        res = run_campaign(a, nb=16, moments=2, seed=0)
        assert res.recovery_rate == 1.0
        assert res.outcome_counts.get("corrected", 0) == len(res.trials)


# ---------------------------------------------------------------------------
# scalar vs batched fp32 byte parity
# ---------------------------------------------------------------------------


class TestFp32BatchedParity:
    def test_gehrd_batched_matches_scalar_bytes(self):
        n, nb, b = 48, 16, 5
        mats = [random_matrix(n, seed=i, dtype=np.float32) for i in range(b)]
        facts = gehrd_batched(mats, nb=nb)
        for m, f in zip(mats, facts):
            ref = gehrd(m.copy(order="F"), nb=nb)
            assert f.a.dtype == np.float32
            assert np.array_equal(f.a, ref.a)
            assert np.array_equal(f.taus, ref.taus)

    def test_ft_gehrd_batched_matches_scalar_bytes(self):
        n, nb, b = 48, 16, 4
        mats = [random_matrix(n, seed=i, dtype=np.float32) for i in range(b)]
        cfg = FTConfig(nb=nb)
        br = ft_gehrd_batched(mats, cfg)
        assert not br.ejected and not br.errors
        for m, r in zip(mats, br.results):
            ref = ft_gehrd(m.copy(order="F"), cfg)
            assert ref.detections == 0
            assert np.array_equal(r.a, ref.a)
            assert np.array_equal(r.taus, ref.taus)


# ---------------------------------------------------------------------------
# workspace pools are dtype-keyed
# ---------------------------------------------------------------------------


class TestWorkspaceLanes:
    def test_pools_are_per_dtype(self):
        ws = Workspace()
        b64 = ws.buf("x", (4, 4))
        b32 = ws.buf("x", (4, 4), dtype=np.float32)
        assert b64.dtype == np.float64 and b32.dtype == np.float32
        assert not np.shares_memory(b64, b32)
        assert ws.buffers == 2

    def test_presize_fp32_allocates_fp32_pools(self):
        ws = Workspace()
        ws.presize(32, 8, 1, dtype=np.float32)
        before = ws.nbytes
        v = ws.buf("lahr2.y", (32, 8), dtype=np.float32)
        assert v.dtype == np.float32
        assert ws.nbytes == before  # served from the presized pool


# ---------------------------------------------------------------------------
# serve tier: dtype in the content key, payloads, and batch buckets
# ---------------------------------------------------------------------------


class TestServeDtype:
    def test_dtype_in_content_key(self):
        s64 = JobSpec(driver="ft_gehrd", n=32, nb=16)
        s32 = JobSpec(driver="ft_gehrd", n=32, nb=16, dtype="float32")
        assert s64.key != s32.key
        assert s64.content_dict()["dtype"] == "float64"
        assert s32.content_dict()["dtype"] == "float32"

    def test_bad_dtype_rejected(self):
        with pytest.raises(JobSpecError):
            JobSpec(driver="ft_gehrd", n=32, dtype="float16").validate()

    def test_ft_sytrd_is_fp64_only(self):
        with pytest.raises(JobSpecError):
            JobSpec(driver="ft_sytrd", n=32, dtype="float32").validate()

    def test_inline_fp32_matrix_keeps_lane(self):
        a32 = random_matrix(24, seed=3, dtype=np.float32)
        spec = JobSpec(driver="ft_gehrd", n=24, matrix=a32)
        spec.validate()
        assert spec.lane == np.float32
        assert "float32" not in spec.matrix_fingerprint()  # hashed, not named
        rt = JobSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert rt.matrix.dtype == np.float32
        assert np.array_equal(rt.matrix, a32)
        assert rt.key == spec.key

    def test_batch_lane_buckets_by_dtype(self):
        s64 = JobSpec(driver="ft_gehrd", n=32, nb=16)
        s32 = JobSpec(driver="ft_gehrd", n=32, nb=16, dtype="float32")
        assert batch_group_key(s64) != batch_group_key(s32)

    def test_execute_job_fp32_clean(self):
        payload = execute_job(JobSpec(driver="ft_gehrd", n=32, nb=16, dtype="float32"))
        assert payload["detections"] == 0
        assert payload["residual"] < 1e-5

    def test_factors_round_trip_fp32(self):
        payload = execute_job(
            JobSpec(driver="gehrd", n=24, nb=8, dtype="float32", return_factors=True)
        )
        ref = payload["factors"]["h"]
        assert ref["dtype"] == "float32"
        h = np.asarray(ref["data"], dtype=ref["dtype"])
        assert h.dtype == np.float32
