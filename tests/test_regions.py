"""Tests for the Fig. 2a region partition and moment planning."""

import numpy as np
import pytest

from repro.errors import FaultConfigError
from repro.faults.regions import (
    AREA_FULL_PROPAGATION,
    AREA_NO_PROPAGATION,
    AREA_ROW_PROPAGATION,
    BEGIN,
    END,
    MIDDLE,
    Moment,
    classify,
    finished_cols_at,
    iteration_count,
    sample_in_area,
)


class TestClassify:
    def test_paper_fig2_examples(self):
        """The paper's three sites at N=158, nb=32, p=32 (0-based coords)."""
        n, p = 158, 32
        assert classify(52, 15, p, n) == AREA_NO_PROPAGATION
        assert classify(30, 126, p, n) == AREA_ROW_PROPAGATION
        assert classify(62, 126, p, n) == AREA_FULL_PROPAGATION

    def test_boundaries(self):
        n, p = 100, 40
        assert classify(0, 39, p, n) == AREA_NO_PROPAGATION   # last finished col
        assert classify(40, 40, p, n) == AREA_ROW_PROPAGATION  # row p is area 1
        assert classify(41, 40, p, n) == AREA_FULL_PROPAGATION

    def test_out_of_range(self):
        with pytest.raises(FaultConfigError):
            classify(100, 0, 10, 100)


class TestSampling:
    @pytest.mark.parametrize("area", [1, 2, 3])
    def test_samples_land_in_area(self, area):
        rng = np.random.default_rng(0)
        n, p = 100, 32
        for _ in range(50):
            i, j = sample_in_area(area, p, n, rng)
            assert classify(i, j, p, n) == area

    def test_area3_samples_hit_q_region(self):
        rng = np.random.default_rng(1)
        n, p = 100, 32
        for _ in range(50):
            i, j = sample_in_area(3, p, n, rng)
            assert i >= j + 2, "area-3 sampler must target the Q storage"

    def test_empty_areas_raise(self):
        rng = np.random.default_rng(2)
        with pytest.raises(FaultConfigError):
            sample_in_area(3, 0, 100, rng)      # nothing finished yet
        with pytest.raises(FaultConfigError):
            sample_in_area(2, 99, 100, rng)     # trailing block gone


class TestMoments:
    def test_begin_middle_end(self):
        assert BEGIN.iteration(10) == 0
        assert MIDDLE.iteration(10) == 4  # round(0.5 * 9)
        assert END.iteration(10) == 9

    def test_single_iteration(self):
        assert BEGIN.iteration(1) == 0 == END.iteration(1)

    def test_invalid_fraction(self):
        with pytest.raises(FaultConfigError):
            Moment(1.5).iteration(10)

    def test_zero_iterations(self):
        with pytest.raises(FaultConfigError):
            MIDDLE.iteration(0)


class TestIterationGeometry:
    def test_iteration_count_matches_driver(self):
        from repro.core.hybrid_hessenberg import iteration_plan

        for n, nb in [(64, 16), (158, 32), (100, 32), (33, 32)]:
            assert iteration_count(n, nb) == len(iteration_plan(n, nb))

    def test_finished_cols_progression(self):
        n, nb = 100, 32
        assert finished_cols_at(0, n, nb) == 0
        assert finished_cols_at(1, n, nb) == 32
        assert finished_cols_at(2, n, nb) == 64
        # the last panel is clipped to n-1 total reduced columns
        total = iteration_count(n, nb)
        assert finished_cols_at(total, n, nb) == n - 1
