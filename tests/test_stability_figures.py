"""Tests for the Tables II/III harness and the Fig. 6 series assembly."""

import pytest

from repro.analysis import (
    fig6_series,
    overhead_band,
    render_fig2,
    render_fig6,
    render_section5,
    render_table1,
    render_table2,
    render_table3,
    run_stability,
)
from repro.hybrid import paper_testbed


class TestStabilityHarness:
    @pytest.fixture(scope="class")
    def row(self):
        return run_stability(96, nb=32, seed=0)

    def test_baseline_residuals_clean(self, row):
        assert row.baseline_residual < 1e-15
        assert row.baseline_orthogonality < 1e-15

    def test_all_nine_cells_present(self, row):
        assert len(row.cells) == 9
        for area in (1, 2, 3):
            for m in ("B", "M", "E"):
                row.cell(area, m)  # must not raise

    def test_area12_residuals_match_baseline_order(self, row):
        """Table II's claim: with recovery, residuals stay at the
        fault-free order of magnitude."""
        for area in (1, 2):
            for m in ("B", "M", "E"):
                c = row.cell(area, m)
                assert c.residual < 10 * row.baseline_residual
                assert c.recoveries >= 1

    def test_area3_recovered_via_q(self, row):
        for m in ("B", "M", "E"):
            c = row.cell(3, m)
            assert c.q_corrections == 1
            assert c.residual < 1e-13

    def test_orthogonality_not_damaged(self, row):
        """Table III's claim."""
        for c in row.cells:
            assert c.orthogonality < 10 * row.baseline_orthogonality + 1e-15


class TestFig6Assembly:
    def test_overhead_band_structure(self):
        bg, fg, noe, lo, hi = overhead_band(1022, 2, nb=32, moments=3)
        assert bg > fg > 0          # FT is slower → lower GFLOPS
        assert 0 < noe <= lo <= hi  # with-error band sits above no-error
        assert hi < 25.0

    def test_area3_band_collapses(self):
        _, _, noe, lo, hi = overhead_band(1022, 3, nb=32, moments=3)
        assert hi - lo < 0.05
        assert lo == pytest.approx(noe, abs=0.1)

    def test_series_decreasing_overhead(self):
        s = fig6_series(1, sizes=(1022, 2046, 4030), moments=3)
        noe = [p.overhead_no_error for p in s.points]
        assert noe[0] > noe[1] > noe[2]
        hi = [p.overhead_max for p in s.points]
        assert hi[0] > hi[2]

    def test_series_gflops_increasing(self):
        s = fig6_series(2, sizes=(1022, 2046, 4030), moments=3)
        rates = [p.base_gflops for p in s.points]
        assert rates[0] < rates[1] < rates[2]


class TestRendering:
    def test_table1(self):
        out = render_table1(paper_testbed())
        assert "Tesla K40c" in out and "10.4" in out

    def test_table2_and_3(self):
        rows = [run_stability(64, nb=32, seed=1)]
        t2 = render_table2(rows)
        t3 = render_table3(rows)
        assert "A1 B" in t2 and "64" in t2
        assert "orthogonality" in t3

    def test_fig2_render(self):
        from repro.analysis import run_propagation
        from repro.utils.rng import random_matrix

        a = random_matrix(64, seed=2)
        out = render_fig2([run_propagation(a, 40, 50, 1, nb=32)])
        assert "pattern" in out

    def test_fig6_render(self):
        s = fig6_series(1, sizes=(1022,), moments=2)
        out = render_fig6(s)
        assert "1022" in out and "ovh no-err %" in out

    def test_section5_render(self):
        out = render_section5([1022, 2046])
        assert "FLOP_extra" in out
