"""Tests for the blocked (gehrd) and unblocked (gehd2) Hessenberg drivers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.linalg import (
    FlopCounter,
    extract_hessenberg,
    factorization_residual,
    gehd2,
    gehrd,
    hessenberg_defect,
    orghr,
    orthogonality_residual,
)
from repro.linalg import flops as F
from repro.utils.rng import MatrixKind, random_matrix


def _full_check(a0, nb=None, nx=None):
    a = a0.copy(order="F")
    if nb is None:
        taus = gehd2(a)
    else:
        kw = {"nb": nb}
        if nx is not None:
            kw["nx"] = nx
        fac = gehrd(a, **kw)
        taus = fac.taus
    h = extract_hessenberg(a)
    q = orghr(a, taus)
    return (
        factorization_residual(a0, q, h),
        orthogonality_residual(q),
        hessenberg_defect(h),
    )


class TestGehd2:
    @pytest.mark.parametrize("n", [2, 3, 5, 17, 40])
    def test_correctness(self, n):
        a0 = random_matrix(n, seed=n)
        resid, orth, defect = _full_check(a0)
        assert resid < 1e-14
        assert orth < 1e-14
        assert defect == 0.0

    def test_already_hessenberg_input(self):
        a0 = random_matrix(30, MatrixKind.HESSENBERG, seed=1)
        resid, orth, _ = _full_check(a0)
        assert resid < 1e-14 and orth < 1e-14

    def test_eigenvalues_preserved(self):
        a0 = random_matrix(25, seed=2)
        a = a0.copy(order="F")
        gehd2(a)
        h = extract_hessenberg(a)
        e0 = np.sort_complex(np.linalg.eigvals(a0))
        e1 = np.sort_complex(np.linalg.eigvals(h))
        np.testing.assert_allclose(e0, e1, atol=1e-10)


class TestGehrd:
    @pytest.mark.parametrize("n,nb", [(10, 4), (33, 8), (64, 16), (97, 32), (158, 32)])
    def test_correctness(self, n, nb):
        a0 = random_matrix(n, seed=n + nb)
        resid, orth, defect = _full_check(a0, nb=nb, nx=nb)
        assert resid < 1e-14
        assert orth < 1e-14
        assert defect == 0.0

    def test_matches_unblocked(self):
        """Blocked and unblocked produce the same H up to roundoff-level
        sign conventions — compare via eigenvalues and residuals."""
        a0 = random_matrix(48, seed=3)
        ab = a0.copy(order="F")
        au = a0.copy(order="F")
        gehrd(ab, nb=8, nx=8)
        gehd2(au)
        eb = np.sort_complex(np.linalg.eigvals(extract_hessenberg(ab)))
        eu = np.sort_complex(np.linalg.eigvals(extract_hessenberg(au)))
        np.testing.assert_allclose(eb, eu, atol=1e-10)

    def test_matches_scipy(self):
        import scipy.linalg as sla

        a0 = random_matrix(60, seed=4)
        a = a0.copy(order="F")
        fac = gehrd(a, nb=16, nx=16)
        h = extract_hessenberg(a)
        h_ref = sla.hessenberg(a0)
        # H is unique up to column/row sign flips; compare |subdiagonals|
        np.testing.assert_allclose(
            np.abs(np.diag(h, -1)), np.abs(np.diag(h_ref, -1)), atol=1e-10
        )

    def test_flop_count_close_to_model(self):
        n = 96
        a = random_matrix(n, seed=5).copy(order="F")
        cnt = FlopCounter()
        gehrd(a, nb=16, nx=16, counter=cnt)
        assert cnt.total == pytest.approx(F.gehrd_flops(n), rel=0.25)

    def test_keep_panels(self):
        a = random_matrix(40, seed=6).copy(order="F")
        fac = gehrd(a, nb=8, nx=8, keep_panels=True)
        assert len(fac.panels) >= 3
        assert fac.panels[0].p == 0 and fac.panels[1].p == 8

    def test_rejects_nonsquare(self):
        with pytest.raises(ShapeError):
            gehrd(np.zeros((3, 4), order="F"))

    def test_nb_larger_than_n(self):
        a0 = random_matrix(10, seed=7)
        resid, orth, defect = _full_check(a0, nb=64)
        assert resid < 1e-14 and defect == 0.0

    def test_result_properties(self):
        a = random_matrix(20, seed=8).copy(order="F")
        fac = gehrd(a, nb=4, nx=4)
        assert fac.n == 20
        assert fac.h.shape == (20, 20)
        assert hessenberg_defect(fac.h) == 0.0


class TestApplyQ:
    def test_apply_q_matches_explicit(self):
        from repro.linalg import apply_q

        a0 = random_matrix(30, seed=9)
        a = a0.copy(order="F")
        fac = gehrd(a, nb=8, nx=8)
        q = orghr(a, fac.taus)
        c = np.asfortranarray(np.random.default_rng(0).standard_normal((30, 4)))
        ref = q @ c
        got = c.copy(order="F")
        apply_q(a, fac.taus, got)
        np.testing.assert_allclose(got, ref, atol=1e-12)

    def test_apply_q_transpose(self):
        from repro.linalg import apply_q

        a0 = random_matrix(30, seed=10)
        a = a0.copy(order="F")
        fac = gehrd(a, nb=8, nx=8)
        q = orghr(a, fac.taus)
        c = np.asfortranarray(np.random.default_rng(1).standard_normal((30, 3)))
        ref = q.T @ c
        got = c.copy(order="F")
        apply_q(a, fac.taus, got, trans=True)
        np.testing.assert_allclose(got, ref, atol=1e-12)

    def test_qt_a_q_is_h(self):
        from repro.linalg import apply_q

        a0 = random_matrix(24, seed=11)
        a = a0.copy(order="F")
        fac = gehrd(a, nb=8, nx=8)
        work = a0.copy(order="F")
        apply_q(a, fac.taus, work, trans=True)   # Qᵀ A
        work = np.asfortranarray(work.T)
        apply_q(a, fac.taus, work, trans=True)   # Qᵀ (Qᵀ A)ᵀ = Qᵀ Aᵀ Q …
        h = extract_hessenberg(a)
        np.testing.assert_allclose(np.asfortranarray(work.T), h, atol=1e-12)
