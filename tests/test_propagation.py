"""Tests for the Fig. 2 propagation experiments."""

import numpy as np
import pytest

from repro.analysis import paper_fig2_cases, run_propagation
from repro.errors import ShapeError
from repro.utils.rng import random_matrix


class TestPaperCases:
    """The paper's three sites at N=158, nb=32, injected between
    iterations 1 and 2 — the qualitative patterns must reproduce."""

    @pytest.fixture(scope="class")
    def results(self):
        a = random_matrix(158, seed=42)
        return [run_propagation(a, i, j, it, nb=32) for (i, j, it) in paper_fig2_cases()]

    def test_area3_single_element(self, results):
        r = results[0]
        assert r.area == 3
        assert r.classify_pattern() == "none"
        assert r.polluted_count <= 2

    def test_area1_row_wise(self, results):
        r = results[1]
        assert r.area == 1
        assert r.classify_pattern() == "row"
        assert r.polluted_rows <= 2
        assert r.polluted_cols > 50  # the row is polluted across H

    def test_area2_full_pollution(self, results):
        r = results[2]
        assert r.area == 2
        assert r.classify_pattern() == "full"
        assert r.polluted_fraction > 0.5  # "almost all elements after col 32"

    def test_severity_ordering(self, results):
        """Area 2 > area 1 > area 3 in damage (the paper's narrative)."""
        a3, a1, a2 = results[0], results[1], results[2]
        assert a3.polluted_count < a1.polluted_count < a2.polluted_count

    def test_heatmap_renders(self, results):
        art = results[2].heatmap_ascii(width=30)
        assert len(art.splitlines()) > 3


class TestProtocol:
    def test_error_location_recorded(self):
        a = random_matrix(64, seed=1)
        r = run_propagation(a, 40, 50, 1, nb=32, magnitude=2.0)
        assert (r.spec.row, r.spec.col) == (40, 50)
        assert r.diff.shape == (64, 64)

    def test_magnitude_zero_no_pollution(self):
        a = random_matrix(64, seed=2)
        r = run_propagation(a, 40, 50, 1, nb=32, magnitude=0.0)
        assert r.polluted_count == 0

    def test_rejects_nonsquare(self):
        with pytest.raises(ShapeError):
            run_propagation(np.zeros((3, 4)), 0, 0, 0)

    def test_late_injection_less_damage(self):
        a = random_matrix(128, seed=3)
        early = run_propagation(a, 100, 110, 1, nb=32)
        late = run_propagation(a, 110, 120, 3, nb=32)
        assert late.polluted_count < early.polluted_count
