"""Property-based equivalence of the blocked and unblocked reductions:
for random (n, nb, seed) the blocked drivers must produce factorizations
of the same quality and the same canonical band/triangle values."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.linalg import (
    bidiagonal_of,
    factorization_residual,
    gebrd,
    gehrd,
    geqrf,
    orgbr_p,
    orgbr_q,
    orghr,
    orgqr,
    qr_residual,
    r_of,
    sytrd,
    extract_hessenberg,
)
from repro.linalg.sytd2 import orgtr, tridiagonal_of
from repro.utils.rng import MatrixKind, random_matrix

SLOW = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

sizes = st.integers(8, 72)
blocks = st.sampled_from([2, 3, 8, 16, 32])
seeds = st.integers(0, 2**12)


class TestBlockedEquivalence:
    @SLOW
    @given(n=sizes, nb=blocks, seed=seeds)
    def test_gehrd(self, n, nb, seed):
        a0 = random_matrix(n, seed=seed)
        a = a0.copy(order="F")
        fac = gehrd(a, nb=nb, nx=nb)
        q = orghr(a, fac.taus)
        h = extract_hessenberg(a)
        assert factorization_residual(a0, q, h) < 1e-13
        # canonical invariant: |subdiagonal| matches the eigen-preserving
        # unique Hessenberg form
        ref = a0.copy(order="F")
        gehrd(ref, nb=max(n, 64))  # effectively unblocked path
        np.testing.assert_allclose(
            np.abs(np.diag(h, -1)),
            np.abs(np.diag(extract_hessenberg(ref), -1)),
            atol=1e-10 * max(1.0, float(np.max(np.abs(a0)))) * n,
        )

    @SLOW
    @given(n=sizes, nb=blocks, seed=seeds)
    def test_sytrd(self, n, nb, seed):
        a0 = random_matrix(n, MatrixKind.SYMMETRIC, seed=seed)
        a = a0.copy(order="F")
        taus = sytrd(a, nb=nb)
        t = tridiagonal_of(a)
        q = orgtr(a, taus)
        assert factorization_residual(a0, q, t) < 1e-13
        np.testing.assert_allclose(
            np.sort(np.linalg.eigvalsh(t)), np.sort(np.linalg.eigvalsh(a0)),
            atol=1e-10 * max(1.0, float(np.max(np.abs(a0)))) * n,
        )

    @SLOW
    @given(n=sizes, nb=blocks, seed=seeds)
    def test_gebrd(self, n, nb, seed):
        a0 = random_matrix(n, seed=seed)
        a = a0.copy(order="F")
        tq, tp = gebrd(a, nb=nb)
        b = bidiagonal_of(a)
        q = orgbr_q(a, tq)
        p = orgbr_p(a, tp)
        resid = np.linalg.norm(a0 - q @ b @ p.T, 1) / max(np.linalg.norm(a0, 1), 1e-300)
        assert resid < 1e-13
        np.testing.assert_allclose(
            np.sort(np.linalg.svd(b, compute_uv=False)),
            np.sort(np.linalg.svd(a0, compute_uv=False)),
            atol=1e-10 * max(1.0, float(np.max(np.abs(a0)))) * n,
        )

    @SLOW
    @given(n=sizes, nb=blocks, seed=seeds)
    def test_geqrf(self, n, nb, seed):
        a0 = random_matrix(n, seed=seed)
        a = a0.copy(order="F")
        taus = geqrf(a, nb=nb)
        q = orgqr(a, taus)
        assert qr_residual(a0, q, r_of(a)) < 1e-13
        np.testing.assert_allclose(
            np.sort(np.abs(np.diag(a))),
            np.sort(np.abs(np.diag(np.linalg.qr(a0, mode="r")))),
            atol=1e-10 * max(1.0, float(np.max(np.abs(a0)))) * n,
        )
