"""Series assembly for the paper's Fig. 6 (a/b/c).

Each figure plots, against matrix size:

* the baseline "MAGMA Hess" GFLOPS curve,
* the "FT-Hess" GFLOPS curve,
* the blue no-failure overhead line,
* the gray uncertainty band: min/max overhead over the *moment* the
  single error strikes the given area.

All series come from the timed event model at the paper's matrix sizes
(metadata mode — no data is touched), so regenerating a figure takes
seconds. The paper's size grid 1022…10110 is the default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FTConfig, HybridConfig
from repro.core.ft_hessenberg import ft_gehrd
from repro.core.hybrid_hessenberg import hybrid_gehrd
from repro.core.results import overhead_percent
from repro.faults.injector import FaultInjector, FaultSpec
from repro.faults.regions import finished_cols_at, iteration_count, sample_in_area
from repro.hybrid.machine import MachineSpec, paper_testbed
from repro.utils.rng import make_rng

#: The paper's Fig. 6 / Tables II-III size grid.
PAPER_SIZES = (1022, 2046, 3070, 4030, 5182, 6014, 7038, 8062, 9086, 10110)


@dataclass
class Fig6Point:
    """One matrix size on one Fig. 6 panel."""

    n: int
    base_gflops: float
    ft_gflops: float
    overhead_no_error: float
    overhead_min: float
    overhead_max: float


@dataclass
class Fig6Series:
    """One full panel (one area) of Fig. 6."""

    area: int
    nb: int
    machine_desc: str
    points: list[Fig6Point] = field(default_factory=list)

    def to_csv(self) -> str:
        """The panel's data as CSV (for external plotting)."""
        lines = ["n,base_gflops,ft_gflops,overhead_no_error,overhead_min,overhead_max"]
        for p in self.points:
            lines.append(
                f"{p.n},{p.base_gflops:.6f},{p.ft_gflops:.6f},"
                f"{p.overhead_no_error:.6f},{p.overhead_min:.6f},{p.overhead_max:.6f}"
            )
        return "\n".join(lines) + "\n"


def overhead_band(
    n: int,
    area: int,
    *,
    nb: int = 32,
    machine: MachineSpec | None = None,
    moments: int = 7,
    seed: int = 0,
) -> tuple[float, float, float, float, float]:
    """(base_gflops, ft_gflops, no-error %, min %, max %) at one size.

    The band sweeps the error moment across the factorization (the
    paper's gray area): early errors redo a larger trailing iteration and
    cost more; area-3 errors are handled once at the end and the band
    collapses onto the no-error line.
    """
    machine = machine or paper_testbed()
    rng = make_rng(seed)
    base = hybrid_gehrd(n, HybridConfig(nb=nb, machine=machine, functional=False))
    ft0 = ft_gehrd(n, FTConfig(nb=nb, machine=machine, functional=False))
    no_err = overhead_percent(ft0, base)

    total = iteration_count(n, nb)
    lo, hi = np.inf, -np.inf
    for frac in np.linspace(0.0, 1.0, moments):
        it = int(round(frac * (total - 1)))
        it = max(it, 1) if area == 3 else min(max(it, 0), total - 1)
        p = finished_cols_at(it, n, nb)
        i, j = sample_in_area(area, p, n, rng)
        inj = FaultInjector().add(FaultSpec(iteration=it, row=i, col=j))
        ft = ft_gehrd(n, FTConfig(nb=nb, machine=machine, functional=False), injector=inj)
        ovh = overhead_percent(ft, base)
        lo, hi = min(lo, ovh), max(hi, ovh)
    return base.gflops, ft0.gflops, no_err, float(lo), float(hi)


def fig6_series(
    area: int,
    *,
    sizes: tuple[int, ...] = PAPER_SIZES,
    nb: int = 32,
    machine: MachineSpec | None = None,
    moments: int = 7,
    seed: int = 0,
) -> Fig6Series:
    """Assemble one Fig. 6 panel."""
    machine = machine or paper_testbed()
    series = Fig6Series(area=area, nb=nb, machine_desc=machine.description)
    for n in sizes:
        bg, fg, noe, lo, hi = overhead_band(
            n, area, nb=nb, machine=machine, moments=moments, seed=seed
        )
        series.points.append(
            Fig6Point(
                n=n,
                base_gflops=bg,
                ft_gflops=fg,
                overhead_no_error=noe,
                overhead_min=lo,
                overhead_max=hi,
            )
        )
    return series
