"""Bit-position sensitivity study — the SEU view of detectability.

The literature the paper cites measures *physical* soft errors (single
bit flips); this harness asks, per IEEE-754 bit position, what happens
when that bit of a random matrix element flips mid-factorization:

* high exponent bits → huge/non-finite corruption → detected, and either
  recovered or refused (never silent);
* middle bits → ordinary magnitudes → detected and recovered exactly;
* low mantissa bits → sub-threshold perturbations → undetected but
  harmless (the residual stays at the fault-free level).

The practically important property: **no silently harmful region** — the
threshold that lets low bits pass is the same one that bounds their
damage below the algorithm's own roundoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FTConfig
from repro.core.ft_hessenberg import ft_gehrd
from repro.errors import ReproError
from repro.faults.injector import FaultInjector, FaultSpec
from repro.faults.regions import finished_cols_at, iteration_count, sample_in_area
from repro.linalg.orghr import orghr
from repro.linalg.verify import extract_hessenberg, factorization_residual
from repro.utils.rng import make_rng, random_matrix


@dataclass
class BitflipOutcome:
    """Aggregate outcomes for one bit position."""

    bit: int
    trials: int = 0
    recovered: int = 0
    harmless: int = 0
    refused: int = 0
    silent_harmful: int = 0

    @property
    def safe(self) -> bool:
        return self.silent_harmful == 0


@dataclass
class BitflipStudy:
    n: int
    nb: int
    outcomes: list[BitflipOutcome] = field(default_factory=list)

    def render(self) -> str:
        from repro.utils.fmt import Table

        t = Table(
            ["bit", "field", "recovered", "harmless", "refused", "SILENT-HARMFUL"],
            title=f"Bit-flip sensitivity (N={self.n}, nb={self.nb})",
        )
        for o in self.outcomes:
            field_name = (
                "sign" if o.bit == 63 else "exponent" if o.bit >= 52 else "mantissa"
            )
            t.add_row(
                [o.bit, field_name, o.recovered, o.harmless, o.refused,
                 o.silent_harmful]
            )
        return t.render()


def bitflip_study(
    n: int = 96,
    nb: int = 32,
    *,
    bits: tuple[int, ...] = (0, 20, 40, 51, 52, 56, 60, 62, 63),
    trials: int = 4,
    seed: int = 0,
    residual_tol: float = 1e-12,
) -> BitflipStudy:
    """Sweep bit positions x random (area-1/2) fault sites."""
    rng = make_rng(seed)
    a0 = random_matrix(n, seed=seed)
    total = iteration_count(n, nb)
    study = BitflipStudy(n=n, nb=nb, outcomes=[])

    for bit in bits:
        out = BitflipOutcome(bit=bit)
        for t in range(trials):
            it = int(rng.integers(0, total))
            area = int(rng.choice([1, 2]))
            p = finished_cols_at(it, n, nb)
            i, j = sample_in_area(area, p, n, rng)
            inj = FaultInjector().add(
                FaultSpec(iteration=it, row=i, col=j, kind="bitflip", bit=bit)
            )
            out.trials += 1
            try:
                with np.errstate(all="ignore"):
                    res = ft_gehrd(a0, FTConfig(nb=nb), injector=inj)
            except ReproError:
                out.refused += 1
                continue
            q = orghr(res.a, res.taus)
            h = extract_hessenberg(res.a)
            ok = factorization_residual(a0, q, h) <= residual_tol
            acted = bool(res.recoveries) or (
                res.q_report is not None and res.q_report.count > 0
            )
            if ok and acted:
                out.recovered += 1
            elif ok:
                out.harmless += 1
            else:
                out.silent_harmful += 1
        study.outcomes.append(out)
    return study
