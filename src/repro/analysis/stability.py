"""Numerical-stability harness — Tables II and III of the paper.

For each matrix size the protocol runs:

* the baseline hybrid reduction (column "MAGMA Hess"),
* the FT reduction with one injected error per (area × moment) cell:
  areas 1/2/3 of Fig. 2a, moments Begin/Middle/End of the factorization,

and reports the Table II residual ``‖A − Q H Qᵀ‖₁ / (N ‖A‖₁)`` and the
Table III orthogonality ``‖Q Qᵀ − I‖₁ / N`` for every cell.

The shape targets (DESIGN.md): areas 1/2 match the fault-free residuals
to the digit order (the error is corrected *before* it propagates); area
3 sits a couple of orders higher (the dot-product recovery roundoff the
paper discusses) but remains acceptable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FTConfig, HybridConfig
from repro.core.ft_hessenberg import ft_gehrd
from repro.core.hybrid_hessenberg import hybrid_gehrd
from repro.faults.injector import FaultInjector, FaultSpec
from repro.faults.regions import (
    BEGIN,
    END,
    MIDDLE,
    Moment,
    finished_cols_at,
    iteration_count,
    sample_in_area,
)
from repro.linalg.orghr import orghr
from repro.linalg.verify import (
    extract_hessenberg,
    factorization_residual,
    orthogonality_residual,
)
from repro.utils.rng import make_rng, random_matrix

MOMENTS: tuple[Moment, ...] = (BEGIN, MIDDLE, END)
AREAS: tuple[int, ...] = (1, 2, 3)


@dataclass
class StabilityCell:
    """One (area, moment) measurement."""

    area: int
    moment: str
    iteration: int
    row: int
    col: int
    residual: float
    orthogonality: float
    recoveries: int
    q_corrections: int


@dataclass
class StabilityRow:
    """All measurements for one matrix size."""

    n: int
    nb: int
    baseline_residual: float
    baseline_orthogonality: float
    cells: list[StabilityCell] = field(default_factory=list)

    def cell(self, area: int, moment: str) -> StabilityCell:
        for c in self.cells:
            if c.area == area and c.moment == moment:
                return c
        raise KeyError((area, moment))


def _plan_fault(n: int, nb: int, area: int, moment: Moment, rng) -> FaultSpec:
    """Choose an injection (iteration, element) for one protocol cell.

    Area 3 needs at least one finished panel, and Begin/End are nudged
    into the feasible range for each area (the paper does the same
    implicitly: an area-3 error cannot exist "at the beginning").
    """
    total = iteration_count(n, nb)
    it = moment.iteration(total)
    if area == 3:
        it = max(it, 1)  # a finished column must exist
    else:
        it = min(it, total - 1)
    p = finished_cols_at(it, n, nb)
    i, j = sample_in_area(area, p, n, rng)
    return FaultSpec(iteration=it, row=i, col=j, kind="add", magnitude=1.0)


def run_stability(
    n: int,
    *,
    nb: int = 32,
    seed: int = 0,
    magnitude: float = 1.0,
    kind=None,
) -> StabilityRow:
    """Produce one Table II/III row (all areas × moments) for size *n*.

    *kind* selects the matrix family (default: the paper's implicit
    uniform-random workload); the family sweep backs the robustness
    bench.
    """
    from repro.utils.rng import MatrixKind

    rng = make_rng(seed)
    a0 = random_matrix(n, kind if kind is not None else MatrixKind.UNIFORM, seed=seed)

    base = hybrid_gehrd(a0, HybridConfig(nb=nb))
    qb = orghr(base.a, base.taus)
    hb = extract_hessenberg(base.a)
    row = StabilityRow(
        n=n,
        nb=nb,
        baseline_residual=factorization_residual(a0, qb, hb),
        baseline_orthogonality=orthogonality_residual(qb),
    )

    for area in AREAS:
        for moment in MOMENTS:
            spec = _plan_fault(n, nb, area, moment, rng)
            spec = FaultSpec(
                iteration=spec.iteration,
                row=spec.row,
                col=spec.col,
                kind="add",
                magnitude=magnitude,
            )
            inj = FaultInjector().add(spec)
            ft = ft_gehrd(a0, FTConfig(nb=nb), injector=inj)
            q = orghr(ft.a, ft.taus)
            h = extract_hessenberg(ft.a)
            row.cells.append(
                StabilityCell(
                    area=area,
                    moment=moment.label,
                    iteration=spec.iteration,
                    row=spec.row,
                    col=spec.col,
                    residual=factorization_residual(a0, q, h),
                    orthogonality=orthogonality_residual(q),
                    recoveries=len(ft.recoveries),
                    q_corrections=ft.q_report.count if ft.q_report else 0,
                )
            )
    return row


def run_stability_sweep(
    sizes: list[int],
    *,
    nb: int = 32,
    seed: int = 0,
) -> list[StabilityRow]:
    """Tables II/III over a size sweep (scaled-down from the paper's
    1022…10110 per DESIGN.md — numerical behaviour is size-stable)."""
    return [run_stability(n, nb=nb, seed=seed + k) for k, n in enumerate(sizes)]
