"""Plain-text rendering of the reproduced tables and figures.

The benchmark scripts call these to print paper-style output (the same
rows/series the paper reports), and EXPERIMENTS.md embeds their output.
"""

from __future__ import annotations

from repro.analysis.figures import Fig6Series
from repro.analysis.overhead_model import breakdown, overhead_ratio, storage_extra
from repro.analysis.propagation import PropagationResult
from repro.analysis.stability import StabilityRow
from repro.hybrid.machine import MachineSpec
from repro.utils.fmt import Table, format_float


def render_table1(machine: MachineSpec) -> str:
    """Table I — the test-platform specification (machine-model preset)."""
    t = Table(["", "CPU", "GPU"], title="Table I: simulated test platform")
    t.add_row(["Processor model", machine.cpu.name, machine.gpu.name])
    t.add_row(
        ["Clock frequency", f"{machine.cpu.clock_mhz/1000:.1f} GHz", f"{machine.gpu.clock_mhz:.0f} MHz"]
    )
    t.add_row(["Memory", f"{machine.cpu.mem_gb:.0f} GB", f"{machine.gpu.mem_gb:.1f} GB"])
    t.add_row(
        [
            "Peak DP",
            f"{machine.cpu.peak_gflops:.1f} Gflop/s",
            f"{machine.gpu.peak_gflops/1000:.2f} Tflop/s",
        ]
    )
    t.add_row(
        [
            "Mem bandwidth (model)",
            f"{machine.cpu.mem_bandwidth_gbs:.0f} GB/s",
            f"{machine.gpu.mem_bandwidth_gbs:.0f} GB/s",
        ]
    )
    t.add_row(["Link", machine.link.name, f"{machine.link.bandwidth_gbs:.0f} GB/s"])
    return t.render()


def render_table2(rows: list[StabilityRow]) -> str:
    """Table II — numerical stability residuals."""
    headers = ["N", "MAGMA Hess"]
    for area in (1, 2):
        for m in ("B", "M", "E"):
            headers.append(f"A{area} {m}")
    headers.append("A3 B/M/E")
    t = Table(headers, title="Table II: residual |A - QHQ'|_1 / (N |A|_1)")
    for r in rows:
        cells: list[object] = [r.n, r.baseline_residual]
        for area in (1, 2):
            for m in ("B", "M", "E"):
                cells.append(r.cell(area, m).residual)
        a3 = max(r.cell(3, m).residual for m in ("B", "M", "E"))
        cells.append(a3)
        t.add_row(cells)
    return t.render()


def render_table3(rows: list[StabilityRow]) -> str:
    """Table III — orthogonality of Q."""
    headers = ["N", "MAGMA Hess"]
    for area in (1, 2):
        for m in ("B", "M", "E"):
            headers.append(f"A{area} {m}")
    headers.append("A3")
    t = Table(headers, title="Table III: orthogonality |QQ' - I|_1 / N")
    for r in rows:
        cells: list[object] = [r.n, r.baseline_orthogonality]
        for area in (1, 2):
            for m in ("B", "M", "E"):
                cells.append(r.cell(area, m).orthogonality)
        a3 = max(r.cell(3, m).orthogonality for m in ("B", "M", "E"))
        cells.append(a3)
        t.add_row(cells)
    return t.render()


def render_fig2(results: list[PropagationResult], *, with_heatmap: bool = False) -> str:
    """Fig. 2 — propagation pattern summary per injection site."""
    t = Table(
        ["location", "area", "pattern", "polluted", "rows", "cols", "fraction"],
        title="Fig. 2: propagation of a single soft error (baseline, no FT)",
    )
    for r in results:
        t.add_row(
            [
                f"({r.spec.row},{r.spec.col})@it{r.spec.iteration}",
                r.area,
                r.classify_pattern(),
                r.polluted_count,
                r.polluted_rows,
                r.polluted_cols,
                f"{r.polluted_fraction:.4f}",
            ]
        )
    out = t.render()
    if with_heatmap:
        for r in results:
            out += (
                f"\n\n|clean - faulty| heat map, error at ({r.spec.row},{r.spec.col}), "
                f"area {r.area}:\n" + r.heatmap_ascii()
            )
    return out


def render_fig6(series: Fig6Series) -> str:
    """Fig. 6 — one area panel: GFLOPS + overhead lines + gray band."""
    t = Table(
        ["N", "MAGMA GFLOPS", "FT GFLOPS", "ovh no-err %", "ovh 1-fault min %", "ovh 1-fault max %"],
        title=f"Fig. 6 area {series.area} (nb={series.nb}, {series.machine_desc})",
    )
    for p in series.points:
        t.add_row(
            [
                p.n,
                f"{p.base_gflops:.1f}",
                f"{p.ft_gflops:.1f}",
                f"{p.overhead_no_error:.3f}",
                f"{p.overhead_min:.3f}",
                f"{p.overhead_max:.3f}",
            ]
        )
    return t.render()


def render_section5(sizes: list[int], nb: int = 32) -> str:
    """§V — the closed-form overhead model across sizes."""
    t = Table(
        ["N", "FLOP_extra", "FLOP_orig", "ratio", "storage (elems)"],
        title="Section V: analytic FT overhead model (no-error case)",
    )
    for n in sizes:
        b = breakdown(n, nb)
        t.add_row(
            [
                n,
                format_float(b.total),
                format_float(10.0 / 3.0 * n**3),
                format_float(overhead_ratio(n, nb)),
                storage_extra(n, nb),
            ]
        )
    return t.render()
