"""Empirical protection-coverage maps.

For a grid of injection positions (and a fixed injection iteration), run
the FT reduction once per position and classify the outcome:

* ``R`` — recovered: the final residual is clean and the run corrected
  something (rollback recovery or the end-of-run Q check);
* ``.`` — silently harmless: nothing detected, residual still clean
  (e.g. a sub-threshold fault);
* ``X`` — silently harmful: nothing detected but the result is wrong —
  a genuine coverage hole (for the paper's scheme: the finished-H
  region);
* ``F`` — refused: the run raised ``UncorrectableError`` (detected but
  not locatable) — fail-stop, never silent corruption.

The map makes the protection domains *visible*: the paper's Fig. 2a
partition reappears as the R-region (areas 1/2 via rollback, area-3 Q
storage via the final check) with the unprotected finished-H wedge as
the only X cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FTConfig
from repro.faults.executor import run_ft_trials
from repro.faults.injector import FaultSpec
from repro.utils.rng import random_matrix

CATEGORIES = {
    "R": "recovered",
    ".": "harmless (undetected, result clean)",
    "X": "SILENT CORRUPTION (undetected, result wrong)",
    "F": "refused (detected, fail-stop)",
}


@dataclass
class CoverageMap:
    """Outcome grid of a coverage sweep."""

    n: int
    nb: int
    iteration: int
    rows: np.ndarray           # sampled row indices
    cols: np.ndarray           # sampled column indices
    grid: np.ndarray           # (len(rows), len(cols)) of category chars
    residuals: np.ndarray = field(default=None)
    outcome_counts: dict = field(default_factory=dict)  # taxonomy label -> trials
    tier_counts: dict = field(default_factory=dict)     # deepest ladder tier -> trials

    def count(self, cat: str) -> int:
        return int(np.count_nonzero(self.grid == cat))

    def tier_recovery_rates(self) -> dict:
        """Fraction of all trials whose recovery topped out at each tier."""
        total = self.grid.size
        if not total:
            return {}
        return {t: c / total for t, c in sorted(self.tier_counts.items())}

    @property
    def silent_corruption_cells(self) -> list[tuple[int, int]]:
        out = []
        for a, i in enumerate(self.rows):
            for b, j in enumerate(self.cols):
                if self.grid[a, b] == "X":
                    out.append((int(i), int(j)))
        return out

    def render(self) -> str:
        lines = [
            f"coverage map: N={self.n}, nb={self.nb}, fault at iteration "
            f"{self.iteration} (rows down, columns across)",
        ]
        header = "      " + "".join(f"{int(j):>4d}" for j in self.cols)
        lines.append(header)
        for a, i in enumerate(self.rows):
            lines.append(f"{int(i):>4d}  " + "".join(f"{c:>4}" for c in self.grid[a]))
        lines.append("")
        for cat, desc in CATEGORIES.items():
            lines.append(f"  {cat} = {desc}: {self.count(cat)}")
        if self.outcome_counts:
            lines.append("  outcomes: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.outcome_counts.items()) if v
            ))
        if self.tier_counts:
            lines.append("  deepest recovery tier: " + ", ".join(
                f"{k or 'none'}={v}" for k, v in sorted(self.tier_counts.items())
            ))
        return "\n".join(lines)


def coverage_map(
    n: int = 96,
    nb: int = 32,
    iteration: int = 1,
    *,
    grid: int = 12,
    magnitude: float = 1.0,
    channels: int = 1,
    audit_every: int = 0,
    seed: int = 0,
    residual_tol: float = 1e-12,
    workers: int = 1,
) -> CoverageMap:
    """Sweep a ``grid x grid`` lattice of fault positions and classify.

    One full FT run per lattice point — keep *n* and *grid* modest, or
    pass ``workers > 1`` to spread the lattice over a process pool (the
    classification grid is identical either way).
    """
    a0 = random_matrix(n, seed=seed)
    rows = np.unique(np.linspace(0, n - 1, grid).astype(int))
    cols = np.unique(np.linspace(0, n - 1, grid).astype(int))
    out = np.full((rows.size, cols.size), "?", dtype="<U1")
    resids = np.zeros((rows.size, cols.size))

    cfg = FTConfig(nb=nb, channels=channels, audit_every=audit_every)
    tasks = [
        (FaultSpec(iteration=iteration, row=int(i), col=int(j), magnitude=magnitude), 0)
        for i in rows
        for j in cols
    ]
    outcomes = run_ft_trials(
        a0, tasks, cfg, residual_tol=residual_tol, workers=workers
    )

    outcome_counts: dict = {}
    tier_counts: dict = {}
    for idx, t in enumerate(outcomes):
        ai, bj = divmod(idx, cols.size)
        outcome_counts[t.outcome] = outcome_counts.get(t.outcome, 0) + 1
        tier_counts[t.max_tier] = tier_counts.get(t.max_tier, 0) + 1
        if t.failure:
            out[ai, bj] = "F"
            resids[ai, bj] = np.nan
            continue
        resids[ai, bj] = t.residual
        acted = t.recoveries > 0 or t.q_corrections > 0
        if t.residual <= residual_tol:
            out[ai, bj] = "R" if acted else "."
        else:
            out[ai, bj] = "X"

    return CoverageMap(
        n=n, nb=nb, iteration=iteration, rows=rows, cols=cols, grid=out,
        residuals=resids, outcome_counts=outcome_counts, tier_counts=tier_counts,
    )
