"""Empirical protection-coverage maps.

For a grid of injection positions (and a fixed injection iteration), run
the FT reduction once per position and classify the outcome:

* ``R`` — recovered: the final residual is clean and the run corrected
  something (rollback recovery or the end-of-run Q check);
* ``.`` — silently harmless: nothing detected, residual still clean
  (e.g. a sub-threshold fault);
* ``X`` — silently harmful: nothing detected but the result is wrong —
  a genuine coverage hole (for the paper's scheme: the finished-H
  region);
* ``F`` — refused: the run raised ``UncorrectableError`` (detected but
  not locatable) — fail-stop, never silent corruption.

The map makes the protection domains *visible*: the paper's Fig. 2a
partition reappears as the R-region (areas 1/2 via rollback, area-3 Q
storage via the final check) with the unprotected finished-H wedge as
the only X cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FTConfig
from repro.core.ft_hessenberg import ft_gehrd
from repro.errors import ReproError
from repro.faults.injector import FaultInjector, FaultSpec
from repro.linalg.orghr import orghr
from repro.linalg.verify import extract_hessenberg, factorization_residual
from repro.utils.rng import random_matrix

CATEGORIES = {
    "R": "recovered",
    ".": "harmless (undetected, result clean)",
    "X": "SILENT CORRUPTION (undetected, result wrong)",
    "F": "refused (detected, fail-stop)",
}


@dataclass
class CoverageMap:
    """Outcome grid of a coverage sweep."""

    n: int
    nb: int
    iteration: int
    rows: np.ndarray           # sampled row indices
    cols: np.ndarray           # sampled column indices
    grid: np.ndarray           # (len(rows), len(cols)) of category chars
    residuals: np.ndarray = field(default=None)

    def count(self, cat: str) -> int:
        return int(np.count_nonzero(self.grid == cat))

    @property
    def silent_corruption_cells(self) -> list[tuple[int, int]]:
        out = []
        for a, i in enumerate(self.rows):
            for b, j in enumerate(self.cols):
                if self.grid[a, b] == "X":
                    out.append((int(i), int(j)))
        return out

    def render(self) -> str:
        lines = [
            f"coverage map: N={self.n}, nb={self.nb}, fault at iteration "
            f"{self.iteration} (rows down, columns across)",
        ]
        header = "      " + "".join(f"{int(j):>4d}" for j in self.cols)
        lines.append(header)
        for a, i in enumerate(self.rows):
            lines.append(f"{int(i):>4d}  " + "".join(f"{c:>4}" for c in self.grid[a]))
        lines.append("")
        for cat, desc in CATEGORIES.items():
            lines.append(f"  {cat} = {desc}: {self.count(cat)}")
        return "\n".join(lines)


def coverage_map(
    n: int = 96,
    nb: int = 32,
    iteration: int = 1,
    *,
    grid: int = 12,
    magnitude: float = 1.0,
    channels: int = 1,
    audit_every: int = 0,
    seed: int = 0,
    residual_tol: float = 1e-12,
) -> CoverageMap:
    """Sweep a ``grid x grid`` lattice of fault positions and classify.

    One full FT run per lattice point — keep *n* and *grid* modest.
    """
    a0 = random_matrix(n, seed=seed)
    rows = np.unique(np.linspace(0, n - 1, grid).astype(int))
    cols = np.unique(np.linspace(0, n - 1, grid).astype(int))
    out = np.full((rows.size, cols.size), "?", dtype="<U1")
    resids = np.zeros((rows.size, cols.size))

    for ai, i in enumerate(rows):
        for bj, j in enumerate(cols):
            inj = FaultInjector().add(
                FaultSpec(iteration=iteration, row=int(i), col=int(j),
                          magnitude=magnitude)
            )
            try:
                res = ft_gehrd(
                    a0,
                    FTConfig(nb=nb, channels=channels, audit_every=audit_every),
                    injector=inj,
                )
            except ReproError:
                out[ai, bj] = "F"
                resids[ai, bj] = np.nan
                continue
            q = orghr(res.a, res.taus)
            h = extract_hessenberg(res.a)
            r = factorization_residual(a0, q, h)
            resids[ai, bj] = r
            acted = bool(res.recoveries) or (
                res.q_report is not None and res.q_report.count > 0
            )
            if r <= residual_tol:
                out[ai, bj] = "R" if acted else "."
            else:
                out[ai, bj] = "X"

    return CoverageMap(
        n=n, nb=nb, iteration=iteration, rows=rows, cols=cols, grid=out,
        residuals=resids,
    )
