"""The paper's Section-V closed-form overhead model, implemented exactly.

Every formula below is transcribed from §V (with the paper's convention
that an n-term sum costs ``n + n − 1``-style exact flops). The benchmark
``bench_section5_model`` compares these predictions against the flop
counts *measured* by the instrumented functional driver, and the headline
result — ``overhead = FLOP_extra / FLOP_orig = O(1/N) → 0`` — is asserted
by the tests.

Beyond the paper's order-of-magnitude §V forms, :func:`flop_abft_maintain`
reproduces the *exact* ``abft_maintain`` charge of the instrumented
functional driver under the fused FT-GEMM accounting (checksum rows and
columns charged as operand extensions of the apply GEMMs, not as
separate per-channel GEMVs) — pinned equal to a real run's
:class:`~repro.linalg.flops.FlopCounter` by the regression tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linalg import flops as F


def flop_orig(n: int) -> float:
    """``FLOP_orig ≈ 10/3 · N³`` — the baseline reduction."""
    return 10.0 / 3.0 * float(n) ** 3


def flop_init(n: int) -> float:
    """Initial encoding: two GEMVs, ``2N(N + N − 1) = 4N² − 2N``."""
    return 2.0 * n * (2 * n - 1)


def flop_chk_v(n: int, nb: int) -> float:
    """Column checksums of V, accumulated over the factorization."""
    total = 0.0
    for i in range(n // nb):
        m = n - nb * i
        total += nb * (2 * m - 1)
    return total


def flop_r_chk(n: int, nb: int) -> float:
    """Work applied to the right-hand-side (row) checksums per §V."""
    total = 0.0
    for i in range(n // nb):
        m = n - nb * i
        total += m * (2 * nb - 1) + n * (2 * nb - 1) + nb * (2 * m - 1)
    return total


def flop_c_chk(n: int, nb: int) -> float:
    """Work applied to the bottom (column) checksums per §V."""
    total = 0.0
    for i in range(n // nb):
        m = n - nb * i
        total += 2 * m * (2 * nb - 1)
    return total


def flop_common(n: int, nb: int) -> float:
    """Intermediate results shared by both checksum updates: O(N)."""
    return (n // nb) * nb * (2 * nb - 1)


def flop_detect(n: int, nb: int) -> float:
    """Per-iteration detection: two length-N sum reductions."""
    return (n // nb) * 2 * (2 * n - 1)


def flop_extra_no_error(n: int, nb: int) -> float:
    """``FLOP_extra`` — total added flops when no error occurs (O(N²))."""
    return (
        flop_init(n)
        + flop_chk_v(n, nb)
        + flop_r_chk(n, nb)
        + flop_c_chk(n, nb)
        + flop_common(n, nb)
        + flop_detect(n, nb)
    )


def overhead_ratio(n: int, nb: int) -> float:
    """``FLOP_extra / FLOP_orig`` — tends to 0 as ``3/(10) · O(N²)/N³``."""
    return flop_extra_no_error(n, nb) / flop_orig(n)


def flop_abft_maintain(n: int, nb: int, channels: int = 1) -> float:
    """Exact ``abft_maintain`` flops of a fault-free functional run.

    Term-for-term transcription of every kernel-level
    ``counter.add("abft_maintain", ...)`` the instrumented drivers issue
    for an ``(n, nb, channels)`` reduction, under the fused FT-GEMM
    accounting:

    * ``Vce = WᵀV`` — k GEMVs per panel (Algorithm 3 line 7);
    * ``Ychk = WᵀY = C_chk V T`` — k GEMV+TRMV chains (line 6);
    * right update — checksum columns/rows ride the fused apply GEMM as
      an ``n x k`` and a ``k x (n-p-ib)`` rank-``ib`` operand extension;
    * left update — checksum rows ride the fused apply GEMM as a
      ``k x ncols`` rank-``ib`` extension;
    * segment refresh — finished column ``j``'s checksums re-frozen with
      k exact ``min(j+2, n)``-term dot products.

    The iteration sequence is the drivers'
    :func:`~repro.core.hybrid_hessenberg.iteration_plan_cached`
    (imported lazily to keep this module free of driver imports for the
    pure §V closed forms).
    """
    from repro.core.hybrid_hessenberg import iteration_plan_cached

    k = channels
    total = 0
    for p, ib in iteration_plan_cached(n, nb):
        m = n - p - 1
        ncols = n + k - (p + ib)
        total += k * F.gemv_flops(ib, m)                                  # Vce
        total += k * (F.gemv_flops(ib, m) + F.trmv_flops(ib))             # Ychk
        total += F.gemm_flops(n, k, ib)                                   # right: chk cols
        total += F.abft_fused_rows_flops(k, n - p - ib, ib)               # right: chk rows
        total += F.abft_fused_rows_flops(k, ncols, ib)                    # left: chk rows
        for j in range(p, min(p + ib, n)):                                # segment refresh
            total += k * F.dot_flops(min(j + 2, n))
    return float(total)


def flop_locate(n: int) -> float:
    """Locating the error: fresh row+column checksums, ``4N² − 2N``."""
    return 2.0 * n * (2 * n - 1)


def flop_correct(n: int) -> float:
    """Correcting the error: one dot product and a subtraction, ``N − 1``."""
    return float(n - 1)


def flop_redo(n: int, nb: int, j: int) -> float:
    """Re-execution cost when the error struck iteration *j* (§V).

    The paper's expression: repeat the trailing updates and the panel of
    the faulty iteration — a function of the remaining trailing size
    ``N − j·nb``; O(N²) for any single error.
    """
    m = max(n - j * nb, 0)
    repeat = n * m * (2 * nb - 1) + m * m * (2 * nb - 1)
    panel = m * nb * (2 * m - 1) + m * nb * (2 * nb - 1)
    return float(repeat + panel)


def flop_reverse(n: int, nb: int, j: int) -> float:
    """Reverse computation: one reverse left + one reverse right update on
    the iteration-*j* trailing block (same kernel shapes as forward)."""
    m = max(n - j * nb, 0)
    return 2.0 * (2.0 * n * m * nb) if m else 0.0


def flop_extra_one_error(n: int, nb: int, j: int) -> float:
    """Total added flops with a single area-1/2 error at iteration *j*."""
    return (
        flop_extra_no_error(n, nb)
        + flop_reverse(n, nb, j)
        + flop_locate(n)
        + flop_correct(n)
        + flop_redo(n, nb, j)
    )


def storage_extra(n: int, nb: int) -> int:
    """§V storage: a panel of workspace plus four checksum vectors,
    ``S = nb·N + 4N`` elements."""
    return nb * n + 4 * n


@dataclass(frozen=True)
class OverheadBreakdown:
    """All §V terms for one (N, nb), for reporting."""

    n: int
    nb: int
    init: float
    chk_v: float
    r_chk: float
    c_chk: float
    common: float
    detect: float

    @property
    def total(self) -> float:
        return self.init + self.chk_v + self.r_chk + self.c_chk + self.common + self.detect

    @property
    def ratio(self) -> float:
        return self.total / flop_orig(self.n)


def breakdown(n: int, nb: int) -> OverheadBreakdown:
    """Compute every §V term for one problem size."""
    return OverheadBreakdown(
        n=n,
        nb=nb,
        init=flop_init(n),
        chk_v=flop_chk_v(n, nb),
        r_chk=flop_r_chk(n, nb),
        c_chk=flop_c_chk(n, nb),
        common=flop_common(n, nb),
        detect=flop_detect(n, nb),
    )
