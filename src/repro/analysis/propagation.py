"""Error-propagation experiments — Fig. 2 of the paper.

Protocol (paper §IV-A): run the fault-*prone* hybrid reduction twice on
the same input — once clean, once with a single element corrupted at an
iteration boundary — and diff the packed results. The difference heat map
classifies the region:

* area 3 (finished columns):   exactly one polluted element;
* area 1 (upper trailing):     pollution confined to (essentially) the
  error row, spreading row-wise through H;
* area 2 (lower trailing, G):  pollution across the trailing block in
  both H and Q.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import HybridConfig
from repro.core.hybrid_hessenberg import hybrid_gehrd
from repro.errors import ShapeError
from repro.faults.injector import FaultInjector, FaultSpec
from repro.faults.regions import classify, finished_cols_at


@dataclass
class PropagationResult:
    """Outcome of one Fig. 2-style experiment."""

    n: int
    nb: int
    spec: FaultSpec
    area: int
    diff: np.ndarray             # |clean − faulty| over the packed output
    threshold: float

    @property
    def polluted(self) -> np.ndarray:
        """Boolean mask of polluted elements."""
        return self.diff > self.threshold

    @property
    def polluted_count(self) -> int:
        return int(np.count_nonzero(self.polluted))

    @property
    def polluted_rows(self) -> int:
        return int(np.count_nonzero(self.polluted.any(axis=1)))

    @property
    def polluted_cols(self) -> int:
        return int(np.count_nonzero(self.polluted.any(axis=0)))

    @property
    def polluted_fraction(self) -> float:
        return self.polluted_count / self.diff.size

    def classify_pattern(self) -> str:
        """``"none"`` (single element), ``"row"`` or ``"full"``.

        Mirrors the paper's three heat maps: ≤ a handful of elements →
        no propagation; pollution confined to ≲2 rows → row-wise;
        otherwise full trailing-matrix pollution.
        """
        if self.polluted_count <= 4:
            return "none"
        if self.polluted_rows <= 2:
            return "row"
        return "full"

    def heatmap_ascii(self, width: int = 48) -> str:
        """Downsampled ASCII rendering of the |diff| magnitudes."""
        n = self.diff.shape[0]
        step = max(1, n // width)
        glyphs = " .:*#@"
        lines = []
        with np.errstate(divide="ignore"):
            logd = np.where(self.diff > 0, np.log10(self.diff), -np.inf)
        for i in range(0, n, step):
            row = []
            for j in range(0, n, step):
                block = logd[i : i + step, j : j + step]
                mx = float(np.max(block))
                if mx == -np.inf or self.diff[i : i + step, j : j + step].max() <= self.threshold:
                    row.append(glyphs[0])
                else:
                    # map log10 magnitude [-16, 1] to glyph intensity
                    level = int(np.clip((mx + 16.0) / 17.0 * (len(glyphs) - 1), 1, len(glyphs) - 1))
                    row.append(glyphs[level])
            lines.append("".join(row))
        return "\n".join(lines)


def run_propagation(
    a: np.ndarray,
    row: int,
    col: int,
    iteration: int,
    *,
    nb: int = 32,
    magnitude: float = 1.0,
    kind: str = "add",
) -> PropagationResult:
    """Diff a clean vs a faulted hybrid reduction of *a* (Fig. 2 protocol)."""
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"run_propagation needs a square matrix, got {a.shape}")
    n = a.shape[0]
    cfg = HybridConfig(nb=nb)
    clean = hybrid_gehrd(a, cfg)

    spec = FaultSpec(iteration=iteration, row=row, col=col, kind=kind, magnitude=magnitude)
    inj = FaultInjector().add(spec)
    cfg2 = HybridConfig(nb=nb)
    faulty = hybrid_gehrd(a, cfg2, injector=inj)

    diff = np.abs(clean.a - faulty.a)
    scale = float(np.max(np.abs(clean.a)))
    threshold = 1e-12 * max(scale, 1.0)
    p = finished_cols_at(iteration, n, nb)
    return PropagationResult(
        n=n,
        nb=nb,
        spec=spec,
        area=classify(row, col, p, n),
        diff=diff,
        threshold=threshold,
    )


def paper_fig2_cases(n: int = 158, nb: int = 32) -> list[tuple[int, int, int]]:
    """The paper's three injection sites (1-based in the paper; converted
    to 0-based): (53,16)→area 3, (31,127)→area 1, (63,127)→area 2, all at
    the boundary between iterations 1 and 2 (our iteration index 1)."""
    return [(52, 15, 1), (30, 126, 1), (62, 126, 1)]
