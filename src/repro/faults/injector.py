"""Soft-error injection (the paper's experimental methodology, widened
to an adversarial fault surface).

Faults are *planned* as :class:`FaultSpec` records — which element of
which memory space, at which iteration and **phase**, corrupted how —
and *applied* by the drivers through a :class:`FaultInjector` hook.
The paper's protocol only strikes the encoded matrix at iteration
boundaries ("the soft error is injected when the first iteration has
finished, and the second iteration has not yet started"); the widened
model also targets the FT machinery itself — the diskless checkpoint
buffer, the tau scalars, the live Householder block V and the
Q-protection checksums — and can strike *inside* an iteration or while
recovery is running (the Bosilca et al. critique: checksum state must
survive the faults it guards against).

Corruption models:

* ``"add"``   — add a signed magnitude (the analytical default; its
  detectability is magnitude-controlled),
* ``"set"``   — overwrite with a value,
* ``"bitflip"`` — flip one bit of the IEEE-754 representation (the
  physical model: an SEU in DRAM).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultConfigError
from repro.abft.encoding import EncodedMatrix

#: Memory spaces a fault can strike. The ``qr_*`` spaces belong to the
#: Francis QR stage (:mod:`repro.eigen.ft_hqr`); their ``iteration``
#: indexes the QR driver's outer-step clock, not the blocked reduction.
SPACES = (
    "matrix",
    "row_checksum",
    "col_checksum",
    "checkpoint",
    "tau",
    "panel_v",
    "q_checksum",
    "qr_matrix",
    "qr_z",
    "qr_shift",
    "qr_deflation",
    "qr_checkpoint",
)
#: Moments within a blocked-reduction iteration a fault can strike.
REDUCTION_PHASES = ("boundary", "post_panel", "post_right", "during_recovery")
#: Moments within a QR outer step a fault can strike. ``during_recovery``
#: is shared with the reduction: the strike lands at recovery entry of
#: whichever stage owns the space.
QR_PHASES = ("pre_sweep", "post_sweep", "shift", "during_recovery")
#: Every known phase.
PHASES = REDUCTION_PHASES + ("pre_sweep", "post_sweep", "shift")
KINDS = ("add", "set", "bitflip")

#: Which phases make sense per space. The checkpoint buffer and the live
#: V block do not exist yet at an iteration boundary (the checkpoint is
#: about to be overwritten by the new save; V is produced by the panel
#: factorization), so planning them there is a configuration error.
#: The shift pair only exists while a sweep's shifts are being computed,
#: and the deflation test reads the iterating matrix before the sweep.
SPACE_PHASES = {
    "matrix": REDUCTION_PHASES,
    "row_checksum": REDUCTION_PHASES,
    "col_checksum": REDUCTION_PHASES,
    "checkpoint": ("post_panel", "post_right", "during_recovery"),
    "tau": REDUCTION_PHASES,
    "panel_v": ("post_panel", "post_right", "during_recovery"),
    "q_checksum": REDUCTION_PHASES,
    "qr_matrix": QR_PHASES,
    "qr_z": QR_PHASES,
    "qr_shift": ("shift",),
    "qr_deflation": ("pre_sweep",),
    "qr_checkpoint": ("pre_sweep", "post_sweep", "during_recovery"),
}

#: The memory spaces owned by the QR stage (used by drivers to split a
#: mixed fault plan between the reduction and the eigen stage).
QR_SPACES = tuple(s for s in SPACES if s.startswith("qr_"))


def flip_bit(x: float, bit: int) -> float:
    """Flip one bit (0 = LSB of mantissa … 63 = sign) of a float64."""
    if not (0 <= bit < 64):
        raise FaultConfigError(f"bit index must be in [0, 64), got {bit}")
    (as_int,) = struct.unpack("<Q", struct.pack("<d", float(x)))
    (flipped,) = struct.unpack("<d", struct.pack("<Q", as_int ^ (1 << bit)))
    return flipped


@dataclass(frozen=True)
class FaultSpec:
    """One planned soft error.

    Attributes
    ----------
    iteration:
        0-based blocked-iteration index; boundary faults are applied at
        the *start* of this iteration (= the previous iteration's
        boundary), other phases strike inside it.
    row, col:
        Target element. For ``space="row_checksum"`` only *row* is used;
        for ``space="col_checksum"`` only *col*; for ``space="tau"``
        *row* indexes the tau array; for ``space="q_checksum"`` set
        ``col=-1`` to hit ``Qr_chk[row]`` or ``row=-1`` to hit
        ``Qc_chk[col]``; for ``space="checkpoint"`` / ``"panel_v"`` the
        indices address the buffer itself. For the QR spaces:
        ``qr_matrix``/``qr_z``/``qr_checkpoint`` address the iterating
        matrix, the Schur-vector matrix and the checkpoint's saved T;
        ``qr_deflation`` uses *row* alone to strike the subdiagonal
        entry ``T[row, row-1]`` the deflation test reads; ``qr_shift``
        uses ``row`` 0/1 to hit the live (trace, det) shift pair.
    kind, magnitude, bit:
        Corruption model parameters (*magnitude* for add/set, *bit* for
        bitflip).
    space, phase, channel:
        Memory space, injection moment, and (for checksum spaces with
        ``channels >= 2``) which weight channel to corrupt.
    """

    iteration: int
    row: int
    col: int
    kind: str = "add"
    magnitude: float = 1.0
    bit: int = 52
    space: str = "matrix"
    phase: str = "boundary"
    channel: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultConfigError(f"unknown fault kind {self.kind!r}")
        if self.space not in SPACES:
            raise FaultConfigError(f"unknown fault space {self.space!r}")
        if self.phase not in PHASES:
            raise FaultConfigError(f"unknown fault phase {self.phase!r}")
        if self.phase not in SPACE_PHASES[self.space]:
            raise FaultConfigError(
                f"space {self.space!r} cannot be struck at phase {self.phase!r} "
                f"(valid: {SPACE_PHASES[self.space]})"
            )
        if self.iteration < 0:
            raise FaultConfigError(f"iteration must be >= 0, got {self.iteration}")
        if self.channel < 0:
            raise FaultConfigError(f"channel must be >= 0, got {self.channel}")
        if self.space == "q_checksum" and (self.row == -1) == (self.col == -1):
            raise FaultConfigError(
                "q_checksum faults need exactly one of row/col set to -1 "
                f"(got row={self.row}, col={self.col})"
            )

    def corrupt(self, value: float) -> float:
        if self.kind == "add":
            return value + self.magnitude
        if self.kind == "set":
            return self.magnitude
        return flip_bit(value, self.bit)


@dataclass
class InjectionTargets:
    """Live state an injection phase can corrupt.

    Drivers build one per hook call; only the spaces whose targets are
    present can be struck (asking for an absent target is a
    :class:`~repro.errors.FaultConfigError` — the plan addressed state
    the driver does not expose at that phase).
    """

    em: EncodedMatrix | None = None
    ext: np.ndarray | None = None  # raw (n+k)x(n+k) storage when em is None
    n: int = 0
    k: int = 1
    taus: np.ndarray | None = None
    qprot: object | None = None       # QProtector (qr_chk / qc_chk vectors)
    checkpoint: object | None = None  # DisklessCheckpointStore (.current.panel)
    panel_v: np.ndarray | None = None  # live V block of the running iteration
    qr_t: np.ndarray | None = None    # iterating quasi-triangular matrix (QR stage)
    qr_z: np.ndarray | None = None    # accumulated Schur vectors (QR stage)
    qr_shift: np.ndarray | None = None  # live [trace, det] double-shift pair
    qr_checkpoint: object | None = None  # QRCheckpointStore (.current.t buffer)

    def __post_init__(self) -> None:
        if self.em is not None:
            self.ext = self.em.ext
            self.n = self.em.n
            self.k = self.em.k


@dataclass
class InjectionRecord:
    """What actually happened when a fault was applied."""

    spec: FaultSpec
    old_value: float
    new_value: float


@dataclass
class FaultInjector:
    """Applies planned faults at their (iteration, phase) strike points.

    Drivers call :meth:`apply_phase` at each hook. The injector is
    idempotent per fault (each spec fires once) and records old/new
    values so tests can verify exact recovery.
    """

    faults: list[FaultSpec] = field(default_factory=list)
    injected: list[InjectionRecord] = field(default_factory=list)
    _fired: set[int] = field(default_factory=set)

    def add(self, spec: FaultSpec) -> "FaultInjector":
        self.faults.append(spec)
        return self

    def pending(self, iteration: int) -> list[FaultSpec]:
        """Faults scheduled for this iteration that have not fired yet."""
        return [
            f
            for idx, f in enumerate(self.faults)
            if f.iteration == iteration and idx not in self._fired
        ]

    def pending_after(self, iteration: int) -> list[FaultSpec]:
        """Faults scheduled at or after this iteration (end-of-run injection
        uses ``iteration >= iteration_count``)."""
        return [
            f
            for idx, f in enumerate(self.faults)
            if f.iteration >= iteration and idx not in self._fired
        ]

    def unfired(self) -> list[FaultSpec]:
        """Every planned fault that never struck."""
        return [f for idx, f in enumerate(self.faults) if idx not in self._fired]

    # -- application -------------------------------------------------------

    def _apply_one(self, f: FaultSpec, t: InjectionTargets) -> InjectionRecord:
        n, k = t.n, t.k
        if f.space in ("matrix", "row_checksum", "col_checksum"):
            if t.ext is None:
                raise FaultConfigError(
                    f"space {f.space!r} needs the encoded matrix, which this "
                    "injection point does not expose"
                )
            if f.space == "matrix":
                if not (0 <= f.row < n and 0 <= f.col < n):
                    raise FaultConfigError(
                        f"fault target ({f.row}, {f.col}) out of range for n={n}"
                    )
                old = float(t.ext[f.row, f.col])
                new = f.corrupt(old)
                t.ext[f.row, f.col] = new
            elif f.space == "row_checksum":
                if not (0 <= f.row < n):
                    raise FaultConfigError(
                        f"row_checksum fault row {f.row} out of range for n={n}"
                    )
                if not (0 <= f.channel < k):
                    raise FaultConfigError(
                        f"row_checksum fault channel {f.channel} out of range (k={k})"
                    )
                old = float(t.ext[f.row, n + f.channel])
                new = f.corrupt(old)
                t.ext[f.row, n + f.channel] = new
            else:  # col_checksum
                if not (0 <= f.col < n):
                    raise FaultConfigError(
                        f"col_checksum fault col {f.col} out of range for n={n}"
                    )
                if not (0 <= f.channel < k):
                    raise FaultConfigError(
                        f"col_checksum fault channel {f.channel} out of range (k={k})"
                    )
                old = float(t.ext[n + f.channel, f.col])
                new = f.corrupt(old)
                t.ext[n + f.channel, f.col] = new
        elif f.space == "tau":
            if t.taus is None:
                raise FaultConfigError("tau fault planned but no tau array exposed")
            if not (0 <= f.row < t.taus.size):
                raise FaultConfigError(
                    f"tau fault index {f.row} out of range for {t.taus.size} taus"
                )
            old = float(t.taus[f.row])
            new = f.corrupt(old)
            t.taus[f.row] = new
        elif f.space == "panel_v":
            v = t.panel_v
            if v is None:
                raise FaultConfigError(
                    "panel_v fault planned but no live panel exposed at this phase"
                )
            if not (0 <= f.row < v.shape[0] and 0 <= f.col < v.shape[1]):
                raise FaultConfigError(
                    f"panel_v fault target ({f.row}, {f.col}) out of range "
                    f"for V of shape {v.shape}"
                )
            old = float(v[f.row, f.col])
            new = f.corrupt(old)
            v[f.row, f.col] = new
        elif f.space == "q_checksum":
            q = t.qprot
            if q is None:
                raise FaultConfigError("q_checksum fault planned but no QProtector exposed")
            if f.col == -1:
                if not (0 <= f.row < q.qr_chk.size):
                    raise FaultConfigError(f"q_checksum row {f.row} out of range")
                old = float(q.qr_chk[f.row])
                new = f.corrupt(old)
                q.qr_chk[f.row] = new
            else:
                if not (0 <= f.col < q.qc_chk.size):
                    raise FaultConfigError(f"q_checksum col {f.col} out of range")
                old = float(q.qc_chk[f.col])
                new = f.corrupt(old)
                q.qc_chk[f.col] = new
        elif f.space == "checkpoint":
            store = t.checkpoint
            cp = getattr(store, "current", None)
            if cp is None:
                raise FaultConfigError(
                    "checkpoint fault planned but no live checkpoint exists "
                    "at this injection point"
                )
            panel = cp.panel
            if not (0 <= f.row < panel.shape[0] and 0 <= f.col < panel.shape[1]):
                raise FaultConfigError(
                    f"checkpoint fault target ({f.row}, {f.col}) out of range "
                    f"for the {panel.shape} panel buffer"
                )
            old = float(panel[f.row, f.col])
            new = f.corrupt(old)
            panel[f.row, f.col] = new
        elif f.space in ("qr_matrix", "qr_deflation"):
            m = t.qr_t
            if m is None:
                raise FaultConfigError(
                    f"{f.space} fault planned but no iterating QR matrix "
                    "exposed at this phase"
                )
            if f.space == "qr_matrix":
                if not (0 <= f.row < m.shape[0] and 0 <= f.col < m.shape[1]):
                    raise FaultConfigError(
                        f"qr_matrix fault target ({f.row}, {f.col}) out of range "
                        f"for shape {m.shape}"
                    )
                row, col = f.row, f.col
            else:  # qr_deflation: corrupt the subdiagonal entry the test reads
                if not (1 <= f.row < m.shape[0]):
                    raise FaultConfigError(
                        f"qr_deflation fault row {f.row} out of range "
                        f"(needs 1 <= row < {m.shape[0]})"
                    )
                row, col = f.row, f.row - 1
            old = float(m[row, col])
            new = f.corrupt(old)
            m[row, col] = new
        elif f.space == "qr_z":
            zt = t.qr_z
            if zt is None:
                raise FaultConfigError(
                    "qr_z fault planned but no Schur-vector matrix exposed "
                    "at this phase (eigvals-only run?)"
                )
            if not (0 <= f.row < zt.shape[0] and 0 <= f.col < zt.shape[1]):
                raise FaultConfigError(
                    f"qr_z fault target ({f.row}, {f.col}) out of range "
                    f"for shape {zt.shape}"
                )
            old = float(zt[f.row, f.col])
            new = f.corrupt(old)
            zt[f.row, f.col] = new
        elif f.space == "qr_shift":
            pair = t.qr_shift
            if pair is None:
                raise FaultConfigError(
                    "qr_shift fault planned but no live shift pair exposed "
                    "at this phase"
                )
            if not (0 <= f.row < pair.size):
                raise FaultConfigError(
                    f"qr_shift fault row {f.row} out of range (pair has "
                    f"{pair.size} entries: trace, det)"
                )
            old = float(pair[f.row])
            new = f.corrupt(old)
            pair[f.row] = new
        elif f.space == "qr_checkpoint":
            store = t.qr_checkpoint
            cp = getattr(store, "current", None)
            if cp is None:
                raise FaultConfigError(
                    "qr_checkpoint fault planned but no live QR checkpoint "
                    "exists at this injection point"
                )
            buf = cp.t
            if not (0 <= f.row < buf.shape[0] and 0 <= f.col < buf.shape[1]):
                raise FaultConfigError(
                    f"qr_checkpoint fault target ({f.row}, {f.col}) out of "
                    f"range for the {buf.shape} checkpoint buffer"
                )
            old = float(buf[f.row, f.col])
            new = f.corrupt(old)
            buf[f.row, f.col] = new
        else:  # pragma: no cover - __post_init__ rejects unknown spaces
            raise FaultConfigError(f"unknown fault space {f.space!r}")
        return InjectionRecord(spec=f, old_value=old, new_value=new)

    def apply_phase(
        self, iteration: int, phase: str, targets: InjectionTargets
    ) -> list[InjectionRecord]:
        """Fire every unfired fault planned for (*iteration*, *phase*)."""
        records = []
        for idx, f in enumerate(self.faults):
            if f.iteration != iteration or f.phase != phase or idx in self._fired:
                continue
            rec = self._apply_one(f, targets)
            records.append(rec)
            self.injected.append(rec)
            self._fired.add(idx)
        return records

    @staticmethod
    def _target_available(f: FaultSpec, t: InjectionTargets) -> bool:
        if f.space in ("matrix", "row_checksum", "col_checksum"):
            return t.ext is not None
        if f.space == "tau":
            return t.taus is not None
        if f.space == "panel_v":
            return t.panel_v is not None
        if f.space == "q_checksum":
            return t.qprot is not None
        if f.space == "checkpoint":
            return getattr(t.checkpoint, "current", None) is not None
        if f.space in ("qr_matrix", "qr_deflation"):
            return t.qr_t is not None
        if f.space == "qr_z":
            return t.qr_z is not None
        if f.space == "qr_shift":
            return t.qr_shift is not None
        if f.space == "qr_checkpoint":
            return getattr(t.qr_checkpoint, "current", None) is not None
        return False

    def apply_due(
        self, iteration: int, phase: str, targets: InjectionTargets
    ) -> list[InjectionRecord]:
        """Fire every unfired *phase* fault planned at or before *iteration*.

        Phases that only occur when the driver takes a particular path
        (a recovery entry, a sweep that computes shifts) cannot promise
        an exact-iteration match — a recovery at step 12 must still honor
        a ``during_recovery`` plan for step 10 whose detection lagged to
        the next verification point. Exact-phase hooks keep using
        :meth:`apply_phase`."""
        records = []
        for idx, f in enumerate(self.faults):
            if f.phase != phase or f.iteration > iteration or idx in self._fired:
                continue
            rec = self._apply_one(f, targets)
            records.append(rec)
            self.injected.append(rec)
            self._fired.add(idx)
        return records

    def apply_pending_after(
        self, targets: InjectionTargets, iteration: int
    ) -> list[InjectionRecord]:
        """End-of-run injection: fire *every* unfired fault planned at or
        past *iteration*, whatever its phase — a fault planned after the
        last iteration strikes the finished state. Specs whose memory
        space no longer exists at the end of the run (e.g. the live V
        block) are left unfired for the caller's never-fired warning."""
        records = []
        for idx, f in enumerate(self.faults):
            if f.iteration < iteration or idx in self._fired:
                continue
            if not self._target_available(f, targets):
                continue
            rec = self._apply_one(f, targets)
            records.append(rec)
            self.injected.append(rec)
            self._fired.add(idx)
        return records

    def apply_at(self, em: EncodedMatrix, iteration: int) -> list[InjectionRecord]:
        """Boundary-phase injection against the encoded matrix alone
        (the paper's original protocol; kept for the simple callers)."""
        return self.apply_phase(iteration, "boundary", InjectionTargets(em=em))

    def apply_to_array(self, a: np.ndarray, iteration: int) -> list[InjectionRecord]:
        """Corrupt a plain (unencoded) matrix — used against the baseline
        driver for the propagation experiments (Fig. 2)."""
        records = []
        for idx, f in enumerate(self.faults):
            if f.iteration != iteration or idx in self._fired or f.space != "matrix":
                continue
            old = float(a[f.row, f.col])
            new = f.corrupt(old)
            a[f.row, f.col] = new
            rec = InjectionRecord(spec=f, old_value=old, new_value=new)
            records.append(rec)
            self.injected.append(rec)
            self._fired.add(idx)
        return records

    @property
    def count_fired(self) -> int:
        return len(self._fired)
