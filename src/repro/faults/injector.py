"""Soft-error injection (the paper's experimental methodology).

Faults are *planned* as :class:`FaultSpec` records — which element, at
the start of which iteration, corrupted how — and *applied* by the
drivers through a :class:`FaultInjector` hook at iteration boundaries
(matching the paper's protocol: "the soft error is injected when the
first iteration has finished, and the second iteration has not yet
started").

Corruption models:

* ``"add"``   — add a signed magnitude (the analytical default; its
  detectability is magnitude-controlled),
* ``"set"``   — overwrite with a value,
* ``"bitflip"`` — flip one bit of the IEEE-754 representation (the
  physical model: an SEU in DRAM).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultConfigError
from repro.abft.encoding import EncodedMatrix

#: Memory spaces a fault can strike.
SPACES = ("matrix", "row_checksum", "col_checksum")
KINDS = ("add", "set", "bitflip")


def flip_bit(x: float, bit: int) -> float:
    """Flip one bit (0 = LSB of mantissa … 63 = sign) of a float64."""
    if not (0 <= bit < 64):
        raise FaultConfigError(f"bit index must be in [0, 64), got {bit}")
    (as_int,) = struct.unpack("<Q", struct.pack("<d", float(x)))
    (flipped,) = struct.unpack("<d", struct.pack("<Q", as_int ^ (1 << bit)))
    return flipped


@dataclass(frozen=True)
class FaultSpec:
    """One planned soft error.

    Attributes
    ----------
    iteration:
        0-based blocked-iteration index; the fault is applied at the
        *start* of this iteration (= the previous iteration's boundary).
    row, col:
        Target element. For ``space="row_checksum"`` only *row* is used;
        for ``space="col_checksum"`` only *col*.
    kind, magnitude, bit:
        Corruption model parameters (*magnitude* for add/set, *bit* for
        bitflip).
    """

    iteration: int
    row: int
    col: int
    kind: str = "add"
    magnitude: float = 1.0
    bit: int = 52
    space: str = "matrix"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultConfigError(f"unknown fault kind {self.kind!r}")
        if self.space not in SPACES:
            raise FaultConfigError(f"unknown fault space {self.space!r}")
        if self.iteration < 0:
            raise FaultConfigError(f"iteration must be >= 0, got {self.iteration}")

    def corrupt(self, value: float) -> float:
        if self.kind == "add":
            return value + self.magnitude
        if self.kind == "set":
            return self.magnitude
        return flip_bit(value, self.bit)


@dataclass
class InjectionRecord:
    """What actually happened when a fault was applied."""

    spec: FaultSpec
    old_value: float
    new_value: float


@dataclass
class FaultInjector:
    """Applies planned faults at iteration boundaries.

    Drivers call :meth:`apply_at` once per iteration start. The injector
    is idempotent per fault (each spec fires once) and records old/new
    values so tests can verify exact recovery.
    """

    faults: list[FaultSpec] = field(default_factory=list)
    injected: list[InjectionRecord] = field(default_factory=list)
    _fired: set[int] = field(default_factory=set)

    def add(self, spec: FaultSpec) -> "FaultInjector":
        self.faults.append(spec)
        return self

    def pending(self, iteration: int) -> list[FaultSpec]:
        """Faults scheduled for this iteration that have not fired yet."""
        return [
            f
            for idx, f in enumerate(self.faults)
            if f.iteration == iteration and idx not in self._fired
        ]

    def pending_after(self, iteration: int) -> list[FaultSpec]:
        """Faults scheduled at or after this iteration (end-of-run injection
        uses ``iteration >= iteration_count``)."""
        return [
            f
            for idx, f in enumerate(self.faults)
            if f.iteration >= iteration and idx not in self._fired
        ]

    def apply_at(self, em: EncodedMatrix, iteration: int) -> list[InjectionRecord]:
        """Corrupt the encoded matrix per the plan; returns the records."""
        records = []
        for idx, f in enumerate(self.faults):
            if f.iteration != iteration or idx in self._fired:
                continue
            n = em.n
            if f.space == "matrix":
                if not (0 <= f.row < n and 0 <= f.col < n):
                    raise FaultConfigError(f"fault target ({f.row}, {f.col}) out of range")
                old = float(em.data[f.row, f.col])
                new = f.corrupt(old)
                em.data[f.row, f.col] = new
            elif f.space == "row_checksum":
                old = float(em.row_checksums[f.row])
                new = f.corrupt(old)
                em.ext[f.row, n] = new
            else:  # col_checksum
                old = float(em.col_checksums[f.col])
                new = f.corrupt(old)
                em.ext[n, f.col] = new
            rec = InjectionRecord(spec=f, old_value=old, new_value=new)
            records.append(rec)
            self.injected.append(rec)
            self._fired.add(idx)
        return records

    def apply_to_array(self, a: np.ndarray, iteration: int) -> list[InjectionRecord]:
        """Corrupt a plain (unencoded) matrix — used against the baseline
        driver for the propagation experiments (Fig. 2)."""
        records = []
        for idx, f in enumerate(self.faults):
            if f.iteration != iteration or idx in self._fired or f.space != "matrix":
                continue
            old = float(a[f.row, f.col])
            new = f.corrupt(old)
            a[f.row, f.col] = new
            rec = InjectionRecord(spec=f, old_value=old, new_value=new)
            records.append(rec)
            self.injected.append(rec)
            self._fired.add(idx)
        return records

    @property
    def count_fired(self) -> int:
        return len(self._fired)
