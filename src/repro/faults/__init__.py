"""Soft-error injection: fault specs, the injector hook, the Fig. 2a
region partition, campaign sweeps, the crash-proof campaign journal,
and SER arrival models."""

from repro.faults.injector import (
    FaultSpec,
    FaultInjector,
    InjectionRecord,
    InjectionTargets,
    flip_bit,
    SPACES,
    PHASES,
    SPACE_PHASES,
    KINDS,
)
from repro.faults.ser import (
    SoftErrorModel,
    fit_to_errors_per_second,
    expected_errors,
)
from repro.faults.campaign import (
    TrialOutcome,
    CampaignResult,
    build_fault_grid,
    build_adversarial_grid,
    run_campaign,
)
from repro.faults.executor import OUTCOMES, classify_outcome, run_ft_trials, run_one_trial
from repro.faults.journal import CampaignJournal, grid_fingerprint
from repro.faults.regions import (
    AREA_NO_PROPAGATION,
    AREA_ROW_PROPAGATION,
    AREA_FULL_PROPAGATION,
    classify,
    sample_in_area,
    Moment,
    BEGIN,
    MIDDLE,
    END,
    iteration_count,
    finished_cols_at,
)

__all__ = [
    "SoftErrorModel",
    "fit_to_errors_per_second",
    "expected_errors",
    "TrialOutcome",
    "CampaignResult",
    "build_fault_grid",
    "build_adversarial_grid",
    "run_campaign",
    "run_ft_trials",
    "run_one_trial",
    "OUTCOMES",
    "classify_outcome",
    "CampaignJournal",
    "grid_fingerprint",
    "FaultSpec",
    "FaultInjector",
    "InjectionRecord",
    "InjectionTargets",
    "flip_bit",
    "SPACES",
    "PHASES",
    "SPACE_PHASES",
    "KINDS",
    "AREA_NO_PROPAGATION",
    "AREA_ROW_PROPAGATION",
    "AREA_FULL_PROPAGATION",
    "classify",
    "sample_in_area",
    "Moment",
    "BEGIN",
    "MIDDLE",
    "END",
    "iteration_count",
    "finished_cols_at",
]
