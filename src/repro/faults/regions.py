"""The paper's matrix partition into fault regions (Fig. 2a).

At an iteration boundary with ``p`` finished columns, the matrix splits
into three areas by how an error there propagates (§IV-A, Fig. 2):

* **Area 1** — the *upper* part of the not-yet-finished columns (rows
  above the trailing block): rows ``0..p``, columns ``p..N-1``. An error
  here is carried along by subsequent right updates and pollutes its row
  of H (Fig. 2c).
* **Area 2** — the trailing matrix proper, rows ``p+1..N-1``, columns
  ``p..N-1`` (the G block): an error feeds into the panel factorization
  and both updates and pollutes essentially everything to its right
  (Fig. 2d).
* **Area 3** — the finished part on the host, columns ``0..p-1`` (both
  the H values above the subdiagonal and the Householder vectors below):
  never read again by the factorization, so the error stays put
  (Fig. 2b).

The paper's example (N=158, nb=32, injection after iteration 1, i.e.
p=32) places (53, 16) in area 3, (31, 127) in area 1, (63, 127) in
area 2 — reproduced in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import FaultConfigError


AREA_NO_PROPAGATION = 3
AREA_ROW_PROPAGATION = 1
AREA_FULL_PROPAGATION = 2


def classify(i: int, j: int, p: int, n: int) -> int:
    """Area (1, 2 or 3) of element (i, j) when ``p`` columns are finished."""
    if not (0 <= i < n and 0 <= j < n):
        raise FaultConfigError(f"element ({i}, {j}) outside an {n} x {n} matrix")
    if j < p:
        return AREA_NO_PROPAGATION
    if i <= p:
        return AREA_ROW_PROPAGATION
    return AREA_FULL_PROPAGATION


def sample_in_area(
    area: int,
    p: int,
    n: int,
    rng: np.random.Generator,
) -> tuple[int, int]:
    """Draw a uniformly random element of the given area.

    Raises :class:`FaultConfigError` when the area is empty at this *p*
    (e.g. area 3 before any column has finished).
    """
    if area == AREA_NO_PROPAGATION:
        # The paper's area-3 experiments strike the Q data (the Householder
        # vectors below the first subdiagonal of finished columns) — the
        # finished H entries above them are never read again either, but
        # only the Q region is covered by the end-of-run check, so that is
        # where the region sampler aims.
        jmax = min(p, n - 2)
        if jmax <= 0:
            raise FaultConfigError("area 3 is empty before the first panel finishes")
        j = int(rng.integers(0, jmax))
        i = int(rng.integers(j + 2, n))
    elif area == AREA_ROW_PROPAGATION:
        if p >= n:
            raise FaultConfigError("area 1 is empty once the factorization is done")
        i = int(rng.integers(0, p + 1))
        j = int(rng.integers(p, n))
    elif area == AREA_FULL_PROPAGATION:
        if p + 1 >= n:
            raise FaultConfigError("area 2 is empty once the trailing block vanishes")
        i = int(rng.integers(p + 1, n))
        j = int(rng.integers(p, n))
    else:
        raise FaultConfigError(f"unknown area {area}")
    assert classify(i, j, p, n) == area
    return i, j


@dataclass(frozen=True)
class Moment:
    """When during the factorization a fault strikes.

    The paper's Tables II/III use Begin / Middle / End; expressed here as
    a fraction of the iteration count, resolved against a concrete
    (n, nb) at injection-planning time.
    """

    fraction: float
    label: str = ""

    def iteration(self, num_iters: int) -> int:
        if not (0.0 <= self.fraction <= 1.0):
            raise FaultConfigError(f"moment fraction must be in [0,1], got {self.fraction}")
        if num_iters <= 0:
            raise FaultConfigError("factorization has no iterations")
        return min(int(round(self.fraction * (num_iters - 1))), num_iters - 1)


BEGIN = Moment(0.0, "B")
MIDDLE = Moment(0.5, "M")
END = Moment(1.0, "E")


@lru_cache(maxsize=4096)
def iteration_count(n: int, nb: int) -> int:
    """Number of blocked iterations the FT driver performs for (n, nb).

    Pure in (n, nb) and asked for once per campaign trial — memoized.
    """
    count = 0
    p = 0
    while n - 1 - p > 0:
        count += 1
        p += min(nb, n - 1 - p)
    return count


@lru_cache(maxsize=4096)
def finished_cols_at(iteration: int, n: int, nb: int) -> int:
    """Finished columns ``p`` at the *start* of the given iteration."""
    p = 0
    for _ in range(iteration):
        if n - 1 - p <= 0:
            break
        p += min(nb, n - 1 - p)
    return p
