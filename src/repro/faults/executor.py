"""Crash-proof multiprocess trial runner for fault-injection campaigns.

A campaign is embarrassingly parallel: every trial is an independent
FT-GEHRD run under its own fault plan. The expensive part of scaling it
out is *not* the orchestration — it is keeping determinism. The grid of
:class:`~repro.faults.injector.FaultSpec` plans is therefore built
entirely in the parent (one RNG, one draw order, identical to the serial
sweep), and only the frozen, picklable specs travel to the workers. A
campaign run with ``workers=4`` produces byte-identical trial lists to
``workers=1``.

Hardening beyond the plain pool:

* **per-trial timeout** — a wedged worker cannot stall the campaign;
  its chunk's trials are graded ``aborted`` and the pool is rebuilt;
* **worker-crash recovery** — a ``BrokenProcessPool`` (segfault,
  OOM-kill, deliberate ``os._exit``) rebuilds the pool and retries each
  lost chunk exactly once before grading its trials ``aborted``;
* **incremental results** — an ``on_result`` callback fires as each
  trial completes (the campaign journal appends through it), and a
  ``precomputed`` map short-circuits trials a resumed campaign already
  journaled.

Workers are primed once via the pool initializer with the (read-only)
input matrix, the FT configuration and the residual bar, so the per-task
payload is just the plan. Tasks are shipped in contiguous chunks to
amortize IPC, and results are reassembled in grid order.

Data plane: with ``transport="auto"`` (the default) a base matrix big
enough to beat a pickle travels as a ~100-byte
:class:`~repro.utils.shm.SharedMatrix` handle over ``/dev/shm`` instead
of being serialized into each worker. Workers attach the segment once,
share the same read-only pages for every trial of every chunk, and pair
the attached view with the per-process
:func:`~repro.perf.workspace.process_workspace` arena — a warm worker
performs zero allocation and zero deserialization per trial. The
segment is owned by a :class:`~repro.utils.shm.SegmentRegistry` tied to
the pool, which guarantees the unlink on shutdown, rebuild, crash and
interpreter exit.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING, Callable

from repro.errors import EscalationExhausted, ReproError
from repro.faults.injector import QR_SPACES, FaultInjector, FaultSpec
from repro.resilience.ladder import max_tier as _deepest_tier
from repro.utils.procpool import ResilientProcessPool
from repro.utils.shm import (
    SegmentRegistry,
    SharedMatrix,
    sweep_stale_segments,
    use_shm_for,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from repro.core.config import FTConfig

#: Outcome taxonomy, one label per trial (see docs/resilience.md):
#: every trial lands in exactly one bucket, campaign-crash included.
OUTCOMES = ("detected", "corrected", "masked", "escalated", "restarted", "aborted")


@dataclass
class TrialOutcome:
    """One injected run's result.

    ``spec`` is the plan's primary fault (compatibility with single-fault
    grids); ``specs`` carries the full plan when a trial injects several.
    """

    spec: FaultSpec
    area: int
    detected: bool
    corrected: bool
    residual: float
    recoveries: int
    q_corrections: int
    failure: str = ""
    outcome: str = ""
    max_tier: str = ""
    restarts: int = 0
    tau_repairs: int = 0
    specs: tuple[FaultSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.specs:
            self.specs = (self.spec,)
        if not self.outcome:
            self.outcome = classify_outcome(
                detected=self.detected,
                corrected=self.corrected,
                restarts=self.restarts,
                max_tier=self.max_tier,
                failure=self.failure,
            )

    @property
    def recovered(self) -> bool:
        return self.corrected and not self.failure


def classify_outcome(
    *,
    detected: bool,
    corrected: bool,
    restarts: int,
    max_tier: str,
    failure: str,
) -> str:
    """Map a trial's raw facts onto the outcome taxonomy.

    ``aborted``   — the run raised (or timed out / lost its worker);
    ``restarted`` — clean result, but only via the full-restart tier;
    ``escalated`` — clean result via deep rollback (beyond the paper's
    one-tier reverse+redo);
    ``corrected`` — clean result, detection + ordinary recovery;
    ``masked``    — clean result, nothing ever detected (sub-threshold);
    ``detected``  — the final state is wrong (detected-but-uncorrected,
    the paper's fail-stop residue; a silent-wrong run lands here too —
    the end-of-run verify *is* the detection).
    """
    if failure:
        return "aborted"
    if corrected:
        if restarts > 0:
            return "restarted"
        if max_tier == "deep_rollback":
            return "escalated"
        return "corrected" if detected else "masked"
    return "detected"


def run_one_trial(
    a: np.ndarray,
    plan: "FaultSpec | tuple[FaultSpec, ...] | list[FaultSpec]",
    area: int,
    cfg: "FTConfig",
    residual_tol: float,
    *,
    workspace=None,
) -> TrialOutcome:
    """Run FT-GEHRD under one fault plan and grade the outcome.

    ``residual_tol`` is the pass bar on the Table II residual after
    recovery — recovered runs must be as good as fault-free ones.
    ``workspace`` is a long-lived scratch arena for callers that run
    many trials back to back (the pool workers and the serial sweep);
    without one the driver allocates a fresh arena per trial.
    """
    from repro.core.ft_hessenberg import ft_gehrd
    from repro.linalg.orghr import orghr
    from repro.linalg.verify import extract_hessenberg, factorization_residual

    specs = tuple(plan) if isinstance(plan, (tuple, list)) else (plan,)
    inj = FaultInjector(faults=list(specs))
    failure = ""
    detected = corrected = False
    residual = float("inf")
    recov = qcorr = restarts = taurep = 0
    tier = ""
    try:
        with warnings.catch_warnings():
            # NaN-poisoned trials spray numpy RuntimeWarnings; unfired-spec
            # warnings are the caller's business, not per-trial noise
            warnings.simplefilter("ignore", RuntimeWarning)
            ft = ft_gehrd(a, cfg, injector=inj, workspace=workspace)
            q = orghr(ft.a, ft.taus)
            h = extract_hessenberg(ft.a)
            residual = factorization_residual(a, q, h)
        detected = (
            ft.detections > 0
            or (ft.q_report is not None and ft.q_report.count > 0)
            or ft.tau_repairs > 0
            or ft.checkpoint_corruptions > 0
        )
        corrected = residual <= residual_tol
        recov = len(ft.recoveries)
        qcorr = ft.q_report.count if ft.q_report else 0
        restarts = ft.restarts
        taurep = ft.tau_repairs
        tier = _deepest_tier(r.tier for r in ft.recoveries)
    except EscalationExhausted as exc:  # ladder exhausted: structured refusal
        detected = True
        failure = f"EscalationExhausted: {exc}"
        if exc.report is not None:
            tier = _deepest_tier(exc.report.attempts)
    except ReproError as exc:  # recovery machinery failed outright
        failure = f"{type(exc).__name__}: {exc}"
    return TrialOutcome(
        spec=specs[0],
        area=area,
        detected=detected,
        corrected=corrected,
        residual=residual,
        recoveries=recov,
        q_corrections=qcorr,
        failure=failure,
        max_tier=tier,
        restarts=restarts,
        tau_repairs=taurep,
        specs=specs,
    )


@dataclass
class EigTrialConfig:
    """Configuration bundle for end-to-end eigensolver trials.

    Carries both stages' configs plus the fault-free reference spectrum
    (computed once in the parent — workers grade against it instead of
    re-running the clean pipeline per trial). Exposes ``nb``/``channels``
    so the worker initializer can presize its arena exactly as it does
    for a plain :class:`~repro.core.config.FTConfig`.
    """

    ft: "FTConfig"
    qr: object  # QRProtectConfig (typed loosely to avoid an import cycle)
    ref_eigvals: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=complex))

    @property
    def nb(self) -> int:
        return self.ft.nb

    @property
    def channels(self) -> int:
        return getattr(self.ft, "channels", 1)


def spectrum_distance(eigs: np.ndarray, ref: np.ndarray) -> float:
    """Relative distance between two spectra, paired by the canonical
    complex sort (conjugate pairs line up under ``np.sort_complex``)."""
    if eigs.size != ref.size:
        return float("inf")
    if eigs.size == 0:
        return 0.0
    a = np.sort_complex(np.asarray(eigs, dtype=complex))
    b = np.sort_complex(np.asarray(ref, dtype=complex))
    scale = max(float(np.max(np.abs(b))), 1.0)
    return float(np.max(np.abs(a - b))) / scale


def run_one_eig_trial(
    a: np.ndarray,
    plan: "FaultSpec | tuple[FaultSpec, ...] | list[FaultSpec]",
    area: int,
    cfg: EigTrialConfig,
    residual_tol: float,
    *,
    workspace=None,
) -> TrialOutcome:
    """Run the full protected eigensolver pipeline under one fault plan.

    The plan is split by memory space: reduction-stage specs drive an
    injector through :func:`~repro.core.ft_hessenberg.ft_gehrd`, the
    ``qr_*`` specs drive a second injector through
    :func:`~repro.eigen.ft_hqr.ft_hqr` on the extracted Hessenberg form.
    The grade is the spectrum distance against the fault-free reference
    eigenvalues carried in *cfg* — a corrected run must reproduce the
    clean pipeline's spectrum to within *residual_tol*.
    """
    from repro.core.ft_hessenberg import ft_gehrd
    from repro.eigen.ft_hqr import ft_hqr
    from repro.linalg.verify import extract_hessenberg

    specs = tuple(plan) if isinstance(plan, (tuple, list)) else (plan,)
    red_specs = [f for f in specs if f.space not in QR_SPACES]
    qr_specs = [f for f in specs if f.space in QR_SPACES]
    failure = ""
    detected = corrected = False
    residual = float("inf")
    recov = qcorr = restarts = taurep = 0
    tier = ""
    tiers: list[str] = []
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            inj_red = FaultInjector(faults=red_specs) if red_specs else None
            ft = ft_gehrd(a, cfg.ft, injector=inj_red, workspace=workspace)
            h = extract_hessenberg(ft.a)
            inj_qr = FaultInjector(faults=qr_specs) if qr_specs else None
            fr = ft_hqr(h, cfg.qr, injector=inj_qr, check_input=False)
            residual = spectrum_distance(fr.eigvals, cfg.ref_eigvals)
        detected = (
            ft.detections > 0
            or (ft.q_report is not None and ft.q_report.count > 0)
            or ft.tau_repairs > 0
            or ft.checkpoint_corruptions > 0
            or fr.detections > 0
            or fr.checkpoint_corruptions > 0
        )
        corrected = residual <= residual_tol
        recov = len(ft.recoveries) + len(fr.recoveries)
        qcorr = ft.q_report.count if ft.q_report else 0
        restarts = ft.restarts
        taurep = ft.tau_repairs
        tiers = [r.tier for r in ft.recoveries] + [r.tier for r in fr.recoveries]
        tier = _deepest_tier(tiers)
    except EscalationExhausted as exc:  # ladder exhausted: structured refusal
        detected = True
        failure = f"EscalationExhausted: {exc}"
        if exc.report is not None:
            tier = _deepest_tier(exc.report.attempts)
    except ReproError as exc:  # recovery machinery failed outright
        failure = f"{type(exc).__name__}: {exc}"
    return TrialOutcome(
        spec=specs[0],
        area=area,
        detected=detected,
        corrected=corrected,
        residual=residual,
        recoveries=recov,
        q_corrections=qcorr,
        failure=failure,
        max_tier=tier,
        restarts=restarts,
        tau_repairs=taurep,
        specs=specs,
    )


def _aborted_outcome(plan, area: int, why: str) -> TrialOutcome:
    specs = tuple(plan) if isinstance(plan, (tuple, list)) else (plan,)
    return TrialOutcome(
        spec=specs[0],
        area=area,
        detected=False,
        corrected=False,
        residual=float("inf"),
        recoveries=0,
        q_corrections=0,
        failure=why,
        specs=specs,
    )


# Per-process state, set once by the pool initializer. A module-level
# dict (not fork-captured closure state) so the same code path works
# under both fork and spawn start methods.
_WORKER: dict = {}


def _init_worker(
    a: "np.ndarray | SharedMatrix",
    cfg: "FTConfig",
    residual_tol: float,
    trial_fn: "Callable" = run_one_trial,
) -> None:
    from repro.perf.workspace import process_workspace

    if isinstance(a, SharedMatrix):
        # attach once; every trial of every chunk re-views the same
        # read-only pages (the driver copies into its own encoded
        # storage, so read-only is exactly the access it needs)
        a = a.attach()
    _WORKER["a"] = a
    _WORKER["cfg"] = cfg
    _WORKER["residual_tol"] = residual_tol
    _WORKER["trial_fn"] = trial_fn
    # the per-process arena: presized here so the steady state of a
    # warm worker allocates nothing at all between trials
    ws = process_workspace()
    ws.presize(a.shape[0], cfg.nb, getattr(cfg, "channels", 1))
    _WORKER["ws"] = ws


def _maybe_crash(index: int, crash_index: int | None, crash_once_path: str | None) -> None:
    """Chaos hook for the crash-recovery tests and the CI smoke job:
    die hard (no exception, no cleanup — like a segfault or OOM kill)
    when asked to process trial *crash_index*. With *crash_once_path*
    set, a sentinel file makes the crash happen exactly once."""
    if crash_index is None or index != crash_index:
        return
    if crash_once_path is not None:
        if os.path.exists(crash_once_path):
            return
        with open(crash_once_path, "w") as fh:
            fh.write("crashed\n")
    os._exit(17)


def _run_chunk(payload) -> list:
    tasks, crash_index, crash_once_path = payload
    a = _WORKER["a"]
    cfg = _WORKER["cfg"]
    residual_tol = _WORKER["residual_tol"]
    trial_fn = _WORKER.get("trial_fn", run_one_trial)
    ws = _WORKER.get("ws")
    out = []
    for index, plan, area in tasks:
        _maybe_crash(index, crash_index, crash_once_path)
        out.append(
            (index, trial_fn(a, plan, area, cfg, residual_tol, workspace=ws))
        )
    return out


def choose_execution_mode(workers: int, pending: int) -> str:
    """``"serial"`` or ``"pool"`` — where a trial grid should execute.

    Pooled execution only pays for its process fan-out when the grid can
    fill at least ~2 chunks per worker (the default chunking); below
    that — including ``workers <= 1`` and the everything-resumed case —
    the in-process sweep is both faster and byte-identical.
    """
    if workers <= 1 or pending < 2 * workers:
        return "serial"
    return "pool"


def run_ft_trials(
    a: np.ndarray,
    tasks: list,
    cfg: "FTConfig",
    *,
    residual_tol: float,
    workers: int = 1,
    chunksize: int | None = None,
    trial_timeout: float | None = None,
    on_result: "Callable[[int, TrialOutcome], None] | None" = None,
    precomputed: "dict[int, TrialOutcome] | None" = None,
    crash_index: int | None = None,
    crash_once_path: str | None = None,
    transport: str = "auto",
    shm_min_bytes: int | None = None,
    trial_fn: "Callable" = run_one_trial,
) -> list[TrialOutcome]:
    """Run every (plan, area) task; order of results matches *tasks*.

    ``workers <= 1`` runs serially in-process (no pool overhead, easiest
    to debug), and so does any grid too small to fill ~2 chunks per
    worker (:func:`choose_execution_mode` — spinning up a pool for a
    handful of trials costs more than it saves); anything larger fans
    the chunked task list out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`. ``trial_timeout``
    (seconds per trial, scaled per chunk) and the broken-pool retry make
    the pooled path crash-proof: every trial always ends in an outcome.
    ``precomputed`` maps grid indices to already-known outcomes (resume);
    ``on_result(index, outcome)`` fires for each newly computed trial.

    ``transport`` picks how the base matrix reaches the workers:
    ``"auto"`` ships it over shared memory when that beats pickling
    (see :func:`repro.utils.shm.use_shm_for`), ``"shm"`` forces shared
    memory (raising where unavailable), ``"pickle"`` forces the classic
    serialized path. The serial path has no transport and ignores this.

    ``trial_fn`` is the per-trial driver — :func:`run_one_trial` (the
    reduction campaign) by default, :func:`run_one_eig_trial` for the
    end-to-end eigensolver campaign. It must be a picklable module-level
    callable with the same signature, since it rides the pool
    initializer to the workers.
    """
    if not tasks:
        return []
    precomputed = precomputed or {}
    results: dict[int, TrialOutcome] = dict(precomputed)
    pending = [
        (i, plan, area)
        for i, (plan, area) in enumerate(tasks)
        if i not in precomputed
    ]

    def emit(index: int, outcome: TrialOutcome) -> None:
        results[index] = outcome
        if on_result is not None:
            on_result(index, outcome)

    if choose_execution_mode(workers, len(pending)) == "serial":
        from repro.perf.workspace import Workspace

        ws = Workspace()  # one arena reused across the serial sweep
        for index, plan, area in pending:
            _maybe_crash(index, crash_index, crash_once_path)
            emit(index, trial_fn(a, plan, area, cfg, residual_tol, workspace=ws))
        return [results[i] for i in range(len(tasks))]

    workers = min(workers, len(pending))
    if chunksize is None:
        # ~2 chunks per worker: enough slack to absorb stragglers, few
        # enough round-trips that small grids aren't dominated by IPC
        chunksize = max(1, -(-len(pending) // (workers * 2)))
    chunks = [pending[i : i + chunksize] for i in range(0, len(pending), chunksize)]

    payload_a: "np.ndarray | SharedMatrix" = a
    registry = None
    if use_shm_for(a.nbytes, transport, min_bytes=shm_min_bytes):
        registry = SegmentRegistry()  # its constructor sweeps stale segments
        payload_a = SharedMatrix.create(a, registry=registry)
    else:
        # the pickle path builds no registry, so nothing else reclaims
        # dead-pid segments a previous crashed run left in /dev/shm
        sweep_stale_segments()

    queue = list(range(len(chunks)))
    attempts = {ci: 0 for ci in queue}
    pool = ResilientProcessPool(
        workers,
        initializer=_init_worker,
        initargs=(payload_a, cfg, residual_tol, trial_fn),
        registry=registry,
    )
    try:
        while queue:
            # Retried chunks run one at a time: a poisoned chunk that
            # breaks the pool again must not take the other survivors'
            # retries down with it as collateral.
            if attempts[queue[0]] > 0:
                wave, queue = queue[:1], queue[1:]
            else:
                wave, queue = queue, []
            futures = [
                (ci, pool.submit(_run_chunk, (chunks[ci], crash_index, crash_once_path)))
                for ci in wave
            ]
            lost: list[int] = []
            rebuild = False
            for ci, fut in futures:
                chunk = chunks[ci]
                if rebuild and not fut.done():
                    # the pool is already known broken; everything still
                    # in flight is lost with it
                    lost.append(ci)
                    continue
                timeout = None
                if trial_timeout is not None and not fut.done():
                    timeout = trial_timeout * len(chunk)
                try:
                    for index, outcome in fut.result(timeout=timeout):
                        emit(index, outcome)
                except FuturesTimeout:
                    # a wedged worker: grade the chunk aborted and rebuild
                    # the pool to reclaim the process
                    for index, plan, area in chunk:
                        emit(index, _aborted_outcome(
                            plan, area,
                            f"Timeout: trial exceeded {trial_timeout:.1f}s budget",
                        ))
                    rebuild = True
                except BrokenExecutor:
                    lost.append(ci)
                    rebuild = True
            if rebuild:
                pool.rebuild()
            for ci in lost:
                if attempts[ci] < 1:
                    # one retry: a crash that follows the chunk around is
                    # the chunk's fault, not the environment's
                    attempts[ci] += 1
                    queue.append(ci)
                else:
                    for index, plan, area in chunks[ci]:
                        if index not in results:
                            emit(index, _aborted_outcome(
                                plan, area,
                                "WorkerLost: process pool broke twice on this chunk",
                            ))
    finally:
        pool.shutdown()
    return [results[i] for i in range(len(tasks))]
