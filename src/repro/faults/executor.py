"""Multiprocess trial runner for fault-injection campaigns.

A campaign is embarrassingly parallel: every trial is an independent
FT-GEHRD run under its own single-fault plan. The expensive part of
scaling it out is *not* the orchestration — it is keeping determinism.
The grid of :class:`~repro.faults.injector.FaultSpec` plans is therefore
built entirely in the parent (one RNG, one draw order, identical to the
serial sweep), and only the frozen, picklable specs travel to the
workers. A campaign run with ``workers=4`` produces byte-identical
trial lists to ``workers=1``.

Workers are primed once via the pool initializer with the (read-only)
input matrix, the FT configuration and the residual bar, so the per-task
payload is just the spec. Tasks are shipped in contiguous chunks to
amortize IPC, and results are reassembled in grid order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.faults.injector import FaultInjector, FaultSpec

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from repro.core.config import FTConfig


@dataclass
class TrialOutcome:
    """One injected run's result."""

    spec: FaultSpec
    area: int
    detected: bool
    corrected: bool
    residual: float
    recoveries: int
    q_corrections: int
    failure: str = ""

    @property
    def recovered(self) -> bool:
        return self.corrected and not self.failure


def run_one_trial(
    a: np.ndarray,
    spec: FaultSpec,
    area: int,
    cfg: "FTConfig",
    residual_tol: float,
) -> TrialOutcome:
    """Run FT-GEHRD under one fault plan and grade the outcome.

    ``residual_tol`` is the pass bar on the Table II residual after
    recovery — recovered runs must be as good as fault-free ones.
    """
    from repro.core.ft_hessenberg import ft_gehrd
    from repro.linalg.orghr import orghr
    from repro.linalg.verify import extract_hessenberg, factorization_residual

    inj = FaultInjector().add(spec)
    failure = ""
    try:
        ft = ft_gehrd(a, cfg, injector=inj)
        q = orghr(ft.a, ft.taus)
        h = extract_hessenberg(ft.a)
        residual = factorization_residual(a, q, h)
        detected = ft.detections > 0 or (ft.q_report is not None and ft.q_report.count > 0)
        corrected = residual <= residual_tol
        recov = len(ft.recoveries)
        qcorr = ft.q_report.count if ft.q_report else 0
    except ReproError as exc:  # recovery machinery failed outright
        residual, detected, corrected, recov, qcorr = float("inf"), False, False, 0, 0
        failure = f"{type(exc).__name__}: {exc}"
    return TrialOutcome(
        spec=spec,
        area=area,
        detected=detected,
        corrected=corrected,
        residual=residual,
        recoveries=recov,
        q_corrections=qcorr,
        failure=failure,
    )


# Per-process state, set once by the pool initializer. A module-level
# dict (not fork-captured closure state) so the same code path works
# under both fork and spawn start methods.
_WORKER: dict = {}


def _init_worker(a: np.ndarray, cfg: "FTConfig", residual_tol: float) -> None:
    _WORKER["a"] = a
    _WORKER["cfg"] = cfg
    _WORKER["residual_tol"] = residual_tol


def _run_chunk(tasks: list[tuple[FaultSpec, int]]) -> list[TrialOutcome]:
    a = _WORKER["a"]
    cfg = _WORKER["cfg"]
    residual_tol = _WORKER["residual_tol"]
    return [run_one_trial(a, spec, area, cfg, residual_tol) for spec, area in tasks]


def run_ft_trials(
    a: np.ndarray,
    tasks: list[tuple[FaultSpec, int]],
    cfg: "FTConfig",
    *,
    residual_tol: float,
    workers: int = 1,
    chunksize: int | None = None,
) -> list[TrialOutcome]:
    """Run every (spec, area) task; order of results matches *tasks*.

    ``workers <= 1`` runs serially in-process (no pool overhead, easiest
    to debug); anything larger fans the chunked task list out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`.
    """
    if not tasks:
        return []
    if workers <= 1:
        return [run_one_trial(a, spec, area, cfg, residual_tol) for spec, area in tasks]

    workers = min(workers, len(tasks))
    if chunksize is None:
        # a few chunks per worker: balances stragglers against IPC cost
        chunksize = max(1, len(tasks) // (workers * 4))
    chunks = [tasks[i : i + chunksize] for i in range(0, len(tasks), chunksize)]
    outcomes: list[TrialOutcome] = []
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(a, cfg, residual_tol),
    ) as pool:
        for chunk_result in pool.map(_run_chunk, chunks):
            outcomes.extend(chunk_result)
    return outcomes
