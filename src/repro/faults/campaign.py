"""Fault-injection campaigns: sweeps over areas, moments and sizes.

A campaign runs the FT driver repeatedly under a grid of fault plans and
aggregates recovery outcomes — the machinery behind the Fig. 6
uncertainty bands and the recovery-coverage tests.

Two grid builders:

* :func:`build_fault_grid` — the paper's protocol: one matrix fault per
  (area × moment) cell, struck at an iteration boundary;
* :func:`build_adversarial_grid` — the widened surface: every fault
  space (matrix, both checksum banks, the checkpoint buffer, the tau
  scalars, the live V block, the Q checksums) × every phase that space
  supports, including faults *during recovery* (which ride along with a
  boundary trigger fault so that recovery is actually running when they
  strike).

The grid is generated up front (one RNG, one draw order) and executed by
:mod:`repro.faults.executor`, serially or across a process pool; the
trial list is identical either way, which is what makes the on-disk
journal's grid-index keying sound.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING

from repro.faults.executor import (
    OUTCOMES,
    EigTrialConfig,
    TrialOutcome,
    choose_execution_mode,
    run_ft_trials,
    run_one_eig_trial,
    spectrum_distance,
)
from repro.faults.injector import QR_SPACES, SPACE_PHASES, SPACES, FaultSpec
from repro.faults.journal import CampaignJournal, grid_fingerprint
from repro.faults.regions import finished_cols_at, iteration_count, sample_in_area
from repro.utils.rng import make_rng
from repro.utils.shm import hash_update_array

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from repro.core.config import FTConfig

__all__ = [
    "TrialOutcome",
    "CampaignResult",
    "build_fault_grid",
    "build_adversarial_grid",
    "build_eig_adversarial_grid",
    "baseline_residual",
    "baseline_spectrum",
    "run_campaign",
    "run_eig_campaign",
]

#: The spaces the blocked reduction owns — the adversarial reduction
#: grid defaults to these; the ``qr_*`` spaces belong to the eigensolver
#: campaign (:func:`build_eig_adversarial_grid`).
REDUCTION_SPACES = tuple(s for s in SPACES if s not in QR_SPACES)


@dataclass
class CampaignResult:
    """Aggregate over a campaign's trials."""

    n: int
    nb: int
    trials: list[TrialOutcome] = field(default_factory=list)
    baseline_residual: float = 0.0
    resumed: int = 0  # trials replayed from a journal instead of re-run
    # where the pending trials executed: "serial" (in-process sweep) or
    # "pool" (process fan-out) — see executor.choose_execution_mode
    execution_mode: str = "serial"

    @property
    def recovery_rate(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.recovered for t in self.trials) / len(self.trials)

    @property
    def worst_residual(self) -> float:
        return max((t.residual for t in self.trials), default=0.0)

    def by_area(self, area: int) -> list[TrialOutcome]:
        return [t for t in self.trials if t.area == area]

    def by_outcome(self, outcome: str) -> list[TrialOutcome]:
        return [t for t in self.trials if t.outcome == outcome]

    @property
    def outcome_counts(self) -> dict[str, int]:
        counts = {o: 0 for o in OUTCOMES}
        for t in self.trials:
            counts[t.outcome] = counts.get(t.outcome, 0) + 1
        return counts


def build_fault_grid(
    n: int,
    nb: int,
    *,
    areas: tuple[int, ...] = (1, 2, 3),
    moments: int = 4,
    seed: int = 0,
    magnitude: float = 1.0,
) -> list[tuple[FaultSpec, int]]:
    """The campaign's (spec, area) task grid — one fault per cell.

    Deterministic in its arguments: a single RNG drawn in a fixed
    area-major order, so the grid (and therefore every trial) is
    identical no matter how many workers later execute it.
    """
    rng = make_rng(seed)
    total = iteration_count(n, nb)
    tasks: list[tuple[FaultSpec, int]] = []
    for area in areas:
        for k in range(moments):
            frac = k / max(moments - 1, 1)
            it = int(round(frac * (total - 1)))
            it = max(it, 1) if area == 3 else min(it, total - 1)
            p = finished_cols_at(it, n, nb)
            i, j = sample_in_area(area, p, n, rng)
            tasks.append((FaultSpec(iteration=it, row=i, col=j, magnitude=magnitude), area))
    return tasks


def _adversarial_target(
    space: str,
    phase: str,
    rng: np.random.Generator,
    *,
    n: int,
    p: int,
    ib: int,
    channels: int,
    flip: bool,
) -> dict:
    """Draw (row, col, channel) aimed at the live, consequential part of
    *space* at an iteration with ``p`` finished columns.

    "Live" excludes state this very iteration retires: a fault planned
    after the panel factorization must not land in the panel columns
    ``[p, p+ib)``, because those become finished V/checksum storage the
    Σ test never reads again — a vacuously silent target (the
    finished-region hole belongs to the audit tests, not the recovery
    campaign)."""
    if space == "matrix":
        if phase == "boundary":
            i, j = sample_in_area(2, p, n, rng)  # full-propagation region
            return {"row": i, "col": j}
        return {
            "row": int(rng.integers(p + 1, n)),
            "col": int(rng.integers(p + ib, n)),
        }
    if space == "row_checksum":
        return {
            "row": int(rng.integers(0, n)),
            "col": 0,
            "channel": int(rng.integers(0, channels)),
        }
    if space == "col_checksum":
        # columns still live after this iteration; the panel columns'
        # checksums freeze into never-read scratch when the panel retires
        return {
            "row": 0,
            "col": int(rng.integers(p + ib, n)),
            "channel": int(rng.integers(0, channels)),
        }
    if space == "checkpoint":
        # the buffer snapshots all N rows of the ib panel columns
        return {"row": int(rng.integers(0, n)), "col": int(rng.integers(0, ib))}
    if space == "tau":
        # a finished reflector scalar (shadow-repairable; p >= 1 by clamp)
        return {"row": int(rng.integers(0, p)), "col": 0}
    if space == "panel_v":
        return {"row": int(rng.integers(0, n - p - 1)), "col": int(rng.integers(0, ib))}
    if space == "q_checksum":
        if flip:  # alternate between the two checksum vectors
            return {"row": int(rng.integers(2, n)), "col": -1}
        return {"row": -1, "col": int(rng.integers(0, p))}
    raise ValueError(f"unknown space {space!r}")  # pragma: no cover


def build_adversarial_grid(
    n: int,
    nb: int,
    *,
    spaces: tuple[str, ...] | None = None,
    phases: tuple[str, ...] | None = None,
    moments: int = 3,
    seed: int = 0,
    magnitude: float = 1.0,
    channels: int = 2,
) -> list[tuple[tuple[FaultSpec, ...], int]]:
    """Task grid over the widened fault surface: spaces × phases × moments.

    Each task's plan is a tuple of specs. Most plans hold one fault; two
    classes ride along with a **trigger** — a detectable boundary matrix
    fault in the trailing block at the same iteration:

    * ``during_recovery`` faults (any space): without a detection there
      is no recovery for them to strike during;
    * ``checkpoint`` faults (any phase): the buffer is only ever *read*
      by a recovery's restore — an unread corruption is vacuously masked.

    The adversarial spec is first in the plan, so ``TrialOutcome.spec``
    identifies the trial by the fault under study, not its trigger.
    Matrix-space trials carry area 2 (they are drawn from the
    full-propagation region); FT-machinery spaces carry area 0 — they
    live outside the paper's Fig. 2 partition of the matrix itself.
    """
    spaces = tuple(spaces) if spaces is not None else REDUCTION_SPACES
    total = iteration_count(n, nb)
    rng = make_rng(seed)
    tasks: list[tuple[tuple[FaultSpec, ...], int]] = []
    flip = False
    for space in spaces:
        space_phases = SPACE_PHASES[space]
        # the gehrd driver does not expose the live V block at the
        # recovery hook, so a during_recovery panel_v plan cannot fire
        if space == "panel_v":
            space_phases = tuple(ph for ph in space_phases if ph != "during_recovery")
        use_phases = (
            space_phases
            if phases is None
            else tuple(ph for ph in phases if ph in space_phases)
        )
        for phase in use_phases:
            for k in range(moments):
                frac = k / max(moments - 1, 1)
                # clamp >= 1: every space needs at least one finished
                # panel (taus, q columns) or a live trailing block
                it = min(max(int(round(frac * (total - 1))), 1), total - 1)
                p = finished_cols_at(it, n, nb)
                ib = min(nb, n - 1 - p)
                target = _adversarial_target(
                    space, phase, rng, n=n, p=p, ib=ib, channels=channels, flip=flip
                )
                if space == "q_checksum":
                    flip = not flip
                spec = FaultSpec(
                    iteration=it,
                    kind="add",
                    magnitude=magnitude,
                    space=space,
                    phase=phase,
                    **target,
                )
                plan = [spec]
                if phase == "during_recovery" or space == "checkpoint":
                    ti, tj = sample_in_area(2, p, n, rng)
                    plan.append(
                        FaultSpec(iteration=it, row=ti, col=tj, magnitude=magnitude)
                    )
                area = 2 if space == "matrix" else 0
                tasks.append((tuple(plan), area))
    return tasks


def _eig_adversarial_target(
    space: str, rng: np.random.Generator, *, n: int
) -> dict:
    """Draw a target inside the live part of a QR-stage *space*.

    ``qr_matrix``/``qr_checkpoint`` strikes land in the Hessenberg
    envelope (``col >= row - 1``) — the entries the iteration actually
    carries; an off-envelope strike would test the structural guard
    rather than the invariant drift. ``qr_z`` is dense. ``qr_shift``
    indexes the live ``[trace, det]`` pair, ``qr_deflation`` the
    subdiagonal entry the deflation test reads."""
    if space in ("qr_matrix", "qr_checkpoint"):
        i = int(rng.integers(0, n))
        return {"row": i, "col": int(rng.integers(max(i - 1, 0), n))}
    if space == "qr_z":
        return {"row": int(rng.integers(0, n)), "col": int(rng.integers(0, n))}
    if space == "qr_shift":
        return {"row": int(rng.integers(0, 2)), "col": 0}
    if space == "qr_deflation":
        return {"row": int(rng.integers(1, n)), "col": 0}
    raise ValueError(f"unknown QR space {space!r}")  # pragma: no cover


def build_eig_adversarial_grid(
    n: int,
    *,
    spaces: tuple[str, ...] | None = None,
    phases: tuple[str, ...] | None = None,
    moments: int = 3,
    seed: int = 0,
    magnitude: float = 1.0,
) -> list[tuple[tuple[FaultSpec, ...], int]]:
    """Task grid over the QR stage's fault surface: spaces × phases × moments.

    The eigensolver analogue of :func:`build_adversarial_grid`: every
    ``qr_*`` space × every phase it supports, struck at ``moments`` ticks
    spread over the early outer steps (the iteration runs ~1.5·n steps;
    ticks stay within ``[1, n-2]`` so each planned phase genuinely
    occurs — a fault planned past convergence would strike the finished
    state instead of the phase under study). Two plan classes ride along
    with a **trigger** — a detectable ``qr_matrix`` fault at the same
    tick — exactly as in the reduction grid:

    * ``during_recovery`` faults: no detection, no recovery to strike;
    * ``qr_checkpoint`` faults (any phase): the parked buffer is only
      read by a rollback's restore — an unread corruption is vacuously
      masked.

    ``qr_matrix`` trials carry area 2 (they corrupt the operand the
    paper's Fig. 2 partition would call full-propagation); the QR
    machinery spaces carry area 0.
    """
    spaces = tuple(spaces) if spaces is not None else QR_SPACES
    rng = make_rng(seed)
    tasks: list[tuple[tuple[FaultSpec, ...], int]] = []
    last_tick = max(n - 2, 1)
    for space in spaces:
        space_phases = SPACE_PHASES[space]
        use_phases = (
            space_phases
            if phases is None
            else tuple(ph for ph in phases if ph in space_phases)
        )
        for phase in use_phases:
            for k in range(moments):
                frac = k / max(moments - 1, 1)
                it = min(max(int(round(frac * last_tick)), 1), last_tick)
                target = _eig_adversarial_target(space, rng, n=n)
                spec = FaultSpec(
                    iteration=it,
                    kind="add",
                    magnitude=magnitude,
                    space=space,
                    phase=phase,
                    **target,
                )
                plan = [spec]
                if phase == "during_recovery" or space == "qr_checkpoint":
                    ti = int(rng.integers(0, n))
                    tj = int(rng.integers(max(ti - 1, 0), n))
                    plan.append(
                        FaultSpec(
                            iteration=it,
                            row=ti,
                            col=tj,
                            magnitude=magnitude,
                            space="qr_matrix",
                            phase="pre_sweep",
                        )
                    )
                area = 2 if space == "qr_matrix" else 0
                tasks.append((tuple(plan), area))
    return tasks


# Fault-free reference residuals, keyed by (n, nb, channels, sha1(A)).
# Campaigns over the same input share one clean run instead of paying
# an extra factorization each.
_BASELINE_CACHE: dict[tuple, float] = {}


def baseline_residual(a: np.ndarray, cfg: "FTConfig") -> float:
    """Table II residual of a fault-free FT run on *a* (memoized)."""
    from repro.core.ft_hessenberg import ft_gehrd
    from repro.linalg.orghr import orghr
    from repro.linalg.verify import extract_hessenberg, factorization_residual

    h = hashlib.sha1()
    hash_update_array(h, a)  # zero-copy for contiguous inputs
    digest = h.hexdigest()
    key = (a.shape[0], cfg.nb, cfg.channels, digest)
    cached = _BASELINE_CACHE.get(key)
    if cached is not None:
        return cached
    ft = ft_gehrd(a, cfg)
    q = orghr(ft.a, ft.taus)
    h = extract_hessenberg(ft.a)
    residual = factorization_residual(a, q, h)
    _BASELINE_CACHE[key] = residual
    return residual


#: Fault-free reference spectra, keyed like the residual cache plus the
#: QR knobs that change the sweep sequence.
_SPECTRUM_CACHE: dict[tuple, np.ndarray] = {}


def baseline_spectrum(a: np.ndarray, cfg: "FTConfig", qr_cfg) -> np.ndarray:
    """Eigenvalues of the fault-free protected pipeline on *a* (memoized).

    This is the reference a corrected trial must reproduce: the clean
    run of the *same* pipeline, not an external solver — a rollback
    replay is bit-identical, so equality against this reference is the
    sharpest possible grade.
    """
    from repro.core.ft_hessenberg import ft_gehrd
    from repro.eigen.ft_hqr import ft_hqr
    from repro.linalg.verify import extract_hessenberg

    h = hashlib.sha1()
    hash_update_array(h, a)
    key = (
        a.shape[0],
        cfg.nb,
        cfg.channels,
        h.hexdigest(),
        qr_cfg.verify_every,
        qr_cfg.max_sweeps_per_eig,
        qr_cfg.want_z,
    )
    cached = _SPECTRUM_CACHE.get(key)
    if cached is not None:
        return cached
    ft = ft_gehrd(a, cfg)
    hess = extract_hessenberg(ft.a)
    fr = ft_hqr(hess, qr_cfg, check_input=False)
    _SPECTRUM_CACHE[key] = fr.eigvals
    return fr.eigvals


def run_campaign(
    a: np.ndarray,
    *,
    nb: int = 32,
    areas: tuple[int, ...] = (1, 2, 3),
    moments: int = 4,
    seed: int = 0,
    magnitude: float = 1.0,
    residual_tol: float | None = None,
    config: "FTConfig | None" = None,
    workers: int = 1,
    chunksize: int | None = None,
    adversarial: bool = False,
    spaces: tuple[str, ...] | None = None,
    phases: tuple[str, ...] | None = None,
    journal: "str | CampaignJournal | None" = None,
    resume: "bool | str" = False,
    trial_timeout: float | None = None,
    crash_index: int | None = None,
    crash_once_path: str | None = None,
    transport: str = "auto",
) -> CampaignResult:
    """Run a fault campaign over *a* and verify recovery of every trial.

    ``residual_tol`` is the pass bar on the Table II residual after
    recovery — recovered runs must be as good as fault-free ones. The
    default (``None``) resolves to ``1e-13`` scaled by the lane-eps
    ratio of ``a.dtype`` (so the float64 bar is unchanged and the
    float32 bar widens by ``eps32/eps64 = 2^29``). ``workers > 1``
    distributes the trials over a process pool; results are identical
    to the serial sweep (same grid, same seeds).

    ``adversarial=True`` swaps the paper's area×moment matrix grid for
    :func:`build_adversarial_grid` (all fault spaces × phases) and
    defaults the config to two checksum channels, which the widened
    surface needs for multi-error location.

    ``journal`` names an on-disk JSONL journal that records each trial
    as it completes; ``resume=True`` (or ``resume=<path>``, which
    implies the journal path) replays the journaled trials and executes
    only the remainder — after a campaign-runner crash the rerun
    produces the identical outcome table without redoing finished work.
    ``trial_timeout`` (seconds) bounds each pooled trial; see
    :func:`repro.faults.executor.run_ft_trials` for the crash semantics
    of ``crash_index`` / ``crash_once_path`` (test/chaos hooks).
    ``transport`` selects the pooled data plane (``"auto"``/``"shm"``/
    ``"pickle"``): with shared memory the input matrix reaches every
    worker as a ~100-byte handle instead of an n×n pickle.
    """
    from repro.core.config import FTConfig
    from repro.utils.precision import lane_scale

    n = a.shape[0]
    if residual_tol is None:
        residual_tol = 1e-13 * lane_scale(a.dtype)
    if isinstance(resume, (str, bytes)) or hasattr(resume, "__fspath__"):
        if journal is None:
            journal = resume
        resume = True
    if adversarial:
        cfg = config or FTConfig(nb=nb, channels=2)
        tasks = build_adversarial_grid(
            n,
            nb,
            spaces=spaces,
            phases=phases,
            moments=moments,
            seed=seed,
            magnitude=magnitude,
            channels=cfg.channels,
        )
    else:
        cfg = config or FTConfig(nb=nb)
        tasks = build_fault_grid(
            n, nb, areas=areas, moments=moments, seed=seed, magnitude=magnitude
        )

    on_result = None
    precomputed = None
    if journal is not None:
        jr = journal if isinstance(journal, CampaignJournal) else CampaignJournal(journal)
        fp = grid_fingerprint(n, nb, tasks)
        if resume:
            precomputed = jr.load(fp)
        jr.ensure_header(fp)
        on_result = jr.append

    result = CampaignResult(
        n=n,
        nb=nb,
        baseline_residual=baseline_residual(a, cfg),
        resumed=len(precomputed or {}),
        execution_mode=choose_execution_mode(
            workers, len(tasks) - len(precomputed or {})
        ),
    )
    result.trials = run_ft_trials(
        a,
        tasks,
        cfg,
        residual_tol=residual_tol,
        workers=workers,
        chunksize=chunksize,
        trial_timeout=trial_timeout,
        on_result=on_result,
        precomputed=precomputed,
        crash_index=crash_index,
        crash_once_path=crash_once_path,
        transport=transport,
    )
    return result


def run_eig_campaign(
    a: np.ndarray,
    *,
    nb: int = 32,
    moments: int = 3,
    seed: int = 0,
    magnitude: float = 1.0,
    residual_tol: float | None = None,
    config: "FTConfig | None" = None,
    qr_config=None,
    workers: int = 1,
    chunksize: int | None = None,
    spaces: tuple[str, ...] | None = None,
    phases: tuple[str, ...] | None = None,
    journal: "str | CampaignJournal | None" = None,
    resume: "bool | str" = False,
    trial_timeout: float | None = None,
    crash_index: int | None = None,
    crash_once_path: str | None = None,
    transport: str = "auto",
) -> CampaignResult:
    """Fault campaign over the **end-to-end protected eigensolver**:
    FT reduction → protected Francis QR, with the adversarial grid of
    :func:`build_eig_adversarial_grid` striking the QR stage.

    Each trial runs the full pipeline under one plan
    (:func:`~repro.faults.executor.run_one_eig_trial`) and is graded on
    spectrum distance against the fault-free pipeline's eigenvalues —
    computed once here, shipped to the workers inside the trial config.
    The default ``residual_tol`` is ``1e-8`` scaled by the square root
    of the lane-eps ratio (a corrected rollback replays bit-identical
    sweeps; the tolerance only needs to absorb masked sub-threshold
    perturbations and benign shift-path divergence, both far below it).

    ``CampaignResult.baseline_residual`` holds the *external* parity of
    the clean pipeline — its spectrum distance to
    ``numpy.linalg.eigvals`` — so a campaign report carries both "we
    recovered our own answer" and "our answer was right to begin with".
    Journal/resume, pooling and transport semantics match
    :func:`run_campaign`.
    """
    from repro.core.config import FTConfig
    from repro.eigen.ft_hqr import QRProtectConfig
    from repro.utils.precision import lane_scale

    n = a.shape[0]
    if residual_tol is None:
        residual_tol = 1e-8 * float(np.sqrt(lane_scale(a.dtype)))
    if isinstance(resume, (str, bytes)) or hasattr(resume, "__fspath__"):
        if journal is None:
            journal = resume
        resume = True
    cfg = config or FTConfig(nb=nb, channels=2)
    qr_cfg = qr_config or QRProtectConfig()
    ref = baseline_spectrum(a, cfg, qr_cfg)
    trial_cfg = EigTrialConfig(ft=cfg, qr=qr_cfg, ref_eigvals=ref)
    tasks = build_eig_adversarial_grid(
        n,
        spaces=spaces,
        phases=phases,
        moments=moments,
        seed=seed,
        magnitude=magnitude,
    )

    on_result = None
    precomputed = None
    if journal is not None:
        jr = journal if isinstance(journal, CampaignJournal) else CampaignJournal(journal)
        fp = grid_fingerprint(n, nb, tasks)
        if resume:
            precomputed = jr.load(fp)
        jr.ensure_header(fp)
        on_result = jr.append

    external = spectrum_distance(
        ref, np.linalg.eigvals(np.asarray(a, dtype=np.float64))
    )
    result = CampaignResult(
        n=n,
        nb=nb,
        baseline_residual=external,
        resumed=len(precomputed or {}),
        execution_mode=choose_execution_mode(
            workers, len(tasks) - len(precomputed or {})
        ),
    )
    result.trials = run_ft_trials(
        a,
        tasks,
        trial_cfg,
        residual_tol=residual_tol,
        workers=workers,
        chunksize=chunksize,
        trial_timeout=trial_timeout,
        on_result=on_result,
        precomputed=precomputed,
        crash_index=crash_index,
        crash_once_path=crash_once_path,
        transport=transport,
        trial_fn=run_one_eig_trial,
    )
    return result
