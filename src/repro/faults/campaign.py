"""Fault-injection campaigns: sweeps over areas, moments and sizes.

A campaign runs the FT driver repeatedly under a grid of single-fault
plans and aggregates recovery outcomes — the machinery behind the Fig. 6
uncertainty bands and the recovery-coverage tests.

The grid of fault plans is generated up front (one RNG, one draw order —
see :func:`build_fault_grid`) and executed by
:mod:`repro.faults.executor`, serially or across a process pool; the
trial list is identical either way.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING

from repro.faults.executor import TrialOutcome, run_ft_trials
from repro.faults.injector import FaultSpec
from repro.faults.regions import finished_cols_at, iteration_count, sample_in_area
from repro.utils.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from repro.core.config import FTConfig

__all__ = [
    "TrialOutcome",
    "CampaignResult",
    "build_fault_grid",
    "baseline_residual",
    "run_campaign",
]


@dataclass
class CampaignResult:
    """Aggregate over a campaign's trials."""

    n: int
    nb: int
    trials: list[TrialOutcome] = field(default_factory=list)
    baseline_residual: float = 0.0

    @property
    def recovery_rate(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.recovered for t in self.trials) / len(self.trials)

    @property
    def worst_residual(self) -> float:
        return max((t.residual for t in self.trials), default=0.0)

    def by_area(self, area: int) -> list[TrialOutcome]:
        return [t for t in self.trials if t.area == area]


def build_fault_grid(
    n: int,
    nb: int,
    *,
    areas: tuple[int, ...] = (1, 2, 3),
    moments: int = 4,
    seed: int = 0,
    magnitude: float = 1.0,
) -> list[tuple[FaultSpec, int]]:
    """The campaign's (spec, area) task grid — one fault per cell.

    Deterministic in its arguments: a single RNG drawn in a fixed
    area-major order, so the grid (and therefore every trial) is
    identical no matter how many workers later execute it.
    """
    rng = make_rng(seed)
    total = iteration_count(n, nb)
    tasks: list[tuple[FaultSpec, int]] = []
    for area in areas:
        for k in range(moments):
            frac = k / max(moments - 1, 1)
            it = int(round(frac * (total - 1)))
            it = max(it, 1) if area == 3 else min(it, total - 1)
            p = finished_cols_at(it, n, nb)
            i, j = sample_in_area(area, p, n, rng)
            tasks.append((FaultSpec(iteration=it, row=i, col=j, magnitude=magnitude), area))
    return tasks


# Fault-free reference residuals, keyed by (n, nb, channels, sha1(A)).
# Campaigns over the same input share one clean run instead of paying
# an extra factorization each.
_BASELINE_CACHE: dict[tuple, float] = {}


def baseline_residual(a: np.ndarray, cfg: "FTConfig") -> float:
    """Table II residual of a fault-free FT run on *a* (memoized)."""
    from repro.core.ft_hessenberg import ft_gehrd
    from repro.linalg.orghr import orghr
    from repro.linalg.verify import extract_hessenberg, factorization_residual

    digest = hashlib.sha1(np.ascontiguousarray(a).tobytes()).hexdigest()
    key = (a.shape[0], cfg.nb, cfg.channels, digest)
    cached = _BASELINE_CACHE.get(key)
    if cached is not None:
        return cached
    ft = ft_gehrd(a, cfg)
    q = orghr(ft.a, ft.taus)
    h = extract_hessenberg(ft.a)
    residual = factorization_residual(a, q, h)
    _BASELINE_CACHE[key] = residual
    return residual


def run_campaign(
    a: np.ndarray,
    *,
    nb: int = 32,
    areas: tuple[int, ...] = (1, 2, 3),
    moments: int = 4,
    seed: int = 0,
    magnitude: float = 1.0,
    residual_tol: float = 1e-13,
    config: "FTConfig | None" = None,
    workers: int = 1,
    chunksize: int | None = None,
) -> CampaignResult:
    """Inject one fault per (area x moment) cell and verify full recovery.

    ``residual_tol`` is the pass bar on the Table II residual after
    recovery — recovered runs must be as good as fault-free ones.
    ``workers > 1`` distributes the trials over a process pool; results
    are identical to the serial sweep (same grid, same seeds).
    """
    from repro.core.config import FTConfig

    n = a.shape[0]
    cfg = config or FTConfig(nb=nb)
    tasks = build_fault_grid(
        n, nb, areas=areas, moments=moments, seed=seed, magnitude=magnitude
    )
    result = CampaignResult(n=n, nb=nb, baseline_residual=baseline_residual(a, cfg))
    result.trials = run_ft_trials(
        a, tasks, cfg, residual_tol=residual_tol, workers=workers, chunksize=chunksize
    )
    return result
