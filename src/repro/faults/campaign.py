"""Fault-injection campaigns: sweeps over areas, moments and sizes.

A campaign runs the FT driver repeatedly under a grid of single-fault
plans and aggregates recovery outcomes — the machinery behind the Fig. 6
uncertainty bands and the recovery-coverage tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.faults.injector import FaultInjector, FaultSpec
from repro.faults.regions import finished_cols_at, iteration_count, sample_in_area
from repro.linalg.orghr import orghr
from repro.linalg.verify import extract_hessenberg, factorization_residual
from repro.utils.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a circular import)
    from repro.core.config import FTConfig


@dataclass
class TrialOutcome:
    """One injected run's result."""

    spec: FaultSpec
    area: int
    detected: bool
    corrected: bool
    residual: float
    recoveries: int
    q_corrections: int
    failure: str = ""

    @property
    def recovered(self) -> bool:
        return self.corrected and not self.failure


@dataclass
class CampaignResult:
    """Aggregate over a campaign's trials."""

    n: int
    nb: int
    trials: list[TrialOutcome] = field(default_factory=list)

    @property
    def recovery_rate(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.recovered for t in self.trials) / len(self.trials)

    @property
    def worst_residual(self) -> float:
        return max((t.residual for t in self.trials), default=0.0)

    def by_area(self, area: int) -> list[TrialOutcome]:
        return [t for t in self.trials if t.area == area]


def run_campaign(
    a: np.ndarray,
    *,
    nb: int = 32,
    areas: tuple[int, ...] = (1, 2, 3),
    moments: int = 4,
    seed: int = 0,
    magnitude: float = 1.0,
    residual_tol: float = 1e-13,
    config: "FTConfig | None" = None,
) -> CampaignResult:
    """Inject one fault per (area x moment) cell and verify full recovery.

    ``residual_tol`` is the pass bar on the Table II residual after
    recovery — recovered runs must be as good as fault-free ones.
    """
    from repro.core.config import FTConfig
    from repro.core.ft_hessenberg import ft_gehrd

    n = a.shape[0]
    rng = make_rng(seed)
    total = iteration_count(n, nb)
    result = CampaignResult(n=n, nb=nb)

    for area in areas:
        for k in range(moments):
            frac = k / max(moments - 1, 1)
            it = int(round(frac * (total - 1)))
            it = max(it, 1) if area == 3 else min(it, total - 1)
            p = finished_cols_at(it, n, nb)
            i, j = sample_in_area(area, p, n, rng)
            spec = FaultSpec(iteration=it, row=i, col=j, magnitude=magnitude)
            inj = FaultInjector().add(spec)
            cfg = config or FTConfig(nb=nb)
            failure = ""
            try:
                ft = ft_gehrd(a, cfg, injector=inj)
                q = orghr(ft.a, ft.taus)
                h = extract_hessenberg(ft.a)
                residual = factorization_residual(a, q, h)
                detected = ft.detections > 0 or (ft.q_report is not None and ft.q_report.count > 0)
                corrected = residual <= residual_tol
                recov = len(ft.recoveries)
                qcorr = ft.q_report.count if ft.q_report else 0
            except ReproError as exc:  # recovery machinery failed outright
                residual, detected, corrected, recov, qcorr = float("inf"), False, False, 0, 0
                failure = f"{type(exc).__name__}: {exc}"
            result.trials.append(
                TrialOutcome(
                    spec=spec,
                    area=area,
                    detected=detected,
                    corrected=corrected,
                    residual=residual,
                    recoveries=recov,
                    q_corrections=qcorr,
                    failure=failure,
                )
            )
    return result
