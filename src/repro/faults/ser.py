"""Soft-error-rate models (paper §I's FIT arithmetic).

The paper motivates the design with measured rates: DRAM at 1k–10k
FIT/chip [Baumann], SRAM at ~100k FIT/130nm-chip [Jacob], ASC Q's 51.7
errors/week [Michalak], and GPU error probabilities ~2e-5 per MemtestG80
iteration [Haque & Pande]. These helpers convert between FIT, expected
errors per run, and Poisson arrival plans usable by the injector.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import FaultConfigError
from repro.faults.injector import FaultSpec
from repro.faults.regions import finished_cols_at, iteration_count, sample_in_area
from repro.utils.rng import make_rng

#: One FIT = one failure per 1e9 device-hours (paper footnote 1).
HOURS_PER_FIT_UNIT = 1e9


def fit_to_errors_per_second(fit: float) -> float:
    """Convert a FIT rate to expected errors per second of exposure."""
    if fit < 0:
        raise FaultConfigError(f"FIT rate must be non-negative, got {fit}")
    return fit / (HOURS_PER_FIT_UNIT * 3600.0)


def expected_errors(fit: float, runtime_seconds: float, chips: int = 1) -> float:
    """Expected soft-error count for a run of the given duration."""
    if runtime_seconds < 0 or chips < 1:
        raise FaultConfigError("runtime must be >= 0 and chips >= 1")
    return fit_to_errors_per_second(fit) * runtime_seconds * chips


@dataclass(frozen=True)
class SoftErrorModel:
    """Poisson arrivals at a FIT-derived rate over a factorization run.

    ``errors_per_iteration`` distributes the run's exposure uniformly over
    the blocked iterations — adequate because iterations shorten only
    mildly and the paper's failure model is one error at a time anyway.
    """

    fit: float
    runtime_seconds: float
    chips: int = 1

    @property
    def lam(self) -> float:
        """Poisson mean for the whole run."""
        return expected_errors(self.fit, self.runtime_seconds, self.chips)

    def sample_count(self, rng: np.random.Generator) -> int:
        return int(rng.poisson(self.lam))

    def probability_of_any(self) -> float:
        """P(at least one error during the run)."""
        return 1.0 - math.exp(-self.lam)

    def sample_plan(
        self,
        n: int,
        nb: int,
        rng: np.random.Generator | int | None = 0,
        *,
        magnitude: float = 1.0,
    ) -> list[FaultSpec]:
        """Draw a fault plan: Poisson count, uniform iterations, uniform
        elements within the active areas at each strike."""
        rng = make_rng(rng)
        total = iteration_count(n, nb)
        plan: list[FaultSpec] = []
        for _ in range(self.sample_count(rng)):
            it = int(rng.integers(0, total))
            p = finished_cols_at(it, n, nb)
            # areas weighted by their element counts at this moment
            n_a3 = p * n
            n_a1 = (p + 1) * (n - p)
            n_a2 = (n - p - 1) * (n - p)
            weights = np.array([n_a1, n_a2, n_a3], dtype=float)
            if weights.sum() <= 0:
                continue
            area = int(rng.choice([1, 2, 3], p=weights / weights.sum()))
            try:
                i, j = sample_in_area(area, p, n, rng)
            except FaultConfigError:
                continue
            plan.append(FaultSpec(iteration=it, row=i, col=j, magnitude=magnitude))
        return plan
