"""Resumable on-disk campaign journal (append-only JSONL).

A long fault campaign must survive the campaign *runner* dying — the
whole point of a resilience study is that crashes happen. The journal
records each completed trial as one JSON line keyed by its deterministic
grid index, so a rerun with ``resume=`` replays the finished trials from
disk and executes only the remainder. Because the grid is built by a
seeded RNG in the parent, index ``i`` always denotes the same fault
plan, making resumed outcome tables byte-identical to uninterrupted
ones.

File format (one JSON object per line, append-only, fsync-free):

* line 1 — header: ``{"kind": "header", "version": 1,
  "fingerprint": "<sha1 of the canonical task-grid serialization>"}``;
* each subsequent line — ``{"kind": "trial", "index": i,
  "outcome": {...}}``.

A half-written trailing line (the writer died mid-append) is silently
discarded on load — its trial simply reruns. A fingerprint mismatch
raises :class:`~repro.errors.JournalError`: resuming a journal against a
different grid would silently mix incompatible trials.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict

from repro.errors import JournalError
from repro.faults.executor import TrialOutcome
from repro.faults.injector import FaultSpec

_VERSION = 1


def _spec_to_dict(spec: FaultSpec) -> dict:
    return asdict(spec)


def _spec_from_dict(d: dict) -> FaultSpec:
    return FaultSpec(**d)


def outcome_to_dict(out: TrialOutcome) -> dict:
    d = {
        "area": out.area,
        "detected": out.detected,
        "corrected": out.corrected,
        "residual": out.residual,
        "recoveries": out.recoveries,
        "q_corrections": out.q_corrections,
        "failure": out.failure,
        "outcome": out.outcome,
        "max_tier": out.max_tier,
        "restarts": out.restarts,
        "tau_repairs": out.tau_repairs,
        "specs": [_spec_to_dict(s) for s in out.specs],
    }
    return d


def outcome_from_dict(d: dict) -> TrialOutcome:
    specs = tuple(_spec_from_dict(s) for s in d["specs"])
    return TrialOutcome(
        spec=specs[0],
        area=d["area"],
        detected=d["detected"],
        corrected=d["corrected"],
        residual=d["residual"],
        recoveries=d["recoveries"],
        q_corrections=d["q_corrections"],
        failure=d["failure"],
        outcome=d["outcome"],
        max_tier=d["max_tier"],
        restarts=d["restarts"],
        tau_repairs=d["tau_repairs"],
        specs=specs,
    )


def grid_fingerprint(n: int, nb: int, tasks: list) -> str:
    """sha1 over the canonical serialization of the grid.

    Covers the problem size and every plan in grid order, so any change
    to seed, moments, spaces or targeting invalidates old journals.
    """
    canon = {
        "n": n,
        "nb": nb,
        "tasks": [
            {
                "area": area,
                "specs": [
                    _spec_to_dict(s)
                    for s in (plan if isinstance(plan, (tuple, list)) else (plan,))
                ],
            }
            for plan, area in tasks
        ],
    }
    blob = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(blob.encode()).hexdigest()


class CampaignJournal:
    """Append-only trial journal at *path*.

    ``ensure_header`` starts a fresh journal (or validates an existing
    one); ``append`` is called per completed trial; ``load`` returns the
    already-completed trials for resume.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def ensure_header(self, fingerprint: str) -> None:
        if self.exists() and os.path.getsize(self.path) > 0:
            self._check_fingerprint(fingerprint)
            # seal a torn trailing write behind a newline so the next
            # append starts a fresh record instead of merging with it
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    with open(self.path, "a") as out:
                        out.write("\n")
            return
        header = {"kind": "header", "version": _VERSION, "fingerprint": fingerprint}
        with open(self.path, "w") as fh:
            fh.write(json.dumps(header) + "\n")
            fh.flush()

    def _check_fingerprint(self, fingerprint: str) -> None:
        with open(self.path) as fh:
            first = fh.readline()
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise JournalError(f"{self.path}: unreadable journal header") from exc
        if header.get("kind") != "header":
            raise JournalError(f"{self.path}: first line is not a journal header")
        if header.get("version") != _VERSION:
            raise JournalError(
                f"{self.path}: journal version {header.get('version')} "
                f"!= supported {_VERSION}"
            )
        if header.get("fingerprint") != fingerprint:
            raise JournalError(
                f"{self.path}: journal was recorded for a different campaign "
                "grid (fingerprint mismatch); refusing to resume"
            )

    def append(self, index: int, outcome: TrialOutcome) -> None:
        line = json.dumps(
            {"kind": "trial", "index": index, "outcome": outcome_to_dict(outcome)}
        )
        # open-per-append: the file is always closed (hence flushed) when
        # the process dies between trials, which is exactly when resume
        # matters
        with open(self.path, "a") as fh:
            fh.write(line + "\n")
            fh.flush()

    def load(self, fingerprint: str) -> dict[int, TrialOutcome]:
        """Completed trials on disk, validated against *fingerprint*."""
        if not self.exists():
            return {}
        self._check_fingerprint(fingerprint)
        done: dict[int, TrialOutcome] = {}
        with open(self.path) as fh:
            next(fh, None)  # header, already validated
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    rec = json.loads(raw)
                except json.JSONDecodeError:
                    # torn trailing write from a mid-append crash; the
                    # trial reruns, which is safe (deterministic grid)
                    continue
                if rec.get("kind") != "trial":
                    continue
                done[int(rec["index"])] = outcome_from_dict(rec["outcome"])
        return done
