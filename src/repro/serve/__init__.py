"""Batch-reduction serving layer.

The subsystem that turns one-shot driver calls into a service: typed
jobs with content-addressed keys (:mod:`~repro.serve.jobs`), a bounded
LRU result cache with disk spill (:mod:`~repro.serve.cache`), a
resilience-aware retry policy (:mod:`~repro.serve.retry`), an async
scheduler with admission control, fairness and priority lanes
(:mod:`~repro.serve.scheduler`), and the synchronous
:class:`~repro.serve.service.HessService` facade the CLI's
``serve``/``submit`` subcommands drive. See ``docs/serving.md``.
"""

from repro.serve.cache import CacheStats, ResultCache
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    DRIVERS,
    EIG_DRIVERS,
    FAILED,
    LANES,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    JobResult,
    JobSpec,
    JobSpecError,
    batch_compatible,
    batch_group_key,
    execute_job,
    execute_jobs_batched,
)
from repro.serve.retry import (
    FAILURE_CLASSES,
    JobTimeout,
    RetryDecision,
    RetryPolicy,
    WorkerLost,
    classify_failure,
)
from repro.serve.scheduler import AsyncScheduler, Submission
from repro.serve.service import HessService

__all__ = [
    "JobSpec",
    "JobResult",
    "JobSpecError",
    "execute_job",
    "execute_jobs_batched",
    "batch_compatible",
    "batch_group_key",
    "DRIVERS",
    "EIG_DRIVERS",
    "LANES",
    "STATES",
    "TERMINAL_STATES",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "ResultCache",
    "CacheStats",
    "RetryPolicy",
    "RetryDecision",
    "FAILURE_CLASSES",
    "classify_failure",
    "JobTimeout",
    "WorkerLost",
    "AsyncScheduler",
    "Submission",
    "HessService",
]
