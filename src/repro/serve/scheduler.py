"""Async batch scheduler: admission control, fairness, lanes, retries.

The scheduler is the execution path the ROADMAP's "serve heavy traffic"
goal needs: many callers submit :class:`~repro.serve.jobs.JobSpec`\\ s,
and a fixed worker budget drains them without ever blocking a submitter
or losing a job.

Design points, in the order a job meets them:

**Admission control.** The submission queue is bounded. A submit
against a full queue is *rejected with a structured reason* (a
:class:`Submission` with ``accepted=False``), never blocked and never
raised — backpressure is data the client can act on, not an exception.
Cache hits and coalesced duplicates bypass admission entirely: they
consume no worker, so a full queue is no reason to refuse them.

**Content-addressed reuse.** Each accepted key becomes one *work item*;
duplicate submissions attach to the in-flight item (coalescing) and
completed payloads are served straight from the
:class:`~repro.serve.cache.ResultCache`. A duplicate-heavy sweep
therefore executes each distinct computation once.

**Fairness + priority.** Work items are queued per (lane, submitter).
Lanes drain strictly in priority order; within a lane, submitters are
served round-robin, so one client flooding the queue cannot starve
another's occasional job.

**Execution lanes.** CPU-heavy jobs ship to a
:class:`~repro.utils.procpool.ResilientProcessPool` whose workers hold
per-process :func:`~repro.perf.workspace.process_workspace` arenas (the
PR 1 pooling, amortized across jobs). Jobs at or below
``small_n_threshold`` run on an in-process thread instead — too small
to amortize a pickle round-trip. A worker crash (BrokenProcessPool)
rebuilds the pool and re-queues the job through the retry policy: no
job is ever lost to infrastructure.

**Batch coalescing.** With ``batch_max > 1``, compatible small-n jobs
(same driver/order/nb/channels, at or below ``small_n_threshold``, on
the :func:`~repro.serve.jobs.batch_compatible` surface) stage in a
bucket for up to ``batch_linger_ms`` and run as *one* stacked
:mod:`repro.batch` execution — byte-identical per-item payloads at a
fraction of the per-job Python overhead. Items the stacked engine
ejects (detected faults) finish on the scalar resilience ladder inside
the batch; an item whose scalar re-run fails is re-queued alone to the
normal lanes, and a batch-level failure re-routes the whole group —
retry isolation in both directions. Lone stragglers are re-routed
immediately (a batch of one is pure overhead).

**Resilience-aware retries.** Failures are classified by
:mod:`repro.serve.retry`; ``EscalationExhausted`` re-runs with a
stricter ladder, timeouts and lost workers get one fresh-worker retry,
config errors fail permanently.

**Zero-copy data plane.** Large inline matrices are written to a POSIX
shared-memory segment once per work item and pool workers receive a
~100-byte :class:`~repro.utils.shm.SharedMatrix` handle instead of an
n×n pickle; retries reuse the same segment. ``return_factors`` results
come back the same way and are materialized lazily on first access
(:meth:`~repro.serve.jobs.JobResult.factor`). Every segment is owned by
the scheduler's :class:`~repro.utils.shm.SegmentRegistry`, which the
pool unlinks on rebuild/shutdown and sweeps for dead-creator orphans —
no leaked ``/dev/shm`` entries even across worker crashes. Transport
selection is automatic (``transport="auto"``): pickle below
``shm_min_bytes`` or where ``/dev/shm`` is unavailable, shared memory
otherwise; ``"shm"`` forces it (raising if unsupported), ``"pickle"``
disables it.
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import queue as _queue
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.perf.workspace import Workspace
from repro.resilience.ladder import LadderConfig
from repro.utils.procpool import ResilientProcessPool
from repro.utils.shm import (
    DEFAULT_MIN_BYTES,
    TRANSPORTS,
    SegmentRegistry,
    SharedMatrix,
    TransportError,
    shm_available,
    use_shm_for,
)
from repro.serve.cache import ResultCache
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    LANES,
    QUEUED,
    RUNNING,
    JobResult,
    JobSpec,
    JobSpecError,
    batch_compatible,
    batch_group_key,
    execute_job,
    execute_job_pooled,
    execute_jobs_batched,
    pool_worker_init,
)
from repro.serve.retry import (
    JobTimeout,
    RetryPolicy,
    WorkerLost,
    classify_failure,
)


@dataclass(frozen=True)
class Submission:
    """The structured answer to one ``submit`` call.

    ``accepted=False`` carries the machine-readable refusal in
    ``reason`` (``"backpressure: ..."`` or ``"invalid: ..."``); the
    client decides whether to wait, shed, or fix the spec.
    """

    accepted: bool
    job_id: int | None = None
    key: str = ""
    reason: str = ""
    queue_depth: int = 0


@dataclass
class _Job:
    """One submitted job (possibly one of several attached to a work item)."""

    result: JobResult
    done: asyncio.Event = field(default_factory=asyncio.Event)


@dataclass
class _Work:
    """One distinct computation: a key plus every job attached to it."""

    key: str
    spec: JobSpec
    lane: str
    submitter: str
    jobs: list[_Job] = field(default_factory=list)
    cancelled: bool = False
    ladder: LadderConfig | None = None
    # raised Francis sweep budget for convergence retries (None = driver
    # default); doubled by each raise_sweeps retry decision
    max_sweeps: int | None = None
    class_failures: dict[str, int] = field(default_factory=dict)
    # inline matrix encoded into shared memory once per work item —
    # every retry of this item re-sends the ~100-byte handle, never the
    # n*n pickle (released by the runner when the item resolves)
    shm_matrix: SharedMatrix | None = None

    def live_jobs(self) -> list[_Job]:
        return [j for j in self.jobs if j.result.status != CANCELLED]


class AsyncScheduler:
    """The asyncio half of the service (see module docstring).

    All state mutation happens on the owning event loop; the only
    cross-thread surface is the subscriber queues (thread-safe
    ``queue.Queue``) and the read-only stats snapshot.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        max_queue: int = 64,
        cache: ResultCache | None = None,
        retry: RetryPolicy | None = None,
        small_n_threshold: int = 0,
        default_timeout: float | None = None,
        transport: str = "auto",
        shm_min_bytes: int | None = None,
        batch_max: int = 0,
        batch_linger_ms: float = 5.0,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if batch_max < 0:
            raise ValueError(f"batch_max must be >= 0, got {batch_max}")
        if batch_linger_ms < 0:
            raise ValueError(f"batch_linger_ms must be >= 0, got {batch_linger_ms}")
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r} (want one of {TRANSPORTS})")
        if transport == "shm" and not shm_available():
            raise TransportError(
                "transport='shm' was forced but shared memory is unavailable "
                "on this platform"
            )
        self.workers = max(1, int(workers))
        self.max_queue = int(max_queue)
        self.cache = cache
        self.retry = retry or RetryPolicy()
        self.small_n_threshold = int(small_n_threshold)
        self.default_timeout = default_timeout
        self.transport = transport
        self.shm_min_bytes = (
            DEFAULT_MIN_BYTES if shm_min_bytes is None else int(shm_min_bytes)
        )
        # forced shm means *everything* crosses in shared memory — the CI
        # smoke job relies on this to exercise the segment lifecycle
        self._factor_min_bytes = 0 if transport == "shm" else self.shm_min_bytes
        self._shm_factors = transport != "pickle" and shm_available()

        # (lane, submitter) -> FIFO of work items; round-robin ring per lane
        self._lanes: dict[str, dict[str, collections.deque]] = {ln: {} for ln in LANES}
        self._rr: dict[str, collections.deque] = {ln: collections.deque() for ln in LANES}
        self._queued = 0  # non-cancelled queued work items (admission gauge)
        self._running = 0

        self._jobs: dict[int, _Job] = {}
        self._inflight: dict[str, _Work] = {}  # queued or running work, by key
        self._next_id = 0

        self._cond = asyncio.Condition()
        self._registry = SegmentRegistry()
        self._pool = ResilientProcessPool(
            self.workers, initializer=pool_worker_init, registry=self._registry
        )
        self._thread_lane = asyncio.Lock()  # the in-thread lane is single-file
        self._thread_ws = Workspace()
        self._runners: list[asyncio.Task] = []
        self._stopped = False

        # batch-coalescing lane: compatible small-n jobs stage here and
        # run as one stacked execution (see docs/serving.md)
        self.batch_max = int(batch_max)
        self.batch_linger_ms = float(batch_linger_ms)
        self._batch_buckets: dict[tuple, list[_Work]] = {}
        self._batch_timers: dict[tuple, asyncio.TimerHandle] = {}
        self._batch_tasks: set[asyncio.Task] = set()
        self._batch_lock = asyncio.Lock()  # batched execution is single-file
        self._batch_ws = Workspace()
        self._batch_counts = collections.Counter()

        self._subscribers: list[_queue.SimpleQueue] = []
        self._t0 = time.perf_counter()
        self._counts = collections.Counter()
        self._tier_tally: collections.Counter = collections.Counter()
        self._swept_at_start = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self._runners:
            return
        # Reclaim dead-pid shm segments from a previous crashed run now,
        # not on the first pool rebuild: a SIGKILLed service leaves
        # orphans that would otherwise sit in /dev/shm until this
        # scheduler's first worker crash.
        self._swept_at_start = self._registry.sweep()
        # Fork the pool's workers now, before any job traffic exists.
        # A lazy first fork can land while a batch-lane executor thread
        # holds a lock mid-execution; the child inherits the locked
        # mutex and wedges (fork-vs-threads), stranding the job.
        self._pool.warm()
        self._runners = [
            asyncio.create_task(self._runner(), name=f"serve-runner-{i}")
            for i in range(self.workers)
        ]

    async def stop(self) -> None:
        async with self._cond:
            self._stopped = True
            self._cond.notify_all()
        for timer in self._batch_timers.values():
            timer.cancel()
        self._batch_timers.clear()
        for task in list(self._batch_tasks):
            task.cancel()
        await asyncio.gather(*self._batch_tasks, return_exceptions=True)
        self._batch_tasks.clear()
        for task in self._runners:
            task.cancel()
        await asyncio.gather(*self._runners, return_exceptions=True)
        self._runners = []
        self._pool.shutdown()
        self._emit("stopped")

    # -- events --------------------------------------------------------------

    def subscribe(self) -> _queue.SimpleQueue:
        """A thread-safe queue receiving every progress event from now on."""
        q: _queue.SimpleQueue = _queue.SimpleQueue()
        self._subscribers.append(q)
        return q

    def _emit(self, kind: str, **data) -> None:
        if not self._subscribers:
            return
        event = {"event": kind, "t": round(time.perf_counter() - self._t0, 6), **data}
        for q in self._subscribers:
            q.put(event)

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    # -- gauges (cheap, lock-free reads for health checks) --------------------

    @property
    def uptime_s(self) -> float:
        """Seconds since this scheduler was constructed."""
        return self._now()

    @property
    def queue_depth(self) -> int:
        """Work items currently queued or running (admission pressure).

        The gauge a health/routing layer polls per submission — a plain
        attribute read, unlike :meth:`stats` which builds a full dict.
        """
        return self._queued + self._running

    # -- submission ----------------------------------------------------------

    async def submit(self, spec: JobSpec) -> Submission:
        """Admit, coalesce, serve-from-cache, or reject — never block."""
        self._counts["submitted"] += 1
        try:
            spec.validate()
        except JobSpecError as exc:
            self._counts["rejected_invalid"] += 1
            self._emit("rejected", reason=f"invalid: {exc}")
            return Submission(False, reason=f"invalid: {exc}", queue_depth=self._queued)
        if self._stopped:
            self._counts["rejected_stopped"] += 1
            return Submission(False, key=spec.key, reason="unavailable: scheduler stopped",
                              queue_depth=self._queued)

        key = spec.key

        # factor-bearing results never enter the cache: their shared
        # segments have a lifecycle the JSON cache cannot own
        use_cache = self.cache is not None and not spec.return_factors
        cached = self.cache.get(key) if use_cache else None
        if cached is not None:
            job = self._new_job(spec, key)
            job.result.cache_hit = True
            self._finish_job(job, DONE, payload=cached)
            self._emit("cache_hit", job_id=job.result.job_id, key=key)
            return Submission(True, job.result.job_id, key, queue_depth=self._queued)

        work = self._inflight.get(key)
        if work is not None and not work.cancelled:
            job = self._new_job(spec, key)
            job.result.coalesced = True
            self._counts["coalesced"] += 1
            work.jobs.append(job)
            self._emit("coalesced", job_id=job.result.job_id, key=key,
                       leader=work.jobs[0].result.job_id)
            return Submission(True, job.result.job_id, key, queue_depth=self._queued)

        if self._queued >= self.max_queue:
            # a structured refusal, not an exception and not a job record:
            # the submission never entered the system
            self._counts["rejected_backpressure"] += 1
            reason = (
                f"backpressure: queue full ({self._queued}/{self.max_queue} work items); "
                f"drain or cancel before resubmitting"
            )
            self._emit("rejected", key=key, reason=reason)
            return Submission(False, None, key, reason=reason, queue_depth=self._queued)

        job = self._new_job(spec, key)
        work = _Work(key=key, spec=spec, lane=spec.priority, submitter=spec.submitter,
                     jobs=[job])
        self._inflight[key] = work
        self._queued += 1
        self._counts["accepted"] += 1
        if self._batch_eligible(spec):
            self._stage_batch(work)
            self._emit("submitted", job_id=job.result.job_id, key=key, lane="batch",
                       submitter=work.submitter, queue_depth=self._queued)
            return Submission(True, job.result.job_id, key, queue_depth=self._queued)
        self._enqueue_lane(work)
        self._emit("submitted", job_id=job.result.job_id, key=key, lane=work.lane,
                   submitter=work.submitter, queue_depth=self._queued)
        async with self._cond:
            self._cond.notify()
        return Submission(True, job.result.job_id, key, queue_depth=self._queued)

    def _enqueue_lane(self, work: _Work) -> None:
        """Append a (counted, in-flight) work item to its priority lane."""
        lane = self._lanes[work.lane]
        if work.submitter not in lane:
            lane[work.submitter] = collections.deque()
            self._rr[work.lane].append(work.submitter)
        lane[work.submitter].append(work)

    def _new_job(self, spec: JobSpec, key: str) -> _Job:
        self._next_id += 1
        result = JobResult(
            job_id=self._next_id,
            key=key,
            status=QUEUED,
            lane=spec.priority,
            submitter=spec.submitter,
            submitted_at=self._now(),
        )
        job = _Job(result=result)
        self._jobs[result.job_id] = job
        return job

    # -- queries / control ---------------------------------------------------

    def status(self, job_id: int) -> str | None:
        job = self._jobs.get(job_id)
        return job.result.status if job else None

    def get_result(self, job_id: int) -> JobResult | None:
        job = self._jobs.get(job_id)
        return job.result if job else None

    async def wait_result(self, job_id: int, timeout: float | None = None) -> JobResult:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job id {job_id}")
        await asyncio.wait_for(job.done.wait(), timeout)
        return job.result

    async def cancel(self, job_id: int) -> bool:
        """Cancel a *queued* job. Running or terminal jobs return False.

        If the job was the only one attached to its work item, the item
        itself is cancelled (lazily discarded at pop time) and its queue
        slot freed immediately.
        """
        job = self._jobs.get(job_id)
        if job is None or job.result.status != QUEUED:
            return False
        work = self._inflight.get(job.result.key)
        if work is None:  # already picked up and resolved concurrently
            return False
        staged = next(
            (b for b in self._batch_buckets.values() if work in b), None
        )
        if staged is None and work not in _queued_items(
            self._lanes, work.lane, work.submitter
        ):
            return False  # running: too late to cancel
        self._finish_job(job, CANCELLED, error="cancelled while queued")
        self._counts["cancelled"] += 1
        self._emit("cancelled", job_id=job_id, key=work.key)
        if not work.live_jobs():
            work.cancelled = True
            if staged is not None:
                staged.remove(work)
            self._inflight.pop(work.key, None)
            self._queued -= 1
            async with self._cond:
                self._cond.notify_all()
        return True

    async def drain(self) -> None:
        """Wait until every accepted job has reached a terminal state."""
        async with self._cond:
            while self._queued > 0 or self._running > 0:
                await self._cond.wait()

    # -- the runner loop -----------------------------------------------------

    async def _runner(self) -> None:
        while True:
            async with self._cond:
                work = None
                while work is None:
                    if self._stopped:
                        return
                    work = self._pop_work()
                    if work is None:
                        await self._cond.wait()
                self._queued -= 1
                self._running += 1
            try:
                await self._run_work(work)
            finally:
                if work.shm_matrix is not None:
                    # last use of the input segment: drop the work item's
                    # reference so the registry can unlink it
                    self._registry.release(work.shm_matrix.name)
                    work.shm_matrix = None
                self._inflight.pop(work.key, None)
                async with self._cond:
                    self._running -= 1
                    self._cond.notify_all()

    def _pop_work(self) -> _Work | None:
        """Highest non-empty lane; round-robin over submitters within it."""
        for lane in LANES:
            ring = self._rr[lane]
            buckets = self._lanes[lane]
            for _ in range(len(ring)):
                submitter = ring[0]
                ring.rotate(-1)
                dq = buckets.get(submitter)
                work = None
                while dq:
                    cand = dq.popleft()
                    if not cand.cancelled:
                        work = cand
                        break  # cancelled items were already de-counted
                if dq is not None and not dq:
                    buckets.pop(submitter, None)
                    ring.remove(submitter)
                if work is not None:
                    return work
        return None

    # -- the batch-coalescing lane -------------------------------------------

    def _batch_eligible(self, spec: JobSpec) -> bool:
        """Should this spec stage in the batch lane instead of a queue?

        The lane is on (``batch_max > 1``), the spec fits the stacked
        engine's surface (:func:`batch_compatible`), and the job is
        small enough that Python overhead — not arithmetic — dominates
        (the same ``small_n_threshold`` gate as the in-thread lane).
        """
        return (
            self.batch_max > 1
            and spec.order <= self.small_n_threshold
            and batch_compatible(spec)
        )

    def _stage_batch(self, work: _Work) -> None:
        """Hold a work item in its compatibility bucket until the bucket
        fills (``batch_max``) or the linger timer fires."""
        ck = batch_group_key(work.spec)
        bucket = self._batch_buckets.setdefault(ck, [])
        bucket.append(work)
        if len(bucket) >= self.batch_max:
            self._flush_bucket(ck)
        elif ck not in self._batch_timers:
            self._batch_timers[ck] = asyncio.get_running_loop().call_later(
                self.batch_linger_ms / 1000.0, self._flush_bucket, ck
            )

    def _flush_bucket(self, ck: tuple) -> None:
        """Dispatch one staged bucket (timer callback or fill trigger)."""
        timer = self._batch_timers.pop(ck, None)
        if timer is not None:
            timer.cancel()
        works = [w for w in self._batch_buckets.pop(ck, []) if not w.cancelled]
        if not works or self._stopped:
            return
        if len(works) == 1:
            # a lone job gains nothing from the stacked engine: re-route
            # to the normal lanes (still counted and in-flight)
            self._batch_counts["singletons"] += 1
            self._enqueue_lane(works[0])
            task = asyncio.get_running_loop().create_task(self._notify())
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)
            return
        task = asyncio.get_running_loop().create_task(self._run_batch(works))
        self._batch_tasks.add(task)
        task.add_done_callback(self._batch_tasks.discard)

    async def _notify(self) -> None:
        async with self._cond:
            self._cond.notify_all()

    def _requeue_from_batch(self, work: _Work) -> None:
        """Send a batch casualty through the normal scalar path (item
        retry isolation: one bad item never blocks its siblings)."""
        for job in work.live_jobs():
            job.result.retries += 1
            job.result.status = QUEUED
        self._counts["retries"] += 1
        self._batch_counts["requeued"] += 1
        self._enqueue_lane(work)

    async def _run_batch(self, works: list[_Work]) -> None:
        """Execute one formed batch and fan results back out per item."""
        async with self._cond:
            self._queued -= len(works)
            self._running += 1
        try:
            for w in works:
                for job in w.live_jobs():
                    job.result.status = RUNNING
                    job.result.started_at = self._now()
            self._emit("batch_started", size=len(works),
                       keys=[w.key for w in works])
            specs = [w.spec for w in works]
            try:
                async with self._batch_lock:
                    self._counts["executed"] += 1
                    out = await asyncio.to_thread(
                        execute_jobs_batched, specs, workspace=self._batch_ws
                    )
            except asyncio.CancelledError:
                raise
            except BaseException as exc:  # noqa: BLE001 - whole-batch fallback
                # a batch-level failure says nothing about any single
                # item: every member re-routes to the scalar path, where
                # the normal retry policy owns it
                self._batch_counts["batch_failures"] += 1
                self._emit("batch_failed", size=len(works),
                           reason=f"{type(exc).__name__}: {exc}")
                requeued = 0
                for w in works:
                    if w.live_jobs():
                        self._requeue_from_batch(w)
                        requeued += 1
                    else:
                        w.cancelled = True
                        self._inflight.pop(w.key, None)
                async with self._cond:
                    self._queued += requeued
                    self._cond.notify_all()
                return

            self._batch_counts["batches"] += 1
            self._batch_counts["batched_jobs"] += len(works)
            self._batch_counts["ejections"] += out["ejections"]
            requeued = 0
            for w, oc in zip(works, out["outcomes"]):
                live = w.live_jobs()
                if not live:
                    w.cancelled = True
                    self._inflight.pop(w.key, None)
                    continue
                if not oc["ok"]:
                    self._requeue_from_batch(w)
                    requeued += 1
                    continue
                payload = oc["payload"]
                if self.cache is not None:
                    self.cache.put(w.key, payload)
                for tier, count in payload.get("tier_tally", {}).items():
                    self._tier_tally[tier] += count
                for job in live:
                    self._finish_job(job, DONE, payload=payload)
                self._counts["completed"] += 1
                self._inflight.pop(w.key, None)
                self._emit("done", job_id=w.jobs[0].result.job_id, key=w.key,
                           followers=len(w.jobs) - 1, batched=True,
                           elapsed_s=round(payload.get("elapsed_s", 0.0), 6))
            if requeued:
                async with self._cond:
                    self._queued += requeued
                    self._cond.notify_all()
        finally:
            async with self._cond:
                self._running -= 1
                self._cond.notify_all()

    async def _run_work(self, work: _Work) -> None:
        for job in work.live_jobs():
            job.result.status = RUNNING
            job.result.started_at = self._now()
        self._emit("started", job_id=work.jobs[0].result.job_id, key=work.key,
                   lane=work.lane)
        while True:
            if not work.live_jobs():
                # every attached job was cancelled between retries
                work.cancelled = True
                return
            try:
                self._counts["executed"] += 1
                payload = await self._execute(work)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:  # noqa: BLE001 - classified below
                fclass = classify_failure(exc)
                prior = work.class_failures.get(fclass, 0)
                decision = self.retry.decide(fclass, prior, key=work.key)
                work.class_failures[fclass] = prior + 1
                if not decision.retry:
                    for job in work.live_jobs():
                        self._finish_job(job, FAILED, error=f"{type(exc).__name__}: {exc}",
                                         failure_class=fclass)
                    self._counts["failed"] += 1
                    self._emit("failed", job_id=work.jobs[0].result.job_id, key=work.key,
                               failure_class=fclass, reason=decision.reason)
                    return
                self._counts["retries"] += 1
                if decision.escalate_ladder:
                    work.ladder = (work.ladder or LadderConfig()).stricter()
                if decision.raise_sweeps:
                    # double the Francis stall budget (from the drivers'
                    # default of 30 sweeps per eigenvalue)
                    work.max_sweeps = 2 * (work.max_sweeps or 30)
                if decision.fresh_worker:
                    self._pool.rebuild()
                for job in work.live_jobs():
                    job.result.retries += 1
                self._emit("retrying", job_id=work.jobs[0].result.job_id, key=work.key,
                           failure_class=fclass, wait=round(decision.wait, 4),
                           reason=decision.reason,
                           stricter_ladder=decision.escalate_ladder)
                await asyncio.sleep(decision.wait)
                continue
            # success
            if self.cache is not None and not work.spec.return_factors:
                self.cache.put(work.key, payload)
            for tier, count in payload.get("tier_tally", {}).items():
                self._tier_tally[tier] += count
            live = work.live_jobs()
            self._adopt_factors(payload, live)
            for job in live:
                self._finish_job(job, DONE, payload=payload)
            self._counts["completed"] += 1
            self._emit("done", job_id=work.jobs[0].result.job_id, key=work.key,
                       followers=len(work.jobs) - 1,
                       elapsed_s=round(payload.get("elapsed_s", 0.0), 6))
            return

    async def _execute(self, work: _Work) -> dict:
        """One attempt: in-thread for small jobs, process pool otherwise."""
        spec = work.spec
        timeout = spec.timeout if spec.timeout is not None else self.default_timeout
        # crash-chaos jobs must run out-of-process: the hook kills its host
        in_thread = spec.order <= self.small_n_threshold and not spec.crash
        if in_thread:
            async with self._thread_lane:
                try:
                    # max_sweeps only rides along once a convergence
                    # retry raised it (keeps the call signature stable
                    # for stubbed drivers)
                    extra = (
                        {"max_sweeps": work.max_sweeps}
                        if work.max_sweeps is not None else {}
                    )
                    return await asyncio.wait_for(
                        asyncio.to_thread(
                            execute_job, spec, workspace=self._thread_ws,
                            ladder=work.ladder, **extra,
                        ),
                        timeout,
                    )
                except asyncio.TimeoutError:
                    # the abandoned thread may still be touching the lane's
                    # arena; give subsequent jobs a fresh one
                    self._thread_ws = Workspace()
                    raise JobTimeout(
                        f"job {work.key} exceeded {timeout}s (in-thread lane)"
                    ) from None
        # large inline matrices cross the process line as a shared-memory
        # handle, encoded once per work item (retries reuse the segment)
        send_spec = spec
        if isinstance(spec.matrix, np.ndarray):
            # ship the job's effective lane: fp32 inline matrices cross in
            # half the segment bytes instead of being promoted to float64
            matrix = np.asarray(spec.matrix, dtype=spec.lane)
            if work.shm_matrix is None and use_shm_for(
                matrix.nbytes, self.transport, min_bytes=self.shm_min_bytes
            ):
                work.shm_matrix = SharedMatrix.create(matrix, registry=self._registry)
                self._counts["shm_matrices"] += 1
            if work.shm_matrix is not None:
                send_spec = dataclasses.replace(spec, matrix=work.shm_matrix)
        # capture the pool instance this attempt runs on: concurrent
        # failures from one dead pool must rebuild it once, not tear
        # down each other's replacement (ResilientProcessPool.generation)
        gen = self._pool.generation
        fut = self._pool.submit(
            execute_job_pooled, send_spec, work.ladder,
            self._shm_factors, self._factor_min_bytes, work.max_sweeps,
        )
        try:
            return await asyncio.wait_for(asyncio.wrap_future(fut), timeout)
        except asyncio.TimeoutError:
            fut.cancel()
            # the worker may be wedged; a rebuild guarantees the retry
            # (or the next job) gets a responsive pool
            self._pool.rebuild(gen)
            raise JobTimeout(f"job {work.key} exceeded {timeout}s") from None
        except asyncio.CancelledError:
            if fut.cancelled():
                # the future was swept by a concurrent rebuild's
                # cancel_futures, not by the scheduler being stopped
                self._pool.rebuild(gen)
                raise WorkerLost(
                    f"pool was rebuilt under queued job {work.key}"
                ) from None
            raise
        except BrokenExecutor:
            self._pool.rebuild(gen)
            raise WorkerLost(f"worker died while running {work.key}") from None

    def _adopt_factors(self, payload: dict, live: list[_Job]) -> None:
        """Take ownership of worker-written factor segments.

        A pool worker creates result segments *unowned* (it may die any
        moment); the scheduler adopts them on arrival, holds one
        reference per live job, and binds the registry to each result so
        :meth:`JobResult.factor` can materialize-and-release. If every
        reader is already gone the segment is unlinked immediately.
        """
        refs = payload.get("factors") or {}
        for ref in refs.values():
            if "shm" not in ref:
                continue
            handle = SharedMatrix.from_json(ref["shm"])
            if not self._registry.adopt_foreign(handle, refs=0):
                continue  # segment vanished (worker host died post-send)
            self._counts["shm_factors"] += 1
            if not live:
                self._registry.unlink(handle.name)
                continue
            for _ in live:
                self._registry.acquire(handle.name)
        for job in live:
            job.result.bind_registry(self._registry)

    def _finish_job(
        self,
        job: _Job,
        status: str,
        *,
        payload: dict | None = None,
        error: str = "",
        failure_class: str = "",
    ) -> None:
        job.result.status = status
        job.result.payload = dict(payload) if payload is not None else None
        job.result.error = error
        job.result.failure_class = failure_class
        job.result.finished_at = self._now()
        if status == DONE:
            self._counts["jobs_done"] += 1
        job.done.set()

    # -- stats ---------------------------------------------------------------

    def stats(self) -> dict:
        """A JSON-safe snapshot of the scheduler's health."""
        counts = dict(self._counts)
        hits = self.cache.stats.hits if self.cache is not None else 0
        misses = self.cache.stats.misses if self.cache is not None else 0
        coalesced = counts.get("coalesced", 0)
        lookups = hits + misses
        return {
            "uptime_s": self._now(),
            "workers": self.workers,
            "max_queue": self.max_queue,
            "queued": self._queued,
            "running": self._running,
            "queue_depth": self.queue_depth,
            "counts": counts,
            "pool_rebuilds": self._pool.rebuilds,
            "data_plane": {
                "transport": self.transport,
                "shm_min_bytes": self.shm_min_bytes,
                "shm_available": shm_available(),
                "swept_at_start": self._swept_at_start,
                **self._registry.stats(),
            },
            "tier_tally": dict(self._tier_tally),
            "batch_lane": {
                "enabled": self.batch_max > 1,
                "batch_max": self.batch_max,
                "linger_ms": self.batch_linger_ms,
                "batches": self._batch_counts.get("batches", 0),
                "batched_jobs": self._batch_counts.get("batched_jobs", 0),
                "mean_occupancy": (
                    self._batch_counts["batched_jobs"] / self._batch_counts["batches"]
                    if self._batch_counts.get("batches")
                    else 0.0
                ),
                "ejections": self._batch_counts.get("ejections", 0),
                "singletons": self._batch_counts.get("singletons", 0),
                "requeued": self._batch_counts.get("requeued", 0),
                "batch_failures": self._batch_counts.get("batch_failures", 0),
                "staged": sum(len(b) for b in self._batch_buckets.values()),
            },
            "cache": self.cache.stats.to_json() if self.cache is not None else None,
            # share of lookups served without executing a driver: cache
            # hits plus duplicates coalesced onto an in-flight run
            "hit_rate": ((hits + coalesced) / lookups) if lookups else 0.0,
            "lanes": {
                lane: {sub: len(dq) for sub, dq in buckets.items()}
                for lane, buckets in self._lanes.items()
                if buckets
            },
        }


def _queued_items(lanes: dict, lane: str, submitter: str):
    return lanes.get(lane, {}).get(submitter, ())
