"""`HessService` — the synchronous facade over the async scheduler.

The scheduler is asyncio-native; most callers (the CLI, benchmarks,
notebooks) are not. ``HessService`` owns a dedicated event-loop thread
and exposes plain blocking methods — ``submit`` / ``submit_batch`` /
``status`` / ``result`` / ``cancel`` / ``drain`` / ``stats`` — plus a
streamed progress-event iterator. It is the one object the CLI's
``serve``/``submit`` subcommands, the batch example, and the throughput
benchmark all construct.

    with HessService(workers=2, max_queue=32) as svc:
        sub = svc.submit(JobSpec(driver="ft_gehrd", n=96, seed=1))
        if sub.accepted:
            res = svc.result(sub.job_id, timeout=60)
        svc.drain()
        print(svc.stats()["hit_rate"])

Submission never blocks on a full queue: you get a ``Submission`` with
``accepted=False`` and a ``backpressure: ...`` reason and decide what
to do (the CLI's batch runner waits for capacity and resubmits).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Iterable, Iterator

from repro.serve.cache import ResultCache
from repro.serve.jobs import JobResult, JobSpec
from repro.serve.retry import RetryPolicy
from repro.serve.scheduler import AsyncScheduler, Submission


class HessService:
    """Batch-reduction service: scheduler + cache + worker pool, one handle.

    Parameters mirror the scheduler's: ``workers`` pool processes,
    ``max_queue`` admission bound, ``cache_bytes`` LRU budget (``0``
    disables caching), ``spill_dir`` optional on-disk spill,
    ``small_n_threshold`` routes jobs of order <= threshold to the
    in-thread lane, ``default_timeout`` bounds each attempt.
    ``transport`` picks the cross-process data plane (``"auto"`` /
    ``"shm"`` / ``"pickle"``; see ``docs/performance.md``) and
    ``shm_min_bytes`` tunes the auto threshold below which a pickle is
    cheaper than a segment. ``batch_max > 1`` turns on the batch
    coalescing lane: compatible small-n jobs staged within
    ``batch_linger_ms`` of each other run as one stacked
    :mod:`repro.batch` execution (see ``docs/serving.md``).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        max_queue: int = 64,
        cache_bytes: int = 32 * 1024 * 1024,
        spill_dir=None,
        retry: RetryPolicy | None = None,
        small_n_threshold: int = 0,
        default_timeout: float | None = None,
        transport: str = "auto",
        shm_min_bytes: int | None = None,
        batch_max: int = 0,
        batch_linger_ms: float = 5.0,
    ) -> None:
        self.cache = (
            ResultCache(cache_bytes, spill_dir=spill_dir) if cache_bytes > 0 else None
        )
        self._scheduler = AsyncScheduler(
            workers=workers,
            max_queue=max_queue,
            cache=self.cache,
            retry=retry,
            small_n_threshold=small_n_threshold,
            default_timeout=default_timeout,
            transport=transport,
            shm_min_bytes=shm_min_bytes,
            batch_max=batch_max,
            batch_linger_ms=batch_linger_ms,
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="hess-serve-loop", daemon=True
        )
        self._thread.start()
        self._closed = False
        self._call(self._scheduler.start())

    # -- plumbing ------------------------------------------------------------

    def _call(self, coro, timeout: float | None = None):
        if self._closed:
            raise RuntimeError("HessService is closed")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    # -- submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> Submission:
        """Admit one job (never blocks; see :class:`Submission`)."""
        return self._call(self._scheduler.submit(spec))

    def submit_batch(self, specs: Iterable[JobSpec]) -> list[Submission]:
        """Admit many jobs in order; each gets its own Submission."""
        return [self.submit(spec) for spec in specs]

    def submit_wait(self, spec: JobSpec, *, poll: float = 0.02,
                    attempts: int = 10_000) -> Submission:
        """Submit, waiting out backpressure by polling for queue capacity.

        Client-side flow control for batch runners: invalid specs are
        still returned rejected immediately — only ``backpressure:``
        refusals are retried.
        """
        import time

        last = self.submit(spec)
        tries = 0
        while not last.accepted and last.reason.startswith("backpressure") and tries < attempts:
            time.sleep(poll)
            last = self.submit(spec)
            tries += 1
        return last

    # -- queries / control ---------------------------------------------------

    def status(self, job_id: int) -> str | None:
        return self._scheduler.status(job_id)

    def result(self, job_id: int, timeout: float | None = None) -> JobResult:
        """Block until the job is terminal; returns its JobResult."""
        return self._call(self._scheduler.wait_result(job_id, timeout))

    def peek(self, job_id: int) -> JobResult | None:
        """The job's current JobResult without waiting."""
        return self._scheduler.get_result(job_id)

    def cancel(self, job_id: int) -> bool:
        return self._call(self._scheduler.cancel(job_id))

    def drain(self, timeout: float | None = None) -> None:
        """Wait until every accepted job has reached a terminal state."""
        self._call(self._scheduler.drain(), timeout)

    def stats(self) -> dict:
        return self._scheduler.stats()

    # -- health gauges --------------------------------------------------------
    # Plain attribute reads off the scheduler (no event-loop hop, no
    # dict building): what a heartbeat or a routing tier polls per
    # submission without perturbing the loop it is checking on.

    @property
    def alive(self) -> bool:
        """Is the service able to take work (open + loop thread running)?"""
        return not self._closed and self._thread.is_alive()

    def uptime_s(self) -> float:
        """Seconds since the service's scheduler came up."""
        return self._scheduler.uptime_s

    def queue_depth(self) -> int:
        """Work items currently queued or running (admission pressure)."""
        return self._scheduler.queue_depth

    # -- progress events -----------------------------------------------------

    def subscribe(self):
        """A thread-safe queue of progress-event dicts (from now on)."""
        return self._scheduler.subscribe()

    def events(self, q=None, *, poll: float = 0.1) -> Iterator[dict]:
        """Iterate progress events until the service stops emitting.

        Yields each event dict; returns after ``close()`` (the
        ``stopped`` event ends the stream).
        """
        import queue as _queue

        q = q if q is not None else self.subscribe()
        while True:
            try:
                event = q.get(timeout=poll)
            except _queue.Empty:
                if self._closed:
                    return
                continue
            yield event
            if event.get("event") == "stopped":
                return

    # -- lifecycle -----------------------------------------------------------

    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the service (draining accepted work first by default)."""
        if self._closed:
            return
        if drain:
            self._call(self._scheduler.drain(), timeout)
        self._call(self._scheduler.stop(), timeout)
        self._closed = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        if not self._loop.is_running():
            self._loop.close()

    def __enter__(self) -> "HessService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # on an exception, don't insist on draining a possibly-wedged queue
        self.close(drain=exc_type is None)
