"""Resilience-aware retry policy for served jobs.

The PR 2 robustness work gave driver failures a taxonomy; this module
maps that taxonomy onto *scheduling* decisions. The interesting case is
:class:`~repro.errors.EscalationExhausted` — the recovery ladder inside
the driver ran out of budget. That is not a verdict on the job, only on
the budgets it ran with, so the retry re-submits the job with a
stricter :class:`~repro.resilience.ladder.LadderConfig`
(``LadderConfig.stricter()``: optimistic tier off, unbounded rollback,
one more restart) up to a bounded number of escalation retries.

A plain :class:`~repro.errors.ConvergenceError` (the Francis iteration
stalled past its sweep budget, without the resilience ladder being
involved) retries once with a **doubled sweep budget** — shift
strategies occasionally need more room on adversarial spectra — and
then fails permanently with a structured reason naming the exhausted
budget.

Infrastructure failures are handled by *where* the retry runs rather
than *how*: a timeout or a lost worker gets one retry on a fresh worker
process (the scheduler rebuilds the pool first). Configuration errors —
:class:`~repro.errors.FaultConfigError`, shape/spec validation — are
permanent: no amount of retrying fixes a malformed request.

Backoff is exponential with deterministic jitter: the jitter term is
hashed from ``(job key, attempt)``, so two replicas of a service retry
the same job at the same offsets (reproducible schedules), while
different jobs de-synchronize instead of thundering back together.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import (
    ConvergenceError,
    EscalationExhausted,
    FaultConfigError,
    ReproError,
    ShapeError,
)
from repro.serve.jobs import JobSpecError

# -- failure classes --------------------------------------------------------

ESCALATION = "escalation_exhausted"
CONVERGENCE = "convergence"
TIMEOUT = "timeout"
WORKER_LOST = "worker_lost"
FAULT_CONFIG = "fault_config"
INVALID = "invalid"
TRANSIENT = "transient"
UNEXPECTED = "unexpected"

FAILURE_CLASSES = (
    ESCALATION, CONVERGENCE, TIMEOUT, WORKER_LOST, FAULT_CONFIG, INVALID,
    TRANSIENT, UNEXPECTED,
)


class JobTimeout(ReproError, TimeoutError):
    """A served job exceeded its wall-clock budget."""


class WorkerLost(ReproError, RuntimeError):
    """The pool worker running a job died (BrokenProcessPool path)."""


def classify_failure(exc: BaseException) -> str:
    """Map an exception from a job run onto the retry taxonomy.

    :class:`EscalationExhausted` subclasses :class:`ConvergenceError`,
    so the escalation check must come first: a ladder that ran out of
    budget is a resilience verdict, while a plain ``ConvergenceError``
    is a genuinely stalled Francis iteration — retried once with a
    raised sweep budget, then permanent.
    """
    if isinstance(exc, EscalationExhausted):
        return ESCALATION
    if isinstance(exc, ConvergenceError):
        return CONVERGENCE
    if isinstance(exc, JobTimeout):
        return TIMEOUT
    if isinstance(exc, WorkerLost):
        return WORKER_LOST
    if isinstance(exc, FaultConfigError):
        return FAULT_CONFIG
    if isinstance(exc, (JobSpecError, ShapeError)):
        return INVALID
    if isinstance(exc, ReproError):
        return TRANSIENT
    return UNEXPECTED


@dataclass(frozen=True)
class RetryDecision:
    """What the scheduler should do with a failed attempt."""

    retry: bool
    wait: float = 0.0
    reason: str = ""
    #: re-run with LadderConfig.stricter() applied (escalation failures)
    escalate_ladder: bool = False
    #: rebuild the worker pool before re-running (timeout / lost worker)
    fresh_worker: bool = False
    #: re-run with a doubled Francis sweep budget (convergence failures)
    raise_sweeps: bool = False


@dataclass(frozen=True)
class RetryPolicy:
    """Budgets per failure class plus the backoff shape.

    ``escalation_retries`` bounds how many times a job may climb back in
    with a stricter ladder; ``convergence_retries`` how many times a
    stalled Francis iteration may retry with a doubled sweep budget
    (once by default — a genuinely non-converging matrix should fail
    permanently, with the structured reason naming the exhausted
    budget); ``timeout_retries`` / ``worker_lost_retries`` are per-job
    budgets for the two infrastructure classes (the issue's "retried
    once on a fresh worker"); ``transient_retries`` covers the
    remaining retryable library failures.
    """

    escalation_retries: int = 2
    convergence_retries: int = 1
    timeout_retries: int = 1
    worker_lost_retries: int = 1
    transient_retries: int = 1
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.25

    def backoff(self, attempt: int, key: str = "") -> float:
        """Exponential backoff with deterministic per-(key, attempt) jitter."""
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** max(attempt - 1, 0)))
        digest = hashlib.sha256(f"{key}#{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)  # [0, 1)
        return base * (1.0 + self.jitter * unit)

    def budget(self, failure_class: str) -> int:
        """Total retries allowed for one job in *failure_class*."""
        return {
            ESCALATION: self.escalation_retries,
            CONVERGENCE: self.convergence_retries,
            TIMEOUT: self.timeout_retries,
            WORKER_LOST: self.worker_lost_retries,
            TRANSIENT: self.transient_retries,
        }.get(failure_class, 0)

    def decide(self, failure_class: str, class_attempts: int, *, key: str = "") -> RetryDecision:
        """Decide the fate of a job whose attempt just failed.

        ``class_attempts`` counts prior *failures in the same class* for
        this job (0 on the first failure). Permanent classes
        (``fault_config``, ``invalid``, ``unexpected``) never retry.
        """
        allowed = self.budget(failure_class)
        if class_attempts >= allowed:
            why = "permanent failure class" if allowed == 0 else f"retry budget exhausted ({allowed})"
            return RetryDecision(retry=False, reason=f"{failure_class}: {why}")
        wait = self.backoff(class_attempts + 1, key)
        return RetryDecision(
            retry=True,
            wait=wait,
            reason=f"{failure_class}: retry {class_attempts + 1}/{allowed}",
            escalate_ladder=failure_class == ESCALATION,
            fresh_worker=failure_class in (TIMEOUT, WORKER_LOST),
            raise_sweeps=failure_class == CONVERGENCE,
        )
