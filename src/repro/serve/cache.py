"""Bounded, thread-safe, content-addressed result cache.

Keys are :attr:`JobSpec.key` digests; values are the JSON-safe outcome
payloads produced by :func:`repro.serve.jobs.execute_job`. The cache is
an LRU over a *byte* budget (payload sizes vary by orders of magnitude
between a residual record and a campaign outcome table), with hit /
miss / eviction counters surfaced in service stats.

An optional spill directory turns evictions into on-disk JSON files
keyed by the same digest, so a benchmark sweep repeated tomorrow — or a
service restarted after a crash — still resolves yesterday's jobs
without recomputing them. Spill reads are promoted back into memory and
counted separately (``spill_hits``) so the stats distinguish warm from
disk-warm service.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters for one cache's lifetime (all monotonic except gauges)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0
    spill_writes: int = 0
    spill_hits: int = 0
    # gauges
    entries: int = 0
    bytes: int = 0
    budget_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        seen = self.hits + self.misses
        return self.hits / seen if seen else 0.0

    def to_json(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "spill_writes": self.spill_writes,
            "spill_hits": self.spill_hits,
            "entries": self.entries,
            "bytes": self.bytes,
            "budget_bytes": self.budget_bytes,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    """One cached payload plus its canonical JSON encoding.

    The payload is serialized exactly once, on insert: the same blob
    charges the byte budget *and* lands on disk verbatim if the entry is
    ever spilled — the old double ``json.dumps`` (once for ``nbytes``,
    again in the spill writer) did the expensive half of the work twice.
    """

    payload: dict
    blob: bytes = b""

    def __post_init__(self) -> None:
        if not self.blob:
            self.blob = json.dumps(self.payload, sort_keys=True).encode()

    @property
    def nbytes(self) -> int:
        return len(self.blob)


def _spill_name(key: str) -> str:
    # job keys contain ':' and arbitrary recipe text; hash to a safe name
    return hashlib.sha256(key.encode()).hexdigest()[:32] + ".json"


class ResultCache:
    """LRU result cache with a byte budget and optional disk spill.

    Thread-safe: the service facade reads it from caller threads while
    the scheduler loop writes it.
    """

    def __init__(
        self,
        max_bytes: int = 32 * 1024 * 1024,
        *,
        spill_dir: "str | pathlib.Path | None" = None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self._spill_dir = pathlib.Path(spill_dir) if spill_dir is not None else None
        if self._spill_dir is not None:
            self._spill_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats(budget_bytes=self.max_bytes)

    # -- core ----------------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The cached payload for *key*, or ``None`` (a recorded miss).

        Memory first; on a memory miss the spill directory is probed and
        a disk hit is promoted back into the LRU.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return dict(entry.payload)
            payload = self._read_spill(key)
            if payload is not None:
                self.stats.hits += 1
                self.stats.spill_hits += 1
                self._insert(key, _Entry(payload))
                return dict(payload)
            self.stats.misses += 1
            return None

    def put(self, key: str, payload: dict) -> None:
        """Insert/overwrite *key*; evicts LRU entries over the budget."""
        entry = _Entry(dict(payload))
        with self._lock:
            self.stats.puts += 1
            if key in self._entries:
                self._remove(key)
            # an entry bigger than the whole budget can never be held in
            # memory — spill it straight to disk instead of churning the LRU
            if entry.nbytes > self.max_bytes:
                self._write_spill(key, entry)
                return
            self._insert(key, entry)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        """Current keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every in-memory entry (the spill directory is kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._sync_gauges()

    # -- internals (lock held) ----------------------------------------------

    def _insert(self, key: str, entry: _Entry) -> None:
        self._entries[key] = entry
        self._bytes += entry.nbytes
        while self._bytes > self.max_bytes and self._entries:
            victim, dropped = self._entries.popitem(last=False)
            self._bytes -= dropped.nbytes
            self.stats.evictions += 1
            self._write_spill(victim, dropped)
        self._sync_gauges()

    def _remove(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes -= entry.nbytes
        self._sync_gauges()

    def _sync_gauges(self) -> None:
        self.stats.entries = len(self._entries)
        self.stats.bytes = self._bytes

    # -- spill ---------------------------------------------------------------

    def _write_spill(self, key: str, entry: _Entry) -> None:
        if self._spill_dir is None:
            return
        path = self._spill_dir / _spill_name(key)
        tmp = path.with_suffix(".tmp")
        # splice the already-encoded payload blob into the wrapper —
        # the payload is never re-serialized on the way to disk
        tmp.write_bytes(
            b'{"key": ' + json.dumps(key).encode() + b', "payload": ' + entry.blob + b"}"
        )
        tmp.replace(path)  # atomic: a crashed spill never leaves a torn file
        self.stats.spill_writes += 1

    def _read_spill(self, key: str) -> dict | None:
        if self._spill_dir is None:
            return None
        path = self._spill_dir / _spill_name(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if data.get("key") != key:  # digest collision or foreign file
            return None
        return data.get("payload")
