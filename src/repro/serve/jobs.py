"""Typed job model for the batch-reduction service.

A :class:`JobSpec` describes one unit of work against any driver the
library has — the plain blocked reduction, the hybrid baseline, the
fault-tolerant Hessenberg/tridiagonal drivers, or a whole fault
campaign. Specs are declarative and picklable, so the same object is
what travels to a pool worker and what a JSONL job file deserializes
into.

Content addressing
------------------
``job_key(spec)`` is a deterministic digest of everything that can
change the *result*: the matrix identity (an RNG recipe or a byte-exact
fingerprint of an inline matrix) plus the driver configuration.
Scheduling metadata — priority lane, submitter id, timeout, chaos
hooks — is deliberately excluded, so the same computation submitted by
two clients at different priorities is one cache entry. The key is what
the result cache, the in-flight coalescer, and the on-disk spill all
index by.

The caveat that follows from byte-exact fingerprints: two matrices that
differ in the last ulp of one entry are different jobs. Near-duplicate
inputs (same matrix re-generated through a different code path, a
round-tripped file, an epsilon perturbation) will *miss* the cache; see
``docs/serving.md`` for the discussion.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field, fields

import numpy as np

from repro.errors import ReproError, ShapeError
from repro.utils.precision import lane_dtype
from repro.utils.shm import (
    DEFAULT_MIN_BYTES,
    SharedMatrix,
    hash_update_array,
    shm_available,
)

#: Drivers a job may target. ``ft_eig`` runs the end-to-end protected
#: eigensolver (FT reduction → protected Francis QR, eigenvalues only);
#: ``ft_schur`` additionally accumulates and returns the real Schur
#: form ``A = (QZ) T (QZ)ᵀ``.
DRIVERS = ("gehrd", "hybrid_gehrd", "ft_gehrd", "ft_sytrd", "campaign",
           "ft_eig", "ft_schur")

#: Drivers built on the protected Francis QR stage.
EIG_DRIVERS = ("ft_eig", "ft_schur")

#: Drivers the non-NumPy backend lane can serve (the functional
#: whole-stack kernels of :mod:`repro.batch.backend_lane`). Everything
#: else runs on the NumPy engine regardless of the requested backend.
BACKEND_DRIVERS = ("gehrd", "ft_gehrd")

#: Priority lanes, highest first. The scheduler always drains a higher
#: lane before looking at a lower one.
LANES = ("high", "normal", "low")

#: Job lifecycle states (terminal: done / failed / cancelled).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


class JobSpecError(ReproError, ValueError):
    """A job specification is malformed (unknown driver, bad size, ...)."""


@dataclass(frozen=True)
class JobSpec:
    """One unit of work for the batch service.

    The matrix is either generated deterministically from
    ``(kind, n, seed)`` — the common case for sweeps and job files — or
    supplied inline via ``matrix`` (which then overrides the recipe and
    is fingerprinted byte-exactly).

    ``faults`` is a tuple of :class:`~repro.faults.FaultSpec` keyword
    dicts injected into FT drivers, so resilience jobs (and their
    recovery-tier tallies) flow through the same pipeline as clean runs.

    ``crash`` / ``crash_once_path`` are chaos hooks mirroring the
    campaign executor's: the worker process dies hard (``os._exit``)
    before doing any work — once only if a sentinel path is given. They
    exist for the broken-pool recovery tests and the CI smoke job and
    are excluded from the content key.

    ``return_factors=True`` asks the driver to ship the H and Q factors
    back with the payload (lazily materialized via
    :meth:`JobResult.factor`); it *is* part of the content key, and
    factor-bearing results bypass the result cache — their shared
    segments have a lifecycle the JSON cache cannot own.

    ``matrix`` may arrive as a :class:`~repro.utils.shm.SharedMatrix`
    handle instead of an ndarray — that is how the scheduler ships
    large inline matrices to pool workers without re-pickling them per
    attempt (the zero-copy data plane; see ``docs/performance.md``).

    ``dtype`` names the precision lane (``"float64"`` / ``"float32"``)
    the job runs at; it is part of the content key. An inline float32
    matrix keeps its lane even under the default ``dtype="float64"`` —
    see :attr:`lane` — so a submitted fp32 matrix is never silently
    promoted.
    """

    driver: str = "ft_gehrd"
    n: int = 128
    seed: int = 0
    kind: str = "uniform"
    dtype: str = "float64"
    # array backend the job runs on: "" resolves through REPRO_BACKEND
    # then "numpy" (see repro.backend). Part of the content key — the
    # functional lanes agree with NumPy to rounding, not byte-identity,
    # so results from different backends must never share a cache entry.
    backend: str = ""
    nb: int = 32
    channels: int = 1
    audit_every: int = 0
    functional: bool = True
    faults: tuple = ()
    moments: int = 2
    adversarial: bool = False
    return_factors: bool = False
    # eigensolver drivers only: also compute right eigenvectors via
    # inverse iteration and back-transformation
    eigvecs: bool = False
    # scheduling metadata (not part of the content key)
    priority: str = "normal"
    submitter: str = "anon"
    timeout: float | None = None
    # chaos hooks (not part of the content key)
    crash: bool = False
    crash_once_path: str | None = None
    matrix: np.ndarray | None = field(default=None, compare=False, repr=False)

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`JobSpecError` on anything the drivers would
        only reject deep inside a worker."""
        from repro.utils.rng import MatrixKind

        if self.driver not in DRIVERS:
            raise JobSpecError(f"unknown driver {self.driver!r} (want one of {DRIVERS})")
        try:
            lane_dtype(self.dtype)
        except ShapeError as exc:
            raise JobSpecError(str(exc)) from exc
        from repro.backend import backend_available, get_backend, is_known_backend

        if not is_known_backend(self.backend):
            from repro.backend import BACKEND_NAMES

            raise JobSpecError(
                f"unknown backend {self.backend!r} "
                f"(registered: {', '.join(BACKEND_NAMES)})"
            )
        eff = self.effective_backend
        if eff != "numpy":
            if self.driver not in BACKEND_DRIVERS:
                raise JobSpecError(
                    f"backend {eff!r} serves {BACKEND_DRIVERS} only, "
                    f"not driver {self.driver!r} (the other drivers run "
                    "on the NumPy engine)"
                )
            if not self.functional:
                raise JobSpecError(
                    f"backend {eff!r} runs functional mode only "
                    "(metadata pricing has no arrays to route)"
                )
            if self.channels != 1:
                raise JobSpecError(
                    f"backend {eff!r} maintains unit-weight checksums only "
                    f"(channels=1), got channels={self.channels}"
                )
            if self.audit_every:
                raise JobSpecError(
                    f"backend {eff!r} has no audit machinery (audit_every "
                    "must be 0; audits run on the NumPy engine)"
                )
            # availability is a submit-time failure, not a worker-time one;
            # raises a typed BackendUnavailableError with an install hint
            if not backend_available(eff):
                get_backend(eff)
        if self.driver == "ft_sytrd" and self.lane != np.float64:
            raise JobSpecError(
                "ft_sytrd runs in the float64 lane only "
                f"(got dtype {self.lane.name!r})"
            )
        if self.priority not in LANES:
            raise JobSpecError(f"unknown priority {self.priority!r} (want one of {LANES})")
        if self.matrix is None and self.n < 2:
            raise JobSpecError(f"matrix order must be >= 2, got {self.n}")
        if self.matrix is not None:
            shape = (
                self.matrix.shape
                if isinstance(self.matrix, SharedMatrix)
                else np.asarray(self.matrix).shape
            )
            if len(shape) != 2 or shape[0] != shape[1] or shape[0] < 2:
                raise JobSpecError(
                    f"inline matrix must be square of order >= 2, got {tuple(shape)}"
                )
        if self.return_factors:
            if self.driver in ("ft_sytrd", "campaign"):
                raise JobSpecError(
                    f"return_factors is not available for driver {self.driver!r}"
                )
            if not self.functional:
                raise JobSpecError("return_factors needs functional=True")
            if self.driver == "ft_eig" and not self.eigvecs:
                raise JobSpecError(
                    "ft_eig has no factors without eigvecs=True "
                    "(eigenvalues travel in the payload; use ft_schur for T/Z)"
                )
        if self.eigvecs and self.driver not in EIG_DRIVERS:
            raise JobSpecError(
                f"eigvecs is only available for {EIG_DRIVERS}, "
                f"not driver {self.driver!r}"
            )
        if self.nb < 1:
            raise JobSpecError(f"nb must be >= 1, got {self.nb}")
        if self.channels not in (1, 2):
            raise JobSpecError(f"channels must be 1 or 2, got {self.channels}")
        if self.moments < 1:
            raise JobSpecError(f"moments must be >= 1, got {self.moments}")
        if self.timeout is not None and self.timeout <= 0:
            raise JobSpecError(f"timeout must be positive, got {self.timeout}")
        try:
            MatrixKind(self.kind)
        except ValueError as exc:
            raise JobSpecError(f"unknown matrix kind {self.kind!r}") from exc
        for f in self.faults:
            if not isinstance(f, dict):
                raise JobSpecError(f"faults entries must be FaultSpec kwarg dicts, got {f!r}")

    # -- content addressing -------------------------------------------------

    @property
    def order(self) -> int:
        """The matrix order the job will actually run at."""
        if isinstance(self.matrix, SharedMatrix):
            return int(self.matrix.shape[0])
        if self.matrix is not None:
            return int(np.asarray(self.matrix).shape[0])
        return self.n

    @property
    def effective_backend(self) -> str:
        """The canonical backend name this job runs on.

        An explicit ``backend`` wins; ``""`` resolves through the
        ``REPRO_BACKEND`` environment variable, then ``"numpy"``.
        """
        from repro.backend import canonical_backend_name

        return canonical_backend_name(self.backend)

    @property
    def lane(self) -> np.dtype:
        """The precision lane the job actually runs at.

        ``dtype`` rules unless it is the default float64 *and* an inline
        float32 matrix was supplied — then the matrix's own lane wins, so
        fp32 submissions survive end-to-end without an explicit flag.
        """
        if self.dtype == "float64" and self.matrix is not None:
            dt = (
                np.dtype(self.matrix.dtype)
                if isinstance(self.matrix, SharedMatrix)
                else np.asarray(self.matrix).dtype
            )
            if dt == np.float32:
                return np.dtype(np.float32)
        return lane_dtype(self.dtype)

    def matrix_fingerprint(self) -> str:
        """Deterministic identity of the input matrix.

        Generated matrices hash their recipe; inline matrices hash their
        exact bytes (shape + dtype + data) straight from the array's
        buffer — a contiguous matrix is hashed with zero copies.
        ``ft_sytrd`` always symmetrizes the recipe, so its fingerprint
        pins ``kind`` to ``symmetric`` regardless of what the spec says.
        """
        if self.matrix is not None:
            m = np.asarray(self.matrix, dtype=self.lane)
            h = hashlib.sha256()
            h.update(repr((m.shape, str(m.dtype))).encode())
            hash_update_array(h, m)
            return f"sha256:{h.hexdigest()[:16]}"
        kind = "symmetric" if self.driver == "ft_sytrd" else self.kind
        return f"rng:{kind}:n={self.n}:seed={self.seed}:dtype={self.lane.name}"

    def content_dict(self) -> dict:
        """Everything that determines the result, canonically ordered."""
        return {
            "driver": self.driver,
            "matrix": self.matrix_fingerprint(),
            "dtype": self.lane.name,
            "backend": self.effective_backend,
            "nb": self.nb,
            "channels": self.channels,
            "audit_every": self.audit_every,
            "functional": self.functional,
            "faults": [dict(sorted(f.items())) for f in self.faults],
            "return_factors": self.return_factors,
            "moments": self.moments if self.driver == "campaign" else None,
            "adversarial": self.adversarial if self.driver == "campaign" else None,
            "seed": self.seed if self.driver == "campaign" else None,
            "eigvecs": self.eigvecs if self.driver in EIG_DRIVERS else None,
        }

    @property
    def key(self) -> str:
        """The content-addressed job key (stable across processes)."""
        blob = json.dumps(self.content_dict(), sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(blob.encode()).hexdigest()[:16]
        return f"{self.driver}:{self.matrix_fingerprint()}:{digest}"

    # -- (de)serialization --------------------------------------------------

    def to_json(self) -> dict:
        out = {}
        for f in fields(self):
            v = getattr(self, f.name)
            if f.name == "matrix":
                if isinstance(v, SharedMatrix):
                    # a transport artifact, not a portable description;
                    # serialize the identity, not unreachable segment bytes
                    out["matrix"] = None
                elif v is not None:
                    out["matrix"] = np.asarray(v, dtype=self.lane).tolist()
                continue
            if f.name == "dtype":
                # round-trip the *effective* lane, so an inline fp32
                # matrix re-materializes as fp32 from nested JSON lists
                out["dtype"] = self.lane.name
                continue
            if f.name == "faults":
                v = [dict(x) for x in v]
            out[f.name] = v
        return out

    @classmethod
    def from_json(cls, data: dict) -> "JobSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise JobSpecError(f"unknown JobSpec fields: {sorted(unknown)}")
        kw = dict(data)
        if kw.get("matrix") is not None:
            try:
                dt = lane_dtype(kw.get("dtype", "float64"))
            except ShapeError as exc:
                raise JobSpecError(str(exc)) from exc
            kw["matrix"] = np.asarray(kw["matrix"], dtype=dt)
        if "faults" in kw:
            kw["faults"] = tuple(dict(x) for x in kw["faults"])
        return cls(**kw)


@dataclass
class JobResult:
    """The JSON-serializable lifecycle record of one submitted job.

    ``payload`` is the driver outcome (residuals, recovery counts, tier
    tally, ...) — always plain JSON types, which is what lets the result
    cache spill it to disk and the CLI stream it as JSONL. A
    factor-returning job's payload carries a ``"factors"`` table of
    references (inline nested lists for small factors, shared-memory
    handles for large ones); the arrays themselves are reconstructed
    lazily on first access through :meth:`factor` / :attr:`factors` —
    a result nobody inspects never pays the copy.
    """

    job_id: int
    key: str
    status: str = QUEUED
    lane: str = "normal"
    submitter: str = "anon"
    payload: dict | None = None
    error: str = ""
    failure_class: str = ""
    retries: int = 0
    cache_hit: bool = False
    coalesced: bool = False
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    # lazy-materialization plumbing (process-local, never serialized)
    _registry: object = field(default=None, init=False, repr=False, compare=False)
    _materialized: dict = field(default_factory=dict, init=False, repr=False,
                                compare=False)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    # -- lazy factors --------------------------------------------------------

    def bind_registry(self, registry) -> None:
        """Attach the owning scheduler's segment registry so shm-backed
        factor references can be resolved (and their segments released)."""
        self._registry = registry

    @property
    def has_factors(self) -> bool:
        return bool(self.payload and self.payload.get("factors"))

    def factor(self, name: str) -> np.ndarray:
        """Materialize one returned factor (``"h"`` or ``"q"``).

        Inline references decode from the payload; shared-memory
        references attach the worker-written segment, copy it out once,
        and drop this result's reference (the last reader's release
        unlinks the segment). The copy is cached — repeated access is
        free — and survives the service closing afterwards.
        """
        if name in self._materialized:
            return self._materialized[name]
        refs = (self.payload or {}).get("factors") or {}
        if name not in refs:
            raise KeyError(
                f"no factor {name!r} on this result (have {sorted(refs)}); "
                "submit with return_factors=True to get factors back"
            )
        ref = refs[name]
        if "data" in ref:
            arr = np.asarray(ref["data"], dtype=ref.get("dtype", "float64"))
        else:
            handle = SharedMatrix.from_json(ref["shm"])
            if self._registry is not None:
                arr = self._registry.materialize(handle)
            else:
                # a result rehydrated from JSON in another process: the
                # segment may or may not still exist — attach_view gives
                # the definitive answer either way
                arr = np.array(handle.attach())
        self._materialized[name] = arr
        return arr

    @property
    def factors(self) -> dict:
        """All returned factors, materialized (see :meth:`factor`)."""
        refs = (self.payload or {}).get("factors") or {}
        return {name: self.factor(name) for name in refs}

    @property
    def tier_tally(self) -> dict:
        """Recovery-ladder tiers the job's driver run climbed through."""
        if not self.payload:
            return {}
        return dict(self.payload.get("tier_tally", {}))

    def to_json(self) -> dict:
        return {
            "job_id": self.job_id,
            "key": self.key,
            "status": self.status,
            "lane": self.lane,
            "submitter": self.submitter,
            "payload": self.payload,
            "error": self.error,
            "failure_class": self.failure_class,
            "retries": self.retries,
            "cache_hit": self.cache_hit,
            "coalesced": self.coalesced,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    @classmethod
    def from_json(cls, data: dict) -> "JobResult":
        return cls(**data)


# ---------------------------------------------------------------------------
# Execution — runs inside a pool worker process or an in-thread lane.
# ---------------------------------------------------------------------------


def _maybe_crash(spec: JobSpec) -> None:
    """Chaos hook: die like a segfault (no exception, no cleanup)."""
    if not spec.crash:
        return
    if spec.crash_once_path is not None:
        if os.path.exists(spec.crash_once_path):
            return
        with open(spec.crash_once_path, "w") as fh:
            fh.write("crashed\n")
    os._exit(23)


def _build_matrix(spec: JobSpec, workspace=None) -> np.ndarray:
    from repro.utils.rng import random_matrix

    if isinstance(spec.matrix, SharedMatrix):
        # zero-deserialization: view the shared pages the scheduler
        # wrote once, then land them in a pooled arena buffer (zero
        # allocation on a warm worker) or a private copy without one
        view = spec.matrix.attach()
        if workspace is not None:
            return workspace.matrix_like("jobs.inline_a", view)
        return view.copy(order="F")
    if spec.matrix is not None:
        return np.asfortranarray(np.asarray(spec.matrix, dtype=spec.lane))
    kind = "symmetric" if spec.driver == "ft_sytrd" else spec.kind
    return random_matrix(spec.n, kind=kind, seed=spec.seed, dtype=spec.lane)


def _injector(spec: JobSpec):
    if not spec.faults:
        return None
    from repro.faults import FaultInjector, FaultSpec

    return FaultInjector(faults=[FaultSpec(**f) for f in spec.faults])


def _split_injectors(spec: JobSpec):
    """Split a fault plan between the two pipeline stages: reduction
    faults drive :func:`~repro.core.ft_hessenberg.ft_gehrd`, ``qr_*``
    faults drive :func:`~repro.eigen.ft_hqr.ft_hqr`. Returns
    ``(reduction_injector, qr_injector)``, either side None when empty."""
    if not spec.faults:
        return None, None
    from repro.faults import FaultInjector, FaultSpec
    from repro.faults.injector import QR_SPACES

    plan = [FaultSpec(**f) for f in spec.faults]
    red = [f for f in plan if f.space not in QR_SPACES]
    qr = [f for f in plan if f.space in QR_SPACES]
    return (
        FaultInjector(faults=red) if red else None,
        FaultInjector(faults=qr) if qr else None,
    )


def _tier_tally(recoveries, restarts: int) -> dict:
    tally: dict[str, int] = {}
    for rec in recoveries:
        tally[rec.tier] = tally.get(rec.tier, 0) + 1
    if restarts:
        tally["restart"] = tally.get("restart", 0) + restarts
    return tally


def _eig_payload(spec: JobSpec, res, fr) -> dict:
    """The payload rows the scalar and batched eigensolver paths share:
    the spectrum (as ``[re, im]`` pairs, JSON-safe) plus both stages'
    detection/recovery accounting and the QR checkpoint statistics."""
    return {
        "driver": spec.driver,
        "n": spec.order,
        "nb": spec.nb,
        "dtype": spec.lane.name,
        "eigvals": [[float(z.real), float(z.imag)] for z in fr.eigvals],
        "seconds_simulated": float(res.seconds),
        "detections": int(res.detections) + int(fr.detections),
        "recoveries": len(res.recoveries) + len(fr.recoveries),
        "restarts": int(res.restarts),
        "tau_repairs": int(res.tau_repairs),
        "sweeps": int(fr.sweeps),
        "qr_verifications": int(fr.verifications),
        "rollbacks": int(fr.rollbacks),
        "deep_rollbacks": int(fr.deep_rollbacks),
        "checkpoint_saves": int(fr.checkpoint_saves),
        "checkpoint_restores": int(fr.checkpoint_restores),
        "checkpoint_corruptions": int(fr.checkpoint_corruptions),
        "verify_every_final": int(fr.verify_every_final),
        "tier_tally": _tier_tally(
            list(res.recoveries) + list(fr.recoveries), res.restarts
        ),
    }


def _pack_factor(arr: np.ndarray, *, shm_factors: bool, shm_min_bytes: int) -> dict:
    """One factor's payload reference: a shared-memory handle when the
    transport is on and the factor is big enough to beat a pickle,
    inline nested lists otherwise. The segment created here is owned by
    nobody yet — the scheduler adopts it when the payload arrives, and
    the dead-pid sweep reclaims it if the worker dies in between."""
    arr = np.asarray(arr)
    if arr.dtype != np.float32:
        arr = np.asarray(arr, dtype=np.float64)
    if shm_factors and arr.nbytes >= shm_min_bytes and shm_available():
        return {"shm": SharedMatrix.create(arr).to_json()}
    return {"data": arr.tolist(), "dtype": str(arr.dtype)}


def _backend_ft_payload(spec: JobSpec, res, i: int) -> dict:
    """The ``ft_gehrd`` payload rows for item *i* of a
    :class:`~repro.batch.backend_lane.BackendStackResult`: fast-path
    items report the shared priced timeline and zero recovery traffic;
    ejected items report their scalar re-run's own accounting."""
    sr = res.scalar_results.get(i)
    payload = {
        "driver": spec.driver,
        "n": spec.order,
        "nb": spec.nb,
        "dtype": spec.lane.name,
        "backend": res.backend,
        "residual": float(res.residuals[i]),
    }
    if sr is None:
        payload.update(
            seconds_simulated=float(res.seconds),
            detections=0,
            recoveries=0,
            restarts=0,
            tau_repairs=0,
            tier_tally={},
        )
    else:
        payload.update(
            seconds_simulated=float(sr.seconds),
            detections=int(sr.detections),
            recoveries=len(sr.recoveries),
            restarts=int(sr.restarts),
            tau_repairs=int(sr.tau_repairs),
            tier_tally=_tier_tally(sr.recoveries, sr.restarts),
        )
    return payload


def _execute_backend_job(spec: JobSpec, *, workspace=None):
    """Run one gehrd/ft_gehrd job on a non-NumPy backend (B=1 stack).

    Returns ``(payload, factors_or_None)`` with exactly the payload keys
    the NumPy path produces, plus a ``"backend"`` row naming the lane
    that actually ran.
    """
    from repro.batch.backend_lane import ft_gehrd_stack, gehrd_stack

    bk_name = spec.effective_backend
    a = _build_matrix(spec, workspace)
    stack = np.asarray(a)[None, :, :]

    if spec.driver == "gehrd":
        from repro.linalg.verify import factorization_residual

        hs, qs = gehrd_stack(stack, backend=bk_name, nb=spec.nb)
        h, q = hs[0], qs[0]
        payload = {
            "driver": spec.driver,
            "n": spec.order,
            "nb": spec.nb,
            "dtype": spec.lane.name,
            "backend": bk_name,
            "residual": float(factorization_residual(np.asarray(a), q, h)),
        }
        factors = {"h": h, "q": q} if spec.return_factors else None
        return payload, factors

    # ft_gehrd (validate() admits no other driver on a backend lane)
    from repro.core import FTConfig

    cfg = FTConfig(nb=spec.nb, channels=1, audit_every=0, functional=True)
    res = ft_gehrd_stack(
        stack, cfg, backend=bk_name, injectors=[_injector(spec)]
    )
    if 0 in res.errors:
        raise res.errors[0]
    payload = _backend_ft_payload(spec, res, 0)
    factors = {"h": res.h[0], "q": res.q[0]} if spec.return_factors else None
    return payload, factors


def execute_job(
    spec: JobSpec,
    *,
    workspace=None,
    ladder=None,
    shm_factors: bool = False,
    shm_min_bytes: int = DEFAULT_MIN_BYTES,
    max_sweeps: int | None = None,
) -> dict:
    """Run the job's driver and return a JSON-safe outcome payload.

    ``workspace`` is the caller's long-lived scratch arena (one per pool
    worker / in-thread lane); ``ladder`` overrides the FT driver's
    escalation-ladder budgets — the retry policy passes a stricter one
    after an :class:`~repro.errors.EscalationExhausted` failure.
    ``max_sweeps`` similarly overrides the eigensolver drivers' Francis
    stall budget (``max_sweeps_per_eig``) — the retry policy raises it
    after a :class:`~repro.errors.ConvergenceError`.
    ``shm_factors`` lets a ``return_factors`` job ship its H/Q factors
    back as shared-memory handles instead of inline lists (pool workers
    only — an in-thread job has no process line to cross).

    Failures propagate as the driver's own exceptions; classification
    into retryable/permanent is the scheduler's job, not this one's.
    """
    _maybe_crash(spec)
    t0 = time.perf_counter()
    payload: dict = {
        "driver": spec.driver,
        "n": spec.order,
        "nb": spec.nb,
        "dtype": spec.lane.name,
    }
    factors: "dict[str, np.ndarray] | None" = None

    if spec.effective_backend != "numpy":
        payload, factors = _execute_backend_job(spec, workspace=workspace)
        if factors is not None:
            payload["factors"] = {
                name: _pack_factor(
                    arr, shm_factors=shm_factors, shm_min_bytes=shm_min_bytes
                )
                for name, arr in factors.items()
            }
        payload["elapsed_s"] = time.perf_counter() - t0
        return payload

    if spec.driver == "gehrd":
        from repro.linalg import extract_hessenberg, factorization_residual, gehrd, orghr

        a = _build_matrix(spec, workspace)
        fact = gehrd(a.copy(order="F"), nb=spec.nb)
        q = orghr(fact.a, fact.taus)
        h = extract_hessenberg(fact.a)
        payload["residual"] = float(factorization_residual(a, q, h))
        if spec.return_factors:
            factors = {"h": h, "q": q}

    elif spec.driver == "hybrid_gehrd":
        from repro.core import HybridConfig, hybrid_gehrd
        from repro.linalg import extract_hessenberg, factorization_residual, orghr

        cfg = HybridConfig(nb=spec.nb, functional=spec.functional)
        arg = _build_matrix(spec, workspace) if spec.functional else spec.order
        res = hybrid_gehrd(arg, cfg, workspace=workspace)
        payload["seconds_simulated"] = float(res.seconds)
        payload["gflops"] = float(res.gflops)
        if spec.functional:
            q = orghr(res.a, res.taus)
            h = extract_hessenberg(res.a)
            payload["residual"] = float(factorization_residual(arg, q, h))
            if spec.return_factors:
                factors = {"h": h, "q": q}

    elif spec.driver == "ft_gehrd":
        from repro.core import FTConfig, ft_gehrd
        from repro.linalg import extract_hessenberg, factorization_residual, orghr

        cfg = FTConfig(
            nb=spec.nb,
            channels=spec.channels,
            audit_every=spec.audit_every,
            functional=spec.functional,
        )
        if ladder is not None:
            cfg.ladder = ladder
        arg = _build_matrix(spec, workspace) if spec.functional else spec.order
        res = ft_gehrd(arg, cfg, injector=_injector(spec), workspace=workspace)
        payload["seconds_simulated"] = float(res.seconds)
        payload["detections"] = int(res.detections)
        payload["recoveries"] = len(res.recoveries)
        payload["restarts"] = int(res.restarts)
        payload["tau_repairs"] = int(res.tau_repairs)
        payload["tier_tally"] = _tier_tally(res.recoveries, res.restarts)
        if spec.functional:
            q = orghr(res.a, res.taus)
            h = extract_hessenberg(res.a)
            payload["residual"] = float(factorization_residual(arg, q, h))
            if spec.return_factors:
                factors = {"h": h, "q": q}

    elif spec.driver == "ft_sytrd":
        from repro.core import ft_sytrd
        from repro.core.ft_tridiag import DEFAULT_AUDIT_EVERY

        a = _build_matrix(spec, workspace)
        # the tridiagonal driver's audit is mandatory (>= 1); 0 means
        # "driver default" here, unlike the gehrd family where it's "off"
        res = ft_sytrd(
            a,
            audit_every=spec.audit_every or DEFAULT_AUDIT_EVERY,
            injector=_injector(spec),
        )
        payload["detections"] = int(res.detections)
        payload["recoveries"] = len(res.recoveries)
        payload["checks"] = int(res.checks)
        payload["tier_tally"] = _tier_tally(res.recoveries, 0)

    elif spec.driver in EIG_DRIVERS:
        from repro.core import FTConfig, ft_gehrd
        from repro.eigen import hessenberg_eigvecs
        from repro.eigen.ft_hqr import QRProtectConfig, ft_hqr
        from repro.linalg import extract_hessenberg, factorization_residual, orghr

        cfg = FTConfig(
            nb=spec.nb,
            channels=spec.channels,
            audit_every=spec.audit_every,
            functional=True,
        )
        if ladder is not None:
            cfg.ladder = ladder
        a = _build_matrix(spec, workspace)
        red_inj, qr_inj = _split_injectors(spec)
        res = ft_gehrd(a, cfg, injector=red_inj, workspace=workspace)
        h = extract_hessenberg(res.a)
        want_z = spec.driver == "ft_schur"
        qcfg = QRProtectConfig(want_z=want_z)
        if max_sweeps:
            qcfg.max_sweeps_per_eig = max_sweeps
        if ladder is not None:
            qcfg.ladder = ladder
        fr = ft_hqr(h, qcfg, injector=qr_inj, check_input=False)
        payload.update(_eig_payload(spec, res, fr))
        q = None
        if want_z or spec.eigvecs:
            q = orghr(res.a, res.taus)
        if want_z:
            qz = np.asfortranarray(q @ fr.z)
            # ‖A − (QZ) T (QZ)ᵀ‖₁ / (N ‖A‖₁): the Schur-form analogue of
            # the Table II factorization residual
            payload["schur_residual"] = float(factorization_residual(a, qz, fr.t))
            if spec.return_factors:
                factors = {"t": np.asarray(fr.t), "z": qz}
        if spec.eigvecs:
            xh = hessenberg_eigvecs(h, fr.eigvals, check_input=False)
            v = q @ xh
            av = np.asarray(a, dtype=np.float64) @ v
            lv = v * fr.eigvals[None, :]
            scale = max(float(np.max(np.abs(a))), 1.0)
            payload["eigvec_residual"] = float(np.max(np.abs(av - lv)) / scale)
            if spec.return_factors:
                factors = dict(factors or {})
                factors["v_re"] = np.ascontiguousarray(v.real)
                factors["v_im"] = np.ascontiguousarray(v.imag)

    elif spec.driver == "campaign":
        from repro.core import FTConfig
        from repro.faults import run_campaign

        a = _build_matrix(spec, workspace)
        channels = max(spec.channels, 2) if spec.adversarial else spec.channels
        res = run_campaign(
            a,
            nb=spec.nb,
            moments=spec.moments,
            seed=spec.seed,
            config=FTConfig(nb=spec.nb, channels=channels),
            adversarial=spec.adversarial,
            workers=1,  # the service already owns the process fan-out
        )
        payload["trials"] = len(res.trials)
        payload["recovery_rate"] = float(res.recovery_rate)
        payload["worst_residual"] = float(res.worst_residual)
        payload["outcomes"] = {k: int(v) for k, v in res.outcome_counts.items()}

    else:  # pragma: no cover - validate() runs first
        raise JobSpecError(f"unknown driver {spec.driver!r}")

    if factors is not None:
        payload["factors"] = {
            name: _pack_factor(arr, shm_factors=shm_factors, shm_min_bytes=shm_min_bytes)
            for name, arr in factors.items()
        }
    payload["elapsed_s"] = time.perf_counter() - t0
    return payload


# -- batched execution (the serve coalescing lane's fast path) --------------

#: Drivers the stacked engine can run (see :mod:`repro.batch`).
#: ``ft_eig`` batches its reduction front through the stacked FT engine
#: and finishes each item with a scalar protected QR — the QR stage is
#: already O(n³) scalar work, so only the reduction's Python overhead
#: needed amortizing.
BATCHABLE_DRIVERS = ("gehrd", "ft_gehrd", "ft_eig")


def batch_compatible(spec: JobSpec) -> bool:
    """Can this spec ride the batched fast path at all?

    Static surface only: functional gehrd/ft_gehrd/ft_eig without
    factors, eigenvectors, audits, chaos hooks, or shared-memory inputs.
    Fault plans *are* allowed — the batched driver ejects faulty items
    to the scalar resilience ladder (and QR-stage faults strike the
    per-item protected QR), so recovery semantics are unchanged.
    """
    return (
        spec.driver in BATCHABLE_DRIVERS
        and spec.functional
        and not spec.crash
        and not spec.return_factors
        and not spec.eigvecs
        and spec.audit_every == 0
        and not isinstance(spec.matrix, SharedMatrix)
    )


def batch_group_key(spec: JobSpec) -> tuple:
    """Jobs sharing this key may run in one stacked execution.

    The precision lane is part of the key: the stacked engine runs one
    dtype per `(B, n, n)` stack, so fp32 and fp64 jobs at identical
    shapes still bucket into separate batch lanes. So is the effective
    backend — NumPy and functional-lane results agree to rounding, not
    bytes, so jobs on different backends must never coalesce into one
    stack (or share a cache entry; see :meth:`JobSpec.content_dict`).
    """
    return (
        spec.driver,
        spec.order,
        spec.nb,
        spec.channels,
        spec.lane.name,
        spec.effective_backend,
    )


def execute_jobs_batched(specs: list[JobSpec], *, workspace=None) -> dict:
    """Run a group of batch-compatible jobs through the stacked engine.

    All *specs* must share one :func:`batch_group_key`. Returns::

        {"outcomes": [...], "ejections": int, "batch_size": int}

    where each outcome is ``{"ok": True, "payload": dict}`` — a payload
    with exactly the keys :func:`execute_job` would produce for that
    spec (byte-identical numerics; only the wall-clock ``elapsed_s``,
    reported as the batch wall divided by the batch size, differs) — or
    ``{"ok": False, "error": BaseException}`` for an item whose scalar
    re-run failed. Item failures never poison siblings; a *batch-level*
    failure (bad group, engine bug) raises instead, and the caller
    re-routes the whole group to the scalar path.
    """
    if not specs:
        return {"outcomes": [], "ejections": 0, "batch_size": 0}
    bad = [s for s in specs if not batch_compatible(s)]
    keys = {batch_group_key(s) for s in specs}
    if bad or len(keys) != 1:
        raise JobSpecError(
            f"incompatible batch group: {len(bad)} unbatchable specs, "
            f"{len(keys)} distinct group keys"
        )
    driver, n, nb, channels, _lane, backend_name = keys.pop()

    from repro.batch import as_item_f_stack, ft_gehrd_batched, gehrd_batched
    from repro.batch.qform import (
        extract_hessenberg_batched,
        factorization_residuals_batched,
        orghr_batched,
    )

    t0 = time.perf_counter()
    mats = [_build_matrix(spec, workspace) for spec in specs]

    if backend_name != "numpy":
        return _execute_jobs_backend_stack(
            specs, mats, driver=driver, backend_name=backend_name, nb=nb, t0=t0
        )

    stack = as_item_f_stack(mats)  # the drivers copy; this stays pristine
    outcomes: list[dict] = []
    ejections = 0

    def _residuals(idx: list[int], packed: list, taus: list) -> np.ndarray:
        """Batched Q formation + Table II residuals for items *idx*."""
        a_pack = as_item_f_stack(packed)
        t_stack = np.stack(taus)
        qs = orghr_batched(a_pack, t_stack)
        hs = extract_hessenberg_batched(a_pack)
        return factorization_residuals_batched(stack[idx], qs, hs)

    if driver == "ft_eig":
        from repro.core import FTConfig
        from repro.eigen.ft_hqr import QRProtectConfig, ft_hqr
        from repro.linalg import extract_hessenberg

        cfg = FTConfig(nb=nb, channels=channels, audit_every=0, functional=True)
        split = [_split_injectors(spec) for spec in specs]
        br = ft_gehrd_batched(
            stack, cfg, injectors=[s[0] for s in split], workspace=workspace
        )
        ejections = len(br.ejected)
        for i, spec in enumerate(specs):
            if i in br.errors:
                outcomes.append({"ok": False, "error": br.errors[i]})
                continue
            res = br.results[i]
            try:
                fr = ft_hqr(
                    extract_hessenberg(res.a),
                    QRProtectConfig(want_z=False),
                    injector=split[i][1],
                    check_input=False,
                )
            except BaseException as exc:  # noqa: BLE001 - item retry isolation
                outcomes.append({"ok": False, "error": exc})
                continue
            outcomes.append({"ok": True, "payload": _eig_payload(spec, res, fr)})

    elif driver == "gehrd":
        facts = gehrd_batched(stack, nb=nb, workspace=workspace)
        residuals = _residuals(
            list(range(len(specs))),
            [f.a for f in facts],
            [f.taus for f in facts],
        )
        for spec, r in zip(specs, residuals):
            payload = {
                "driver": spec.driver,
                "n": n,
                "nb": nb,
                "dtype": spec.lane.name,
                "residual": float(r),
            }
            outcomes.append({"ok": True, "payload": payload})
    else:
        from repro.core import FTConfig

        cfg = FTConfig(nb=nb, channels=channels, audit_every=0, functional=True)
        injectors = [_injector(spec) for spec in specs]
        br = ft_gehrd_batched(stack, cfg, injectors=injectors, workspace=workspace)
        ejections = len(br.ejected)
        ok_idx = [i for i in range(len(specs)) if i not in br.errors]
        residuals = dict(
            zip(
                ok_idx,
                _residuals(
                    ok_idx,
                    [br.results[i].a for i in ok_idx],
                    [br.results[i].taus for i in ok_idx],
                ),
            )
        ) if ok_idx else {}
        for i, spec in enumerate(specs):
            if i in br.errors:
                outcomes.append({"ok": False, "error": br.errors[i]})
                continue
            res = br.results[i]
            payload = {
                "driver": spec.driver,
                "n": n,
                "nb": nb,
                "dtype": spec.lane.name,
                "seconds_simulated": float(res.seconds),
                "detections": int(res.detections),
                "recoveries": len(res.recoveries),
                "restarts": int(res.restarts),
                "tau_repairs": int(res.tau_repairs),
                "tier_tally": _tier_tally(res.recoveries, res.restarts),
                "residual": float(residuals[i]),
            }
            outcomes.append({"ok": True, "payload": payload})

    per_item = (time.perf_counter() - t0) / len(specs)
    for oc in outcomes:
        if oc["ok"]:
            oc["payload"]["elapsed_s"] = per_item
    return {"outcomes": outcomes, "ejections": ejections, "batch_size": len(specs)}


def _execute_jobs_backend_stack(
    specs: list[JobSpec],
    mats: list[np.ndarray],
    *,
    driver: str,
    backend_name: str,
    nb: int,
    t0: float,
) -> dict:
    """The backend twin of the NumPy branch of :func:`execute_jobs_batched`:
    one whole-stack functional run over the coalesced ``(B, n, n)`` stack,
    same outcome/ejection bookkeeping."""
    from repro.batch.backend_lane import ft_gehrd_stack, gehrd_stack

    stack = np.stack([np.ascontiguousarray(m) for m in mats])
    outcomes: list[dict] = []
    ejections = 0

    if driver == "gehrd":
        from repro.linalg.verify import factorization_residual

        hs, qs = gehrd_stack(stack, backend=backend_name, nb=nb)
        for i, spec in enumerate(specs):
            outcomes.append(
                {
                    "ok": True,
                    "payload": {
                        "driver": spec.driver,
                        "n": spec.order,
                        "nb": nb,
                        "dtype": spec.lane.name,
                        "backend": backend_name,
                        "residual": float(
                            factorization_residual(stack[i], qs[i], hs[i])
                        ),
                    },
                }
            )
    else:  # ft_gehrd (batch_group_key admits no other backend driver)
        from repro.core import FTConfig

        cfg = FTConfig(nb=nb, channels=1, audit_every=0, functional=True)
        res = ft_gehrd_stack(
            stack,
            cfg,
            backend=backend_name,
            injectors=[_injector(spec) for spec in specs],
        )
        ejections = len(res.ejected)
        for i, spec in enumerate(specs):
            if i in res.errors:
                outcomes.append({"ok": False, "error": res.errors[i]})
            else:
                outcomes.append(
                    {"ok": True, "payload": _backend_ft_payload(spec, res, i)}
                )

    per_item = (time.perf_counter() - t0) / len(specs)
    for oc in outcomes:
        if oc["ok"]:
            oc["payload"]["elapsed_s"] = per_item
    return {"outcomes": outcomes, "ejections": ejections, "batch_size": len(specs)}


# -- pool-worker entry points (top-level, so they pickle) -------------------


def pool_worker_init() -> None:
    """Prime a pool worker: import the hot modules and create the
    per-process scratch arena once, off the first job's latency."""
    import repro.core  # noqa: F401  (driver import cost paid here)
    from repro.perf.workspace import process_workspace

    process_workspace()


def execute_job_pooled(
    spec: JobSpec,
    ladder=None,
    shm_factors: bool = False,
    shm_min_bytes: int = DEFAULT_MIN_BYTES,
    max_sweeps: int | None = None,
) -> dict:
    """Worker-side wrapper binding the per-process Workspace arena."""
    from repro.perf.workspace import process_workspace

    return execute_job(
        spec,
        workspace=process_workspace(),
        ladder=ladder,
        shm_factors=shm_factors,
        shm_min_bytes=shm_min_bytes,
        max_sweeps=max_sweeps,
    )
