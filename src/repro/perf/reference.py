"""Frozen pre-pooling kernels — the golden reference.

These are verbatim copies of the panel factorization and the
checksum-extended updates as they stood before the workspace-pooled
rewrite. They allocate fresh temporaries on every call (``np.tril``
copies, ``np.vstack``, un-``out=``'d GEMMs) — exactly the behaviour the
throughput layer removes — and therefore serve two purposes:

* the equivalence oracle for ``tests/test_kernel_golden.py`` (the pooled
  kernels must agree to roundoff on every path, including k>1 weighted
  channels), and
* the "before" side of ``benchmarks/bench_to_json.py``.

Do not modify these when optimizing the live kernels; that would defeat
the comparison.
"""

from __future__ import annotations

import numpy as np

from repro.abft.encoding import EncodedMatrix
from repro.errors import ShapeError
from repro.linalg import flops as F
from repro.linalg.flops import FlopCounter
from repro.linalg.householder import larfg
from repro.linalg.lahr2 import PanelFactors


def lahr2_reference(
    a: np.ndarray,
    p: int,
    ib: int,
    n: int,
    *,
    counter: FlopCounter | None = None,
    category: str = "panel",
) -> PanelFactors:
    """The pre-pooling DLAHR2 (see :func:`repro.linalg.lahr2.lahr2`)."""
    if not (0 <= p and p + ib < n <= min(a.shape)):
        raise ShapeError(f"invalid panel: p={p}, ib={ib}, n={n}, A shape {a.shape}")
    if ib < 1:
        raise ShapeError(f"panel width must be >= 1, got {ib}")

    taus = np.zeros(ib)
    t = np.zeros((ib, ib), order="F")
    y = np.zeros((n, ib), order="F")
    ei = 0.0

    for j in range(ib):
        c = p + j
        if j > 0:
            vrow = a[p + j, p : p + j]
            a[p + 1 : n, c] -= y[p + 1 : n, :j] @ vrow
            if counter is not None:
                counter.add(category, F.gemv_flops(n - p - 1, j))

            v1 = a[p + 1 : p + j + 1, p : p + j]
            v2 = a[p + j + 1 : n, p : p + j]
            b1 = a[p + 1 : p + j + 1, c]
            b2 = a[p + j + 1 : n, c]
            w = np.tril(v1, -1).T @ b1 + b1.copy()
            w += v2.T @ b2
            w = t[:j, :j].T @ w
            b2 -= v2 @ w
            b1 -= np.tril(v1, -1) @ w + w
            if counter is not None:
                counter.add(
                    category,
                    2 * F.trmv_flops(j) + 2 * F.gemv_flops(n - p - j - 1, j) + F.trmv_flops(j),
                )
            a[p + j, p + j - 1] = ei

        pivot_row = p + j + 1
        refl = larfg(a[pivot_row, c], a[pivot_row + 1 : n, c], counter=counter, category=category)
        ei = refl.beta
        a[pivot_row, c] = 1.0

        vj = a[pivot_row:n, c]

        y[p + 1 : n, j] = a[p + 1 : n, pivot_row : n] @ vj
        if j > 0:
            tcol = a[pivot_row:n, p : p + j].T @ vj
            y[p + 1 : n, j] -= y[p + 1 : n, :j] @ tcol
            t[:j, j] = t[:j, :j] @ (-refl.tau * tcol)
        y[p + 1 : n, j] *= refl.tau
        t[j, j] = refl.tau
        taus[j] = refl.tau
        if counter is not None:
            counter.add(
                category,
                F.gemv_flops(n - p - 1, n - pivot_row)
                + (F.gemv_flops(n - pivot_row, j) + F.gemv_flops(n - p - 1, j) + F.trmv_flops(j) if j > 0 else 0)
                + F.scal_flops(n - p - 1),
            )

    a[p + ib, p + ib - 1] = ei

    v = np.zeros((n - p - 1, ib), order="F")
    for j in range(ib):
        v[j:, j] = a[p + 1 + j : n, p + j]
        v[j, j] = 1.0

    k = p + 1
    if k > 0:
        y_top = a[0:k, p + 1 : p + 1 + ib].copy()
        v1 = v[:ib, :]
        y_top = y_top @ np.tril(v1)
        if n > p + 1 + ib:
            y_top += a[0:k, p + 1 + ib : n] @ v[ib:, :]
        y_top = y_top @ np.triu(t)
        y[0:k, :] = y_top
        if counter is not None:
            counter.add(
                category,
                F.trmm_flops(k, ib, False)
                + F.gemm_flops(k, ib, max(0, n - p - 1 - ib))
                + F.trmm_flops(k, ib, False),
            )

    return PanelFactors(p=p, ib=ib, v=v, t=t, y=y, taus=taus, ei=float(ei))


def _check_blocks(em: EncodedMatrix, pf: PanelFactors, vce: np.ndarray, ychk) -> None:
    if vce.shape != (em.k, pf.ib):
        raise ShapeError(f"Vce block must be ({em.k}, {pf.ib}), got {vce.shape}")
    if ychk is not None and ychk.shape != (em.k, pf.ib):
        raise ShapeError(f"Ychk block must be ({em.k}, {pf.ib}), got {ychk.shape}")


def right_update_encoded_reference(
    em: EncodedMatrix,
    pf: PanelFactors,
    vce: np.ndarray,
    ychk: np.ndarray,
    *,
    counter: FlopCounter | None = None,
) -> None:
    """The pre-pooling checksum-extended right update."""
    n, p, ib, k = em.n, pf.p, pf.ib, em.k
    _check_blocks(em, pf, vce, ychk)
    v2ce = np.vstack([pf.v[ib - 1 :, :], vce])
    em.ext[0:n, p + ib : n + k] -= pf.y[0:n, :] @ v2ce.T
    if counter is not None:
        counter.add("right_update", F.gemm_flops(n, n - p - ib, ib))
        counter.add("abft_maintain", k * F.gemv_flops(n, ib))
    if ib > 1:
        v1 = np.tril(pf.v[: ib - 1, : ib - 1])
        em.ext[0 : p + 1, p + 1 : p + ib] -= pf.y[0 : p + 1, : ib - 1] @ v1.T
        if counter is not None:
            counter.add("right_update", F.trmm_flops(p + 1, ib - 1, False))
    em.ext[n:, p + ib : n] -= ychk @ pf.v[ib - 1 : n - p - 1, :].T
    if counter is not None:
        counter.add("abft_maintain", k * F.gemv_flops(n - p - ib, ib))


def left_update_encoded_reference(
    em: EncodedMatrix,
    pf: PanelFactors,
    vce: np.ndarray,
    *,
    counter: FlopCounter | None = None,
) -> None:
    """The pre-pooling checksum-extended left update."""
    n, p, ib, k = em.n, pf.p, pf.ib, em.k
    _check_blocks(em, pf, vce, None)
    cols = slice(p + ib, n + k)
    c_data = em.ext[p + 1 : n, cols]
    w = pf.t.T @ (pf.v.T @ c_data)
    c_data -= pf.v @ w
    em.ext[n:, p + ib : n] -= vce @ w[:, : n - p - ib]
    if counter is not None:
        m = n - p - 1
        ncols = n + k - (p + ib)
        counter.add(
            "left_update",
            F.gemm_flops(ib, ncols, m) + F.trmm_flops(ib, ncols, True) + F.gemm_flops(m, ncols, ib),
        )
        counter.add("abft_maintain", k * F.gemv_flops(ncols, ib))


def reverse_left_update_encoded_reference(
    em: EncodedMatrix,
    pf: PanelFactors,
    vce: np.ndarray,
    *,
    counter: FlopCounter | None = None,
) -> None:
    """The pre-pooling reverse left update."""
    n, p, ib, k = em.n, pf.p, pf.ib, em.k
    cols = slice(p + ib, n + k)
    c_data = em.ext[p + 1 : n, cols]
    w_rev = pf.t @ (pf.v.T @ c_data)
    c_data -= pf.v @ w_rev
    w_fwd = pf.t.T @ (pf.v.T @ c_data)
    em.ext[n:, p + ib : n] += vce @ w_fwd[:, : n - p - ib]
    if counter is not None:
        m = n - p - 1
        ncols = n + k - (p + ib)
        counter.add("abft_recover", 2 * F.gemm_flops(ib, ncols, m) + F.gemm_flops(m, ncols, ib))


def reverse_right_update_encoded_reference(
    em: EncodedMatrix,
    pf: PanelFactors,
    vce: np.ndarray,
    ychk: np.ndarray,
    *,
    counter: FlopCounter | None = None,
) -> None:
    """The pre-pooling reverse right update."""
    n, p, ib, k = em.n, pf.p, pf.ib, em.k
    v2ce = np.vstack([pf.v[ib - 1 :, :], vce])
    em.ext[0:n, p + ib : n + k] += pf.y[0:n, :] @ v2ce.T
    if ib > 1:
        v1 = np.tril(pf.v[: ib - 1, : ib - 1])
        em.ext[0 : p + 1, p + 1 : p + ib] += pf.y[0 : p + 1, : ib - 1] @ v1.T
    em.ext[n:, p + ib : n] += ychk @ pf.v[ib - 1 : n - p - 1, :].T
    if counter is not None:
        counter.add("abft_recover", F.gemm_flops(n, n - p - ib + k, ib))
