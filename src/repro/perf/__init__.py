"""Throughput layer: workspace pooling for the functional hot path.

The paper's thesis is that ABFT protection costs almost nothing on top of
the blocked reduction — which only holds if the kernels themselves waste
nothing. This package supplies the engineering discipline FT-GEMM-style
implementations use on real hardware, transplanted to the NumPy layer:

* :class:`~repro.perf.workspace.Workspace` — a per-driver scratch arena
  that pre-sizes and reuses the V/Y/T/checksum buffers across iterations,
  so no per-iteration allocation survives in the O(n²)-per-iteration path;
* :mod:`~repro.perf.reference` — the frozen pre-pooling kernels, kept as
  the golden reference for equivalence tests and before/after benchmarks.
"""

from repro.perf.workspace import DGEMM, Workspace, gemm_inplace, process_workspace

__all__ = ["Workspace", "DGEMM", "gemm_inplace", "process_workspace"]
