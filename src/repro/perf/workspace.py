"""A per-driver scratch arena for the factorization hot path.

Every functional driver iteration used to allocate its temporaries fresh:
``np.zeros`` for V/T/Y in ``lahr2``, an ``np.vstack`` plus an implicit
GEMM product array in each encoded update, and the subtraction pass that
follows. At N=512 that is several MB of allocation and an extra full
memory sweep per iteration — pure overhead against the paper's claim that
ABFT maintenance is nearly free.

:class:`Workspace` replaces all of that with named, grown-once buffers.
Buffers are handed out as exact-shape views of flat pools, so a request
for an ``(m, k)`` Fortran block is genuinely F-contiguous — which is what
lets the checksum kernels run LAPACK-style in-place GEMMs
(``C ← βC + αAB`` via :data:`DGEMM`) directly on the checksum-extended
storage instead of materializing the product and subtracting it.

A workspace is private to one driver invocation (it is not thread-safe,
and the V/Y/T buffers of iteration *i* are only valid until iteration
*i+1* overwrites them — exactly the lifetime the paper's reverse
computation premise already assumes).
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised indirectly everywhere scipy exists
    from scipy.linalg.blas import dgemm as DGEMM
    from scipy.linalg.blas import sgemm as SGEMM
except ImportError:  # pragma: no cover - scipy is a hard dependency, but
    DGEMM = None  # the kernels degrade gracefully to the NumPy path
    SGEMM = None


class Workspace:
    """Named scratch buffers, allocated once and reused across iterations.

    ``buf(name, shape)`` returns a view of a flat pool reshaped to
    exactly *shape* — contiguous in the requested order, grown (never
    shrunk) on demand. Contents persist between calls only while the
    requested shape stays the same; callers that need a zeroed buffer pass
    ``zero=True``. Pools are float64 by default; other lane dtypes get
    their own pools keyed ``"<name>@<dtype>"`` so a mixed-precision worker
    never reinterprets bytes across lanes.
    """

    def __init__(self, backend=None) -> None:
        """*backend* (a :mod:`repro.backend` adapter) scopes the arena.

        ``None`` / the NumPy backend is the historical host arena. An
        in-place accelerator backend (CuPy) gets its own pools allocated
        through the adapter — keyed per backend name, so one worker
        serving mixed-backend jobs never hands device memory to a host
        kernel or vice versa. Functional backends (JAX) cannot pool at
        all (immutable arrays have no reusable buffer); :meth:`buf`
        returns fresh arrays for them and the arena stays empty.
        """
        self._pools: dict[str, np.ndarray] = {}
        self._backend = None
        if backend is not None and getattr(backend, "name", "numpy") != "numpy":
            self._backend = backend

    @property
    def backend_name(self) -> str:
        """Which backend's memory this arena pools."""
        return self._backend.name if self._backend is not None else "numpy"

    def buf(
        self,
        name: str,
        shape: tuple[int, ...],
        *,
        order: str = "F",
        zero: bool = False,
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """An exact-shape view of the named pool at *dtype*."""
        dt = np.dtype(dtype)
        bk = self._backend
        if bk is not None and not bk.inplace_updates:
            # functional backend: nothing to pool, hand out fresh arrays
            return bk.zeros(shape, dtype=dt, order=order)
        key = name if dt == np.float64 else f"{name}@{dt.name}"
        if bk is not None:
            key = f"{key}#{bk.name}"
        size = 1
        for dim in shape:
            size *= int(dim)
        pool = self._pools.get(key)
        if pool is None or pool.size < size:
            if bk is not None:
                pool = bk.empty((max(size, 1),), dtype=dt, order="C")
            else:
                pool = np.empty(max(size, 1), dtype=dt)
            self._pools[key] = pool
        view = pool[:size].reshape(shape, order=order)
        if zero:
            view[...] = 0.0
        return view

    def vec(
        self,
        name: str,
        n: int,
        *,
        zero: bool = False,
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """A 1-D scratch vector of length *n*."""
        return self.buf(name, (int(n),), zero=zero, dtype=dtype)

    def matrix_like(self, name: str, src: np.ndarray, *, order: str = "F") -> np.ndarray:
        """A named pooled buffer holding a writable copy of *src*.

        The zero-allocation landing pad for matrices arriving through
        the shared-memory data plane: a worker's read-only attached view
        is copied into a grown-once arena buffer instead of a fresh
        ``ndarray`` per job, so a warm worker's steady state allocates
        nothing even for drivers that mutate their input.
        """
        out = self.buf(name, tuple(src.shape), order=order, dtype=src.dtype)
        out[...] = src
        return out

    def presize(
        self,
        n: int,
        nb: int,
        k: int = 0,
        *,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        """Pre-allocate the panel-sized buffers for an (n, nb, k) run so
        the steady state performs no allocation at all."""
        rows = n + k
        self.buf("lahr2.v_full", (rows, nb), dtype=dtype)
        self.buf("lahr2.y", (n, nb), dtype=dtype)
        self.buf("lahr2.t", (nb, nb), dtype=dtype)
        self.buf("lahr2.taus", (nb,), dtype=dtype)
        self.vec("lahr2.g", n, dtype=dtype)
        self.buf("lahr2.wjs", (nb, 2), dtype=dtype)
        self.buf("lahr2.ytop", (n, nb), dtype=dtype)
        self.buf("lahr2.ytop2", (n, nb), dtype=dtype)
        self.buf("upd.yce", (rows, nb), dtype=dtype)
        self.buf("upd.v2ce", (rows, nb), dtype=dtype)
        self.buf("upd.w1", (nb, rows), dtype=dtype)
        self.buf("upd.w1c", (nb, rows), order="C", dtype=dtype)
        self.buf("upd.w2", (nb, rows), dtype=dtype)
        self.buf("upd.w2c", (nb, rows), order="C", dtype=dtype)
        # wrow is only used by the reverse (recovery) kernels now — the
        # forward left update carries the checksum rows inside its fused
        # apply GEMM — but recovery must stay allocation-free too.
        self.buf("upd.wrow", (max(k, 1), n), dtype=dtype)
        self.buf("upd.panel_top", (n, nb), dtype=dtype)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(pool.nbytes for pool in self._pools.values())

    @property
    def buffers(self) -> int:
        """Number of named pools currently allocated."""
        return len(self._pools)

    def clear(self) -> None:
        """Release every pool (the arena itself stays usable)."""
        self._pools.clear()


# One arena per *process and backend*, for workers that run many driver
# invocations back to back (the serve scheduler's pool workers and
# in-thread lanes). A single driver invocation still owns its arena
# exclusively — the serving layer guarantees one job at a time per
# worker, which is the same lifetime contract as the per-invocation
# arenas above. Backends are keyed by name so a mixed-backend worker
# never crosses host and device pools.
_PROCESS_WS: dict[str, Workspace] = {}


def process_workspace(backend=None) -> Workspace:
    """The per-process shared arena for *backend* (created on first use).

    Buffer pools grow to the largest job the worker has seen and are
    then reused allocation-free by every smaller job — the serving-layer
    analogue of ``presize``. Call :meth:`Workspace.clear` to release the
    memory between batches. ``backend=None`` is the historical host
    (NumPy) arena.
    """
    name = getattr(backend, "name", "numpy") if backend is not None else "numpy"
    ws = _PROCESS_WS.get(name)
    if ws is None:
        ws = Workspace(backend)
        _PROCESS_WS[name] = ws
    return ws


def gemm_inplace(
    alpha: float,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    *,
    trans_a: bool = False,
    trans_b: bool = False,
    beta: float = 1.0,
) -> None:
    """``C ← beta·C + alpha·op(A) op(B)`` strictly in place.

    Requires *c* F-contiguous (full-column slices of the Fortran-ordered
    extended storage qualify); raises if the BLAS wrapper would have had
    to copy, because a silent copy would discard the update. The BLAS
    routine follows ``c.dtype`` — DGEMM for float64 operands, SGEMM for
    the float32 lane.
    """
    gemm = SGEMM if c.dtype == np.float32 else DGEMM
    if gemm is None:  # pragma: no cover - scipy missing
        prod = (a.T if trans_a else a) @ (b.T if trans_b else b)
        if beta == 0.0:
            c[...] = alpha * prod
        else:
            if beta != 1.0:
                c *= beta
            c += alpha * prod
        return
    out = gemm(
        alpha, a, b, beta=beta, c=c, trans_a=trans_a, trans_b=trans_b, overwrite_c=1
    )
    if out is not c and not np.shares_memory(out, c):
        raise ValueError(
            "gemm_inplace: output buffer is not BLAS-compatible "
            f"(shape {c.shape}, f_contiguous={c.flags.f_contiguous})"
        )
