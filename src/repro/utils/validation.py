"""Argument validation helpers used across the kernel layer.

The linear-algebra kernels in :mod:`repro.linalg` operate *in place* on
Fortran-ordered ``float64`` arrays — the layout the paper's algorithms
assume (LAPACK column-major storage). These helpers centralize the checks
so individual kernels stay readable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ShapeError` with *message* unless *condition* holds."""
    if not condition:
        raise ShapeError(message)


def as_fortran(a: np.ndarray) -> np.ndarray:
    """Return *a* as a Fortran-ordered float64 array, copying only if needed.

    A one-dimensional array is returned as float64 without layout changes
    (layout is meaningless for vectors).
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim <= 1:
        return a
    return np.asfortranarray(a)


def check_matrix(a: np.ndarray, name: str = "A", *, writeable: bool = False) -> None:
    """Validate that *a* is a 2-D float64 Fortran-ordered matrix.

    Parameters
    ----------
    a:
        Candidate array.
    name:
        Name used in error messages.
    writeable:
        When true additionally require that the array is writeable (kernels
        that update in place need this).
    """
    if not isinstance(a, np.ndarray):
        raise ShapeError(f"{name} must be a numpy array, got {type(a).__name__}")
    require(a.ndim == 2, f"{name} must be 2-D, got ndim={a.ndim}")
    require(a.dtype == np.float64, f"{name} must be float64, got {a.dtype}")
    require(
        a.flags.f_contiguous or a.flags.c_contiguous or _strided_ok(a),
        f"{name} must be contiguous or a simple strided view",
    )
    if writeable:
        require(a.flags.writeable, f"{name} must be writeable")


def _strided_ok(a: np.ndarray) -> bool:
    """Views produced by basic slicing of Fortran arrays are acceptable."""
    return all(s % a.itemsize == 0 for s in a.strides)


def check_square(a: np.ndarray, name: str = "A") -> int:
    """Validate that *a* is a square 2-D float64 matrix; return its order."""
    check_matrix(a, name)
    require(a.shape[0] == a.shape[1], f"{name} must be square, got shape {a.shape}")
    return a.shape[0]
