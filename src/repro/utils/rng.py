"""Deterministic test-matrix generation.

Every experiment in the reproduction is seeded, so results are repeatable
run to run. The generators return Fortran-ordered ``float64`` arrays (the
layout the kernel layer expects).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import ShapeError
from repro.utils.precision import lane_dtype


class MatrixKind(enum.Enum):
    """Families of test matrices used by the experiments.

    UNIFORM
        i.i.d. entries uniform on [-1, 1): the paper's implicit workload
        (random dense matrices fed to DGEHRD).
    GAUSSIAN
        i.i.d. standard normal entries.
    SYMMETRIC
        Symmetrized Gaussian — real spectrum, exercises the eigen pipeline.
    WELL_CONDITIONED
        ``Q diag(1..2) Qᵀ``-style SPD-ish matrix with condition number ~2.
    GRADED
        Entries scaled by ``10**(-|i-j|/8)`` — exercises threshold policy
        with widely varying magnitudes.
    HESSENBERG
        Already upper Hessenberg (reduction should be near-identity work).
    """

    UNIFORM = "uniform"
    GAUSSIAN = "gaussian"
    SYMMETRIC = "symmetric"
    WELL_CONDITIONED = "well_conditioned"
    GRADED = "graded"
    HESSENBERG = "hessenberg"


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass one through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_matrix(
    n: int,
    kind: MatrixKind | str = MatrixKind.UNIFORM,
    *,
    seed: int | np.random.Generator | None = 0,
    dtype: np.dtype | type | str = np.float64,
) -> np.ndarray:
    """Generate an ``n x n`` Fortran-ordered test matrix.

    Parameters
    ----------
    n:
        Matrix order (must be positive).
    kind:
        Matrix family; see :class:`MatrixKind`.
    seed:
        Integer seed or an existing generator.
    dtype:
        Lane dtype of the returned array. Recipes always draw in float64
        and cast at the end, so the float32 matrix for ``(kind, n, seed)``
        is exactly the rounded float64 one — cross-lane comparisons see
        the same mathematical matrix.
    """
    if n <= 0:
        raise ShapeError(f"matrix order must be positive, got {n}")
    kind = MatrixKind(kind)
    rng = make_rng(seed)

    if kind is MatrixKind.UNIFORM:
        a = rng.uniform(-1.0, 1.0, size=(n, n))
    elif kind is MatrixKind.GAUSSIAN:
        a = rng.standard_normal((n, n))
    elif kind is MatrixKind.SYMMETRIC:
        g = rng.standard_normal((n, n))
        a = 0.5 * (g + g.T)
    elif kind is MatrixKind.WELL_CONDITIONED:
        g = rng.standard_normal((n, n))
        q, _ = np.linalg.qr(g)
        d = np.linspace(1.0, 2.0, n)
        a = (q * d) @ q.T
    elif kind is MatrixKind.GRADED:
        g = rng.uniform(-1.0, 1.0, size=(n, n))
        i = np.arange(n)
        scale = 10.0 ** (-np.abs(i[:, None] - i[None, :]) / 8.0)
        a = g * scale
    elif kind is MatrixKind.HESSENBERG:
        a = np.triu(rng.uniform(-1.0, 1.0, size=(n, n)), k=-1)
    else:  # pragma: no cover - exhaustive enum
        raise ShapeError(f"unknown matrix kind {kind!r}")

    return np.asfortranarray(a, dtype=lane_dtype(dtype))
