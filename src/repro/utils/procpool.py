"""Crash-tolerant process-pool lifecycle, shared by the campaign
executor and the serving layer.

A ``ProcessPoolExecutor`` that loses a worker (segfault, OOM kill,
``os._exit``) marks itself broken forever: every outstanding and future
submission raises :class:`~concurrent.futures.BrokenExecutor`.  Both the
fault-campaign executor (:mod:`repro.faults.executor`) and the batch
service scheduler (:mod:`repro.serve.scheduler`) need the same
response — throw the broken pool away, build an identical one, and keep
serving — so the lifecycle lives here once.

:class:`ResilientProcessPool` owns the executor-factory parameters
(worker count, initializer, initargs), creates the pool lazily on first
``submit``, and exposes ``rebuild()`` as the one-line recovery step.
What to *do* about the work that was in flight when the pool broke is
policy, not lifecycle, and stays with the caller (the campaign retries
the lost chunk once; the scheduler re-queues the job through its retry
policy).

The pool can also own a shared-memory
:class:`~repro.utils.shm.SegmentRegistry` — the zero-copy data plane's
segment ledger. Tying it to the pool puts segment hygiene on the same
lifecycle as the processes that map the segments: ``rebuild()`` sweeps
dead-worker orphans (a crashed worker's undelivered result segments),
``shutdown()`` unlinks everything the owner still holds.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.utils.shm import SegmentRegistry


def _warm_noop() -> None:
    """Picklable no-op: the fallback worker-spawn barrier in ``warm``."""


class ResilientProcessPool:
    """A rebuildable :class:`ProcessPoolExecutor` wrapper.

    The pool is created lazily (so constructing the wrapper is free) and
    recreated from the same factory parameters by :meth:`rebuild`.
    ``rebuilds`` counts how many times the pool had to be replaced —
    surfaced in campaign results and service stats as a health signal.
    """

    def __init__(
        self,
        max_workers: int,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        registry: "SegmentRegistry | None" = None,
    ) -> None:
        self.max_workers = max(1, int(max_workers))
        self._initializer = initializer
        self._initargs = initargs
        self.registry = registry
        self._pool: ProcessPoolExecutor | None = None
        self._generation = 0
        self.rebuilds = 0

    # -- lifecycle ----------------------------------------------------------

    @property
    def pool(self) -> ProcessPoolExecutor:
        """The live executor, created on first use."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._pool

    def warm(self) -> None:
        """Fork every worker process now, while the caller knows the
        process is quiet.

        ``ProcessPoolExecutor`` forks workers lazily on first submit.
        Under a threaded caller (the serve scheduler's batch lane runs
        jobs on executor threads) that first fork can happen while
        another thread holds a lock — the child inherits the locked
        mutex and wedges forever. Forcing all forks at a known-quiet
        moment (service startup, right after a rebuild) closes the race.
        """
        pool = self.pool
        try:
            # under fork this launches every worker process up front, and
            # in all cases it starts the manager thread that shutdown()
            # needs to signal the workers to exit (spawning processes
            # without it leaves them blocked on the call queue forever)
            with pool._shutdown_lock:
                pool._start_executor_manager_thread()
        except AttributeError:  # executor internals moved: best effort
            for fut in [pool.submit(_warm_noop) for _ in range(self.max_workers)]:
                fut.result()

    @property
    def generation(self) -> int:
        """Monotonic pool-instance id; bumped by every :meth:`rebuild`.

        Capture it before ``submit`` and pass it back to ``rebuild`` so
        two callers observing failures from the *same* dead pool don't
        rebuild twice — the second teardown would sweep away the fresh
        pool the first caller's retry already resubmitted into.
        """
        return self._generation

    def rebuild(self, generation: int | None = None) -> None:
        """Discard the (presumed broken) pool; the next submit gets a
        fresh one with fresh worker processes.

        With ``generation`` given, the rebuild is a no-op unless that
        pool instance is still the live one (stale-failure dedup).
        """
        if generation is not None and generation != self._generation:
            return
        if self._pool is not None:
            # wait=False: broken pools cannot be joined; cancel_futures
            # drops anything still queued inside the dead executor
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._generation += 1
            self.rebuilds += 1
            if self.registry is not None:
                # dead workers may have created result segments whose
                # handles never arrived; their pids are gone, so the
                # sweep can tell those orphans from everything live
                self.registry.sweep()

    def shutdown(self, *, wait: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None
        if self.registry is not None:
            self.registry.unlink_all()
            self.registry.sweep()

    # -- submission ---------------------------------------------------------

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        return self.pool.submit(fn, *args, **kwargs)

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "ResilientProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
