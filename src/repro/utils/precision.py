"""Precision lanes: the dtypes the kernel core runs in.

The driver stack is dtype-generic over two IEEE lanes — ``float64`` (the
paper's precision, byte-frozen by the golden tests) and ``float32`` (the
bandwidth lane: half the memory traffic, half the shm data-plane bytes).
Everything dtype-specific funnels through here so kernels never hard-code
an eps or an itemsize.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "LANE_DTYPES",
    "lane_dtype",
    "lane_eps",
    "lane_scale",
    "as_lane_matrix",
]

#: The dtypes the kernel core supports, keyed by canonical name.
LANE_DTYPES: dict[str, np.dtype] = {
    "float64": np.dtype(np.float64),
    "float32": np.dtype(np.float32),
}


def lane_dtype(dtype: object = np.float64) -> np.dtype:
    """Canonicalize *dtype* to a supported lane dtype.

    Accepts anything ``np.dtype`` does (``"float32"``, ``np.float64``, an
    existing dtype, ``None`` → float64) and rejects everything that is not
    one of the two lanes — the kernels' rounding analysis and the ABFT
    thresholds are only calibrated for real IEEE single/double.
    """
    if dtype is None:
        return LANE_DTYPES["float64"]
    dt = np.dtype(dtype)
    if dt.name not in LANE_DTYPES:
        raise ShapeError(
            f"unsupported lane dtype {dt.name!r}; expected one of "
            f"{sorted(LANE_DTYPES)}"
        )
    return dt


def lane_eps(dtype: object = np.float64) -> float:
    """Machine epsilon of the lane *dtype* (2^-52 or 2^-23)."""
    return float(np.finfo(lane_dtype(dtype)).eps)


def lane_scale(dtype: object = np.float64) -> float:
    """``eps(dtype) / eps(float64)`` — the factor a float64-calibrated
    tolerance widens by on another lane (1.0 at float64, 2^29 at float32).
    Non-lane dtypes scale like float64, matching the coercion rule of
    :func:`as_lane_matrix`."""
    dt = np.dtype(dtype) if dtype is not None else np.dtype(np.float64)
    if dt.name not in LANE_DTYPES:
        dt = np.dtype(np.float64)
    return lane_eps(dt) / lane_eps(np.float64)


def as_lane_matrix(a: np.ndarray, dtype: object = None) -> np.ndarray:
    """Return *a* as a Fortran-ordered lane array, preserving its dtype.

    With ``dtype=None`` a float32 input stays float32 and anything else
    (float64, ints, …) lands in float64 — the historical coercion, now
    dtype-preserving for the fp32 lane. An explicit *dtype* forces that
    lane. No copy is made when *a* already complies.
    """
    a = np.asarray(a)
    if dtype is None:
        dt = a.dtype if a.dtype.name in LANE_DTYPES else np.dtype(np.float64)
    else:
        dt = lane_dtype(dtype)
    return np.asfortranarray(a, dtype=dt)
