"""Plain-text table rendering for the reproduction harness.

The benchmark scripts regenerate the paper's tables as aligned ASCII so the
paper-vs-measured comparison can be read straight off the terminal (and
diffed in CI). No plotting dependency is assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


def format_float(x: float, *, sig: int = 4) -> str:
    """Format a float in the paper's scientific style, e.g. ``6.2529e-18``."""
    if x != x:  # NaN
        return "nan"
    if x == 0.0:
        return "0"
    return f"{x:.{sig}e}"


def format_si(x: float, unit: str = "") -> str:
    """Format with SI magnitude prefixes (1.43e12 -> ``1.43 T``)."""
    prefixes = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")]
    for mag, pre in prefixes:
        if abs(x) >= mag:
            return f"{x / mag:.3g} {pre}{unit}"
    return f"{x:.3g} {unit}".rstrip()


@dataclass
class Table:
    """Minimal aligned-column table builder.

    >>> t = Table(["N", "residual"])
    >>> t.add_row([1022, 6.25e-18])
    >>> print(t.render())  # doctest: +SKIP
    """

    headers: Sequence[str]
    title: str = ""
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[object]) -> None:
        """Append a row; floats are formatted scientifically, rest via str()."""
        formatted: list[str] = []
        for v in values:
            if isinstance(v, float):
                formatted.append(format_float(v))
            else:
                formatted.append(str(v))
        if len(formatted) != len(self.headers):
            raise ValueError(
                f"row has {len(formatted)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(formatted)

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
