"""Zero-copy shared-memory data plane for matrices crossing process lines.

The campaign executor and the batch service both ship n×n float64
matrices to pool workers (and, for factor-returning jobs, ship the
Hessenberg/Q factors back).  Pickling those payloads through the pool's
pipes costs a full serialize + copy + deserialize per hop — at n=256
that is half a megabyte each way for a job whose *description* is a few
hundred bytes.  This module replaces the matrix bytes with a
:class:`SharedMatrix` handle over POSIX shared memory
(:mod:`multiprocessing.shared_memory`): the creator copies the matrix
into a ``/dev/shm`` segment once, a ~100-byte handle travels through the
pool, and every worker attaches the same pages read-only — zero
per-trial serialization, zero per-trial deserialization.

Lifecycle discipline is the whole game (a leaked segment outlives the
process that made it), so ownership is explicit:

* the **creator** registers every segment in a :class:`SegmentRegistry`
  which reference-counts handles and guarantees unlink on release, on
  ``unlink_all()`` (pool shutdown / service stop), on garbage
  collection of the registry, and at interpreter exit
  (``weakref.finalize`` doubles as an atexit hook);
* **attachers** (pool workers, the parent materializing a result
  factor) only ever map and unmap — they never unlink;
* our segments are never registered with the stdlib
  ``resource_tracker`` in the first place (its per-name set semantics
  cannot refcount multi-process attachments: it would unlink segments
  still in use, and register/unregister pairs from different processes
  collapse in its name set and produce spurious errors at exit).
  Crash insurance comes from :func:`sweep_stale_segments` instead:
  segment names embed the creator pid, so any ``repro-shm-*`` segment
  whose creator is dead is garbage by construction and is reclaimed on
  the next registry construction or pool rebuild.

Transport selection is automatic (:func:`use_shm_for`): shared memory
when the platform supports it and the payload is big enough to beat a
pickle, the plain pickle path otherwise — callers can force either end
with ``transport="shm"`` / ``transport="pickle"``.
"""

from __future__ import annotations

import contextlib
import glob
import os
import sys
import threading
import uuid
import weakref
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import resource_tracker as _tracker
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - stripped-down interpreters
    _shm = None
    _tracker = None

__all__ = [
    "DEFAULT_MIN_BYTES",
    "TRANSPORTS",
    "SharedMatrix",
    "SegmentRegistry",
    "TransportError",
    "shm_available",
    "use_shm_for",
    "attach_view",
    "detach_all",
    "sweep_stale_segments",
    "hash_update_array",
]

#: Below this payload size a pickle round-trip is cheaper than a
#: segment create + attach (two syscalls and a page fault per side).
DEFAULT_MIN_BYTES = 64 * 1024

#: Valid ``transport=`` arguments across the dispatch stack.
TRANSPORTS = ("auto", "shm", "pickle")

_PREFIX = "repro-shm"


class TransportError(ReproError, RuntimeError):
    """A forced shared-memory transport is unavailable on this host."""


def _new_name() -> str:
    # creator pid baked into the name: sweep_stale_segments() can tell
    # a live owner's segment from a dead one's without any side channel
    return f"{_PREFIX}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


_AVAILABLE: bool | None = None


def shm_available() -> bool:
    """True when shared-memory transport can work on this host."""
    global _AVAILABLE
    if _AVAILABLE is None:
        if _shm is None:
            _AVAILABLE = False
        elif sys.platform.startswith("linux"):
            _AVAILABLE = os.path.isdir("/dev/shm") and os.access("/dev/shm", os.W_OK)
        else:
            # macOS/Windows back shared_memory differently; probe once
            try:
                with _untracked():
                    seg = _shm.SharedMemory(name=_new_name(), create=True, size=16)
                    seg.close()
                    seg.unlink()
                _AVAILABLE = True
            except OSError:
                _AVAILABLE = False
    return _AVAILABLE


def use_shm_for(nbytes: int, transport: str = "auto", *, min_bytes: int | None = None) -> bool:
    """Decide the transport for a payload of *nbytes*.

    ``"pickle"`` always declines; ``"shm"`` demands shared memory (and
    raises :class:`TransportError` where there is none — a forced
    transport silently downgrading would make the CI smoke job
    meaningless); ``"auto"`` takes shm only when it is available *and*
    the payload clears the break-even threshold.
    """
    if transport not in TRANSPORTS:
        raise ValueError(f"unknown transport {transport!r} (want one of {TRANSPORTS})")
    if transport == "pickle":
        return False
    if transport == "shm":
        if not shm_available():
            raise TransportError(
                "transport='shm' was forced but shared memory is unavailable on this host"
            )
        return True
    floor = DEFAULT_MIN_BYTES if min_bytes is None else int(min_bytes)
    return shm_available() and nbytes >= floor


_TRACK_LOCK = threading.Lock()


@contextlib.contextmanager
def _untracked():
    """Open/unlink a ``SharedMemory`` without the resource tracker seeing it.

    The tracker keys segments by name in a plain *set* shared by the
    whole process tree: on 3.8–3.12 every open (create *and* attach)
    registers, so two processes' register/unregister pairs collapse to
    one entry and the orphaned unregister raises in the tracker process
    at exit — and worse, a tracked attacher exiting would unlink a
    segment the owner still serves. Ownership lives in
    :class:`SegmentRegistry` instead, so the tracker must never hear
    about our segments at all: this patches ``register`` *and*
    ``unregister`` (``SharedMemory.unlink`` unregisters unconditionally)
    to no-ops for the duration of the call; a lock keeps the window
    race-free within this process.
    """
    if _tracker is None:
        yield
        return
    with _TRACK_LOCK:
        orig_reg, orig_unreg = _tracker.register, _tracker.unregister
        try:
            _tracker.register = lambda name, rtype: None
            _tracker.unregister = lambda name, rtype: None
            yield
        finally:
            _tracker.register = orig_reg
            _tracker.unregister = orig_unreg


@dataclass(frozen=True)
class SharedMatrix:
    """A picklable ~100-byte handle to a matrix living in shared memory.

    The handle carries everything needed to re-view the segment as the
    original ndarray: segment name, shape, dtype and memory order. It is
    what travels through pool pipes in place of the matrix bytes.
    """

    name: str
    shape: tuple
    dtype: str
    order: str = "C"

    @property
    def nbytes(self) -> int:
        size = np.dtype(self.dtype).itemsize
        for dim in self.shape:
            size *= int(dim)
        return size

    @classmethod
    def create(
        cls,
        array: np.ndarray,
        *,
        registry: "SegmentRegistry | None" = None,
    ) -> "SharedMatrix":
        """Copy *array* into a fresh segment and return its handle.

        With *registry* given the segment is owned (and will be
        unlinked) by it; without one the creator's mapping is closed
        immediately and the segment lives until someone calls
        :meth:`unlink` — the worker→parent result path, where the
        parent adopts the handle on arrival and the pid-sweep reclaims
        it if the worker dies before the handle is delivered.
        """
        if _shm is None:  # pragma: no cover - guarded by shm_available()
            raise TransportError("multiprocessing.shared_memory is unavailable")
        src = np.asarray(array)
        order = "F" if src.flags.f_contiguous and not src.flags.c_contiguous else "C"
        if not (src.flags.c_contiguous or src.flags.f_contiguous):
            src = np.ascontiguousarray(src)
            order = "C"
        with _untracked():
            seg = _shm.SharedMemory(
                name=_new_name(), create=True, size=max(src.nbytes, 1)
            )
        view = np.ndarray(src.shape, dtype=src.dtype, buffer=seg.buf, order=order)
        view[...] = src
        del view
        handle = cls(seg.name, tuple(int(d) for d in src.shape), str(src.dtype), order)
        if registry is not None:
            registry.adopt(handle, seg)
        else:
            seg.close()
        return handle

    def attach(self, *, writable: bool = False) -> np.ndarray:
        """A view of the live segment (cached per process, read-only by
        default). The caller must not outlive the owner's unlink."""
        return attach_view(self, writable=writable)

    def unlink(self) -> bool:
        """Best-effort unlink for registry-less handles; True if removed."""
        if _shm is None:
            return False
        try:
            with _untracked():
                seg = _shm.SharedMemory(name=self.name)
                seg.close()
                seg.unlink()
        except (OSError, ValueError):
            return False
        return True

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "shape": list(self.shape),
            "dtype": self.dtype,
            "order": self.order,
        }

    @classmethod
    def from_json(cls, data: dict) -> "SharedMatrix":
        return cls(
            name=str(data["name"]),
            shape=tuple(int(d) for d in data["shape"]),
            dtype=str(data["dtype"]),
            order=str(data.get("order", "C")),
        )


# -- attacher side -----------------------------------------------------------

#: name -> SharedMemory, the per-process attachment cache. A campaign
#: worker attaches its base matrix exactly once and re-views it for
#: every trial of every chunk; serve workers keep the last few inline
#: matrices warm across jobs.
_ATTACHED: "dict[str, object]" = {}
_ATTACH_LOCK = threading.Lock()
_MAX_ATTACHED = 8


def attach_view(handle: SharedMatrix, *, writable: bool = False) -> np.ndarray:
    """Map *handle*'s segment (once per process) and view it as an array.

    Views are read-only unless *writable* — pool workers share the pages
    with each other, so an accidental in-place update in one trial
    would silently corrupt every sibling's input.
    """
    if _shm is None:  # pragma: no cover - guarded by shm_available()
        raise TransportError("multiprocessing.shared_memory is unavailable")
    with _ATTACH_LOCK:
        seg = _ATTACHED.get(handle.name)
        if seg is None:
            try:
                with _untracked():
                    seg = _shm.SharedMemory(name=handle.name)
            except (OSError, ValueError) as exc:
                raise TransportError(
                    f"shared segment {handle.name!r} is gone (owner unlinked it "
                    "or never delivered it); the matrix cannot be reattached"
                ) from exc
            while len(_ATTACHED) >= _MAX_ATTACHED:
                old_name, old_seg = next(iter(_ATTACHED.items()))
                del _ATTACHED[old_name]
                try:
                    old_seg.close()
                except BufferError:  # a view is still out; let gc finish it
                    pass
            _ATTACHED[handle.name] = seg
    view = np.ndarray(handle.shape, dtype=handle.dtype, buffer=seg.buf, order=handle.order)
    view.flags.writeable = bool(writable)
    return view


def detach_all() -> int:
    """Unmap every cached attachment (views already handed out keep
    their pages alive until garbage collected). Returns the count."""
    with _ATTACH_LOCK:
        n = len(_ATTACHED)
        for seg in _ATTACHED.values():
            try:
                seg.close()
            except BufferError:
                pass
        _ATTACHED.clear()
        return n


# -- owner side --------------------------------------------------------------


def _cleanup_segments(segments: dict, owner_pid: int) -> None:
    """Finalizer body: unlink whatever the registry still owns.

    Runs when the registry is garbage collected or at interpreter exit.
    The pid guard matters under ``fork``: children inherit the parent's
    registry object, and a child exiting must not unlink segments the
    parent is still serving.
    """
    if os.getpid() != owner_pid:
        return
    for seg in list(segments.values()):
        try:
            seg.close()
        except BufferError:
            pass
        try:
            with _untracked():
                seg.unlink()
        except OSError:
            pass
    segments.clear()


def sweep_stale_segments(*, exclude: "set[str] | frozenset[str]" = frozenset()) -> list[str]:
    """Reclaim ``repro-shm-*`` segments whose creator process is dead.

    The crash backstop: a SIGKILLed campaign or a worker that died
    between creating a result segment and delivering its handle leaves
    a segment no finalizer can reach. Its name carries the creator pid,
    and a dead creator means nobody will ever unlink it — so we do.
    Linux-only (elsewhere there is no segment directory to enumerate);
    returns the names removed.
    """
    if not sys.platform.startswith("linux") or not os.path.isdir("/dev/shm"):
        return []
    removed = []
    for path in glob.glob(f"/dev/shm/{_PREFIX}-*"):
        name = os.path.basename(path)
        if name in exclude:
            continue
        try:
            pid = int(name.split("-")[2])
        except (IndexError, ValueError):
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(path)
            removed.append(name)
        except OSError:
            continue
    return removed


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


class SegmentRegistry:
    """Owner-side ledger of shared segments: refcounts + guaranteed unlink.

    One registry per pool owner (a campaign run, a scheduler). Every
    segment the owner creates or adopts is tracked here; ``release``
    decrements a handle's refcount and unlinks at zero, ``unlink_all``
    sweeps everything (pool shutdown, service stop), and a
    ``weakref.finalize`` hook replays ``unlink_all`` at garbage
    collection or interpreter exit so no control-flow path — exception,
    cancelled task, forgotten close — can leak a segment from a live
    process. Dead-process segments are reclaimed by
    :func:`sweep_stale_segments`, which every constructor and every
    pool rebuild invokes.
    """

    def __init__(self, *, sweep: bool = True) -> None:
        self._owner_pid = os.getpid()
        self._lock = threading.Lock()
        self._segments: dict[str, object] = {}
        self._refs: dict[str, int] = {}
        self.created = 0
        self.adopted = 0
        self.unlinked = 0
        self.bytes_shared = 0
        self.swept = len(sweep_stale_segments()) if sweep else 0
        self._finalizer = weakref.finalize(
            self, _cleanup_segments, self._segments, self._owner_pid
        )

    # -- ownership ----------------------------------------------------------

    def adopt(self, handle: SharedMatrix, seg, *, refs: int = 1) -> None:
        """Take ownership of a segment this process created."""
        with self._lock:
            self._segments[handle.name] = seg
            self._refs[handle.name] = refs
            self.created += 1
            self.bytes_shared += handle.nbytes

    def adopt_foreign(self, handle: SharedMatrix, *, refs: int = 0) -> bool:
        """Take ownership of a segment another process created (a worker's
        result factors). Idempotent; False if the segment is already gone."""
        if _shm is None:
            return False
        with self._lock:
            if handle.name in self._segments:
                return True
            try:
                with _untracked():
                    seg = _shm.SharedMemory(name=handle.name)
            except (OSError, ValueError):
                return False
            self._segments[handle.name] = seg
            self._refs[handle.name] = refs
            self.adopted += 1
            self.bytes_shared += handle.nbytes
            return True

    # -- refcounting --------------------------------------------------------

    def acquire(self, name: str) -> None:
        with self._lock:
            if name in self._segments:
                self._refs[name] = self._refs.get(name, 0) + 1

    def release(self, name: str) -> None:
        """Drop one reference; the last one out unlinks the segment."""
        unlink = False
        with self._lock:
            if name not in self._segments:
                return
            self._refs[name] = self._refs.get(name, 1) - 1
            unlink = self._refs[name] <= 0
        if unlink:
            self.unlink(name)

    def materialize(self, handle: SharedMatrix) -> np.ndarray:
        """Copy the segment out into a private array and drop one ref.

        The lazy-result path: the first access owns its private copy and
        the segment disappears as soon as the last interested party has
        materialized (or the registry is torn down)."""
        with self._lock:
            seg = self._segments.get(handle.name)
        if seg is not None:
            view = np.ndarray(handle.shape, dtype=handle.dtype, buffer=seg.buf,
                              order=handle.order)
            out = view.copy()
            del view
        else:  # not ours (or already released): fall back to a plain attach
            out = np.array(attach_view(handle))
        self.release(handle.name)
        return out

    # -- teardown -----------------------------------------------------------

    def unlink(self, name: str) -> None:
        """Unconditionally close + unlink one segment (idempotent)."""
        with self._lock:
            seg = self._segments.pop(name, None)
            self._refs.pop(name, None)
        if seg is None:
            return
        try:
            seg.close()
        except BufferError:  # a view still references the mapping
            pass
        try:
            with _untracked():
                seg.unlink()
        except OSError:
            pass
        self.unlinked += 1

    def unlink_all(self) -> int:
        """Unlink every owned segment; returns how many were removed."""
        if os.getpid() != self._owner_pid:
            return 0  # forked child: these are the parent's segments
        with self._lock:
            names = list(self._segments)
        for name in names:
            self.unlink(name)
        return len(names)

    def sweep(self) -> int:
        """Reclaim dead-owner segments, sparing everything tracked here."""
        with self._lock:
            keep = frozenset(self._segments)
        removed = sweep_stale_segments(exclude=keep)
        self.swept += len(removed)
        return len(removed)

    # -- introspection -------------------------------------------------------

    def names(self) -> list[str]:
        with self._lock:
            return list(self._segments)

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._segments

    def stats(self) -> dict:
        """JSON-safe counters for service stats / benchmark reports."""
        with self._lock:
            live = len(self._segments)
        return {
            "live_segments": live,
            "created": self.created,
            "adopted": self.adopted,
            "unlinked": self.unlinked,
            "swept": self.swept,
            "bytes_shared": self.bytes_shared,
        }

    def __enter__(self) -> "SegmentRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink_all()


# -- zero-copy hashing -------------------------------------------------------


def hash_update_array(h, arr: np.ndarray) -> None:
    """Feed *arr*'s C-order bytes into hash object *h* without the
    ``tobytes()`` copy.

    C-contiguous arrays hash straight from their buffer (zero copies);
    anything else pays exactly one layout copy — still one fewer than
    the ``ascontiguousarray(...).tobytes()`` idiom, and the digest is
    byte-identical to it.
    """
    a = np.asarray(arr)
    if not a.flags.c_contiguous:
        a = np.ascontiguousarray(a)
    h.update(a.data)
