"""Shared utilities: argument validation, deterministic matrix generators,
plain-text report formatting, and the shared-memory data plane."""

from repro.utils.validation import (
    as_fortran,
    check_matrix,
    check_square,
    require,
)
from repro.utils.rng import (
    MatrixKind,
    random_matrix,
    make_rng,
)
from repro.utils.fmt import Table, format_float, format_si
from repro.utils.shm import (
    TRANSPORTS,
    SegmentRegistry,
    SharedMatrix,
    TransportError,
    shm_available,
    use_shm_for,
)

__all__ = [
    "as_fortran",
    "check_matrix",
    "check_square",
    "require",
    "MatrixKind",
    "random_matrix",
    "make_rng",
    "Table",
    "format_float",
    "format_si",
    "TRANSPORTS",
    "SegmentRegistry",
    "SharedMatrix",
    "TransportError",
    "shm_available",
    "use_shm_for",
]
