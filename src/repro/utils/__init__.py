"""Shared utilities: argument validation, deterministic matrix generators,
and plain-text report formatting."""

from repro.utils.validation import (
    as_fortran,
    check_matrix,
    check_square,
    require,
)
from repro.utils.rng import (
    MatrixKind,
    random_matrix,
    make_rng,
)
from repro.utils.fmt import Table, format_float, format_si

__all__ = [
    "as_fortran",
    "check_matrix",
    "check_square",
    "require",
    "MatrixKind",
    "random_matrix",
    "make_rng",
    "Table",
    "format_float",
    "format_si",
]
