"""The ``Backend`` protocol and its NumPy adapters.

A backend is a thin array-namespace seam: it owns the namespace object
(``xp``), host/device transfer (:meth:`asarray` / :meth:`to_numpy`),
allocation with a memory-order contract (:meth:`empty`), the fused
``C ← βC + αAB`` core (:meth:`matmul_into`), and the two execution
primitives the whole-stack kernels need (:meth:`jit`,
:meth:`fori_loop`).

The one semantic fork between adapters is the **update contract**,
declared by :attr:`Backend.inplace_updates`:

* in-place backends (NumPy, CuPy) expose mutable buffers —
  ``at_set`` writes through and returns the same array, and
  ``matmul_into`` honors ``out=``;
* functional backends (JAX) have immutable arrays — ``at_set``
  returns a new array (``x.at[idx].set(v)``) and ``matmul_into``
  ignores ``out=`` and returns a fresh result.

Kernels written against ``at_set``'s *return value* (never the
argument) run correctly under both contracts; that is the only rule.
:class:`NumpyFunctionalBackend` exists to enforce it — a pure-NumPy
adapter with the functional contract, so the JAX code path is exercised
(and parity-tested) even on hosts without jax installed.
"""

from __future__ import annotations

import numpy as np


class Backend:
    """Base adapter: the NumPy in-place contract.

    Subclasses override the namespace and whichever primitives differ;
    the defaults here are plain NumPy semantics.
    """

    #: Registry name (also what ``JobSpec.backend`` stores).
    name: str = "numpy"
    #: True → arrays are mutable buffers and ``out=`` targets are honored.
    inplace_updates: bool = True

    # -- namespace & transfer -------------------------------------------------

    @property
    def xp(self):
        """The array namespace (``numpy``, ``jax.numpy``, ``cupy``)."""
        return np

    def asarray(self, a, dtype=None):
        """Bring a host array onto this backend."""
        return np.asarray(a, dtype=dtype)

    def to_numpy(self, a) -> np.ndarray:
        """Bring a backend array back to host NumPy."""
        return np.asarray(a)

    # -- allocation -----------------------------------------------------------

    def empty(self, shape, dtype=np.float64, order: str = "F"):
        """Uninitialized array; *order* is honored where layout exists."""
        return np.empty(shape, dtype=dtype, order=order)

    def zeros(self, shape, dtype=np.float64, order: str = "F"):
        return np.zeros(shape, dtype=dtype, order=order)

    # -- compute core ---------------------------------------------------------

    def matmul_into(self, a, b, out=None, *, alpha: float = 1.0, beta: float = 0.0):
        """``out ← beta·out + alpha·(a @ b)``, returned.

        In-place backends write through *out* when given; functional
        backends ignore it and return a fresh array. Callers must use
        the return value either way.
        """
        if out is None or not self.inplace_updates:
            prod = a @ b
            if beta == 0.0:
                return alpha * prod if alpha != 1.0 else prod
            return beta * out + alpha * prod
        if beta == 0.0:
            np.matmul(a, b, out=out)
            if alpha != 1.0:
                out *= alpha
        else:
            if beta != 1.0:
                out *= beta
            out += alpha * (a @ b)
        return out

    def at_set(self, arr, index, value):
        """Functional-update seam: ``arr[index] = value``, returned.

        The in-place contract mutates and returns *arr* itself; the
        functional contract returns a modified copy. Kernel code must
        keep using the returned array.
        """
        arr[index] = value
        return arr

    # -- execution primitives ---------------------------------------------------

    def jit(self, fn, *, static_argnums=()):
        """Compile *fn* (identity for eager backends)."""
        return fn

    def fori_loop(self, lo, hi, body, init):
        """``carry = body(i, carry)`` for i in [lo, hi) — the
        ``jax.lax.fori_loop`` contract, eager here."""
        carry = init
        for i in range(int(lo), int(hi)):
            carry = body(i, carry)
        return carry

    def block_until_ready(self, x):
        """Synchronize async dispatch (identity for eager backends)."""
        return x

    # -- dtype helpers --------------------------------------------------------

    def canonical_dtype(self, x) -> np.dtype:
        """The host-NumPy dtype of a backend array."""
        return np.dtype(x.dtype)

    def eps(self, dtype) -> float:
        """Machine epsilon of *dtype* as this backend computes it."""
        return float(np.finfo(np.dtype(dtype)).eps)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} name={self.name!r} inplace={self.inplace_updates}>"


class NumpyBackend(Backend):
    """The default backend: today's code paths, bit for bit.

    Carries no behavior of its own — every driver treats
    ``backend=None`` and ``backend=NumpyBackend()`` identically, and the
    serve layer routes ``backend == "numpy"`` jobs through the exact
    same scalar/batched kernels as before the seam existed.
    """

    name = "numpy"
    inplace_updates = True


class NumpyFunctionalBackend(Backend):
    """NumPy namespace under the *functional* update contract.

    The reference adapter for the whole-stack functional lane: same
    numerics as NumPy, same immutability rules as JAX (``at_set``
    copies, ``matmul_into`` never writes ``out=``), no jit. It keeps
    the JAX code path testable on hosts without jax and documents the
    contract an accelerator adapter must satisfy.
    """

    name = "numpy_functional"
    inplace_updates = False

    def at_set(self, arr, index, value):
        out = np.array(arr)  # always a fresh buffer, like x.at[idx].set(v)
        out[index] = value
        return out
