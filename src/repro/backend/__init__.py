"""``repro.backend`` — the array-namespace seam and its adapter registry.

Four adapters are registered:

========================  =========  ==========  ==============================
name                      contract   requires    role
========================  =========  ==========  ==============================
``numpy``                 in-place   (nothing)   default; today's code paths
``numpy_functional``      functional (nothing)   reference for the JAX contract
``jax``                   functional ``jax``     CPU jit whole-stack lane
``cupy``                  in-place   ``cupy``    CUDA stub (same seam)
========================  =========  ==========  ==============================

Resolution order for "which backend does this run use": an explicit
name (``JobSpec.backend``, CLI ``--backend``) wins; otherwise the
``REPRO_BACKEND`` environment variable; otherwise ``numpy``.

:func:`get_backend` raises :class:`~repro.errors.BackendUnavailableError`
with an install hint when the adapter's runtime is missing — callers
(spec validation, the CLI) surface that *before* any work is queued.
"""

from __future__ import annotations

import os

from repro.backend.base import Backend, NumpyBackend, NumpyFunctionalBackend
from repro.errors import BackendUnavailableError

#: Environment variable giving the default backend name.
ENV_VAR = "REPRO_BACKEND"

#: The built-in default.
DEFAULT_BACKEND = "numpy"

#: name -> (constructor path, pip hint). Constructors are resolved
#: lazily so importing this package never imports an optional runtime.
_SPECS: dict[str, tuple[str, str | None]] = {
    "numpy": ("repro.backend.base:NumpyBackend", None),
    "numpy_functional": ("repro.backend.base:NumpyFunctionalBackend", None),
    "jax": ("repro.backend.jax_backend:JaxBackend", 'pip install "repro[jax]" (or: pip install "jax[cpu]")'),
    "cupy": ("repro.backend.cupy_backend:CupyBackend", 'pip install "repro[cupy]" (or: pip install cupy-cuda12x)'),
}

#: Registered backend names, resolution-stable order.
BACKEND_NAMES = tuple(_SPECS)

#: Test hook: names forced unavailable regardless of what is importable.
#: The degradation tests use this to exercise the jax-missing path on
#: hosts where jax *is* installed (the CI backend-smoke runner).
_DISABLED: set[str] = set()

_INSTANCES: dict[str, Backend] = {}


def canonical_backend_name(name: str | None) -> str:
    """Normalize a backend name (default resolution included)."""
    if name is None or name == "":
        name = os.environ.get(ENV_VAR, "") or DEFAULT_BACKEND
    return str(name).strip().lower().replace("-", "_")


def is_known_backend(name: str | None) -> bool:
    """Is *name* (after canonicalization) a registered adapter?"""
    return canonical_backend_name(name) in _SPECS


def _construct(name: str) -> Backend:
    path, _hint = _SPECS[name]
    mod_name, _, cls_name = path.partition(":")
    import importlib

    mod = importlib.import_module(mod_name)
    return getattr(mod, cls_name)()


def backend_probe(name: str) -> tuple[bool, str | None, str | None]:
    """``(available, version, reason)`` for one registered adapter.

    Never raises for registered names; an unimportable runtime comes
    back as ``(False, None, "<why>")``.
    """
    name = canonical_backend_name(name)
    if name not in _SPECS:
        return False, None, f"unknown backend {name!r}"
    if name in _DISABLED:
        return False, None, "disabled for this process"
    if name in ("numpy", "numpy_functional"):
        import numpy

        return True, numpy.__version__, None
    mod_name = "jax" if name == "jax" else "cupy"
    try:
        import importlib

        mod = importlib.import_module(mod_name)
    except Exception as exc:  # ImportError and CUDA init failures alike
        return False, None, f"{type(exc).__name__}: {exc}"
    return True, getattr(mod, "__version__", "unknown"), None


def backend_available(name: str | None = None) -> bool:
    """Can :func:`get_backend` succeed for *name* right now?"""
    return backend_probe(canonical_backend_name(name))[0]


def get_backend(name: str | None = None) -> Backend:
    """The (cached) adapter instance for *name*.

    ``None``/empty resolves through ``REPRO_BACKEND`` then the default.
    Unknown or unavailable names raise
    :class:`~repro.errors.BackendUnavailableError` with a clear message
    and, for missing optional runtimes, the install hint.
    """
    name = canonical_backend_name(name)
    if name not in _SPECS:
        raise BackendUnavailableError(
            f"unknown backend {name!r} (registered: {', '.join(BACKEND_NAMES)})"
        )
    cached = _INSTANCES.get(name)
    if cached is not None and name not in _DISABLED:
        return cached
    ok, _version, reason = backend_probe(name)
    if not ok:
        _hint = _SPECS[name][1]
        msg = f"backend {name!r} is unavailable on this host: {reason}"
        if _hint:
            msg += f" — install it with: {_hint}"
        raise BackendUnavailableError(msg)
    inst = _construct(name)
    _INSTANCES[name] = inst
    return inst


def available_backends() -> list[dict]:
    """Registry listing for the CLI and the bench host block.

    One row per registered adapter:
    ``{"name", "available", "version", "default", "contract", "reason"}``.
    """
    default = canonical_backend_name(None)
    rows = []
    for name in BACKEND_NAMES:
        ok, version, reason = backend_probe(name)
        contract = "functional" if name in ("jax", "numpy_functional") else "in-place"
        rows.append(
            {
                "name": name,
                "available": ok,
                "version": version,
                "default": name == default,
                "contract": contract,
                "reason": reason,
            }
        )
    return rows


__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "BackendUnavailableError",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "NumpyBackend",
    "NumpyFunctionalBackend",
    "available_backends",
    "backend_available",
    "backend_probe",
    "canonical_backend_name",
    "get_backend",
    "is_known_backend",
]
