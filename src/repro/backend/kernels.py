"""Whole-stack functional Hessenberg kernels over an array namespace.

This is the accelerator-facing mirror of the batched engine: instead of
the scalar drivers' blocked, in-place LAPACK shape (panel factorization
+ fused BLAS-3 updates on mutable Fortran storage), the reduction is
expressed as a **masked, unblocked Householder sweep over the whole
``(B, m, m)`` stack** — the shape XLA wants (see the pyscf-ipu
Hessenberg exemplar in SNIPPETS.md):

* every column step is the same fixed-shape program (masks select the
  active sub-column, so nothing in the trace depends on the loop index),
* one column step costs three batched rank-1 GEMMs over the full stack
  (left reflector, right reflector, Q accumulation),
* the loop body is a ``fori_loop`` with *dynamic* bounds, compiled
  **once** per ``(backend, B, m, dtype)`` shape key and then re-entered
  chunk by chunk, so the driver can strike faults and run Σ-detection
  at iteration boundaries without retracing.

Checksums ride the same matmuls (the FT-GEMM observation): with the
checksum-extended operand ``ext = [[A, c], [rᵀ, s]]`` (``c = A·e``,
``r = eᵀA``, ``s = eᵀA·e``) and the padded reflectors ``v̂ = [v; 0]``,
``ṽ = [v; Σv]``, the two-sided update

    ``ext ← ext − τ·ṽ·(v̂ᵀ ext)``  then  ``ext ← ext − τ·(ext·v̂)·ṽᵀ``

applies the exact Householder similarity to the data block *and* keeps
both checksum banks consistent — no separate maintenance pass exists to
be skipped or corrupted. (Algebra: for the left update,
``c' = c − τ(vᵀc)v = A'e`` and ``r' = r − τΣv·(vᵀA) = eᵀA'``; the right
update is symmetric. Unit checksum weights only — this lane is
``channels=1``.)

Reflector convention matches the scalar ``larfg`` byte-for-byte in
structure (LAPACK dlarfg): ``beta = −copysign(hypot(alpha, ‖x‖), alpha)``,
``tau = (beta − alpha)/beta``, ``v = x/(alpha − beta)`` with unit pivot;
a zero sub-column takes the ``tau = 0`` identity branch (masked, so one
converged item cannot poison the batch). Results agree with the scalar
driver to rounding — parity is asserted at ``≤ c·n·eps`` per lane, not
byte-identity, because the update order (whole-matrix rank-1 vs blocked
WY) legitimately reassociates the arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import Backend

#: Compiled chunk kernels, one per (backend, B, m, encoded, dtype) shape
#: key. JAX retraces on new shapes only; NumPy backends store the plain
#: function. ``compiled_cache_info`` exposes the cache to tests/benches.
_COMPILED: dict[tuple, object] = {}


def compiled_cache_info() -> tuple[int, tuple[tuple, ...]]:
    """(number of compiled kernels, their shape keys) — test/bench hook."""
    return len(_COMPILED), tuple(_COMPILED)


def clear_compiled_cache() -> None:
    """Drop every compiled kernel (tests isolate cache-count assertions)."""
    _COMPILED.clear()


def _build_chunk(backend: Backend, b: int, n: int, encoded: bool, dtype) -> object:
    """Compile the column-sweep chunk for one stack shape.

    Returns ``chunk(a, q, lo, hi) -> (a, q)`` applying reflector columns
    ``lo .. hi-1`` to the ``(B, m, m)`` operand stack (``m = n+1`` when
    *encoded*) and accumulating ``Q = H_lo · H_{lo+1} · …`` into the
    ``(B, n, n)`` stack ``q``. ``lo``/``hi`` are dynamic — one compile
    serves every chunking of the sweep.
    """
    xp = backend.xp
    dt = np.dtype(dtype)
    rows = np.arange(n)

    def col_body(j, carry):
        a, q = carry
        pivot = j + 1
        col = a[:, :n, j]                        # data part of column j
        alpha = a[:, pivot, j]
        below = rows > pivot                     # mask: the sub-column to zero
        x = xp.where(below[None, :], col, xp.zeros((), dtype=dt))
        xnorm2 = xp.sum(x * x, axis=1)
        beta = -xp.copysign(xp.hypot(alpha, xp.sqrt(xnorm2)), alpha)
        live = xnorm2 > 0.0                      # zero sub-column → identity
        tau = xp.where(live, (beta - alpha) / xp.where(beta == 0.0, 1.0, beta), 0.0)
        v = x / xp.where(live, alpha - beta, 1.0)[:, None]
        v = backend.at_set(v, (slice(None), pivot), xp.ones((b,), dtype=dt))

        if encoded:
            zero_pad = xp.zeros((b, 1), dtype=dt)
            v_hat = xp.concatenate([v, zero_pad], axis=1)
            v_tilde = xp.concatenate([v, xp.sum(v, axis=1, keepdims=True)], axis=1)
        else:
            v_hat = v_tilde = v
        t = tau[:, None, None]

        # left:  ext ← ext − τ·ṽ·(v̂ᵀ ext)   (data + both checksum banks)
        w = xp.matmul(v_hat[:, None, :], a)
        a = a - t * xp.matmul(v_tilde[:, :, None], w)
        # right: ext ← ext − τ·(ext·v̂)·ṽᵀ
        u = xp.matmul(a, v_hat[:, :, None])
        a = a - t * xp.matmul(u, v_tilde[:, None, :])
        # accumulate Q = H₁H₂⋯ :  q ← q − τ·(q·v)·vᵀ
        qu = xp.matmul(q, v[:, :, None])
        q = q - t * xp.matmul(qu, v[:, None, :])
        return (a, q)

    def chunk(a, q, lo, hi):
        return backend.fori_loop(lo, hi, col_body, (a, q))

    return backend.jit(chunk)


def get_chunk_kernel(
    backend: Backend, b: int, n: int, *, encoded: bool, dtype
) -> object:
    """The (cached) compiled chunk kernel for one stack shape."""
    key = (backend.name, int(b), int(n), bool(encoded), np.dtype(dtype).name)
    fn = _COMPILED.get(key)
    if fn is None:
        fn = _build_chunk(backend, int(b), int(n), bool(encoded), dtype)
        _COMPILED[key] = fn
    return fn


def encode_stack(backend: Backend, a_stack: np.ndarray):
    """Checksum-extend a host ``(B, n, n)`` stack on the backend.

    Returns the ``(B, n+1, n+1)`` device stack
    ``[[A, A·e], [eᵀA, eᵀA·e]]`` — unit-weight (channels=1) encoding,
    matching :class:`repro.abft.encoding.EncodedMatrix` bank layout:
    ``ext[:, :n, n]`` is the row-checksum column, ``ext[:, n, :n]`` the
    column-checksum row.
    """
    xp = backend.xp
    b, n, _ = a_stack.shape
    a = backend.asarray(np.ascontiguousarray(a_stack))
    ext = xp.zeros((b, n + 1, n + 1), dtype=a.dtype)
    ext = backend.at_set(ext, (slice(None), slice(0, n), slice(0, n)), a)
    rowc = xp.sum(a, axis=2)
    colc = xp.sum(a, axis=1)
    ext = backend.at_set(ext, (slice(None), slice(0, n), n), rowc)
    ext = backend.at_set(ext, (slice(None), n, slice(0, n)), colc)
    ext = backend.at_set(ext, (slice(None), n, n), xp.sum(rowc, axis=1))
    return ext


def identity_stack(backend: Backend, b: int, n: int, dtype):
    """``(B, n, n)`` stack of identities on the backend."""
    xp = backend.xp
    eye = xp.eye(n, dtype=np.dtype(dtype))
    return xp.tile(eye[None, :, :], (b, 1, 1))


def checksum_banks(backend: Backend, ext) -> tuple[np.ndarray, np.ndarray]:
    """Host copies of both checksum banks of an encoded ``(B,n+1,n+1)``
    stack: ``(row_checksums (B,n), col_checksums (B,n))``. O(B·n)
    transfer — detection never pulls the O(B·n²) data block."""
    n = ext.shape[1] - 1
    rc = backend.to_numpy(ext[:, :n, n])
    cc = backend.to_numpy(ext[:, n, :n])
    return np.asarray(rc, dtype=np.float64), np.asarray(cc, dtype=np.float64)
