"""CuPy adapter stub: the in-place contract on a CUDA namespace.

CuPy mirrors NumPy's mutable-buffer semantics, so the adapter is almost
entirely inherited behavior with the namespace swapped — it satisfies
the same seam the kernels are written against and is gated on import
exactly like :class:`~repro.backend.jax_backend.JaxBackend`. It ships
as a stub: constructed and listed, but not golden-tested in CI (no CUDA
runner); the parity suite is what must pass before trusting results
from it.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import Backend


class CupyBackend(Backend):
    """``cupy`` namespace with NumPy-style in-place updates."""

    name = "cupy"
    inplace_updates = True

    def __init__(self) -> None:
        import cupy  # noqa: PLC0415 - lazy by design (optional dependency)

        self._cp = cupy

    @property
    def xp(self):
        return self._cp

    def asarray(self, a, dtype=None):
        return self._cp.asarray(a, dtype=dtype)

    def to_numpy(self, a) -> np.ndarray:
        return self._cp.asnumpy(a)

    def empty(self, shape, dtype=np.float64, order: str = "F"):
        return self._cp.empty(shape, dtype=dtype, order=order)

    def zeros(self, shape, dtype=np.float64, order: str = "F"):
        return self._cp.zeros(shape, dtype=dtype, order=order)

    def matmul_into(self, a, b, out=None, *, alpha: float = 1.0, beta: float = 0.0):
        cp = self._cp
        if out is None:
            prod = cp.matmul(a, b)
            return alpha * prod if alpha != 1.0 else prod
        if beta == 0.0:
            cp.matmul(a, b, out=out)
            if alpha != 1.0:
                out *= alpha
        else:
            if beta != 1.0:
                out *= beta
            out += alpha * cp.matmul(a, b)
        return out

    def block_until_ready(self, x):
        self._cp.cuda.get_current_stream().synchronize()
        return x

    def to_host_float(self, x) -> float:  # pragma: no cover - CUDA only
        return float(self._cp.asnumpy(x))
