"""JAX adapter: CPU jit over the functional update contract.

Import of ``jax`` is deferred to construction time — the module itself
imports cleanly on hosts without jax, and :func:`repro.backend.get_backend`
turns the missing wheel into a typed
:class:`~repro.errors.BackendUnavailableError` at submit/CLI time.

Two process-wide settings are applied on first construction:

* ``jax_enable_x64`` — the repo's goldens are float64; without x64 JAX
  silently truncates to float32 and every parity test fails;
* ``jax_platform_name = "cpu"`` — this lane targets deterministic CPU
  jit (the GPU story goes through the same seam but is benchmarked,
  not golden-tested).
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import Backend

_CONFIGURED = False


def _configure(jax) -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    jax.config.update("jax_enable_x64", True)
    try:
        jax.config.update("jax_platform_name", "cpu")
    except Exception:  # pragma: no cover - older jax spells it differently
        pass
    _CONFIGURED = True


class JaxBackend(Backend):
    """``jax.numpy`` namespace, functional updates, ``jax.jit`` compile."""

    name = "jax"
    inplace_updates = False

    def __init__(self) -> None:
        import jax  # noqa: PLC0415 - lazy by design (optional dependency)
        import jax.numpy as jnp

        _configure(jax)
        self._jax = jax
        self._jnp = jnp

    @property
    def xp(self):
        return self._jnp

    def asarray(self, a, dtype=None):
        return self._jnp.asarray(a, dtype=dtype)

    def to_numpy(self, a) -> np.ndarray:
        return np.asarray(self._jax.device_get(a))

    def empty(self, shape, dtype=np.float64, order: str = "F"):
        # XLA owns layout; *order* is a host-side concept and is ignored.
        return self._jnp.zeros(shape, dtype=dtype)

    def zeros(self, shape, dtype=np.float64, order: str = "F"):
        return self._jnp.zeros(shape, dtype=dtype)

    def matmul_into(self, a, b, out=None, *, alpha: float = 1.0, beta: float = 0.0):
        prod = self._jnp.matmul(a, b)
        if beta == 0.0:
            return alpha * prod if alpha != 1.0 else prod
        return beta * out + alpha * prod

    def at_set(self, arr, index, value):
        return arr.at[index].set(value)

    def jit(self, fn, *, static_argnums=()):
        return self._jax.jit(fn, static_argnums=static_argnums)

    def fori_loop(self, lo, hi, body, init):
        return self._jax.lax.fori_loop(lo, hi, body, init)

    def block_until_ready(self, x):
        if hasattr(x, "block_until_ready"):
            return x.block_until_ready()
        for leaf in self._jax.tree_util.tree_leaves(x):
            if hasattr(leaf, "block_until_ready"):
                leaf.block_until_ready()
        return x

    def eps(self, dtype) -> float:
        return float(self._jnp.finfo(np.dtype(dtype)).eps)
