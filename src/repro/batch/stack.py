"""Stacked (batched) storage for B same-shape problems.

The batched engine reduces a stack of B matrices through 3-D NumPy ops
— one ``np.matmul`` over a ``(B, m, n)`` operand dispatches B GEMMs from
a single Python call, which is where the small-n throughput comes from
(the arithmetic per item is unchanged; only the interpreter overhead is
amortized).

Two layout invariants make the batched kernels **bit-identical** to the
scalar ones:

* every item slice ``stack[b]`` must be F-contiguous, exactly like the
  Fortran-ordered matrices the scalar drivers operate on (same memory
  order in means the same BLAS paths and the same accumulation order
  out).  :func:`fstack` produces that layout via the transpose trick:
  an ``(r, c, B)`` F-ordered block viewed as ``(B, r, c)``.
* stacked ``np.matmul`` performs the same per-item GEMM the scalar call
  would; mirrored call-for-call, a batched kernel therefore reproduces
  the scalar results byte-for-byte (asserted by the golden tests in
  ``tests/test_batch_golden.py``).

:class:`EncodedMatrixBatch` is the stacked counterpart of
:class:`~repro.abft.encoding.EncodedMatrix`: B checksum-extended
matrices sharing one ``(B, n+k, n+k)`` storage, with per-item
:class:`EncodedMatrix` *views* available for the fault-injection hooks.
"""

from __future__ import annotations

import numpy as np

from repro.abft.encoding import EncodedMatrix, make_weight_block
from repro.errors import ShapeError
from repro.linalg import flops as F
from repro.linalg.flops import FlopCounter
from repro.perf.workspace import Workspace


def fstack(
    b: int, rows: int, cols: int, dtype: np.dtype | type = np.float64
) -> np.ndarray:
    """A zeroed ``(b, rows, cols)`` stack whose every item is F-contiguous.

    Allocated as an ``(rows, cols, b)`` Fortran block and viewed with the
    batch axis first, so ``out[k]`` has exactly the memory layout of a
    fresh ``np.zeros((rows, cols), order="F")``.
    """
    return np.zeros((rows, cols, b), order="F", dtype=dtype).transpose(2, 0, 1)


def stack_buf(
    workspace: Workspace | None,
    name: str,
    b: int,
    rows: int,
    cols: int,
    *,
    zero: bool = False,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """A pooled ``(b, rows, cols)`` per-item-F scratch stack.

    Drawn from the workspace arena when one is supplied (grow-only,
    reused across panel calls — the same contract as the scalar kernels'
    ``Workspace.buf``); otherwise freshly allocated.
    """
    if workspace is not None:
        flat = workspace.buf(name, (rows, cols, b), order="F", zero=zero, dtype=dtype)
        return flat.transpose(2, 0, 1)
    if zero:
        return fstack(b, rows, cols, dtype)
    return np.empty((rows, cols, b), order="F", dtype=dtype).transpose(2, 0, 1)


def as_item_f_stack(mats: list[np.ndarray] | np.ndarray) -> np.ndarray:
    """Copy *mats* (a list of equal-shape 2-D arrays, or a 3-D array)
    into a fresh per-item-F stack."""
    if isinstance(mats, np.ndarray):
        if mats.ndim != 3:
            raise ShapeError(f"need a (B, r, c) stack, got shape {mats.shape}")
        seq = [mats[i] for i in range(mats.shape[0])]
    else:
        seq = list(mats)
    if not seq:
        raise ShapeError("empty batch")
    r, c = seq[0].shape
    for m in seq:
        if m.shape != (r, c):
            raise ShapeError(f"batch items disagree on shape: {m.shape} vs {(r, c)}")
    dt = np.result_type(*(m.dtype for m in seq))
    dt = dt if dt == np.float32 else np.dtype(np.float64)
    out = fstack(len(seq), r, c, dt)
    for i, m in enumerate(seq):
        out[i] = m
    return out


class EncodedMatrixBatch:
    """B checksum-extended matrices in one stacked storage.

    ``ext`` is ``(B, n+k, n+k)`` with every item F-contiguous — item
    ``b`` has byte-for-byte the layout of a scalar
    :class:`~repro.abft.encoding.EncodedMatrix` built from the same
    input.  The (k x k) corners are scratch by contract, exactly as in
    the scalar class.
    """

    def __init__(
        self,
        a_stack: np.ndarray,
        *,
        channels: int = 1,
        counter: FlopCounter | None = None,
    ):
        if a_stack.ndim != 3 or a_stack.shape[1] != a_stack.shape[2]:
            raise ShapeError(
                f"EncodedMatrixBatch needs a (B, n, n) stack, got {a_stack.shape}"
            )
        self.b = a_stack.shape[0]
        n = a_stack.shape[1]
        self.n = n
        dt = a_stack.dtype if a_stack.dtype == np.float32 else np.dtype(np.float64)
        self.weights = make_weight_block(n, channels, dt)
        self.k = self.weights.shape[0]
        self.ext = fstack(self.b, n + self.k, n + self.k, dt)
        self.ext[:, :n, :n] = a_stack
        self.encode(counter=counter)

    # -- views ------------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The (B, n, n) matrix block (a view)."""
        return self.ext[:, : self.n, : self.n]

    def item(self, b: int) -> EncodedMatrix:
        """A scalar :class:`EncodedMatrix` *view* over item *b*.

        Shares the stacked storage (mutations go both ways); used to
        hand per-item state to the fault-injection hooks and to build
        per-item results.
        """
        em = EncodedMatrix.__new__(EncodedMatrix)
        em.n = self.n
        em.weights = self.weights
        em.k = self.k
        em.ext = self.ext[b]
        return em

    # -- encoding ----------------------------------------------------------

    def encode(self, *, counter: FlopCounter | None = None) -> None:
        """(Re)compute every item's checksum vectors from its data
        (the stacked Algorithm 3 line 2)."""
        n = self.n
        np.matmul(self.data, self.weights.T[None], out=self.ext[:, :n, n:])
        np.matmul(self.weights[None], self.data, out=self.ext[:, n:, :n])
        if counter is not None:
            counter.add(
                "abft_init", F.batched_flops(self.b, 2 * self.k * n * F.dot_flops(n))
            )

    def refresh_finished_segment(
        self, p: int, ib: int, *, counter: FlopCounter | None = None
    ) -> None:
        """Freeze the column checksums of newly finished columns, for
        every item at once (stacked
        :meth:`EncodedMatrix.refresh_finished_segment`)."""
        n = self.n
        for j in range(p, min(p + ib, n)):
            hi = min(j + 2, n)
            np.matmul(
                self.weights[None, :, :hi],
                self.ext[:, :hi, j][:, :, None],
                out=self.ext[:, n:, j][:, :, None],
            )
            if counter is not None:
                counter.add(
                    "abft_maintain", F.batched_flops(self.b, self.k * F.dot_flops(hi))
                )

    # -- detection statistics ----------------------------------------------

    def sum_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-item ``(Sre, Sce)`` — the unit-channel grand sums the
        detector compares (vectorized over the batch)."""
        n = self.n
        sre = np.sum(self.ext[:, :n, n], axis=1)
        sce = np.sum(self.ext[:, n, :n], axis=1)
        return sre, sce

    def cross_gaps(self) -> np.ndarray:
        """The stacked (B, k, k) cross-channel statistics (see
        :meth:`EncodedMatrix.cross_gaps`)."""
        r = self.ext[:, : self.n, self.n :]
        c = self.ext[:, self.n :, : self.n]
        left = np.matmul(self.weights[None], r)
        right = np.matmul(c, self.weights.T[None])
        return np.abs(left - right)
