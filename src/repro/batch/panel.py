"""Batched panel factorization (stacked DLAHR2) and reflector generation.

``lahr2_batched`` mirrors :func:`repro.linalg.lahr2.lahr2` **call for
call**: every scalar GEMV/GEMM becomes one stacked ``np.matmul`` over
``(B, ...)`` operands, every scalar assignment becomes the same
assignment with a leading batch axis.  Because each item of every stack
is F-contiguous (see :mod:`repro.batch.stack`) and a stacked matmul
performs the identical per-item GEMM, the results agree with B scalar
calls byte for byte.

The only delicate piece of DLARFG — ``beta``/``tau`` from
``math.hypot``/``math.copysign`` (Python's hypot is correctly rounded;
``np.hypot`` is allowed to differ by 1 ulp) — is vectorized through
``np.hypot`` only after a one-time byte-parity probe
(:func:`hypot_vectorizes_exactly`) proves that this platform's
``np.hypot`` agrees bit-for-bit with ``math.hypot`` across an
adversarial magnitude grid (denormals, near-overflow magnitudes,
huge/tiny mixes) plus dense ordinary-mantissa pairs.  On platforms
where the probe finds any mismatch, only the hypot itself falls back to
a per-item ``math.hypot`` sweep — beta/tau/denominator stay vectorized
— so batched-vs-scalar byte parity is preserved either way.  Zero-norm
items
take the LAPACK identity branch (``tau = 0``), enforced by masking the
scaling so no ``0/0`` poisons the batch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.linalg import flops as F
from repro.linalg.flops import FlopCounter
from repro.linalg.lahr2 import PanelFactors
from repro.perf.workspace import Workspace

from repro.batch.stack import stack_buf

#: Cached verdict of the np.hypot-vs-math.hypot byte-parity probe
#: (``None`` until first use).
_HYPOT_PARITY: bool | None = None


def hypot_vectorizes_exactly() -> bool:
    """One-time probe: does ``np.hypot`` match ``math.hypot`` bit-for-bit?

    Python's ``math.hypot`` is correctly rounded by contract; C library
    ``hypot`` (which ``np.hypot`` dispatches to) is correctly rounded on
    every mainstream libm but is not *guaranteed* to be.  The probe
    sweeps an adversarial magnitude grid — exact zeros, denormals,
    values near the overflow/underflow thresholds, and huge/tiny mixed
    pairs whose naive ``sqrt(a*a + b*b)`` would overflow or lose the
    small operand — and compares the raw result bytes.  The verdict is
    cached for the process; :func:`larfg_batched` only takes its
    vectorized ``np.hypot`` tail when the probe passes, so a platform
    with a sloppy libm silently keeps the byte-exact per-item loop.
    """
    global _HYPOT_PARITY
    if _HYPOT_PARITY is None:
        mags = np.array(
            [
                0.0,
                5e-324,          # smallest subnormal
                1e-310,          # subnormal
                2.2250738585072014e-308,  # smallest normal
                1e-300, 1e-155, 1e-30, 1e-16,
                0.5, 1.0, 1.5, 3.0, 6.25, 1e3,
                1e16, 1e30, 1e155, 1e300,
                8.988465674311579e307,    # ~DBL_MAX/2
            ]
        )
        a = np.repeat(mags, mags.size)
        c = np.tile(mags, mags.size)
        # Ordinary full-mantissa pairs are essential: NumPy builds where
        # np.hypot is an in-house SIMD kernel rather than libm miss
        # correct rounding on a dense fraction (~0.5%) of *typical*
        # operands while agreeing on every special-magnitude case above,
        # so a grid-only probe would pass exactly where it must fail.
        rng = np.random.default_rng(0x5AFE)
        ra = rng.standard_normal(8192) * np.exp(rng.uniform(-20, 20, 8192))
        rc = np.abs(rng.standard_normal(8192)) * np.exp(rng.uniform(-20, 20, 8192))
        a = np.concatenate([a, ra])
        c = np.concatenate([c, rc])
        got = np.hypot(a, c)
        want = np.array([math.hypot(x, y) for x, y in zip(a.tolist(), c.tolist())])
        _HYPOT_PARITY = got.tobytes() == want.tobytes()
    return _HYPOT_PARITY


@dataclass
class PanelFactorsBatch:
    """Stacked panel factors: item ``b`` of every array is exactly the
    scalar :class:`~repro.linalg.lahr2.PanelFactors` field for matrix
    ``b`` (see :meth:`item`)."""

    p: int
    ib: int
    v: np.ndarray        # (B, n-p-1, ib)
    t: np.ndarray        # (B, ib, ib)
    y: np.ndarray        # (B, n, ib)
    taus: np.ndarray     # (B, ib)
    ei: np.ndarray       # (B,)
    v_full: np.ndarray   # (B, rows, ib)

    def item(self, b: int) -> PanelFactors:
        """Scalar-shaped view of item *b*'s factors (shares storage)."""
        return PanelFactors(
            p=self.p, ib=self.ib, v=self.v[b], t=self.t[b], y=self.y[b],
            taus=self.taus[b], ei=float(self.ei[b]), v_full=self.v_full[b],
        )


def larfg_batched(
    alpha: np.ndarray,
    x: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "larfg",
) -> tuple[np.ndarray, np.ndarray]:
    """Generate B reflectors at once (stacked DLARFG).

    *alpha* is the (B,) pivot values, *x* the (B, m) below-pivot block,
    scaled in place to the Householder vectors.  Returns ``(beta, tau)``
    arrays; items with a zero norm get the LAPACK identity reflector
    (``beta = alpha, tau = 0``) and their *x* row is left untouched.
    """
    if x.ndim != 2:
        raise ShapeError(f"larfg_batched expects a (B, m) block, got {x.shape}")
    b, m = x.shape
    if counter is not None:
        counter.add(category, F.batched_flops(b, F.larfg_flops(m + 1)))
    # beta/tau/denom live in the stack dtype so the per-item arithmetic
    # reproduces the scalar larfg exactly in both lanes: the scalar code
    # computes tau and the scaling denominator with a *weak* Python-float
    # beta against the strong element dtype (NEP 50), i.e. in x.dtype —
    # which is what computing from the cast ``bt_c = beta[i]`` does here.
    beta = np.empty(b, dtype=x.dtype)
    tau = np.zeros(b, dtype=x.dtype)
    if m == 0:
        beta[:] = alpha
        return beta, tau
    # per-item sqrt(x . x) — bitwise what np.linalg.norm computes on a
    # 1-D vector
    xnorm = np.sqrt(np.matmul(x[:, None, :], x[:, :, None])[:, 0, 0])
    active = xnorm != 0.0
    denom = np.ones(b, dtype=x.dtype)
    # Vectorized tail.  The scalar kernel runs hypot/copysign on Python
    # floats (i.e. in float64) and casts the result once into the lane
    # dtype before deriving tau and the scaling denominator — reproduced
    # here operation for operation, so the bytes match B scalar calls
    # exactly.  Only the hypot itself is conditional: np.hypot when the
    # one-time probe proved bit-parity with math.hypot, otherwise a
    # per-item math.hypot sweep (hypot(|al|, 0) == |al| exactly, so
    # running it for inactive items too is harmless — beta is
    # overwritten with alpha for those below).
    a64 = np.asarray(alpha, dtype=np.float64)
    x64 = xnorm.astype(np.float64)
    if hypot_vectorizes_exactly():
        h64 = np.hypot(a64, x64)
    else:
        h64 = np.array([math.hypot(p, q) for p, q in zip(a64.tolist(), x64.tolist())])
    beta[:] = alpha
    np.copyto(beta, (-np.copysign(h64, a64)).astype(x.dtype), where=active)
    np.divide(beta - alpha, beta, out=tau, where=active)
    np.subtract(alpha, beta, out=denom, where=active)
    if active.all():
        x /= denom[:, None]
    else:
        np.divide(x, denom[:, None], out=x, where=active[:, None])
    return beta, tau


def lahr2_batched(
    a: np.ndarray,
    p: int,
    ib: int,
    n: int,
    *,
    counter: FlopCounter | None = None,
    category: str = "panel",
    workspace: Workspace | None = None,
) -> PanelFactorsBatch:
    """Factorize panel ``[:, p:p+ib]`` of every matrix in the (B, ...)
    stack *a* — the stacked mirror of :func:`repro.linalg.lahr2.lahr2`.

    *a* may be the stacked checksum-extended storage (rows/cols past
    ``n`` are neither read nor written, exactly as in the scalar
    kernel).  Mutates *a* in place; the returned factors are workspace
    views with panel lifetime when a workspace is supplied.
    """
    if a.ndim != 3:
        raise ShapeError(f"lahr2_batched needs a (B, r, c) stack, got {a.shape}")
    if not (0 <= p and p + ib < n <= min(a.shape[1], a.shape[2])):
        raise ShapeError(
            f"invalid panel: p={p}, ib={ib}, n={n}, stack shape {a.shape}"
        )
    if ib < 1:
        raise ShapeError(f"panel width must be >= 1, got {ib}")

    b = a.shape[0]
    rows = a.shape[1]
    m1 = n - p - 1  # rows of the dense V block
    dt = a.dtype
    v_full = stack_buf(workspace, "blahr2.v_full", b, rows, ib, zero=True, dtype=dt)
    y = stack_buf(workspace, "blahr2.y", b, n, ib, dtype=dt)
    t = stack_buf(workspace, "blahr2.t", b, ib, ib, zero=True, dtype=dt)
    g = stack_buf(workspace, "blahr2.g", b, m1, 1, dtype=dt)
    wj = stack_buf(workspace, "blahr2.wj", b, ib, 1, dtype=dt)
    wj2 = stack_buf(workspace, "blahr2.wj2", b, ib, 1, dtype=dt)
    v = v_full[:, p + 1 : n, :]
    # taus/ei are panel-lifetime outputs like v/t/y: pooled when an arena
    # is supplied (the batched drivers copy them out right after the
    # panel), freshly allocated otherwise.
    if workspace is not None:
        taus = workspace.buf("blahr2.taus", (b, ib), zero=True, dtype=dt)
        ei = workspace.buf("blahr2.ei", (b,), zero=True, dtype=dt)
    else:
        taus = np.zeros((b, ib), dtype=dt)
        ei = np.zeros(b, dtype=dt)

    for j in range(ib):
        c = p + j  # global column of reflector j
        if j > 0:
            # (1) right-update contribution to column c
            np.matmul(y[:, p + 1 : n, :j], v[:, j - 1, :j][:, :, None], out=g)
            a[:, p + 1 : n, c] -= g[:, :, 0]
            if counter is not None:
                counter.add(category, F.batched_flops(b, F.gemv_flops(n - p - 1, j)))

            # (2) left update: two stacked GEMVs against the dense V
            bcol = a[:, p + 1 : n, c][:, :, None]
            np.matmul(v[:, :, :j].transpose(0, 2, 1), bcol, out=wj[:, :j])
            np.matmul(t[:, :j, :j].transpose(0, 2, 1), wj[:, :j], out=wj2[:, :j])
            np.matmul(v[:, :, :j], wj2[:, :j], out=g)
            bcol -= g
            if counter is not None:
                counter.add(
                    category,
                    F.batched_flops(
                        b,
                        2 * F.trmv_flops(j)
                        + 2 * F.gemv_flops(n - p - j - 1, j)
                        + F.trmv_flops(j),
                    ),
                )
            # restore the subdiagonal entry overwritten by the unit of
            # reflector j-1
            a[:, p + j, p + j - 1] = ei

        # Generate reflector j for every item
        pivot_row = p + j + 1
        beta, tau = larfg_batched(
            a[:, pivot_row, c], a[:, pivot_row + 1 : n, c],
            counter=counter, category=category,
        )
        np.copyto(ei, beta)
        a[:, pivot_row, c] = 1.0

        vj = a[:, pivot_row:n, c]  # (B, m) full reflector vectors
        v[:, j:, j] = vj

        # Y[:, p+1:n, j] = tau * (A[p+1:n, p+j+1:n] vj - Y[:, :j] (V2^T vj))
        ycol = y[:, p + 1 : n, j][:, :, None]
        np.matmul(a[:, p + 1 : n, pivot_row:n], vj[:, :, None], out=ycol)
        if j > 0:
            np.matmul(v[:, j:, :j].transpose(0, 2, 1), vj[:, :, None], out=wj[:, :j])
            np.matmul(y[:, p + 1 : n, :j], wj[:, :j], out=g)
            ycol -= g
            # T[:j, j] = T[:j,:j] @ (-tau * tcol)
            np.multiply(wj[:, :j], -tau[:, None, None], out=wj2[:, :j])
            np.matmul(t[:, :j, :j], wj2[:, :j], out=t[:, :j, j][:, :, None])
        ycol *= tau[:, None, None]
        t[:, j, j] = tau
        taus[:, j] = tau
        if counter is not None:
            counter.add(
                category,
                F.batched_flops(
                    b,
                    F.gemv_flops(n - p - 1, n - pivot_row)
                    + (
                        F.gemv_flops(n - pivot_row, j)
                        + F.gemv_flops(n - p - 1, j)
                        + F.trmv_flops(j)
                        if j > 0
                        else 0
                    )
                    + F.scal_flops(n - p - 1),
                ),
            )

    # restore the subdiagonal entry below the last panel column
    a[:, p + ib, p + ib - 1] = ei

    # top rows of Y: Y_top = (A_top V) T, split exactly as the scalar code
    kk = p + 1
    yt = stack_buf(workspace, "blahr2.ytop", b, kk, ib, dtype=dt)
    yt2 = stack_buf(workspace, "blahr2.ytop2", b, kk, ib, dtype=dt)
    np.matmul(a[:, 0:kk, p + 1 : p + 1 + ib], v[:, :ib, :], out=yt)
    if n > p + 1 + ib:
        np.matmul(a[:, 0:kk, p + 1 + ib : n], v[:, ib:, :], out=yt2)
        yt += yt2
    np.matmul(yt, t, out=yt2)
    y[:, 0:kk, :] = yt2
    if counter is not None:
        counter.add(
            category,
            F.batched_flops(
                b,
                F.trmm_flops(kk, ib, False)
                + F.gemm_flops(kk, ib, max(0, n - p - 1 - ib))
                + F.trmm_flops(kk, ib, False),
            ),
        )

    return PanelFactorsBatch(p=p, ib=ib, v=v, t=t, y=y, taus=taus, ei=ei,
                             v_full=v_full)
