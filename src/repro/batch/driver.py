"""Batched Hessenberg drivers: ``gehrd_batched`` and ``ft_gehrd_batched``.

The batched engine accelerates the **fault-free fast path only**.  Both
drivers reproduce the scalar drivers byte for byte on clean inputs
(golden-tested in ``tests/test_batch_golden.py``); anything that needs
the resilience machinery is handed to the scalar ladder:

* an item whose end-of-iteration detection statistic trips the roundoff
  threshold is **ejected** — marked inactive and re-run from its
  pristine input on the scalar :func:`~repro.core.ft_hessenberg.ft_gehrd`
  escalation ladder (recovery semantics unchanged);
* an item carrying *any* fault plan finishes on the scalar ladder even
  if nothing tripped in-batch (the Σ test is structurally blind to
  area-3 faults, and the scalar driver owns the audit/Q-check machinery
  that handles them), so a fault can never silently ride the fast path;
* fault plans outside the batchable surface (non-``boundary`` phases, or
  spaces other than the encoded matrix) are pre-ejected and never enter
  the stack at all.

Per-item ops in the stacked kernels cannot cross-contaminate — item b's
GEMM reads only item b's slice — so an ejected item's garbage state is
harmlessly carried to the end of the stacked loop while the remaining
items complete untouched.

Clean items share one metadata-mode pricing run: a clean functional
``ft_gehrd`` schedules exactly the ops metadata mode prices (no
detections, no recovery), so ``seconds``/``timeline`` are identical —
one :func:`ft_gehrd` call in metadata mode prices the whole batch.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FTConfig
from repro.core.ft_hessenberg import ft_gehrd
from repro.core.hybrid_hessenberg import iteration_plan_cached
from repro.core.results import FTResult
from repro.errors import ShapeError
from repro.faults.injector import FaultInjector, InjectionTargets
from repro.linalg.flops import FlopCounter
from repro.linalg import flops as F
from repro.linalg.gehrd import DEFAULT_NB, DEFAULT_NX, HessenbergFactorization
from repro.linalg.verify import one_norm
from repro.perf.workspace import Workspace
from repro.utils.precision import as_lane_matrix

from repro.batch.panel import lahr2_batched
from repro.batch.stack import EncodedMatrixBatch, as_item_f_stack
from repro.batch.updates import (
    apply_left_update_batched,
    apply_right_updates_batched,
    gehd2_batched,
    left_update_encoded_batched,
    right_update_encoded_batched,
    v_col_checksums_batched,
    y_col_checksums_batched,
)

#: Fault surface the stacked loop can apply itself; everything else
#: pre-ejects to the scalar driver (which owns the full adversarial
#: surface — taus, checkpoints, live panels, Q checksums, mid-iteration
#: phases).
_BATCHABLE_SPACES = ("matrix", "row_checksum", "col_checksum")


def _batch_safe(injector: FaultInjector | None) -> bool:
    if injector is None:
        return True
    return all(
        f.phase == "boundary" and f.space in _BATCHABLE_SPACES
        for f in injector.faults
    )


def _clone(injector: FaultInjector | None) -> FaultInjector | None:
    """A fresh, unfired injector over the same (frozen) fault specs.

    The engine never mutates the caller's injectors: in-batch strikes
    fire on one clone, the scalar re-run gets another, so the ejected
    item replays its full fault plan from a pristine state.
    """
    if injector is None:
        return None
    return FaultInjector(faults=list(injector.faults))


@dataclass
class BatchResult:
    """Outcome of one :func:`ft_gehrd_batched` call.

    ``results[i]`` is the per-item :class:`FTResult` (or ``None`` when
    the item's scalar re-run raised — see ``errors``).  Fast-path items
    carry the shared priced timeline, zero checkpoint traffic and an
    empty per-item flop counter; the batch-level arithmetic is
    accounted once in ``counter`` with B-aware batched counts.
    """

    results: list[FTResult | None]
    ejected: list[int] = field(default_factory=list)
    #: ejection iteration per ejected index: -1 = pre-ejected (unbatchable
    #: fault plan), ``iterations`` = escorted at end-of-batch, otherwise
    #: the iteration whose detection check tripped.
    ejected_at: dict[int, int] = field(default_factory=dict)
    errors: dict[int, BaseException] = field(default_factory=dict)
    counter: FlopCounter = field(default_factory=FlopCounter)
    seconds: float | None = None
    iterations: int = 0

    @property
    def batch_size(self) -> int:
        return len(self.results)

    @property
    def fast_path(self) -> int:
        """Items that completed on the batched fast path."""
        return len(self.results) - len(self.ejected)


def gehrd_batched(
    a_stack: np.ndarray | list[np.ndarray],
    *,
    nb: int = DEFAULT_NB,
    nx: int | None = None,
    counter: FlopCounter | None = None,
    workspace: Workspace | None = None,
) -> list[HessenbergFactorization]:
    """Blocked Hessenberg reduction of B stacked matrices.

    Mirrors :func:`repro.linalg.gehrd.gehrd` step for step — stacked
    panel factorizations, stacked fused right/left updates, stacked
    unblocked clean-up below the crossover — and returns per-item
    factorizations whose packed storage and taus agree with B scalar
    calls byte for byte.  The input is copied; items of the returned
    factorizations are views into one shared stack.
    """
    a = as_item_f_stack(
        as_lane_matrix(a_stack)
        if isinstance(a_stack, np.ndarray)
        else [as_lane_matrix(m) for m in a_stack]
    )
    if a.shape[1] != a.shape[2]:
        raise ShapeError(f"gehrd_batched needs square items, got {a.shape}")
    b, n = a.shape[0], a.shape[1]
    nx = max(nb, nx if nx is not None else DEFAULT_NX)
    taus = np.zeros((b, max(n - 1, 0)), dtype=a.dtype)

    p = 0
    while n - 1 - p > nx:
        ib = min(nb, n - 1 - p)
        pf = lahr2_batched(a, p, ib, n, counter=counter, workspace=workspace)
        taus[:, p : p + ib] = pf.taus

        # right update needs the unit entry of the last reflector in place
        ei = a[:, p + ib, p + ib - 1].copy()
        a[:, p + ib, p + ib - 1] = 1.0
        apply_right_updates_batched(a, pf, n, counter=counter, workspace=workspace)
        a[:, p + ib, p + ib - 1] = ei

        apply_left_update_batched(a, pf, n, counter=counter, workspace=workspace)
        p += ib

    gehd2_batched(a, p, n, taus_out=taus, counter=counter)
    return [
        HessenbergFactorization(a=a[i], taus=taus[i], nb=nb) for i in range(b)
    ]


def _detect_batched(
    emb: EncodedMatrixBatch,
    config: FTConfig,
    norms: np.ndarray,
    active: np.ndarray,
    counter: FlopCounter | None,
) -> np.ndarray:
    """Vectorized end-of-iteration detection: the per-item mirror of
    :meth:`repro.abft.detection.Detector.check` over the active lanes."""
    nn = emb.n
    dtype = emb.ext.dtype
    sre, sce = emb.sum_pairs()
    gaps = emb.cross_gaps() if emb.k > 1 else None
    if config.threshold.needs_m2(dtype):
        # per-item checksum second moment for the variance kind, float64
        # accumulation over the maintained unit banks (see
        # repro.abft.detection.checksum_second_moment)
        rc = np.asarray(emb.ext[:, :nn, nn], dtype=np.float64)
        cc = np.asarray(emb.ext[:, nn, :nn], dtype=np.float64)
        m2s = np.sum(rc * rc, axis=1) + np.sum(cc * cc, axis=1)
    else:
        m2s = None
    if counter is not None:
        counter.add(
            "abft_detect",
            F.batched_flops(int(active.sum()), 2 * emb.k * emb.k * F.dot_flops(emb.n)),
        )
    tripped = np.zeros_like(active)
    for j in np.flatnonzero(active):
        s_r, s_c = float(sre[j]), float(sce[j])
        if not (np.isfinite(s_r) and np.isfinite(s_c)):
            tripped[j] = True
            continue
        if gaps is not None:
            g = gaps[j]
            if not np.all(np.isfinite(g)):
                tripped[j] = True
                continue
            gap = float(np.max(g))
        else:
            gap = abs(s_r - s_c)
        tol = config.threshold.threshold(
            emb.n, float(norms[j]), s_r, s_c, dtype=dtype,
            m2=None if m2s is None else float(m2s[j]),
        )
        if gap > tol:
            tripped[j] = True
    return tripped


def ft_gehrd_batched(
    a_stack: np.ndarray | list[np.ndarray],
    config: FTConfig | None = None,
    *,
    injectors: list[FaultInjector | None] | None = None,
    workspace: Workspace | None = None,
) -> BatchResult:
    """Fault-tolerant Hessenberg reduction of B stacked matrices.

    Clean items run the stacked Algorithm-3 fast path (batched panel,
    batched encoded updates, vectorized detection) and reproduce the
    scalar :func:`ft_gehrd` byte for byte; any item that trips detection
    — and every item carrying a fault plan — is *ejected* and finished
    on the scalar resilience ladder from its pristine input (see the
    module docstring for the full contract).

    Functional mode only: metadata-mode pricing has no per-item Python
    overhead to amortize, so it stays on the scalar driver.
    """
    config = config or FTConfig()
    if not config.functional:
        raise ShapeError(
            "ft_gehrd_batched runs functional mode only; metadata-mode "
            "pricing has nothing to batch — call ft_gehrd(n, config) instead"
        )
    stack = as_item_f_stack(
        as_lane_matrix(a_stack)
        if isinstance(a_stack, np.ndarray)
        else [as_lane_matrix(m) for m in a_stack]
    )
    if stack.shape[1] != stack.shape[2]:
        raise ShapeError(f"ft_gehrd_batched needs square items, got {stack.shape}")
    b, n = stack.shape[0], stack.shape[1]
    config.validate(n)
    injs: list[FaultInjector | None] = (
        list(injectors) if injectors is not None else [None] * b
    )
    if len(injs) != b:
        raise ShapeError(f"got {len(injs)} injectors for a batch of {b}")

    counter = FlopCounter()
    plan = iteration_plan_cached(n, config.nb)
    total = len(plan)
    results: list[FTResult | None] = [None] * b
    errors: dict[int, BaseException] = {}
    ejected_at: dict[int, int] = {}
    seconds: float | None = None

    safe = [_batch_safe(inj) for inj in injs]
    batch_idx = [i for i in range(b) if safe[i]]
    for i in range(b):
        if not safe[i]:
            ejected_at[i] = -1  # unbatchable fault plan: scalar from the start

    if batch_idx:
        # one metadata-mode run prices every clean item: a clean
        # functional run schedules exactly the ops metadata mode prices
        priced = ft_gehrd(n, dataclasses.replace(config, functional=False))
        seconds = priced.seconds
        norms = np.array(
            [one_norm(np.asarray(stack[i], dtype=np.float64)) for i in batch_idx]
        )
        emb = EncodedMatrixBatch(
            stack[batch_idx], channels=config.channels, counter=counter
        )
        taus_b = np.zeros((len(batch_idx), max(n - 1, 0)), dtype=emb.ext.dtype)
        clones = [_clone(injs[i]) for i in batch_idx]
        active = np.ones(len(batch_idx), dtype=bool)
        checks_done = 0

        for it, (p, ib) in enumerate(plan):
            for j, gi in enumerate(batch_idx):
                if active[j] and clones[j] is not None:
                    clones[j].apply_phase(
                        it, "boundary", InjectionTargets(em=emb.item(j))
                    )
            pf = lahr2_batched(
                emb.ext, p, ib, n, counter=counter, workspace=workspace
            )
            vce = v_col_checksums_batched(pf, emb, counter=counter)
            ychk = y_col_checksums_batched(emb, pf, counter=counter)
            right_update_encoded_batched(
                emb, pf, vce, ychk, counter=counter, workspace=workspace
            )
            left_update_encoded_batched(
                emb, pf, vce, counter=counter, workspace=workspace
            )
            emb.refresh_finished_segment(p, ib, counter=counter)
            taus_b[:, p : p + ib] = pf.taus

            check_here = (it % config.detect_every == 0) or (it == total - 1)
            if check_here:
                checks_done += 1
                tripped = _detect_batched(emb, config, norms, active, counter)
                for j in np.flatnonzero(tripped):
                    active[j] = False
                    ejected_at[batch_idx[j]] = it

        # a fault plan that never tripped the Σ test (area-3 / masked /
        # scheduled past the end) must still finish on the scalar driver
        for j, gi in enumerate(batch_idx):
            if active[j] and injs[gi] is not None:
                active[j] = False
                ejected_at[gi] = total

        for j, gi in enumerate(batch_idx):
            if active[j]:
                results[gi] = FTResult(
                    n=n,
                    nb=config.nb,
                    a=emb.item(j).data,
                    taus=taus_b[j],
                    timeline=priced.timeline,
                    seconds=priced.seconds,
                    counter=FlopCounter(),
                    iterations=total,
                    recoveries=[],
                    q_report=None,
                    detections=0,
                    checks=checks_done,
                )

    # scalar re-runs: every ejected item restarts from its pristine input
    # on the full resilience ladder, with a fresh injector clone so the
    # complete fault plan replays (recovery semantics unchanged)
    for i in range(b):
        if results[i] is not None:
            continue
        try:
            results[i] = ft_gehrd(
                stack[i].copy(order="F"),
                config,
                injector=_clone(injs[i]),
                workspace=workspace,
            )
        except Exception as exc:  # item-level failure stays item-level
            errors[i] = exc

    return BatchResult(
        results=results,
        ejected=sorted(ejected_at),
        ejected_at=ejected_at,
        errors=errors,
        counter=counter,
        seconds=seconds,
        iterations=total,
    )
