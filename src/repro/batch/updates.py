"""Batched trailing-matrix updates: checksum-extended and plain.

Each routine is the stacked mirror of its scalar counterpart's *fused*
path (the workspace/BLAS path every production driver takes):

* :func:`right_update_encoded_batched` /
  :func:`left_update_encoded_batched` mirror
  :mod:`repro.abft.checksums`' in-place GEMM forms — the stacked
  ``[Y; Ychk][V2; Vce]^T`` product and the fully-fused FT-GEMM left
  apply (active-row-window projection, ``Vce`` stacked into the
  checksum rows of ``v_full`` so data and checksum rows ride the same
  apply GEMM);
* :func:`apply_right_updates_batched` / :func:`apply_left_update_batched`
  mirror :mod:`repro.linalg.gehrd`'s fused updates;
* :func:`gehd2_batched` is the stacked unblocked clean-up pass
  (DGEHD2): per column, one batched reflector generation plus the
  right/left similarity applications as stacked outer-product updates.

The apply products run as in-place per-item ``dgemm(alpha=-1, beta=1)``
calls straight into the F-contiguous item slices of the stacks — no
full-size ``prod``/``wrow`` temporaries, no extra memory sweep.  When
scipy's BLAS wrapper is unavailable (or a caller hands a stack whose
item slices are not F-contiguous) the kernels fall back to ``C -= A@B``
through a pooled scratch stack, which is bit-identical to the in-place
form (IEEE addition of the negated product — same per-element
operations, same accumulation order inside the per-item GEMM).  Either
way the batched fast path stays byte-compatible with the scalar
drivers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.linalg import flops as F
from repro.linalg.flops import FlopCounter
from repro.perf.workspace import DGEMM, Workspace, gemm_inplace

from repro.batch.panel import PanelFactorsBatch, larfg_batched
from repro.batch.stack import EncodedMatrixBatch, stack_buf


def _item_gemm_ok(stack: np.ndarray) -> bool:
    """True when the per-item in-place DGEMM path may run on *stack*:
    the BLAS wrapper is importable and the item slices are F-contiguous
    (always the case for full-column slices of ``fstack`` storage)."""
    return DGEMM is not None and (len(stack) == 0 or stack[0].flags.f_contiguous)

# ---------------------------------------------------------------------------
# checksum-extended updates (stacked repro.abft.checksums)
# ---------------------------------------------------------------------------


def v_col_checksums_batched(
    pf: PanelFactorsBatch,
    emb: EncodedMatrixBatch,
    *,
    counter: FlopCounter | None = None,
) -> np.ndarray:
    """Stacked ``Vchk = W^T V`` — (B, k, ib) weighted column checksums
    of every item's Householder block."""
    b, m = pf.v.shape[0], pf.v.shape[1]
    if emb.k == 1:
        if counter is not None:
            counter.add("abft_maintain", F.batched_flops(b, F.gemv_flops(pf.ib, m)))
        return np.matmul(np.ones(m, dtype=pf.v.dtype)[None, None, :], pf.v)
    w = emb.weights[:, pf.p + 1 : pf.p + 1 + m]
    if counter is not None:
        counter.add("abft_maintain", F.batched_flops(b, emb.k * F.gemv_flops(pf.ib, m)))
    return np.matmul(w[None], pf.v)


def y_col_checksums_batched(
    emb: EncodedMatrixBatch,
    pf: PanelFactorsBatch,
    *,
    counter: FlopCounter | None = None,
) -> np.ndarray:
    """Stacked ``Ychk = W^T Y`` (B, k, ib) from the maintained checksums
    (the independent-channel property of the scalar kernel holds per
    item)."""
    p, n = pf.p, emb.n
    w = np.matmul(emb.ext[:, n:, p + 1 : n], pf.v)
    w = np.matmul(w, pf.t)
    if counter is not None:
        counter.add(
            "abft_maintain",
            F.batched_flops(
                emb.b, emb.k * (F.gemv_flops(pf.ib, n - p - 1) + F.trmv_flops(pf.ib))
            ),
        )
    return w


def _check_blocks(
    emb: EncodedMatrixBatch, pf: PanelFactorsBatch, vce: np.ndarray, ychk
) -> None:
    if vce.shape != (emb.b, emb.k, pf.ib):
        raise ShapeError(
            f"Vce stack must be ({emb.b}, {emb.k}, {pf.ib}), got {vce.shape}"
        )
    if ychk is not None and ychk.shape != (emb.b, emb.k, pf.ib):
        raise ShapeError(
            f"Ychk stack must be ({emb.b}, {emb.k}, {pf.ib}), got {ychk.shape}"
        )


def right_update_encoded_batched(
    emb: EncodedMatrixBatch,
    pf: PanelFactorsBatch,
    vce: np.ndarray,
    ychk: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    workspace: Workspace | None = None,
) -> None:
    """Stacked checksum-extended right update (Algorithm 3 lines 8+10),
    mirroring the fused scalar kernel: one stacked
    ``ext[:, :, p+ib:] -= [Y; Ychk] [V2; Vce]^T`` plus the in-panel
    top-rows correction.  The (k x k) corners absorb ``Ychk Vce^T`` —
    scratch by contract, as in the scalar storage."""
    n, p, ib, k, b = emb.n, pf.p, pf.ib, emb.k, emb.b
    _check_blocks(emb, pf, vce, ychk)
    if counter is not None:
        # mirrors the scalar kernel's FT-GEMM accounting: checksum
        # columns/rows are operand extensions of the fused apply GEMM.
        counter.add("right_update", F.batched_flops(b, F.gemm_flops(n, n - p - ib, ib)))
        counter.add("abft_maintain", F.batched_flops(b, F.gemm_flops(n, k, ib)))
        if ib > 1:
            counter.add(
                "right_update", F.batched_flops(b, F.trmm_flops(p + 1, ib - 1, False))
            )
        counter.add(
            "abft_maintain", F.batched_flops(b, F.abft_fused_rows_flops(k, n - p - ib, ib))
        )

    nt = n - p - ib
    dt = emb.ext.dtype
    yce = stack_buf(workspace, "bupd.yce", b, n + k, ib, dtype=dt)
    yce[:, :n, :] = pf.y
    yce[:, n:, :] = ychk
    v2ce = stack_buf(workspace, "bupd.v2ce", b, nt + k, ib, dtype=dt)
    v2ce[:, :nt, :] = pf.v[:, ib - 1 :, :]
    v2ce[:, nt:, :] = vce
    cfull = emb.ext[:, :, p + ib : n + k]
    if _item_gemm_ok(cfull):
        for i in range(b):
            gemm_inplace(-1.0, yce[i], v2ce[i], cfull[i], trans_b=True)
    else:
        prod = stack_buf(workspace, "bupd.right_prod", b, n + k, nt + k, dtype=dt)
        np.matmul(yce, v2ce.transpose(0, 2, 1), out=prod)
        cfull -= prod
    if ib > 1:
        w = stack_buf(workspace, "bupd.panel_top", b, p + 1, ib - 1, dtype=dt)
        np.matmul(
            pf.y[:, 0 : p + 1, : ib - 1],
            pf.v[:, : ib - 1, : ib - 1].transpose(0, 2, 1),
            out=w,
        )
        emb.ext[:, 0 : p + 1, p + 1 : p + ib] -= w


def left_update_encoded_batched(
    emb: EncodedMatrixBatch,
    pf: PanelFactorsBatch,
    vce: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    workspace: Workspace | None = None,
) -> None:
    """Stacked checksum-extended left update (Algorithm 3 line 11) in
    the fully-fused FT-GEMM form of the scalar kernel: the projection
    ``W = T^T (V^T C)`` runs on the active row window ``[p+1, n)`` (the
    reference operands), then ``Vce`` is written into the checksum rows
    of ``v_full`` so the single apply product updates data rows and
    checksum rows together — zero separate checksum-row matmuls.  The
    (k x k) corners absorb the ``Vce W`` spill over the checksum columns
    (scratch by contract); ``v_full``'s zero-row contract is restored
    before returning."""
    n, p, ib, k, b = emb.n, pf.p, pf.ib, emb.k, emb.b
    _check_blocks(emb, pf, vce, None)
    if counter is not None:
        m = n - p - 1
        ncols = n + k - (p + ib)
        counter.add(
            "left_update",
            F.batched_flops(
                b,
                F.gemm_flops(ib, ncols, m)
                + F.trmm_flops(ib, ncols, True)
                + F.gemm_flops(m, ncols, ib),
            ),
        )
        counter.add(
            "abft_maintain", F.batched_flops(b, F.abft_fused_rows_flops(k, ncols, ib))
        )

    cfull = emb.ext[:, :, p + ib : n + k]
    ncf = n + k - (p + ib)
    rows = emb.ext.shape[1]
    dt = emb.ext.dtype
    # per-item C-ordered intermediates mirror the scalar kernel's buffer
    # order — the projection chain must see the reference's exact BLAS
    # dispatch to keep the batched bytes equal to the scalar ones
    if workspace is not None:
        w1 = workspace.buf("bupd.w1c", (b, ib, ncf), order="C", dtype=dt)
        w2 = workspace.buf("bupd.w2c", (b, ib, ncf), order="C", dtype=dt)
    else:
        w1 = np.empty((b, ib, ncf), dtype=dt)
        w2 = np.empty((b, ib, ncf), dtype=dt)
    np.matmul(pf.v.transpose(0, 2, 1), emb.ext[:, p + 1 : n, p + ib : n + k], out=w1)
    np.matmul(pf.t.transpose(0, 2, 1), w1, out=w2)
    pf.v_full[:, n:, :] = vce
    try:
        if _item_gemm_ok(cfull):
            for i in range(b):
                gemm_inplace(-1.0, pf.v_full[i], w2[i], cfull[i])
        else:
            prod = stack_buf(workspace, "bupd.left_prod", b, rows, ncf, dtype=dt)
            np.matmul(pf.v_full, w2, out=prod)
            cfull -= prod
    finally:
        pf.v_full[:, n:, :] = 0.0


# ---------------------------------------------------------------------------
# plain updates (stacked repro.linalg.gehrd)
# ---------------------------------------------------------------------------


def apply_right_updates_batched(
    a: np.ndarray,
    pf: PanelFactorsBatch,
    n: int,
    *,
    counter: FlopCounter | None = None,
    category: str = "right_update",
    workspace: Workspace | None = None,
) -> None:
    """Stacked mirror of :func:`repro.linalg.gehrd.apply_right_updates`
    (the fused path): trailing columns plus the in-panel top rows."""
    p, ib, b = pf.p, pf.ib, a.shape[0]
    if p + ib < n:
        v2 = pf.v[:, ib - 1 :, :]
        target = a[:, 0:n, p + ib : n]
        if _item_gemm_ok(target):
            for i in range(b):
                gemm_inplace(-1.0, pf.y[i], v2[i], target[i], trans_b=True)
        else:
            prod = stack_buf(
                workspace, "bupd.right_prod", b, n, n - p - ib, dtype=a.dtype
            )
            np.matmul(pf.y, v2.transpose(0, 2, 1), out=prod)
            target -= prod
        if counter is not None:
            counter.add(category, F.batched_flops(b, F.gemm_flops(n, n - p - ib, ib)))
    if ib > 1 and p + 1 > 0:
        v1 = pf.v[:, : ib - 1, : ib - 1]
        w = stack_buf(workspace, "bupd.panel_top", b, p + 1, ib - 1, dtype=a.dtype)
        np.matmul(pf.y[:, 0 : p + 1, : ib - 1], v1.transpose(0, 2, 1), out=w)
        a[:, 0 : p + 1, p + 1 : p + ib] -= w
        if counter is not None:
            counter.add(
                category,
                F.batched_flops(b, F.trmm_flops(p + 1, ib - 1, False) + (p + 1) * (ib - 1)),
            )


def apply_left_update_batched(
    a: np.ndarray,
    pf: PanelFactorsBatch,
    n: int,
    ncols: int | None = None,
    *,
    counter: FlopCounter | None = None,
    category: str = "left_update",
    workspace: Workspace | None = None,
) -> None:
    """Stacked mirror of :func:`repro.linalg.gehrd.apply_left_update`'s
    fused form: the projection runs on the active row window
    ``[p+1, n)`` and the padded apply ``C -= V_full W`` lands in-place
    on the full-column item slices."""
    p, ib, b = pf.p, pf.ib, a.shape[0]
    ncols = a.shape[2] if ncols is None else ncols
    if p + ib >= ncols:
        return
    cfull = a[:, :, p + ib : ncols]
    ncf = ncols - (p + ib)
    w1 = stack_buf(workspace, "bupd.w1", b, ib, ncf, dtype=a.dtype)
    w2 = stack_buf(workspace, "bupd.w2", b, ib, ncf, dtype=a.dtype)
    np.matmul(pf.v.transpose(0, 2, 1), a[:, p + 1 : n, p + ib : ncols], out=w1)
    np.matmul(pf.t.transpose(0, 2, 1), w1, out=w2)
    if _item_gemm_ok(cfull):
        for i in range(b):
            gemm_inplace(-1.0, pf.v_full[i], w2[i], cfull[i])
    else:
        prod = stack_buf(workspace, "bupd.left_prod", b, a.shape[1], ncf, dtype=a.dtype)
        np.matmul(pf.v_full, w2, out=prod)
        cfull -= prod
    if counter is not None:
        m = n - p - 1
        counter.add(
            category,
            F.batched_flops(
                b,
                F.gemm_flops(ib, ncf, m)
                + F.trmm_flops(ib, ncf, True)
                + F.gemm_flops(m, ncf, ib),
            ),
        )


def _masked_subtract(c: np.ndarray, upd: np.ndarray, active: np.ndarray) -> None:
    """``c -= upd`` restricted to active items.

    The scalar ``larf_*`` kernels skip the whole update when ``tau == 0``
    (the identity reflector); subtracting an exact-zero product is
    *almost* the same but can flip the sign of a -0.0 entry, so the
    masked form preserves byte-parity for zero-norm columns.
    """
    if active.all():
        c -= upd
    else:
        np.subtract(c, upd, out=c, where=active[:, None, None])


def gehd2_batched(
    a: np.ndarray,
    ilo: int = 0,
    ihi: int | None = None,
    *,
    taus_out: np.ndarray | None = None,
    counter: FlopCounter | None = None,
    category: str = "gehd2",
) -> np.ndarray:
    """Stacked unblocked Hessenberg reduction (mirrors
    :func:`repro.linalg.gehd2.gehd2` column for column).

    Reduces columns ``ilo .. ihi-2`` of every item in place and returns
    the (B, ncols-1) tau stack.
    """
    b = a.shape[0]
    n = a.shape[1] if ihi is None else ihi
    if ihi is None:
        if a.shape[1] != a.shape[2]:
            raise ShapeError(f"gehd2_batched needs square items, got {a.shape}")
    if not (0 <= ilo <= n <= a.shape[1]):
        raise ShapeError(f"invalid range ilo={ilo}, ihi={n} for stack {a.shape}")

    ncols = a.shape[2]
    taus = (
        taus_out
        if taus_out is not None
        else np.zeros((b, max(ncols - 1, 0)), dtype=a.dtype)
    )
    for i in range(ilo, n - 1):
        beta, tau = larfg_batched(
            a[:, i + 1, i], a[:, i + 2 : n, i], counter=counter, category=category
        )
        active = tau != 0.0
        a[:, i + 1, i] = 1.0
        u = a[:, i + 1 : n, i]  # (B, m) explicit reflector vectors
        # right similarity: C <- C - tau (C u) u^T  over rows 0..n
        c = a[:, 0:n, i + 1 : n]
        w = np.matmul(c, u[:, :, None])  # (B, n, 1)
        _masked_subtract(c, tau[:, None, None] * (w * u[:, None, :]), active)
        # left similarity: C <- C - tau u (u^T C)  over rows i+1..n
        c2 = a[:, i + 1 : n, i + 1 : ncols]
        w2 = np.matmul(u[:, None, :], c2)  # (B, 1, m2)
        _masked_subtract(c2, tau[:, None, None] * (u[:, :, None] * w2), active)
        a[:, i + 1, i] = beta
        taus[:, i] = tau
        if counter is not None:
            # the scalar larf kernels count nothing for identity
            # reflectors (tau == 0), so scale by the active item count
            counter.add(
                category,
                F.batched_flops(
                    int(active.sum()),
                    4 * c.shape[1] * c.shape[2] + 4 * c2.shape[1] * c2.shape[2],
                ),
            )
    return taus
