"""Batched trailing-matrix updates: checksum-extended and plain.

Each routine is the stacked mirror of its scalar counterpart's *fused*
path (the workspace/BLAS path every production driver takes):

* :func:`right_update_encoded_batched` /
  :func:`left_update_encoded_batched` mirror
  :mod:`repro.abft.checksums`' in-place GEMM forms — the stacked
  ``[Y; Ychk][V2; Vce]^T`` product, the padded ``V_full (T^T V_full^T C)``
  left apply, and the checksum-row corrections;
* :func:`apply_right_updates_batched` / :func:`apply_left_update_batched`
  mirror :mod:`repro.linalg.gehrd`'s fused updates;
* :func:`gehd2_batched` is the stacked unblocked clean-up pass
  (DGEHD2): per column, one batched reflector generation plus the
  right/left similarity applications as stacked outer-product updates.

``C -= A @ B^T`` into a scratch stack followed by an in-place subtract
is bit-identical to the scalar ``dgemm(alpha=-1, beta=1)`` calls (IEEE
addition of the negated product — same per-element operations, same
accumulation order inside the per-item GEMM), which keeps the batched
fast path byte-compatible with the scalar drivers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.linalg import flops as F
from repro.linalg.flops import FlopCounter
from repro.perf.workspace import Workspace

from repro.batch.panel import PanelFactorsBatch, larfg_batched
from repro.batch.stack import EncodedMatrixBatch, stack_buf

# ---------------------------------------------------------------------------
# checksum-extended updates (stacked repro.abft.checksums)
# ---------------------------------------------------------------------------


def v_col_checksums_batched(
    pf: PanelFactorsBatch,
    emb: EncodedMatrixBatch,
    *,
    counter: FlopCounter | None = None,
) -> np.ndarray:
    """Stacked ``Vchk = W^T V`` — (B, k, ib) weighted column checksums
    of every item's Householder block."""
    b, m = pf.v.shape[0], pf.v.shape[1]
    if emb.k == 1:
        if counter is not None:
            counter.add("abft_maintain", F.batched_flops(b, F.gemv_flops(pf.ib, m)))
        return np.matmul(np.ones(m, dtype=pf.v.dtype)[None, None, :], pf.v)
    w = emb.weights[:, pf.p + 1 : pf.p + 1 + m]
    if counter is not None:
        counter.add("abft_maintain", F.batched_flops(b, emb.k * F.gemv_flops(pf.ib, m)))
    return np.matmul(w[None], pf.v)


def y_col_checksums_batched(
    emb: EncodedMatrixBatch,
    pf: PanelFactorsBatch,
    *,
    counter: FlopCounter | None = None,
) -> np.ndarray:
    """Stacked ``Ychk = W^T Y`` (B, k, ib) from the maintained checksums
    (the independent-channel property of the scalar kernel holds per
    item)."""
    p, n = pf.p, emb.n
    w = np.matmul(emb.ext[:, n:, p + 1 : n], pf.v)
    w = np.matmul(w, pf.t)
    if counter is not None:
        counter.add(
            "abft_maintain",
            F.batched_flops(
                emb.b, emb.k * (F.gemv_flops(pf.ib, n - p - 1) + F.trmv_flops(pf.ib))
            ),
        )
    return w


def _check_blocks(
    emb: EncodedMatrixBatch, pf: PanelFactorsBatch, vce: np.ndarray, ychk
) -> None:
    if vce.shape != (emb.b, emb.k, pf.ib):
        raise ShapeError(
            f"Vce stack must be ({emb.b}, {emb.k}, {pf.ib}), got {vce.shape}"
        )
    if ychk is not None and ychk.shape != (emb.b, emb.k, pf.ib):
        raise ShapeError(
            f"Ychk stack must be ({emb.b}, {emb.k}, {pf.ib}), got {ychk.shape}"
        )


def right_update_encoded_batched(
    emb: EncodedMatrixBatch,
    pf: PanelFactorsBatch,
    vce: np.ndarray,
    ychk: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    workspace: Workspace | None = None,
) -> None:
    """Stacked checksum-extended right update (Algorithm 3 lines 8+10),
    mirroring the fused scalar kernel: one stacked
    ``ext[:, :, p+ib:] -= [Y; Ychk] [V2; Vce]^T`` plus the in-panel
    top-rows correction.  The (k x k) corners absorb ``Ychk Vce^T`` —
    scratch by contract, as in the scalar storage."""
    n, p, ib, k, b = emb.n, pf.p, pf.ib, emb.k, emb.b
    _check_blocks(emb, pf, vce, ychk)
    if counter is not None:
        counter.add("right_update", F.batched_flops(b, F.gemm_flops(n, n - p - ib, ib)))
        counter.add("abft_maintain", F.batched_flops(b, k * F.gemv_flops(n, ib)))
        if ib > 1:
            counter.add(
                "right_update", F.batched_flops(b, F.trmm_flops(p + 1, ib - 1, False))
            )
        counter.add("abft_maintain", F.batched_flops(b, k * F.gemv_flops(n - p - ib, ib)))

    nt = n - p - ib
    dt = emb.ext.dtype
    yce = stack_buf(workspace, "bupd.yce", b, n + k, ib, dtype=dt)
    yce[:, :n, :] = pf.y
    yce[:, n:, :] = ychk
    v2ce = stack_buf(workspace, "bupd.v2ce", b, nt + k, ib, dtype=dt)
    v2ce[:, :nt, :] = pf.v[:, ib - 1 :, :]
    v2ce[:, nt:, :] = vce
    prod = stack_buf(workspace, "bupd.right_prod", b, n + k, nt + k, dtype=dt)
    np.matmul(yce, v2ce.transpose(0, 2, 1), out=prod)
    emb.ext[:, :, p + ib : n + k] -= prod
    if ib > 1:
        w = stack_buf(workspace, "bupd.panel_top", b, p + 1, ib - 1, dtype=dt)
        np.matmul(
            pf.y[:, 0 : p + 1, : ib - 1],
            pf.v[:, : ib - 1, : ib - 1].transpose(0, 2, 1),
            out=w,
        )
        emb.ext[:, 0 : p + 1, p + 1 : p + ib] -= w


def left_update_encoded_batched(
    emb: EncodedMatrixBatch,
    pf: PanelFactorsBatch,
    vce: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    workspace: Workspace | None = None,
) -> None:
    """Stacked checksum-extended left update (Algorithm 3 line 11) in
    the padded full-column form: ``C -= V_full (T^T (V_full^T C))`` over
    the trailing extended columns, plus the checksum-row correction."""
    n, p, ib, k, b = emb.n, pf.p, pf.ib, emb.k, emb.b
    _check_blocks(emb, pf, vce, None)
    if counter is not None:
        m = n - p - 1
        ncols = n + k - (p + ib)
        counter.add(
            "left_update",
            F.batched_flops(
                b,
                F.gemm_flops(ib, ncols, m)
                + F.trmm_flops(ib, ncols, True)
                + F.gemm_flops(m, ncols, ib),
            ),
        )
        counter.add("abft_maintain", F.batched_flops(b, k * F.gemv_flops(ncols, ib)))

    cfull = emb.ext[:, :, p + ib : n + k]
    ncf = n + k - (p + ib)
    rows = emb.ext.shape[1]
    dt = emb.ext.dtype
    w1 = stack_buf(workspace, "bupd.w1", b, ib, ncf, dtype=dt)
    w2 = stack_buf(workspace, "bupd.w2", b, ib, ncf, dtype=dt)
    np.matmul(pf.v_full.transpose(0, 2, 1), cfull, out=w1)
    np.matmul(pf.t.transpose(0, 2, 1), w1, out=w2)
    prod = stack_buf(workspace, "bupd.left_prod", b, rows, ncf, dtype=dt)
    np.matmul(pf.v_full, w2, out=prod)
    cfull -= prod
    wrow = stack_buf(workspace, "bupd.wrow", b, k, n - p - ib, dtype=dt)
    np.matmul(vce, w2[:, :, : n - p - ib], out=wrow)
    emb.ext[:, n:, p + ib : n] -= wrow


# ---------------------------------------------------------------------------
# plain updates (stacked repro.linalg.gehrd)
# ---------------------------------------------------------------------------


def apply_right_updates_batched(
    a: np.ndarray,
    pf: PanelFactorsBatch,
    n: int,
    *,
    counter: FlopCounter | None = None,
    category: str = "right_update",
    workspace: Workspace | None = None,
) -> None:
    """Stacked mirror of :func:`repro.linalg.gehrd.apply_right_updates`
    (the fused path): trailing columns plus the in-panel top rows."""
    p, ib, b = pf.p, pf.ib, a.shape[0]
    if p + ib < n:
        v2 = pf.v[:, ib - 1 :, :]
        prod = stack_buf(workspace, "bupd.right_prod", b, n, n - p - ib, dtype=a.dtype)
        np.matmul(pf.y, v2.transpose(0, 2, 1), out=prod)
        a[:, 0:n, p + ib : n] -= prod
        if counter is not None:
            counter.add(category, F.batched_flops(b, F.gemm_flops(n, n - p - ib, ib)))
    if ib > 1 and p + 1 > 0:
        v1 = pf.v[:, : ib - 1, : ib - 1]
        w = stack_buf(workspace, "bupd.panel_top", b, p + 1, ib - 1, dtype=a.dtype)
        np.matmul(pf.y[:, 0 : p + 1, : ib - 1], v1.transpose(0, 2, 1), out=w)
        a[:, 0 : p + 1, p + 1 : p + ib] -= w
        if counter is not None:
            counter.add(
                category,
                F.batched_flops(b, F.trmm_flops(p + 1, ib - 1, False) + (p + 1) * (ib - 1)),
            )


def apply_left_update_batched(
    a: np.ndarray,
    pf: PanelFactorsBatch,
    n: int,
    ncols: int | None = None,
    *,
    counter: FlopCounter | None = None,
    category: str = "left_update",
    workspace: Workspace | None = None,
) -> None:
    """Stacked mirror of :func:`repro.linalg.gehrd.apply_left_update`'s
    fused padded form: ``C -= V_full (T^T (V_full^T C))`` over the
    trailing full columns."""
    p, ib, b = pf.p, pf.ib, a.shape[0]
    ncols = a.shape[2] if ncols is None else ncols
    if p + ib >= ncols:
        return
    cfull = a[:, :, p + ib : ncols]
    ncf = ncols - (p + ib)
    w1 = stack_buf(workspace, "bupd.w1", b, ib, ncf, dtype=a.dtype)
    w2 = stack_buf(workspace, "bupd.w2", b, ib, ncf, dtype=a.dtype)
    np.matmul(pf.v_full.transpose(0, 2, 1), cfull, out=w1)
    np.matmul(pf.t.transpose(0, 2, 1), w1, out=w2)
    prod = stack_buf(workspace, "bupd.left_prod", b, a.shape[1], ncf, dtype=a.dtype)
    np.matmul(pf.v_full, w2, out=prod)
    cfull -= prod
    if counter is not None:
        m = n - p - 1
        counter.add(
            category,
            F.batched_flops(
                b,
                F.gemm_flops(ib, ncf, m)
                + F.trmm_flops(ib, ncf, True)
                + F.gemm_flops(m, ncf, ib),
            ),
        )


def _masked_subtract(c: np.ndarray, upd: np.ndarray, active: np.ndarray) -> None:
    """``c -= upd`` restricted to active items.

    The scalar ``larf_*`` kernels skip the whole update when ``tau == 0``
    (the identity reflector); subtracting an exact-zero product is
    *almost* the same but can flip the sign of a -0.0 entry, so the
    masked form preserves byte-parity for zero-norm columns.
    """
    if active.all():
        c -= upd
    else:
        np.subtract(c, upd, out=c, where=active[:, None, None])


def gehd2_batched(
    a: np.ndarray,
    ilo: int = 0,
    ihi: int | None = None,
    *,
    taus_out: np.ndarray | None = None,
    counter: FlopCounter | None = None,
    category: str = "gehd2",
) -> np.ndarray:
    """Stacked unblocked Hessenberg reduction (mirrors
    :func:`repro.linalg.gehd2.gehd2` column for column).

    Reduces columns ``ilo .. ihi-2`` of every item in place and returns
    the (B, ncols-1) tau stack.
    """
    b = a.shape[0]
    n = a.shape[1] if ihi is None else ihi
    if ihi is None:
        if a.shape[1] != a.shape[2]:
            raise ShapeError(f"gehd2_batched needs square items, got {a.shape}")
    if not (0 <= ilo <= n <= a.shape[1]):
        raise ShapeError(f"invalid range ilo={ilo}, ihi={n} for stack {a.shape}")

    ncols = a.shape[2]
    taus = (
        taus_out
        if taus_out is not None
        else np.zeros((b, max(ncols - 1, 0)), dtype=a.dtype)
    )
    for i in range(ilo, n - 1):
        beta, tau = larfg_batched(
            a[:, i + 1, i], a[:, i + 2 : n, i], counter=counter, category=category
        )
        active = tau != 0.0
        a[:, i + 1, i] = 1.0
        u = a[:, i + 1 : n, i]  # (B, m) explicit reflector vectors
        # right similarity: C <- C - tau (C u) u^T  over rows 0..n
        c = a[:, 0:n, i + 1 : n]
        w = np.matmul(c, u[:, :, None])  # (B, n, 1)
        _masked_subtract(c, tau[:, None, None] * (w * u[:, None, :]), active)
        # left similarity: C <- C - tau u (u^T C)  over rows i+1..n
        c2 = a[:, i + 1 : n, i + 1 : ncols]
        w2 = np.matmul(u[:, None, :], c2)  # (B, 1, m2)
        _masked_subtract(c2, tau[:, None, None] * (u[:, :, None] * w2), active)
        a[:, i + 1, i] = beta
        taus[:, i] = tau
        if counter is not None:
            # the scalar larf kernels count nothing for identity
            # reflectors (tau == 0), so scale by the active item count
            counter.add(
                category,
                F.batched_flops(
                    int(active.sum()),
                    4 * c.shape[1] * c.shape[2] + 4 * c2.shape[1] * c2.shape[2],
                ),
            )
    return taus
