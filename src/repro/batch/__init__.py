"""Batched FT-Hessenberg engine: stacked small-n kernels.

Reduces a stack of B same-shape matrices through 3-D NumPy ops,
amortizing the per-column Python overhead that dominates small-n
throughput (the MAGMA-lineage "batched execution" answer to
small-problem traffic on hybrid machines).  The stacked kernels mirror
the scalar ones call for call and reproduce them **byte for byte** on
the fault-free fast path; anything needing recovery is ejected to the
scalar resilience ladder.  See :mod:`repro.batch.driver` for the full
ejection contract.
"""

from repro.batch.stack import (
    EncodedMatrixBatch,
    as_item_f_stack,
    fstack,
    stack_buf,
)
from repro.batch.panel import PanelFactorsBatch, lahr2_batched, larfg_batched
from repro.batch.updates import (
    apply_left_update_batched,
    apply_right_updates_batched,
    gehd2_batched,
    left_update_encoded_batched,
    right_update_encoded_batched,
    v_col_checksums_batched,
    y_col_checksums_batched,
)
from repro.batch.driver import BatchResult, ft_gehrd_batched, gehrd_batched
from repro.batch.backend_lane import (
    BackendStackResult,
    ft_gehrd_stack,
    gehrd_stack,
)
from repro.batch.qform import (
    extract_hessenberg_batched,
    factorization_residuals_batched,
    orghr_batched,
)

__all__ = [
    "EncodedMatrixBatch",
    "as_item_f_stack",
    "fstack",
    "stack_buf",
    "PanelFactorsBatch",
    "lahr2_batched",
    "larfg_batched",
    "apply_left_update_batched",
    "apply_right_updates_batched",
    "gehd2_batched",
    "left_update_encoded_batched",
    "right_update_encoded_batched",
    "v_col_checksums_batched",
    "y_col_checksums_batched",
    "BatchResult",
    "BackendStackResult",
    "ft_gehrd_batched",
    "ft_gehrd_stack",
    "gehrd_batched",
    "gehrd_stack",
    "extract_hessenberg_batched",
    "factorization_residuals_batched",
    "orghr_batched",
]
