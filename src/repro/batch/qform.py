"""Batched Q formation (stacked DORGHR) and residual verification.

The per-job tail of a serve batch — forming Q from the packed
reflectors, extracting H, and computing the Table II residual — costs
as much Python overhead per item as the reduction itself once the
drivers are batched. These stacked mirrors collapse that tail to a
handful of 3-D ops per *batch*, with the same bit-identity argument as
the reduction kernels: every scalar GEMV/GEMM/reduction becomes the
identical per-item operation under one stacked call.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.linalg import flops as F
from repro.linalg.flops import FlopCounter

from repro.batch.stack import fstack


def orghr_batched(
    a_packed: np.ndarray,
    taus: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "orghr",
) -> np.ndarray:
    """Explicit Q for every packed factorization in the (B, n, n) stack.

    The stacked mirror of :func:`repro.linalg.orghr.orghr` — backward
    reflector accumulation confined to the trailing principal block,
    with ``tau == 0`` items masked out of each rank-1 update exactly as
    the scalar kernel skips them.
    """
    if a_packed.ndim != 3 or a_packed.shape[1] != a_packed.shape[2]:
        raise ShapeError(
            f"orghr_batched needs a (B, n, n) stack, got {a_packed.shape}"
        )
    b, n = a_packed.shape[0], a_packed.shape[1]
    if taus.shape != (b, max(n - 1, 0)):
        raise ShapeError(
            f"orghr_batched: taus must be ({b}, {max(n - 1, 0)}), got {taus.shape}"
        )
    q = fstack(b, n, n, a_packed.dtype)
    q[:, range(n), range(n)] = 1.0
    for i in range(n - 2, -1, -1):
        tau = taus[:, i]
        active = tau != 0.0
        if not active.any():
            continue
        m = n - i - 1
        u = np.empty((b, m), dtype=a_packed.dtype)
        u[:, 0] = 1.0
        u[:, 1:] = a_packed[:, i + 2 : n, i]
        block = q[:, i + 1 : n, i + 1 : n]
        w = np.matmul(u[:, None, :], block)
        upd = tau[:, None, None] * (u[:, :, None] * w)
        if active.all():
            block -= upd
        else:
            np.subtract(block, upd, out=block, where=active[:, None, None])
        if counter is not None:
            counter.add(category, F.batched_flops(int(active.sum()), 4 * m * m))
    return q


def extract_hessenberg_batched(a_packed: np.ndarray) -> np.ndarray:
    """Stacked :func:`~repro.linalg.verify.extract_hessenberg` — zero
    below the first subdiagonal of every item (exact, so trivially
    bit-identical)."""
    return np.triu(a_packed, -1)


def _one_norms(stack: np.ndarray) -> np.ndarray:
    """Per-item matrix 1-norms (max absolute column sums)."""
    return np.max(np.sum(np.abs(stack), axis=1), axis=1)


def factorization_residuals_batched(
    a: np.ndarray, q: np.ndarray, h: np.ndarray
) -> np.ndarray:
    """Per-item Table II residuals ``‖A − Q H Qᵀ‖₁ / (N ‖A‖₁)`` over
    (B, n, n) stacks — the stacked
    :func:`~repro.linalg.verify.factorization_residual`."""
    if a.shape != q.shape or a.shape != h.shape:
        raise ShapeError(f"shape mismatch: A {a.shape}, Q {q.shape}, H {h.shape}")
    n = a.shape[1]
    na = _one_norms(a)
    resid = _one_norms(a - np.matmul(np.matmul(q, h), q.transpose(0, 2, 1)))
    out = np.zeros(a.shape[0])
    np.divide(resid, n * na, out=out, where=na != 0.0)
    return out
