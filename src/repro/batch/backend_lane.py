"""Backend whole-stack lane: ``gehrd_stack`` / ``ft_gehrd_stack``.

The non-NumPy twin of :mod:`repro.batch.driver`. Where the stacked
NumPy engine mirrors the scalar drivers byte for byte, this lane runs
the **functional** whole-stack kernels of :mod:`repro.backend.kernels`
(masked Householder sweep over a ``(B, m, m)`` stack, jit-compiled once
per shape key) and promises parity within rounding (``≤ c·n·eps``),
not byte-identity — the arithmetic is legitimately reassociated.

The resilience contract is the batched engine's, unchanged:

* the sweep runs in **panel-iteration chunks** (the scalar driver's
  ``(p, ib)`` plan), with boundary faults applied and Σ-detection run
  host-side between chunks — detection touches only the O(B·n)
  checksum banks, never the data block;
* an item that trips detection is ejected and re-run from its pristine
  input on the scalar NumPy :func:`~repro.core.ft_hessenberg.ft_gehrd`
  resilience ladder with a fresh injector clone;
* any item carrying a fault plan finishes on the scalar ladder even if
  nothing tripped, and unbatchable plans pre-eject at ``-1`` — a fault
  can never silently ride the backend fast path;
* clean items share one metadata-mode pricing run.

Unit-weight checksums only: the lane accepts ``channels=1`` configs and
raises otherwise (the serve layer routes ``channels=2`` jobs to the
NumPy engine).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.abft.detection import checksum_gap_and_threshold
from repro.backend import Backend, get_backend
from repro.backend.kernels import (
    checksum_banks,
    encode_stack,
    get_chunk_kernel,
    identity_stack,
)
from repro.batch.driver import _batch_safe, _clone
from repro.core.config import FTConfig
from repro.core.ft_hessenberg import ft_gehrd
from repro.core.hybrid_hessenberg import iteration_plan_cached
from repro.core.results import FTResult
from repro.errors import ShapeError
from repro.faults.injector import FaultInjector, InjectionTargets
from repro.linalg.gehrd import DEFAULT_NB
from repro.linalg.verify import one_norm
from repro.utils.precision import as_lane_matrix


def _as_c_stack(a_stack) -> np.ndarray:
    """Host ``(B, n, n)`` C-ordered stack (batched matmul layout)."""
    if isinstance(a_stack, np.ndarray) and a_stack.ndim == 3:
        arr = as_lane_matrix(a_stack)
    else:
        items = [as_lane_matrix(m) for m in a_stack]
        arr = np.stack([np.asarray(m) for m in items])
    if arr.ndim != 3 or arr.shape[1] != arr.shape[2]:
        raise ShapeError(f"backend lane needs a (B, n, n) stack, got {arr.shape}")
    return np.ascontiguousarray(arr)


@dataclass
class BackendStackResult:
    """Outcome of one :func:`ft_gehrd_stack` call.

    Fast-path items carry formed factors (``h[i]``, ``q[i]`` — the
    functional lane produces H and Q directly, there is no packed
    reflector storage) plus the shared priced timeline; ejected items
    carry the scalar re-run's :class:`~repro.core.results.FTResult` in
    ``scalar_results[i]`` with its own recovery accounting.
    """

    backend: str
    h: list[np.ndarray | None]
    q: list[np.ndarray | None]
    residuals: list[float | None]
    scalar_results: dict[int, FTResult] = field(default_factory=dict)
    ejected: list[int] = field(default_factory=list)
    #: -1 = pre-ejected (unbatchable plan), ``iterations`` = escorted at
    #: end of sweep, otherwise the chunk whose detection tripped.
    ejected_at: dict[int, int] = field(default_factory=dict)
    errors: dict[int, BaseException] = field(default_factory=dict)
    seconds: float | None = None
    iterations: int = 0
    checks: int = 0
    #: Σ-test trips observed *in the backend lane* (each one ejects).
    lane_detections: int = 0

    @property
    def batch_size(self) -> int:
        return len(self.h)

    @property
    def fast_path(self) -> int:
        return len(self.h) - len(self.ejected)


def gehrd_stack(
    a_stack,
    *,
    backend: Backend | str | None = None,
    nb: int = DEFAULT_NB,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Plain Hessenberg reduction of a stack on a backend: ``(hs, qs)``.

    One jit-compiled masked sweep over the whole stack; returns per-item
    host-NumPy ``H`` (upper Hessenberg, explicitly zeroed below the
    first subdiagonal) and orthogonal ``Q`` with ``A ≈ Q H Qᵀ``.
    *nb* only sets the chunking granularity (numerics are unblocked).
    """
    bk = backend if isinstance(backend, Backend) else get_backend(backend)
    stack = _as_c_stack(a_stack)
    b, n = stack.shape[0], stack.shape[1]
    a = bk.asarray(stack)
    q = identity_stack(bk, b, n, stack.dtype)
    kern = get_chunk_kernel(bk, b, n, encoded=False, dtype=stack.dtype)
    for p, ib in iteration_plan_cached(n, max(int(nb), 1)):
        a, q = kern(a, q, p, p + ib)
    bk.block_until_ready(a)
    hs_dev = bk.to_numpy(a)
    qs_dev = bk.to_numpy(q)
    hs = [np.triu(hs_dev[i], -1) for i in range(b)]
    qs = [np.asarray(qs_dev[i]) for i in range(b)]
    return hs, qs


def _apply_boundary_faults(
    bk: Backend, ext, clones, batch_idx, active, it: int, n: int
):
    """Fire iteration-*it* boundary faults host-side, write items back.

    Only items with due faults round-trip to the host; everything else
    stays on the device untouched.
    """
    for j, gi in enumerate(batch_idx):
        inj = clones[j]
        if not active[j] or inj is None:
            continue
        due = [f for f in inj.pending(it) if f.phase == "boundary"]
        if not due:
            continue
        host_ext = np.asarray(bk.to_numpy(ext[j]))
        inj.apply_phase(it, "boundary", InjectionTargets(ext=host_ext, n=n, k=1))
        ext = bk.at_set(ext, (j,), bk.asarray(host_ext))
    return ext


def ft_gehrd_stack(
    a_stack,
    config: FTConfig | None = None,
    *,
    backend: Backend | str | None = None,
    injectors: list[FaultInjector | None] | None = None,
) -> BackendStackResult:
    """Fault-tolerant whole-stack reduction on a backend.

    See the module docstring for the full contract; the result mirrors
    :class:`repro.batch.driver.BatchResult` ejection bookkeeping.
    """
    bk = backend if isinstance(backend, Backend) else get_backend(backend)
    config = config or FTConfig()
    if not config.functional:
        raise ShapeError(
            "ft_gehrd_stack runs functional mode only; metadata-mode "
            "pricing has nothing to batch — call ft_gehrd(n, config) instead"
        )
    if config.channels != 1:
        raise ShapeError(
            "the backend lane maintains unit-weight checksums only "
            f"(channels=1); got channels={config.channels} — "
            "multi-channel jobs run on the NumPy engine"
        )
    stack = _as_c_stack(a_stack)
    b, n = stack.shape[0], stack.shape[1]
    config.validate(n)
    injs: list[FaultInjector | None] = (
        list(injectors) if injectors is not None else [None] * b
    )
    if len(injs) != b:
        raise ShapeError(f"got {len(injs)} injectors for a batch of {b}")

    plan = iteration_plan_cached(n, config.nb)
    total = len(plan)
    hs: list[np.ndarray | None] = [None] * b
    qs: list[np.ndarray | None] = [None] * b
    ejected_at: dict[int, int] = {}
    errors: dict[int, BaseException] = {}
    scalar_results: dict[int, FTResult] = {}
    seconds: float | None = None
    checks_done = 0
    lane_detections = 0

    safe = [_batch_safe(inj) for inj in injs]
    batch_idx = [i for i in range(b) if safe[i]]
    for i in range(b):
        if not safe[i]:
            ejected_at[i] = -1

    if batch_idx:
        # one metadata-mode run prices every clean item (same trick as
        # the NumPy batched engine: a clean functional run schedules
        # exactly the ops metadata mode prices)
        priced = ft_gehrd(n, dataclasses.replace(config, functional=False))
        seconds = priced.seconds
        norms = np.array(
            [one_norm(np.asarray(stack[i], dtype=np.float64)) for i in batch_idx]
        )
        sub = stack[batch_idx]
        ext = encode_stack(bk, sub)
        q = identity_stack(bk, len(batch_idx), n, stack.dtype)
        kern = get_chunk_kernel(bk, len(batch_idx), n, encoded=True, dtype=stack.dtype)
        clones = [_clone(injs[i]) for i in batch_idx]
        active = np.ones(len(batch_idx), dtype=bool)

        for it, (p, ib) in enumerate(plan):
            ext = _apply_boundary_faults(bk, ext, clones, batch_idx, active, it, n)
            ext, q = kern(ext, q, p, p + ib)

            if (it % config.detect_every == 0) or (it == total - 1):
                checks_done += 1
                bk.block_until_ready(ext)
                rc, cc = checksum_banks(bk, ext)
                for j in np.flatnonzero(active):
                    gap, tol, finite = checksum_gap_and_threshold(
                        config.threshold, n, float(norms[j]), rc[j], cc[j],
                        dtype=stack.dtype,
                    )
                    if not finite or gap > tol:
                        active[j] = False
                        ejected_at[batch_idx[j]] = it
                        lane_detections += 1

        # a fault plan that never tripped the Σ test still finishes on
        # the scalar driver — no silent rides on the fast path
        for j, gi in enumerate(batch_idx):
            if active[j] and injs[gi] is not None:
                active[j] = False
                ejected_at[gi] = total

        bk.block_until_ready(ext)
        h_host = bk.to_numpy(ext[:, :n, :n])
        q_host = bk.to_numpy(q)
        for j, gi in enumerate(batch_idx):
            if active[j]:
                hs[gi] = np.triu(np.asarray(h_host[j]), -1)
                qs[gi] = np.asarray(q_host[j])

    # scalar re-runs: every ejected item restarts from its pristine
    # input on the full NumPy resilience ladder with a fresh clone
    for i in range(b):
        if hs[i] is not None:
            continue
        try:
            res = ft_gehrd(
                stack[i].copy(order="F"), config, injector=_clone(injs[i])
            )
        except Exception as exc:  # item-level failure stays item-level
            errors[i] = exc
            continue
        from repro.linalg import extract_hessenberg, orghr

        scalar_results[i] = res
        hs[i] = extract_hessenberg(res.a)
        qs[i] = orghr(res.a, res.taus)

    residuals: list[float | None] = [None] * b
    from repro.linalg.verify import factorization_residual

    for i in range(b):
        if hs[i] is not None:
            residuals[i] = float(factorization_residual(stack[i], qs[i], hs[i]))

    return BackendStackResult(
        backend=bk.name,
        h=hs,
        q=qs,
        residuals=residuals,
        scalar_results=scalar_results,
        ejected=sorted(ejected_at),
        ejected_at=ejected_at,
        errors=errors,
        seconds=seconds,
        iterations=total,
        checks=checks_done,
        lane_detections=lane_detections,
    )
