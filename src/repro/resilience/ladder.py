"""The recovery escalation ladder (Fasi et al.-style tiered recovery).

The flat policy — retry the iteration, abort after ``max_retries`` —
treats every detection the same. The ladder instead escalates through
strategies of increasing cost and decreasing assumptions:

``in_place``
    Correct the located error(s) directly at the current state, no
    rollback. Valid only for isolated errors the peeling decoder pins
    down exactly (a single corrupted element); anything smeared refuses.
``reverse_redo``
    The paper's lines 14–15: reverse the live iteration's linear
    updates, restore the panel from the diskless checkpoint, locate,
    correct, re-execute.
``deep_rollback``
    Unwind completed iterations from packed storage until the residual
    pattern decodes (detection lagged the fault, or recovery state was
    itself corrupted).
``restart``
    Rebuild the entire encoded state from the initial diskless snapshot
    and redo the factorization from iteration 0 — the backstop that
    turns "recovery machinery corrupted beyond repair" from an abort
    into a slow success.

Each tier is budgeted; when every tier is exhausted the driver raises
:class:`~repro.errors.EscalationExhausted` carrying the
:class:`FailureReport` built here.
"""

from __future__ import annotations

from dataclasses import dataclass, field


TIER_IN_PLACE = "in_place"
TIER_REVERSE_REDO = "reverse_redo"
TIER_DEEP_ROLLBACK = "deep_rollback"
TIER_RESTART = "restart"

#: Ladder tiers in escalation order.
TIER_ORDER = (TIER_IN_PLACE, TIER_REVERSE_REDO, TIER_DEEP_ROLLBACK, TIER_RESTART)

#: Event labels that may appear on RecoveryEvents but sit outside the
#: escalation ladder proper (no re-execution involved).
TIER_AUDIT = "audit"
TIER_TAU_REPAIR = "tau_repair"


def tier_rank(tier: str) -> int:
    """Position in the escalation order (-1 for out-of-ladder events)."""
    try:
        return TIER_ORDER.index(tier)
    except ValueError:
        return -1


def max_tier(tiers) -> str:
    """The deepest ladder tier in *tiers* ("" if none is a ladder tier)."""
    best = ""
    best_rank = -1
    for t in tiers:
        r = tier_rank(t)
        if r > best_rank:
            best, best_rank = t, r
    return best


@dataclass
class LadderConfig:
    """Budgets for each tier of the escalation ladder.

    Attributes
    ----------
    in_place:
        Enable the zero-rollback first tier.
    in_place_max_errors:
        Largest decoded *data*-error count tier 0 will accept. Keep this
        at 1: a lone element is corrected exactly, while multi-element
        patterns are usually a smear that only looks decodable and are
        better handled by the exact reversal of tier 1.
    max_in_place_total:
        Across the whole run, how many times tier 0 may be attempted.
    max_deep_steps:
        Per detection, how many completed iterations the deep rollback
        may unwind (``None`` = all the way to iteration 0).
    max_restarts:
        How many full diskless restarts the run may spend. The driver
        forces this to 0 when ``max_retries < 1`` (strict fail-stop
        mode, used by the error-storm tests).
    """

    in_place: bool = True
    in_place_max_errors: int = 1
    max_in_place_total: int = 8
    max_deep_steps: int | None = None
    max_restarts: int = 1

    def stricter(self) -> "LadderConfig":
        """A retry configuration with fewer assumptions and more budget.

        Used by the serving layer when a job dies with
        :class:`~repro.errors.EscalationExhausted`: the optimistic
        zero-rollback tier is disabled (if its exact-correction premise
        were holding, the ladder would not have exhausted), the deep
        rollback may unwind all the way to iteration 0, and one more
        full restart is allowed than last time. Repeated application
        keeps widening the restart budget, so a bounded retry loop
        converges on "replay everything from the initial snapshot".
        """
        return LadderConfig(
            in_place=False,
            in_place_max_errors=self.in_place_max_errors,
            max_in_place_total=0,
            max_deep_steps=None,
            max_restarts=self.max_restarts + 1,
        )


@dataclass
class TierAttempt:
    """One attempt of one tier, successful or not."""

    tier: str
    iteration: int
    success: bool
    detail: str = ""


@dataclass
class FailureReport:
    """Structured account of an exhausted ladder.

    ``attempts``/``successes`` count per tier; ``events`` is the full
    ordered attempt log.
    """

    reason: str
    iteration: int
    attempts: dict[str, int] = field(default_factory=dict)
    successes: dict[str, int] = field(default_factory=dict)
    events: list[TierAttempt] = field(default_factory=list)

    def summary(self) -> str:
        parts = [
            f"{t}: {self.successes.get(t, 0)}/{self.attempts.get(t, 0)}"
            for t in TIER_ORDER
            if self.attempts.get(t, 0)
        ]
        return (
            f"escalation exhausted at iteration {self.iteration} "
            f"({self.reason}); tier successes/attempts: "
            + (", ".join(parts) if parts else "none")
        )


class ResilienceSupervisor:
    """Bookkeeping + budget enforcement for the escalation ladder.

    The driver asks :meth:`allow` before attempting a budgeted tier and
    :meth:`record`\\ s every attempt; :meth:`report` packages the log
    into a :class:`FailureReport` when everything is exhausted.
    """

    def __init__(self, ladder: LadderConfig, max_retries: int):
        self.ladder = ladder
        self.max_retries = max_retries
        self.attempts: dict[str, int] = {}
        self.successes: dict[str, int] = {}
        self.events: list[TierAttempt] = []

    def allow(self, tier: str) -> bool:
        if tier == TIER_IN_PLACE:
            return (
                self.ladder.in_place
                and self.attempts.get(tier, 0) < self.ladder.max_in_place_total
            )
        if tier == TIER_RESTART:
            budget = self.ladder.max_restarts if self.max_retries >= 1 else 0
            return self.attempts.get(tier, 0) < budget
        return True  # reverse_redo / deep_rollback budgets live in the driver

    def record(self, tier: str, iteration: int, success: bool, detail: str = "") -> TierAttempt:
        att = TierAttempt(tier=tier, iteration=iteration, success=success, detail=detail)
        self.attempts[tier] = self.attempts.get(tier, 0) + 1
        if success:
            self.successes[tier] = self.successes.get(tier, 0) + 1
        self.events.append(att)
        return att

    @property
    def restarts(self) -> int:
        return self.successes.get(TIER_RESTART, 0)

    def report(self, iteration: int, reason: str) -> FailureReport:
        return FailureReport(
            reason=reason,
            iteration=iteration,
            attempts=dict(self.attempts),
            successes=dict(self.successes),
            events=list(self.events),
        )
