"""Resilience supervisor layer: the recovery escalation ladder, its
budgets and failure reporting, plus shadow protection of unencoded FT
state (the tau scalars)."""

from repro.resilience.ladder import (
    TIER_IN_PLACE,
    TIER_REVERSE_REDO,
    TIER_DEEP_ROLLBACK,
    TIER_RESTART,
    TIER_AUDIT,
    TIER_TAU_REPAIR,
    TIER_ORDER,
    tier_rank,
    max_tier,
    LadderConfig,
    TierAttempt,
    FailureReport,
    ResilienceSupervisor,
)
from repro.resilience.tau_guard import TauGuard
from repro.errors import EscalationExhausted

__all__ = [
    "TIER_IN_PLACE",
    "TIER_REVERSE_REDO",
    "TIER_DEEP_ROLLBACK",
    "TIER_RESTART",
    "TIER_AUDIT",
    "TIER_TAU_REPAIR",
    "TIER_ORDER",
    "tier_rank",
    "max_tier",
    "LadderConfig",
    "TierAttempt",
    "FailureReport",
    "ResilienceSupervisor",
    "TauGuard",
    "EscalationExhausted",
]
