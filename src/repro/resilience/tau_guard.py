"""Shadow protection of the tau scalars.

The tau array is tiny (N-1 float64s) but load-bearing: every Householder
transform in the formation of Q reads it, yet no checksum in the paper's
scheme covers it — a corrupted tau silently destroys the orthogonal
factor while the H-side residual stays clean. A full shadow copy costs
8(N-1) bytes (noise next to the O(N·nb) panel checkpoint) and makes
repair trivial: majority-of-two plus the invariant that an unfinished
panel's taus are exactly zero.

The *primary* array is the fault target; the shadow is trusted (struck
independently with probability ~0 under the single-fault model — and the
adversarial grid targets the primary, matching how the live array is the
one exposed to kernel traffic).
"""

from __future__ import annotations

import numpy as np


class TauGuard:
    """Keeps a shadow of the finished-panel tau scalars."""

    def __init__(self, n_taus: int):
        self.shadow = np.zeros(max(n_taus, 0))
        self.finished = 0  # taus [0, finished) are committed
        self.repairs = 0

    def record(self, taus: np.ndarray, p: int, ib: int) -> None:
        """Commit panel ``[p, p+ib)``'s freshly generated taus."""
        hi = min(p + ib, self.shadow.size)
        self.shadow[p:hi] = taus[p:hi]
        self.finished = max(self.finished, hi)

    def rollback(self, p: int, ib: int) -> None:
        """Un-commit the most recent panel (deep-rollback path)."""
        hi = min(p + ib, self.shadow.size)
        self.shadow[p:hi] = 0.0
        self.finished = min(self.finished, p)

    def reset(self) -> None:
        """Forget everything (full-restart path)."""
        self.shadow[:] = 0.0
        self.finished = 0

    def verify_and_repair(self, taus: np.ndarray) -> list[int]:
        """Overwrite any primary tau that disagrees with the shadow.

        Returns the repaired indices. Unfinished entries must be zero —
        a fault landing past ``finished`` is repaired to zero.
        """
        repaired: list[int] = []
        limit = min(taus.size, self.shadow.size)
        for i in range(limit):
            want = self.shadow[i] if i < self.finished else 0.0
            if taus[i] != want:
                taus[i] = want
                repaired.append(i)
        self.repairs += len(repaired)
        return repaired
