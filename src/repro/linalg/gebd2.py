"""Unblocked bidiagonal reduction (DGEBD2-style) and its helpers.

The third two-sided factorization of the family the paper's conclusion
targets: ``B = Qᵀ A P`` with B upper bidiagonal and Q, P orthogonal —
the front-end of the dense SVD, exactly as the Hessenberg reduction is
the front-end of the nonsymmetric eigensolver.

Column reflectors (building Q) are stored below the diagonal, row
reflectors (building P) above the first superdiagonal, LAPACK-style.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.linalg.flops import FlopCounter
from repro.linalg.householder import larfg


def gebd2(
    a: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "gebd2",
) -> tuple[np.ndarray, np.ndarray]:
    """Reduce the square matrix *a* to upper bidiagonal form in place.

    Returns ``(tau_q, tau_p)``: the scales of the column (left/Q) and row
    (right/P) reflectors. On return the diagonal and first superdiagonal
    of *a* hold B; reflector vectors live below the diagonal and right of
    the first superdiagonal.
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"gebd2 needs a square matrix, got {a.shape}")
    n = a.shape[0]
    tau_q = np.zeros(n)
    tau_p = np.zeros(max(n - 1, 0))

    for i in range(n):
        # column reflector: annihilate a[i+1:, i]
        refl = larfg(a[i, i], a[i + 1 : n, i], counter=counter, category=category)
        tau_q[i] = refl.tau
        d = refl.beta
        a[i, i] = 1.0
        u = a[i:n, i]
        if refl.tau != 0.0 and i + 1 < n:
            block = a[i:n, i + 1 : n]
            w = u @ block
            block -= refl.tau * np.outer(u, w)
            if counter is not None:
                counter.add(category, 4.0 * (n - i) * (n - i - 1))
        a[i, i] = d

        if i < n - 2:
            # row reflector: annihilate a[i, i+2:]
            refl = larfg(a[i, i + 1], a[i, i + 2 : n], counter=counter, category=category)
            tau_p[i] = refl.tau
            e = refl.beta
            a[i, i + 1] = 1.0
            v = a[i, i + 1 : n]
            if refl.tau != 0.0:
                block = a[i + 1 : n, i + 1 : n]
                w = block @ v
                block -= refl.tau * np.outer(w, v)
                if counter is not None:
                    counter.add(category, 4.0 * (n - i - 1) * (n - i - 1))
            a[i, i + 1] = e
    return tau_q, tau_p


def bidiagonal_of(a_packed: np.ndarray) -> np.ndarray:
    """Extract the explicit upper-bidiagonal B from packed storage."""
    n = a_packed.shape[0]
    b = np.zeros((n, n), order="F")
    idx = np.arange(n)
    b[idx, idx] = np.diag(a_packed)
    if n > 1:
        sup = np.diag(a_packed, 1)
        b[idx[:-1], idx[1:]] = sup
    return b


def orgbr_q(a_packed: np.ndarray, tau_q: np.ndarray) -> np.ndarray:
    """Form the left orthogonal factor Q from the column reflectors."""
    n = a_packed.shape[0]
    q = np.eye(n, order="F")
    for i in range(n - 1, -1, -1):
        tau = tau_q[i]
        if tau == 0.0:
            continue
        u = np.empty(n - i)
        u[0] = 1.0
        u[1:] = a_packed[i + 1 : n, i]
        block = q[i:n, i:n]
        w = u @ block
        block -= tau * np.outer(u, w)
    return q


def orgbr_p(a_packed: np.ndarray, tau_p: np.ndarray) -> np.ndarray:
    """Form the right orthogonal factor P from the row reflectors."""
    n = a_packed.shape[0]
    p = np.eye(n, order="F")
    for i in range(n - 3, -1, -1):
        tau = tau_p[i]
        if tau == 0.0:
            continue
        v = np.empty(n - i - 1)
        v[0] = 1.0
        v[1:] = a_packed[i, i + 2 : n]
        block = p[i + 1 : n, i + 1 : n]
        # P accumulates the reflectors applied from the right of A; the
        # explicit factor applies them to the identity from the left
        w = v @ block
        block -= tau * np.outer(v, w)
    return p
