"""Blocked symmetric tridiagonal reduction (DLATRD + DSYTRD, lower variant).

The blocked counterpart of :mod:`repro.linalg.sytd2`: panels of ``nb``
reflectors are aggregated so the trailing matrix receives one rank-2nb
update (``A ← A − V Wᵀ − W Vᵀ``, a SYR2K) instead of ``nb`` rank-2
updates — the same arithmetic-intensity transformation the blocked
Hessenberg reduction performs with its compact-WY updates. Operates on
the full symmetric storage like ``sytd2`` (clarity over the halved flops
of triangle-only storage).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.linalg.flops import FlopCounter
from repro.linalg.householder import larfg

DEFAULT_NB = 32


def latrd(
    a: np.ndarray,
    p: int,
    nb: int,
    n: int,
    taus: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "latrd",
) -> tuple[np.ndarray, np.ndarray]:
    """Reduce ``nb`` columns starting at *p* and build the update factors.

    Returns ``(V, W)``: V holds the Householder vectors (shape
    ``(n−p−1, nb)``, row r ↔ global row ``p+1+r``, explicit units), W the
    companion block with ``W = A V T``-like content such that the
    trailing similarity is ``A ← A − V Wᵀ − W Vᵀ``. The reduced band
    entries and packed vectors are written into *a* in place.
    """
    if not (0 <= p and p + nb < n <= min(a.shape)):
        raise ShapeError(f"invalid panel: p={p}, nb={nb}, n={n}, A {a.shape}")
    m = n - p - 1
    v = np.zeros((m, nb), order="F")
    w = np.zeros((m, nb), order="F")

    for i in range(nb):
        c = p + i  # global column being reduced
        # update column c with the previously accumulated V/W pairs:
        # A(c+1:n, c) -= V(c-row, :i) Wᵀ + W(c-row, :i) Vᵀ contributions
        if i > 0:
            rows = slice(c + 1 - (p + 1), m)  # V/W rows for global c+1..n-1
            vrow = v[c - (p + 1), :i]
            wrow = w[c - (p + 1), :i]
            a[c + 1 : n, c] -= v[rows, :i] @ wrow + w[rows, :i] @ vrow
            # the diagonal entry also gets both corrections
            a[c, c] -= 2.0 * float(vrow @ wrow)
            if counter is not None:
                counter.add(category, 4.0 * (n - c - 1) * i)

        refl = larfg(a[c + 1, c], a[c + 2 : n, c], counter=counter, category=category)
        tau = refl.tau
        taus[c] = tau
        beta = refl.beta
        a[c + 1, c] = 1.0
        vi = np.zeros(m)
        vi[i:] = a[c + 1 : n, c]
        v[:, i] = vi

        if tau != 0.0:
            # w_i = tau (A_sub v − V (Wᵀ v) − W (Vᵀ v)) − ½τ(wᵀv)v over the
            # strict trailing rows c+1..n-1 only: the stale trailing block
            # (deferred updates) is exactly compensated by the V/W terms
            vt = vi[i:]
            sub = a[c + 1 : n, c + 1 : n]
            wt = sub @ vt
            if i > 0:
                wt -= v[i:, :i] @ (w[i:, :i].T @ vt) + w[i:, :i] @ (v[i:, :i].T @ vt)
            wt *= tau
            wt -= (0.5 * tau * float(wt @ vt)) * vt
            w[i:, i] = wt
            if counter is not None:
                mt = m - i
                counter.add(category, 2.0 * mt * mt + 8.0 * mt * i + 4.0 * mt)

        # restore packed band/vector storage for the finished column/row
        a[c + 1, c] = beta
        a[c, c + 1] = beta
        a[c + 2 : n, c] = refl.v
        a[c, c + 2 : n] = 0.0

    return v, w


def sytrd(
    a: np.ndarray,
    *,
    nb: int = DEFAULT_NB,
    counter: FlopCounter | None = None,
    symmetric_tol: float = 1e-12,
) -> np.ndarray:
    """Blocked reduction of the symmetric matrix *a* to tridiagonal form,
    in place (same output convention as :func:`~repro.linalg.sytd2.sytd2`).
    Returns the tau vector.
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"sytrd needs a square matrix, got {a.shape}")
    n = a.shape[0]
    scale = float(np.max(np.abs(a))) if n else 0.0
    if n and float(np.max(np.abs(a - a.T))) > symmetric_tol * max(scale, 1.0):
        raise ShapeError("sytrd input is not symmetric")

    taus = np.zeros(max(n - 1, 0))
    p = 0
    while n - 2 - p > nb:
        v, w = latrd(a, p, nb, n, taus, counter=counter)
        # rank-2nb trailing update (the deferred SYR2K): the trailing
        # block starts at the border row/column p+nb — V/W row nb-1
        lo = nb - 1
        trail = a[p + nb : n, p + nb : n]
        trail -= v[lo:, :] @ w[lo:, :].T + w[lo:, :] @ v[lo:, :].T
        if counter is not None:
            counter.add("syr2k", 4.0 * trail.shape[0] * trail.shape[0] * nb)
        p += nb

    # unblocked clean-up on the remaining columns
    from repro.linalg.sytd2 import sytd2 as _sytd2_full

    if n - 2 - p > 0:
        # run the unblocked kernel on the trailing block, then merge
        sub = np.asfortranarray(a[p : n, p : n].copy())
        sub_taus = _sytd2_full(sub, symmetric_tol=np.inf)
        a[p:n, p:n] = sub
        taus[p : n - 1] = sub_taus[: n - p - 1]
    return taus
