"""Floating-point operation counts for the kernels used by the reduction.

These closed-form counts serve two purposes:

1. The :class:`FlopCounter` lets the functional layer *measure* the extra
   work done by the fault-tolerant algorithm, which the Section-V analysis
   benchmark compares against the paper's closed-form overhead model.
2. The hybrid-machine performance model (:mod:`repro.hybrid.perfmodel`)
   converts these counts into kernel durations at paper-scale matrix sizes
   without touching any data.

Conventions follow the standard LAPACK working notes: a fused
multiply-add counts as two flops; `gemm` on (m x k)(k x n) costs
``2*m*n*k`` (the paper's own Section V uses ``m*(2k-1)*n``-style exact
counts for dot products, which we expose via :func:`dot_flops`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


def gemm_flops(m: int, n: int, k: int) -> int:
    """Flops for ``C <- alpha*A@B + beta*C`` with A (m x k), B (k x n)."""
    return 2 * m * n * k


def gemv_flops(m: int, n: int) -> int:
    """Flops for ``y <- alpha*A@x + beta*y`` with A (m x n)."""
    return 2 * m * n


def dot_flops(n: int) -> int:
    """Exact flops for an n-term dot product (n multiplies, n-1 adds)."""
    return max(0, 2 * n - 1)


def axpy_flops(n: int) -> int:
    """Flops for ``y <- a*x + y``."""
    return 2 * n


def scal_flops(n: int) -> int:
    """Flops for ``x <- a*x``."""
    return n


def ger_flops(m: int, n: int) -> int:
    """Flops for the rank-1 update ``A <- A + alpha*x@yT``."""
    return 2 * m * n


def trmm_flops(side_m: int, side_n: int, left: bool) -> int:
    """Flops for a triangular matrix-matrix multiply.

    For ``B <- op(T) @ B`` with T (m x m): ``n*m^2``; for the right side
    with T (n x n): ``m*n^2``.
    """
    m, n = side_m, side_n
    return n * m * m if left else m * n * n


def trmv_flops(n: int) -> int:
    """Flops for a triangular matrix-vector multiply with T (n x n)."""
    return n * n


def larfg_flops(n: int) -> int:
    """Flops to generate a Householder reflector on an n-vector.

    Dominated by the norm (2n) and the scaling (n).
    """
    return 3 * n


def abft_fused_rows_flops(k: int, n: int, ib: int) -> int:
    """Flops charged to *k* checksum rows riding a fused FT-GEMM apply.

    In the FT-GEMM style updates (:mod:`repro.abft.checksums`) the
    checksum rows are not maintained by separate per-channel GEMVs; they
    are *k* extra operand rows of the same rank-*ib* apply GEMM over
    *n* columns.  The honest charge is therefore the GEMM-row extension
    ``gemm_flops(k, n, ib)`` — numerically equal to the old
    ``k * gemv_flops(n, ib)`` phantom-GEMV charge, so re-deriving the
    categories preserves every total.
    """
    return gemm_flops(k, n, ib)


def batched_flops(b: int, per_item: int | float) -> int | float:
    """Flops for a batched op: *b* independent items, each *per_item* flops.

    The batched engine (:mod:`repro.batch`) performs the same arithmetic
    as *b* scalar calls — stacking changes the dispatch, not the math —
    so honest accounting is simply the per-item count times the batch
    size.
    """
    if b < 0:
        raise ValueError(f"negative batch size {b}")
    return b * per_item


def gemm_batched_flops(b: int, m: int, n: int, k: int) -> int:
    """Flops for a batched gemm: *b* independent (m x k)(k x n) products."""
    return batched_flops(b, gemm_flops(m, n, k))


def gemv_batched_flops(b: int, m: int, n: int) -> int:
    """Flops for a batched gemv: *b* independent (m x n) matrix-vectors."""
    return batched_flops(b, gemv_flops(m, n))


def gehrd_flops(n: int) -> float:
    """Total flops of the blocked Hessenberg reduction, ~10/3 n^3.

    This is the paper's ``FLOP_orig`` (Section V).
    """
    return 10.0 / 3.0 * n**3


def orghr_flops(n: int) -> float:
    """Flops to form Q explicitly from the reflectors, ~4/3 n^3."""
    return 4.0 / 3.0 * n**3


@dataclass
class FlopCounter:
    """Accumulates flop counts, bucketed by a free-form category label.

    The FT algorithm tags ABFT-related work (checksum maintenance,
    detection, recovery) separately from the baseline factorization work so
    the measured overhead ratio can be reported directly.
    """

    by_category: Counter = field(default_factory=Counter)

    def add(self, category: str, flops: int | float) -> None:
        """Record *flops* under *category* (negative counts are rejected)."""
        if flops < 0:
            raise ValueError(f"negative flop count {flops} for {category!r}")
        self.by_category[category] += flops

    @property
    def total(self) -> float:
        """Total flops across every category."""
        return float(sum(self.by_category.values()))

    def category_total(self, *categories: str) -> float:
        """Sum of the named categories (missing categories count as zero)."""
        return float(sum(self.by_category.get(c, 0) for c in categories))

    def merge(self, other: "FlopCounter") -> None:
        """Fold *other*'s counts into this counter."""
        self.by_category.update(other.by_category)

    def snapshot(self) -> dict[str, float]:
        """Return a plain-dict copy of the per-category totals."""
        return {k: float(v) for k, v in self.by_category.items()}
