"""Form the orthogonal factor Q of a Hessenberg reduction (DORGHR).

``Q = H_0 H_1 ... H_{n-2}`` where ``H_i = I - tau_i u_i u_iᵀ`` and the
``u_i`` are stored below the first subdiagonal of the packed factorization
output. Q satisfies ``A = Q H Qᵀ``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.linalg.flops import FlopCounter


def orghr(
    a_packed: np.ndarray,
    taus: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "orghr",
) -> np.ndarray:
    """Return the explicit Q from packed reflectors and taus.

    Parameters
    ----------
    a_packed:
        The in-place output of ``gehrd``/``gehd2`` (Householder vectors
        below the first subdiagonal). Only the strictly-sub-subdiagonal
        part is read.
    taus:
        Reflector scales, length ``n - 1``.
    """
    n = a_packed.shape[0]
    if a_packed.shape[1] < n or taus.shape[0] < max(n - 1, 0):
        raise ShapeError(f"orghr: inconsistent shapes A {a_packed.shape}, taus {taus.shape}")
    q = np.eye(n, order="F", dtype=a_packed.dtype)
    # Accumulate Q = H_0 H_1 ... H_{n-2} by applying reflectors backwards;
    # H_i only touches rows i+1.., whose columns <= i stay canonical, so the
    # update can be confined to the trailing principal block.
    for i in range(n - 2, -1, -1):
        tau = taus[i]
        if tau == 0.0:
            continue
        u = np.empty(n - i - 1, dtype=a_packed.dtype)
        u[0] = 1.0
        u[1:] = a_packed[i + 2 : n, i]
        block = q[i + 1 : n, i + 1 : n]
        w = u @ block
        block -= tau * np.outer(u, w)
        if counter is not None:
            counter.add(category, 4 * (n - i - 1) * (n - i - 1))
    return q


def apply_q(
    a_packed: np.ndarray,
    taus: np.ndarray,
    c: np.ndarray,
    *,
    trans: bool = False,
    counter: FlopCounter | None = None,
    category: str = "apply_q",
) -> np.ndarray:
    """Compute ``Q @ C`` (or ``Qᵀ @ C``) without forming Q, in place.

    Applying the reflectors directly costs ``O(n^2 m)`` like the explicit
    product but needs no ``n x n`` workspace; it is the standard way the
    eigenvalue back-transformation consumes the reduction.
    """
    n = a_packed.shape[0]
    if c.shape[0] != n:
        raise ShapeError(f"apply_q: C has {c.shape[0]} rows, expected {n}")
    order = range(n - 1) if trans else range(n - 2, -1, -1)
    for i in order:
        tau = taus[i]
        if tau == 0.0:
            continue
        u = np.empty(n - i - 1, dtype=a_packed.dtype)
        u[0] = 1.0
        u[1:] = a_packed[i + 2 : n, i]
        rows = c[i + 1 : n, :]
        w = u @ rows
        rows -= tau * np.outer(u, w)
        if counter is not None:
            counter.add(category, 4 * (n - i - 1) * c.shape[1])
    return c
