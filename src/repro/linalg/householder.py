"""Householder reflector generation and application (DLARFG / DLARF).

A reflector is represented LAPACK-style: ``H = I - tau * u uᵀ`` with
``u = [1; v]`` — the leading 1 is implicit and only ``v`` is stored (in the
factorization it lives below the subdiagonal of the panel, which is what
makes the in-place blocked algorithm and the checksum bookkeeping work).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.linalg import flops as F
from repro.linalg.flops import FlopCounter


@dataclass(frozen=True)
class Reflector:
    """A generated Householder reflector.

    Attributes
    ----------
    beta:
        The value the pivot entry is mapped to (``H @ [alpha; x] = [beta; 0]``).
    tau:
        Reflector scale; ``tau == 0`` encodes the identity (nothing to do).
    v:
        The stored part of the Householder vector (the implicit leading 1
        is *not* included).
    """

    beta: float
    tau: float
    v: np.ndarray


def larfg(
    alpha: float,
    x: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "larfg",
) -> Reflector:
    """Generate a reflector annihilating *x* below the pivot *alpha*.

    Mirrors LAPACK ``DLARFG``: returns ``(beta, tau, v)`` with
    ``(I - tau [1;v][1;v]ᵀ) [alpha; x] = [beta; 0]``. *x* is modified in
    place to hold ``v`` (callers store it back under the subdiagonal).
    """
    if x.ndim != 1:
        raise ShapeError(f"larfg expects a vector, got shape {x.shape}")
    n = x.size
    if counter is not None:
        counter.add(category, F.larfg_flops(n + 1))
    if n == 0:
        return Reflector(beta=float(alpha), tau=0.0, v=x)
    xnorm = float(np.linalg.norm(x))
    if xnorm == 0.0:
        return Reflector(beta=float(alpha), tau=0.0, v=x)
    beta = -math.copysign(math.hypot(alpha, xnorm), alpha)
    tau = (beta - alpha) / beta
    x /= alpha - beta
    return Reflector(beta=float(beta), tau=float(tau), v=x)


def full_vector(refl: Reflector) -> np.ndarray:
    """Return the explicit Householder vector ``u = [1; v]``."""
    v = np.asarray(refl.v)
    return np.concatenate((np.ones(1, dtype=v.dtype), v))


def larf_left(
    tau: float,
    u: np.ndarray,
    c: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "larf",
) -> np.ndarray:
    """Apply ``H = I - tau u uᵀ`` from the left: ``C <- H @ C`` in place.

    *u* is the explicit vector (leading 1 included).
    """
    if u.shape != (c.shape[0],):
        raise ShapeError(f"larf_left shape mismatch: u {u.shape}, C {c.shape}")
    if tau == 0.0:
        return c
    w = u @ c  # uᵀ C
    c -= tau * np.outer(u, w)
    if counter is not None:
        counter.add(category, 4 * c.shape[0] * c.shape[1])
    return c


def larf_right(
    tau: float,
    u: np.ndarray,
    c: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "larf",
) -> np.ndarray:
    """Apply ``H = I - tau u uᵀ`` from the right: ``C <- C @ H`` in place."""
    if u.shape != (c.shape[1],):
        raise ShapeError(f"larf_right shape mismatch: u {u.shape}, C {c.shape}")
    if tau == 0.0:
        return c
    w = c @ u  # C u
    c -= tau * np.outer(w, u)
    if counter is not None:
        counter.add(category, 4 * c.shape[0] * c.shape[1])
    return c


def reflector_matrix(tau: float, u: np.ndarray) -> np.ndarray:
    """Return the explicit ``H = I - tau u uᵀ`` (for tests and analysis only)."""
    n = u.size
    return np.eye(n) - tau * np.outer(u, u)
