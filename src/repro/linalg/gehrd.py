"""Blocked Hessenberg reduction (DGEHRD — the paper's Algorithm 1).

Structure of each iteration (Fig. 1 of the paper):

1. ``lahr2``  — factorize the current ``nb``-wide panel, producing V, T
   and ``Y = Ã V T`` (panel factorization; the CPU side of the hybrid
   algorithm).
2. right update to the trailing columns: ``A[:, p+ib:] −= Y V₂ᵀ``
   (with the unit entry of the last reflector temporarily set to 1).
3. right update to the top-left block M's in-panel columns:
   ``A[0:p+1, p+1:p+ib] −= Y_top V₁ᵀ``.
4. left update: ``A[p+1:n, p+ib:] ← (I − V Tᵀ Vᵀ) A[p+1:n, p+ib:]``
   via ``larfb``.

The pure-CPU driver below is the numerical reference; the hybrid and
fault-tolerant drivers in :mod:`repro.core` re-orchestrate these exact
steps across simulated devices and checksum-extended operands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError
from repro.linalg import flops as F
from repro.linalg.flops import FlopCounter
from repro.linalg.gehd2 import gehd2
from repro.linalg.lahr2 import PanelFactors, lahr2
from repro.linalg.wy import larfb
from repro.perf.workspace import DGEMM, Workspace, gemm_inplace

DEFAULT_NB = 32
#: LAPACK-style crossover: switch to the unblocked algorithm when the
#: remaining active columns drop below this bound.
DEFAULT_NX = DEFAULT_NB


@dataclass
class HessenbergFactorization:
    """Result of a Hessenberg reduction.

    ``a`` holds H in its upper-Hessenberg part and the Householder vectors
    below the first subdiagonal (LAPACK packed storage); ``taus`` are the
    reflector scales; ``panels`` records the per-panel WY factors (used by
    tests and by the analysis layer).
    """

    a: np.ndarray
    taus: np.ndarray
    nb: int
    panels: list[PanelFactors] = field(default_factory=list)

    @property
    def n(self) -> int:
        return self.a.shape[0]

    @property
    def h(self) -> np.ndarray:
        """The upper-Hessenberg factor H extracted from packed storage."""
        return np.triu(self.a, -1)


def _can_fuse(a: np.ndarray, pf: PanelFactors, workspace: Workspace | None) -> bool:
    """The in-place BLAS path needs the arena, the BLAS wrapper, Fortran
    storage (so full-column slices are F-contiguous) and the zero-padded
    V spanning every row of *a*."""
    return (
        workspace is not None
        and DGEMM is not None
        and pf.v_full is not None
        and pf.v_full.shape[0] == a.shape[0]
        and a.flags.f_contiguous
    )


def apply_right_updates(
    a: np.ndarray,
    pf: PanelFactors,
    n: int,
    *,
    counter: FlopCounter | None = None,
    category: str = "right_update",
    workspace: Workspace | None = None,
) -> None:
    """Apply the panel's right update to the trailing columns and to M.

    This is steps 2+3 above (the paper's Algorithm 2 lines 5 and 7 merged
    for the CPU reference — the hybrid drivers split them across devices).
    Mutates ``a`` in place.
    """
    p, ib = pf.p, pf.ib
    fused = _can_fuse(a, pf, workspace) and a.shape[0] == n
    # trailing columns: A[0:n, p+ib:n] -= Y @ V2ᵀ, V2 = rows ib-1.. of V
    if p + ib < n:
        v2 = pf.v[ib - 1 :, :]
        if fused:
            gemm_inplace(-1.0, pf.y, v2, a[:, p + ib : n], trans_b=True)
        else:
            a[0:n, p + ib : n] -= pf.y[0:n, :] @ v2.T
        if counter is not None:
            counter.add(category, F.gemm_flops(n, n - p - ib, ib))
    # in-panel top rows: A[0:p+1, p+1:p+ib] -= Y_top[:, :ib-1] @ V1ᵀ
    # (V's upper triangle holds explicit zeros — no np.tril copy needed)
    if ib > 1 and p + 1 > 0:
        v1 = pf.v[: ib - 1, : ib - 1]
        if workspace is not None:
            w = workspace.buf("upd.panel_top", (p + 1, ib - 1), dtype=a.dtype)
            np.matmul(pf.y[0 : p + 1, : ib - 1], v1.T, out=w)
        else:
            w = pf.y[0 : p + 1, : ib - 1] @ v1.T
        a[0 : p + 1, p + 1 : p + ib] -= w
        if counter is not None:
            counter.add(category, F.trmm_flops(p + 1, ib - 1, False) + (p + 1) * (ib - 1))


def apply_left_update(
    a: np.ndarray,
    pf: PanelFactors,
    n: int,
    ncols: int | None = None,
    *,
    counter: FlopCounter | None = None,
    category: str = "left_update",
    workspace: Workspace | None = None,
) -> None:
    """Apply the panel's left update ``(I − V Tᵀ Vᵀ)`` to the trailing block.

    Covers ``a[p+1 : n, p+ib : ncols]``; mutates ``a`` in place.
    """
    p, ib = pf.p, pf.ib
    ncols = a.shape[1] if ncols is None else ncols
    if p + ib >= ncols:
        return
    if _can_fuse(a, pf, workspace):
        # The projection W = Tᵀ(VᵀC) runs on the active row window
        # [p+1, n) only — padding it with v_full's zero rows would waste
        # O(p·ncols·ib) flops per iteration for identical results modulo
        # lane-shifted rounding.  The apply keeps the padded v_full so it
        # can update the F-contiguous full-column slice in place (the
        # zero rows only receive a bitwise no-op -0.0*w subtraction).
        cfull = a[:, p + ib : ncols]
        ncf = ncols - (p + ib)
        w1 = workspace.buf("upd.w1", (ib, ncf), dtype=a.dtype)
        w2 = workspace.buf("upd.w2", (ib, ncf), dtype=a.dtype)
        np.matmul(pf.v.T, a[p + 1 : n, p + ib : ncols], out=w1)
        gemm_inplace(1.0, pf.t, w1, w2, trans_a=True, beta=0.0)
        gemm_inplace(-1.0, pf.v_full, w2, cfull)
        if counter is not None:
            m = n - p - 1
            counter.add(
                category,
                F.gemm_flops(ib, ncf, m) + F.trmm_flops(ib, ncf, True) + F.gemm_flops(m, ncf, ib),
            )
        return
    larfb(
        pf.v,
        pf.t,
        a[p + 1 : n, p + ib : ncols],
        side="left",
        trans=True,
        counter=counter,
        category=category,
    )


def gehrd(
    a: np.ndarray,
    *,
    nb: int = DEFAULT_NB,
    nx: int | None = None,
    counter: FlopCounter | None = None,
    keep_panels: bool = False,
) -> HessenbergFactorization:
    """Blocked Hessenberg reduction of the square matrix *a*, in place.

    Parameters
    ----------
    a:
        Square float64 matrix, reduced in place (use ``a.copy(order='F')``
        to preserve the input).
    nb:
        Block (panel) width.
    nx:
        Crossover to the unblocked algorithm (defaults to ``nb``).
    counter:
        Optional flop counter.
    keep_panels:
        Record the per-panel WY factors in the result (costs memory; used
        by analysis code). Disables workspace pooling — recorded factors
        must outlive the iteration that produced them, which pooled
        buffers do not.
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"gehrd needs a square matrix, got {a.shape}")
    n = a.shape[0]
    nx = max(nb, nx if nx is not None else DEFAULT_NX)
    taus = np.zeros(max(n - 1, 0), dtype=a.dtype)
    panels: list[PanelFactors] = []
    ws = None if keep_panels else Workspace()

    p = 0
    while n - 1 - p > nx:
        ib = min(nb, n - 1 - p)
        pf = lahr2(a, p, ib, n, counter=counter, workspace=ws)
        taus[p : p + ib] = pf.taus

        # right update needs the unit entry of the last reflector in place
        ei = a[p + ib, p + ib - 1]
        a[p + ib, p + ib - 1] = 1.0
        apply_right_updates(a, pf, n, counter=counter, workspace=ws)
        a[p + ib, p + ib - 1] = ei

        apply_left_update(a, pf, n, counter=counter, workspace=ws)

        if keep_panels:
            panels.append(pf)
        p += ib

    # unblocked clean-up of the remaining columns
    gehd2(a, p, n, taus_out=taus, counter=counter)

    return HessenbergFactorization(a=a, taus=taus, nb=nb, panels=panels)
