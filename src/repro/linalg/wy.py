"""Compact WY representation of products of Householder reflectors.

A group of ``k`` reflectors is aggregated as ``U = H_1 H_2 ... H_k =
I - V T Vᵀ`` (Schreiber & Van Loan's storage-efficient WY form, the
representation the paper's Section III-B quotes). ``V`` is the (m x k)
matrix of Householder vectors (unit "diagonal" made explicit by the
caller) and ``T`` is k x k upper triangular.

The block application :func:`larfb` is the workhorse of both the right and
left trailing-matrix updates — and of their *reversals*: because
``I - V T Vᵀ`` is orthogonal, the reverse of a left update is a left
update with the transposed T, through this very same routine
(:mod:`repro.abft.reverse` relies on that).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.linalg import flops as F
from repro.linalg.flops import FlopCounter


def larft(
    v: np.ndarray,
    taus: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "larft",
) -> np.ndarray:
    """Form the upper-triangular T of the compact WY form (DLARFT,
    forward / columnwise).

    Parameters
    ----------
    v:
        (m x k) matrix of Householder vectors, *including* the explicit
        unit entries (row i of column i is 1, zeros above).
    taus:
        Length-k reflector scales.
    """
    m, k = v.shape
    if taus.shape != (k,):
        raise ShapeError(f"larft: taus {taus.shape} does not match V {v.shape}")
    t = np.zeros((k, k), order="F", dtype=v.dtype)
    for i in range(k):
        tau = taus[i]
        if tau == 0.0:
            continue
        if i > 0:
            # T(0:i, i) = -tau * V(:, 0:i)ᵀ @ V(:, i), then T(0:i,0:i) @ that
            w = v[:, :i].T @ v[:, i]
            t[:i, i] = t[:i, :i] @ (-tau * w)
            if counter is not None:
                counter.add(category, F.gemv_flops(i, m) + F.trmv_flops(i))
        t[i, i] = tau
    return t


def block_reflector(v: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Return the explicit orthogonal factor ``U = I - V T Vᵀ`` (tests only)."""
    m = v.shape[0]
    return np.eye(m) - v @ t @ v.T


def larfb(
    v: np.ndarray,
    t: np.ndarray,
    c: np.ndarray,
    *,
    side: str = "left",
    trans: bool = False,
    counter: FlopCounter | None = None,
    category: str = "larfb",
) -> np.ndarray:
    """Apply the block reflector ``U = I - V T Vᵀ`` to C in place (DLARFB).

    ``side='left', trans=False``:  ``C <- U C    = C - V T (Vᵀ C)``
    ``side='left', trans=True``:   ``C <- Uᵀ C   = C - V Tᵀ (Vᵀ C)``
    ``side='right', trans=False``: ``C <- C U    = C - (C V) T Vᵀ``
    ``side='right', trans=True``:  ``C <- C Uᵀ   = C - (C V) Tᵀ Vᵀ``

    *v* is dense with explicit unit entries; this is deliberate — the
    fault-tolerant algorithm substitutes the checksum-extended ``Vce``
    here, and the reverse-computation path substitutes the transposed T.
    """
    m, k = v.shape
    if t.shape != (k, k):
        raise ShapeError(f"larfb: T {t.shape} does not match V {v.shape}")
    opt = t.T if trans else t
    if side == "left":
        if c.shape[0] != m:
            raise ShapeError(f"larfb left: V {v.shape} vs C {c.shape}")
        n = c.shape[1]
        w = v.T @ c              # k x n
        w = opt @ w              # k x n
        c -= v @ w
        if counter is not None:
            counter.add(
                category,
                F.gemm_flops(k, n, m) + F.trmm_flops(k, n, True) + F.gemm_flops(m, n, k),
            )
    elif side == "right":
        if c.shape[1] != m:
            raise ShapeError(f"larfb right: V {v.shape} vs C {c.shape}")
        rows = c.shape[0]
        w = c @ v                # rows x k
        w = w @ opt              # rows x k
        c -= w @ v.T
        if counter is not None:
            counter.add(
                category,
                F.gemm_flops(rows, k, m)
                + F.trmm_flops(rows, k, False)
                + F.gemm_flops(rows, m, k),
            )
    else:
        raise ShapeError(f"larfb side must be 'left' or 'right', got {side!r}")
    return c
