"""Panel factorization for the blocked Hessenberg reduction (DLAHR2).

``lahr2`` reduces ``ib`` columns of A starting at column ``p`` so that the
elements below the first subdiagonal of those columns are annihilated,
returning the compact-WY factors ``V`` and ``T`` of the aggregated block
reflector ``U = I - V T Vᵀ`` together with ``Y = Ã V T`` (the product with
the *partially updated* matrix, exactly as LAPACK computes it — this is
the quantity the trailing right update ``A ← A − Y Vᵀ`` consumes).

The routine is a faithful 0-based translation of LAPACK's ``DLAHR2``
(the routine MAGMA's hybrid algorithm calls ``MAGMA_DLAHR2``), operating
in place: on return the Householder vectors are stored below the first
subdiagonal of the panel columns of *a*, the panel's upper-triangular part
holds the corresponding columns of H, and the subdiagonal entry below the
last panel column holds ``ei`` (the β of the last reflector).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.linalg import flops as F
from repro.linalg.flops import FlopCounter
from repro.linalg.householder import larfg


@dataclass
class PanelFactors:
    """Output of one panel factorization.

    Attributes
    ----------
    p:
        0-based global column index of the first panel column.
    ib:
        Panel width (number of reflectors aggregated).
    v:
        Dense Householder-vector block, shape ``(n - p - 1, ib)``: row ``r``
        corresponds to global row ``p + 1 + r``; the unit entries are
        explicit, entries above them are zero. This is the ``V`` the paper's
        updates (and their checksum extensions ``Vce``) multiply with.
    t:
        ``(ib, ib)`` upper-triangular T of the compact WY form.
    y:
        ``(n, ib)``: ``Y = Ã V T`` over all n active rows.
    taus:
        The ``ib`` reflector scales.
    ei:
        β of the last reflector — the subdiagonal value A[p+ib, p+ib-1]
        that the trailing update temporarily replaces with 1.
    """

    p: int
    ib: int
    v: np.ndarray
    t: np.ndarray
    y: np.ndarray
    taus: np.ndarray
    ei: float


def lahr2(
    a: np.ndarray,
    p: int,
    ib: int,
    n: int,
    *,
    counter: FlopCounter | None = None,
    category: str = "panel",
) -> PanelFactors:
    """Factorize the panel ``a[:, p : p+ib]`` of the n-active matrix *a*.

    Parameters
    ----------
    a:
        The full matrix (may be larger than ``n x n`` — e.g. the
        checksum-extended matrix of the fault-tolerant algorithm; only
        indices ``< n`` are read or written).
    p:
        0-based first panel column.
    ib:
        Panel width; requires ``p + ib < n`` (there must be at least one
        row below the last reflector's pivot).
    n:
        Active dimension (rows and columns participating in the
        reduction).
    """
    if not (0 <= p and p + ib < n <= min(a.shape)):
        raise ShapeError(f"invalid panel: p={p}, ib={ib}, n={n}, A shape {a.shape}")
    if ib < 1:
        raise ShapeError(f"panel width must be >= 1, got {ib}")

    taus = np.zeros(ib)
    t = np.zeros((ib, ib), order="F")
    y = np.zeros((n, ib), order="F")
    ei = 0.0

    for j in range(ib):
        c = p + j  # global column of reflector j
        if j > 0:
            # Update column c with the previous reflectors:
            # (1) right update contribution:  A[p+1:n, c] -= Y[p+1:n, :j] @ V[row p+j-1? ...]
            #     LAPACK uses the V-row at global row p+j (the unit row of
            #     reflector j-1 is p+j) — A[p+j, p:p+j] holds that row with
            #     its unit entry currently overwritten below; the unit entry
            #     of reflector j-1 sits at A[p+j, p+j-1] which was set to 1.
            vrow = a[p + j, p : p + j]
            a[p + 1 : n, c] -= y[p + 1 : n, :j] @ vrow
            if counter is not None:
                counter.add(category, F.gemv_flops(n - p - 1, j))

            # (2) left update: apply (I - V Tᵀ Vᵀ) to this column b.
            #     b1 = a[p+1 : p+j+1, c] (j rows), b2 = a[p+j+1 : n, c]
            v1 = a[p + 1 : p + j + 1, p : p + j]  # unit lower triangular j x j
            v2 = a[p + j + 1 : n, p : p + j]
            b1 = a[p + 1 : p + j + 1, c]
            b2 = a[p + j + 1 : n, c]
            # w := V1ᵀ b1 (unit lower triangle)
            w = np.tril(v1, -1).T @ b1 + b1.copy()
            # w += V2ᵀ b2
            w += v2.T @ b2
            # w := Tᵀ w
            w = t[:j, :j].T @ w
            # b2 -= V2 w ; b1 -= V1 w
            b2 -= v2 @ w
            b1 -= np.tril(v1, -1) @ w + w
            if counter is not None:
                counter.add(
                    category,
                    2 * F.trmv_flops(j) + 2 * F.gemv_flops(n - p - j - 1, j) + F.trmv_flops(j),
                )
            # restore the subdiagonal entry overwritten by the unit of
            # reflector j-1
            a[p + j, p + j - 1] = ei

        # Generate reflector j annihilating a[p+j+2 : n, c]
        pivot_row = p + j + 1
        refl = larfg(a[pivot_row, c], a[pivot_row + 1 : n, c], counter=counter, category=category)
        ei = refl.beta
        a[pivot_row, c] = 1.0

        vj = a[pivot_row:n, c]  # full reflector vector (unit entry in place)

        # Y[p+1:n, j] = tau_j * ( A[p+1:n, p+j+1:n] @ vj  -  Y[p+1:n, :j] @ (V2ᵀ vj) )
        y[p + 1 : n, j] = a[p + 1 : n, pivot_row : n] @ vj
        if j > 0:
            tcol = a[pivot_row:n, p : p + j].T @ vj
            y[p + 1 : n, j] -= y[p + 1 : n, :j] @ tcol
            # T[:j, j] = -tau_j * T[:j,:j] @ tcol
            t[:j, j] = t[:j, :j] @ (-refl.tau * tcol)
        y[p + 1 : n, j] *= refl.tau
        t[j, j] = refl.tau
        taus[j] = refl.tau
        if counter is not None:
            counter.add(
                category,
                F.gemv_flops(n - p - 1, n - pivot_row)
                + (F.gemv_flops(n - pivot_row, j) + F.gemv_flops(n - p - 1, j) + F.trmv_flops(j) if j > 0 else 0)
                + F.scal_flops(n - p - 1),
            )

    # restore the subdiagonal entry below the last panel column
    a[p + ib, p + ib - 1] = ei

    # Build the dense V block (rows p+1 .. n-1), unit entries explicit.
    v = np.zeros((n - p - 1, ib), order="F")
    for j in range(ib):
        v[j:, j] = a[p + 1 + j : n, p + j]
        v[j, j] = 1.0

    # Compute Y[0 : p+1, :] — the top rows: Y_top = A_top @ V (split into
    # the unit-lower-trapezoid part and the rectangular remainder), then @ T.
    k = p + 1
    if k > 0:
        y_top = a[0:k, p + 1 : p + 1 + ib].copy()
        v1 = v[:ib, :]  # unit lower triangular ib x ib
        y_top = y_top @ np.tril(v1)
        if n > p + 1 + ib:
            y_top += a[0:k, p + 1 + ib : n] @ v[ib:, :]
        y_top = y_top @ np.triu(t)
        y[0:k, :] = y_top
        if counter is not None:
            counter.add(
                category,
                F.trmm_flops(k, ib, False)
                + F.gemm_flops(k, ib, max(0, n - p - 1 - ib))
                + F.trmm_flops(k, ib, False),
            )

    return PanelFactors(p=p, ib=ib, v=v, t=t, y=y, taus=taus, ei=float(ei))
