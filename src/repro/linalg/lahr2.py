"""Panel factorization for the blocked Hessenberg reduction (DLAHR2).

``lahr2`` reduces ``ib`` columns of A starting at column ``p`` so that the
elements below the first subdiagonal of those columns are annihilated,
returning the compact-WY factors ``V`` and ``T`` of the aggregated block
reflector ``U = I - V T Vᵀ`` together with ``Y = Ã V T`` (the product with
the *partially updated* matrix, exactly as LAPACK computes it — this is
the quantity the trailing right update ``A ← A − Y Vᵀ`` consumes).

The routine is a faithful 0-based translation of LAPACK's ``DLAHR2``
(the routine MAGMA's hybrid algorithm calls ``MAGMA_DLAHR2``), operating
in place: on return the Householder vectors are stored below the first
subdiagonal of the panel columns of *a*, the panel's upper-triangular part
holds the corresponding columns of H, and the subdiagonal entry below the
last panel column holds ``ei`` (the β of the last reflector).

Unlike LAPACK's, this implementation builds the dense V block
*incrementally* (one column per reflector) so the per-column left update
is two plain GEMVs against it — no ``np.tril`` triangle materializations
— and every temporary can come from a reusable
:class:`~repro.perf.workspace.Workspace` arena instead of a fresh
allocation. V is kept inside a zero-padded buffer spanning *all* rows of
the storage (``v_full``), which is what lets the checksum-extended
updates run as single in-place GEMMs on full-column slices: the zero
rows contribute exactly nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.linalg import flops as F
from repro.linalg.flops import FlopCounter
from repro.linalg.householder import larfg
from repro.perf.workspace import Workspace


@dataclass
class PanelFactors:
    """Output of one panel factorization.

    Attributes
    ----------
    p:
        0-based global column index of the first panel column.
    ib:
        Panel width (number of reflectors aggregated).
    v:
        Dense Householder-vector block, shape ``(n - p - 1, ib)``: row ``r``
        corresponds to global row ``p + 1 + r``; the unit entries are
        explicit, entries above them are zero. This is the ``V`` the paper's
        updates (and their checksum extensions ``Vce``) multiply with.
    t:
        ``(ib, ib)`` upper-triangular T of the compact WY form.
    y:
        ``(n, ib)``: ``Y = Ã V T`` over all n active rows.
    taus:
        The ``ib`` reflector scales.
    ei:
        β of the last reflector — the subdiagonal value A[p+ib, p+ib-1]
        that the trailing update temporarily replaces with 1.
    v_full:
        The zero-padded V buffer spanning every row of the storage array
        *a* (``v_full[p+1:n] is v``; all other rows are exactly zero).
        The fused checksum kernels multiply with this block so their
        in-place GEMMs can run on F-contiguous full-column slices.
        When the factors came from a pooled workspace, ``v``/``y``/
        ``v_full`` are views into it and stay valid only until the next
        panel factorization reuses the arena — the same lifetime the
        paper's reverse-computation premise assumes.
    """

    p: int
    ib: int
    v: np.ndarray
    t: np.ndarray
    y: np.ndarray
    taus: np.ndarray
    ei: float
    v_full: np.ndarray | None = None


def lahr2(
    a: np.ndarray,
    p: int,
    ib: int,
    n: int,
    *,
    counter: FlopCounter | None = None,
    category: str = "panel",
    workspace: Workspace | None = None,
) -> PanelFactors:
    """Factorize the panel ``a[:, p : p+ib]`` of the n-active matrix *a*.

    Parameters
    ----------
    a:
        The full matrix (may be larger than ``n x n`` — e.g. the
        checksum-extended matrix of the fault-tolerant algorithm; only
        indices ``< n`` are read or written).
    p:
        0-based first panel column.
    ib:
        Panel width; requires ``p + ib < n`` (there must be at least one
        row below the last reflector's pivot).
    n:
        Active dimension (rows and columns participating in the
        reduction).
    workspace:
        Optional scratch arena. When given, V/T/Y/τ and every internal
        temporary live in pooled buffers reused across calls (the
        returned factors are then views with panel lifetime — see
        :class:`PanelFactors`).
    """
    if not (0 <= p and p + ib < n <= min(a.shape)):
        raise ShapeError(f"invalid panel: p={p}, ib={ib}, n={n}, A shape {a.shape}")
    if ib < 1:
        raise ShapeError(f"panel width must be >= 1, got {ib}")

    rows = a.shape[0]
    m1 = n - p - 1  # rows of the dense V block
    dt = a.dtype
    if workspace is not None:
        v_full = workspace.buf("lahr2.v_full", (rows, ib), zero=True, dtype=dt)
        y = workspace.buf("lahr2.y", (n, ib), dtype=dt)
        t = workspace.buf("lahr2.t", (ib, ib), zero=True, dtype=dt)
        taus = workspace.vec("lahr2.taus", ib, zero=True, dtype=dt)
        g = workspace.vec("lahr2.g", m1, dtype=dt)
        wjs = workspace.buf("lahr2.wjs", (ib, 2), dtype=dt)
    else:
        v_full = np.zeros((rows, ib), order="F", dtype=dt)
        y = np.empty((n, ib), order="F", dtype=dt)
        t = np.zeros((ib, ib), order="F", dtype=dt)
        taus = np.zeros(ib, dtype=dt)
        g = np.empty(m1, dtype=dt)
        wjs = np.empty((ib, 2), order="F", dtype=dt)
    # the VᵀvⱼTᵀ projection chain runs through one stacked (ib, 2) block:
    # column 0 holds the raw projection, column 1 the T-scaled result —
    # a single pooled temporary (each column is a contiguous vector).
    wj = wjs[:, 0]
    wj2 = wjs[:, 1]
    v = v_full[p + 1 : n, :]
    # loop-invariant row windows, hoisted out of the per-column hot loop
    arows = a[p + 1 : n]
    ya = y[p + 1 : n]
    ei = 0.0

    for j in range(ib):
        c = p + j  # global column of reflector j
        if j > 0:
            # (1) right-update contribution to column c. The needed V-row
            # (global row p+j) is row j-1 of the dense block — identical
            # to the packed storage row, unit entry included (it is still
            # 1.0 in storage at this point).
            np.matmul(ya[:, :j], v[j - 1, :j], out=g)
            arows[:, c] -= g
            if counter is not None:
                counter.add(category, F.gemv_flops(n - p - 1, j))

            # (2) left update: apply (I - V Tᵀ Vᵀ) to this column. The
            # dense V (explicit units, explicit zeros) turns the
            # triangular/rectangular split of LAPACK into two GEMVs.
            bcol = arows[:, c]
            np.matmul(v[:, :j].T, bcol, out=wj[:j])
            np.matmul(t[:j, :j].T, wj[:j], out=wj2[:j])
            np.matmul(v[:, :j], wj2[:j], out=g)
            bcol -= g
            if counter is not None:
                counter.add(
                    category,
                    2 * F.trmv_flops(j) + 2 * F.gemv_flops(n - p - j - 1, j) + F.trmv_flops(j),
                )
            # restore the subdiagonal entry overwritten by the unit of
            # reflector j-1
            a[p + j, p + j - 1] = ei

        # Generate reflector j annihilating a[p+j+2 : n, c]
        pivot_row = p + j + 1
        refl = larfg(a[pivot_row, c], a[pivot_row + 1 : n, c], counter=counter, category=category)
        ei = refl.beta
        a[pivot_row, c] = 1.0

        vj = a[pivot_row:n, c]  # full reflector vector (unit entry in place)
        v[j:, j] = vj  # incremental dense V (rows above j are already zero)

        # Y[p+1:n, j] = tau_j * ( A[p+1:n, p+j+1:n] @ vj  -  Y[p+1:n, :j] @ (V2ᵀ vj) )
        ycol = ya[:, j]
        np.matmul(arows[:, pivot_row:n], vj, out=ycol)
        if j > 0:
            np.matmul(v[j:, :j].T, vj, out=wj[:j])  # tcol
            np.matmul(ya[:, :j], wj[:j], out=g)
            ycol -= g
            # T[:j, j] = T[:j,:j] @ (-tau_j * tcol)
            np.multiply(wj[:j], -refl.tau, out=wj2[:j])
            np.matmul(t[:j, :j], wj2[:j], out=t[:j, j])
        ycol *= refl.tau
        t[j, j] = refl.tau
        taus[j] = refl.tau
        if counter is not None:
            counter.add(
                category,
                F.gemv_flops(n - p - 1, n - pivot_row)
                + (F.gemv_flops(n - pivot_row, j) + F.gemv_flops(n - p - 1, j) + F.trmv_flops(j) if j > 0 else 0)
                + F.scal_flops(n - p - 1),
            )

    # restore the subdiagonal entry below the last panel column
    a[p + ib, p + ib - 1] = ei

    # Compute Y[0 : p+1, :] — the top rows: Y_top = A_top @ V (split into
    # the unit-lower-trapezoid part and the rectangular remainder), then @ T.
    k = p + 1
    if workspace is not None:
        yt = workspace.buf("lahr2.ytop", (k, ib), dtype=dt)
        yt2 = workspace.buf("lahr2.ytop2", (k, ib), dtype=dt)
    else:
        yt = np.empty((k, ib), order="F", dtype=dt)
        yt2 = np.empty((k, ib), order="F", dtype=dt)
    np.matmul(a[0:k, p + 1 : p + 1 + ib], v[:ib, :], out=yt)
    if n > p + 1 + ib:
        np.matmul(a[0:k, p + 1 + ib : n], v[ib:, :], out=yt2)
        yt += yt2
    np.matmul(yt, t, out=yt2)
    y[0:k, :] = yt2
    if counter is not None:
        counter.add(
            category,
            F.trmm_flops(k, ib, False)
            + F.gemm_flops(k, ib, max(0, n - p - 1 - ib))
            + F.trmm_flops(k, ib, False),
        )

    return PanelFactors(
        p=p, ib=ib, v=v, t=t, y=y, taus=taus, ei=float(ei), v_full=v_full
    )
