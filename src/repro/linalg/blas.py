"""BLAS-like kernels on NumPy arrays with optional flop accounting.

These are the only routines through which the factorizations touch data.
Routing everything through one layer gives us three things the
reproduction needs:

* a single place to count flops (Section-V overhead measurements),
* a single place the hybrid runtime can wrap to timestamp operations,
* in-place semantics that mirror the LAPACK routines the paper builds on,
  which is what makes *reverse computation* exact: the reverse update
  applies the transposed block reflector through these same kernels.

All 2-D operands are expected to be float64; subviews of Fortran-ordered
arrays (as produced by basic slicing) are fine — NumPy handles the strides
and we keep updates in place via ``out[...]`` assignments.

Backend routing
---------------
The GEMM/GEMV/rank-1 cores accept a ``backend=`` adapter
(:mod:`repro.backend`). Shape validation and flop accounting stay here —
one layer, regardless of namespace — while the arithmetic routes through
the adapter's contract: in-place backends (NumPy, CuPy) update the
output buffer exactly as before, functional backends (JAX) get a fresh
result array back. **Callers must use the return value** — that is
already this module's convention, and it is what makes the same call
site correct under both contracts. ``backend=None`` (the default) is
the historical NumPy path, bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.linalg import flops as F
from repro.linalg.flops import FlopCounter


def _count(counter: FlopCounter | None, category: str, n: int | float) -> None:
    if counter is not None:
        counter.add(category, n)


def _functional(backend) -> bool:
    """Does *backend* require the functional (no-mutation) lane?"""
    return backend is not None and not backend.inplace_updates


def gemm(
    alpha: float,
    a: np.ndarray,
    b: np.ndarray,
    beta: float,
    c: np.ndarray,
    *,
    trans_a: bool = False,
    trans_b: bool = False,
    counter: FlopCounter | None = None,
    category: str = "gemm",
    backend=None,
) -> np.ndarray:
    """``C <- alpha * op(A) @ op(B) + beta * C``; returns C.

    ``op(X)`` is ``X`` or ``X.T`` per the ``trans_*`` flags, matching the
    DGEMM interface the hybrid algorithm's pseudocode calls out. In
    place on in-place backends (the default NumPy path is unchanged);
    a fresh array on functional backends.
    """
    opa = a.T if trans_a else a
    opb = b.T if trans_b else b
    if opa.ndim != 2 or opb.ndim != 2 or c.ndim != 2:
        raise ShapeError("gemm operands must be 2-D")
    m, k = opa.shape
    k2, n = opb.shape
    if k != k2 or c.shape != (m, n):
        raise ShapeError(
            f"gemm shape mismatch: op(A) {opa.shape}, op(B) {opb.shape}, C {c.shape}"
        )
    if _functional(backend):
        _count(counter, category, F.gemm_flops(m, n, k))
        return backend.matmul_into(opa, opb, c, alpha=alpha, beta=beta)
    prod = opa @ opb
    if beta == 0.0:
        c[...] = alpha * prod
    elif beta == 1.0:
        if alpha == 1.0:
            c += prod
        elif alpha == -1.0:
            c -= prod
        else:
            c += alpha * prod
    else:
        c *= beta
        c += alpha * prod
    _count(counter, category, F.gemm_flops(m, n, k))
    return c


def gemv(
    alpha: float,
    a: np.ndarray,
    x: np.ndarray,
    beta: float,
    y: np.ndarray,
    *,
    trans: bool = False,
    counter: FlopCounter | None = None,
    category: str = "gemv",
    backend=None,
) -> np.ndarray:
    """``y <- alpha * op(A) @ x + beta * y``; returns y (in place on
    in-place backends, fresh on functional ones)."""
    opa = a.T if trans else a
    m, n = opa.shape
    if x.shape != (n,) or y.shape != (m,):
        raise ShapeError(f"gemv shape mismatch: op(A) {opa.shape}, x {x.shape}, y {y.shape}")
    if _functional(backend):
        _count(counter, category, F.gemv_flops(m, n))
        prod = backend.xp.matmul(opa, x)
        if beta == 0.0:
            return alpha * prod if alpha != 1.0 else prod
        return beta * y + alpha * prod
    prod = opa @ x
    if beta == 0.0:
        y[...] = alpha * prod
    else:
        if beta != 1.0:
            y *= beta
        y += alpha * prod
    _count(counter, category, F.gemv_flops(m, n))
    return y


def ger(
    alpha: float,
    x: np.ndarray,
    y: np.ndarray,
    a: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "ger",
    backend=None,
) -> np.ndarray:
    """Rank-1 update ``A <- A + alpha * x yᵀ``; returns A (in place on
    in-place backends, fresh on functional ones)."""
    m, n = a.shape
    if x.shape != (m,) or y.shape != (n,):
        raise ShapeError(f"ger shape mismatch: A {a.shape}, x {x.shape}, y {y.shape}")
    if _functional(backend):
        _count(counter, category, F.ger_flops(m, n))
        return a + alpha * backend.xp.outer(x, y)
    a += alpha * np.outer(x, y)
    _count(counter, category, F.ger_flops(m, n))
    return a


def trmm(
    alpha: float,
    t: np.ndarray,
    b: np.ndarray,
    *,
    side: str = "left",
    lower: bool = False,
    trans: bool = False,
    unit: bool = False,
    counter: FlopCounter | None = None,
    category: str = "trmm",
) -> np.ndarray:
    """Triangular matrix multiply ``B <- alpha * op(T) @ B`` (or from the right).

    *t* supplies the triangle; elements on the wrong side of the diagonal
    are ignored, and with ``unit=True`` the diagonal is taken to be 1
    (LAPACK stores Householder vectors under an implicit unit diagonal,
    which is exactly how `dlahr2`/`dgehrd` use this routine).
    """
    if side not in ("left", "right"):
        raise ShapeError(f"trmm side must be 'left' or 'right', got {side!r}")
    nt = t.shape[0]
    if t.shape != (nt, nt):
        raise ShapeError(f"trmm triangle must be square, got {t.shape}")
    tri = np.tril(t) if lower else np.triu(t)
    if unit:
        np.fill_diagonal(tri, 1.0)
    opt = tri.T if trans else tri
    if side == "left":
        if b.shape[0] != nt:
            raise ShapeError(f"trmm left: T {t.shape} vs B {b.shape}")
        b[...] = alpha * (opt @ b)
        _count(counter, category, F.trmm_flops(nt, b.shape[1], True))
    else:
        if b.shape[1] != nt:
            raise ShapeError(f"trmm right: T {t.shape} vs B {b.shape}")
        b[...] = alpha * (b @ opt)
        _count(counter, category, F.trmm_flops(b.shape[0], nt, False))
    return b


def trmv(
    t: np.ndarray,
    x: np.ndarray,
    *,
    lower: bool = False,
    trans: bool = False,
    unit: bool = False,
    counter: FlopCounter | None = None,
    category: str = "trmv",
) -> np.ndarray:
    """Triangular matrix-vector multiply ``x <- op(T) @ x`` in place."""
    n = t.shape[0]
    if t.shape != (n, n) or x.shape != (n,):
        raise ShapeError(f"trmv shape mismatch: T {t.shape}, x {x.shape}")
    tri = np.tril(t) if lower else np.triu(t)
    if unit:
        tri = tri.copy()
        np.fill_diagonal(tri, 1.0)
    opt = tri.T if trans else tri
    x[...] = opt @ x
    _count(counter, category, F.trmv_flops(n))
    return x


def axpy(
    alpha: float,
    x: np.ndarray,
    y: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "axpy",
    backend=None,
) -> np.ndarray:
    """``y <- alpha * x + y``; returns y (in place on in-place backends,
    fresh on functional ones)."""
    if x.shape != y.shape:
        raise ShapeError(f"axpy shape mismatch: x {x.shape}, y {y.shape}")
    if _functional(backend):
        _count(counter, category, F.axpy_flops(x.size))
        return y + alpha * x
    y += alpha * x
    _count(counter, category, F.axpy_flops(x.size))
    return y


def scal(
    alpha: float,
    x: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "scal",
) -> np.ndarray:
    """``x <- alpha * x`` in place; returns x."""
    x *= alpha
    _count(counter, category, F.scal_flops(x.size))
    return x


def dot(
    x: np.ndarray,
    y: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "dot",
) -> float:
    """Dot product with exact (2n-1) flop accounting."""
    if x.shape != y.shape or x.ndim != 1:
        raise ShapeError(f"dot shape mismatch: x {x.shape}, y {y.shape}")
    _count(counter, category, F.dot_flops(x.size))
    return float(x @ y)


def nrm2(
    x: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "nrm2",
) -> float:
    """Euclidean norm of a vector."""
    _count(counter, category, F.dot_flops(x.size))
    return float(np.linalg.norm(x))
