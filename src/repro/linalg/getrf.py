"""LU factorization with partial pivoting (DGETRF/DGETRS-style).

The substrate for the HPL-flavoured related work (Du et al., the paper's
refs [6]-[7]): right-looking Gaussian elimination, packed ``L\\U``
storage, and the triangular solves. ``ncols_apply`` lets the
fault-tolerant wrapper extend every elimination step over appended
checksum columns, which therefore ride the factorization exactly
(``L⁻¹P [A | AWᵀ] = [U | UWᵀ]``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, ConvergenceError
from repro.linalg.flops import FlopCounter


def getrf(
    a: np.ndarray,
    *,
    ncols_apply: int | None = None,
    counter: FlopCounter | None = None,
    category: str = "getrf",
) -> np.ndarray:
    """Factorize ``P A = L U`` in place (partial pivoting).

    *a* is n x (n + extra); elimination runs over the first n columns,
    updates extend to ``ncols_apply`` columns. Returns the pivot array
    (``piv[k]`` = row swapped with row k at step k, LAPACK-style).
    """
    n = a.shape[0]
    if a.shape[1] < n:
        raise ShapeError(f"getrf needs at least n columns, got {a.shape}")
    ncols_apply = a.shape[1] if ncols_apply is None else ncols_apply
    piv = np.arange(n)
    for k in range(n):
        p = k + int(np.argmax(np.abs(a[k:n, k])))
        if a[p, k] == 0.0:
            raise ConvergenceError(f"getrf: exact singularity at column {k}")
        piv[k] = p
        if p != k:
            a[[k, p], :ncols_apply] = a[[p, k], :ncols_apply]
        if k + 1 < n:
            a[k + 1 : n, k] /= a[k, k]
            a[k + 1 : n, k + 1 : ncols_apply] -= np.outer(
                a[k + 1 : n, k], a[k, k + 1 : ncols_apply]
            )
            if counter is not None:
                counter.add(category, 2.0 * (n - k - 1) * (ncols_apply - k - 1))
    return piv


def getrs(
    lu: np.ndarray,
    piv: np.ndarray,
    b: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "getrs",
) -> np.ndarray:
    """Solve ``A x = b`` from the packed factorization; returns x."""
    n = lu.shape[0]
    if b.shape != (n,):
        raise ShapeError(f"getrs: b must have length {n}, got {b.shape}")
    x = b.astype(np.result_type(lu.dtype, b.dtype, np.float64), copy=True)
    # apply the pivots
    for k in range(n):
        p = int(piv[k])
        if p != k:
            x[k], x[p] = x[p], x[k]
    # forward substitution with unit-lower L
    for k in range(n):
        x[k + 1 : n] -= lu[k + 1 : n, k] * x[k]
    # back substitution with U
    for k in range(n - 1, -1, -1):
        x[k] -= lu[k, k + 1 : n] @ x[k + 1 : n]
        x[k] /= lu[k, k]
    if counter is not None:
        counter.add(category, 2.0 * n * n)
    return x


def lower_solve(lu: np.ndarray, piv: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L y = P b`` only (the FT locator's tool)."""
    n = lu.shape[0]
    y = b.astype(np.float64, copy=True)
    for k in range(n):
        p = int(piv[k])
        if p != k:
            y[k], y[p] = y[p], y[k]
    for k in range(n):
        y[k + 1 : n] -= lu[k + 1 : n, k] * y[k]
    return y


def lu_residual(a: np.ndarray, lu: np.ndarray, piv: np.ndarray) -> float:
    """``‖P A − L U‖₁ / (N ‖A‖₁)``."""
    n = a.shape[0]
    l = np.tril(lu[:, :n], -1) + np.eye(n)
    u = np.triu(lu[:, :n])
    pa = a.copy()
    for k in range(n):
        p = int(piv[k])
        if p != k:
            pa[[k, p]] = pa[[p, k]]
    na = float(np.linalg.norm(a, 1))
    if na == 0.0:
        return 0.0
    return float(np.linalg.norm(pa - l @ u, 1)) / (n * na)
