"""Unblocked symmetric tridiagonal reduction (DSYTD2-style, full storage).

The second two-sided factorization of the family the paper's conclusion
targets ("we plan to provide soft error resilience for the rest of the
hybrid two-sided factorizations"). Reduction of a symmetric A to
tridiagonal T by Householder similarity: ``T = Qᵀ A Q``.

This implementation keeps *full* (both-triangle) storage — slightly
redundant arithmetic, but it makes the checksum mathematics of the
fault-tolerant variant (:mod:`repro.core.ft_tridiag`) transparent: every
update is applied to explicit row and column ranges of the same array.
Householder vectors are stored below the first subdiagonal, as in
LAPACK; the mirrored upper entries are zeroed explicitly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.linalg.flops import FlopCounter
from repro.linalg.householder import larfg


def sytd2(
    a: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "sytd2",
    symmetric_tol: float = 1e-12,
) -> np.ndarray:
    """Reduce the symmetric matrix *a* to tridiagonal form in place.

    On return the tridiagonal band of *a* holds T, the Householder
    vectors live below the first subdiagonal, and the upper triangle
    beyond the first superdiagonal is zero. Returns the tau vector.

    Raises :class:`ShapeError` if *a* is not (numerically) symmetric.
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"sytd2 needs a square matrix, got {a.shape}")
    n = a.shape[0]
    scale = float(np.max(np.abs(a))) if n else 0.0
    if n and float(np.max(np.abs(a - a.T))) > symmetric_tol * max(scale, 1.0):
        raise ShapeError("sytd2 input is not symmetric")

    taus = np.zeros(max(n - 1, 0))
    for j in range(n - 2):
        refl = larfg(a[j + 1, j], a[j + 2 : n, j], counter=counter, category=category)
        tau = refl.tau
        taus[j] = tau
        beta = refl.beta
        a[j + 1, j] = 1.0
        v = a[j + 1 : n, j].copy()

        if tau != 0.0:
            # symmetric rank-2 update of the trailing block:
            #   u = tau A v;  w = u − (tau/2)(uᵀv) v;  A ← A − v wᵀ − w vᵀ
            trail = a[j + 1 : n, j + 1 : n]
            u = tau * (trail @ v)
            w = u - (0.5 * tau * float(u @ v)) * v
            trail -= np.outer(v, w) + np.outer(w, v)
            if counter is not None:
                m = n - j - 1
                counter.add(category, 2 * m * m + 2 * m + 4 * m * m)

        # restore the annihilated column/row to their mathematical values
        a[j + 1, j] = beta
        a[j, j + 1] = beta
        a[j + 2 : n, j] = refl.v  # packed Householder vector (LAPACK style)
        a[j, j + 2 : n] = 0.0

    return taus


def tridiagonal_of(a_packed: np.ndarray) -> np.ndarray:
    """Extract the explicit tridiagonal T from packed ``sytd2`` output."""
    n = a_packed.shape[0]
    t = np.zeros((n, n), order="F")
    idx = np.arange(n)
    t[idx, idx] = np.diag(a_packed)
    if n > 1:
        sub = np.diag(a_packed, -1)
        t[idx[1:], idx[:-1]] = sub
        t[idx[:-1], idx[1:]] = sub  # symmetric: mirror the subdiagonal
    return t


def orgtr(a_packed: np.ndarray, taus: np.ndarray) -> np.ndarray:
    """Form the orthogonal Q of the tridiagonal reduction explicitly."""
    n = a_packed.shape[0]
    q = np.eye(n, order="F")
    for j in range(n - 3, -1, -1):
        tau = taus[j]
        if tau == 0.0:
            continue
        u = np.empty(n - j - 1)
        u[0] = 1.0
        u[1:] = a_packed[j + 2 : n, j]
        block = q[j + 1 : n, j + 1 : n]
        wv = u @ block
        block -= tau * np.outer(u, wv)
    return q
