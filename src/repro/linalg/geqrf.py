"""Householder QR factorization (DGEQR2 / DGEQRF / DORGQR).

The one-sided factorization the paper's related work protects (Du,
Luszczek, Tomov, Dongarra — "Soft error resilient QR factorization for
hybrid system with GPGPU", the paper's ref [8]). Implemented here as the
substrate for the FT-QR comparator in :mod:`repro.core.ft_qr`: the
blocked driver reuses the compact-WY machinery (`larft`/`larfb`) shared
with the Hessenberg path.

Storage is LAPACK-packed: R in the upper triangle, Householder vectors
below the diagonal (unit entries implicit).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.linalg.flops import FlopCounter
from repro.linalg.householder import larfg
from repro.linalg.wy import larfb, larft


def geqr2(
    a: np.ndarray,
    col0: int = 0,
    col1: int | None = None,
    *,
    ncols_apply: int | None = None,
    taus_out: np.ndarray | None = None,
    counter: FlopCounter | None = None,
    category: str = "geqr2",
) -> np.ndarray:
    """Unblocked QR on columns ``[col0, col1)`` of *a*, in place.

    Reflector ``j`` annihilates ``a[j+1:, j]``; each reflector is applied
    to the remaining columns up to ``ncols_apply`` (defaults to all of
    *a*'s columns — the fault-tolerant driver passes the extended width so
    the checksum columns ride along). Returns the taus for the processed
    columns (written into *taus_out* when given).
    """
    m, ntot = a.shape
    col1 = min(col1 if col1 is not None else ntot, m, ntot)
    ncols_apply = ntot if ncols_apply is None else ncols_apply
    taus = taus_out if taus_out is not None else np.zeros(min(m, ntot))
    for j in range(col0, col1):
        refl = larfg(a[j, j], a[j + 1 : m, j], counter=counter, category=category)
        taus[j] = refl.tau
        beta = refl.beta
        if refl.tau != 0.0 and j + 1 < ncols_apply:
            a[j, j] = 1.0
            u = a[j:m, j]
            block = a[j:m, j + 1 : ncols_apply]
            w = u @ block
            block -= refl.tau * np.outer(u, w)
            if counter is not None:
                counter.add(category, 4.0 * (m - j) * (ncols_apply - j - 1))
        a[j, j] = beta
    return taus


def geqrf(
    a: np.ndarray,
    *,
    nb: int = 32,
    ncols_apply: int | None = None,
    counter: FlopCounter | None = None,
) -> np.ndarray:
    """Blocked Householder QR of *a* (m x n, m >= n), in place.

    Returns the tau vector. ``ncols_apply`` extends the trailing updates
    beyond column n (the FT driver's checksum columns).
    """
    m, ntot = a.shape
    n = min(m, ntot)
    ncols_apply = ntot if ncols_apply is None else ncols_apply
    taus = np.zeros(n)
    p = 0
    while p < n:
        ib = min(nb, n - p)
        # factor the panel, applying reflectors within the panel only
        geqr2(a, p, p + ib, ncols_apply=p + ib, taus_out=taus, counter=counter)
        if p + ib < ncols_apply:
            # aggregate the panel and update the trailing columns
            v = np.zeros((m - p, ib), order="F")
            for j in range(ib):
                v[j, j] = 1.0
                v[j + 1 :, j] = a[p + j + 1 : m, p + j]
            t = larft(v, taus[p : p + ib], counter=counter, category="qr_larft")
            larfb(
                v,
                t,
                a[p:m, p + ib : ncols_apply],
                side="left",
                trans=True,
                counter=counter,
                category="qr_update",
            )
        p += ib
    return taus


def orgqr(a_packed: np.ndarray, taus: np.ndarray) -> np.ndarray:
    """Form the explicit m x m orthogonal Q from packed reflectors."""
    m = a_packed.shape[0]
    n = min(m, a_packed.shape[1], taus.shape[0])
    q = np.eye(m, order="F")
    for j in range(n - 1, -1, -1):
        tau = taus[j]
        if tau == 0.0:
            continue
        u = np.empty(m - j)
        u[0] = 1.0
        u[1:] = a_packed[j + 1 : m, j]
        block = q[j:m, j:m]
        w = u @ block
        block -= tau * np.outer(u, w)
    return q


def r_of(a_packed: np.ndarray) -> np.ndarray:
    """Extract the upper-triangular R from packed storage."""
    return np.asfortranarray(np.triu(a_packed[: a_packed.shape[1], :]))


def qr_residual(a: np.ndarray, q: np.ndarray, r: np.ndarray) -> float:
    """``‖A − Q R‖₁ / (N ‖A‖₁)`` — the QR analogue of the paper's residual."""
    n = a.shape[0]
    na = float(np.linalg.norm(a, 1))
    if na == 0.0:
        return 0.0
    qr = q[:, : r.shape[0]] @ r
    return float(np.linalg.norm(a - qr, 1)) / (n * na)
