"""Singular values of an upper-bidiagonal matrix (DBDSQR-style).

Implicit-shift Golub-Kahan QR on the (d, e) arrays with Givens
rotations, Wilkinson shift from the trailing 2x2 of BᵀB, standard
deflation, and the zero-diagonal chase. Together with
:mod:`repro.linalg.gebd2` this completes the from-scratch dense SVD
pipeline: ``A → (Q, B, P) → Σ``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConvergenceError, ShapeError


def _rot(f: float, g: float) -> tuple[float, float, float]:
    """Givens rotation: returns (c, s, r) with c·f + s·g = r and
    −s·f + c·g = 0 (LAPACK DLARTG semantics)."""
    if g == 0.0:
        return 1.0, 0.0, f
    if f == 0.0:
        return 0.0, 1.0, g
    r = math.copysign(math.hypot(f, g), f)
    return f / r, g / r, r


def _gk_step(d: np.ndarray, e: np.ndarray, lo: int, hi: int) -> None:
    """One implicit-shift Golub-Kahan sweep on the unreduced block
    ``d[lo..hi], e[lo..hi-1]`` (all entries nonzero)."""
    dm, dn, em = d[hi - 1], d[hi], e[hi - 1]
    emm = e[hi - 2] if hi - 2 >= lo else 0.0
    t11 = dm * dm + emm * emm
    t22 = dn * dn + em * em
    t12 = dm * em
    dd = (t11 - t22) / 2.0
    if dd == 0.0 and t12 == 0.0:
        mu = t22
    else:
        mu = t22 - t12 * t12 / (dd + math.copysign(math.hypot(dd, t12), dd))

    f = d[lo] * d[lo] - mu
    g = d[lo] * e[lo]
    for k in range(lo, hi):
        # right rotation on columns (k, k+1)
        c, s, r = _rot(f, g)
        if k > lo:
            e[k - 1] = r
        f = c * d[k] + s * e[k]
        e[k] = c * e[k] - s * d[k]
        g = s * d[k + 1]
        d[k + 1] = c * d[k + 1]
        # left rotation on rows (k, k+1) to chase the bulge
        c, s, r = _rot(f, g)
        d[k] = r
        f = c * e[k] + s * d[k + 1]
        d[k + 1] = c * d[k + 1] - s * e[k]
        if k < hi - 1:
            g = s * e[k + 1]
            e[k + 1] = c * e[k + 1]
    e[hi - 1] = f


def _chase_zero_diagonal(d: np.ndarray, e: np.ndarray, i: int, hi: int) -> None:
    """``d[i] == 0``: annihilate ``e[i]`` by left rotations involving row i
    and rows ``i+1..hi``, pushing the coupling off the end."""
    g = e[i]
    e[i] = 0.0
    for j in range(i + 1, hi + 1):
        c, s, r = _rot(d[j], g)
        d[j] = r
        if j < hi:
            g = -s * e[j]
            e[j] = c * e[j]
        else:
            g = 0.0


def bidiagonal_svdvals(
    d_in: np.ndarray,
    e_in: np.ndarray,
    *,
    max_sweeps_per_value: int = 30,
) -> np.ndarray:
    """Singular values (descending) of the upper-bidiagonal matrix with
    diagonal *d_in* and superdiagonal *e_in*.

    Raises :class:`ConvergenceError` if a deflation stalls beyond the
    sweep budget.
    """
    d = np.asarray(d_in, dtype=np.float64).copy()
    e = np.asarray(e_in, dtype=np.float64).copy()
    n = d.size
    if e.size != max(n - 1, 0):
        raise ShapeError(f"superdiagonal must have length {n - 1}, got {e.size}")
    if n == 0:
        return np.zeros(0)
    if n == 1:
        return np.abs(d)

    eps = np.finfo(np.float64).eps
    scale = max(float(np.max(np.abs(d))), float(np.max(np.abs(e))) if e.size else 0.0, 1e-300)

    hi = n - 1
    budget = max_sweeps_per_value * n + 20
    total = 0
    while hi > 0:
        total += 1
        if total > budget:
            raise ConvergenceError("bidiagonal QR exceeded its sweep budget")
        # deflate negligible superdiagonals from the bottom
        while hi > 0 and abs(e[hi - 1]) <= eps * (abs(d[hi - 1]) + abs(d[hi]) + scale * eps):
            e[hi - 1] = 0.0
            hi -= 1
        if hi == 0:
            break
        # find the unreduced block [lo, hi]
        lo = hi
        while lo > 0 and abs(e[lo - 1]) > eps * (abs(d[lo - 1]) + abs(d[lo]) + scale * eps):
            lo -= 1
        # zero (or negligible) diagonal inside the block needs the chase
        deflated_zero = False
        for i in range(lo, hi):
            if abs(d[i]) <= eps * scale:
                d[i] = 0.0
                _chase_zero_diagonal(d, e, i, hi)
                deflated_zero = True
                break
        if deflated_zero:
            continue
        _gk_step(d, e, lo, hi)

    return np.sort(np.abs(d))[::-1]


def svdvals_via_bidiagonal(a: np.ndarray) -> np.ndarray:
    """Singular values of a general square matrix through our pipeline:
    bidiagonal reduction then implicit-QR iteration."""
    from repro.linalg.gebd2 import gebd2

    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"svdvals_via_bidiagonal needs a square matrix, got {a.shape}")
    work = np.array(a, dtype=np.float64, order="F", copy=True)
    gebd2(work)
    d = np.diag(work).copy()
    e = np.diag(work, 1).copy()
    return bidiagonal_svdvals(d, e)
