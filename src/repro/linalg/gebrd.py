"""Blocked bidiagonal reduction (DLABRD + DGEBRD, square/upper variant).

The blocked counterpart of :mod:`repro.linalg.gebd2`: panels of ``nb``
column/row reflector pairs are aggregated with companion blocks X, Y so
the trailing matrix receives two GEMMs

    ``A ← A − V Yᵀ − X Uᵀ``

instead of ``2·nb`` rank-1 updates — completing the blocked family
(gehrd, sytrd, gebrd) exactly as LAPACK structures it. Faithful 0-based
translation of ``DLABRD`` for the square case.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.linalg.flops import FlopCounter
from repro.linalg.householder import larfg

DEFAULT_NB = 32


def labrd(
    a: np.ndarray,
    p: int,
    nb: int,
    n: int,
    tau_q: np.ndarray,
    tau_p: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    category: str = "labrd",
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Reduce ``nb`` rows and columns starting at *p*; returns (X, Y, d, e).

    X is (n−p, nb) (rows ↔ global rows p..n−1), Y is (n−p, nb) (rows ↔
    global *columns* p..n−1). On return the packed reflector storage is
    in place but the processed diagonal/superdiagonal entries still hold
    the reflector units — the caller applies the trailing update first
    and then restores the returned band values d, e (DGEBRD's order).
    """
    if not (0 <= p and p + nb <= n <= min(a.shape)):
        raise ShapeError(f"invalid panel: p={p}, nb={nb}, n={n}, A {a.shape}")
    m = n  # square
    x = np.zeros((n - p, nb), order="F")
    y = np.zeros((n - p, nb), order="F")
    d = np.zeros(nb)
    e = np.zeros(nb)

    for i in range(nb):
        c = p + i
        # ---- update column c with the accumulated V·Yᵀ + X·Uᵀ pieces ----
        if i > 0:
            a[c:m, c] -= a[c:m, p:c] @ y[c - p, :i]
            a[c:m, c] -= x[c - p :, :i] @ a[p:c, c]
            if counter is not None:
                counter.add(category, 4.0 * (m - c) * i)

        # ---- column (Q-side) reflector -----------------------------------
        refl = larfg(a[c, c], a[c + 1 : m, c], counter=counter, category=category)
        tau_q[c] = refl.tau
        d[i] = refl.beta
        if c < n - 1:
            a[c, c] = 1.0
            u = a[c:m, c]

            # ---- Y(:, i): the left-update companion -----------------------
            yi = a[c:m, c + 1 : n].T @ u
            if i > 0:
                t1 = a[c:m, p:c].T @ u
                yi -= y[c + 1 - p :, :i] @ t1
                t2 = x[c - p :, :i].T @ u
                yi -= a[p:c, c + 1 : n].T @ t2
            yi *= refl.tau
            y[c + 1 - p :, i] = yi
            if counter is not None:
                counter.add(category, 2.0 * (m - c) * (n - c - 1) + 8.0 * (m - c) * i)

            # ---- update row c beyond the diagonal --------------------------
            a[c, c + 1 : n] -= y[c + 1 - p :, : i + 1] @ a[c, p : c + 1]
            if i > 0:
                a[c, c + 1 : n] -= a[p:c, c + 1 : n].T @ x[c - p, :i]
            if counter is not None:
                counter.add(category, 4.0 * (n - c - 1) * (i + 1))

            # ---- row (P-side) reflector ------------------------------------
            reflp = larfg(a[c, c + 1], a[c, c + 2 : n], counter=counter,
                          category=category)
            tau_p[c] = reflp.tau
            e[i] = reflp.beta
            a[c, c + 1] = 1.0
            v = a[c, c + 1 : n]

            # ---- X(:, i): the right-update companion ------------------------
            xi = a[c + 1 : m, c + 1 : n] @ v
            s1 = y[c + 1 - p :, : i + 1].T @ v
            xi -= a[c + 1 : m, p : c + 1] @ s1
            if i > 0:
                s2 = a[p:c, c + 1 : n] @ v
                xi -= x[c + 1 - p :, :i] @ s2
            xi *= reflp.tau
            x[c + 1 - p :, i] = xi
            if counter is not None:
                counter.add(
                    category, 2.0 * (m - c - 1) * (n - c - 1) + 8.0 * (n - c) * (i + 1)
                )
    return x, y, d, e


def gebrd(
    a: np.ndarray,
    *,
    nb: int = DEFAULT_NB,
    counter: FlopCounter | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Blocked reduction of square *a* to upper bidiagonal form in place
    (same output convention as :func:`~repro.linalg.gebd2.gebd2`).
    Returns ``(tau_q, tau_p)``.
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"gebrd needs a square matrix, got {a.shape}")
    n = a.shape[0]
    tau_q = np.zeros(n)
    tau_p = np.zeros(max(n - 1, 0))

    p = 0
    while n - p > nb + 2:
        x, y, d, e = labrd(a, p, nb, n, tau_q, tau_p, counter=counter)
        # trailing update: A ← A − V Yᵀ − X Uᵀ over the unreduced block
        lo = nb  # X/Y row index of global row/col p+nb
        a[p + nb : n, p + nb : n] -= a[p + nb : n, p : p + nb] @ y[lo:, :].T
        a[p + nb : n, p + nb : n] -= x[lo:, :] @ a[p : p + nb, p + nb : n]
        if counter is not None:
            sz = n - p - nb
            counter.add("gebrd_update", 4.0 * sz * sz * nb)
        # restore the band values the panel left as reflector units
        for j in range(nb):
            a[p + j, p + j] = d[j]
            if p + j < n - 1:
                a[p + j, p + j + 1] = e[j]
        p += nb

    # unblocked clean-up on the remaining block, then merge back
    if p < n:
        from repro.linalg.gebd2 import gebd2 as _gebd2

        sub = np.asfortranarray(a[p:n, p:n].copy())
        tq, tp = _gebd2(sub, counter=counter)
        a[p:n, p:n] = sub
        tau_q[p:n] = tq
        tau_p[p : n - 1] = tp[: n - 1 - p]
    return tau_q, tau_p
