"""From-scratch dense linear-algebra kernel layer (mini-LAPACK on NumPy).

Everything the paper's algorithms call — DLARFG, DLAHR2, DLARFB, DGEHD2,
DGEHRD, DORGHR — implemented as faithful 0-based translations with
pluggable flop accounting. See DESIGN.md §3.
"""

from repro.linalg.flops import FlopCounter
from repro.linalg.householder import Reflector, larfg, larf_left, larf_right
from repro.linalg.wy import larft, larfb, block_reflector
from repro.linalg.lahr2 import PanelFactors, lahr2
from repro.linalg.gehd2 import gehd2
from repro.linalg.gehrd import (
    DEFAULT_NB,
    HessenbergFactorization,
    apply_left_update,
    apply_right_updates,
    gehrd,
)
from repro.linalg.orghr import orghr, apply_q
from repro.linalg.sytd2 import sytd2, tridiagonal_of, orgtr
from repro.linalg.gebd2 import gebd2, bidiagonal_of, orgbr_q, orgbr_p
from repro.linalg.bdsqr import bidiagonal_svdvals, svdvals_via_bidiagonal
from repro.linalg.geqrf import geqr2, geqrf, orgqr, r_of, qr_residual
from repro.linalg.getrf import getrf, getrs, lu_residual
from repro.linalg.sytrd import sytrd, latrd
from repro.linalg.gebrd import gebrd, labrd
from repro.linalg.verify import (
    factorization_residual,
    orthogonality_residual,
    hessenberg_defect,
    is_hessenberg,
    extract_hessenberg,
    eigenvalue_drift,
    one_norm,
)

__all__ = [
    "FlopCounter",
    "Reflector",
    "larfg",
    "larf_left",
    "larf_right",
    "larft",
    "larfb",
    "block_reflector",
    "PanelFactors",
    "lahr2",
    "gehd2",
    "DEFAULT_NB",
    "HessenbergFactorization",
    "apply_left_update",
    "apply_right_updates",
    "gehrd",
    "orghr",
    "apply_q",
    "sytd2",
    "tridiagonal_of",
    "orgtr",
    "gebd2",
    "bidiagonal_of",
    "orgbr_q",
    "orgbr_p",
    "bidiagonal_svdvals",
    "svdvals_via_bidiagonal",
    "geqr2",
    "geqrf",
    "orgqr",
    "r_of",
    "qr_residual",
    "getrf",
    "getrs",
    "lu_residual",
    "sytrd",
    "latrd",
    "gebrd",
    "labrd",
    "factorization_residual",
    "orthogonality_residual",
    "hessenberg_defect",
    "is_hessenberg",
    "extract_hessenberg",
    "eigenvalue_drift",
    "one_norm",
]
