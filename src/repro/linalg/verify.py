"""Verification metrics — the residuals the paper's Tables II and III report.

* factorization residual (Table II):  ``r = ‖A − Q H Qᵀ‖₁ / (N ‖A‖₁)``
* orthogonality of Q (Table III):     ``r = ‖Q Qᵀ − I‖₁ / N``

plus structural checks used throughout the test-suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def one_norm(a: np.ndarray) -> float:
    """Matrix 1-norm (max absolute column sum)."""
    if a.ndim != 2:
        raise ShapeError(f"one_norm expects a matrix, got shape {a.shape}")
    return float(np.max(np.sum(np.abs(a), axis=0))) if a.size else 0.0


def factorization_residual(a: np.ndarray, q: np.ndarray, h: np.ndarray) -> float:
    """Paper Table II residual ``‖A − Q H Qᵀ‖₁ / (N ‖A‖₁)``."""
    n = a.shape[0]
    if a.shape != q.shape or a.shape != h.shape:
        raise ShapeError(f"shape mismatch: A {a.shape}, Q {q.shape}, H {h.shape}")
    na = one_norm(a)
    if na == 0.0:
        return 0.0
    return one_norm(a - q @ h @ q.T) / (n * na)


def orthogonality_residual(q: np.ndarray) -> float:
    """Paper Table III residual ``‖Q Qᵀ − I‖₁ / N``."""
    n = q.shape[0]
    if q.shape != (n, n):
        raise ShapeError(f"Q must be square, got {q.shape}")
    return one_norm(q @ q.T - np.eye(n)) / n


def hessenberg_defect(h: np.ndarray) -> float:
    """Largest magnitude below the first subdiagonal (0 for exact Hessenberg)."""
    n = h.shape[0]
    if n <= 2:
        return 0.0
    mask = np.tril(np.ones((n, n), dtype=bool), -2)
    return float(np.max(np.abs(h[mask]))) if mask.any() else 0.0


def is_hessenberg(h: np.ndarray, tol: float = 0.0) -> bool:
    """True when *h* is upper Hessenberg up to *tol*."""
    return hessenberg_defect(h) <= tol


def extract_hessenberg(a_packed: np.ndarray) -> np.ndarray:
    """Extract H from a packed ``gehrd`` output (zero below first subdiagonal)."""
    return np.asfortranarray(np.triu(a_packed, -1))


def eigenvalue_drift(a: np.ndarray, h: np.ndarray) -> float:
    """Max relative distance between sorted eigenvalues of A and H.

    The whole point of the reduction is spectrum preservation; this metric
    backs the integration tests (it is not in the paper's tables).
    """
    ea = np.sort_complex(np.linalg.eigvals(a))
    eh = np.sort_complex(np.linalg.eigvals(h))
    scale = max(np.max(np.abs(ea)), 1e-300)
    return float(np.max(np.abs(ea - eh)) / scale)
