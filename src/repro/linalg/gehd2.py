"""Unblocked Hessenberg reduction (DGEHD2).

The reference algorithm from Section III-A of the paper: a sequence of
Householder similarity transformations, one column at a time. Used both as
the correctness oracle for the blocked code and as the clean-up pass for
the final columns of the blocked driver (LAPACK's crossover behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.linalg.flops import FlopCounter
from repro.linalg.householder import larfg, larf_left, larf_right


def gehd2(
    a: np.ndarray,
    ilo: int = 0,
    ihi: int | None = None,
    *,
    taus_out: np.ndarray | None = None,
    counter: FlopCounter | None = None,
    category: str = "gehd2",
) -> np.ndarray:
    """Reduce columns ``ilo .. ihi-2`` of *a* to Hessenberg form in place.

    On return the upper triangle plus first subdiagonal of *a* hold H and
    the Householder vectors are stored below the first subdiagonal
    (LAPACK convention). Returns the tau vector (length ``a.shape[1]-1``,
    zeros outside the reduced range).

    Parameters
    ----------
    a:
        Square active matrix (may have extra trailing rows/columns, which
        are ignored when *ihi* is given explicitly).
    ilo, ihi:
        Active range, 0-based half-open on *ihi* (defaults to the whole
        matrix).
    taus_out:
        Optional pre-allocated tau vector to fill (used by the blocked
        driver's clean-up pass).
    """
    n = a.shape[0] if ihi is None else ihi
    if ihi is None:
        if a.shape[0] != a.shape[1]:
            raise ShapeError(f"gehd2 needs a square matrix, got {a.shape}")
    if not (0 <= ilo <= n <= a.shape[0]):
        raise ShapeError(f"invalid range ilo={ilo}, ihi={n} for shape {a.shape}")

    ncols = a.shape[1]
    taus = taus_out if taus_out is not None else np.zeros(max(ncols - 1, 0), dtype=a.dtype)
    for i in range(ilo, n - 1):
        # Annihilate a[i+2 : n, i]
        refl = larfg(a[i + 1, i], a[i + 2 : n, i], counter=counter, category=category)
        aii = refl.beta
        a[i + 1, i] = 1.0
        u = a[i + 1 : n, i]
        # Similarity transformation: right then left (DGEHD2 order)
        larf_right(refl.tau, u, a[0:n, i + 1 : n], counter=counter, category=category)
        larf_left(refl.tau, u, a[i + 1 : n, i + 1 : ncols], counter=counter, category=category)
        a[i + 1, i] = aii
        taus[i] = refl.tau
    return taus
