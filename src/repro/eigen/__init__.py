"""Eigenvalue substrate: Francis double-shift QR on Hessenberg form —
the application the reduction feeds (paper §III) — plus the protected
driver :func:`ft_hqr` (checkpoint/rollback transient-error resilience,
ROADMAP item 5)."""

from repro.eigen.hqr import hessenberg_eigvals, eigvals_via_hessenberg
from repro.eigen.schur import (
    hessenberg_schur,
    qr_outer_step,
    schur_eigvals,
    is_quasi_triangular,
    standardized_blocks_ok,
)
from repro.eigen.eigvec import hessenberg_solve, hessenberg_eigvecs, eig_via_hessenberg
from repro.eigen.ft_hqr import (
    FTQRResult,
    QRCheckpoint,
    QRCheckpointStore,
    QRProtectConfig,
    ft_hqr,
    measure_invariants,
)

__all__ = [
    "hessenberg_eigvals",
    "eigvals_via_hessenberg",
    "hessenberg_schur",
    "qr_outer_step",
    "schur_eigvals",
    "is_quasi_triangular",
    "standardized_blocks_ok",
    "hessenberg_solve",
    "hessenberg_eigvecs",
    "eig_via_hessenberg",
    "FTQRResult",
    "QRCheckpoint",
    "QRCheckpointStore",
    "QRProtectConfig",
    "ft_hqr",
    "measure_invariants",
]
