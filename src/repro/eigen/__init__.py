"""Eigenvalue substrate: Francis double-shift QR on Hessenberg form —
the application the reduction feeds (paper §III)."""

from repro.eigen.hqr import hessenberg_eigvals, eigvals_via_hessenberg
from repro.eigen.schur import hessenberg_schur, schur_eigvals, is_quasi_triangular
from repro.eigen.eigvec import hessenberg_solve, hessenberg_eigvecs, eig_via_hessenberg

__all__ = [
    "hessenberg_eigvals",
    "eigvals_via_hessenberg",
    "hessenberg_schur",
    "schur_eigvals",
    "is_quasi_triangular",
    "hessenberg_solve",
    "hessenberg_eigvecs",
    "eig_via_hessenberg",
]
