"""Protected Francis QR: transient-error resilience for the eigenvalue
stage (ROADMAP item 5).

The blocked reduction is guarded by ABFT checksums, but checksum
encodings do not survive the QR iteration — every sweep applies a fresh
orthogonal similarity, so a maintained row/column checksum would cost as
much as the sweep itself. What *is* preserved, for free, by every
similarity transform are the spectrum's power sums ``p1 = tr(T)`` and
``p2 = tr(T²)``, and — because the transforms are orthogonal — the
Frobenius norm of the whole matrix. Those three scalars, re-measured in
float64 every ``verify_every`` outer steps and compared against the last
*verified* checkpoint, are the detection substrate (the same
norm-at-fp64 / variance-style-below-double threshold split as the
reduction's V-ABFT policy). Structural guards ride along: the iterating
matrix must stay upper Hessenberg, deflation must be monotone, and the
accumulated Schur vectors must stay orthogonal (spot-checked per
verification, fully checked once at the end).

Recovery is backward/forward in the style of the reduction's escalation
ladder: on an invariant violation, roll back to the last verified
checkpoint of ``(T, Z, deflation state, iteration counters)`` and
replay (``reverse_redo``); if the checkpoint itself fails its guard
sums or the replay budget is exhausted, fall back to the pristine
post-reduction H with a tightened verify period (``deep_rollback``);
when that budget too is gone the driver raises
:class:`~repro.errors.EscalationExhausted` carrying a
:class:`~repro.resilience.FailureReport`.
"""

from __future__ import annotations

import math
import warnings
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.results import RecoveryEvent
from repro.eigen.hqr import _work_dtype
from repro.eigen.schur import (
    _standardize_blocks,
    is_quasi_triangular,
    qr_outer_step,
    schur_eigvals,
    standardized_blocks_ok,
)
from repro.errors import ConvergenceError, EscalationExhausted, ShapeError
from repro.faults.injector import FaultInjector, InjectionTargets
from repro.linalg.verify import hessenberg_defect
from repro.resilience.ladder import (
    TIER_DEEP_ROLLBACK,
    TIER_REVERSE_REDO,
    LadderConfig,
    ResilienceSupervisor,
)
from repro.utils.precision import lane_eps, lane_scale


@dataclass
class QRProtectConfig:
    """Knobs of the protected Francis QR driver.

    Attributes
    ----------
    verify_every:
        Outer steps between invariant verifications — also the rollback
        window (work at risk per fault) and the checkpoint cadence.
        Halved (min 1) after every deep rollback.
    max_sweeps_per_eig:
        Francis stall budget, as in the unprotected drivers.
    eps_factor:
        Headroom of the fp64 norm-rule thresholds (PR 6's fixed rule).
    sigma_factor:
        Headroom of the sub-double variance-style thresholds.
    max_replays:
        Checkpoint rollback+replay attempts per verified checkpoint
        before escalating to the deep rollback.
    max_retries:
        Consecutive recoveries (without an intervening clean
        verification) tolerated before escalation; ``< 1`` is strict
        fail-stop — the deep-rollback budget is forced to 0.
    max_deep_rollbacks:
        Full re-iterations from the pristine post-reduction H.
    ladder:
        Carried for :class:`ResilienceSupervisor` bookkeeping and the
        serve tier's ``stricter()`` escalation; the QR stage maps its
        two recovery levels onto ``reverse_redo``/``deep_rollback``.
    want_z:
        Accumulate Schur vectors (required for ``ft_schur``).
    z_spot_checks:
        Z columns orthogonality-tested per verification (0 disables);
        the end-of-run check is always the full ``‖ZᵀZ − I‖``.
    """

    verify_every: int = 5
    max_sweeps_per_eig: int = 30
    eps_factor: float = 1e3
    sigma_factor: float = 24.0
    max_replays: int = 3
    max_retries: int = 3
    max_deep_rollbacks: int = 1
    ladder: LadderConfig = field(default_factory=LadderConfig)
    want_z: bool = True
    z_spot_checks: int = 2


@dataclass
class QRCheckpoint:
    """One verified snapshot of the QR iteration state. The invariant
    baselines (``p1``/``p2``/``fro`` of T, ``zfro`` of Z) double as the
    checkpoint's guard sums: they are re-measured at restore time and a
    mismatch means the buffer itself was corrupted while parked."""

    t: np.ndarray
    z: np.ndarray | None
    hi: int
    stalls: int
    total: int
    p1: float
    p2: float
    fro: float
    zfro: float


class QRCheckpointStore:
    """Diskless checkpoints for the QR stage: the rolling verified
    snapshot plus the pristine post-reduction H (the deep-rollback
    substrate), both self-verifying via their measured invariants."""

    def __init__(self) -> None:
        self.current: QRCheckpoint | None = None
        self.initial: QRCheckpoint | None = None
        self.saves = 0
        self.restores = 0
        self.corruptions = 0

    @staticmethod
    def _snap(
        t: np.ndarray, z: np.ndarray | None, hi: int, stalls: int, total: int
    ) -> QRCheckpoint:
        p1, p2, fro = measure_invariants(t)
        zfro = float(np.sqrt(np.sum(np.square(z, dtype=np.float64)))) if z is not None else 0.0
        return QRCheckpoint(
            t=t.copy(order="F"),
            z=z.copy(order="F") if z is not None else None,
            hi=hi,
            stalls=stalls,
            total=total,
            p1=p1,
            p2=p2,
            fro=fro,
            zfro=zfro,
        )

    def save(self, t: np.ndarray, z: np.ndarray | None, hi: int, stalls: int, total: int) -> None:
        self.current = self._snap(t, z, hi, stalls, total)
        self.saves += 1

    def save_initial(self, t: np.ndarray, z: np.ndarray | None) -> None:
        self.initial = self._snap(t, z, n_to_hi(t.shape[0]), 0, 0)

    @staticmethod
    def verify(cp: QRCheckpoint | None) -> bool:
        """Re-measure the parked buffers against their save-time guard
        sums. The recomputation runs over untouched memory, so any
        disagreement beyond re-summation roundoff is corruption."""
        if cp is None:
            return False
        p1, p2, fro = measure_invariants(cp.t)
        tol = 1e-12 * max(1.0, cp.fro)
        if not (abs(p1 - cp.p1) <= tol and abs(fro - cp.fro) <= tol):
            return False
        if not (abs(p2 - cp.p2) <= tol * max(1.0, cp.fro)):
            return False
        if cp.z is not None:
            zfro = float(np.sqrt(np.sum(np.square(cp.z, dtype=np.float64))))
            if not (abs(zfro - cp.zfro) <= 1e-12 * max(1.0, cp.zfro)):
                return False
        return True

    @property
    def peak_bytes(self) -> int:
        total = 0
        for cp in (self.current, self.initial):
            if cp is not None:
                total += cp.t.nbytes + (cp.z.nbytes if cp.z is not None else 0)
        return total


def n_to_hi(n: int) -> int:
    """Initial active-block end for an n×n iteration."""
    return n - 1


def measure_invariants(t: np.ndarray) -> tuple[float, float, float]:
    """``(p1, p2, fro)`` of *t*, accumulated in float64 whatever the
    lane: the first two spectral power sums ``tr(T)`` / ``tr(T²)``
    (preserved by every similarity) and the Frobenius norm (preserved by
    *orthogonal* similarity)."""
    p1 = float(np.trace(t, dtype=np.float64))
    p2 = float(np.sum(np.multiply(t, t.T, dtype=np.float64)))
    fro = float(np.sqrt(np.sum(np.square(t, dtype=np.float64))))
    return p1, p2, fro


@dataclass
class FTQRResult:
    """Outcome of the protected Francis QR driver."""

    n: int
    t: np.ndarray
    z: np.ndarray | None
    eigvals: np.ndarray
    dtype: str
    sweeps: int = 0            # logical outer steps (replayed work excluded)
    wall_steps: int = 0        # every outer step executed, replays included
    verifications: int = 0
    detections: int = 0
    recoveries: list[RecoveryEvent] = field(default_factory=list)
    rollbacks: int = 0
    deep_rollbacks: int = 0
    checkpoint_saves: int = 0
    checkpoint_restores: int = 0
    checkpoint_peak_bytes: int = 0
    checkpoint_corruptions: int = 0
    verify_every_final: int = 0

    @property
    def errors_corrected(self) -> int:
        return len(self.recoveries)

    @property
    def tier_tally(self) -> dict[str, int]:
        return dict(Counter(ev.tier for ev in self.recoveries))


def ft_hqr(
    h: np.ndarray,
    config: QRProtectConfig | None = None,
    *,
    injector: FaultInjector | None = None,
    check_input: bool = True,
) -> FTQRResult:
    """Eigenvalues (and optionally the real Schur form) of the
    upper-Hessenberg *h* under transient-fault protection.

    Runs the same Francis double-shift sweeps as
    :func:`~repro.eigen.schur.hessenberg_schur` — fault-free fp64 output
    is byte-identical — with invariant verification, checkpoint/rollback
    recovery and the end-to-end fault-injection surface described in the
    module docstring.

    Raises
    ------
    EscalationExhausted
        Every recovery tier failed or ran out of budget (carries the
        structured :class:`FailureReport`).
    ConvergenceError
        The iteration genuinely stalled past its sweep budget.
    """
    cfg = config or QRProtectConfig()
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise ShapeError(f"ft_hqr needs a square matrix, got {h.shape}")
    n = h.shape[0]
    dt = _work_dtype(h)
    eps = lane_eps(dt)
    scale = float(np.max(np.abs(h))) if h.size else 0.0
    if n and check_input and hessenberg_defect(h) > 1e-12 * lane_scale(dt) * max(scale, 1.0):
        raise ShapeError("input is not upper Hessenberg")

    t = np.array(h, dtype=dt, order="F", copy=True)
    z = np.eye(n, dtype=dt, order="F") if cfg.want_z else None
    if n <= 1:
        eig = np.array([complex(t[0, 0])] if n == 1 else [], dtype=complex)
        if injector is not None:
            _warn_unfired(injector)
        return FTQRResult(
            n=n, t=t, z=z, eigvals=eig, dtype=dt.name,
            verify_every_final=max(1, cfg.verify_every),
        )

    store = QRCheckpointStore()
    store.save_initial(t, z)
    store.save(t, z, n - 1, 0, 0)
    sup = ResilienceSupervisor(cfg.ladder, cfg.max_retries)
    deep_budget = cfg.max_deep_rollbacks if cfg.max_retries >= 1 else 0

    verify_every = max(1, cfg.verify_every)
    budget = cfg.max_sweeps_per_eig * n + 10
    wall_cap = 4 * budget + 40

    hi = n - 1
    stalls = 0
    total = 0          # logical outer steps — rolled back with the state
    tick = 0           # wall clock — monotone, the injector's timeline
    since_verify = 0
    replays = 0        # rollbacks against the current checkpoint
    consecutive = 0    # recoveries since the last clean verification
    detections = 0
    verifications = 0
    recoveries: list[RecoveryEvent] = []
    deep = 0
    end_faults_fired = False

    def _targets(shift_pair: np.ndarray | None = None) -> InjectionTargets:
        return InjectionTargets(
            n=n, qr_t=t, qr_z=z, qr_shift=shift_pair, qr_checkpoint=store
        )

    def _shift_hook(pair: np.ndarray) -> None:
        if injector is not None:
            injector.apply_due(tick, "shift", _targets(shift_pair=pair))

    def _thresholds(fro_cp: float) -> tuple[float, float, float, float]:
        """(tau_p1, tau_p2, tau_fro, tau_orth) against checkpoint *fro_cp*.

        The drift window is at most ``verify_every`` sweeps since the
        last verified state, so the bounds track that window: the fixed
        norm rule at fp64, the variance-style ``sigma·eps·sqrt(n·V)``
        rule below double — the same split as the reduction's V-ABFT
        thresholds (docs/resilience.md §5).
        """
        if dt.itemsize >= 8:
            tau_fro = cfg.eps_factor * eps * max(1.0, fro_cp) * n
        else:
            tau_fro = (
                cfg.sigma_factor
                * eps
                * math.sqrt(n * max(verify_every, 1))
                * max(fro_cp, 1.0)
            )
        tau_p2 = 2.0 * max(fro_cp, 1.0) * tau_fro
        tau_orth = cfg.eps_factor * eps * n
        return tau_fro, tau_p2, tau_fro, tau_orth

    def _verify(final: bool = False) -> tuple[str, float] | None:
        """Invariant + structural verification against the current
        checkpoint's baselines. Returns ``(reason, drift)`` on
        violation, None when the state checks out."""
        nonlocal verifications
        verifications += 1
        cp = store.current
        tau_p1, tau_p2, tau_fro, tau_orth = _thresholds(cp.fro)
        p1, p2, fro = measure_invariants(t)
        if not (math.isfinite(p1) and math.isfinite(p2) and math.isfinite(fro)):
            return "non-finite iterate", float("inf")
        d1, d2, df = abs(p1 - cp.p1), abs(p2 - cp.p2), abs(fro - cp.fro)
        if not (d1 <= tau_p1):
            return f"trace drift {d1:.3e} > {tau_p1:.3e}", d1
        if not (df <= tau_fro):
            return f"Frobenius drift {df:.3e} > {tau_fro:.3e}", df
        if not (d2 <= tau_p2):
            return f"tr(T²) drift {d2:.3e} > {tau_p2:.3e}", d2
        defect = hessenberg_defect(t)
        if not (defect <= tau_fro):
            return f"Hessenberg defect {defect:.3e} > {tau_fro:.3e}", defect
        if hi > cp.hi:
            return f"deflation regressed ({cp.hi} -> {hi})", float(hi - cp.hi)
        if z is not None:
            if final:
                gram = z.T.astype(np.float64) @ z.astype(np.float64)
                err = float(np.max(np.abs(gram - np.eye(n))))
                if not (err <= tau_orth * math.sqrt(n)):
                    return f"Z orthogonality {err:.3e} > {tau_orth * math.sqrt(n):.3e}", err
            elif cfg.z_spot_checks > 0:
                for i in range(cfg.z_spot_checks):
                    j = (7 * verifications + 13 * i) % n
                    col = z[:, j].astype(np.float64)
                    err = abs(float(col @ col) - 1.0)
                    if not (err <= tau_orth):
                        return f"Z column {j} norm drift {err:.3e} > {tau_orth:.3e}", err
                    jj = (j + 1 + i) % n
                    if jj != j:
                        dot = abs(float(col @ z[:, jj].astype(np.float64)))
                        if not (dot <= tau_orth):
                            return f"Z columns {j},{jj} lost orthogonality {dot:.3e}", dot
        if final:
            if not is_quasi_triangular(t, tol=tau_fro):
                return "final T is not quasi-triangular", 0.0
            if not standardized_blocks_ok(t):
                return "final T has unstandardized 2x2 blocks", 0.0
        return None

    def _restore(cp: QRCheckpoint) -> None:
        nonlocal hi, stalls, total
        t[:, :] = cp.t
        if z is not None:
            z[:, :] = cp.z
        hi, stalls, total = cp.hi, cp.stalls, cp.total
        store.restores += 1

    def _recover(reason: str, gap: float) -> None:
        nonlocal detections, consecutive, replays, deep, verify_every
        detections += 1
        consecutive += 1
        if injector is not None:
            # strikes planned to land while the machinery is recovering
            injector.apply_due(tick, "during_recovery", _targets())
        if consecutive <= cfg.max_retries and replays < cfg.max_replays:
            if store.verify(store.current):
                _restore(store.current)
                replays += 1
                recoveries.append(
                    RecoveryEvent(iteration=tick, p=hi, gap=gap, tier=TIER_REVERSE_REDO)
                )
                sup.record(TIER_REVERSE_REDO, tick, True, reason)
                return
            store.corruptions += 1
            sup.record(TIER_REVERSE_REDO, tick, False, f"checkpoint guard mismatch ({reason})")
        else:
            sup.record(TIER_REVERSE_REDO, tick, False, f"replay budget exhausted ({reason})")
        if deep < deep_budget and store.verify(store.initial):
            _restore(store.initial)
            deep += 1
            replays = 0
            verify_every = max(1, verify_every // 2)  # tightened verify period
            store.save(t, z, hi, stalls, total)
            recoveries.append(
                RecoveryEvent(iteration=tick, p=hi, gap=gap, tier=TIER_DEEP_ROLLBACK)
            )
            sup.record(TIER_DEEP_ROLLBACK, tick, True, reason)
            return
        sup.record(
            TIER_DEEP_ROLLBACK,
            tick,
            False,
            reason if deep < deep_budget else f"deep-rollback budget exhausted ({reason})",
        )
        raise EscalationExhausted(
            f"QR step {tick}: {reason}", report=sup.report(tick, reason)
        )

    while True:
        while hi > 0:
            if total >= budget:
                raise ConvergenceError("QR iteration exceeded its global sweep budget")
            if tick >= wall_cap:
                raise ConvergenceError(
                    "QR iteration exceeded its wall budget (replay storm)"
                )
            tick += 1
            if injector is not None:
                injector.apply_phase(tick, "pre_sweep", _targets())
            hi, stalls = qr_outer_step(
                t,
                z,
                hi,
                stalls,
                scale=scale,
                eps=eps,
                max_sweeps_per_eig=cfg.max_sweeps_per_eig,
                shift_hook=_shift_hook if injector is not None else None,
            )
            total += 1
            since_verify += 1
            if injector is not None:
                injector.apply_phase(tick, "post_sweep", _targets())
            if since_verify >= verify_every and hi > 0:
                violation = _verify()
                since_verify = 0
                if violation is None:
                    store.save(t, z, hi, stalls, total)
                    replays = 0
                    consecutive = 0
                else:
                    _recover(*violation)
        # converged: late faults strike the finished state exactly once,
        # then the final thorough verification decides whether the run
        # is clean or must re-enter the recovery path
        if injector is not None and not end_faults_fired:
            end_faults_fired = True
            if injector.pending_after(tick + 1):
                injector.apply_pending_after(_targets(), tick + 1)
        _standardize_blocks(t, z)
        violation = _verify(final=True)
        since_verify = 0
        if violation is None:
            break
        _recover(*violation)

    if injector is not None:
        _warn_unfired(injector)

    return FTQRResult(
        n=n,
        t=t,
        z=z,
        eigvals=schur_eigvals(t),
        dtype=dt.name,
        sweeps=total,
        wall_steps=tick,
        verifications=verifications,
        detections=detections,
        recoveries=recoveries,
        rollbacks=sum(1 for ev in recoveries if ev.tier == TIER_REVERSE_REDO),
        deep_rollbacks=deep,
        checkpoint_saves=store.saves,
        checkpoint_restores=store.restores,
        checkpoint_peak_bytes=store.peak_bytes,
        checkpoint_corruptions=store.corruptions,
        verify_every_final=verify_every,
    )


def _warn_unfired(injector: FaultInjector) -> None:
    for spec in injector.unfired():
        warnings.warn(
            f"fault spec never fired: {spec} (its phase never occurred "
            "at that iteration)",
            RuntimeWarning,
            stacklevel=3,
        )
