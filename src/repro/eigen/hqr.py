"""Eigenvalues of an upper-Hessenberg matrix — the Francis implicit
double-shift QR iteration with deflation.

This is the "Hessenberg QR algorithm" the paper's §III names as the
consumer of the reduction (Golub & Van Loan §7.5): once ``A = Q H Qᵀ``,
the eigenvalues of A are those of H, computed here by bulge-chasing
double-shift sweeps. Implemented from scratch on NumPy; the complex
conjugate pairs of a real matrix come out of the final 2x2 blocks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConvergenceError, ShapeError
from repro.linalg.householder import larfg
from repro.linalg.verify import hessenberg_defect
from repro.utils.precision import LANE_DTYPES, lane_scale


def _work_dtype(a: np.ndarray) -> np.dtype:
    """Working dtype of the Francis iteration for input *a*: float32
    stays on the float32 lane, everything else runs in float64 (the
    same coercion rule as :func:`repro.utils.precision.as_lane_matrix`)."""
    a = np.asarray(a)
    return a.dtype if a.dtype.name in LANE_DTYPES else np.dtype(np.float64)


def _eig2x2(a: float, b: float, c: float, d: float) -> tuple[complex, complex]:
    """Eigenvalues of ``[[a, b], [c, d]]`` (stable quadratic formula)."""
    tr = a + d
    det = a * d - b * c
    disc = tr * tr / 4.0 - det
    if disc >= 0.0:
        s = math.sqrt(disc)
        # avoid cancellation: compute the larger root first
        if tr >= 0:
            l1 = tr / 2.0 + s
        else:
            l1 = tr / 2.0 - s
        l2 = det / l1 if l1 != 0.0 else tr / 2.0 - math.copysign(s, tr)
        return complex(l1), complex(l2)
    s = math.sqrt(-disc)
    return complex(tr / 2.0, s), complex(tr / 2.0, -s)


def _apply_house_left(h: np.ndarray, u: np.ndarray, tau: float, r0: int, cols: slice) -> None:
    rows = slice(r0, r0 + u.size)
    block = h[rows, cols]
    w = u @ block
    block -= tau * np.outer(u, w)


def _apply_house_right(h: np.ndarray, u: np.ndarray, tau: float, c0: int, rows: slice) -> None:
    cols = slice(c0, c0 + u.size)
    block = h[rows, cols]
    w = block @ u
    block -= tau * np.outer(w, u)


def hessenberg_eigvals(
    h: np.ndarray,
    *,
    max_sweeps_per_eig: int = 30,
    check_input: bool = True,
) -> np.ndarray:
    """Eigenvalues of the upper-Hessenberg matrix *h* (complex array).

    Parameters
    ----------
    h:
        Upper-Hessenberg matrix; a working copy is taken.
    max_sweeps_per_eig:
        Iteration budget per eigenvalue (LAPACK's classic 30).
    check_input:
        Verify the Hessenberg structure first.

    Raises
    ------
    ConvergenceError
        If a deflation stalls beyond the sweep budget.
    """
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise ShapeError(f"hessenberg_eigvals needs a square matrix, got {h.shape}")
    n = h.shape[0]
    if n == 0:
        return np.zeros(0, dtype=complex)
    dt = _work_dtype(h)
    scale = float(np.max(np.abs(h))) if h.size else 0.0
    if check_input and hessenberg_defect(h) > 1e-12 * lane_scale(dt) * max(scale, 1.0):
        raise ShapeError("input is not upper Hessenberg")
    hh = np.array(h, dtype=dt, order="F", copy=True)
    eigs: list[complex] = []
    eps = float(np.finfo(dt).eps)

    hi = n - 1  # active block is hh[lo:hi+1, lo:hi+1]
    budget = max_sweeps_per_eig * n + 10
    sweeps_since_deflation = 0
    total = 0
    while hi >= 0:
        total += 1
        if total > budget:
            raise ConvergenceError("QR iteration exceeded its global sweep budget")
        if hi == 0:
            eigs.append(complex(hh[0, 0]))
            hi -= 1
            continue
        # find the active block start: the first subdiagonal (from hi
        # upward) that is negligible
        lo = hi
        while lo > 0:
            s = abs(hh[lo - 1, lo - 1]) + abs(hh[lo, lo])
            if s == 0.0:
                s = scale
            if abs(hh[lo, lo - 1]) <= eps * s:
                hh[lo, lo - 1] = 0.0
                break
            lo -= 1
        if lo == hi:
            eigs.append(complex(hh[hi, hi]))
            hi -= 1
            sweeps_since_deflation = 0
            continue
        if lo == hi - 1:
            l1, l2 = _eig2x2(hh[lo, lo], hh[lo, hi], hh[hi, lo], hh[hi, hi])
            eigs.extend([l1, l2])
            hi -= 2
            sweeps_since_deflation = 0
            continue

        sweeps_since_deflation += 1
        if sweeps_since_deflation > max_sweeps_per_eig:
            raise ConvergenceError(
                f"no deflation after {max_sweeps_per_eig} double-shift sweeps"
            )

        # Francis double shift from the trailing 2x2 (with the classic
        # "exceptional shift" every 10 stalled sweeps).
        if sweeps_since_deflation % 10 == 0:
            s1 = abs(hh[hi, hi - 1]) + abs(hh[hi - 1, hi - 2])
            trace, det = 1.5 * s1, s1 * s1
        else:
            a, b, c, d = hh[hi - 1, hi - 1], hh[hi - 1, hi], hh[hi, hi - 1], hh[hi, hi]
            trace, det = a + d, a * d - b * c

        # first column of (H - s1 I)(H - s2 I): a 3-vector bulge seed
        h00, h01 = hh[lo, lo], hh[lo, lo + 1]
        h10, h11 = hh[lo + 1, lo], hh[lo + 1, lo + 1]
        h21 = hh[lo + 2, lo + 1]
        x = h00 * h00 + h01 * h10 - trace * h00 + det
        y = h10 * (h00 + h11 - trace)
        z = h10 * h21

        # bulge chase
        for k in range(lo, hi - 1):
            if k > lo:
                x, y = hh[k, k - 1], hh[k + 1, k - 1]
                z = hh[k + 2, k - 1] if k + 2 <= hi else 0.0
            vec = np.array([y, z]) if k + 2 <= hi else np.array([y])
            refl = larfg(x, vec)
            u = np.concatenate(([1.0], refl.v))
            tau = refl.tau
            # the left application itself annihilates the bulge column
            # (k-1); the explicit zeroing below only cleans roundoff.
            cstart = max(lo, k - 1) if k > lo else lo
            _apply_house_left(hh, u, tau, k, slice(cstart, n))
            rend = min(hi, k + 3)
            _apply_house_right(hh, u, tau, k, slice(0, rend + 1))
            if k > lo:
                hh[k + 1 : k + u.size, k - 1] = 0.0

        # final 2x2 rotation to clear the bulge remnant at (hi, hi-2)
        k = hi - 1
        x, y = hh[k, k - 1], hh[k + 1, k - 1]
        refl = larfg(x, np.array([y]))
        u = np.concatenate(([1.0], refl.v))
        _apply_house_left(hh, u, refl.tau, k, slice(k - 1, n))
        _apply_house_right(hh, u, refl.tau, k, slice(0, hi + 1))
        hh[k + 1, k - 1] = 0.0

    return np.array(eigs[::-1], dtype=complex)


def eigvals_via_hessenberg(a: np.ndarray, *, nb: int = 32) -> np.ndarray:
    """Eigenvalues of a general real matrix through our full pipeline:
    blocked Hessenberg reduction then Francis QR. Runs on the input's
    precision lane."""
    from repro.linalg.gehrd import gehrd
    from repro.linalg.verify import extract_hessenberg

    work = np.array(a, dtype=_work_dtype(a), order="F", copy=True)
    gehrd(work, nb=nb)
    h = extract_hessenberg(work)
    return hessenberg_eigvals(h, check_input=False)
