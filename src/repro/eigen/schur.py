"""Real Schur form of an upper-Hessenberg matrix: ``H = Z T Zᵀ``.

The same Francis double-shift bulge-chasing iteration as
:mod:`repro.eigen.hqr`, with the orthogonal transformations accumulated
into Z. T is real quasi-triangular: 1x1 blocks carry real eigenvalues,
2x2 blocks carry complex-conjugate pairs. Combined with the (FT)
Hessenberg reduction this completes the dense nonsymmetric eigensolver
pipeline: ``A = Q H Qᵀ = (Q Z) T (Q Z)ᵀ``.

The outer iteration (deflation scan + one double-shift sweep) lives in
:func:`qr_outer_step` so the protected driver
(:mod:`repro.eigen.ft_hqr`) can interleave checkpointing and invariant
verification between steps while running bit-identical sweeps.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConvergenceError, ShapeError
from repro.eigen.hqr import _eig2x2, _work_dtype
from repro.linalg.householder import larfg
from repro.linalg.verify import hessenberg_defect
from repro.utils.precision import lane_scale


def _left(h: np.ndarray, u: np.ndarray, tau: float, r0: int, c0: int, c1: int) -> None:
    rows = slice(r0, r0 + u.size)
    block = h[rows, c0:c1]
    w = u @ block
    block -= tau * np.outer(u, w)


def _right(h: np.ndarray, u: np.ndarray, tau: float, c0: int, r0: int, r1: int) -> None:
    cols = slice(c0, c0 + u.size)
    block = h[r0:r1, cols]
    w = block @ u
    block -= tau * np.outer(w, u)


def qr_outer_step(
    t: np.ndarray,
    z: np.ndarray | None,
    hi: int,
    stalls: int,
    *,
    scale: float,
    eps: float,
    max_sweeps_per_eig: int = 30,
    shift_hook: Callable[[np.ndarray], None] | None = None,
) -> tuple[int, int]:
    """One outer Francis iteration on the active block ending at *hi*.

    Scans for a deflation from *hi* upward; either deflates (1x1 or 2x2
    block) or runs one double-shift bulge-chasing sweep in place on *t*
    (and accumulates into *z* when it is not None). Returns the updated
    ``(hi, stalls)`` pair — ``stalls`` counts sweeps since the last
    deflation and drives the classic exceptional shift.

    *shift_hook*, when given, receives the 2-vector ``[trace, det]`` of
    the double shift (float64, mutable) right before the bulge seed is
    formed — the fault-injection surface of the protected driver. With
    ``shift_hook=None`` the arithmetic is byte-identical to the
    historical inline loop.

    Raises :class:`ConvergenceError` when a deflation stalls beyond
    *max_sweeps_per_eig* sweeps.
    """
    n = t.shape[0]
    lo = hi
    while lo > 0:
        s = abs(t[lo - 1, lo - 1]) + abs(t[lo, lo])
        if s == 0.0:
            s = scale
        if abs(t[lo, lo - 1]) <= eps * s:
            t[lo, lo - 1] = 0.0
            break
        lo -= 1
    if lo == hi:
        return hi - 1, 0
    if lo == hi - 1:
        return hi - 2, 0

    stalls += 1
    if stalls > max_sweeps_per_eig:
        raise ConvergenceError(f"no deflation after {max_sweeps_per_eig} sweeps")

    if stalls % 10 == 0:
        s1 = abs(t[hi, hi - 1]) + abs(t[hi - 1, hi - 2])
        trace, det = 1.5 * s1, s1 * s1
    else:
        a, b, c, d = t[hi - 1, hi - 1], t[hi - 1, hi], t[hi, hi - 1], t[hi, hi]
        trace, det = a + d, a * d - b * c
    if shift_hook is not None:
        pair = np.array([trace, det], dtype=np.float64)
        shift_hook(pair)
        # back to the working dtype: float64 shift scalars would promote
        # the bulge seed below and silently fork the sub-double lanes'
        # trajectory from the hook-less (and replayed) path
        trace, det = t.dtype.type(pair[0]), t.dtype.type(pair[1])

    h00, h01 = t[lo, lo], t[lo, lo + 1]
    h10, h11 = t[lo + 1, lo], t[lo + 1, lo + 1]
    h21 = t[lo + 2, lo + 1]
    x = h00 * h00 + h01 * h10 - trace * h00 + det
    y = h10 * (h00 + h11 - trace)
    zz = h10 * h21

    for k in range(lo, hi - 1):
        if k > lo:
            x, y = t[k, k - 1], t[k + 1, k - 1]
            zz = t[k + 2, k - 1] if k + 2 <= hi else 0.0
        vec = np.array([y, zz]) if k + 2 <= hi else np.array([y])
        refl = larfg(x, vec)
        u = np.concatenate(([1.0], refl.v))
        tau = refl.tau
        cstart = max(lo, k - 1) if k > lo else lo
        _left(t, u, tau, k, cstart, n)
        rend = min(hi, k + 3)
        _right(t, u, tau, k, 0, rend + 1)
        if z is not None:
            _right(z, u, tau, k, 0, n)  # accumulate: Z ← Z P
        if k > lo:
            t[k + 1 : k + u.size, k - 1] = 0.0

    k = hi - 1
    x, y = t[k, k - 1], t[k + 1, k - 1]
    refl = larfg(x, np.array([y]))
    u = np.concatenate(([1.0], refl.v))
    _left(t, u, refl.tau, k, k - 1, n)
    _right(t, u, refl.tau, k, 0, hi + 1)
    if z is not None:
        _right(z, u, refl.tau, k, 0, n)
    t[k + 1, k - 1] = 0.0
    return hi, stalls


def hessenberg_schur(
    h: np.ndarray,
    *,
    max_sweeps_per_eig: int = 30,
    check_input: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(T, Z)`` with ``H = Z T Zᵀ``, Z orthogonal, T quasi-triangular.

    Parameters mirror :func:`~repro.eigen.hqr.hessenberg_eigvals`; a
    working copy of *h* is taken. The working dtype follows the input's
    precision lane (float32 stays float32, everything else runs in
    float64).

    Raises
    ------
    ConvergenceError
        If a deflation stalls beyond the sweep budget.
    """
    if h.ndim != 2 or h.shape[0] != h.shape[1]:
        raise ShapeError(f"hessenberg_schur needs a square matrix, got {h.shape}")
    n = h.shape[0]
    if n == 0:
        return np.zeros((0, 0), order="F"), np.zeros((0, 0), order="F")
    dt = _work_dtype(h)
    scale = float(np.max(np.abs(h))) if h.size else 0.0
    if check_input and hessenberg_defect(h) > 1e-12 * lane_scale(dt) * max(scale, 1.0):
        raise ShapeError("input is not upper Hessenberg")

    t = np.array(h, dtype=dt, order="F", copy=True)
    z = np.eye(n, dtype=dt, order="F")
    eps = float(np.finfo(dt).eps)

    hi = n - 1
    budget = max_sweeps_per_eig * n + 10
    stalls = 0
    total = 0
    while hi > 0:
        total += 1
        if total > budget:
            raise ConvergenceError("Schur iteration exceeded its global sweep budget")
        hi, stalls = qr_outer_step(
            t, z, hi, stalls, scale=scale, eps=eps, max_sweeps_per_eig=max_sweeps_per_eig
        )

    _standardize_blocks(t, z)
    return t, z


def _standardize_blocks(t: np.ndarray, z: np.ndarray | None) -> None:
    """Split 2x2 diagonal blocks with *real* eigenvalues into 1x1 blocks
    (LAPACK's DLANV2 standardization): only genuine complex pairs keep
    their 2x2 blocks in the canonical real Schur form."""
    n = t.shape[0]
    eps = float(np.finfo(t.dtype).eps) if t.dtype.kind == "f" else float(np.finfo(np.float64).eps)
    i = 0
    while i < n - 1:
        if t[i + 1, i] == 0.0:
            i += 1
            continue
        a, b = t[i, i], t[i, i + 1]
        c, d = t[i + 1, i], t[i + 1, i + 1]
        tr, det = a + d, a * d - b * c
        disc = tr * tr / 4.0 - det
        if disc < 0.0:
            i += 2  # genuine complex pair: canonical 2x2 block stays
            continue
        lam = tr / 2.0 + np.copysign(np.sqrt(disc), tr)
        if lam == 0.0:
            lam = tr / 2.0 - np.copysign(np.sqrt(disc), tr)
        # eigenvector of the block for lam: both [lam-d, c]ᵀ and
        # [b, lam-a]ᵀ solve (B - lam I)v = 0; pick the one whose leading
        # term avoids the catastrophic cancellation in lam - diag
        if abs(lam - a) >= abs(lam - d):
            v0, v1 = b, lam - a
        else:
            v0, v1 = lam - d, c
        nrm = float(np.hypot(v0, v1))
        if nrm == 0.0:
            i += 2
            continue
        cs, sn = v0 / nrm, v1 / nrm
        g = np.array([[cs, -sn], [sn, cs]])
        # commit only if the rotation genuinely annihilates the subdiagonal
        # — a nearly-defective real pair (disc ≈ 0) loses O(sqrt(eps))
        # accuracy under forced splitting, and an unsplit 2x2 block is
        # still a valid quasi-triangular form.
        blk = g.T @ np.array([[a, b], [c, d]]) @ g
        bnorm = max(abs(a), abs(b), abs(c), abs(d), 1e-300)
        if abs(blk[1, 0]) > 64.0 * eps * bnorm:
            i += 2
            continue
        t[:, i : i + 2] = t[:, i : i + 2] @ g
        t[i : i + 2, :] = g.T @ t[i : i + 2, :]
        if z is not None:
            z[:, i : i + 2] = z[:, i : i + 2] @ g
        t[i + 1, i] = 0.0
        i += 1


def standardized_blocks_ok(t: np.ndarray) -> bool:
    """True when every surviving 2x2 diagonal block is standardized: it
    carries a genuine complex-conjugate pair, or is a nearly-defective
    real pair (eigenvalue gap at the O(sqrt(eps)) splitting floor) that
    :func:`_standardize_blocks` deliberately left intact."""
    n = t.shape[0]
    eps = float(np.finfo(t.dtype).eps) if t.dtype.kind == "f" else float(np.finfo(np.float64).eps)
    i = 0
    while i < n - 1:
        if t[i + 1, i] == 0.0:
            i += 1
            continue
        a, b = t[i, i], t[i, i + 1]
        c, d = t[i + 1, i], t[i + 1, i + 1]
        tr, det = a + d, a * d - b * c
        disc = tr * tr / 4.0 - det
        if disc >= 0.0:
            bnorm = max(abs(a), abs(b), abs(c), abs(d), 1.0)
            if np.sqrt(disc) > 64.0 * np.sqrt(eps) * bnorm:
                return False
        i += 2
    return True


def schur_eigvals(t: np.ndarray) -> np.ndarray:
    """Eigenvalues off a real quasi-triangular Schur factor."""
    n = t.shape[0]
    eigs: list[complex] = []
    i = 0
    while i < n:
        if i + 1 < n and t[i + 1, i] != 0.0:
            l1, l2 = _eig2x2(t[i, i], t[i, i + 1], t[i + 1, i], t[i + 1, i + 1])
            eigs.extend([l1, l2])
            i += 2
        else:
            eigs.append(complex(t[i, i]))
            i += 1
    return np.array(eigs, dtype=complex)


def is_quasi_triangular(t: np.ndarray, tol: float = 0.0) -> bool:
    """True when *t* is block upper triangular with 1x1/2x2 diagonal blocks
    (no two consecutive nonzero subdiagonal entries)."""
    n = t.shape[0]
    if n <= 2:
        return hessenberg_defect(t) <= tol
    if hessenberg_defect(t) > tol:
        return False
    sub = np.abs(np.diag(t, -1))
    return not np.any((sub[:-1] > tol) & (sub[1:] > tol))
