"""Eigenvectors via inverse iteration on the Hessenberg form.

Completes the dense eigensolver: after ``A = Q H Qᵀ`` and eigenvalues
from the Francis iteration, each eigenvector comes from one or two
inverse-iteration steps ``(H − λI) x_{k+1} = x_k`` — and because H is
Hessenberg, each solve is O(n²) through a Givens/elimination pass on the
single subdiagonal (the classic Hessenberg LU with partial pivoting,
itself a reusable substrate piece).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, ShapeError
from repro.linalg.verify import hessenberg_defect
from repro.utils.precision import lane_scale


def hessenberg_solve(h: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``H x = b`` for upper-Hessenberg H in O(n²).

    Gaussian elimination with partial pivoting needs to consider only
    the one subdiagonal entry per column. Works in whatever dtype the
    operands promote to (the eigenvector path passes complex data).
    Near-singular systems return large solutions rather than raising —
    exactly what inverse iteration wants.
    """
    n = h.shape[0]
    if h.shape != (n, n) or b.shape != (n,):
        raise ShapeError(f"hessenberg_solve: H {h.shape}, b {b.shape}")
    u = h.astype(np.result_type(h.dtype, b.dtype, np.float64), copy=True)
    x = b.astype(u.dtype, copy=True)
    tiny = np.finfo(np.float64).tiny
    # forward elimination over the single subdiagonal
    for k in range(n - 1):
        if abs(u[k + 1, k]) > abs(u[k, k]):
            u[[k, k + 1], k:] = u[[k + 1, k], k:]
            x[[k, k + 1]] = x[[k + 1, k]]
        piv = u[k, k]
        if piv == 0:
            piv = u[k, k] = tiny
        m = u[k + 1, k] / piv
        if m != 0:
            u[k + 1, k:] -= m * u[k, k:]
            x[k + 1] -= m * x[k]
    # back substitution
    for k in range(n - 1, -1, -1):
        piv = u[k, k]
        if piv == 0:
            piv = tiny
        if k + 1 < n:
            x[k] -= u[k, k + 1 :] @ x[k + 1 :]
        x[k] = x[k] / piv
    return x


def hessenberg_eigvecs(
    h: np.ndarray,
    eigvals: np.ndarray,
    *,
    iters: int = 2,
    seed: int = 0,
    check_input: bool = True,
) -> np.ndarray:
    """Right eigenvectors of the upper-Hessenberg *h* for the given
    eigenvalues, by inverse iteration; returns an (n, m) complex array of
    unit-norm vectors, column q for ``eigvals[q]``.

    Shift perturbation: λ is nudged by ~eps·‖H‖ so the solve is merely
    ill-conditioned rather than exactly singular (standard practice).
    """
    n = h.shape[0]
    if h.shape != (n, n):
        raise ShapeError(f"hessenberg_eigvecs needs a square matrix, got {h.shape}")
    from repro.eigen.hqr import _work_dtype

    dt = _work_dtype(h)
    scale = float(np.max(np.abs(h))) if h.size else 0.0
    if check_input and hessenberg_defect(h) > 1e-12 * lane_scale(dt) * max(scale, 1.0):
        raise ShapeError("input is not upper Hessenberg")
    eigvals = np.asarray(eigvals, dtype=complex)
    rng = np.random.default_rng(seed)
    nudge = 64.0 * float(np.finfo(dt).eps) * max(scale, 1.0)

    out = np.zeros((n, eigvals.size), dtype=complex, order="F")
    for q, lam in enumerate(eigvals):
        hm = h.astype(complex) - (lam + nudge) * np.eye(n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        x /= np.linalg.norm(x)
        for _ in range(max(iters, 1)):
            x = hessenberg_solve(hm, x)
            nrm = np.linalg.norm(x)
            if not np.isfinite(nrm) or nrm == 0.0:
                raise ConvergenceError(f"inverse iteration diverged for λ={lam}")
            x /= nrm
        # canonical phase: largest component real positive
        j = int(np.argmax(np.abs(x)))
        x *= np.conj(x[j]) / abs(x[j])
        out[:, q] = x
    return out


def eig_via_hessenberg(a: np.ndarray, *, nb: int = 32, seed: int = 0):
    """Full eigenpairs of a general real matrix through our pipeline:
    reduction → Francis eigenvalues → inverse-iteration vectors →
    back-transformation. Returns ``(eigvals, eigvecs)`` with
    ``A v_q ≈ λ_q v_q``.
    """
    from repro.eigen.hqr import _work_dtype, hessenberg_eigvals
    from repro.linalg.gehrd import gehrd
    from repro.linalg.orghr import orghr
    from repro.linalg.verify import extract_hessenberg

    work = np.array(a, dtype=_work_dtype(a), order="F", copy=True)
    fac = gehrd(work, nb=nb)
    h = extract_hessenberg(work)
    q = orghr(work, fac.taus)
    lam = hessenberg_eigvals(h, check_input=False)
    xh = hessenberg_eigvecs(h, lam, seed=seed, check_input=False)
    return lam, q @ xh
