"""repro — fault-tolerant Hessenberg reduction on simulated hybrid machines.

Reproduction of Jia, Luszczek, Dongarra, *"Hessenberg Reduction with
Transient Error Resilience on GPU-Based Hybrid Architectures"*
(IPDPS Workshops 2016). See README.md and DESIGN.md.

Public API highlights
---------------------
``repro.linalg``   — from-scratch LAPACK-style kernels (gehrd, lahr2, ...)
``repro.core``     — the hybrid (Algorithm 2) and fault-tolerant
                     (Algorithm 3) Hessenberg drivers
``repro.abft``     — checksum encoding, detection, location, correction,
                     reverse computation, Q protection
``repro.hybrid``   — discrete-event CPU+GPU machine simulator
``repro.faults``   — soft-error injection and campaigns
``repro.batch``    — stacked small-n engine: batched fault-free fast
                     path with ejection to the scalar resilience ladder
``repro.analysis`` — experiment harnesses regenerating the paper's
                     tables and figures
"""

__version__ = "1.0.0"

from repro.errors import (
    ReproError,
    ShapeError,
    ConvergenceError,
    UncorrectableError,
    DetectionError,
    SimulationError,
    FaultConfigError,
)

from repro.core import (
    FTConfig,
    HybridConfig,
    ft_gebd2,
    ft_gehrd,
    ft_geqrf,
    ft_lu_solve,
    ft_sytrd,
    hybrid_gehrd,
    overhead_percent,
)
from repro.batch import ft_gehrd_batched, gehrd_batched
from repro.faults import FaultInjector, FaultSpec
from repro.utils import random_matrix

__all__ = [
    "__version__",
    "FTConfig",
    "HybridConfig",
    "ft_gebd2",
    "ft_gehrd",
    "ft_geqrf",
    "ft_lu_solve",
    "ft_sytrd",
    "hybrid_gehrd",
    "overhead_percent",
    "ft_gehrd_batched",
    "gehrd_batched",
    "FaultInjector",
    "FaultSpec",
    "random_matrix",
    "ReproError",
    "ShapeError",
    "ConvergenceError",
    "UncorrectableError",
    "DetectionError",
    "SimulationError",
    "FaultConfigError",
]
