"""`ClusterService` — the one-handle facade over the sharded serve tier.

Mirrors :class:`repro.serve.service.HessService` shape-for-shape —
``submit`` / ``submit_batch`` / ``submit_wait`` / ``result`` /
``drain`` / ``stats`` / ``close`` / context manager — so anything
written against one service scales to a fleet by swapping the
constructor. Each shard is a full ``HessService`` built from the same
keyword set; the cluster adds the ring, the router, cache replication,
and the health monitor on top.

    with ClusterService(shards=3, workers=1, small_n_threshold=64) as svc:
        subs = svc.submit_batch(specs)
        svc.drain(timeout=120)
        res = svc.result(subs[0].job_id)
        print(svc.stats()["router"]["counts"])

``kill_shard(i)`` is the chaos hook the failover test and the CLI's
``--chaos-kill-shard`` flag use: it fails one shard the way a node loss
would and (by default) lets the health monitor revive it.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.cluster.health import HealthMonitor
from repro.cluster.replicate import CacheReplicator
from repro.cluster.ring import HashRing
from repro.cluster.router import ClusterRouter, ClusterSubmission
from repro.cluster.shard import Shard
from repro.serve.jobs import JobResult, JobSpec
from repro.serve.retry import RetryPolicy
from repro.serve.service import HessService


class ClusterService:
    """A sharded, replicated, self-healing batch-reduction service.

    ``shards`` is the fleet size; the remaining serve keywords are
    applied to every shard. ``spill_threshold`` is the per-shard queue
    depth at which the router spills a job to the key's ring successor
    (defaults to ``max_queue`` — spill only when the owner would
    reject). ``replicate=False`` turns off the cache-replication hook;
    ``auto_restart=False`` leaves dead shards down (the chaos tests
    use both to isolate behaviours).
    """

    def __init__(
        self,
        *,
        shards: int = 3,
        vnodes: int = 64,
        workers: int = 1,
        max_queue: int = 64,
        cache_bytes: int = 8 * 1024 * 1024,
        retry: RetryPolicy | None = None,
        small_n_threshold: int = 0,
        default_timeout: float | None = None,
        transport: str = "auto",
        batch_max: int = 0,
        batch_linger_ms: float = 5.0,
        replicate: bool = True,
        spill_threshold: int | None = None,
        health_interval: float = 0.1,
        auto_restart: bool = True,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")

        def factory() -> HessService:
            return HessService(
                workers=workers,
                max_queue=max_queue,
                cache_bytes=cache_bytes,
                retry=retry,
                small_n_threshold=small_n_threshold,
                default_timeout=default_timeout,
                transport=transport,
                batch_max=batch_max,
                batch_linger_ms=batch_linger_ms,
            )

        self.shards: dict[str, Shard] = {}
        self.ring = HashRing(vnodes=vnodes)
        for i in range(shards):
            shard_id = f"shard-{i}"
            self.shards[shard_id] = Shard(shard_id, factory)
            self.ring.add(shard_id)

        self.replicator = (
            CacheReplicator(self.ring, self.shards)
            if replicate and cache_bytes > 0 else None
        )
        self.router = ClusterRouter(
            self.ring,
            self.shards,
            retry=retry,
            replicator=self.replicator,
            spill_threshold=(
                spill_threshold if spill_threshold is not None else max_queue
            ),
        )
        self.monitor = HealthMonitor(
            self.shards,
            self.router,
            replicator=self.replicator,
            interval=health_interval,
            auto_restart=auto_restart,
        )
        self._closed = False

    # -- submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> ClusterSubmission:
        """Admit one job onto the fleet (never blocks)."""
        return self.router.submit(spec)

    def submit_batch(self, specs: Iterable[JobSpec]) -> list[ClusterSubmission]:
        return [self.submit(spec) for spec in specs]

    def submit_wait(self, spec: JobSpec, *, poll: float = 0.02,
                    attempts: int = 10_000) -> ClusterSubmission:
        """Submit, waiting out fleet-wide backpressure (every shard
        saturated) by polling; invalid specs reject immediately."""
        import time

        last = self.submit(spec)
        tries = 0
        while not last.accepted and last.reason.startswith("backpressure") and tries < attempts:
            time.sleep(poll)
            last = self.submit(spec)
            tries += 1
        return last

    # -- queries / control ---------------------------------------------------

    def peek(self, job_id: int) -> JobResult | None:
        return self.router.peek(job_id)

    def result(self, job_id: int, timeout: float | None = None) -> JobResult:
        """Block until the cluster job is terminal."""
        return self.router.result(job_id, timeout)

    def describe(self, job_id: int) -> dict | None:
        """Placement metadata: shard, route, replays, latency."""
        return self.router.describe(job_id)

    def drain(self, timeout: float | None = None) -> None:
        """Wait until every accepted cluster job is terminal."""
        self.router.drain(timeout)

    def stats(self) -> dict:
        """Fleet-wide stats: ring, router, per-shard, replication, health."""
        return {
            "ring": self.ring.stats(),
            "router": self.router.stats(),
            "shards": {sid: s.stats() for sid, s in self.shards.items()},
            "replication": (
                self.replicator.stats() if self.replicator is not None else None
            ),
            "health": self.monitor.stats(),
        }

    def events(self) -> Iterator[dict]:
        """Merged progress events from every live shard (best-effort:
        shards that restart re-subscribe on the next call)."""
        import queue as _queue

        qs = [
            (sid, shard.service.subscribe())
            for sid, shard in self.shards.items()
            if shard.heartbeat()
        ]
        while not self._closed:
            idle = True
            for sid, q in qs:
                try:
                    event = q.get_nowait()
                except _queue.Empty:
                    continue
                idle = False
                event = dict(event)
                event["shard"] = sid
                yield event
            if idle:
                import time

                time.sleep(0.05)

    # -- chaos ---------------------------------------------------------------

    def kill_shard(self, index_or_id: "int | str") -> str:
        """Fail one shard as a node loss would (chaos hook).

        With ``auto_restart`` on, the health monitor revives it within
        about one heartbeat interval; the shard's in-flight jobs replay
        through the retry budget. Returns the killed shard's id.
        """
        shard_id = (
            index_or_id if isinstance(index_or_id, str)
            else f"shard-{index_or_id}"
        )
        shard = self.shards[shard_id]
        shard.kill()
        return shard_id

    # -- lifecycle -----------------------------------------------------------

    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        if self._closed:
            return
        if drain:
            try:
                self.router.drain(timeout)
            except TimeoutError:
                pass
        self._closed = True
        self.monitor.close()
        self.router.close()
        for shard in self.shards.values():
            try:
                shard.close(drain=False, timeout=timeout)
            except Exception:
                pass

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)
