"""Cluster router: place jobs on shards, collect results, lose nothing.

The router is the cluster's control plane. It owns the hash ring, a
ledger of every accepted cluster job, and a background collector thread
that polls each shard for completed work. Placement for a job key walks
``ring.preference(key)`` and takes the first shard that accepts:

* the **owner** (``preference[0]``) in the common case — cache affinity;
* **spillover** to later preference entries when the owner's queue
  depth is at the spill threshold (the shard would reject or queue the
  job behind a long backlog; its ring successor is idle capacity with
  the second-best chance of a replica cache hit);
* **failover** past shards whose heartbeat is down — a dead owner must
  not make its keys unroutable while the health monitor restarts it.

**Cross-shard coalescing.** Each shard's scheduler already coalesces
duplicate keys *within* the shard; spillover and failover can place the
same key on two different shards, so the router adds its own layer:
while a key has a non-terminal leader job anywhere, new submissions for
that key attach to it as followers and are resolved by copy when the
leader finishes.

**Zero lost jobs.** The ledger maps every in-flight cluster job to the
``(shard, generation, shard_job_id)`` executing it. When a shard dies,
:meth:`evict_pending` atomically claims those entries (under the router
lock, *before* the shard restarts — the replacement service reuses job
ids from zero, so stale ids must be off the books first) and
:meth:`replay` re-places each one, charging the attempt against the
serve tier's ``WORKER_LOST`` retry budget via the shared
:class:`~repro.serve.retry.RetryPolicy`. A job only fails when that
budget is exhausted — and then it fails *explicitly*, with a
``worker_lost`` JobResult, never by vanishing.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.cluster.replicate import CacheReplicator
from repro.cluster.ring import HashRing
from repro.cluster.shard import Shard
from repro.serve.jobs import FAILED, JobResult, JobSpec
from repro.serve.retry import WORKER_LOST, RetryPolicy
from repro.serve.scheduler import Submission


@dataclass(frozen=True)
class ClusterSubmission:
    """Admission outcome for one cluster submit (mirrors serve's
    :class:`~repro.serve.scheduler.Submission`, plus placement)."""

    accepted: bool
    job_id: int | None = None
    key: str = ""
    shard: str = ""
    route: str = ""          # "owner" | "spillover" | "failover" | "coalesced"
    reason: str = ""


@dataclass
class _ClusterJob:
    """Ledger entry for one accepted cluster job."""

    cluster_id: int
    spec: JobSpec
    shard_id: str = ""
    generation: int = -1
    shard_job_id: int | None = None
    route: str = ""
    result: JobResult | None = None
    replays: int = 0
    followers: list = field(default_factory=list)  # follower _ClusterJobs
    submitted_at: float = 0.0
    finished_at: float = 0.0

    @property
    def terminal(self) -> bool:
        return self.result is not None and self.result.terminal


class ClusterRouter:
    """Shard-aware placement, cross-shard coalescing, loss-free replay."""

    def __init__(
        self,
        ring: HashRing,
        shards: "dict[str, Shard]",
        *,
        retry: RetryPolicy | None = None,
        replicator: CacheReplicator | None = None,
        spill_threshold: int | None = None,
        poll: float = 0.01,
    ) -> None:
        self.ring = ring
        self.shards = shards
        self.retry = retry if retry is not None else RetryPolicy()
        self.replicator = replicator
        self.spill_threshold = spill_threshold
        self._poll = float(poll)
        self._lock = threading.RLock()
        self._done = threading.Condition(self._lock)
        self._ids = itertools.count(1)
        self._jobs: dict[int, _ClusterJob] = {}
        self._by_key: dict[str, _ClusterJob] = {}      # key -> live leader
        # shard id -> shard job id -> cluster job (awaiting collection)
        self._pending: dict[str, dict[int, _ClusterJob]] = {
            sid: {} for sid in shards
        }
        self.counts = {
            "accepted": 0, "rejected": 0, "coalesced": 0,
            "owner": 0, "spillover": 0, "failover": 0,
            "replayed": 0, "replay_exhausted": 0, "done": 0, "failed": 0,
        }
        self._closed = False
        self._collector = threading.Thread(
            target=self._collect_loop, name="cluster-collector", daemon=True
        )
        self._collector.start()

    # -- admission -----------------------------------------------------------

    def submit(self, spec: JobSpec) -> ClusterSubmission:
        """Validate, coalesce across shards, then place on the ring."""
        try:
            spec.validate()
        except Exception as exc:
            with self._lock:
                self.counts["rejected"] += 1
            return ClusterSubmission(False, reason=f"invalid: {exc}")

        key = spec.key
        with self._lock:
            if self._closed:
                return ClusterSubmission(False, key=key,
                                         reason="unavailable: cluster closed")
            leader = self._by_key.get(key)
            if leader is not None and not leader.terminal:
                follower = _ClusterJob(
                    cluster_id=next(self._ids), spec=spec,
                    shard_id=leader.shard_id, route="coalesced",
                    submitted_at=time.monotonic(),
                )
                leader.followers.append(follower)
                self._jobs[follower.cluster_id] = follower
                self.counts["accepted"] += 1
                self.counts["coalesced"] += 1
                return ClusterSubmission(True, follower.cluster_id, key,
                                         shard=leader.shard_id, route="coalesced")

            cjob = _ClusterJob(cluster_id=next(self._ids), spec=spec,
                               submitted_at=time.monotonic())
            placed = self._place(cjob)
            if not placed.accepted:
                self.counts["rejected"] += 1
                return placed
            self._jobs[cjob.cluster_id] = cjob
            self._by_key[key] = cjob
            self.counts["accepted"] += 1
            self.counts[cjob.route] += 1
            return placed

    def _place(self, cjob: _ClusterJob) -> ClusterSubmission:
        """Walk the key's preference list; first accepting shard wins.

        Caller holds the router lock. Routes: ``owner`` when the first
        live, unsaturated preference entry is the ring owner;
        ``spillover`` when the owner was alive but saturated;
        ``failover`` when the owner was dead.
        """
        key = cjob.spec.key
        order = self.ring.preference(key)
        owner_alive = False
        last_reason = "unavailable: no live shard"
        for rank, shard_id in enumerate(order):
            shard = self.shards.get(shard_id)
            if shard is None or not shard.heartbeat():
                continue
            if rank == 0:
                owner_alive = True
            if (
                self.spill_threshold is not None
                and rank + 1 < len(order)      # last resort takes anything
                and shard.queue_depth() >= self.spill_threshold
            ):
                last_reason = f"backpressure: shard {shard_id} saturated"
                continue
            sub: Submission = shard.service.submit(cjob.spec)
            if sub.accepted:
                cjob.shard_id = shard_id
                cjob.generation = shard.generation
                cjob.shard_job_id = sub.job_id
                cjob.route = (
                    "owner" if rank == 0
                    else ("spillover" if owner_alive else "failover")
                )
                self._pending[shard_id][sub.job_id] = cjob
                return ClusterSubmission(True, cjob.cluster_id, key,
                                         shard=shard_id, route=cjob.route)
            last_reason = sub.reason
            if not sub.reason.startswith("backpressure"):
                # invalid spec or stopped scheduler — trying other
                # shards can't fix an invalid spec, but a stopped
                # scheduler is that shard's problem; keep walking
                if sub.reason.startswith("invalid"):
                    return ClusterSubmission(False, key=key, reason=sub.reason)
        return ClusterSubmission(False, key=key, reason=last_reason)

    # -- collection ----------------------------------------------------------

    def _collect_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed and not any(self._pending.values()):
                    return
                batch = [
                    (sid, sjid, cjob)
                    for sid, table in self._pending.items()
                    for sjid, cjob in table.items()
                ]
            finished = []
            for sid, sjid, cjob in batch:
                shard = self.shards.get(sid)
                if shard is None or shard.generation != cjob.generation:
                    continue  # stale entry; evict_pending owns it
                if not shard.heartbeat():
                    continue  # health monitor will evict + replay
                try:
                    res = shard.service.peek(sjid)
                except Exception:
                    continue
                if res is not None and res.terminal:
                    finished.append((sid, sjid, cjob, res))
            if finished:
                with self._lock:
                    for sid, sjid, cjob, res in finished:
                        if self._pending.get(sid, {}).pop(sjid, None) is None:
                            continue  # raced with evict_pending
                        self._finish(cjob, res)
            time.sleep(self._poll)

    def _finish(self, cjob: _ClusterJob, res: JobResult) -> None:
        """Resolve a leader and its followers. Caller holds the lock."""
        cjob.result = res
        cjob.finished_at = time.monotonic()
        self.counts["done" if res.status != FAILED else "failed"] += 1
        for follower in cjob.followers:
            follower.result = res
            follower.finished_at = cjob.finished_at
        cjob.followers.clear()
        if self._by_key.get(cjob.spec.key) is cjob:
            del self._by_key[cjob.spec.key]
        if (
            self.replicator is not None
            and res.status != FAILED
            and res.payload is not None
            and not cjob.spec.return_factors
        ):
            # outside the hot path it would be nicer to push without the
            # lock held, but put() on a live cache is cheap and the lock
            # keeps fill ordering consistent with the ledger
            self.replicator.on_fill(cjob.spec.key, res.payload,
                                    ran_on=cjob.shard_id)
        self._done.notify_all()

    # -- failure recovery ----------------------------------------------------

    def evict_pending(self, shard_id: str) -> "list[_ClusterJob]":
        """Atomically claim a dead shard's in-flight cluster jobs.

        Must run *before* the shard restarts: the replacement service
        issues job ids from zero, and a stale ledger entry with a
        colliding id would collect the wrong job's result.
        """
        with self._lock:
            table = self._pending.get(shard_id, {})
            lost = list(table.values())
            table.clear()
            return lost

    def replay(self, shard_id: str, lost: "list[_ClusterJob]") -> dict:
        """Re-place a dead shard's lost jobs through the retry taxonomy.

        Each lost job charges one ``WORKER_LOST`` attempt. Within
        budget it is re-placed on the ring exactly like a fresh submit
        (the restarted shard is usually back and owns its keys again;
        rehydrated cache entries turn replays of completed-elsewhere
        keys into hits). Budget exhausted, or no shard accepting → the
        job resolves FAILED with a synthesized ``worker_lost`` result.
        """
        out = {"replayed": 0, "failed": 0}
        for cjob in lost:
            with self._lock:
                if cjob.terminal:
                    continue
                # class_attempts counts *prior* same-class failures, so a
                # first loss decides with 0 against the worker_lost budget
                decision = self.retry.decide(WORKER_LOST, cjob.replays,
                                             key=cjob.spec.key)
                cjob.replays += 1
                if decision.retry:
                    placed = self._place(cjob)
                    if placed.accepted:
                        self.counts["replayed"] += 1
                        out["replayed"] += 1
                        continue
                    reason = f"replay placement failed: {placed.reason}"
                else:
                    self.counts["replay_exhausted"] += 1
                    reason = (
                        f"shard {shard_id} lost the job and the "
                        f"{WORKER_LOST} retry budget is exhausted "
                        f"({decision.reason})"
                    )
                self._finish(cjob, JobResult(
                    job_id=cjob.shard_job_id if cjob.shard_job_id is not None
                    else -1,
                    key=cjob.spec.key, status=FAILED,
                    error=reason, failure_class=WORKER_LOST,
                    retries=cjob.replays,
                ))
                out["failed"] += 1
        return out

    # -- queries -------------------------------------------------------------

    def peek(self, cluster_id: int) -> JobResult | None:
        with self._lock:
            cjob = self._jobs.get(cluster_id)
            return cjob.result if cjob is not None else None

    def describe(self, cluster_id: int) -> dict | None:
        """Cluster-level metadata the per-shard JobResult can't know."""
        with self._lock:
            cjob = self._jobs.get(cluster_id)
            if cjob is None:
                return None
            out = {
                "cluster_id": cjob.cluster_id,
                "key": cjob.spec.key,
                "shard": cjob.shard_id,
                "route": cjob.route,
                "replays": cjob.replays,
                "terminal": cjob.terminal,
            }
            if cjob.terminal:
                out["latency_s"] = round(cjob.finished_at - cjob.submitted_at, 6)
                out["status"] = cjob.result.status
            return out

    def result(self, cluster_id: int, timeout: float | None = None) -> JobResult:
        """Block until the cluster job is terminal."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._done:
            if cluster_id not in self._jobs:
                raise KeyError(f"unknown cluster job id {cluster_id}")
            while True:
                cjob = self._jobs[cluster_id]
                if cjob.terminal:
                    return cjob.result
                wait = None if deadline is None else deadline - time.monotonic()
                if wait is not None and wait <= 0:
                    raise TimeoutError(
                        f"cluster job {cluster_id} not terminal within {timeout}s"
                    )
                self._done.wait(timeout=wait if wait is not None else 0.5)

    def drain(self, timeout: float | None = None) -> None:
        """Wait until every accepted cluster job is terminal."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._done:
            while any(not j.terminal for j in self._jobs.values()):
                wait = None if deadline is None else deadline - time.monotonic()
                if wait is not None and wait <= 0:
                    raise TimeoutError("cluster drain timed out")
                self._done.wait(timeout=wait if wait is not None else 0.5)

    def latencies(self) -> "list[float]":
        """Completed-job latencies (seconds), for tail-latency checks."""
        with self._lock:
            return sorted(
                j.finished_at - j.submitted_at
                for j in self._jobs.values()
                if j.terminal and j.finished_at > 0
            )

    def stats(self) -> dict:
        with self._lock:
            pending = {sid: len(t) for sid, t in self._pending.items() if t}
            return {
                "counts": dict(self.counts),
                "pending": pending,
                "jobs": len(self._jobs),
            }

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._closed = True
            for table in self._pending.values():
                table.clear()
            self._done.notify_all()
        self._collector.join(timeout=5)
