"""Health monitor: detect dead shards, restart them, replay their work.

The monitor is a single daemon thread beating at ``interval`` seconds.
Each beat heartbeats every shard; a failed heartbeat triggers the
revival sequence, whose ordering is the whole point:

1. **evict** — :meth:`ClusterRouter.evict_pending` atomically claims
   the dead shard's in-flight cluster jobs *before* anything restarts.
   The replacement ``HessService`` issues job ids from zero; a stale
   ledger entry left behind would alias a new job's id and collect the
   wrong result.
2. **restart** — :meth:`Shard.restart` builds a fresh service from the
   shard's factory (same config, new generation). This is the cluster
   analogue of ``ResilientProcessPool``'s rebuild-on-crash: the pool
   heals a lost *worker process* under a live scheduler; the monitor
   heals a lost *scheduler* under a live cluster, and the restarted
   service's own pool machinery takes over worker-level faults again.
3. **rehydrate** — the replicator replays the ledger of results this
   shard owned into its fresh cache, so the revived shard is warm and
   step 4's replays of already-completed keys become cache hits.
4. **replay** — :meth:`ClusterRouter.replay` re-places the evicted
   jobs through the serve retry taxonomy (``WORKER_LOST`` budget).
   Jobs land back on the ring — usually on the restarted owner — and
   nothing is lost: every evicted job ends terminal, done or an
   explicit ``worker_lost`` failure.

The paper's transient-fault model maps node-up recovery to exactly this
backward/forward split: restart-and-rehydrate is the backward step
(restore state), replay-through-retry is the forward step (redo the
work the fault interrupted).
"""

from __future__ import annotations

import threading

from repro.cluster.replicate import CacheReplicator
from repro.cluster.router import ClusterRouter
from repro.cluster.shard import Shard


class HealthMonitor:
    """Heartbeat loop with automatic shard revival."""

    def __init__(
        self,
        shards: "dict[str, Shard]",
        router: ClusterRouter,
        *,
        replicator: CacheReplicator | None = None,
        interval: float = 0.1,
        auto_restart: bool = True,
    ) -> None:
        self._shards = shards
        self._router = router
        self._replicator = replicator
        self._interval = float(interval)
        self._auto_restart = auto_restart
        self._stop = threading.Event()
        self._revive_lock = threading.Lock()
        self.checks = 0
        self.restarts = 0
        self.replayed = 0
        self.replay_failed = 0
        self.rehydrated = 0
        self._thread = threading.Thread(
            target=self._loop, name="cluster-health", daemon=True
        )
        self._thread.start()

    # -- the beat ------------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            self.checks += 1
            for shard in list(self._shards.values()):
                if not shard.heartbeat():
                    self._revive(shard)

    def _revive(self, shard: Shard) -> None:
        if not self._auto_restart:
            return
        with self._revive_lock:
            if self._stop.is_set():
                return  # shutting down; a restart now would leak a service
            if shard.heartbeat():
                return  # another path already revived it
            lost = self._router.evict_pending(shard.shard_id)
            shard.restart()
            if self._replicator is not None:
                self.rehydrated += self._replicator.rehydrate(shard)
            outcome = self._router.replay(shard.shard_id, lost)
            self.restarts += 1
            self.replayed += outcome["replayed"]
            self.replay_failed += outcome["failed"]

    def revive_now(self, shard: Shard) -> None:
        """Synchronous revival (tests and the CLI chaos path use this to
        avoid racing the beat)."""
        self._revive(shard)

    def stats(self) -> dict:
        return {
            "checks": self.checks,
            "restarts": self.restarts,
            "replayed": self.replayed,
            "replay_failed": self.replay_failed,
            "rehydrated": self.rehydrated,
            "interval_s": self._interval,
        }

    def quiesce(self) -> None:
        """Block until no revival is in flight.

        A revive can sit in the replacement service's pool ``warm()``
        for seconds on a loaded box; the cluster's close path calls
        this after stopping the beat so it never tears shards down
        under a half-finished restart (which would leak the restarted
        service's pool and shm segments).
        """
        with self._revive_lock:
            pass

    def close(self) -> None:
        self._stop.set()
        self._thread.join(timeout=30)
        self.quiesce()
