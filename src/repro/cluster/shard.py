"""One cluster shard: a full `HessService` plus lifecycle metadata.

A shard is the cluster's unit of failure and recovery. It wraps a
:class:`repro.serve.service.HessService` (scheduler + resilient pool +
result cache) with the three things the routing and health layers need
and the service itself deliberately doesn't track:

* **identity** — a stable ``shard_id`` that survives restarts, because
  the hash ring and the replica ledger are keyed by it;
* **generation** — bumped on every restart, so a router holding job ids
  issued by the *old* service instance can tell they are stale (the new
  service restarts its job-id counter from zero and would otherwise
  alias them);
* **a factory** — the zero-argument callable that builds a replacement
  ``HessService`` with the same configuration, which is what makes
  :meth:`restart` possible without the health layer knowing any serve
  parameters.

``kill()`` is the chaos hook: it marks the shard dead *first* and then
tears the service down without draining, which is the closest
in-process analogue of a node loss that still releases the service's
worker processes and shm segments (the test suite's leak guard treats a
leaked segment as a failure, and a real SIGKILL here would orphan the
pool of the shard's own children).
"""

from __future__ import annotations

from typing import Callable

from repro.serve.service import HessService


class Shard:
    """A named, restartable `HessService` slot in the cluster."""

    def __init__(self, shard_id: str, factory: Callable[[], HessService]) -> None:
        self.shard_id = shard_id
        self._factory = factory
        self.service = factory()
        self.alive = True
        self.generation = 0
        self.restarts = 0

    # -- health --------------------------------------------------------------

    def heartbeat(self) -> bool:
        """Is the shard taking work? False once killed or once the
        service's loop thread has died underneath it."""
        return self.alive and self.service.alive

    def queue_depth(self) -> int:
        """Admission pressure; dead shards report +inf so routing math
        never prefers them."""
        if not self.heartbeat():
            return 1 << 30
        return self.service.queue_depth()

    # -- lifecycle -----------------------------------------------------------

    def kill(self) -> None:
        """Chaos hook: fail the shard as a node loss would.

        Marks the shard dead before touching the service so concurrent
        heartbeats observe the failure immediately, then tears the
        service down without draining — in-flight jobs are abandoned,
        exactly what the router's replay path exists to recover.
        """
        if not self.alive:
            return
        self.alive = False
        try:
            self.service.close(drain=False, timeout=5)
        except Exception:
            # a wedged close is part of the failure being simulated;
            # the replacement service comes from restart()
            pass

    def restart(self) -> HessService:
        """Build a fresh service in this slot (new generation)."""
        if self.alive:
            # crash-restart path for a service whose loop died on its own
            try:
                self.service.close(drain=False, timeout=5)
            except Exception:
                pass
        self.service = self._factory()
        self.generation += 1
        self.restarts += 1
        self.alive = True
        return self.service

    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Orderly shutdown (cluster close path, not a failure)."""
        if not self.alive:
            return
        self.alive = False
        self.service.close(drain=drain, timeout=timeout)

    def stats(self) -> dict:
        """JSON-safe shard description for cluster stats dumps."""
        out = {
            "shard_id": self.shard_id,
            "alive": self.heartbeat(),
            "generation": self.generation,
            "restarts": self.restarts,
        }
        if self.heartbeat():
            out["uptime_s"] = round(self.service.uptime_s(), 3)
            out["queue_depth"] = self.service.queue_depth()
        return out
