"""Result-cache replication: a shard loss must not cold-start its cache.

Each shard's `ResultCache` fills with the keys the ring routes to it.
Lose the shard and — without replication — every one of those keys
recomputes from scratch on the restarted (empty-cache) service, which
is exactly the cold-start the consistent-hash ring was chosen to avoid
on *membership* changes. The replicator closes that hole for *failures*
with two moves per cache fill:

* **push-on-fill** — when a job completes on any shard, its payload is
  pushed into the live cache of the key's ring *successor*
  (``ring.successor(key)``), so a second copy is already warm on the
  shard that would inherit the key's arc if the owner vanished;
* **ledger** — the same payload is recorded in an in-process ledger
  keyed by the *owner* shard, which is what :meth:`rehydrate` replays
  into a restarted shard's fresh cache so the revived owner comes back
  warm instead of earning its keys back one miss at a time.

Payloads here are the small JSON-safe residual/telemetry dicts the
serve cache stores (``return_factors`` jobs bypass caching in the serve
tier and are skipped here for the same reason — factor matrices are too
big to double-store). The ledger is byte-budgeted like the caches it
feeds; eviction is FIFO per owner, oldest fill first.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.cluster.ring import HashRing
from repro.cluster.shard import Shard


class CacheReplicator:
    """Push-on-fill cache replication plus a rehydration ledger."""

    def __init__(
        self,
        ring: HashRing,
        shards: "dict[str, Shard]",
        *,
        ledger_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        self._ring = ring
        self._shards = shards
        self._ledger_bytes = int(ledger_bytes)
        self._lock = threading.Lock()
        # owner shard id -> key -> (payload, approx bytes), insertion-ordered
        self._by_owner: dict[str, OrderedDict[str, tuple[dict, int]]] = {}
        self._bytes = 0
        self.pushed = 0
        self.repatriated = 0
        self.rehydrated = 0

    # -- fill path -----------------------------------------------------------

    @staticmethod
    def _approx_bytes(payload: dict) -> int:
        # same rough costing a JSON dump would give; exactness doesn't
        # matter, only that the ledger budget is bounded
        try:
            import json

            return len(json.dumps(payload, default=str))
        except Exception:
            return 1024

    def on_fill(self, key: str, payload: dict, *, ran_on: str) -> None:
        """Record a completed job's cacheable payload.

        ``ran_on`` is the shard that actually executed the job — under
        spillover or failover that can differ from the ring owner, in
        which case the payload is also *repatriated* into the owner's
        cache so the key's home shard serves future hits directly.
        """
        owner = self._ring.owner(key)
        successor = self._ring.successor(key)

        with self._lock:
            ledger = self._by_owner.setdefault(owner, OrderedDict())
            if key in ledger:
                _, old = ledger.pop(key)
                self._bytes -= old
            size = self._approx_bytes(payload)
            ledger[key] = (payload, size)
            self._bytes += size
            while self._bytes > self._ledger_bytes and self._any_evictable():
                self._evict_oldest()

        if successor != ran_on:
            self._push(successor, key, payload)
            self.pushed += 1
        if owner != ran_on and owner != successor:
            self._push(owner, key, payload)
            self.repatriated += 1

    def _any_evictable(self) -> bool:
        return any(self._by_owner.values())

    def _evict_oldest(self) -> None:
        # FIFO across owners: drop the oldest entry of the fattest ledger
        owner = max(
            self._by_owner,
            key=lambda sid: sum(b for _, b in self._by_owner[sid].values()),
        )
        _, (_, size) = self._by_owner[owner].popitem(last=False)
        self._bytes -= size
        if not self._by_owner[owner]:
            del self._by_owner[owner]

    def _push(self, shard_id: str, key: str, payload: dict) -> None:
        shard = self._shards.get(shard_id)
        if shard is None or not shard.heartbeat():
            return
        cache = shard.service.cache
        if cache is None:
            return
        try:
            cache.put(key, payload)
        except Exception:
            # replication is best-effort: a racing shard death here is
            # recovered by rehydrate() when the shard comes back
            pass

    # -- recovery path -------------------------------------------------------

    def rehydrate(self, shard: Shard) -> int:
        """Warm a restarted shard's fresh cache from the ledger.

        Returns the number of keys restored. Called by the health
        monitor after ``shard.restart()`` and before replaying the
        shard's lost in-flight jobs, so replays of already-completed
        keys resolve as cache hits instead of recomputes.
        """
        with self._lock:
            entries = list(self._by_owner.get(shard.shard_id, {}).items())
        cache = shard.service.cache
        if cache is None:
            return 0
        restored = 0
        for key, (payload, _) in entries:
            try:
                cache.put(key, payload)
                restored += 1
            except Exception:
                break
        self.rehydrated += restored
        return restored

    def stats(self) -> dict:
        with self._lock:
            keys = sum(len(v) for v in self._by_owner.values())
            owners = {sid: len(v) for sid, v in self._by_owner.items()}
        return {
            "ledger_keys": keys,
            "ledger_bytes": self._bytes,
            "by_owner": owners,
            "pushed": self.pushed,
            "repatriated": self.repatriated,
            "rehydrated": self.rehydrated,
        }
