"""repro.cluster — the sharded, replicated, self-healing serve tier.

ROADMAP item 4: from one process to a fleet. Each shard is a full
:class:`repro.serve.service.HessService`; this package adds the layers
a fleet needs and one service doesn't have:

* :mod:`repro.cluster.ring` — consistent-hash placement of
  content-addressed job keys, minimal movement on membership change;
* :mod:`repro.cluster.router` — shard-aware admission with spillover,
  failover, cross-shard duplicate coalescing, loss-free replay ledger;
* :mod:`repro.cluster.replicate` — push-on-fill result-cache
  replication to each key's ring successor, plus restart rehydration;
* :mod:`repro.cluster.health` — heartbeat monitor that restarts dead
  shards and replays their in-flight jobs through the serve retry
  taxonomy;
* :mod:`repro.cluster.service` — the ``ClusterService`` facade, API-
  compatible with ``HessService``.

See ``docs/cluster.md`` for routing, replication, and failover
semantics, and the ``cluster`` CLI subcommand for the batch runner.
"""

from repro.cluster.health import HealthMonitor
from repro.cluster.replicate import CacheReplicator
from repro.cluster.ring import HashRing
from repro.cluster.router import ClusterRouter, ClusterSubmission
from repro.cluster.service import ClusterService
from repro.cluster.shard import Shard

__all__ = [
    "CacheReplicator",
    "ClusterRouter",
    "ClusterService",
    "ClusterSubmission",
    "HashRing",
    "HealthMonitor",
    "Shard",
]
