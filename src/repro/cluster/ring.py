"""Consistent-hash ring: stable key→shard placement with minimal movement.

The cluster tier places jobs by their content-addressed keys
(:attr:`repro.serve.jobs.JobSpec.key`), so the same computation always
lands on the same shard and that shard's result cache accumulates
exactly the keys it owns — cache affinity for free. A plain
``hash(key) % n_shards`` would give the same affinity but reshuffles
almost every key when a shard joins or leaves; the consistent-hash ring
moves only the keys whose arc the membership change touched — ``K/N``
of them in expectation — so scaling the fleet (or restarting a dead
shard) does not cold-start every cache at once.

Mechanics: each shard contributes ``vnodes`` points to a 64-bit ring
(SHA-256 of ``"{shard}#{i}"``); a key hashes to a point and is owned by
the first shard point at or clockwise of it. Virtual nodes smooth the
arc lengths so the key load per shard concentrates around ``K/N``
(tested in ``tests/test_ring.py``); they also make the *movement* on
add/remove fine-grained — the new shard takes ``vnodes`` small slices
from everyone instead of one giant slice from one victim.

``preference(key)`` walks the ring clockwise from the key and returns
each distinct shard in encounter order — the router's failover and
spillover order, and the replication hook's definition of the key's
"successor" (``preference[1]``).
"""

from __future__ import annotations

import bisect
import hashlib


def _hash(token: str) -> int:
    """A stable 64-bit ring position for *token* (shard vnode or job key)."""
    return int.from_bytes(hashlib.sha256(token.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over shard ids, with virtual nodes.

    Membership operations (:meth:`add` / :meth:`remove`) are O(vnodes ·
    log points); lookups are one hash plus a bisect. The ring is not
    thread-safe by itself — the cluster router serializes membership
    changes and lookups under its own lock.
    """

    def __init__(self, shards: "tuple | list" = (), *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._points: list[int] = []   # sorted ring positions
        self._owners: list[str] = []   # parallel: shard owning each position
        self._shards: set[str] = set()
        for shard_id in shards:
            self.add(shard_id)

    # -- membership ----------------------------------------------------------

    def add(self, shard_id: str) -> None:
        """Insert a shard's virtual nodes (idempotence is an error:
        double-adding would double the shard's arc share silently)."""
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} is already on the ring")
        for i in range(self.vnodes):
            point = _hash(f"{shard_id}#{i}")
            at = bisect.bisect_left(self._points, point)
            self._points.insert(at, point)
            self._owners.insert(at, shard_id)
        self._shards.add(shard_id)

    def remove(self, shard_id: str) -> None:
        """Drop a shard's virtual nodes; its arcs fall to their successors."""
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id!r} is not on the ring")
        keep = [(p, s) for p, s in zip(self._points, self._owners) if s != shard_id]
        self._points = [p for p, _ in keep]
        self._owners = [s for _, s in keep]
        self._shards.discard(shard_id)

    @property
    def shards(self) -> list[str]:
        """Current membership, sorted for stable display."""
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    # -- lookups -------------------------------------------------------------

    def owner(self, key: str) -> str:
        """The shard owning *key* (first point clockwise of its hash)."""
        if not self._points:
            raise LookupError("the ring has no shards")
        at = bisect.bisect_right(self._points, _hash(key)) % len(self._points)
        return self._owners[at]

    def preference(self, key: str, k: int | None = None) -> list[str]:
        """The first *k* distinct shards clockwise of *key*.

        ``preference(key)[0]`` is the owner; the rest is the failover /
        spillover order the router walks when the owner is saturated or
        dead, and ``preference(key)[1]`` is where the replication hook
        pushes the key's cached result. Defaults to every shard.
        """
        if not self._points:
            raise LookupError("the ring has no shards")
        want = len(self._shards) if k is None else min(int(k), len(self._shards))
        start = bisect.bisect_right(self._points, _hash(key))
        order: list[str] = []
        for i in range(len(self._points)):
            shard_id = self._owners[(start + i) % len(self._points)]
            if shard_id not in order:
                order.append(shard_id)
                if len(order) >= want:
                    break
        return order

    def successor(self, key: str) -> str:
        """The next distinct shard after *key*'s owner — the replica
        target. On a single-shard ring this is the owner itself."""
        order = self.preference(key, 2)
        return order[1] if len(order) > 1 else order[0]

    def stats(self) -> dict:
        """JSON-safe ring description for cluster stats dumps."""
        return {
            "shards": self.shards,
            "vnodes": self.vnodes,
            "points": len(self._points),
        }
