"""Error correction (paper §IV-F).

A located data error at (i, j) is corrected with the paper's dot-product
formula

    ``A(i, j) = Ar_chk(i) − Σ_{k≠j} A(i, k)``

(or its column-checksum dual), summing over the *mathematical* row — the
Q region of finished columns counts as zero. A corrupted checksum element
is simply recomputed from the (intact) data it summarizes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import UncorrectableError
from repro.linalg import flops as F
from repro.linalg.flops import FlopCounter
from repro.abft.encoding import EncodedMatrix
from repro.abft.location import LocatedError


def _masked_row(em: EncodedMatrix, i: int, finished_cols: int) -> np.ndarray:
    """Row *i* of the mathematical matrix (Q-region entries zeroed)."""
    row = em.data[i, :].copy()
    # entry (i, j) is Q data when column j is finished and i >= j + 2
    upto = min(finished_cols, max(i - 1, 0))
    row[:upto] = np.where(np.arange(upto) <= i - 2, 0.0, row[:upto])
    return row


def _masked_col(em: EncodedMatrix, j: int, finished_cols: int) -> np.ndarray:
    """Column *j* of the mathematical matrix."""
    col = em.data[:, j].copy()
    if j < finished_cols:
        col[j + 2 :] = 0.0
    return col


def apply_correction(
    em: EncodedMatrix,
    err: LocatedError,
    finished_cols: int,
    *,
    use: str = "row",
    counter: FlopCounter | None = None,
) -> float:
    """Correct one located error in place; returns the corrected value.

    Parameters
    ----------
    use:
        For data errors, whether to rebuild from the ``"row"`` checksum
        (the paper's primary formula) or the ``"col"`` checksum. A data
        error located by the structural multi-error rules must be
        corrected along the line that contains only that error; the
        driver passes the right choice.
    """
    n = em.n
    if err.kind == "data":
        i, j = err.row, err.col
        if not (0 <= i < n and 0 <= j < n):
            raise UncorrectableError(f"data error index out of range: ({i}, {j})")
        # sum the line with the corrupted element excluded up front —
        # "sum(all) − element" would poison the result if the corrupted
        # value is Inf/NaN (exponent-field bit flips)
        if use == "row":
            row = _masked_row(em, i, finished_cols)
            row[j] = 0.0
            value = float(em.row_checksums[i]) - float(np.sum(row))
        elif use == "col":
            col = _masked_col(em, j, finished_cols)
            col[i] = 0.0
            value = float(em.col_checksums[j]) - float(np.sum(col))
        elif use == "magnitude":
            # subtract the decoded corruption directly — the weighted
            # (multi-channel) decoder determines magnitudes exactly even
            # when the element shares both of its lines with other errors
            value = float(em.data[i, j]) - err.magnitude
        else:
            raise UncorrectableError(f"unknown correction source {use!r}")
        em.data[i, j] = value
        if counter is not None:
            counter.add("abft_correct", F.dot_flops(n) + 1)
        return value
    k = getattr(em, "k", 1)
    channel = getattr(err, "channel", 0)
    if not (0 <= channel < k):
        raise UncorrectableError(f"checksum channel {channel} out of range (k={k})")
    if err.kind == "row_checksum":
        i = err.row
        row = _masked_row(em, i, finished_cols)
        weights = em.weights[channel] if k > 1 else np.ones(n)
        value = float(row @ weights)
        em.ext[i, n + channel] = value
        if counter is not None:
            counter.add("abft_correct", F.dot_flops(n))
        return value
    if err.kind == "col_checksum":
        j = err.col
        col = _masked_col(em, j, finished_cols)
        weights = em.weights[channel] if k > 1 else np.ones(n)
        value = float(weights @ col)
        em.ext[n + channel, j] = value
        if counter is not None:
            counter.add("abft_correct", F.dot_flops(n))
        return value
    raise UncorrectableError(f"unknown error kind {err.kind!r}")


def correct_all(
    em: EncodedMatrix,
    errors: list[LocatedError],
    finished_cols: int,
    *,
    counter: FlopCounter | None = None,
) -> int:
    """Correct a batch of located errors; returns the number corrected.

    Errors sharing a row are corrected through their column checksums and
    vice versa, so each correction only relies on a line it is alone on
    (the guarantee the peeling decoder established).
    """
    row_use = {}
    rows_seen: dict[int, int] = {}
    cols_seen: dict[int, int] = {}
    for e in errors:
        if e.kind == "data":
            rows_seen[e.row] = rows_seen.get(e.row, 0) + 1
            cols_seen[e.col] = cols_seen.get(e.col, 0) + 1
    multi_channel = getattr(em, "k", 1) > 1
    for e in errors:
        if e.kind == "data":
            if rows_seen[e.row] == 1:
                row_use[(e.row, e.col)] = "row"
            elif cols_seen[e.col] == 1:
                row_use[(e.row, e.col)] = "col"
            elif multi_channel:
                # the weighted decoder's magnitudes are exact; subtract
                row_use[(e.row, e.col)] = "magnitude"
            else:
                raise UncorrectableError(
                    f"error at ({e.row}, {e.col}) is not alone on any line"
                )
    for e in errors:
        use = row_use.get((e.row, e.col), "row")
        apply_correction(em, e, finished_cols, use=use, counter=counter)
    return len(errors)
