"""Diskless checkpointing of the active panel (paper §IV, Plank et al.).

Before each panel factorization the fault-tolerant driver snapshots the
panel columns (all N rows) and the column-checksum entries that the
iteration will overwrite, into a main-memory buffer. On detection, the
rollback restores the panel from this buffer — the factorization itself
is *not* reversible (Householder generation is nonlinear in the data),
which is exactly why the paper pairs reverse computation (for the linear
trailing updates) with a diskless checkpoint (for the panel).

The store keeps only the most recent checkpoint: once an iteration's
detection check passes, the previous panel can never be needed again.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.abft.encoding import EncodedMatrix


@dataclass
class PanelCheckpoint:
    """Snapshot taken at the top of one iteration."""

    p: int
    ib: int
    panel: np.ndarray        # (N, ib) copy of columns [p, p+ib)
    col_chk_seg: np.ndarray  # (k, ib) copy of every channel's Ac_chk[p : p+ib]

    @property
    def nbytes(self) -> int:
        return self.panel.nbytes + self.col_chk_seg.nbytes


class DisklessCheckpointStore:
    """Holds the single live panel checkpoint and usage statistics."""

    def __init__(self) -> None:
        self.current: PanelCheckpoint | None = None
        self.saves = 0
        self.restores = 0
        self.peak_bytes = 0

    def save(self, em: EncodedMatrix, p: int, ib: int) -> PanelCheckpoint:
        """Snapshot panel ``[p, p+ib)`` of *em*; replaces any prior checkpoint."""
        n = em.n
        cp = PanelCheckpoint(
            p=p,
            ib=ib,
            panel=em.data[:, p : p + ib].copy(order="F"),
            col_chk_seg=em.ext[n:, p : p + ib].copy(order="F"),
        )
        self.current = cp
        self.saves += 1
        self.peak_bytes = max(self.peak_bytes, cp.nbytes)
        return cp

    def restore(self, em: EncodedMatrix) -> PanelCheckpoint:
        """Write the checkpointed panel and checksum segments back into *em*."""
        cp = self.current
        if cp is None:
            raise ReproError("no panel checkpoint to restore")
        em.data[:, cp.p : cp.p + cp.ib] = cp.panel
        em.ext[em.n :, cp.p : cp.p + cp.ib] = cp.col_chk_seg
        self.restores += 1
        return cp
